// Experiment E1 (Figure 1): the neighborhood of a 2-star (resp. 3-star)
// contains 8 (resp. 12) independent points — so Theorem 3's φ_2 = 8 and
// φ_3 = 12 are tight. Reconstructs the paper's explicit instance across
// a sweep of ε and verifies it numerically; also re-finds the packing
// with the stochastic optimizer, blind to the construction.

#include <iostream>

#include "bench_util.hpp"
#include "core/bounds.hpp"
#include "geom/closest.hpp"
#include "geom/disk_union.hpp"
#include "packing/fig1.hpp"
#include "packing/packer.hpp"
#include "sim/table.hpp"

int main() {
  using namespace mcds;
  bench::banner("E1 / Figure 1",
                "tight independent packings in 2-star and 3-star "
                "neighborhoods");
  bench::Falsifier falsifier;

  sim::Table table({"instance", "eps", "points", "phi_n (Thm 3)",
                    "min pair dist", "independent?", "covered?"});
  for (const double eps : {1e-4, 1e-3, 1e-2, 0.03, 0.049}) {
    for (const int star : {2, 3}) {
      const packing::TightInstance inst =
          star == 2 ? packing::fig1_two_star(eps)
                    : packing::fig1_three_star(eps);
      const bool ok = packing::verify_tight_instance(inst);
      const double min_dist =
          geom::closest_pair_distance(inst.independent);
      const std::size_t phi = core::bounds::phi(static_cast<std::size_t>(star));
      table.row()
          .add(star == 2 ? "2-star" : "3-star")
          .add(eps, 4)
          .add(inst.independent.size())
          .add(phi)
          .add(min_dist, 6)
          .add(min_dist > 1.0 ? "yes" : "NO")
          .add(ok ? "yes" : "NO");
      falsifier.check(ok, "construction must be a valid witness");
      falsifier.check(inst.independent.size() == phi,
                      "construction must achieve phi_n exactly");
    }
  }
  table.print(std::cout);

  // Independent rediscovery: the optimizer should approach (and by
  // Theorem 3 can never exceed) phi_n.
  std::cout << "\nStochastic packer (blind to the construction):\n";
  sim::Table blind({"instance", "packer found", "phi_n", "within bound?"});
  const geom::DiskUnion star2({{0, 0}, {1, 0}}, 1.0);
  const geom::DiskUnion star3({{0, 0}, {1, 0}, {-1, 0}}, 1.0);
  packing::PackOptions opt;
  opt.grid_step = 0.04;
  opt.restarts = 12;
  opt.ruin_rounds = 40;
  opt.seed = 2008;
  const auto p2 = packing::pack_independent_points(star2, opt);
  const auto p3 = packing::pack_independent_points(star3, opt);
  blind.row().add("2-star").add(p2.points.size()).add(core::bounds::phi(2))
      .add(p2.points.size() <= core::bounds::phi(2) ? "yes" : "NO");
  blind.row().add("3-star").add(p3.points.size()).add(core::bounds::phi(3))
      .add(p3.points.size() <= core::bounds::phi(3) ? "yes" : "NO");
  blind.print(std::cout);
  falsifier.check(p2.points.size() <= core::bounds::phi(2),
                  "Theorem 3 upper bound phi_2");
  falsifier.check(p3.points.size() <= core::bounds::phi(3),
                  "Theorem 3 upper bound phi_3");

  falsifier.report("fig1_star_tightness");
  return falsifier.exit_code();
}
