// Experiment E20 (phase-1 ablation): the surveyed algorithm families
// differ in *which* MIS they elect — [1]/[9] take an arbitrary
// (id-order) MIS, [4]/[8]/[10] the BFS first-fit MIS whose 2-hop
// separation powers both ratio proofs. Fixing phase 2 to shortest-path
// merging (valid for any dominating set), this bench isolates the
// phase-1 choice; it also reports how often the max-gain phase 2 is
// even *applicable* (it requires the separation property to guarantee
// progress).

#include <iostream>

#include "baselines/connect_util.hpp"
#include "bench_util.hpp"
#include "core/greedy_connect.hpp"
#include "core/mis.hpp"
#include "core/validate.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

int main() {
  using namespace mcds;
  bench::banner("E20 / phase-1 ablation",
                "MIS election rules under a fixed phase 2");
  bench::Falsifier falsifier;

  sim::Table table({"n", "side", "|I| bfs-ff", "|I| id-order",
                    "|I| max-degree", "CDS bfs-ff", "CDS id-order",
                    "CDS max-degree", "max-gain applicable (%)"});
  for (const std::size_t n : {100u, 250u, 500u}) {
    for (const double side : {9.0, 13.0}) {
      sim::Accumulator mis_bfs, mis_id, mis_deg;
      sim::Accumulator cds_bfs, cds_id, cds_deg;
      std::size_t greedy_ok = 0, trials = 0;
      for (std::uint64_t t = 0; t < 20; ++t) {
        udg::InstanceParams params;
        params.nodes = n;
        params.side = side;
        const auto inst = udg::generate_largest_component_instance(
            params, 600 + 3 * t + n);
        const auto& g = inst.graph;
        ++trials;

        const auto bfs = core::bfs_first_fit_mis(g, 0);
        const auto ids = core::lowest_id_mis(g);
        const auto deg = core::max_degree_mis(g);
        mis_bfs.add(static_cast<double>(bfs.mis.size()));
        mis_id.add(static_cast<double>(ids.mis.size()));
        mis_deg.add(static_cast<double>(deg.mis.size()));

        for (const auto* mis : {&bfs.mis, &ids.mis, &deg.mis}) {
          const auto cds = baselines::connected_closure(g, *mis);
          falsifier.check(core::is_cds(g, cds),
                          "phase-1 variant + shortest-path must be a CDS");
          if (mis == &bfs.mis) cds_bfs.add(static_cast<double>(cds.size()));
          if (mis == &ids.mis) cds_id.add(static_cast<double>(cds.size()));
          if (mis == &deg.mis) cds_deg.add(static_cast<double>(cds.size()));
        }

        // Is the max-gain phase 2 applicable to the id-order MIS? It is
        // guaranteed for the BFS MIS (Lemma 9); for arbitrary MIS it can
        // stall — count how often it happens to work anyway.
        try {
          (void)core::greedy_connectors(g, ids.mis);
          ++greedy_ok;
        } catch (const std::logic_error&) {
          // stalled: no positive-gain node although q > 1
        }
        // For the BFS MIS, stalling would falsify Lemma 9:
        try {
          (void)core::greedy_connectors(g, bfs.mis);
          falsifier.check(true, "Lemma 9 progress on BFS MIS");
        } catch (const std::logic_error&) {
          falsifier.check(false, "Lemma 9 progress on BFS MIS");
        }
      }
      table.row()
          .add(n)
          .add(side, 0)
          .add(mis_bfs.mean(), 1)
          .add(mis_id.mean(), 1)
          .add(mis_deg.mean(), 1)
          .add(cds_bfs.mean(), 1)
          .add(cds_id.mean(), 1)
          .add(cds_deg.mean(), 1)
          .add(100.0 * static_cast<double>(greedy_ok) /
                   static_cast<double>(trials),
               1);
    }
  }
  table.print(std::cout);
  std::cout << "(The BFS first-fit MIS is not smaller than the others — "
               "its value is the separation structure that phase 2 and "
               "the ratio proofs exploit.)\n";

  falsifier.report("phase1_ablation");
  return falsifier.exit_code();
}
