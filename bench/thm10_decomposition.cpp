// Experiment E15 (Theorem 10's proof accounting): the proof splits the
// greedy connector sequence C into contiguous segments
//   C1 = shortest prefix with q(C1) <= floor(11 gamma_c / 3) - 3,
//   C1 ∪ C2 = shortest prefix with q <= 2 gamma_c + 1,
//   C3 = the rest,
// and shows |C1| <= 1, |C2| <= 13 gamma_c / 18 - 1 (for non-empty C2)
// and |C3| <= 2 gamma_c - 1. This bench recomputes the decomposition on
// exactly solved instances and checks each intermediate inequality —
// a much finer probe than the end-to-end ratio.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "core/greedy_connect.hpp"
#include "exact/exact_cds.hpp"
#include "graph/small_graph.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

namespace {

struct Decomposition {
  std::size_t c1 = 0, c2 = 0, c3 = 0;
};

// Splits the recorded greedy steps by the proof's q-thresholds.
Decomposition decompose(const std::vector<mcds::core::GreedyStep>& steps,
                        std::size_t initial_q, std::size_t gamma_c) {
  const auto t1 = static_cast<long>(11 * gamma_c / 3) - 3;  // floor - 3
  const auto t2 = static_cast<long>(2 * gamma_c + 1);
  Decomposition d;
  long q = static_cast<long>(initial_q);
  std::size_t phase = q <= t1 ? (q <= t2 ? 3 : 2) : 1;
  for (const auto& s : steps) {
    if (phase == 1) {
      ++d.c1;
    } else if (phase == 2) {
      ++d.c2;
    } else {
      ++d.c3;
    }
    q = static_cast<long>(s.q_before - s.gain);
    if (phase == 1 && q <= t1) phase = 2;
    if (phase <= 2 && q <= t2) phase = 3;
  }
  return d;
}

}  // namespace

int main() {
  using namespace mcds;
  bench::banner("E15 / Theorem 10 proof accounting",
                "C1/C2/C3 segment bounds of the greedy connector run");
  bench::Falsifier falsifier;

  sim::Accumulator c1_acc, c2_acc, c3_acc;
  std::size_t solved = 0, c2_nonempty = 0;
  std::size_t worst_c3 = 0;
  for (std::uint64_t seed = 1; solved < 250 && seed <= 3000; ++seed) {
    udg::InstanceParams params;
    params.nodes = 12 + seed % 7;
    params.side = 2.4 + static_cast<double>(seed % 5) * 0.45;
    params.max_retries = 0;
    const auto inst = udg::generate_connected_instance(params, seed * 73);
    if (!inst) continue;
    const std::size_t gamma_c = exact::connected_domination_number(
        graph::SmallGraph(inst->graph));
    if (gamma_c < 2) continue;  // Theorem 10 treats gamma_c = 1 separately
    ++solved;
    const auto greedy = core::greedy_cds(inst->graph, 0);
    const auto d =
        decompose(greedy.steps, greedy.phase1.mis.size(), gamma_c);

    falsifier.check(d.c1 <= 1, "|C1| <= 1");
    if (d.c2 > 0) {
      ++c2_nonempty;
      falsifier.check(
          static_cast<double>(d.c2) <=
              13.0 * static_cast<double>(gamma_c) / 18.0 - 1.0 + 1e-9,
          "|C2| <= 13 gamma_c / 18 - 1");
    }
    falsifier.check(d.c3 <= 2 * gamma_c - 1, "|C3| <= 2 gamma_c - 1");
    falsifier.check(d.c1 + d.c2 + d.c3 == greedy.connectors.size(),
                    "decomposition covers C");
    c1_acc.add(static_cast<double>(d.c1));
    c2_acc.add(static_cast<double>(d.c2));
    c3_acc.add(static_cast<double>(d.c3));
    worst_c3 = std::max(worst_c3, d.c3);
  }

  sim::Table table({"segment", "proof bound", "mean size", "max seen"});
  table.row().add("C1").add("1").add(c1_acc.mean(), 3)
      .add(c1_acc.max(), 0);
  table.row().add("C2").add("13 gc/18 - 1").add(c2_acc.mean(), 3)
      .add(c2_acc.max(), 0);
  table.row().add("C3").add("2 gc - 1").add(c3_acc.mean(), 3)
      .add(c3_acc.max(), 0);
  table.print(std::cout);
  std::cout << "Instances solved (gamma_c >= 2): " << solved
            << ", with non-empty C2: " << c2_nonempty << "\n";

  falsifier.report("thm10_decomposition");
  return falsifier.exit_code();
}
