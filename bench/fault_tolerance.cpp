// Experiment E22 (robustness): the fault-injection layer end to end.
// Part 1 sweeps message drop rates for the three distributed
// constructions behind ReliableLink and records the round/message
// overhead of reliability — the declared envelope of the chaos harness.
// Part 2 runs crash schedules and drives the self-healing maintenance
// loop, re-validating every healed backbone on the survivor topology.
//
// Claims checked (the bench exits non-zero if any fails):
//   - with default link parameters every reliable run at drop <= 0.3
//     completes and, being crash-free, yields a valid CDS;
//   - overhead stays inside the declared envelope (rounds and messages);
//   - after healing, the backbone is a valid CDS of every connected
//     survivor graph (witnesses printed otherwise).

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/validate.hpp"
#include "dist/alzoubi_protocol.hpp"
#include "dist/distributed_cds.hpp"
#include "dist/fault.hpp"
#include "dist/greedy_protocol.hpp"
#include "dist/maintenance.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

namespace {

using namespace mcds;
using graph::Graph;
using graph::NodeId;

constexpr std::size_t kNodes = 40;
constexpr std::uint64_t kTrials = 5;

// Declared overhead envelope for reliable execution (relative to the
// fault-free run of the same protocol on the same graph). Chosen from
// the link's worst-case arithmetic: acks double traffic, retransmission
// multiplies it by at most (1 + expected retries), and the round-indexed
// phases stretch by reliable_delivery_bound().
constexpr double kRoundFactor = 80.0;
constexpr double kRoundSlack = 512.0;
constexpr double kMsgFactor = 40.0;
constexpr double kMsgSlack = 4096.0;

udg::UdgInstance instance(std::uint64_t seed) {
  udg::InstanceParams params;
  params.nodes = kNodes;
  params.side = 6.0;
  params.radius = 1.5;
  return udg::generate_largest_component_instance(params, seed);
}

struct Outcome {
  bool complete = false;
  bool valid = false;
  dist::RunStats stats;
};

Outcome run_one(const Graph& g, int algo, const dist::RunConfig& cfg) {
  Outcome out;
  switch (algo) {
    case 0: {
      const auto r = dist::distributed_waf_cds(g, cfg);
      out = {r.complete, core::check_cds(g, r.cds).ok, r.total};
      break;
    }
    case 1: {
      const auto r = dist::distributed_alzoubi_cds(g, cfg);
      out = {r.complete, core::check_cds(g, r.cds).ok, r.total};
      break;
    }
    default: {
      const auto r = dist::distributed_greedy_cds(g, cfg);
      out = {r.complete, core::check_cds(g, r.cds).ok, r.total};
      break;
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("E22 / fault tolerance",
                "reliable-link convergence and self-healing under chaos");
  bench::Falsifier falsifier;
  const char* names[] = {"waf", "alzoubi", "greedy"};

  std::cout << "\nReliable-link sweep (" << kTrials << " UDGs, n = " << kNodes
            << ", default link parameters):\n";
  sim::Table table({"protocol", "drop", "complete", "valid", "round ovh",
                    "msg ovh"});
  for (int algo = 0; algo < 3; ++algo) {
    for (const double drop : {0.0, 0.1, 0.2, 0.3}) {
      std::size_t complete = 0;
      std::size_t valid = 0;
      sim::Accumulator round_ovh, msg_ovh;
      for (std::uint64_t t = 0; t < kTrials; ++t) {
        const auto inst = instance(17 * t + 3);
        const Outcome ideal = run_one(inst.graph, algo, dist::RunConfig{});

        dist::RunConfig cfg;
        cfg.reliable = true;
        cfg.plan.link.drop = drop;
        cfg.plan.seed = 1000 * t + algo;
        const Outcome r = run_one(inst.graph, algo, cfg);
        complete += r.complete ? 1 : 0;
        valid += r.valid ? 1 : 0;

        const double ro = static_cast<double>(r.stats.rounds) /
                          static_cast<double>(std::max<std::size_t>(
                              ideal.stats.rounds, 1));
        const double mo = static_cast<double>(r.stats.messages) /
                          static_cast<double>(std::max<std::size_t>(
                              ideal.stats.messages, 1));
        round_ovh.add(ro);
        msg_ovh.add(mo);

        falsifier.check(r.complete,
                        std::string(names[algo]) +
                            ": reliable run must complete at drop <= 0.3");
        falsifier.check(r.valid, std::string(names[algo]) +
                                     ": crash-free reliable run must yield "
                                     "a valid CDS");
        falsifier.check(
            static_cast<double>(r.stats.rounds) <=
                kRoundFactor * static_cast<double>(ideal.stats.rounds) +
                    kRoundSlack,
            std::string(names[algo]) + ": round overhead inside envelope");
        falsifier.check(
            static_cast<double>(r.stats.messages) <=
                kMsgFactor * static_cast<double>(ideal.stats.messages) +
                    kMsgSlack,
            std::string(names[algo]) + ": message overhead inside envelope");
      }
      table.row()
          .add(names[algo])
          .add(drop, 1)
          .add(static_cast<double>(complete) / kTrials, 2)
          .add(static_cast<double>(valid) / kTrials, 2)
          .add(round_ovh.mean(), 2)
          .add(msg_ovh.mean(), 2);
    }
  }
  table.print(std::cout);
  std::cout << "(overheads are multiples of the fault-free execution; the "
               "declared envelope is rounds <= "
            << kRoundFactor << "x + " << kRoundSlack << ", messages <= "
            << kMsgFactor << "x + " << kMsgSlack << ")\n";

  std::cout << "\nCrash schedules + self-healing maintenance:\n";
  sim::Table heal_table({"crashes", "runs", "healed ok", "intact", "reconn",
                         "repair", "rebuild", "unhealable"});
  for (const std::size_t crashes : {4u, 8u, 12u}) {
    std::size_t runs = 0;
    std::size_t healed_ok = 0;
    std::size_t actions[5] = {0, 0, 0, 0, 0};
    for (std::uint64_t t = 0; t < kTrials; ++t) {
      const auto inst = instance(29 * t + 11);
      const Graph& g = inst.graph;

      dist::RunConfig cfg;
      cfg.reliable = true;
      cfg.plan.link.drop = 0.1;
      cfg.plan.seed = t;
      sim::Rng rng(t ^ 0xabcdef);
      for (std::size_t i = 0; i < crashes; ++i) {
        cfg.plan.schedule.push_back(
            {1 + static_cast<std::size_t>(rng.uniform_int(60)),
             static_cast<NodeId>(rng.uniform_int(g.num_nodes())), false});
      }

      const auto r = dist::distributed_waf_cds(g, cfg);
      ++runs;

      const auto up = cfg.plan.up_after(g.num_nodes(), SIZE_MAX);
      dist::SelfHealingCds healer(g, r.cds);
      const auto report = healer.on_churn(up);
      ++actions[static_cast<int>(report.action)];

      std::vector<NodeId> live;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (up[v]) live.push_back(v);
      }
      if (live.empty()) continue;
      const auto sub = graph::induced_subgraph(g, live);
      if (!graph::is_connected(sub.graph)) continue;

      std::vector<NodeId> to_sub(g.num_nodes(), graph::kNoNode);
      for (NodeId i = 0; i < sub.mapping.size(); ++i) {
        to_sub[sub.mapping[i]] = i;
      }
      std::vector<NodeId> healed_sub;
      for (const NodeId v : healer.cds()) healed_sub.push_back(to_sub[v]);
      const auto check = core::check_cds(sub.graph, healed_sub);
      falsifier.check(check.ok,
                      "healed backbone must be a valid CDS of the survivor "
                      "graph (" +
                          check.describe() + ")");
      healed_ok += check.ok ? 1 : 0;
    }
    heal_table.row()
        .add(crashes)
        .add(runs)
        .add(healed_ok)
        .add(actions[0])
        .add(actions[1])
        .add(actions[2])
        .add(actions[3])
        .add(actions[4]);
  }
  heal_table.print(std::cout);
  std::cout << "(actions: kIntact/kReconnected/kRepaired/kRebuilt/"
               "kUnhealable; 'healed ok' counts runs whose survivor graph "
               "stayed connected and whose healed backbone re-validated)\n";

  falsifier.report("fault_tolerance");
  return falsifier.exit_code();
}
