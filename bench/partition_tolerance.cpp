// Experiment E24 (robustness): partition tolerance end to end.
// Part 1 sweeps the duration of a scheduled two-way partition and
// measures how long the accrual failure detector takes to converge back
// to the all-clear after the heal — the detection-side cost of a cut.
// Part 2 maintains the backbone through the same cuts with island-scoped
// SelfHealingCds replicas (churn injected while the cut is open, more of
// it the longer the cut) and measures the cost of the epoch-based
// reconcile at heal time.
//
// Claims checked (the bench exits non-zero if any fails):
//   - the detector converges after every heal, within a fixed latency
//     budget independent of how long the cut was open;
//   - the cut actually severed traffic (partition_dropped > 0);
//   - the reconciled backbone is a valid CDS forest of the survivor
//     graph and its size stays inside the 4|MIS| + 12 per-component
//     envelope the chaos fuzzer enforces.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/mis.hpp"
#include "core/validate.hpp"
#include "core/waf.hpp"
#include "dist/failure_detector.hpp"
#include "dist/fault.hpp"
#include "dist/maintenance.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "obs/metrics.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

namespace {

using namespace mcds;
using graph::Graph;
using graph::NodeId;

constexpr std::size_t kSplitRound = 3;
constexpr std::size_t kTailRounds = 40;  // observation past the heal
// Convergence latency budget after the heal: with heartbeat_every = 1
// and threshold 3 the all-clear needs one heartbeat exchange plus the
// sweep; anything beyond this is a detector regression.
constexpr std::size_t kLatencyBudget = 30;

udg::UdgInstance make_instance(std::size_t n) {
  udg::InstanceParams params;
  params.nodes = n;
  // Dense enough (average degree ~ 9) that the largest component keeps
  // nearly every node — the experiment is specified at n = 1k / 4k.
  params.side = std::sqrt(static_cast<double>(n)) * 0.6;
  return udg::generate_largest_component_instance(params, 42 + n);
}

// Two-way split by node id: low half vs high half.
dist::PartitionEvent halves_split(std::size_t n, std::size_t round) {
  dist::PartitionEvent split;
  split.round = round;
  split.groups.resize(2);
  for (NodeId v = 0; v < n; ++v) {
    split.groups[v < n / 2 ? 0 : 1].push_back(v);
  }
  return split;
}

// Validity + size envelope of a maintained backbone on the survivor
// graph (per connected component, matching the chaos fuzzer).
struct BackboneAudit {
  bool valid = false;
  bool bounded = false;
  std::size_t size = 0;
};

BackboneAudit audit_backbone(const Graph& g, const std::vector<bool>& up,
                             const std::vector<NodeId>& cds) {
  std::vector<NodeId> live;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (up[v]) live.push_back(v);
  }
  const auto sub = graph::induced_subgraph(g, live);
  std::vector<NodeId> to_sub(g.num_nodes(), graph::kNoNode);
  for (NodeId s = 0; s < sub.mapping.size(); ++s) to_sub[sub.mapping[s]] = s;
  std::vector<NodeId> mapped;
  for (const NodeId v : cds) {
    if (to_sub[v] != graph::kNoNode) mapped.push_back(to_sub[v]);
  }
  std::sort(mapped.begin(), mapped.end());

  BackboneAudit out;
  out.size = mapped.size();
  out.valid = core::check_cds_components(sub.graph, mapped).ok;
  const auto [labels, num_comps] = graph::connected_components(sub.graph);
  std::vector<NodeId> order(sub.graph.num_nodes());
  for (NodeId v = 0; v < order.size(); ++v) order[v] = v;
  const auto mis = core::first_fit_mis(sub.graph, order);
  out.bounded =
      mapped.size() <= 4 * mis.mis.size() + 12 * std::max<std::size_t>(
                                                     num_comps, 1);
  return out;
}

}  // namespace

int main() {
  bench::banner("E24 / partition tolerance",
                "detector convergence and heal overhead vs cut duration");
  bench::Falsifier falsifier;
  const std::size_t sizes[] = {1000, 4096};
  const std::size_t durations[] = {4, 8, 16, 32};

  std::cout << "\nDetector convergence after a two-way cut (split at round "
            << kSplitRound << "):\n";
  sim::Table det_table({"n", "cut rounds", "converged", "latency", "messages",
                        "cut drops"});
  for (const std::size_t n : sizes) {
    const auto inst = make_instance(n);
    const std::size_t nn = inst.graph.num_nodes();
    for (const std::size_t d : durations) {
      const std::size_t heal_round = kSplitRound + d;
      obs::MetricsRegistry reg;
      dist::RunConfig cfg;
      cfg.plan.partitions.push_back(halves_split(nn, kSplitRound));
      cfg.plan.partitions.push_back({heal_round, {}});
      cfg.obs.metrics = &reg;
      dist::FailureDetectorParams params;
      params.rounds = heal_round + kTailRounds;
      // Final truth: everyone up, one group — the detector must return
      // to the all-clear and stay there.
      const auto r = dist::detect_failures(
          inst.graph, cfg, params, std::vector<bool>(nn, true),
          std::vector<std::uint32_t>(nn, 0));
      const std::size_t dropped =
          reg.counter("fault.partition_dropped").value();
      const bool converged = r.converged_round.has_value();
      const std::size_t latency =
          converged && *r.converged_round > heal_round
              ? *r.converged_round - heal_round
              : 0;
      det_table.row()
          .add(nn)
          .add(d)
          .add(converged ? "yes" : "NO")
          .add(latency)
          .add(r.stats.messages)
          .add(dropped);
      falsifier.check(converged,
                      "detector re-converges after the heal (n = " +
                          std::to_string(nn) + ", cut = " +
                          std::to_string(d) + ")");
      falsifier.check(!converged || latency <= kLatencyBudget,
                      "post-heal latency inside the budget (n = " +
                          std::to_string(nn) + ", cut = " +
                          std::to_string(d) + ")");
      falsifier.check(dropped > 0,
                      "the cut severed at least one heartbeat (n = " +
                          std::to_string(nn) + ")");
    }
  }
  det_table.print(std::cout);
  std::cout << "(latency = rounds from the heal to a correct, stable "
               "suspect map everywhere; budget "
            << kLatencyBudget << ")\n";

  std::cout << "\nIsland-scoped maintenance + epoch reconcile at heal "
               "(one crash per 8 cut rounds):\n";
  sim::Table heal_table({"n", "cut rounds", "crashes", "kept", "added",
                         "dropped", "size", "valid", "bounded"});
  for (const std::size_t n : sizes) {
    const auto inst = make_instance(n);
    const Graph& g = inst.graph;
    const std::size_t nn = g.num_nodes();
    const auto initial = core::waf_cds(g).cds;
    const auto split = halves_split(nn, kSplitRound);

    for (const std::size_t d : durations) {
      std::vector<bool> up(nn, true);
      dist::SelfHealingCds master(g, initial);

      // The cut opens: each side maintains its island independently.
      std::vector<std::unique_ptr<dist::SelfHealingCds>> replicas;
      for (const auto& group : split.groups) {
        auto rep = std::make_unique<dist::SelfHealingCds>(g, master.cds());
        rep->set_island(group);
        replicas.push_back(std::move(rep));
      }

      // Churn while the cut is open, scaling with its duration: every
      // 8th round one backbone node dies, alternating sides.
      const std::size_t crashes = 1 + d / 8;
      std::size_t killed = 0;
      for (std::size_t c = 0; c < crashes && c < initial.size(); ++c) {
        const NodeId victim =
            c % 2 == 0 ? initial[c] : initial[initial.size() - 1 - c];
        if (!up[victim]) continue;
        up[victim] = false;
        ++killed;
        for (auto& rep : replicas) rep->on_churn(up);
      }

      // The heal: merge both islands' epoch-stamped views.
      std::vector<dist::BackboneView> views;
      for (const auto& rep : replicas) views.push_back(rep->view());
      const auto report = master.reconcile(views, up);
      const auto audit = audit_backbone(g, up, master.cds());

      heal_table.row()
          .add(nn)
          .add(d)
          .add(killed)
          .add(report.kept)
          .add(report.added)
          .add(report.dropped)
          .add(audit.size)
          .add(audit.valid ? "yes" : "NO")
          .add(audit.bounded ? "yes" : "NO");
      falsifier.check(report.action != dist::HealAction::kUnhealable,
                      "reconcile heals the merged backbone (n = " +
                          std::to_string(nn) + ", cut = " +
                          std::to_string(d) + ")");
      falsifier.check(audit.valid,
                      "reconciled backbone is a valid CDS forest of the "
                      "survivor graph (n = " +
                          std::to_string(nn) + ", cut = " +
                          std::to_string(d) + ")");
      falsifier.check(audit.bounded,
                      "reconciled backbone inside 4|MIS| + 12/component "
                      "(n = " +
                          std::to_string(nn) + ", cut = " +
                          std::to_string(d) + ")");
    }
  }
  heal_table.print(std::cout);
  std::cout << "(kept/added/dropped are the reconcile pass's own actions; "
               "churn = one backbone crash per 8 rounds of cut)\n";

  falsifier.report("partition_tolerance");
  return falsifier.exit_code();
}
