// Experiment E4 (Theorem 6 / Corollary 7): α(G) <= (11/3)·γ_c(G) + 1 for
// every connected UDG. Solves α and γ_c exactly on many small random
// UDGs, reports the worst observed α as a function of γ_c next to the
// paper's bound and the two earlier bounds it supersedes.

#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "core/bounds.hpp"
#include "exact/exact_cds.hpp"
#include "exact/exact_mis.hpp"
#include "graph/small_graph.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

int main() {
  using namespace mcds;
  bench::banner("E4 / Corollary 7",
                "alpha(G) vs gamma_c(G) on exhaustively solved UDGs (n <= 32)");
  bench::Falsifier falsifier;

  // worst alpha seen per gamma_c, and per-gamma_c instance counts.
  std::map<std::size_t, std::size_t> worst_alpha, count;
  std::size_t solved = 0;

  for (std::uint64_t seed = 1; solved < 400 && seed <= 4000; ++seed) {
    udg::InstanceParams params;
    params.nodes = 10 + seed % 23;  // 10..32 nodes (SmallGraph128)
    params.side = 2.2 + static_cast<double>(seed % 5) * 0.5;
    params.max_retries = 0;
    const auto inst = udg::generate_connected_instance(params, seed * 17);
    if (!inst) continue;
    ++solved;
    const graph::SmallGraph128 sg(inst->graph);
    const std::size_t alpha = exact::independence_number(sg);
    const std::size_t gamma_c = exact::connected_domination_number(sg);
    falsifier.check(
        static_cast<double>(alpha) <=
            core::bounds::alpha_upper_bound(gamma_c) + 1e-9,
        "Corollary 7: alpha <= 11/3 gamma_c + 1");
    auto& w = worst_alpha[gamma_c];
    w = std::max(w, alpha);
    ++count[gamma_c];
  }

  sim::Table table({"gamma_c", "instances", "worst alpha",
                    "11/3 gc + 1 (this paper)", "3.8 gc + 1.2 [12]",
                    "4 gc + 1 [10]"});
  for (const auto& [gc, alpha] : worst_alpha) {
    table.row()
        .add(gc)
        .add(count[gc])
        .add(alpha)
        .add(core::bounds::alpha_upper_bound(gc), 2)
        .add(3.8 * static_cast<double>(gc) + 1.2, 2)
        .add(4.0 * static_cast<double>(gc) + 1.0, 2);
  }
  table.print(std::cout);
  std::cout << "Solved instances: " << solved
            << " (exact alpha and gamma_c via branch and bound).\n";

  falsifier.report("cor7_alpha_vs_gammac");
  return falsifier.exit_code();
}
