// Experiment E3 (Theorem 3): the neighborhood of an n-star holds at most
// φ_n independent points. Samples random n-stars (center plus n-1 points
// inside its unit disk) and packs them with the stochastic optimizer;
// the best count found must stay below φ_n, and for n <= 3 it should
// approach φ_n (tightness per Figure 1).

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/bounds.hpp"
#include "geom/disk_union.hpp"
#include "packing/packer.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"

int main() {
  using namespace mcds;
  bench::banner("E3 / Theorem 3",
                "independent packing in random n-star neighborhoods vs "
                "phi_n");
  bench::Falsifier falsifier;

  sim::Table table({"n (star size)", "stars tried", "best found",
                    "mean found", "phi_n", "tight?"});
  for (std::size_t n = 1; n <= 7; ++n) {
    const std::size_t trials = 8;
    std::size_t best = 0;
    double sum = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      sim::Rng rng = sim::Rng::child(33, n * 100 + t);
      std::vector<geom::Vec2> centers{{0.0, 0.0}};
      for (std::size_t k = 1; k < n; ++k) {
        // Random point in the closed unit disk around the center; bias
        // toward the rim where packings are largest.
        const double r = 0.6 + 0.4 * rng.uniform01();
        const double a = rng.uniform(0.0, 6.283185307179586);
        centers.push_back(geom::from_polar({0, 0}, r, a));
      }
      packing::PackOptions opt;
      opt.grid_step = 0.06;
      opt.restarts = 5;
      opt.ruin_rounds = 15;
      opt.seed = 7 + t + 1000 * n;
      const auto found = packing::pack_independent_points(
          geom::DiskUnion(centers, 1.0), opt);
      best = std::max(best, found.points.size());
      sum += static_cast<double>(found.points.size());
      falsifier.check(found.points.size() <= core::bounds::phi(n),
                      "Theorem 3: packing must not exceed phi_n");
    }
    table.row()
        .add(n)
        .add(trials)
        .add(best)
        .add(sum / static_cast<double>(trials), 2)
        .add(core::bounds::phi(n))
        .add(best == core::bounds::phi(n) ? "reached" : "-");
  }
  table.print(std::cout);
  std::cout << "(phi_n is proven tight for n <= 3; for larger n random "
               "stars rarely reach it.)\n";

  falsifier.report("thm3_star_packing");
  return falsifier.exit_code();
}
