// Experiment E8 (Lemma 1): for |ou| <= 1, the symmetric difference
// I(o) △ I(u) of an independent set's traces on the two disks has at
// most 7 points. Adversarial stochastic search: pack independent points
// into D_o ∪ D_u for many center separations and measure the largest
// symmetric difference attained. The trivial bound is 8; Lemma 1 says 8
// is unreachable.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "geom/disk_union.hpp"
#include "packing/packer.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"

namespace {

// |I(o) △ I(u)| for the packed point set.
std::size_t sym_diff(const std::vector<mcds::geom::Vec2>& pts,
                     mcds::geom::Vec2 o, mcds::geom::Vec2 u) {
  std::size_t count = 0;
  for (const auto p : pts) {
    const bool in_o = mcds::geom::dist2(p, o) <= 1.0 + 1e-12;
    const bool in_u = mcds::geom::dist2(p, u) <= 1.0 + 1e-12;
    if (in_o != in_u) ++count;
  }
  return count;
}

}  // namespace

int main() {
  using namespace mcds;
  bench::banner("E8 / Lemma 1",
                "max |I(o) △ I(u)| over packings with |ou| <= 1");
  bench::Falsifier falsifier;

  sim::Table table({"|ou|", "packings tried", "max sym-diff",
                    "Lemma 1 bound", "trivial bound"});
  std::size_t global_max = 0;
  for (const double d : {0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0}) {
    const geom::Vec2 o{0.0, 0.0}, u{d, 0.0};
    std::size_t best = 0;
    const std::size_t trials = 6;
    for (std::size_t t = 0; t < trials; ++t) {
      packing::PackOptions opt;
      opt.grid_step = 0.05;
      opt.restarts = 6;
      opt.ruin_rounds = 20;
      opt.seed = 555 + t + static_cast<std::uint64_t>(d * 1000);
      const auto found = packing::pack_independent_points(
          geom::DiskUnion({o, u}, 1.0), opt);
      best = std::max(best, sym_diff(found.points, o, u));
    }
    global_max = std::max(global_max, best);
    table.row().add(d, 2).add(trials).add(best).add(std::size_t{7})
        .add(std::size_t{8});
    falsifier.check(best <= 7, "Lemma 1: |I(o) △ I(u)| <= 7");
  }
  table.print(std::cout);
  std::cout << "Largest symmetric difference found anywhere: " << global_max
            << " (Lemma 1 proves 8 is impossible).\n";

  falsifier.report("lemma1_symdiff");
  return falsifier.exit_code();
}
