// Experiment E14 (Appendix, Lemmas 11-12): the two omitted-proof
// geometric lemmas, probed numerically over dense parameter grids.
// Lemma 11: in a convex quadrilateral o-u-p-v with |ov| = |up|,
//   ∠ovp + ∠upv <= 180°  iff  |vp| >= |ou|.
// Lemma 12 (core triple): under the stated circle construction,
//   diam({v1, v2, p}) = 1.

#include <cmath>
#include <iostream>
#include <numbers>

#include "bench_util.hpp"
#include "packing/appendix.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"

int main() {
  using namespace mcds;
  bench::banner("E14 / Appendix", "Lemmas 11 and 12 probed numerically");
  bench::Falsifier falsifier;

  // Lemma 11 over random quadrilaterals.
  std::size_t l11_checked = 0;
  sim::Rng rng(2718);
  while (l11_checked < 20000) {
    const geom::Vec2 o{0, 0}, u{rng.uniform(0.2, 1.5), 0};
    const double leg = rng.uniform(0.2, 2.5);
    const packing::Lemma11Config cfg{
        o, u, geom::from_polar(u, leg, rng.uniform(0.2, 2.9)),
        geom::from_polar(o, leg, rng.uniform(0.2, 2.9))};
    if (!cfg.hypothesis_holds()) continue;
    ++l11_checked;
    falsifier.check(cfg.lemma_holds(), "Lemma 11 equivalence");
  }
  std::cout << "Lemma 11: " << l11_checked
            << " random convex quadrilaterals checked.\n";

  // Lemma 12 over a dense (d, theta) grid; report the worst margin.
  double worst = 0.0;
  std::size_t l12_checked = 0;
  for (double d = 0.02; d <= 1.0; d += 0.02) {
    for (double theta = -std::numbers::pi; theta <= std::numbers::pi;
         theta += 0.01) {
      const auto cfg = packing::build_lemma12(d, theta);
      if (!cfg) continue;
      ++l12_checked;
      const double diam = cfg->diameter();
      worst = std::max(worst, diam);
      falsifier.check(diam <= 1.0 + 1e-9,
                      "Lemma 12: diam({v1,v2,p}) <= 1");
    }
  }
  sim::Table table({"lemma", "configurations", "result"});
  table.row().add("Lemma 11").add(l11_checked).add("equivalence held");
  table.row().add("Lemma 12").add(l12_checked).add(
      "max diam = " + sim::format_double(worst, 9));
  table.print(std::cout);

  falsifier.report("appendix_lemmas");
  return falsifier.exit_code();
}
