// Experiment E7 (Section IV motivation): head-to-head CDS sizes. The
// paper's claim is qualitative — the greedy phase-2 selects connectors
// "in a more economic way" than the tree-parent rule of [10], and both
// two-phased MIS algorithms beat the surveyed baselines with weaker
// guarantees. Regenerates the comparison across node counts, densities
// and deployment models.

#include <iostream>

#include "baselines/alzoubi.hpp"
#include "baselines/bharghavan_das.hpp"
#include "baselines/guha_khuller.hpp"
#include "baselines/li_thai.hpp"
#include "baselines/prune.hpp"
#include "baselines/stojmenovic.hpp"
#include "baselines/wu_li.hpp"
#include "bench_util.hpp"
#include "core/greedy_connect.hpp"
#include "core/validate.hpp"
#include "core/waf.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

int main() {
  using namespace mcds;
  bench::banner("E7 / Section IV",
                "mean CDS size: two-phased algorithms vs baselines");
  bench::Falsifier falsifier;

  const std::size_t kSeeds = 15;
  sim::Table table({"model", "n", "side", "WAF [10]", "greedy (new)",
                    "GK", "BD [2]", "Sto [9]", "LiThai [8]", "WuLi",
                    "Alz [1]", "greedy+prune"});

  const udg::DeploymentModel models[] = {
      udg::DeploymentModel::kUniformSquare,
      udg::DeploymentModel::kPerturbedGrid,
      udg::DeploymentModel::kGaussianCluster,
      udg::DeploymentModel::kCorridor,
  };
  struct Config {
    std::size_t n;
    double side;
  };
  const Config configs[] = {{100, 8.0}, {200, 10.0}, {400, 14.0}};

  double waf_mean_total = 0.0, greedy_mean_total = 0.0;
  std::size_t rows = 0;

  for (const auto model : models) {
    for (const auto& cfg : configs) {
      sim::Accumulator waf_a, greedy_a, gk_a, bd_a, sto_a, lt_a, wl_a,
          alz_a, pruned_a;
      for (std::uint64_t t = 0; t < kSeeds; ++t) {
        udg::InstanceParams params;
        params.model = model;
        params.nodes = cfg.n;
        params.side = cfg.side;
        const auto inst = udg::generate_largest_component_instance(
            params, 31 * t + cfg.n);
        const graph::Graph& g = inst.graph;

        const auto waf = core::waf_cds(g, 0);
        const auto greedy = core::greedy_cds(g, 0);
        const auto gk = baselines::guha_khuller_cds(g);
        const auto bd = baselines::bharghavan_das_cds(g);
        const auto sto = baselines::stojmenovic_cds(g);
        const auto lt = baselines::li_thai_cds(g);
        const auto wl = baselines::wu_li_cds(g);
        const auto alz = baselines::alzoubi_cds(g);
        const auto pruned = baselines::prune_cds(g, greedy.cds);

        for (const auto* cds : {&waf.cds, &greedy.cds, &gk, &bd, &sto,
                                &lt, &wl, &alz, &pruned}) {
          falsifier.check(core::is_cds(g, *cds),
                          "every construction must be a valid CDS");
        }
        waf_a.add(static_cast<double>(waf.cds.size()));
        greedy_a.add(static_cast<double>(greedy.cds.size()));
        gk_a.add(static_cast<double>(gk.size()));
        bd_a.add(static_cast<double>(bd.size()));
        sto_a.add(static_cast<double>(sto.size()));
        lt_a.add(static_cast<double>(lt.size()));
        wl_a.add(static_cast<double>(wl.size()));
        alz_a.add(static_cast<double>(alz.size()));
        pruned_a.add(static_cast<double>(pruned.size()));
      }
      table.row()
          .add(udg::to_string(model))
          .add(cfg.n)
          .add(cfg.side, 0)
          .add(waf_a.mean(), 1)
          .add(greedy_a.mean(), 1)
          .add(gk_a.mean(), 1)
          .add(bd_a.mean(), 1)
          .add(sto_a.mean(), 1)
          .add(lt_a.mean(), 1)
          .add(wl_a.mean(), 1)
          .add(alz_a.mean(), 1)
          .add(pruned_a.mean(), 1);
      waf_mean_total += waf_a.mean();
      greedy_mean_total += greedy_a.mean();
      ++rows;
    }
  }
  table.print(std::cout);

  const double improvement =
      100.0 * (waf_mean_total - greedy_mean_total) / waf_mean_total;
  std::cout << "\nAcross all rows, the Section IV greedy connectors shrink "
               "the WAF CDS by "
            << sim::format_double(improvement, 1)
            << "% on average (the paper's 'more economic' claim).\n";
  // Qualitative shape check (not a proven theorem, so informational):
  std::cout << (greedy_mean_total <= waf_mean_total
                    ? "Shape check PASSED: greedy <= WAF on average.\n"
                    : "Shape check FAILED: greedy > WAF on average!\n");

  falsifier.report("algorithm_comparison");
  return falsifier.exit_code();
}
