// Experiment E11 (ICDCS setting): message and round costs of the
// four-phase distributed WAF construction, per phase, as the network
// scales. The BFS/MIS/connector phases are O(n + m) messages; leader
// election by flooding dominates.

#include <iostream>

#include "bench_util.hpp"
#include "core/validate.hpp"
#include "dist/alzoubi_protocol.hpp"
#include "dist/greedy_protocol.hpp"
#include "dist/distributed_cds.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

int main() {
  using namespace mcds;
  bench::banner("E11 / distributed execution",
                "messages and rounds per protocol phase");
  bench::Falsifier falsifier;

  sim::Table table({"n", "mean m", "leader msgs", "bfs msgs", "mis msgs",
                    "conn msgs", "total msgs", "total rounds",
                    "|CDS| mean"});
  for (const std::size_t n : {50u, 100u, 200u, 400u}) {
    sim::Accumulator edges, leader, bfs, mis, conn, total, rounds, cds;
    for (std::uint64_t t = 0; t < 10; ++t) {
      udg::InstanceParams params;
      params.nodes = n;
      params.side = std::sqrt(static_cast<double>(n)) * 0.85;
      const auto inst =
          udg::generate_largest_component_instance(params, 11 * t + n);
      const auto r = dist::distributed_waf_cds(inst.graph);
      falsifier.check(core::is_cds(inst.graph, r.cds),
                      "distributed CDS must be valid");
      edges.add(static_cast<double>(inst.graph.num_edges()));
      leader.add(static_cast<double>(r.leader_stats.messages));
      bfs.add(static_cast<double>(r.tree.stats.messages));
      mis.add(static_cast<double>(r.mis.stats.messages));
      conn.add(static_cast<double>(r.connectors.stats.messages));
      total.add(static_cast<double>(r.total.messages));
      rounds.add(static_cast<double>(r.total.rounds));
      cds.add(static_cast<double>(r.cds.size()));

      // The constructive phases are message-light: each node broadcasts
      // O(1) times in BFS and MIS.
      const double m2 = 2.0 * static_cast<double>(inst.graph.num_edges());
      falsifier.check(
          static_cast<double>(r.tree.stats.messages) <= m2 + 1,
          "BFS phase sends at most one broadcast per node");
      falsifier.check(
          static_cast<double>(r.mis.stats.messages) <= m2 + 1,
          "MIS phase sends at most one broadcast per node");
    }
    table.row()
        .add(n)
        .add(edges.mean(), 0)
        .add(leader.mean(), 0)
        .add(bfs.mean(), 0)
        .add(mis.mean(), 0)
        .add(conn.mean(), 0)
        .add(total.mean(), 0)
        .add(rounds.mean(), 1)
        .add(cds.mean(), 1);
  }
  table.print(std::cout);
  std::cout << "(Leader election floods min-ids and dominates message "
               "cost; [1]'s message-optimal election would replace it in "
               "a production deployment.)\n";

  // Comparison: the leaderless [1]-style protocol (id-rank MIS + 3-hop
  // probes) against the 4-phase WAF construction — messages vs CDS size,
  // the trade-off the paper's introduction describes.
  std::cout << "\nWAF (tree connectors) vs Alzoubi-style (leaderless) vs "
               "localized Section IV greedy:\n";
  sim::Table duel({"n", "WAF msgs", "WAF |CDS|", "Alz msgs", "Alz |CDS|",
                   "greedy msgs", "greedy |CDS|", "greedy epochs"});
  for (const std::size_t n : {50u, 100u, 200u, 400u}) {
    sim::Accumulator waf_msgs, waf_cds, alz_msgs, alz_cds;
    sim::Accumulator gre_msgs, gre_cds, gre_epochs;
    for (std::uint64_t t = 0; t < 10; ++t) {
      udg::InstanceParams params;
      params.nodes = n;
      params.side = std::sqrt(static_cast<double>(n)) * 0.85;
      const auto inst =
          udg::generate_largest_component_instance(params, 11 * t + n);
      const auto waf = dist::distributed_waf_cds(inst.graph);
      const auto alz = dist::distributed_alzoubi_cds(inst.graph);
      const auto gre = dist::distributed_greedy_cds(inst.graph);
      falsifier.check(core::is_cds(inst.graph, alz.cds),
                      "alzoubi-style CDS must be valid");
      falsifier.check(core::is_cds(inst.graph, gre.cds),
                      "localized greedy CDS must be valid");
      waf_msgs.add(static_cast<double>(waf.total.messages));
      waf_cds.add(static_cast<double>(waf.cds.size()));
      alz_msgs.add(static_cast<double>(alz.total.messages));
      alz_cds.add(static_cast<double>(alz.cds.size()));
      gre_msgs.add(static_cast<double>(gre.total.messages));
      gre_cds.add(static_cast<double>(gre.cds.size()));
      gre_epochs.add(static_cast<double>(gre.epochs));
    }
    duel.row().add(n).add(waf_msgs.mean(), 0).add(waf_cds.mean(), 1)
        .add(alz_msgs.mean(), 0).add(alz_cds.mean(), 1)
        .add(gre_msgs.mean(), 0).add(gre_cds.mean(), 1)
        .add(gre_epochs.mean(), 1);
  }
  duel.print(std::cout);
  std::cout << "(The leaderless protocol avoids the election flood but "
               "pays with a larger CDS; the localized Section IV greedy "
               "buys a smaller CDS with per-epoch label-propagation "
               "messages — the full design-space of the paper's survey.)\n";

  falsifier.report("distributed_cost");
  return falsifier.exit_code();
}
