// Experiment E25: batch-solve thread scaling. Solves one fixed corpus
// of UDG instances with the Section IV greedy at 1/2/4/8 workers and
// prints throughput, speedup and pool counters per worker count.
//
// The *checked* invariant is determinism, not speed: every outcome and
// every aggregate at T > 1 workers must be bit-identical to the
// 1-worker run (index-aligned slots + index-ordered aggregation). A
// mismatch is a real bug — a race or a scheduling-dependent reduction —
// and exits non-zero. Speedup is reported but never asserted: it is
// bounded by the host's core count (printed alongside), and a
// single-core CI box legitimately shows ~1.0x.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "par/batch_solver.hpp"
#include "par/thread_pool.hpp"
#include "udg/instance.hpp"

namespace {

using namespace mcds;

bool identical(const par::BatchResult& a, const par::BatchResult& b) {
  if (a.outcomes.size() != b.outcomes.size()) return false;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    if (a.outcomes[i].cds != b.outcomes[i].cds) return false;
    if (a.outcomes[i].dominators != b.outcomes[i].dominators) return false;
    if (a.outcomes[i].nodes != b.outcomes[i].nodes) return false;
  }
  return a.cds_size.mean == b.cds_size.mean &&
         a.cds_size.stdev == b.cds_size.stdev &&
         a.dominators.mean == b.dominators.mean &&
         a.backbone_fraction.mean == b.backbone_fraction.mean;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t instances = 96;
  std::size_t nodes = 512;
  if (argc > 1) instances = std::strtoul(argv[1], nullptr, 10);
  if (argc > 2) nodes = std::strtoul(argv[2], nullptr, 10);

  udg::InstanceParams params;
  params.nodes = nodes;
  params.side = std::sqrt(static_cast<double>(nodes)) * 0.85;
  const auto corpus = par::make_corpus(params, instances, 42);

  std::printf("E25: batch-solve thread scaling\n");
  std::printf("corpus: %zu instances, %zu nodes each; host cores: %u\n\n",
              corpus.size(), nodes, std::thread::hardware_concurrency());
  std::printf("%8s %12s %14s %9s %8s %10s\n", "threads", "wall_s",
              "inst_per_s", "speedup", "steals", "mean_cds");

  par::BatchResult baseline;
  bool ok = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    par::ThreadPool pool(threads);
    obs::MetricsRegistry registry;
    obs::Obs o;
    o.metrics = &registry;
    const par::BatchSolver solver(pool, o);
    const auto result = solver.solve(corpus, par::solve_greedy);
    if (threads == 1) {
      baseline = result;
    } else if (!identical(baseline, result)) {
      std::printf("FALSIFIED: %zu-thread outcomes differ from 1-thread\n",
                  threads);
      ok = false;
    }
    const double speedup =
        baseline.wall_seconds > 0.0 && result.wall_seconds > 0.0
            ? baseline.wall_seconds / result.wall_seconds
            : 1.0;
    std::printf("%8zu %12.4f %14.1f %8.2fx %8.0f %10.2f\n", threads,
                result.wall_seconds,
                static_cast<double>(corpus.size()) / result.wall_seconds,
                speedup, registry.gauge("par.pool.steals").value(),
                result.cds_size.mean);
  }
  std::printf("\ndeterminism across thread counts: %s\n",
              ok ? "OK (bit-identical)" : "VIOLATED");
  return ok ? 0 : 1;
}
