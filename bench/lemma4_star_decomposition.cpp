// Experiment E9 (Lemma 4): every connected planar set of >= 2 points has
// a non-trivial star-decomposition. Runs the constructive algorithm over
// random connected deployments and reports decomposition shape
// statistics (star count, star sizes) plus validation.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "packing/star_decomposition.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

int main() {
  using namespace mcds;
  bench::banner("E9 / Lemma 4",
                "non-trivial star-decompositions of random connected sets");
  bench::Falsifier falsifier;

  sim::Table table({"n (points)", "instances", "valid", "mean #stars",
                    "mean star size", "max star size"});
  for (const std::size_t n : {10u, 25u, 50u, 100u, 200u}) {
    const std::size_t instances = 20;
    std::size_t valid = 0;
    sim::Accumulator stars_acc, size_acc;
    double max_size = 0.0;
    for (std::size_t t = 0; t < instances; ++t) {
      udg::InstanceParams params;
      params.nodes = n;
      params.side = std::max(2.0, std::sqrt(static_cast<double>(n)) * 0.9);
      const auto inst = udg::generate_largest_component_instance(
          params, 17 * n + t);
      if (inst.points.size() < 2) continue;
      const auto stars = packing::star_decomposition(inst.points);
      const bool ok =
          packing::is_nontrivial_star_decomposition(inst.points, stars);
      falsifier.check(ok, "Lemma 4: decomposition must be valid");
      if (ok) ++valid;
      stars_acc.add(static_cast<double>(stars.size()));
      for (const auto& s : stars) {
        size_acc.add(static_cast<double>(s.size()));
        max_size = std::max(max_size, static_cast<double>(s.size()));
      }
    }
    table.row()
        .add(n)
        .add(instances)
        .add(valid)
        .add(stars_acc.mean(), 2)
        .add(size_acc.mean(), 2)
        .add(max_size, 0);
  }
  table.print(std::cout);

  falsifier.report("lemma4_star_decomposition");
  return falsifier.exit_code();
}
