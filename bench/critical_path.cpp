// Experiment E28: causal critical paths of the distributed protocols,
// clean channels vs faulty channels (drop + duplicate + delay over
// reliable links). Every message carries a causal span; the critical
// path — the longest send->deliver->send chain — is the convergence
// lower bound of the protocol run, independent of how the synchronous
// rounds batched the traffic. Running the three constructions plus the
// failure detector exercises all 8 protocol phase labels:
// leader_election, bfs_tree, mis_election, connector_selection,
// greedy_label, greedy_bid, alzoubi_connect, failure_detector.
//
// Falsifiers (proven invariants, the bench fails if one breaks):
//  - every chain hop occupies >= 1 round, so a trace's critical path
//    never exceeds the rounds its runtime executed;
//  - delivered spans never exceed recorded spans;
//  - the report is byte-identical across repeated executions (the
//    determinism contract of the logical-clock tracer).

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "dist/alzoubi_protocol.hpp"
#include "dist/distributed_cds.hpp"
#include "dist/failure_detector.hpp"
#include "dist/greedy_protocol.hpp"
#include "obs/causal.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

namespace {

using namespace mcds;

dist::RunConfig faulty_config(obs::CausalTracer* tracer) {
  dist::RunConfig cfg;
  cfg.plan.seed = 5;
  cfg.plan.link.drop = 0.15;
  cfg.plan.link.duplicate = 0.05;
  cfg.plan.link.max_delay = 2;
  cfg.reliable = true;
  cfg.obs.causal = tracer;
  return cfg;
}

/// Runs every protocol once under \p cfg and returns the critical-path
/// report over all of their traces (one tracer spans the whole sweep).
obs::CriticalPathReport sweep(const graph::Graph& g, dist::RunConfig cfg,
                              obs::CausalTracer& tracer,
                              bench::Falsifier& falsifier) {
  cfg.obs.causal = &tracer;
  const auto waf = dist::distributed_waf_cds(g, cfg);
  const auto greedy = dist::distributed_greedy_cds(g, cfg);
  const auto alzoubi = dist::distributed_alzoubi_cds(g, cfg);
  dist::FailureDetectorParams fd;
  const auto detect = dist::detect_failures(g, cfg, fd);

  falsifier.check(waf.total.critical_path <= waf.total.rounds,
                  "waf: critical path exceeds rounds executed");
  falsifier.check(greedy.total.critical_path <= greedy.total.rounds,
                  "greedy: critical path exceeds rounds executed");
  falsifier.check(alzoubi.total.critical_path <= alzoubi.total.rounds,
                  "alzoubi: critical path exceeds rounds executed");
  falsifier.check(detect.stats.critical_path <= detect.stats.rounds,
                  "detector: critical path exceeds rounds executed");
  for (const obs::CausalTraceInfo& t : tracer.traces()) {
    falsifier.check(t.delivered <= t.spans,
                    "trace " + t.label + ": delivered > recorded spans");
  }
  return obs::critical_path(tracer);
}

/// Sums per-label critical paths of a report (a label can appear in
/// several traces: greedy epochs, retries of a phase).
std::size_t label_total(const obs::CriticalPathReport& report,
                        const std::string& label) {
  std::size_t total = 0;
  for (const auto& t : report.traces) {
    if (t.label == label) total += t.length;
  }
  return total;
}

}  // namespace

int main() {
  bench::banner("E28 / causal critical paths",
                "longest message chains, clean vs faulty channels");
  bench::Falsifier falsifier;

  const char* const kLabels[] = {
      "leader_election", "bfs_tree",    "mis_election",    "connector_selection",
      "greedy_label",    "greedy_bid",  "alzoubi_connect", "failure_detector",
  };

  for (const std::size_t n : {100u, 250u}) {
    udg::InstanceParams params;
    params.nodes = n;
    params.side = std::sqrt(static_cast<double>(n)) * 0.85;
    const auto inst = udg::generate_largest_component_instance(params, n + 3);
    std::cout << "\nn=" << n << " (" << inst.graph.num_edges()
              << " links):\n";

    obs::CausalTracer clean_tracer;
    const auto clean =
        sweep(inst.graph, dist::RunConfig{}, clean_tracer, falsifier);
    obs::CausalTracer faulty_tracer;
    const auto faulty = sweep(inst.graph, faulty_config(nullptr),
                              faulty_tracer, falsifier);

    // Determinism: an identical execution writes an identical report.
    obs::CausalTracer repeat_tracer;
    const auto repeat = sweep(inst.graph, faulty_config(nullptr),
                              repeat_tracer, falsifier);
    std::ostringstream once, again;
    faulty.write(once);
    repeat.write(again);
    falsifier.check(once.str() == again.str(),
                    "critical-path report must be byte-identical across "
                    "identical executions");

    sim::Table table({"phase", "clean cp", "faulty cp"});
    for (const char* label : kLabels) {
      table.row()
          .add(label)
          .add(label_total(clean, label))
          .add(label_total(faulty, label));
      // Every phase of every protocol must have produced a trace.
      falsifier.check(label_total(clean, label) > 0 || n < 2,
                      std::string(label) + ": no causal chain recorded");
    }
    table.print(std::cout);
  }

  std::cout << "(faulty = 15% drop, 5% duplication, delay <= 2 over "
               "reliable links; retransmissions extend the original "
               "chain, so lossy critical paths dominate clean ones)\n";

  falsifier.report("critical_path");
  return falsifier.exit_code();
}
