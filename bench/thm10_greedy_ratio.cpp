// Experiment E6 (Theorem 10): the new greedy-connector CDS has size at
// most 6 7/18·γ_c. Mirrors E5's two-part protocol, and additionally
// reports the C1/C2/C3 decomposition statistics from the proof (the
// prefix with gain >= 4/by Lemma 9 thresholds) via the recorded step
// gains.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "core/bounds.hpp"
#include "core/greedy_connect.hpp"
#include "exact/exact_cds.hpp"
#include "graph/small_graph.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

int main() {
  using namespace mcds;
  bench::banner("E6 / Theorem 10",
                "greedy-connector CDS size vs 6 7/18 gamma_c");
  bench::Falsifier falsifier;

  std::cout << "\nPart A - exact gamma_c (n <= 30, SmallGraph128):\n";
  sim::Table exact_table({"n", "instances", "worst ratio", "mean ratio",
                          "proven bound 6.389"});
  for (const std::size_t n : {12u, 18u, 24u, 30u}) {
    double worst = 0.0;
    sim::Accumulator acc;
    std::size_t solved = 0;
    for (std::uint64_t seed = 1; solved < 60 && seed <= 600; ++seed) {
      udg::InstanceParams params;
      params.nodes = n;
      params.side = 2.5 + static_cast<double>(seed % 4) * 0.4;
      params.max_retries = 0;
      const auto inst = udg::generate_connected_instance(params, seed * 43);
      if (!inst) continue;
      ++solved;
      const auto greedy = core::greedy_cds(inst->graph, 0);
      const std::size_t gamma_c = exact::connected_domination_number(
          graph::SmallGraph128(inst->graph));
      const double ratio = static_cast<double>(greedy.cds.size()) /
                           static_cast<double>(gamma_c);
      worst = std::max(worst, ratio);
      acc.add(ratio);
      falsifier.check(
          static_cast<double>(greedy.cds.size()) <=
              core::bounds::greedy_upper_bound(gamma_c) + 1e-9,
          "Theorem 10: |I u C| <= 6 7/18 gamma_c");
      // Lemma 9 consequence: every greedy step has gain >= 1 and the
      // first step's gain is at least ceil(q/gamma_c) - 1.
      if (!greedy.steps.empty()) {
        const auto& s0 = greedy.steps.front();
        const std::size_t lemma9 =
            (s0.q_before + gamma_c - 1) / gamma_c;  // ceil(q/gc)
        falsifier.check(s0.gain + 1 >= lemma9,
                        "Lemma 9: first gain >= ceil(q/gamma_c) - 1");
      }
    }
    exact_table.row().add(n).add(solved).add(worst, 3).add(acc.mean(), 3)
        .add(core::bounds::kGreedyRatio, 3);
  }
  exact_table.print(std::cout);

  std::cout << "\nPart B - large instances, gamma_c >= ceil(3(|I|-1)/11), "
               "with connector-gain histogram:\n";
  sim::Table big_table({"n", "side", "mean |CDS|", "mean |C|",
                        "steps w/ gain>=2 (%)",
                        "worst |CDS|/LB(gamma_c)"});
  for (const std::size_t n : {100u, 300u, 600u}) {
    for (const double side : {8.0, 14.0}) {
      double worst = 0.0;
      sim::Accumulator cds_acc, conn_acc;
      std::size_t steps_total = 0, steps_big_gain = 0;
      for (std::uint64_t t = 0; t < 10; ++t) {
        udg::InstanceParams params;
        params.nodes = n;
        params.side = side;
        const auto inst =
            udg::generate_largest_component_instance(params, 9000 + t);
        const auto greedy = core::greedy_cds(inst.graph, 0);
        const std::size_t lb =
            core::bounds::gamma_c_lower_bound_from_independent(
                greedy.phase1.mis.size());
        worst = std::max(worst, static_cast<double>(greedy.cds.size()) /
                                    static_cast<double>(lb));
        cds_acc.add(static_cast<double>(greedy.cds.size()));
        conn_acc.add(static_cast<double>(greedy.connectors.size()));
        for (const auto& s : greedy.steps) {
          ++steps_total;
          if (s.gain >= 2) ++steps_big_gain;
        }
      }
      big_table.row().add(n).add(side, 1).add(cds_acc.mean(), 1)
          .add(conn_acc.mean(), 1)
          .add(steps_total == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(steps_big_gain) /
                         static_cast<double>(steps_total),
               1)
          .add(worst, 3);
    }
  }
  big_table.print(std::cout);

  falsifier.report("thm10_greedy_ratio");
  return falsifier.exit_code();
}
