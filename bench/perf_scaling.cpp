// Experiment E12: runtime scaling of the construction algorithms
// (google-benchmark). Not a paper artifact — an engineering companion
// that documents the asymptotic behavior of this implementation.

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <memory>

#include "baselines/guha_khuller.hpp"
#include "baselines/stojmenovic.hpp"
#include "core/connector_engine.hpp"
#include "core/greedy_connect.hpp"
#include "core/kmcds.hpp"
#include "core/waf.hpp"
#include "par/batch_solver.hpp"
#include "par/thread_pool.hpp"
#include "serve/server.hpp"
#include "dist/distributed_cds.hpp"
#include "dist/failure_detector.hpp"
#include "dist/fault.hpp"
#include "dist/survivability.hpp"
#include "dyn/dynamic_cds.hpp"
#include "obs/causal.hpp"
#include "obs/obs.hpp"
#include "exact/exact_cds.hpp"
#include "graph/small_graph.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "udg/builder.hpp"
#include "udg/instance.hpp"

namespace {

using namespace mcds;

udg::UdgInstance make_instance(std::size_t n) {
  udg::InstanceParams params;
  params.nodes = n;
  params.side = std::sqrt(static_cast<double>(n)) * 0.85;
  return udg::generate_largest_component_instance(params, 42 + n);
}

void BM_BuildUdg(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = make_instance(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(udg::build_udg(inst.points));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildUdg)->Range(64, 4096)->Complexity(benchmark::oN);

void BM_WafCds(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::waf_cds(inst.graph, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WafCds)->Range(64, 4096)->Complexity();

void BM_GreedyCds(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::greedy_cds(inst.graph, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyCds)->Range(64, 4096)->Complexity();

// Phase 2 head-to-head: the incremental union-find + lazy-gain-queue
// engine vs the per-round full-rescan reference, on identical MIS
// inputs. These two must produce bit-identical traces (differential
// tested); only the wall clock may differ. scripts/bench_snapshot.sh
// records the trajectory into BENCH_phase2.json.
void BM_GreedyConnectorsIncremental(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  const auto phase1 = core::bfs_first_fit_mis(inst.graph, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::greedy_connectors(inst.graph, phase1.mis));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyConnectorsIncremental)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Complexity(benchmark::oNLogN);

void BM_GreedyConnectorsReference(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  const auto phase1 = core::bfs_first_fit_mis(inst.graph, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::greedy_connectors_reference(inst.graph, phase1.mis));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyConnectorsReference)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Complexity(benchmark::oNSquared);

// Observability overhead head-to-head (BENCH_TOPIC=obs): the phase-2
// workload above runs with instrumentation compiled in but disabled
// (null sinks — the BM_GreedyConnectorsIncremental numbers must stay
// within noise of the BENCH_phase2.json baseline), while this variant
// pays for live metric counters plus trace spans. The gap between the
// two is the price of turning observability on.
void BM_GreedyConnectorsObserved(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  const auto phase1 = core::bfs_first_fit_mis(inst.graph, 0);
  for (auto _ : state) {
    obs::MetricsRegistry registry;
    obs::TraceRecorder recorder(1u << 12);
    const obs::Obs o{&registry, &recorder};
    benchmark::DoNotOptimize(
        core::greedy_connectors(inst.graph, phase1.mis, o));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyConnectorsObserved)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Complexity(benchmark::oNLogN);

// Causal-tracing overhead (BENCH_TOPIC=obs): the full distributed waf
// construction with a CausalTracer stamping a span per transmission,
// against BM_FaultFreeRuntime (same construction, null sinks) as the
// baseline. The delta prices the per-message on_send/on_deliver pair.
void BM_CausalTracedRuntime(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    obs::CausalTracer tracer;
    dist::RunConfig cfg;
    cfg.obs.causal = &tracer;
    benchmark::DoNotOptimize(dist::distributed_waf_cds(inst.graph, cfg));
    benchmark::DoNotOptimize(tracer.num_spans());
  }
}
BENCHMARK(BM_CausalTracedRuntime)->Range(64, 512);

// CSR-vs-nested locality head-to-head (BENCH_TOPIC=par): the *same*
// templated selection code (BasicConnectorEngine) instantiated over the
// flat CSR view and over the retained vector-of-vectors layout, whose
// constructor replays the interleaved push_back growth the CSR
// conversion removed. The delta between the two is pure storage-layout
// effect — no algorithmic difference (the engines are differential-
// tested to be trace-identical).
template <class View>
std::size_t drain_connector_engine(View view,
                                   std::span<const graph::NodeId> mis) {
  core::BasicConnectorEngine<View> engine(view, mis);
  std::size_t added = 0;
  while (!engine.done()) {
    benchmark::DoNotOptimize(engine.select_next());
    ++added;
  }
  return added;
}

void BM_GreedyConnectorsCsr(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  const auto phase1 = core::bfs_first_fit_mis(inst.graph, 0);
  const graph::FrozenGraph fg(inst.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(drain_connector_engine(fg, phase1.mis));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyConnectorsCsr)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Complexity(benchmark::oNLogN);

void BM_GreedyConnectorsNested(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  const auto phase1 = core::bfs_first_fit_mis(inst.graph, 0);
  const graph::NestedGraph nested(inst.graph);
  const graph::NestedView view(nested);
  for (auto _ : state) {
    benchmark::DoNotOptimize(drain_connector_engine(view, phase1.mis));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyConnectorsNested)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Complexity(benchmark::oNLogN);

// Parallel UDG construction: grid sweep fanned over the pool (the
// builder's serial prologue — cell hashing — is part of the measured
// cost, as in BM_BuildUdg). Worker count is the auto default, so on a
// multi-core host this shows the build-side speedup and on a single-core
// host it measures the parallel path's overhead honestly.
void BM_BuildUdgParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = make_instance(n);
  par::ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(udg::build_udg(inst.points, 1.0, pool));
  }
  state.counters["threads"] = static_cast<double>(pool.size());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildUdgParallel)->Arg(4096)->Arg(16384)->Complexity();

// Batch throughput vs worker count (BENCH_TOPIC=par, EXPERIMENTS E25):
// a fixed 64-instance corpus solved with the Section IV greedy at 1, 2,
// 4 and 8 workers. items_per_second is the figure of merit; scaling is
// bounded by the host's core count (the "threads" counter records the
// requested workers, not the cores present).
void BM_BatchSolve(benchmark::State& state) {
  static const auto corpus = [] {
    udg::InstanceParams params;
    params.nodes = 256;
    params.side = std::sqrt(256.0) * 0.85;
    return par::make_corpus(params, 64, 42);
  }();
  par::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const par::BatchSolver solver(pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(corpus, par::solve_greedy));
  }
  state.counters["threads"] = static_cast<double>(pool.size());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus.size()));
}
BENCHMARK(BM_BatchSolve)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_GuhaKhuller(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::guha_khuller_cds(inst.graph));
  }
}
BENCHMARK(BM_GuhaKhuller)->Range(64, 1024);

void BM_Stojmenovic(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::stojmenovic_cds(inst.graph));
  }
}
BENCHMARK(BM_Stojmenovic)->Range(64, 1024);

void BM_DistributedWaf(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::distributed_waf_cds(inst.graph));
  }
}
BENCHMARK(BM_DistributedWaf)->Range(64, 512);

// Fault-layer overhead microbenchmarks. BM_FaultFreeRuntime is the
// unchanged ideal path; BM_FaultInjectedRuntime pays the channel-model
// sampling on every send; BM_ReliableWaf adds the ack/retransmission
// wrapper on a lossy network. scripts/bench_snapshot.sh records these
// into BENCH_fault.json (BENCH_TOPIC=fault).
void BM_FaultFreeRuntime(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist::distributed_waf_cds(inst.graph, dist::RunConfig{}));
  }
}
BENCHMARK(BM_FaultFreeRuntime)->Range(64, 512);

void BM_FaultInjectedRuntime(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  dist::RunConfig cfg;
  cfg.plan.link = {0.1, 0.05, 1};
  cfg.plan.seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::distributed_waf_cds(inst.graph, cfg));
  }
}
BENCHMARK(BM_FaultInjectedRuntime)->Range(64, 512);

// Partition enforcement happens on every send (a group-label compare
// before the channel model runs), so its cost shows up as the gap to
// BM_FaultFreeRuntime on the same heartbeat workload. The schedule cuts
// the network in half at round 3 and heals it at round 20; the detector
// runs a fixed 48-round horizon, so the workload is size-deterministic.
// scripts/bench_snapshot.sh records this into BENCH_partition.json
// (BENCH_TOPIC=partition).
void BM_PartitionedRuntime(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  const std::size_t n = inst.graph.num_nodes();
  dist::RunConfig cfg;
  dist::PartitionEvent split;
  split.round = 3;
  split.groups.resize(2);
  for (graph::NodeId v = 0; v < n; ++v) {
    split.groups[v < n / 2 ? 0 : 1].push_back(v);
  }
  cfg.plan.partitions.push_back(split);
  cfg.plan.partitions.push_back({20, {}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::detect_failures(inst.graph, cfg));
  }
}
BENCHMARK(BM_PartitionedRuntime)->Range(64, 512);

void BM_HeartbeatRuntime(benchmark::State& state) {
  // The same detector workload with no partition: the baseline the
  // per-send group check is measured against.
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::detect_failures(inst.graph));
  }
}
BENCHMARK(BM_HeartbeatRuntime)->Range(64, 512);

void BM_ReliableWaf(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  dist::RunConfig cfg;
  cfg.reliable = true;
  cfg.plan.link.drop = 0.2;
  cfg.plan.seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::distributed_waf_cds(inst.graph, cfg));
  }
}
BENCHMARK(BM_ReliableWaf)->Range(64, 256);

void BM_ExactGammaC(benchmark::State& state) {
  // Exponential solver: small n only; shows why approximation matters.
  const auto n = static_cast<std::size_t>(state.range(0));
  udg::InstanceParams params;
  params.nodes = n;
  params.side = 2.8;
  const auto inst = udg::generate_largest_component_instance(params, 5);
  const graph::SmallGraph sg(inst.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::connected_domination_number(sg));
  }
}
BENCHMARK(BM_ExactGammaC)->DenseRange(10, 18, 4);

// Experiment E26: streaming churn throughput of the incremental engine
// (events/s at constant density) against per-event solve-from-scratch.
// scripts/bench_snapshot.sh BENCH_TOPIC=dynamic records both into
// BENCH_dynamic.json; the README quotes the crossover.

std::vector<geom::Vec2> uniform_points(std::size_t n, double side,
                                       std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<geom::Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  return pts;
}

// One churn event against the engine: mostly small jittered moves with a
// sprinkling of fail-stop crashes and recoveries (the same mix the
// differential suite validates).
void churn_event(dyn::DynamicCds& engine, sim::Rng& rng, double side) {
  const auto v =
      static_cast<graph::NodeId>(rng.uniform_int(engine.num_nodes()));
  if (!engine.alive(v)) {
    engine.revive(v, {rng.uniform(0.0, side), rng.uniform(0.0, side)});
    return;
  }
  if (rng.uniform01() < 0.1) {
    engine.erase(v);
    return;
  }
  const geom::Vec2 p = engine.position(v);
  const auto clamp = [side](double x) {
    return x < 0.0 ? 0.0 : (x > side ? side : x);
  };
  engine.move(v, {clamp(p.x + rng.uniform(-0.5, 0.5)),
                  clamp(p.y + rng.uniform(-0.5, 0.5))});
}

void BM_DynamicChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double side = std::sqrt(static_cast<double>(n)) * 0.85;
  dyn::DynamicCds engine(uniform_points(n, side, 42 + n));
  sim::Rng rng(7 * n + 1);
  for (auto _ : state) {
    churn_event(engine, rng, side);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DynamicChurn)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Complexity(benchmark::o1);

void BM_DynamicRebuild(benchmark::State& state) {
  // The baseline the engine replaces: apply the same event stream to a
  // plain position/liveness array and re-solve from scratch every event.
  const auto n = static_cast<std::size_t>(state.range(0));
  const double side = std::sqrt(static_cast<double>(n)) * 0.85;
  auto pts = uniform_points(n, side, 42 + n);
  std::vector<std::uint8_t> alive(n, 1);
  sim::Rng rng(7 * n + 1);
  const auto clamp = [side](double x) {
    return x < 0.0 ? 0.0 : (x > side ? side : x);
  };
  for (auto _ : state) {
    state.PauseTiming();
    const auto v = static_cast<std::size_t>(rng.uniform_int(n));
    if (!alive[v]) {
      alive[v] = 1;
      pts[v] = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
    } else if (rng.uniform01() < 0.1) {
      alive[v] = 0;
    } else {
      pts[v] = {clamp(pts[v].x + rng.uniform(-0.5, 0.5)),
                clamp(pts[v].y + rng.uniform(-0.5, 0.5))};
    }
    std::vector<geom::Vec2> alive_pts;
    alive_pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (alive[i]) alive_pts.push_back(pts[i]);
    }
    state.ResumeTiming();
    dyn::DynamicCds scratch(alive_pts);
    benchmark::DoNotOptimize(scratch.cds_size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DynamicRebuild)->Arg(10000)->Arg(100000)->Complexity();

// ---------------------------------------------------------------------
// (k,m)-CDS survivability: construction cost of the fault-tolerant
// variants, and the crash-survival harness over a hostile schedule.
// scripts/bench_snapshot.sh (BENCH_TOPIC=survivability) records these
// into BENCH_survivability.json; the per-variant counters are the raw
// numbers behind the EXPERIMENTS E27 table.

void BM_SurvivabilityBuild(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  const core::KmParams params{static_cast<std::uint32_t>(state.range(1)),
                              static_cast<std::uint32_t>(state.range(2))};
  std::size_t backbone = 0;
  for (auto _ : state) {
    const auto r = core::kmcds(inst.graph, params);
    backbone = r.backbone.size();
    benchmark::DoNotOptimize(r.backbone.data());
  }
  state.counters["backbone"] = static_cast<double>(backbone);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SurvivabilityBuild)
    ->Args({256, 1, 1})
    ->Args({256, 1, 2})
    ->Args({256, 2, 1})
    ->Args({256, 2, 2})
    ->Args({1024, 1, 1})
    ->Args({1024, 1, 2})
    ->Args({1024, 2, 1})
    ->Args({1024, 2, 2});

void BM_SurvivabilityMassacre(benchmark::State& state) {
  const auto inst = make_instance(256);
  const core::KmParams params{static_cast<std::uint32_t>(state.range(0)),
                              static_cast<std::uint32_t>(state.range(1))};
  const dist::SurvivabilityVariant variant{"bench", params, 0};
  // The same hostile schedule for every variant — kill the plain CDS's
  // members in order — so events_until_invalid is comparable across
  // rows.
  const auto plain = core::kmcds(inst.graph, {1, 1});
  dist::FaultPlan plan;
  std::size_t round = 1;
  for (const auto v : plain.backbone) {
    plan.schedule.push_back({round++, v, false});
  }
  dist::SurvivabilityReport report;
  for (auto _ : state) {
    report = dist::survive_fault_plan(inst.graph, variant, plan);
    benchmark::DoNotOptimize(report.events);
  }
  state.counters["backbone"] = static_cast<double>(report.backbone_size);
  state.counters["events_until_invalid"] =
      static_cast<double>(report.events_until_invalid());
  state.counters["min_coverage"] = report.min_coverage;
  state.counters["heal_added"] = static_cast<double>(report.heal_added);
}
BENCHMARK(BM_SurvivabilityMassacre)
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({2, 1})
    ->Args({2, 2});

// Solve-server benchmarks (BENCH_serve.json). BM_ServeRoundTrip is the
// end-to-end cost of one admitted request through the full stack
// (queue, EDF batcher, pool, watchdog accounting) with a real (1,1)
// solve. BM_ServeOverloadedThroughput drives shaped 1ms solves at a
// multiple of nominal capacity, with admission control on (arg 1:
// bounded queue + overload controller) or off (arg 0: effectively
// unbounded queue), and records goodput and the client-observed p95 —
// the knee: past 1x offered, "on" holds p95 flat by rejecting at the
// door while "off" lets queueing delay grow with the backlog.
void BM_ServeRoundTrip(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)));
  serve::Server server(serve::ServerParams{});
  std::size_t cds = 0;
  for (auto _ : state) {
    serve::Request req;
    req.instance = inst;
    req.tier = serve::Tier::kKm11;
    req.deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    const serve::Response r = server.submit(std::move(req)).wait();
    if (r.status != serve::Status::kOk) state.SkipWithError("solve failed");
    cds = r.cds.size();
    benchmark::DoNotOptimize(cds);
  }
  state.counters["cds"] = static_cast<double>(cds);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ServeRoundTrip)->Range(64, 512);

void BM_ServeOverloadedThroughput(benchmark::State& state) {
  const double mult = static_cast<double>(state.range(0));
  const bool admission = state.range(1) != 0;
  constexpr std::size_t kThreads = 2;
  constexpr auto kService = std::chrono::milliseconds(1);
  constexpr double kBudgetS = 0.100;
  double goodput = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double ok = 0.0, turned_away = 0.0;
  for (auto _ : state) {
    serve::ServerParams p;
    p.threads = kThreads;
    p.max_batch = kThreads;
    if (admission) {
      p.queue_capacity = 32;
    } else {
      p.queue_capacity = 1 << 20;
      p.overload.enter_depth = 1.0;
      p.overload.enter_p95_s = 1e9;
      p.overload.exit_p95_s = 1e8;
    }
    p.solve_hook = [&](const serve::Request&, serve::Tier,
                       serve::SharedState&) {
      std::this_thread::sleep_for(kService);
      par::BatchOutcome o;
      o.cds = {0};
      o.nodes = 1;
      return o;
    };
    serve::Server server(std::move(p));
    const double capacity =
        static_cast<double>(kThreads) /
        std::chrono::duration<double>(kService).count();
    const double rate = mult * capacity;
    const std::size_t total = static_cast<std::size_t>(rate * 0.4);
    const auto gap =
        std::chrono::nanoseconds(static_cast<std::int64_t>(1e9 / rate));
    std::vector<serve::Ticket> tickets;
    tickets.reserve(total);
    const auto started = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < total; ++i) {
      serve::Request req;
      req.instance.points = {{0.0, 0.0}};
      req.instance.graph = graph::Graph(1);
      req.deadline = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<serve::Duration>(
                         std::chrono::duration<double>(kBudgetS));
      tickets.push_back(server.submit(std::move(req)));
      std::this_thread::sleep_for(gap);
    }
    server.drain();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    sim::Accumulator lat;
    for (serve::Ticket& t : tickets) {
      const serve::Response r = t.wait();
      if (r.status == serve::Status::kOk) lat.add(r.latency_seconds * 1e3);
    }
    const serve::ServerStats st = server.stats();
    if (st.leaked() != 0) state.SkipWithError("leaked requests");
    goodput = static_cast<double>(st.ok) / elapsed;
    p50 = lat.p50();
    p95 = lat.p95();
    p99 = lat.p99();
    ok = static_cast<double>(st.ok);
    turned_away = static_cast<double>(st.rejected + st.shed + st.timeout);
  }
  state.counters["goodput_per_s"] = goodput;
  state.counters["p50_ms"] = p50;
  state.counters["p95_ms"] = p95;
  state.counters["p99_ms"] = p99;
  state.counters["ok"] = ok;
  state.counters["turned_away"] = turned_away;
}
BENCHMARK(BM_ServeOverloadedThroughput)
    ->Args({1, 1})
    ->Args({1, 0})
    ->Args({2, 1})
    ->Args({2, 0})
    ->Args({4, 1})
    ->Args({4, 0})
    ->Unit(benchmark::kMillisecond);

// Experiment E30: parallel round execution of the distributed runtime.
// The two heavyweight WAF phases (rank MIS election, connector
// selection) run end-to-end on large connected UDGs, serially
// (threads = 0: the golden single-thread engine with the recycled
// inbox arena) and on a 1/2/8-worker pool. Parallel rounds are
// byte-identical to serial (tests/test_dist_par.cpp proves it per
// run); only the wall clock may differ. scripts/bench_snapshot.sh
// records the trajectory into BENCH_dist.json.

struct DistBenchInputs {
  udg::UdgInstance inst;
  graph::NodeId leader = 0;
  std::vector<graph::NodeId> parent;
  std::vector<graph::NodeId> level;
  std::vector<bool> in_mis;
};

const DistBenchInputs& dist_bench_inputs(std::size_t n) {
  static std::map<std::size_t, DistBenchInputs> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    DistBenchInputs in;
    udg::InstanceParams params;
    params.nodes = n;
    params.side = std::sqrt(static_cast<double>(n)) * 0.55;
    in.inst = udg::generate_largest_component_instance(params, 42 + n);
    const auto tree = dist::build_bfs_tree(in.inst.graph, in.leader);
    in.parent = tree.parent;
    in.level = tree.level;
    in.in_mis = dist::elect_mis(in.inst.graph, in.level).in_mis;
    it = cache.emplace(n, std::move(in)).first;
  }
  return it->second;
}

void BM_DistMisRounds(benchmark::State& state) {
  const auto& in = dist_bench_inputs(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<std::size_t>(state.range(1));
  std::unique_ptr<par::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<par::ThreadPool>(threads);
  double rounds = 0.0;
  double messages = 0.0;
  for (auto _ : state) {
    dist::RunConfig cfg;
    cfg.pool = pool.get();
    const auto r = dist::elect_mis(in.inst.graph, in.level, cfg);
    rounds += static_cast<double>(r.stats.rounds);
    messages += static_cast<double>(r.stats.messages);
    benchmark::DoNotOptimize(r.mis.size());
  }
  state.counters["rounds_per_s"] =
      benchmark::Counter(rounds, benchmark::Counter::kIsRate);
  state.counters["msgs_per_s"] =
      benchmark::Counter(messages, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DistMisRounds)
    ->ArgNames({"n", "threads"})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 8})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 8})
    ->Args({1000000, 0})
    ->Args({1000000, 1})
    ->Args({1000000, 2})
    ->Args({1000000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_DistConnectorRounds(benchmark::State& state) {
  const auto& in = dist_bench_inputs(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<std::size_t>(state.range(1));
  std::unique_ptr<par::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<par::ThreadPool>(threads);
  double rounds = 0.0;
  double messages = 0.0;
  for (auto _ : state) {
    dist::RunConfig cfg;
    cfg.pool = pool.get();
    const auto r = dist::select_connectors(in.inst.graph, in.leader, in.parent,
                                           in.in_mis, cfg);
    rounds += static_cast<double>(r.stats.rounds);
    messages += static_cast<double>(r.stats.messages);
    benchmark::DoNotOptimize(r.cds.size());
  }
  state.counters["rounds_per_s"] =
      benchmark::Counter(rounds, benchmark::Counter::kIsRate);
  state.counters["msgs_per_s"] =
      benchmark::Counter(messages, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DistConnectorRounds)
    ->ArgNames({"n", "threads"})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 8})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 8})
    ->Args({1000000, 0})
    ->Args({1000000, 1})
    ->Args({1000000, 2})
    ->Args({1000000, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // The distro's libbenchmark is compiled without NDEBUG and therefore
  // self-reports library_build_type "debug" no matter how *this* repo
  // is compiled. Record the harness's own build type under a separate
  // context key so scripts/bench_snapshot.sh can gate snapshots on an
  // optimized build.
#if defined(NDEBUG) && defined(__OPTIMIZE__)
  benchmark::AddCustomContext("mcds_build_type", "release");
#else
  benchmark::AddCustomContext("mcds_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
