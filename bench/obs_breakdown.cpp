// Experiment E23: per-phase round/message breakdown of the distributed
// constructions, read back from the observability layer. Each run
// executes with a live MetricsRegistry; the per-protocol counters
// (`<phase>.rounds`, `<phase>.messages`) the runtime flushes are exactly
// the numbers the RunStats API reports, so the table doubles as a
// cross-check of the instrumentation.
//
// Usage: obs_breakdown [n...]   (default: 200 400 1000)
// EXPERIMENTS.md commits the full-scale table (1000 4000 16000).

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/validate.hpp"
#include "dist/distributed_cds.hpp"
#include "dist/greedy_protocol.hpp"
#include "obs/obs.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

namespace {

using namespace mcds;

udg::UdgInstance make_instance(std::size_t n) {
  udg::InstanceParams params;
  params.nodes = n;
  params.side = std::sqrt(static_cast<double>(n)) * 0.85;
  return udg::generate_largest_component_instance(params, 42 + n);
}

std::uint64_t counter_of(const obs::MetricsRegistry& reg,
                         const std::string& name) {
  const auto& counters = reg.counters();
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second.value();
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("E23 / per-phase cost breakdown",
                "rounds and messages per protocol phase, from the "
                "metrics registry");
  bench::Falsifier falsifier;

  std::vector<std::size_t> sizes;
  for (int i = 1; i < argc; ++i) {
    sizes.push_back(std::strtoull(argv[i], nullptr, 10));
  }
  if (sizes.empty()) sizes = {200, 400, 1000};

  sim::Table table({"n", "algo", "phase", "rounds", "messages", "|CDS|"});
  for (const std::size_t n : sizes) {
    const auto inst = make_instance(n);

    {
      obs::MetricsRegistry reg;
      dist::RunConfig cfg;
      cfg.obs.metrics = &reg;
      const auto r = dist::distributed_waf_cds(inst.graph, cfg);
      falsifier.check(core::is_cds(inst.graph, r.cds),
                      "distributed WAF CDS must be valid");
      std::uint64_t sum_rounds = 0, sum_msgs = 0;
      for (const char* phase :
           {"leader_election", "bfs_tree", "mis_election",
            "connector_selection"}) {
        const auto rounds = counter_of(reg, std::string(phase) + ".rounds");
        const auto msgs = counter_of(reg, std::string(phase) + ".messages");
        sum_rounds += rounds;
        sum_msgs += msgs;
        table.row().add(n).add("waf").add(phase).add(rounds).add(msgs).add(
            r.cds.size());
      }
      // The registry's flushed counters must agree with RunStats.
      falsifier.check(sum_rounds == r.total.rounds,
                      "registry round counters must sum to RunStats");
      falsifier.check(sum_msgs == r.total.messages,
                      "registry message counters must sum to RunStats");
    }

    {
      obs::MetricsRegistry reg;
      dist::RunConfig cfg;
      cfg.obs.metrics = &reg;
      const auto r = dist::distributed_greedy_cds(inst.graph, cfg);
      falsifier.check(core::is_cds(inst.graph, r.cds),
                      "distributed greedy CDS must be valid");
      for (const char* phase :
           {"leader_election", "bfs_tree", "mis_election", "greedy_label",
            "greedy_bid"}) {
        const auto rounds = counter_of(reg, std::string(phase) + ".rounds");
        const auto msgs = counter_of(reg, std::string(phase) + ".messages");
        table.row().add(n).add("greedy").add(phase).add(rounds).add(msgs).add(
            r.cds.size());
      }
    }
  }
  table.print(std::cout);
  std::cout << "(Greedy re-floods component labels every epoch, so "
               "greedy_label dominates its message bill; WAF pays once "
               "for leader election instead.)\n";
  falsifier.report("obs_breakdown");
  return falsifier.exit_code();
}
