#pragma once

#include <cstdio>
#include <iostream>
#include <string>

/// \file bench_util.hpp
/// Shared scaffolding for the reproduction benches: a banner, a
/// violation counter (proven inequalities must never fail — a bench
/// exits non-zero if one does), and common constants.

namespace mcds::bench {

/// Tracks violations of proven bounds; the bench's exit status.
class Falsifier {
 public:
  /// Records a check of a proven claim. Prints a loud line on failure.
  void check(bool holds, const std::string& what) {
    ++checks_;
    if (!holds) {
      ++violations_;
      std::cout << "  [VIOLATION] " << what << "\n";
    }
  }

  /// Number of checks performed.
  [[nodiscard]] std::size_t checks() const noexcept { return checks_; }

  /// Exit status for main(): 0 if every proven claim held.
  [[nodiscard]] int exit_code() const noexcept {
    return violations_ == 0 ? 0 : 1;
  }

  /// Prints the final verdict line.
  void report(const std::string& bench_name) const {
    std::cout << "\n[" << bench_name << "] " << checks_ << " checks, "
              << violations_ << " violations of proven bounds -> "
              << (violations_ == 0 ? "PASS" : "FAIL") << "\n";
  }

 private:
  std::size_t checks_ = 0;
  std::size_t violations_ = 0;
};

/// Prints the bench banner with the experiment id from DESIGN.md.
inline void banner(const std::string& experiment_id,
                   const std::string& title) {
  std::cout << "=== " << experiment_id << ": " << title << " ===\n";
}

}  // namespace mcds::bench
