// serve_load: offered-load sweep for the solve server, with and without
// admission control, locating the overload knee.
//
// Each cell drives an open-loop arrival process (fixed-rate submissions
// of shaped 1ms solves) at a multiple of the server's nominal capacity
// and reports goodput plus client-observed latency percentiles. With
// admission control (bounded queue + overload controller) the p95 of
// *admitted* work stays near the service time past the knee, because
// excess load is rejected or shed at the door. Without it (an
// effectively unbounded queue, controller disabled) queueing delay
// grows with the backlog and latency blows through the deadline budget.
//
// Exits non-zero if the robustness invariants fail: any leaked request,
// or an admitted kOk response past its own deadline.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "sim/stats.hpp"

namespace {

using namespace mcds;
using namespace std::chrono_literals;

constexpr std::chrono::milliseconds kService{1};
constexpr std::size_t kThreads = 2;
constexpr double kBudgetS = 0.100;  // per-request deadline budget

struct Cell {
  double offered_mult = 1.0;
  bool admission = true;
  double throughput = 0.0;  // ok responses per second
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  std::size_t ok = 0, rejected = 0, shed = 0, timeout = 0;
  bool leak = false;
  bool late_ok = false;
};

Cell run_cell(double mult, bool admission) {
  serve::ServerParams p;
  p.threads = kThreads;
  p.max_batch = kThreads;
  if (admission) {
    p.queue_capacity = 32;
  } else {
    // "No admission control": a queue deep enough to absorb the whole
    // run, and a controller that can never trigger.
    p.queue_capacity = 1 << 20;
    p.overload.enter_depth = 1.0;
    p.overload.enter_p95_s = 1e9;
    p.overload.exit_p95_s = 1e8;
  }
  p.solve_hook = [](const serve::Request&, serve::Tier,
                    serve::SharedState&) {
    std::this_thread::sleep_for(kService);
    par::BatchOutcome o;
    o.cds = {0};
    o.nodes = 1;
    return o;
  };
  serve::Server server(std::move(p));

  // Nominal capacity: kThreads solves per service interval.
  const double capacity =
      static_cast<double>(kThreads) /
      std::chrono::duration<double>(kService).count();
  const double rate = mult * capacity;
  const std::size_t total = static_cast<std::size_t>(rate * 0.8);  // ~0.8s
  const auto gap =
      std::chrono::nanoseconds(static_cast<std::int64_t>(1e9 / rate));

  std::vector<serve::Ticket> tickets;
  tickets.reserve(total);
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < total; ++i) {
    serve::Request req;
    req.instance.points = {{0.0, 0.0}};
    req.instance.graph = graph::Graph(1);
    req.deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<serve::Duration>(
                       std::chrono::duration<double>(kBudgetS));
    tickets.push_back(server.submit(std::move(req)));
    std::this_thread::sleep_for(gap);
  }
  server.drain();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  Cell c;
  c.offered_mult = mult;
  c.admission = admission;
  sim::Accumulator lat;
  for (serve::Ticket& t : tickets) {
    const serve::Response r = t.wait();
    if (r.status == serve::Status::kOk) {
      lat.add(r.latency_seconds * 1e3);
      if (r.latency_seconds > kBudgetS) c.late_ok = true;
    }
  }
  const serve::ServerStats st = server.stats();
  c.ok = st.ok;
  c.rejected = st.rejected;
  c.shed = st.shed;
  c.timeout = st.timeout;
  c.throughput = static_cast<double>(st.ok) / elapsed;
  c.p50_ms = lat.p50();
  c.p95_ms = lat.p95();
  c.p99_ms = lat.p99();
  c.leak = st.leaked() != 0;
  return c;
}

}  // namespace

int main() {
  std::printf("serve_load: open-loop sweep, %zu workers x %lldms service, "
              "%.0fms deadline budget\n",
              kThreads,
              static_cast<long long>(kService.count()),
              kBudgetS * 1e3);
  std::printf("%-9s %-10s %10s %8s %8s %8s %6s %6s %6s %8s\n", "offered",
              "admission", "goodput/s", "p50ms", "p95ms", "p99ms", "ok",
              "rej", "shed", "timeout");
  bool failed = false;
  for (const double mult : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    for (const bool admission : {true, false}) {
      const Cell c = run_cell(mult, admission);
      std::printf("%-9.1f %-10s %10.1f %8.2f %8.2f %8.2f %6zu %6zu %6zu "
                  "%8zu\n",
                  c.offered_mult, c.admission ? "on" : "off", c.throughput,
                  c.p50_ms, c.p95_ms, c.p99_ms, c.ok, c.rejected, c.shed,
                  c.timeout);
      if (c.leak) {
        std::printf("  INVARIANT VIOLATED: leaked requests\n");
        failed = true;
      }
      if (c.late_ok) {
        std::printf("  INVARIANT VIOLATED: kOk response past deadline\n");
        failed = true;
      }
    }
  }
  std::printf("\nknee reading: past 1.0x offered, 'admission on' holds p95 "
              "near the service time by rejecting/shedding at the door; "
              "'admission off' queues everything and p95 grows toward the "
              "deadline budget (timeouts).\n");
  return failed ? 1 : 0;
}
