// Experiment E13 (ablation of the Section IV design choice): with
// phase 1 fixed to the BFS first-fit MIS, compare connector-selection
// rules — tree parents [10], the paper's max-gain greedy, a
// positive-gain-only greedy (no maximization), a random positive-gain
// rule, shortest-path Steiner merging [8], and (on small instances) the
// exact optimum connectors for the same MIS. Quantifies exactly how
// much the "maximum gain" choice buys.

#include <iostream>

#include "baselines/phase2_ablation.hpp"
#include "bench_util.hpp"
#include "core/validate.hpp"
#include "exact/exact_connectors.hpp"
#include "graph/small_graph.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

int main() {
  using namespace mcds;
  using baselines::ConnectorPolicy;
  bench::banner("E13 / phase-2 ablation",
                "connector rules on a fixed BFS first-fit MIS");
  bench::Falsifier falsifier;

  const ConnectorPolicy policies[] = {
      ConnectorPolicy::kTreeParent, ConnectorPolicy::kMaxGain,
      ConnectorPolicy::kFirstPositiveGain,
      ConnectorPolicy::kRandomPositiveGain, ConnectorPolicy::kShortestPath,
  };

  // Part A: mean connector counts at scale.
  std::cout << "\nPart A - mean connector count |C| (20 seeds each):\n";
  sim::Table table({"n", "side", "|I| mean", "tree-parent", "max-gain",
                    "first-pos", "random-pos", "shortest-path"});
  for (const std::size_t n : {100u, 250u, 500u}) {
    for (const double side : {9.0, 13.0}) {
      sim::Accumulator mis_acc;
      sim::Accumulator conn[5];
      for (std::uint64_t t = 0; t < 20; ++t) {
        udg::InstanceParams params;
        params.nodes = n;
        params.side = side;
        const auto inst = udg::generate_largest_component_instance(
            params, 400 + 7 * t + n);
        for (std::size_t p = 0; p < 5; ++p) {
          const auto r = baselines::cds_with_policy(inst.graph, policies[p],
                                                    0, 1234 + t);
          falsifier.check(core::is_cds(inst.graph, r.cds),
                          "every policy must yield a valid CDS");
          conn[p].add(static_cast<double>(r.connectors.size()));
          if (p == 0) {
            mis_acc.add(static_cast<double>(r.phase1.mis.size()));
          }
        }
      }
      table.row().add(n).add(side, 0).add(mis_acc.mean(), 1);
      for (auto& acc : conn) table.add(acc.mean(), 1);
    }
  }
  table.print(std::cout);

  // Part B: distance from the exact optimum phase 2 (small n).
  std::cout << "\nPart B - connectors vs exact optimum for the same MIS "
               "(n <= 18, exact Steiner-connectivity solver):\n";
  sim::Table opt_table({"policy", "mean |C|", "mean |C*|",
                        "mean |C|/|C*|", "optimal runs (%)"});
  sim::Accumulator per_policy[5], opt_acc;
  std::size_t optimal_hits[5] = {0, 0, 0, 0, 0};
  std::size_t solved = 0;
  for (std::uint64_t seed = 1; solved < 80 && seed <= 900; ++seed) {
    udg::InstanceParams params;
    params.nodes = 14 + seed % 5;
    params.side = 2.8 + static_cast<double>(seed % 4) * 0.5;
    params.max_retries = 0;
    const auto inst = udg::generate_connected_instance(params, seed * 61);
    if (!inst) continue;
    const graph::SmallGraph sg(inst->graph);
    const auto mis = core::bfs_first_fit_mis(inst->graph, 0);
    graph::Mask mis_mask = 0;
    for (const auto u : mis.mis) mis_mask |= graph::Mask{1} << u;
    if (sg.is_connected(mis_mask)) continue;  // no connectors needed
    ++solved;
    const std::size_t opt =
        exact::minimum_connector_count(sg, mis_mask);
    opt_acc.add(static_cast<double>(opt));
    for (std::size_t p = 0; p < 5; ++p) {
      const auto r =
          baselines::cds_with_policy(inst->graph, policies[p], 0, seed);
      per_policy[p].add(static_cast<double>(r.connectors.size()));
      falsifier.check(r.connectors.size() >= opt,
                      "no heuristic can beat the exact optimum");
      if (r.connectors.size() == opt) ++optimal_hits[p];
    }
  }
  for (std::size_t p = 0; p < 5; ++p) {
    opt_table.row()
        .add(baselines::to_string(policies[p]))
        .add(per_policy[p].mean(), 2)
        .add(opt_acc.mean(), 2)
        .add(per_policy[p].mean() / opt_acc.mean(), 3)
        .add(100.0 * static_cast<double>(optimal_hits[p]) /
                 static_cast<double>(solved),
             1);
  }
  opt_table.print(std::cout);
  std::cout << "Instances with a non-trivial phase 2: " << solved << "\n";

  falsifier.report("phase2_ablation");
  return falsifier.exit_code();
}
