// Experiment E18 (maintenance ablation): under mobility, compare
// rebuilding the CDS from scratch each epoch against locally repairing
// the previous one. Repair should drastically cut backbone churn (the
// operational cost: route invalidations, state transfer) at a modest
// size premium.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "core/greedy_connect.hpp"
#include "core/repair.hpp"
#include "core/validate.hpp"
#include "graph/traversal.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "udg/builder.hpp"
#include "udg/deployment.hpp"
#include "udg/mobility.hpp"

namespace {

std::size_t churn(const std::vector<mcds::graph::NodeId>& before,
                  const std::vector<mcds::graph::NodeId>& after) {
  std::vector<mcds::graph::NodeId> entered;
  std::set_difference(after.begin(), after.end(), before.begin(),
                      before.end(), std::back_inserter(entered));
  return entered.size();
}

}  // namespace

int main() {
  using namespace mcds;
  bench::banner("E18 / repair vs rebuild",
                "backbone churn and size under mobility");
  bench::Falsifier falsifier;

  sim::Table table({"step size", "epochs", "rebuild size", "repair size",
                    "rebuild churn", "repair churn", "churn cut (%)"});
  for (const double step : {0.1, 0.2, 0.4}) {
    sim::Rng rng(31337);
    auto pos = udg::deploy_uniform_square(220, 9.0, rng);
    std::vector<graph::NodeId> rebuild_prev, repair_prev;
    sim::Accumulator rebuild_size, repair_size, rebuild_churn, repair_churn;
    std::size_t epochs = 0;
    for (std::size_t epoch = 0; epoch < 40; ++epoch) {
      for (auto& p : pos) {
        p.x = std::clamp(p.x + rng.uniform(-step, step), 0.0, 9.0);
        p.y = std::clamp(p.y + rng.uniform(-step, step), 0.0, 9.0);
      }
      const auto g = udg::build_udg(pos);
      if (!graph::is_connected(g)) continue;  // transient fragmentation
      ++epochs;

      const auto rebuilt = core::greedy_cds(g, 0).cds;
      falsifier.check(core::is_cds(g, rebuilt), "rebuild must be a CDS");
      const auto repaired =
          repair_prev.empty() ? core::RepairResult{rebuilt, 0, 0, 0}
                              : core::repair_cds(g, repair_prev);
      falsifier.check(core::is_cds(g, repaired.cds),
                      "repair must be a CDS");

      if (!rebuild_prev.empty()) {
        rebuild_churn.add(static_cast<double>(churn(rebuild_prev, rebuilt)));
        repair_churn.add(
            static_cast<double>(churn(repair_prev, repaired.cds)));
        rebuild_size.add(static_cast<double>(rebuilt.size()));
        repair_size.add(static_cast<double>(repaired.cds.size()));
      }
      rebuild_prev = rebuilt;
      repair_prev = repaired.cds;
    }
    const double cut = 100.0 *
                       (rebuild_churn.mean() - repair_churn.mean()) /
                       std::max(1.0, rebuild_churn.mean());
    table.row()
        .add(step, 1)
        .add(epochs)
        .add(rebuild_size.mean(), 1)
        .add(repair_size.mean(), 1)
        .add(rebuild_churn.mean(), 1)
        .add(repair_churn.mean(), 1)
        .add(cut, 1);
  }
  table.print(std::cout);
  std::cout << "(Repair keeps the previous backbone wherever possible; "
               "its size premium is the price of stability. A periodic "
               "full rebuild can reset the drift.)\n";

  // Same comparison under random-waypoint mobility (correlated motion —
  // the standard MANET model) instead of i.i.d. jitter.
  std::cout << "\nRandom-waypoint mobility (speed band per tick):\n";
  sim::Table wp_table({"speed band", "epochs", "rebuild size",
                       "repair size", "rebuild churn", "repair churn"});
  struct Band {
    double lo, hi;
  };
  for (const Band band : {Band{0.02, 0.10}, Band{0.05, 0.25},
                          Band{0.10, 0.50}}) {
    udg::WaypointParams wp;
    wp.side = 9.0;
    wp.min_speed = band.lo;
    wp.max_speed = band.hi;
    udg::RandomWaypoint model(220, wp, 2025);
    std::vector<graph::NodeId> rebuild_prev, repair_prev;
    sim::Accumulator rebuild_size, repair_size, rebuild_churn, repair_churn;
    std::size_t epochs = 0;
    for (std::size_t tick = 0; tick < 40; ++tick) {
      model.step();
      const auto g = udg::build_udg(model.positions());
      if (!graph::is_connected(g)) continue;
      ++epochs;
      const auto rebuilt = core::greedy_cds(g, 0).cds;
      const auto repaired =
          repair_prev.empty() ? core::RepairResult{rebuilt, 0, 0, 0}
                              : core::repair_cds(g, repair_prev);
      falsifier.check(core::is_cds(g, rebuilt), "waypoint rebuild CDS");
      falsifier.check(core::is_cds(g, repaired.cds), "waypoint repair CDS");
      if (!rebuild_prev.empty()) {
        rebuild_churn.add(static_cast<double>(churn(rebuild_prev, rebuilt)));
        repair_churn.add(
            static_cast<double>(churn(repair_prev, repaired.cds)));
        rebuild_size.add(static_cast<double>(rebuilt.size()));
        repair_size.add(static_cast<double>(repaired.cds.size()));
      }
      rebuild_prev = rebuilt;
      repair_prev = repaired.cds;
    }
    wp_table.row()
        .add("[" + sim::format_double(band.lo, 2) + ", " +
             sim::format_double(band.hi, 2) + "]")
        .add(epochs)
        .add(rebuild_size.mean(), 1)
        .add(repair_size.mean(), 1)
        .add(rebuild_churn.mean(), 1)
        .add(repair_churn.mean(), 1);
  }
  wp_table.print(std::cout);

  falsifier.report("repair_vs_rebuild");
  return falsifier.exit_code();
}
