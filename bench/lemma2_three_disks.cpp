// Experiment E16 (Lemma 2): for {u1,u2,u3} ⊆ D_o, if the center disk
// keeps a private independent point (in I(o)\{o} but no I(u_j)), then
// |(∪_j I(u_j)) \ I(o)| <= 11 (the trivial bound is 12). Adversarial
// probe: pack independent points into D_o ∪ D_u1 ∪ D_u2 ∪ D_u3 for
// random satellite placements and measure the largest "outside count"
// attained among packings that satisfy the private-point hypothesis.

#include <algorithm>
#include <iostream>
#include <numbers>

#include "bench_util.hpp"
#include "geom/disk_union.hpp"
#include "packing/packer.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"

namespace {

using mcds::geom::Vec2;

bool inside(Vec2 p, Vec2 c) { return mcds::geom::dist2(p, c) <= 1.0 + 1e-12; }

}  // namespace

int main() {
  using namespace mcds;
  bench::banner("E16 / Lemma 2",
                "independent points in (D_u1 ∪ D_u2 ∪ D_u3) \\ D_o under "
                "the private-point hypothesis");
  bench::Falsifier falsifier;

  const Vec2 o{0.0, 0.0};
  sim::Rng rng(424242);
  std::size_t max_outside_with_hypothesis = 0;
  std::size_t max_outside_any = 0;
  std::size_t packings = 0, with_hypothesis = 0;

  for (int trial = 0; trial < 60; ++trial) {
    // Satellites spread inside D_o, biased toward the rim where the
    // packing outside D_o is largest (the paper's worst cases have the
    // u_j near the boundary, well separated in angle).
    const double base = rng.uniform(0.0, 2.0 * std::numbers::pi);
    std::vector<Vec2> centers{o};
    for (int j = 0; j < 3; ++j) {
      const double angle =
          base + j * 2.0 * std::numbers::pi / 3.0 + rng.uniform(-0.3, 0.3);
      const double radius = rng.uniform(0.75, 1.0);
      centers.push_back(geom::from_polar(o, radius, angle));
    }
    packing::PackOptions opt;
    opt.grid_step = 0.06;
    opt.restarts = 4;
    opt.ruin_rounds = 12;
    opt.seed = 1000 + static_cast<std::uint64_t>(trial);
    const auto found = packing::pack_independent_points(
        geom::DiskUnion(centers, 1.0), opt);
    ++packings;

    std::size_t outside = 0;
    bool private_point = false;
    for (const Vec2 p : found.points) {
      const bool in_o = inside(p, o);
      const bool in_satellite = inside(p, centers[1]) ||
                                inside(p, centers[2]) ||
                                inside(p, centers[3]);
      if (in_satellite && !in_o) ++outside;
      if (in_o && !in_satellite && geom::dist(p, o) > 1e-9) {
        private_point = true;
      }
    }
    max_outside_any = std::max(max_outside_any, outside);
    if (private_point) {
      ++with_hypothesis;
      max_outside_with_hypothesis =
          std::max(max_outside_with_hypothesis, outside);
      falsifier.check(outside <= 11,
                      "Lemma 2: outside count <= 11 under the hypothesis");
    }
  }

  sim::Table table({"quantity", "value"});
  table.row().add("packings tried").add(packings);
  table.row().add("packings with private I(o) point").add(with_hypothesis);
  table.row().add("max outside count (hypothesis holds)")
      .add(max_outside_with_hypothesis);
  table.row().add("Lemma 2 bound").add(std::size_t{11});
  table.row().add("max outside count (no hypothesis)").add(max_outside_any);
  table.row().add("trivial bound").add(std::size_t{12});
  table.print(std::cout);

  falsifier.report("lemma2_three_disks");
  return falsifier.exit_code();
}
