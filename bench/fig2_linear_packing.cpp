// Experiment E2 (Figure 2): the neighborhood of n >= 3 collinear points
// with consecutive distance one contains 3(n+1) independent points.
// Reconstructs the generalized Figure 1 pattern for a sweep of n,
// verifies it, and situates the count between the conjectured optimum
// 3(n+1) and the proven ceiling 11n/3 + 1 (Theorem 6).

#include <iostream>

#include "bench_util.hpp"
#include "geom/closest.hpp"
#include "geom/disk_union.hpp"
#include "packing/fig2.hpp"
#include "packing/packer.hpp"
#include "sim/table.hpp"

int main() {
  using namespace mcds;
  bench::banner("E2 / Figure 2",
                "3(n+1) independent points around n collinear unit-spaced "
                "nodes");
  bench::Falsifier falsifier;

  sim::Table table({"n", "constructed", "3(n+1)", "Thm 6 bound 11n/3+1",
                    "min pair dist", "valid?"});
  for (std::size_t n = 3; n <= 14; ++n) {
    const auto inst = packing::fig2_linear(n);
    const bool ok = packing::verify_tight_instance(inst);
    const double upper = 11.0 * static_cast<double>(n) / 3.0 + 1.0;
    table.row()
        .add(n)
        .add(inst.independent.size())
        .add(3 * n + 3)
        .add(upper, 2)
        .add(geom::closest_pair_distance(inst.independent), 6)
        .add(ok ? "yes" : "NO");
    falsifier.check(ok, "fig2 witness must be valid");
    falsifier.check(inst.independent.size() == 3 * n + 3,
                    "fig2 witness must have exactly 3(n+1) points");
    falsifier.check(static_cast<double>(inst.independent.size()) <=
                        upper + 1e-9,
                    "Theorem 6 ceiling");
  }
  table.print(std::cout);

  // Blind optimizer comparison for small n (slow for large regions).
  std::cout << "\nStochastic packer vs construction:\n";
  sim::Table blind({"n", "packer found", "construction", "gap"});
  for (std::size_t n = 3; n <= 6; ++n) {
    std::vector<geom::Vec2> centers;
    for (std::size_t k = 0; k < n; ++k) {
      centers.push_back({static_cast<double>(k), 0.0});
    }
    packing::PackOptions opt;
    opt.grid_step = 0.05;
    opt.restarts = 8;
    opt.ruin_rounds = 30;
    opt.seed = 1000 + n;
    const auto found =
        packing::pack_independent_points(geom::DiskUnion(centers, 1.0), opt);
    const std::size_t constructed = 3 * n + 3;
    blind.row()
        .add(n)
        .add(found.points.size())
        .add(constructed)
        .add(static_cast<int>(constructed) -
             static_cast<int>(found.points.size()));
    falsifier.check(
        static_cast<double>(found.points.size()) <=
            11.0 * static_cast<double>(n) / 3.0 + 1.0 + 1e-9,
        "Theorem 6 ceiling (packer)");
  }
  blind.print(std::cout);
  std::cout << "(The explicit construction dominates the blind packer; "
               "the paper conjectures 3(n+1) is optimal.)\n";

  falsifier.report("fig2_linear_packing");
  return falsifier.exit_code();
}
