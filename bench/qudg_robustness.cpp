// Experiment E17 (model robustness): the paper's guarantees are proven
// for exact unit-disk graphs. Real radios have a gray zone — links
// between r_min and r_max exist probabilistically (quasi-UDG). The
// two-phased constructions are pure graph algorithms, so they still
// emit *valid* CDSs on quasi-UDGs; this bench measures how their sizes
// and the greedy-vs-WAF gap respond as the gray zone widens.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/greedy_connect.hpp"
#include "core/validate.hpp"
#include "core/waf.hpp"
#include "graph/traversal.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "udg/deployment.hpp"
#include "udg/qudg.hpp"

int main() {
  using namespace mcds;
  bench::banner("E17 / quasi-UDG robustness",
                "CDS sizes as the link gray zone widens");
  bench::Falsifier falsifier;

  const std::size_t n = 250;
  const double side = 10.0;
  sim::Table table({"gray zone [r_min, r_max]", "connected draws",
                    "mean links", "WAF |CDS|", "greedy |CDS|",
                    "greedy saves (%)"});
  struct Band {
    double r_min, r_max;
  };
  const Band bands[] = {
      {1.00, 1.00},  // exact UDG baseline
      {0.90, 1.10}, {0.75, 1.25}, {0.60, 1.40}, {0.50, 1.60},
  };
  for (const Band band : bands) {
    sim::Accumulator links, waf_size, greedy_size;
    std::size_t connected = 0;
    for (std::uint64_t t = 0; t < 25; ++t) {
      sim::Rng deploy_rng = sim::Rng::child(99, t);
      const auto pts = udg::deploy_uniform_square(n, side, deploy_rng);
      sim::Rng link_rng = sim::Rng::child(777, t);
      const auto g =
          udg::build_quasi_udg(pts, band.r_min, band.r_max, link_rng);
      if (!graph::is_connected(g)) continue;
      ++connected;
      const auto waf = core::waf_cds(g, 0);
      const auto greedy = core::greedy_cds(g, 0);
      falsifier.check(core::is_cds(g, waf.cds),
                      "WAF must stay valid on quasi-UDGs");
      falsifier.check(core::is_cds(g, greedy.cds),
                      "greedy must stay valid on quasi-UDGs");
      links.add(static_cast<double>(g.num_edges()));
      waf_size.add(static_cast<double>(waf.cds.size()));
      greedy_size.add(static_cast<double>(greedy.cds.size()));
    }
    const double saves =
        100.0 * (waf_size.mean() - greedy_size.mean()) / waf_size.mean();
    table.row()
        .add("[" + sim::format_double(band.r_min, 2) + ", " +
             sim::format_double(band.r_max, 2) + "]")
        .add(connected)
        .add(links.mean(), 0)
        .add(waf_size.mean(), 1)
        .add(greedy_size.mean(), 1)
        .add(saves, 1);
  }
  table.print(std::cout);
  std::cout << "(Validity is structural — the algorithms never assumed "
               "geometry — while the size guarantees formally apply only "
               "to exact UDGs.)\n";

  falsifier.report("qudg_robustness");
  return falsifier.exit_code();
}
