// Experiment E10 (Section V): if the 3(n+1) linear packing is optimal,
// the WAF ratio would drop to 6 and the greedy ratio to 5.5. Compares
// the worst ratios actually measured on exhaustively solved instances
// against (a) the proven bounds, and (b) the conjectured bounds — the
// measurements must respect (a) and, per the conjecture, are expected
// to respect (b) as well.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "core/bounds.hpp"
#include "core/greedy_connect.hpp"
#include "core/waf.hpp"
#include "exact/exact_cds.hpp"
#include "exact/exact_mis.hpp"
#include "graph/small_graph.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

int main() {
  using namespace mcds;
  bench::banner("E10 / Section V",
                "measured worst ratios vs proven and conjectured bounds");
  bench::Falsifier falsifier;

  double worst_waf = 0.0, worst_greedy = 0.0, worst_alpha_slope = 0.0;
  std::size_t solved = 0;
  for (std::uint64_t seed = 1; solved < 250 && seed <= 2500; ++seed) {
    udg::InstanceParams params;
    params.nodes = 11 + seed % 8;
    params.side = 2.3 + static_cast<double>(seed % 6) * 0.45;
    params.max_retries = 0;
    const auto inst = udg::generate_connected_instance(params, seed * 59);
    if (!inst) continue;
    ++solved;
    const graph::SmallGraph sg(inst->graph);
    const std::size_t gamma_c = exact::connected_domination_number(sg);
    const std::size_t alpha = exact::independence_number(sg);
    const auto waf = core::waf_cds(inst->graph, 0);
    const auto greedy = core::greedy_cds(inst->graph, 0);

    const auto gc = static_cast<double>(gamma_c);
    worst_waf = std::max(worst_waf,
                         static_cast<double>(waf.cds.size()) / gc);
    worst_greedy = std::max(
        worst_greedy, static_cast<double>(greedy.cds.size()) / gc);
    if (gamma_c >= 2) {
      worst_alpha_slope = std::max(
          worst_alpha_slope, (static_cast<double>(alpha) - 1.0) / gc);
    }
  }

  sim::Table table({"quantity", "worst measured", "conjectured (Sec V)",
                    "proven (this paper)"});
  table.row().add("|WAF CDS| / gamma_c").add(worst_waf, 3).add(6.0, 3)
      .add(core::bounds::kWafRatio, 3);
  table.row().add("|greedy CDS| / gamma_c").add(worst_greedy, 3).add(5.5, 3)
      .add(core::bounds::kGreedyRatio, 3);
  table.row().add("(alpha - 1) / gamma_c").add(worst_alpha_slope, 3)
      .add(3.0, 3)  // 3(n+1) packing => slope 3 asymptotically
      .add(core::bounds::kAlphaSlope, 3);
  table.print(std::cout);
  std::cout << "Solved instances: " << solved << "\n";

  falsifier.check(worst_waf <= core::bounds::kWafRatio + 1e-9,
                  "Theorem 8 ratio");
  falsifier.check(worst_greedy <= core::bounds::kGreedyRatio + 1e-9,
                  "Theorem 10 ratio");
  falsifier.check(worst_alpha_slope <= core::bounds::kAlphaSlope + 1e-9,
                  "Corollary 7 slope");
  std::cout << (worst_waf <= 6.0 && worst_greedy <= 5.5
                    ? "Conjecture-consistent: measurements also respect the "
                      "conjectured 6 / 5.5 bounds.\n"
                    : "NOTE: a measurement exceeded a *conjectured* bound - "
                      "worth a closer look (not a falsification of the "
                      "paper's theorems).\n");

  falsifier.report("conjecture_ratios");
  return falsifier.exit_code();
}
