// Experiment E19 (Wegner's theorem, the ceiling behind Theorem 3): a
// disk of radius two holds at most 21 points with pairwise distances
// >= 1. Probes the bound with (a) the explicit hexagonal-lattice
// witness (19 points), and (b) the stochastic packer in the Wegner
// regime (touching allowed) and in the paper's strict regime.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "geom/disk_union.hpp"
#include "packing/packer.hpp"
#include "packing/wegner.hpp"
#include "sim/table.hpp"

namespace {

using mcds::geom::Vec2;

// Hexagonal lattice with spacing 1, clipped to the closed radius-2 disk.
std::vector<Vec2> hex_witness() {
  std::vector<Vec2> pts;
  const double row_height = std::sqrt(3.0) / 2.0;
  for (int row = -3; row <= 3; ++row) {
    const double y = row * row_height;
    const double x_offset = (row % 2 == 0) ? 0.0 : 0.5;
    for (int col = -3; col <= 3; ++col) {
      const Vec2 p{col + x_offset, y};
      if (p.norm() <= 2.0 + 1e-12) pts.push_back(p);
    }
  }
  return pts;
}

}  // namespace

int main() {
  using namespace mcds;
  bench::banner("E19 / Wegner",
                "points at pairwise distance >= 1 in a radius-2 disk");
  bench::Falsifier falsifier;

  const auto hex = hex_witness();
  falsifier.check(packing::is_wegner_witness({0, 0}, hex),
                  "hex lattice must be a valid Wegner witness");

  const geom::DiskUnion disk2({{0.0, 0.0}}, 2.0);
  packing::PackOptions strict;
  strict.grid_step = 0.04;
  strict.restarts = 12;
  strict.ruin_rounds = 50;
  strict.seed = 21;
  auto wegner = strict;
  wegner.allow_touching = true;

  const auto found_strict = packing::pack_independent_points(disk2, strict);
  const auto found_wegner = packing::pack_independent_points(disk2, wegner);
  falsifier.check(
      packing::is_wegner_witness({0, 0}, found_wegner.points),
      "packer output must satisfy Wegner's hypotheses");
  falsifier.check(found_wegner.points.size() <= packing::kWegnerLimit,
                  "Wegner: at most 21 points");
  falsifier.check(found_strict.points.size() <= packing::kWegnerLimit,
                  "strict packing is also Wegner-bounded");
  // Informational: the grid-based optimizer cannot align to the exact
  // lattice, so the explicit witness typically dominates it.

  sim::Table table({"packing regime", "points", "Wegner limit"});
  table.row().add("hex lattice witness (>= 1)").add(hex.size())
      .add(packing::kWegnerLimit);
  table.row().add("stochastic packer (>= 1)")
      .add(found_wegner.points.size()).add(packing::kWegnerLimit);
  table.row().add("stochastic packer (> 1, paper's independence)")
      .add(found_strict.points.size()).add(packing::kWegnerLimit);
  table.print(std::cout);
  std::cout << "(Theorem 3 uses Wegner's 21 as the cap of phi_n for "
               "n >= 6.)\n";

  falsifier.report("wegner_limit");
  return falsifier.exit_code();
}
