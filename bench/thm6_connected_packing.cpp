// Experiment E21 (Theorem 6 on general connected sets): at most
// 11n/3 + 1 independent points fit in the neighborhood of ANY connected
// planar n-point set (not just stars or lines). Packs the neighborhoods
// of random connected deployments and compares against the bound and
// against the best known constructions (3n + 3 from Figure 2).

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "geom/disk_union.hpp"
#include "sim/rng.hpp"
#include "packing/packer.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"  // for DiskUnion-compatible Vec2 workloads

int main() {
  using namespace mcds;
  bench::banner("E21 / Theorem 6",
                "independent packing around random connected n-sets");
  bench::Falsifier falsifier;

  sim::Table table({"n (set size)", "instances", "best packed",
                    "mean packed", "Fig-2 value 3n+3",
                    "Thm 6 bound 11n/3+1"});
  for (const std::size_t n : {3u, 5u, 8u, 12u}) {
    const std::size_t instances = 6;
    std::size_t best = 0;
    sim::Accumulator acc;
    for (std::size_t t = 0; t < instances; ++t) {
      // Random connected set by incremental attachment: each new point
      // lands within unit distance of a random existing point, with a
      // bias toward long stretched shapes (the worst cases are linear).
      sim::Rng rng = sim::Rng::child(50 * n, t);
      std::vector<geom::Vec2> centers{{0.0, 0.0}};
      while (centers.size() < n) {
        const geom::Vec2 anchor =
            centers[rng.uniform_int(centers.size())];
        const double radius = 0.6 + 0.4 * rng.uniform01();
        const double angle = rng.uniform(0.0, 6.283185307179586);
        centers.push_back(geom::from_polar(anchor, radius, angle));
      }
      packing::PackOptions opt;
      opt.grid_step = 0.06;
      opt.restarts = 5;
      opt.ruin_rounds = 15;
      opt.seed = 900 + t + 10 * n;
      const auto found = packing::pack_independent_points(
          geom::DiskUnion(centers, 1.0), opt);
      const double bound = 11.0 * static_cast<double>(n) / 3.0 + 1.0;
      falsifier.check(static_cast<double>(found.points.size()) <=
                          bound + 1e-9,
                      "Theorem 6: packing <= 11n/3 + 1");
      best = std::max(best, found.points.size());
      acc.add(static_cast<double>(found.points.size()));
    }
    table.row()
        .add(n)
        .add(instances)
        .add(best)
        .add(acc.mean(), 2)
        .add(3 * n + 3)
        .add(11.0 * static_cast<double>(n) / 3.0 + 1.0, 2);
  }
  table.print(std::cout);
  std::cout << "(Random connected sets pack fewer points than the "
               "adversarial Figure 2 line; the conjecture is that not "
               "even adversarial sets can beat 3n+3.)\n";

  falsifier.report("thm6_connected_packing");
  return falsifier.exit_code();
}
