// Experiment E5 (Theorem 8): the WAF two-phased CDS has size at most
// 7⅓·γ_c, improving on 7.6·γ_c + 1.4 [12] and 8·γ_c - 1 [10].
// Part A: small instances with exact γ_c — the inequality is checked on
// every instance and the worst measured ratio is reported.
// Part B: larger instances where γ_c is replaced by the Corollary-7
// lower bound derived from the MIS size (the reported "ratio" is then
// an upper estimate of the true ratio).

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "core/bounds.hpp"
#include "core/waf.hpp"
#include "exact/exact_cds.hpp"
#include "graph/small_graph.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

int main() {
  using namespace mcds;
  bench::banner("E5 / Theorem 8", "WAF CDS size vs 7 1/3 gamma_c");
  bench::Falsifier falsifier;

  // Part A: exact gamma_c.
  std::cout << "\nPart A - exact gamma_c (n <= 30, SmallGraph128):\n";
  sim::Table exact_table({"n", "instances", "worst |CDS|/gamma_c",
                          "mean ratio", "proven bound 7.333"});
  for (const std::size_t n : {12u, 18u, 24u, 30u}) {
    double worst = 0.0;
    sim::Accumulator acc;
    std::size_t solved = 0;
    for (std::uint64_t seed = 1; solved < 60 && seed <= 600; ++seed) {
      udg::InstanceParams params;
      params.nodes = n;
      params.side = 2.5 + static_cast<double>(seed % 4) * 0.4;
      params.max_retries = 0;
      const auto inst = udg::generate_connected_instance(params, seed * 29);
      if (!inst) continue;
      ++solved;
      const auto waf = core::waf_cds(inst->graph, 0);
      const std::size_t gamma_c = exact::connected_domination_number(
          graph::SmallGraph128(inst->graph));
      const double ratio = static_cast<double>(waf.cds.size()) /
                           static_cast<double>(gamma_c);
      worst = std::max(worst, ratio);
      acc.add(ratio);
      falsifier.check(
          static_cast<double>(waf.cds.size()) <=
              core::bounds::waf_upper_bound(gamma_c) + 1e-9,
          "Theorem 8: |I u C| <= 7 1/3 gamma_c");
    }
    exact_table.row().add(n).add(solved).add(worst, 3).add(acc.mean(), 3)
        .add(core::bounds::kWafRatio, 3);
  }
  exact_table.print(std::cout);

  // Part B: scaled instances, gamma_c lower-bounded via Corollary 7.
  std::cout << "\nPart B - large instances, gamma_c >= ceil(3(|I|-1)/11):\n";
  sim::Table big_table({"n", "side", "mean |CDS|", "mean |I|",
                        "worst |CDS|/LB(gamma_c)", "proven bound 7.333"});
  for (const std::size_t n : {100u, 300u, 600u}) {
    for (const double side : {8.0, 14.0}) {
      double worst = 0.0;
      sim::Accumulator cds_acc, mis_acc;
      for (std::uint64_t t = 0; t < 10; ++t) {
        udg::InstanceParams params;
        params.nodes = n;
        params.side = side;
        const auto inst =
            udg::generate_largest_component_instance(params, 7000 + t);
        const auto waf = core::waf_cds(inst.graph, 0);
        const std::size_t lb =
            core::bounds::gamma_c_lower_bound_from_independent(
                waf.phase1.mis.size());
        const double est_ratio = static_cast<double>(waf.cds.size()) /
                                 static_cast<double>(lb);
        worst = std::max(worst, est_ratio);
        cds_acc.add(static_cast<double>(waf.cds.size()));
        mis_acc.add(static_cast<double>(waf.phase1.mis.size()));
        // |I u C| <= 2|I| + 1 always (structure), so the ratio estimate
        // stays below 2 * (11/3) + o(1); the 7.333 line is the theorem.
      }
      big_table.row().add(n).add(side, 1).add(cds_acc.mean(), 1)
          .add(mis_acc.mean(), 1).add(worst, 3)
          .add(core::bounds::kWafRatio, 3);
    }
  }
  big_table.print(std::cout);

  falsifier.report("thm8_waf_ratio");
  return falsifier.exit_code();
}
