// Randomized differential suite for the incremental engine: 200 churn
// streams (seeded, deterministic), each a mixed sequence of insert /
// move / erase / revive events. After *every* event the maintained set
// must be a valid CDS forest of the alive topology and inside the
// paper's 4|MIS|+12 envelope. At checkpoints the engine's materialized
// topology must be byte-identical to a brute-force O(n^2) unit-disk
// build at the same positions, and the engine's validity verdict must
// equal check_cds_components run from scratch on that rebuilt topology.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/validate.hpp"
#include "dyn/dynamic_cds.hpp"
#include "geom/vec2.hpp"
#include "graph/graph.hpp"
#include "graph/subgraph.hpp"
#include "sim/rng.hpp"

namespace {

using mcds::geom::Vec2;
using mcds::graph::Graph;
using mcds::graph::NodeId;
using mcds::dyn::DynamicCds;

Graph oracle_udg(const std::vector<Vec2>& pos, const std::vector<bool>& alive,
                 double radius) {
  Graph g(pos.size());
  const double r2 = radius * radius;
  for (NodeId u = 0; u < pos.size(); ++u) {
    if (!alive[u]) continue;
    for (NodeId v = u + 1; v < pos.size(); ++v) {
      if (!alive[v]) continue;
      if (mcds::geom::dist2(pos[u], pos[v]) <= r2) g.add_edge(u, v);
    }
  }
  g.finalize();
  return g;
}

class DynChurnStream : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynChurnStream, AlwaysValidAndCheckpointExact) {
  const std::uint64_t seed = GetParam();
  mcds::sim::Rng rng(seed * 6364136223846793005ULL + 1442695040888963407ULL);
  const double side = 4.0 + static_cast<double>(seed % 5);
  const std::size_t n0 = 20 + seed % 50;
  // Every seventh stream is delete-heavy so small populations regularly
  // churn all the way down to (near-)empty and back.
  const bool delete_heavy = seed % 7 == 0;

  std::vector<Vec2> pos;
  pos.reserve(n0);
  for (std::size_t i = 0; i < n0; ++i) {
    pos.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  std::vector<bool> alive(n0, true);
  DynamicCds engine(pos);

  const auto checkpoint = [&] {
    const Graph want = oracle_udg(pos, alive, 1.0);
    const Graph got = engine.topology();
    const auto go = got.offsets();
    const auto wo = want.offsets();
    ASSERT_TRUE(std::equal(go.begin(), go.end(), wo.begin(), wo.end()));
    const auto gn = got.flat_neighbors();
    const auto wn = want.flat_neighbors();
    ASSERT_TRUE(std::equal(gn.begin(), gn.end(), wn.begin(), wn.end()));
    // Re-derive the validity verdict from scratch on the rebuilt
    // topology and demand it matches the engine's own check() bytes.
    std::vector<NodeId> alive_list;
    for (NodeId v = 0; v < pos.size(); ++v) {
      if (alive[v]) alive_list.push_back(v);
    }
    const auto induced = mcds::graph::induced_subgraph(want, alive_list);
    std::vector<NodeId> local_cds;
    for (const NodeId v : engine.cds()) {
      const auto it =
          std::lower_bound(alive_list.begin(), alive_list.end(), v);
      ASSERT_TRUE(it != alive_list.end() && *it == v)
          << "backbone claims dead node " << v;
      local_cds.push_back(
          static_cast<NodeId>(std::distance(alive_list.begin(), it)));
    }
    const auto scratch =
        mcds::core::check_cds_components(induced.graph, local_cds);
    const auto incremental = engine.check();
    EXPECT_EQ(incremental.ok, scratch.ok);
    EXPECT_EQ(incremental.defect, scratch.defect);
    EXPECT_EQ(incremental.witness, scratch.witness);
    EXPECT_TRUE(scratch.ok) << scratch.describe();
  };

  for (int step = 0; step < 50; ++step) {
    const double roll = rng.uniform01();
    const double erase_band = delete_heavy ? 0.45 : 0.15;
    if (roll < 0.5 - erase_band / 2) {  // move
      std::vector<NodeId> live;
      for (NodeId v = 0; v < pos.size(); ++v) {
        if (alive[v]) live.push_back(v);
      }
      if (live.empty()) continue;
      const NodeId v = live[rng.uniform_int(live.size())];
      pos[v] = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
      engine.move(v, pos[v]);
    } else if (roll < 0.5 + erase_band / 2) {  // erase
      std::vector<NodeId> live;
      for (NodeId v = 0; v < pos.size(); ++v) {
        if (alive[v]) live.push_back(v);
      }
      if (live.empty()) continue;
      const NodeId v = live[rng.uniform_int(live.size())];
      alive[v] = false;
      engine.erase(v);
    } else if (roll < 0.85) {  // revive
      std::vector<NodeId> dead;
      for (NodeId v = 0; v < pos.size(); ++v) {
        if (!alive[v]) dead.push_back(v);
      }
      if (dead.empty()) continue;
      const NodeId v = dead[rng.uniform_int(dead.size())];
      pos[v] = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
      alive[v] = true;
      engine.revive(v, pos[v]);
    } else {  // insert
      pos.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
      alive.push_back(true);
      ASSERT_EQ(engine.insert(pos.back()), pos.size() - 1);
    }
    // The always-valid contract, after every single event.
    const auto check = engine.check();
    ASSERT_TRUE(check.ok) << "seed " << seed << " step " << step << ": "
                          << check.describe();
    ASSERT_LE(engine.cds_size(), 4 * engine.mis_size() + 12)
        << "seed " << seed << " step " << step;
    if (step % 10 == 9) checkpoint();
  }
  checkpoint();
}

INSTANTIATE_TEST_SUITE_P(Streams, DynChurnStream,
                         ::testing::Range<std::uint64_t>(1, 201));

}  // namespace
