// Server integration tests: admission, deadline enforcement, error
// containment, degradation, drain and the client retry loop — against
// the real thread stack (batcher + watchdog + pool), with the
// solve_hook seam shaping latency and injecting faults where needed.
// Timing margins are generous (tens of milliseconds vs millisecond
// polls) to stay robust on loaded CI machines.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/validate.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "udg/instance.hpp"

namespace {

using namespace mcds::serve;
using namespace std::chrono_literals;

mcds::udg::UdgInstance small_instance(std::uint64_t seed) {
  mcds::udg::InstanceParams p;
  p.nodes = 25;
  p.side = 4.0;
  return mcds::udg::generate_largest_component_instance(p, seed);
}

Request make_request(std::uint64_t seed, Duration budget = 5s,
                     Tier tier = Tier::kKm11) {
  Request r;
  r.instance = small_instance(seed);
  r.tier = tier;
  r.deadline = std::chrono::steady_clock::now() + budget;
  return r;
}

mcds::par::BatchOutcome trivial_outcome() {
  mcds::par::BatchOutcome o;
  o.cds = {0};
  o.dominators = 1;
  o.nodes = 1;
  return o;
}

TEST(ServeServer, SolvesValidRequestsAtEveryTier) {
  Server server(ServerParams{});
  for (const Tier t : {Tier::kKm22, Tier::kKm11, Tier::kGreedy}) {
    auto inst = small_instance(42);
    const auto g = inst.graph;
    Request req;
    req.instance = std::move(inst);
    req.tier = t;
    req.deadline = std::chrono::steady_clock::now() + 10s;
    const Response r = server.submit(std::move(req)).wait();
    ASSERT_EQ(r.status, Status::kOk) << to_string(t) << ": " << r.error;
    EXPECT_EQ(r.tier, t);
    EXPECT_FALSE(r.degraded);
    EXPECT_TRUE(mcds::core::check_cds(g, r.cds).ok) << to_string(t);
    if (t != Tier::kGreedy) {
      EXPECT_GT(r.dominators, 0u);
      EXPECT_FALSE(r.trace_stripped);
    }
    EXPECT_GE(r.latency_seconds, 0.0);
  }
  server.drain();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.ok, 3u);
  EXPECT_EQ(s.leaked(), 0u);
}

TEST(ServeServer, MalformedRequestsAreInvalidNotFatal) {
  Server server(ServerParams{});
  {
    Request r;  // no instance, no ops
    r.deadline = std::chrono::steady_clock::now() + 1s;
    EXPECT_EQ(server.submit(std::move(r)).wait().status, Status::kInvalid);
  }
  {
    Request r = make_request(1);
    r.deadline = std::chrono::steady_clock::now() - 1s;  // already past
    EXPECT_EQ(server.submit(std::move(r)).wait().status, Status::kInvalid);
  }
  {
    Request r;  // churn without an engine
    r.ops.push_back({ChurnOp::Kind::kInsert, 0, {1.0, 1.0}});
    r.deadline = std::chrono::steady_clock::now() + 1s;
    EXPECT_EQ(server.submit(std::move(r)).wait().status, Status::kInvalid);
  }
  // The server still serves after all that.
  EXPECT_EQ(server.submit(make_request(2)).wait().status, Status::kOk);
  server.drain();
  EXPECT_EQ(server.stats().leaked(), 0u);
}

TEST(ServeServer, FullQueueRejectsInsteadOfBuffering) {
  std::atomic<bool> release{false};
  ServerParams p;
  p.queue_capacity = 2;
  p.max_batch = 1;
  p.solve_hook = [&](const Request&, Tier, SharedState&) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    return trivial_outcome();
  };
  Server server(std::move(p));
  std::vector<Ticket> tickets;
  for (int i = 0; i < 12; ++i) {
    tickets.push_back(server.submit(make_request(i)));
  }
  // With one in flight and two queued slots, most of the burst must
  // have been rejected synchronously.
  std::size_t rejected = 0;
  for (Ticket& t : tickets) {
    if (t.done() && t.state()->status() == Status::kRejected) ++rejected;
  }
  EXPECT_GE(rejected, 12u - 4u);
  release.store(true);
  server.drain();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.leaked(), 0u);
  EXPECT_EQ(s.submitted, 12u);
  EXPECT_GE(s.rejected, 8u);
}

TEST(ServeServer, WatchdogConvertsHungSolveIntoStructuredTimeout) {
  ServerParams p;
  p.solve_hook = [](const Request&, Tier, SharedState& st) {
    // A "hung" solve: only cooperative cancellation ends it early.
    for (int i = 0; i < 2000 && !st.cancel_requested(); ++i) {
      std::this_thread::sleep_for(1ms);
    }
    return trivial_outcome();
  };
  Server server(std::move(p));
  const auto start = std::chrono::steady_clock::now();
  Request req = make_request(7, /*budget=*/50ms);
  const Response r = server.submit(std::move(req)).wait();
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(r.status, Status::kTimeout);
  // The caller was unblocked by the watchdog near the deadline, not
  // after the 2-second hang.
  EXPECT_LT(waited, 1s);
  // And the server is not poisoned: a fresh fast request still works.
  ServerStats s = server.stats();
  EXPECT_GE(s.timeout, 1u);
  server.drain();
  EXPECT_EQ(server.stats().leaked(), 0u);
}

TEST(ServeServer, ThrowingSolveYieldsStructuredErrorOnlyForThatRequest) {
  ServerParams p;
  p.solve_hook = [](const Request& r, Tier, SharedState&) {
    if (r.instance.seed == 3) throw std::runtime_error("injected fault");
    return trivial_outcome();
  };
  Server server(std::move(p));
  std::vector<Ticket> tickets;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    tickets.push_back(server.submit(make_request(seed)));
  }
  std::size_t ok = 0, err = 0;
  for (Ticket& t : tickets) {
    const Response r = t.wait();
    if (r.status == Status::kOk) ++ok;
    if (r.status == Status::kError) {
      ++err;
      EXPECT_EQ(r.error, "injected fault");
    }
  }
  EXPECT_EQ(ok, 5u);
  EXPECT_EQ(err, 1u);
  server.drain();
  EXPECT_EQ(server.stats().leaked(), 0u);
}

TEST(ServeServer, NoSuccessPastDeadlineEvenIfTheSolverFinishes) {
  ServerParams p;
  p.solve_hook = [](const Request&, Tier, SharedState&) {
    std::this_thread::sleep_for(80ms);
    return trivial_outcome();  // a "success", but too late
  };
  Server server(std::move(p));
  const Response r = server.submit(make_request(1, /*budget=*/30ms)).wait();
  EXPECT_EQ(r.status, Status::kTimeout);
  EXPECT_TRUE(r.cds.empty());
  server.drain();
  EXPECT_EQ(server.stats().leaked(), 0u);
}

TEST(ServeServer, OverloadDegradesTierAndRecordsMonotoneTransitions) {
  ServerParams p;
  p.queue_capacity = 16;
  p.max_batch = 2;
  // Aggressive controller: escalate as soon as the p95 latency of the
  // shaped 5ms solves is visible.
  p.overload.enter_p95_s = 0.002;
  p.overload.exit_p95_s = 0.001;
  p.overload.dwell_up = 1;
  p.solve_hook = [](const Request&, Tier, SharedState&) {
    std::this_thread::sleep_for(5ms);
    return trivial_outcome();
  };
  mcds::obs::MetricsRegistry reg;
  mcds::obs::Obs obs;
  obs.metrics = &reg;
  Server server(std::move(p), obs);
  std::vector<Ticket> tickets;
  for (int i = 0; i < 40; ++i) {
    Request r = make_request(i, 10s, Tier::kKm22);
    tickets.push_back(server.submit(std::move(r)));
  }
  std::size_t degraded = 0;
  for (Ticket& t : tickets) {
    const Response r = t.wait();
    if (r.status == Status::kOk && r.degraded) {
      ++degraded;
      EXPECT_GT(static_cast<int>(r.tier), static_cast<int>(Tier::kKm22));
    }
  }
  EXPECT_GT(degraded, 0u);
  const auto transitions = server.overload_transitions();
  EXPECT_FALSE(transitions.empty());
  for (const OverloadTransition& t : transitions) {
    EXPECT_EQ(std::max(t.from, t.to) - std::min(t.from, t.to), 1u);
  }
  server.drain();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.leaked(), 0u);
  EXPECT_EQ(s.degraded, degraded);
  // The degradation is visible in metrics, not just return values.
  EXPECT_GT(reg.counter("serve.degraded").value(), 0u);
}

TEST(ServeServer, ChurnRequestsApplyInOrderAndJournal) {
  auto inst = small_instance(11);
  ServerParams p;
  p.initial_points = inst.points;
  p.dyn.radius = inst.radius;
  Server server(std::move(p));
  Request r;
  r.ops.push_back({ChurnOp::Kind::kInsert, 0, inst.points[0]});
  r.ops.push_back({ChurnOp::Kind::kErase, 1, {}});
  r.deadline = std::chrono::steady_clock::now() + 10s;
  const Response resp = server.submit(std::move(r)).wait();
  ASSERT_EQ(resp.status, Status::kOk) << resp.error;
  EXPECT_EQ(server.journal_size(), 2u);
  ASSERT_NE(server.engine(), nullptr);
  server.drain();
  EXPECT_FALSE(server.engine()->alive(1));
  EXPECT_EQ(server.engine()->cds(), resp.cds);
  EXPECT_EQ(server.stats().leaked(), 0u);
}

TEST(ServeServer, ClientRetryRidesOutBackpressure) {
  std::atomic<int> solves{0};
  ServerParams p;
  p.queue_capacity = 1;
  p.max_batch = 1;
  p.solve_hook = [&](const Request&, Tier, SharedState&) {
    std::this_thread::sleep_for(20ms);
    ++solves;
    return trivial_outcome();
  };
  Server server(std::move(p));
  // Saturate: one in flight, one queued. Wait for the batcher to pop
  // the first request before queueing the second, else the second races
  // the 1-slot queue and gets rejected.
  auto a = server.submit(make_request(1, 10s));
  for (int i = 0; i < 2000 && server.queue_depth() > 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  auto b = server.submit(make_request(2, 10s));
  // A bare submit now is rejected; the retrying client succeeds once
  // the backlog clears.
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.base = 5ms;
  policy.cap = 20ms;
  const Response r = submit_with_retry(
      server, make_request(3, 10s), policy,
      [] { return std::chrono::steady_clock::now(); }, [] { return Duration(10s); },
      [](Duration d) { std::this_thread::sleep_for(d); });
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(a.wait().status, Status::kOk);
  EXPECT_EQ(b.wait().status, Status::kOk);
  server.drain();
  EXPECT_EQ(server.stats().leaked(), 0u);
}

TEST(ServeServer, ShutdownCancelsQueuedWorkWithoutLeaks) {
  std::atomic<bool> release{false};
  ServerParams p;
  p.queue_capacity = 8;
  p.max_batch = 1;
  p.solve_hook = [&](const Request&, Tier, SharedState&) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    return trivial_outcome();
  };
  auto server = std::make_unique<Server>(std::move(p));
  std::vector<Ticket> tickets;
  for (int i = 0; i < 6; ++i) tickets.push_back(server->submit(make_request(i)));
  release.store(true);
  server->shutdown();
  const ServerStats s = server->stats();
  EXPECT_EQ(s.leaked(), 0u);
  EXPECT_EQ(s.inflight, 0u);
  for (Ticket& t : tickets) EXPECT_TRUE(t.done());
}

}  // namespace
