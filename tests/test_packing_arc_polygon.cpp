#include "packing/arc_polygon.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/circle.hpp"
#include "sim/rng.hpp"

namespace mcds::packing {
namespace {

// The lens of two unit circles at distance d: an arc-polygon with two
// vertices (the circle intersections) and two arc pieces.
ArcPolygon make_lens(double d) {
  const Vec2 o{0, 0}, u{d, 0};
  const auto pts = geom::intersect(geom::unit_disk(o), geom::unit_disk(u));
  const Vec2 top = pts[0], bottom = pts[1];
  std::vector<BoundaryPiece> pieces;
  pieces.push_back({bottom, true, o});  // right boundary: circle around o
  pieces.push_back({top, true, u});     // left boundary: circle around u
  return ArcPolygon(top, std::move(pieces));
}

TEST(ArcPolygon, LensIsWellFormed) {
  const auto lens = make_lens(1.0);
  EXPECT_TRUE(lens.well_formed());
  EXPECT_EQ(lens.vertices().size(), 2u);
}

TEST(ArcPolygon, LensDiameters) {
  // Unit-circle lens at center distance 1: vertices at distance
  // sqrt(3); the region diameter equals the vertex diameter (lens is
  // "thin" in the other direction: width 2 - d = 1 < sqrt(3)).
  const auto lens = make_lens(1.0);
  EXPECT_NEAR(lens.vertex_diameter(), std::sqrt(3.0), 1e-9);
  EXPECT_NEAR(lens.boundary_diameter(0.005), std::sqrt(3.0), 1e-3);
}

TEST(ArcPolygon, RejectsEmptyAndDetectsOpenBoundary) {
  EXPECT_THROW(ArcPolygon({0, 0}, {}), std::invalid_argument);
  std::vector<BoundaryPiece> open;
  open.push_back({{1.0, 0.0}, false, {}});
  const ArcPolygon poly({0, 0}, std::move(open));
  EXPECT_FALSE(poly.well_formed());  // does not return to start
}

TEST(ArcPolygon, ArcPieceMustLieOnUnitCircle) {
  std::vector<BoundaryPiece> pieces;
  pieces.push_back({{1.0, 0.0}, true, {5.0, 5.0}});  // bad arc center
  pieces.push_back({{0.0, 0.0}, false, {}});
  const ArcPolygon poly({0, 0}, std::move(pieces));
  EXPECT_FALSE(poly.well_formed());
}

TEST(ArcTriangle, FromThreeMutuallyIntersectingCircles) {
  // Circle centers forming a small triangle; vertices are pairwise
  // intersections chosen on the outer side.
  const Vec2 c1{0.0, 0.0}, c2{0.8, 0.0}, c3{0.4, 0.7};
  const Vec2 a = geom::intersect(geom::unit_disk(c1),
                                 geom::unit_disk(c2))[0];  // above
  const Vec2 b = geom::intersect(geom::unit_disk(c2),
                                 geom::unit_disk(c3))[0];
  const Vec2 c = geom::intersect(geom::unit_disk(c3),
                                 geom::unit_disk(c1))[0];
  // a,b share circle c2; b,c share c3; c,a share c1.
  const auto tri = make_arc_triangle(a, b, c, c2, c3, c1);
  EXPECT_TRUE(tri.well_formed());
  EXPECT_EQ(tri.vertices().size(), 3u);
  EXPECT_GE(tri.boundary_diameter(0.01) + 1e-9, tri.vertex_diameter());
}

TEST(ArcTriangle, ValidatesVertexDistances) {
  EXPECT_THROW((void)make_arc_triangle({0, 0}, {1, 0}, {0, 1}, {5, 5},
                                       {5, 5}, {5, 5}),
               std::invalid_argument);
}

// Appendix claim: the diameter of an arc-polygon is <= 1 iff the
// diameter of its vertex set is <= 1. Probe on random lenses and arc
// triangles: boundary diameter must equal the vertex diameter whenever
// the vertex diameter <= 1, and can only exceed it via vertices
// otherwise (minor arcs never bulge beyond their chord's circle...).
class ArcPolygonDiameter : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArcPolygonDiameter, VertexSetDeterminesUnitDiameter) {
  sim::Rng rng(GetParam() * 7 + 3);
  for (int trial = 0; trial < 40; ++trial) {
    const double d = rng.uniform(0.2, 1.9);
    const auto lens = make_lens(d);
    ASSERT_TRUE(lens.well_formed());
    const double vd = lens.vertex_diameter();
    const double bd = lens.boundary_diameter(0.01);
    // The reduction, numerically: (bd <= 1) iff (vd <= 1), with a small
    // dead-band for sampling error.
    if (vd <= 1.0 - 1e-3) {
      EXPECT_LE(bd, 1.0 + 1e-6) << "d=" << d;
    }
    if (vd > 1.0 + 1e-3) {
      EXPECT_GT(bd, 1.0) << "d=" << d;
    }
    // Boundary diameter is never below the vertex diameter.
    EXPECT_GE(bd + 1e-9, vd);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArcPolygonDiameter,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace mcds::packing
