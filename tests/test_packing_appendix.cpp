#include "packing/appendix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sim/rng.hpp"

namespace mcds::packing {
namespace {

TEST(Lemma11, SquareIsBoundaryCase) {
  // Unit square: ov = up = 1, vp = ou = 1, both angles 90° -> sum 180°.
  const Lemma11Config square{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_TRUE(square.hypothesis_holds());
  EXPECT_NEAR(square.angle_sum(), std::numbers::pi, 1e-9);
  EXPECT_TRUE(square.lemma_holds());
}

TEST(Lemma11, WideTrapezoidHasSmallAngles) {
  // vp longer than ou: the legs splay outward, angle sum < 180°.
  const Lemma11Config cfg{{0, 0}, {1, 0}, {1.5, 1.0}, {-0.5, 1.0}};
  ASSERT_TRUE(cfg.hypothesis_holds());
  EXPECT_GT(geom::dist(cfg.v, cfg.p), geom::dist(cfg.o, cfg.u));
  EXPECT_LT(cfg.angle_sum(), std::numbers::pi);
  EXPECT_TRUE(cfg.lemma_holds());
}

TEST(Lemma11, NarrowTrapezoidHasLargeAngles) {
  // vp shorter than ou: angle sum > 180°.
  const Lemma11Config cfg{{0, 0}, {1, 0}, {0.8, 1.0}, {0.2, 1.0}};
  ASSERT_TRUE(cfg.hypothesis_holds());
  EXPECT_LT(geom::dist(cfg.v, cfg.p), geom::dist(cfg.o, cfg.u));
  EXPECT_GT(cfg.angle_sum(), std::numbers::pi);
  EXPECT_TRUE(cfg.lemma_holds());
}

TEST(Lemma11, HypothesisRejectsBadInputs) {
  // |ov| != |up|.
  const Lemma11Config unequal{{0, 0}, {1, 0}, {1, 2}, {0, 1}};
  EXPECT_FALSE(unequal.hypothesis_holds());
  // Non-convex (reflex) order.
  const Lemma11Config reflex{{0, 0}, {1, 0}, {0.4, 0.1}, {0, 1}};
  EXPECT_FALSE(reflex.hypothesis_holds());
}

// Property sweep for Lemma 11: random isosceles-leg trapezoids
// (symmetric construction guarantees ov = up exactly).
class Lemma11Random : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma11Random, EquivalenceHolds) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    // Symmetric trapezoid: o=(-w,0), u=(w,0), p=(x,h), v=(-x,h).
    const double w = rng.uniform(0.2, 2.0);
    const double x = rng.uniform(0.05, 2.5);
    const double h = rng.uniform(0.1, 2.0);
    const Lemma11Config cfg{{-w, 0}, {w, 0}, {x, h}, {-x, h}};
    if (!cfg.hypothesis_holds()) continue;
    EXPECT_TRUE(cfg.lemma_holds())
        << "w=" << w << " x=" << x << " h=" << h;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma11Random,
                         ::testing::Range<std::uint64_t>(1, 11));

// Lemma 11 also holds for asymmetric quadrilaterals with |ov| = |up|.
class Lemma11Asymmetric : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma11Asymmetric, EquivalenceHolds) {
  sim::Rng rng(GetParam() * 131);
  int accepted = 0;
  for (int trial = 0; trial < 2000 && accepted < 100; ++trial) {
    const Vec2 o{0, 0}, u{rng.uniform(0.3, 1.5), 0};
    const double leg = rng.uniform(0.3, 2.0);
    // v above o, p above u, both at leg length with random directions.
    const Vec2 v = geom::from_polar(o, leg, rng.uniform(0.3, 2.8));
    const Vec2 p = geom::from_polar(u, leg, rng.uniform(0.3, 2.8));
    const Lemma11Config cfg{o, u, p, v};
    if (!cfg.hypothesis_holds()) continue;
    ++accepted;
    EXPECT_TRUE(cfg.lemma_holds()) << "trial " << trial;
  }
  EXPECT_GT(accepted, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma11Asymmetric,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Lemma12, BuilderRespectsHypotheses) {
  // p on the far lower-right of ∂D_u: |ap| > 1, hypothesis fails.
  EXPECT_FALSE(build_lemma12(0.8, -0.3).has_value());
  // Invalid separations: rejected.
  EXPECT_FALSE(build_lemma12(0.0, 0.0).has_value());
  EXPECT_FALSE(build_lemma12(1.5, 0.0).has_value());
}

TEST(Lemma12, KnownConfigurationDiameterIsOne) {
  // p = u + (cos 1.2, sin 1.2): |ap| ≈ 0.76 <= 1 and |op| ≈ 1.49 >= 1.
  const auto cfg = build_lemma12(0.8, 1.2);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_LE(cfg->diameter(), 1.0 + 1e-9);
  // p is on both ∂D_p-circles' centers... v1 and v2 are on ∂D_p:
  EXPECT_NEAR(geom::dist(cfg->p, cfg->v1), 1.0, 1e-9);
  EXPECT_NEAR(geom::dist(cfg->p, cfg->v2), 1.0, 1e-9);
}

// Property sweep for Lemma 12: diam({v1, v2, p}) <= 1 over the whole
// admissible parameter range, and the diameter is exactly 1 (attained
// by the unit radii).
class Lemma12Random : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma12Random, DiameterNeverExceedsOne) {
  sim::Rng rng(GetParam() * 17 + 5);
  int accepted = 0;
  for (int trial = 0; trial < 5000 && accepted < 300; ++trial) {
    const double d = rng.uniform(0.05, 1.0);
    const double theta = rng.uniform(-std::numbers::pi, std::numbers::pi);
    const auto cfg = build_lemma12(d, theta);
    if (!cfg) continue;
    ++accepted;
    EXPECT_LE(cfg->diameter(), 1.0 + 1e-9)
        << "d=" << d << " theta=" << theta;
    EXPECT_NEAR(cfg->diameter(), 1.0, 1e-9);  // attained by |p v1|
  }
  EXPECT_GT(accepted, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma12Random,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace mcds::packing
