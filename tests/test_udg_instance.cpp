#include "udg/instance.hpp"

#include <gtest/gtest.h>

#include "graph/traversal.hpp"
#include "udg/builder.hpp"

namespace mcds::udg {
namespace {

TEST(Instance, GenerateBasics) {
  InstanceParams params;
  params.nodes = 80;
  params.side = 8.0;
  const auto inst = generate_instance(params, 11);
  EXPECT_EQ(inst.points.size(), 80u);
  EXPECT_EQ(inst.graph.num_nodes(), 80u);
  EXPECT_EQ(inst.seed, 11u);
  EXPECT_DOUBLE_EQ(inst.radius, 1.0);
  // Graph matches a rebuild from the points.
  EXPECT_EQ(inst.graph.edges(), build_udg(inst.points).edges());
}

TEST(Instance, ZeroNodesThrows) {
  InstanceParams params;
  params.nodes = 0;
  EXPECT_THROW((void)generate_instance(params, 1), std::invalid_argument);
}

TEST(Instance, DeterministicForSeed) {
  InstanceParams params;
  params.nodes = 40;
  const auto a = generate_instance(params, 5);
  const auto b = generate_instance(params, 5);
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
  const auto c = generate_instance(params, 6);
  EXPECT_NE(a.graph.edges(), c.graph.edges());
}

TEST(Instance, ConnectedInstanceIsConnected) {
  InstanceParams params;
  params.nodes = 60;
  params.side = 6.0;  // dense enough to be connectable
  const auto inst = generate_connected_instance(params, 3);
  ASSERT_TRUE(inst.has_value());
  EXPECT_TRUE(graph::is_connected(inst->graph));
  EXPECT_EQ(inst->seed, 3u);
}

TEST(Instance, HopelessDensityReturnsNullopt) {
  InstanceParams params;
  params.nodes = 10;
  params.side = 500.0;  // virtually never connected
  params.max_retries = 3;
  EXPECT_FALSE(generate_connected_instance(params, 1).has_value());
}

TEST(Instance, LargestComponentAlwaysConnected) {
  InstanceParams params;
  params.nodes = 30;
  params.side = 40.0;  // sparse: many components
  params.max_retries = 2;
  const auto inst = generate_largest_component_instance(params, 7);
  EXPECT_GE(inst.points.size(), 1u);
  EXPECT_LE(inst.points.size(), 30u);
  EXPECT_TRUE(graph::is_connected(inst.graph));
  EXPECT_EQ(inst.points.size(), inst.graph.num_nodes());
}

TEST(Instance, LargestComponentKeepsDenseInstancesWhole) {
  InstanceParams params;
  params.nodes = 60;
  params.side = 6.0;
  const auto inst = generate_largest_component_instance(params, 3);
  EXPECT_EQ(inst.points.size(), 60u);
}

}  // namespace
}  // namespace mcds::udg
