#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dist/failure_detector.hpp"
#include "dist/fault.hpp"
#include "obs/metrics.hpp"
#include "udg/instance.hpp"

/// \file test_dist_failure_detector.cpp
/// The accrual failure detector: suspicion of crashed and partitioned
/// neighbors, recovery and heal clearing it, and — the detector's
/// defining property — no false positives when ReliableLink stretches
/// heartbeat arrivals with retransmission backoff.

namespace {

using mcds::graph::Graph;
using mcds::graph::NodeId;
using namespace mcds::dist;

Graph detector_udg(std::uint64_t seed) {
  mcds::udg::InstanceParams params;
  params.nodes = 20;
  params.side = 5.0;
  params.radius = 1.8;
  auto inst = mcds::udg::generate_connected_instance(params, seed);
  EXPECT_TRUE(inst.has_value());
  return inst->graph;
}

std::vector<std::uint32_t> one_group(std::size_t n) {
  return std::vector<std::uint32_t>(n, 0);
}

}  // namespace

TEST(FailureDetector, CleanNetworkHasNoSuspects) {
  const Graph g = detector_udg(1);
  const auto r = detect_failures(g, {}, {}, std::vector<bool>(g.num_nodes(), true),
                                 one_group(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(r.suspects[v].empty()) << "node " << v;
  }
  ASSERT_TRUE(r.converged_round.has_value());
  EXPECT_LE(*r.converged_round, 2u);  // nothing to detect
}

TEST(FailureDetector, CrashedNeighborIsSuspectedByAllNeighbors) {
  const Graph g = detector_udg(2);
  const NodeId victim = 0;
  RunConfig cfg;
  cfg.plan.schedule.push_back({5, victim, false});
  auto up = std::vector<bool>(g.num_nodes(), true);
  up[victim] = false;
  const auto r =
      detect_failures(g, cfg, {}, up, one_group(g.num_nodes()));
  ASSERT_TRUE(r.converged_round.has_value());
  // Detection latency: roughly threshold rounds past the last heartbeat.
  EXPECT_LE(*r.converged_round, 5 + 3 * 4u);
  for (const NodeId w : g.neighbors(victim)) {
    EXPECT_EQ(r.suspects[w], std::vector<NodeId>{victim}) << "observer " << w;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == victim || g.has_edge(v, victim)) continue;
    EXPECT_TRUE(r.suspects[v].empty()) << "non-neighbor " << v;
  }
}

TEST(FailureDetector, RecoveryClearsSuspicion) {
  const Graph g = detector_udg(3);
  RunConfig cfg;
  cfg.plan.schedule.push_back({4, 1, false});
  cfg.plan.schedule.push_back({20, 1, true});
  FailureDetectorParams params;
  params.rounds = 60;
  const auto r = detect_failures(g, cfg, params,
                                 std::vector<bool>(g.num_nodes(), true),
                                 one_group(g.num_nodes()));
  ASSERT_TRUE(r.converged_round.has_value());
  EXPECT_GT(*r.converged_round, 20u);  // had to wait for the recovery
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(r.suspects[v].empty()) << "observer " << v;
  }
}

TEST(FailureDetector, PartitionIsSuspectedAndHealCleans) {
  const Graph g = detector_udg(4);
  const std::size_t n = g.num_nodes();

  // Split low ids from high ids; while the cut is active, cross-cut
  // neighbors must become suspects.
  PartitionEvent split;
  split.round = 3;
  split.groups.resize(2);
  for (NodeId v = 0; v < n; ++v) split.groups[v < n / 2 ? 0 : 1].push_back(v);

  {
    RunConfig cfg;
    cfg.plan.partitions.push_back(split);
    const auto truth_groups = cfg.plan.groups_at(n, SIZE_MAX);
    const auto r = detect_failures(g, cfg, {}, std::vector<bool>(n, true),
                                   truth_groups);
    ASSERT_TRUE(r.converged_round.has_value())
        << "suspect sets never matched the cut";
    for (NodeId v = 0; v < n; ++v) {
      std::vector<NodeId> expected;
      for (const NodeId w : g.neighbors(v)) {
        if (truth_groups[v] != truth_groups[w]) expected.push_back(w);
      }
      EXPECT_EQ(r.suspects[v], expected) << "observer " << v;
    }
  }
  {
    RunConfig cfg;
    cfg.plan.partitions.push_back(split);
    cfg.plan.partitions.push_back({18, {}});  // heal
    FailureDetectorParams params;
    params.rounds = 64;
    const auto r = detect_failures(g, cfg, params, std::vector<bool>(n, true),
                                   one_group(n));
    ASSERT_TRUE(r.converged_round.has_value());
    EXPECT_GT(*r.converged_round, 18u);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_TRUE(r.suspects[v].empty()) << "observer " << v;
    }
  }
}

// The retransmission-aware property: a lossy link under ReliableLink
// stretches and bunches heartbeat arrivals, but the windowed mean
// absorbs the jitter — nobody may end up suspecting a live neighbor.
TEST(FailureDetector, ReliableLinkJitterDoesNotFalsePositive) {
  const Graph g = detector_udg(5);
  RunConfig cfg;
  cfg.plan.link.drop = 0.15;
  cfg.plan.link.duplicate = 0.25;
  cfg.plan.link.max_delay = 2;
  cfg.plan.seed = 99;
  cfg.reliable = true;
  FailureDetectorParams params;
  params.threshold = 4.0;
  params.rounds = 60;
  const auto r = detect_failures(g, cfg, params);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(r.suspects[v].empty()) << "observer " << v;
  }
}

// Duplicate + delayed copies of one heartbeat carry the same sequence
// number; the payload-freshness dedup must discard them instead of
// folding phantom zero-gaps into the window.
TEST(FailureDetector, StaleCopiesAreDeduplicated) {
  const Graph g = detector_udg(6);
  Runtime rt(g);
  FaultPlan plan;
  plan.link.duplicate = 0.8;
  plan.link.max_delay = 2;
  plan.seed = 7;
  Runtime faulty(g, plan);
  FailureDetectorParams params;
  params.rounds = 30;
  FailureDetector d(faulty, params);
  faulty.run(d);
  EXPECT_GT(d.dedup_hits(), 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(d.suspects_of(v).empty()) << "observer " << v;
  }
}

TEST(FailureDetector, ParamValidationAndMetrics) {
  const Graph g = detector_udg(7);
  Runtime rt(g);
  EXPECT_THROW((FailureDetector(rt, FailureDetectorParams{0, 8, 3.0, 10})),
               std::invalid_argument);
  EXPECT_THROW((FailureDetector(rt, FailureDetectorParams{1, 0, 3.0, 10})),
               std::invalid_argument);
  EXPECT_THROW((FailureDetector(rt, FailureDetectorParams{1, 8, 0.0, 10})),
               std::invalid_argument);

  mcds::obs::MetricsRegistry reg;
  RunConfig cfg;
  cfg.plan.schedule.push_back({4, 0, false});
  cfg.obs.metrics = &reg;
  const auto r = detect_failures(g, cfg);
  EXPECT_GT(r.stats.messages, 0u);
  EXPECT_GT(reg.counter("failure_detector.heartbeats").value(), 0u);
  EXPECT_GT(reg.counter("failure_detector.suspicions").value(), 0u);
}

TEST(FailureDetector, PhiGrowsWhileSilent) {
  // Two nodes, one edge: after the peer crashes, phi rises monotonically
  // with silence and crosses any threshold.
  const std::vector<std::pair<NodeId, NodeId>> edges{{0, 1}};
  const Graph g(2, edges);
  FaultPlan plan;
  plan.schedule.push_back({3, 1, false});
  Runtime rt(g, plan);
  FailureDetectorParams params;
  params.rounds = 20;
  FailureDetector d(rt, params);
  rt.run(d);
  EXPECT_GE(d.phi(0, 1), params.threshold);
  EXPECT_EQ(d.suspects_of(0), std::vector<NodeId>{1});
  EXPECT_EQ(d.phi(0, 0), 0.0);  // non-neighbor (self)
}
