#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dist/alzoubi_protocol.hpp"
#include "dist/bfs_tree.hpp"
#include "dist/connector_selection.hpp"
#include "dist/distributed_cds.hpp"
#include "dist/failure_detector.hpp"
#include "dist/fault.hpp"
#include "dist/greedy_protocol.hpp"
#include "dist/leader_election.hpp"
#include "dist/mis_election.hpp"
#include "dist/reliable_link.hpp"
#include "dist/runtime.hpp"
#include "graph/graph.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "par/thread_pool.hpp"
#include "udg/instance.hpp"

// Differential determinism suite for the parallel round engine: every
// protocol, run with a thread pool at several worker counts, must
// reproduce the serial runtime byte for byte — the delivered-message
// trace, RunStats (including causal critical path and the per-type /
// per-round breakdowns), FaultStats, metric values, and the protocol's
// own outputs. The serial runtime is the golden reference; any
// divergence is a scheduling leak in the capture/replay barrier.

namespace {

using mcds::dist::FaultPlan;
using mcds::dist::FaultStats;
using mcds::dist::Graph;
using mcds::dist::NodeId;
using mcds::dist::RunConfig;
using mcds::dist::RunStats;
using mcds::dist::TraceEvent;
using mcds::par::ThreadPool;

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

Graph par_udg(std::uint64_t seed, std::size_t nodes) {
  mcds::udg::InstanceParams params;
  params.nodes = nodes;
  params.side = 6.0;
  params.radius = 1.7;
  auto inst = mcds::udg::generate_connected_instance(params, seed);
  EXPECT_TRUE(inst.has_value()) << "graph seed " << seed;
  return inst->graph;
}

// Everything one execution produces that must be thread-count
// invariant.
struct Capture {
  std::vector<TraceEvent> trace;
  RunStats stats;
  FaultStats faults;
  std::string result;   ///< digest of the protocol's own outputs
  std::string metrics;  ///< sorted-JSON metric export
};

// One protocol scenario: given a RunConfig (pool already set), run and
// capture. The callback fills `stats`, `faults` and `result`; trace,
// obs sinks and the metric export are wired by run_scenario.
using Scenario = std::function<void(const Graph&, RunConfig&, Capture&)>;

Capture run_scenario(const Graph& g, const Scenario& fn, const FaultPlan& plan,
                     bool reliable, ThreadPool* pool) {
  Capture cap;
  mcds::obs::MetricsRegistry reg;
  mcds::obs::CausalTracer tracer;
  RunConfig cfg;
  cfg.plan = plan;
  cfg.reliable = reliable;
  cfg.link = {.max_retries = 6, .rto = 3, .max_rto = 8, .ttl_rounds = 0};
  cfg.max_rounds = 4000;
  cfg.trace = &cap.trace;
  cfg.obs.metrics = &reg;
  cfg.obs.causal = &tracer;
  cfg.pool = pool;
  fn(g, cfg, cap);
  std::ostringstream ms;
  reg.write_json(ms);
  cap.metrics = ms.str();
  return cap;
}

void expect_stats_eq(const RunStats& a, const RunStats& b,
                     const std::string& what) {
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.critical_path, b.critical_path) << what;
  EXPECT_EQ(a.by_type, b.by_type) << what;
  EXPECT_EQ(a.per_round, b.per_round) << what;
}

void expect_faults_eq(const FaultStats& a, const FaultStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.dropped, b.dropped) << what;
  EXPECT_EQ(a.duplicated, b.duplicated) << what;
  EXPECT_EQ(a.delayed, b.delayed) << what;
  EXPECT_EQ(a.crash_discarded, b.crash_discarded) << what;
  EXPECT_EQ(a.suppressed, b.suppressed) << what;
  EXPECT_EQ(a.partition_dropped, b.partition_dropped) << what;
}

void expect_identical(const Capture& serial, const Capture& par,
                      const std::string& what) {
  EXPECT_EQ(serial.trace, par.trace) << what << ": trace diverged";
  expect_stats_eq(serial.stats, par.stats, what + ": stats");
  expect_faults_eq(serial.faults, par.faults, what + ": faults");
  EXPECT_EQ(serial.result, par.result) << what << ": protocol output";
  EXPECT_EQ(serial.metrics, par.metrics) << what << ": metric export";
}

std::string join_ids(const std::vector<NodeId>& ids) {
  std::ostringstream os;
  for (const NodeId v : ids) os << v << ',';
  return os.str();
}

// The eight protocols, each as a scenario. Phase inputs (BFS levels,
// MIS flags) come from the fault-free construction so every thread
// count sees identical inputs.
struct NamedScenario {
  const char* name;
  Scenario fn;
};

std::vector<NamedScenario> all_scenarios(const Graph& g) {
  const auto ideal = mcds::dist::distributed_waf_cds(g);
  const auto level = ideal.tree.level;
  const auto parent = ideal.tree.parent;
  const auto in_mis = ideal.mis.in_mis;
  const NodeId leader = ideal.leader;
  return {
      {"leader",
       [](const Graph& gg, RunConfig& cfg, Capture& cap) {
         const auto r = mcds::dist::elect_leader(gg, cfg);
         cap.stats = r.stats;
         cap.result = std::to_string(r.leader) + '/' +
                      std::to_string(r.complete);
       }},
      {"bfs",
       [leader](const Graph& gg, RunConfig& cfg, Capture& cap) {
         const auto r = mcds::dist::build_bfs_tree(gg, leader, cfg);
         cap.stats = r.stats;
         cap.result = join_ids(r.parent) + '|' + join_ids(r.level);
       }},
      {"mis",
       [level](const Graph& gg, RunConfig& cfg, Capture& cap) {
         const auto r = mcds::dist::elect_mis(gg, level, cfg);
         cap.stats = r.stats;
         cap.result = join_ids(r.mis);
       }},
      {"connector",
       [leader, parent, in_mis](const Graph& gg, RunConfig& cfg,
                                Capture& cap) {
         const auto r =
             mcds::dist::select_connectors(gg, leader, parent, in_mis, cfg);
         cap.stats = r.stats;
         cap.result = join_ids(r.cds) + '|' + std::to_string(r.s);
       }},
      {"greedy",
       [](const Graph& gg, RunConfig& cfg, Capture& cap) {
         const auto r = mcds::dist::distributed_greedy_cds(gg, cfg);
         cap.stats = r.total;
         cap.result =
             join_ids(r.cds) + '|' + std::to_string(r.epochs);
       }},
      {"alzoubi",
       [](const Graph& gg, RunConfig& cfg, Capture& cap) {
         const auto r = mcds::dist::distributed_alzoubi_cds(gg, cfg);
         cap.stats = r.total;
         cap.result = join_ids(r.cds);
       }},
      {"waf_cds",
       [](const Graph& gg, RunConfig& cfg, Capture& cap) {
         const auto r = mcds::dist::distributed_waf_cds(gg, cfg);
         cap.stats = r.total;
         cap.result = join_ids(r.cds) + '|' + std::to_string(r.complete);
       }},
      // Driven through FaultHarness directly so FaultStats (a Runtime
      // accessor the convenience entry points do not surface) is
      // captured too.
      {"detector",
       [](const Graph& gg, RunConfig& cfg, Capture& cap) {
         mcds::dist::FailureDetectorParams params;
         params.rounds = 40;
         mcds::dist::FaultHarness h(gg, cfg, 0, "detector");
         mcds::dist::FailureDetector det(h.net(), params, cfg.obs);
         cap.stats = h.run(det);
         cap.faults = h.runtime().faults();
         std::ostringstream os;
         for (NodeId v = 0; v < gg.num_nodes(); ++v)
           os << join_ids(det.suspects_of(v)) << ';';
         cap.result = os.str();
       }},
  };
}

FaultPlan lossy_plan(std::size_t n, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.link.drop = 0.06;
  plan.link.duplicate = 0.04;
  plan.link.max_delay = 2;
  plan.schedule.push_back({.round = 2, .node = static_cast<NodeId>(n / 3),
                           .up = false});
  plan.schedule.push_back({.round = 11, .node = static_cast<NodeId>(n / 3),
                           .up = true});
  std::vector<NodeId> half;
  for (NodeId v = 0; v < static_cast<NodeId>(n / 2); ++v) half.push_back(v);
  plan.partitions.push_back({.round = 5, .groups = {half}});
  plan.partitions.push_back({.round = 13, .groups = {}});
  return plan;
}

void run_grid(const FaultPlan& plan, bool reliable) {
  const Graph g = par_udg(17, 40);
  for (const auto& [name, fn] : all_scenarios(g)) {
    const Capture serial = run_scenario(g, fn, plan, reliable, nullptr);
    for (const std::size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      const Capture par = run_scenario(g, fn, plan, reliable, &pool);
      expect_identical(serial, par,
                       std::string(name) + " @" + std::to_string(threads) +
                           " threads");
    }
  }
}

TEST(ParDistDeterminism, FaultFreeMatchesSerialAtEveryThreadCount) {
  run_grid(FaultPlan{}, /*reliable=*/false);
}

TEST(ParDistDeterminism, SeededFaultsMatchSerialAtEveryThreadCount) {
  run_grid(lossy_plan(40, 0xfeedULL), /*reliable=*/false);
}

TEST(ParDistDeterminism, ReliableLinkMatchesSerialAtEveryThreadCount) {
  run_grid(lossy_plan(40, 0xbeefULL), /*reliable=*/true);
}

// Shard-boundary stress: odd grains (forcing nodes split mid-shard) and
// a worker count that does not divide the node count must not change
// the trace.
TEST(ParDistDeterminism, OddGrainsAndThreadCounts) {
  const Graph g = par_udg(23, 31);
  const auto scenarios = all_scenarios(g);
  const auto& waf = scenarios[6];
  ASSERT_STREQ(waf.name, "waf_cds");
  const FaultPlan plan = lossy_plan(31, 0x5eedULL);
  const Capture serial = run_scenario(g, waf.fn, plan, false, nullptr);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7}}) {
    ThreadPool pool(3);
    Capture cap;
    mcds::obs::MetricsRegistry reg;
    mcds::obs::CausalTracer tracer;
    RunConfig cfg;
    cfg.plan = plan;
    cfg.max_rounds = 4000;
    cfg.trace = &cap.trace;
    cfg.obs.metrics = &reg;
    cfg.obs.causal = &tracer;
    cfg.pool = &pool;
    cfg.shard_grain = grain;
    waf.fn(g, cfg, cap);
    std::ostringstream ms;
    reg.write_json(ms);
    cap.metrics = ms.str();
    expect_identical(serial, cap, "waf_cds grain=" + std::to_string(grain));
  }
}

// A protocol that never quiesces, to trip the round guard.
class ChattyProtocol final : public mcds::dist::Protocol {
 public:
  explicit ChattyProtocol(mcds::dist::Transport& net) : net_(&net) {}
  void start(NodeId self) override {
    for (const NodeId w : net_->topology().neighbors(self))
      net_->send(self, w, {.type = 1});
  }
  void step(NodeId self,
            std::span<const mcds::dist::Message> inbox) override {
    for (const auto& m : inbox) net_->send(self, m.from, {.type = 1});
  }
  [[nodiscard]] bool idle() const override { return false; }

 private:
  mcds::dist::Transport* net_;
};

// RoundLimitError diagnostics — rounds executed, in-flight breakdown,
// non-quiescent node list, trace tail — must be identical however many
// workers stepped the rounds.
TEST(ParDistDeterminism, RoundLimitDiagnosticsAreThreadCountInvariant) {
  const Graph g = par_udg(29, 24);
  const auto what_at = [&](ThreadPool* pool) -> std::string {
    mcds::dist::Runtime rt(g);
    rt.parallelize(pool);
    ChattyProtocol p(rt);
    try {
      (void)rt.run(p, /*max_rounds=*/25);
    } catch (const mcds::dist::RoundLimitError& e) {
      return e.what();
    }
    ADD_FAILURE() << "round guard did not trip";
    return {};
  };
  const std::string serial = what_at(nullptr);
  ThreadPool one(1);
  ThreadPool eight(8);
  EXPECT_EQ(serial, what_at(&one));
  EXPECT_EQ(serial, what_at(&eight));
  EXPECT_NE(serial.find("round limit"), std::string::npos) << serial;
}

// The serial fast path and the pool path share the recycled inbox
// arena; back-to-back runs on one Runtime must not leak state across
// executions (the arena is epoch-stamped, not cleared).
TEST(ParDistDeterminism, ArenaRecyclingIsInvisibleAcrossRuns) {
  const Graph g = par_udg(31, 30);
  ThreadPool pool(4);
  std::vector<TraceEvent> first, second;
  for (std::vector<TraceEvent>* sink : {&first, &second}) {
    RunConfig cfg;
    cfg.trace = sink;
    cfg.pool = &pool;
    (void)mcds::dist::distributed_waf_cds(g, cfg);
  }
  EXPECT_EQ(first, second);
}

}  // namespace
