#include "core/repair.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/greedy_connect.hpp"
#include "core/validate.hpp"
#include "test_util.hpp"
#include "udg/builder.hpp"
#include "udg/instance.hpp"

namespace mcds::core {
namespace {

TEST(Repair, ValidOldCdsPassesThrough) {
  const Graph g = test::make_path(7);
  const std::vector<NodeId> cds{1, 2, 3, 4, 5};
  const auto r = repair_cds(g, cds);
  EXPECT_TRUE(is_cds(g, r.cds));
  EXPECT_EQ(r.cds, cds);
  EXPECT_EQ(r.added, 0u);
  EXPECT_EQ(r.kept, 5u);
  EXPECT_EQ(r.dropped, 0u);
}

TEST(Repair, RestoresDominationAndConnectivity) {
  // Old backbone {1, 5} on a path of 7: node 3 is uncovered and the two
  // backbone components cannot be merged by a single node — exercises
  // both repair steps including the path-bridging fallback.
  const Graph g = test::make_path(7);
  const auto r = repair_cds(g, std::vector<NodeId>{1, 5});
  EXPECT_TRUE(is_cds(g, r.cds));
  EXPECT_EQ(r.kept, 2u);
  EXPECT_GE(r.added, 2u);
  EXPECT_TRUE(std::binary_search(r.cds.begin(), r.cds.end(), 1u));
  EXPECT_TRUE(std::binary_search(r.cds.begin(), r.cds.end(), 5u));
}

TEST(Repair, HandlesTotalLoss) {
  const Graph g = test::make_star(6);
  // All old ids out of range: everything failed.
  const auto r = repair_cds(g, std::vector<NodeId>{100, 101});
  EXPECT_TRUE(is_cds(g, r.cds));
  EXPECT_EQ(r.dropped, 2u);
  EXPECT_EQ(r.kept, 0u);
  EXPECT_EQ(r.cds, (std::vector<NodeId>{0}));  // hub
}

TEST(Repair, DeduplicatesOldEntries) {
  const Graph g = test::make_path(3);
  const auto r = repair_cds(g, std::vector<NodeId>{1, 1, 1});
  EXPECT_EQ(r.kept, 1u);
  EXPECT_TRUE(is_cds(g, r.cds));
}

TEST(Repair, Preconditions) {
  EXPECT_THROW((void)repair_cds(Graph{}, {}), std::invalid_argument);
  graph::Graph disc(4);
  disc.add_edge(0, 1);
  disc.finalize();
  EXPECT_THROW((void)repair_cds(disc, {0}), std::invalid_argument);
}

// Property sweep: repair after random topology perturbation always
// yields a valid CDS and keeps most of the old backbone.
class RepairRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RepairRandom, ValidAfterPerturbation) {
  udg::InstanceParams params;
  params.nodes = 120;
  params.side = 9.0;
  const auto before =
      udg::generate_largest_component_instance(params, GetParam() * 7);
  const auto old_cds = greedy_cds(before.graph, 0).cds;

  // Perturb: jitter every node by up to 0.3 and rebuild the topology
  // (keeping the same ids); take the largest component's node set via a
  // fresh build — if disconnected, skip (repair requires connectivity).
  sim::Rng rng(GetParam() * 13 + 1);
  auto moved = before.points;
  for (auto& p : moved) {
    p.x += rng.uniform(-0.3, 0.3);
    p.y += rng.uniform(-0.3, 0.3);
  }
  const auto after = udg::build_udg(moved);
  if (!graph::is_connected(after)) GTEST_SKIP() << "fragmented draw";

  const auto r = repair_cds(after, old_cds);
  EXPECT_TRUE(is_cds(after, r.cds));
  EXPECT_EQ(r.kept, old_cds.size());
  EXPECT_EQ(r.kept + r.added, r.cds.size());
  // Churn sanity: repair should not recruit more nodes than a full
  // rebuild would use in total.
  const auto rebuild = greedy_cds(after, 0).cds;
  EXPECT_LE(r.added, rebuild.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairRandom,
                         ::testing::Range<std::uint64_t>(1, 21));

// Node-failure repair: remove a backbone node from the graph (simulate
// by rebuilding without it) and repair with the surviving ids remapped.
class RepairFailure : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RepairFailure, SurvivesBackboneNodeLoss) {
  udg::InstanceParams params;
  params.nodes = 100;
  params.side = 8.0;
  const auto inst =
      udg::generate_largest_component_instance(params, GetParam() * 11);
  const auto old_cds = greedy_cds(inst.graph, 0).cds;
  if (old_cds.size() < 2) GTEST_SKIP() << "trivial backbone";
  const NodeId failed = old_cds[old_cds.size() / 2];

  // Remap: drop `failed`; ids above it shift down by one.
  std::vector<geom::Vec2> pts;
  for (NodeId v = 0; v < inst.points.size(); ++v) {
    if (v != failed) pts.push_back(inst.points[v]);
  }
  const auto g2 = udg::build_udg(pts);
  if (!graph::is_connected(g2)) GTEST_SKIP() << "failure disconnected it";
  std::vector<NodeId> survivors;
  for (const NodeId v : old_cds) {
    if (v == failed) continue;
    survivors.push_back(v > failed ? v - 1 : v);
  }
  const auto r = repair_cds(g2, survivors);
  EXPECT_TRUE(is_cds(g2, r.cds));
  EXPECT_EQ(r.kept, survivors.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairFailure,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace mcds::core
