#include <gtest/gtest.h>

#include "exact/brute_force.hpp"
#include "exact/exact_cds.hpp"
#include "exact/exact_ds.hpp"
#include "exact/exact_mis.hpp"
#include "graph/small_graph.hpp"
#include "sim/rng.hpp"
#include "test_util.hpp"
#include "udg/builder.hpp"
#include "udg/deployment.hpp"

namespace mcds::exact {
namespace {

using graph::Mask;
using graph::SmallGraph;

TEST(ExactMis, KnownGraphs) {
  EXPECT_EQ(independence_number(SmallGraph(test::make_complete(5))), 1u);
  EXPECT_EQ(independence_number(SmallGraph(test::make_cycle(5))), 2u);
  EXPECT_EQ(independence_number(SmallGraph(test::make_cycle(6))), 3u);
  EXPECT_EQ(independence_number(SmallGraph(test::make_path(7))), 4u);
  EXPECT_EQ(independence_number(SmallGraph(test::make_star(8))), 7u);
  EXPECT_EQ(independence_number(SmallGraph(graph::Graph(4))), 4u);  // edgeless
}

TEST(ExactMis, WitnessIsIndependent) {
  const SmallGraph g(test::make_grid(3, 4));
  const Mask mis = maximum_independent_set(g);
  EXPECT_TRUE(g.is_independent(mis));
  EXPECT_EQ(static_cast<std::size_t>(graph::popcount(mis)),
            independence_number(g));
  EXPECT_EQ(independence_number(g), 6u);  // grid 3x4 alpha = 6
}

TEST(ExactDs, KnownGraphs) {
  EXPECT_EQ(domination_number(SmallGraph(test::make_star(9))), 1u);
  EXPECT_EQ(domination_number(SmallGraph(test::make_complete(6))), 1u);
  EXPECT_EQ(domination_number(SmallGraph(test::make_path(3))), 1u);
  EXPECT_EQ(domination_number(SmallGraph(test::make_path(7))), 3u);
  EXPECT_EQ(domination_number(SmallGraph(test::make_cycle(9))), 3u);
  EXPECT_THROW((void)minimum_dominating_set(SmallGraph(graph::Graph{})),
               std::invalid_argument);
}

TEST(ExactDs, WitnessDominates) {
  const SmallGraph g(test::make_grid(4, 4));
  const Mask ds = minimum_dominating_set(g);
  EXPECT_TRUE(g.is_dominating(ds));
  EXPECT_EQ(static_cast<std::size_t>(graph::popcount(ds)),
            domination_number(g));
  EXPECT_EQ(domination_number(g), 4u);  // 4x4 grid gamma = 4
}

TEST(ExactCds, KnownGraphs) {
  EXPECT_EQ(connected_domination_number(SmallGraph(test::make_star(9))), 1u);
  EXPECT_EQ(connected_domination_number(SmallGraph(test::make_complete(4))),
            1u);
  // A path of n >= 4 nodes: interior nodes form the unique minimum CDS.
  EXPECT_EQ(connected_domination_number(SmallGraph(test::make_path(6))), 4u);
  // A cycle of n >= 4: n-2.
  EXPECT_EQ(connected_domination_number(SmallGraph(test::make_cycle(7))), 5u);
  EXPECT_EQ(connected_domination_number(SmallGraph(test::make_path(1))), 1u);
  EXPECT_EQ(connected_domination_number(SmallGraph(test::make_path(2))), 1u);
}

TEST(ExactCds, WitnessIsConnectedDominating) {
  const SmallGraph g(test::make_grid(3, 3));
  const Mask cds = minimum_connected_dominating_set(g);
  EXPECT_TRUE(g.is_dominating(cds));
  EXPECT_TRUE(g.is_connected(cds));
  EXPECT_EQ(connected_domination_number(g), 3u);  // middle row/column
}

TEST(ExactCds, Preconditions) {
  EXPECT_THROW((void)minimum_connected_dominating_set(SmallGraph(graph::Graph{})),
               std::invalid_argument);
  graph::Graph disconnected(4);
  disconnected.add_edge(0, 1);
  disconnected.finalize();
  EXPECT_THROW(
      (void)minimum_connected_dominating_set(SmallGraph(disconnected)),
      std::invalid_argument);
}

TEST(BruteForce, SizeGuard) {
  EXPECT_THROW((void)independence_number_brute_force(SmallGraph(26)),
               std::invalid_argument);
}

// Property sweep: branch-and-bound solvers must agree with exhaustive
// enumeration on random small UDGs.
class ExactRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactRandom, SolversMatchBruteForce) {
  sim::Rng rng(GetParam());
  const std::size_t n = 4 + rng.uniform_int(8);  // 4..11 nodes
  const double side = 1.5 + rng.uniform01() * 2.0;
  const auto pts = udg::deploy_uniform_square(n, side, rng);
  const graph::Graph g = udg::build_udg(pts);
  const SmallGraph sg(g);

  EXPECT_EQ(independence_number(sg), independence_number_brute_force(sg));
  EXPECT_EQ(domination_number(sg), domination_number_brute_force(sg));
  if (sg.is_connected(sg.all())) {
    EXPECT_EQ(connected_domination_number(sg),
              connected_domination_number_brute_force(sg));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactRandom,
                         ::testing::Range<std::uint64_t>(1, 41));

// Structural invariant on UDGs: gamma <= gamma_c and alpha >= gamma
// (every MIS is a dominating set).
class ExactRelations : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactRelations, OrderingsHold) {
  sim::Rng rng(GetParam() * 977);
  const std::size_t n = 5 + rng.uniform_int(10);
  const auto pts = udg::deploy_uniform_square(n, 2.5, rng);
  const graph::Graph g = udg::build_udg(pts);
  const SmallGraph sg(g);
  if (!sg.is_connected(sg.all())) GTEST_SKIP() << "disconnected draw";
  const auto alpha = independence_number(sg);
  const auto gamma = domination_number(sg);
  const auto gamma_c = connected_domination_number(sg);
  EXPECT_LE(gamma, gamma_c);
  EXPECT_GE(alpha, gamma);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactRelations,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace mcds::exact
