#include "graph/mask128.hpp"

#include <gtest/gtest.h>

#include "graph/small_graph.hpp"
#include "sim/rng.hpp"
#include "test_util.hpp"
#include "udg/builder.hpp"
#include "udg/deployment.hpp"

namespace mcds::graph {
namespace {

TEST(Mask128, BasicBitwise) {
  const Mask128 a{0b1100, 0};
  const Mask128 b{0b1010, 0};
  EXPECT_EQ((a & b), Mask128(0b1000));
  EXPECT_EQ((a | b), Mask128(0b1110));
  EXPECT_EQ((a ^ b), Mask128(0b0110));
  EXPECT_EQ((~Mask128{0}).lo, ~std::uint64_t{0});
  EXPECT_EQ((~Mask128{0}).hi, ~std::uint64_t{0});
}

TEST(Mask128, ShiftsAcrossTheWordBoundary) {
  const Mask128 one{1};
  EXPECT_EQ((one << 0), Mask128(1));
  EXPECT_EQ((one << 5).lo, std::uint64_t{1} << 5);
  EXPECT_EQ((one << 64).lo, 0u);
  EXPECT_EQ((one << 64).hi, 1u);
  EXPECT_EQ((one << 127).hi, std::uint64_t{1} << 63);
  EXPECT_EQ((one << 128), Mask128(0));
  // Straddling shift.
  const Mask128 wide{~std::uint64_t{0}, 0};
  EXPECT_EQ((wide << 4).lo, ~std::uint64_t{0} << 4);
  EXPECT_EQ((wide << 4).hi, 0xFu);
  // Right shifts mirror.
  EXPECT_EQ(((one << 100) >> 100), one);
  EXPECT_EQ((Mask128(0, 1) >> 64), Mask128(1));
}

TEST(Mask128, SubtractionWithBorrow) {
  const Mask128 x{0, 1};  // 2^64
  const Mask128 y = x - Mask128{1};
  EXPECT_EQ(y.lo, ~std::uint64_t{0});
  EXPECT_EQ(y.hi, 0u);
  EXPECT_EQ((Mask128{5} - Mask128{3}), Mask128(2));
}

TEST(Mask128, ClearLowestBitIdiom) {
  Mask128 m = (Mask128{1} << 70) | (Mask128{1} << 3);
  EXPECT_EQ(popcount(m), 2);
  EXPECT_EQ(lowest_bit(m), 3u);
  m &= m - Mask128{1};
  EXPECT_EQ(popcount(m), 1);
  EXPECT_EQ(lowest_bit(m), 70u);
  m &= m - Mask128{1};
  EXPECT_EQ(m, Mask128(0));
}

TEST(SmallGraph128, CapacityAndAllMask) {
  EXPECT_NO_THROW(SmallGraph128{128});
  EXPECT_THROW(SmallGraph128{129}, std::invalid_argument);
  EXPECT_EQ(SmallGraph128(128).all(), ~Mask128{0});
  const auto all70 = SmallGraph128(70).all();
  EXPECT_EQ(popcount(all70), 70);
}

TEST(SmallGraph128, WideGraphOperations) {
  // A path spanning the 64-bit boundary.
  graph::Graph path = test::make_path(100);
  const SmallGraph128 g(path);
  EXPECT_TRUE(g.is_connected(g.all()));
  EXPECT_EQ(g.count_components(g.all()), 1u);
  // Endpoints only: two components.
  const Mask128 ends = SmallGraph128::bit(0) | SmallGraph128::bit(99);
  EXPECT_EQ(g.count_components(ends), 2u);
  EXPECT_TRUE(g.is_independent(ends));
  // Every other node is an independent dominating set.
  Mask128 alternate{0};
  for (NodeId v = 0; v < 100; v += 2) alternate |= SmallGraph128::bit(v);
  EXPECT_TRUE(g.is_independent(alternate));
  EXPECT_TRUE(g.is_dominating(alternate));
}

// Differential check: SmallGraph128 must agree with SmallGraph on
// graphs that fit in 64 bits.
class Mask128Differential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(Mask128Differential, AgreesWithSmallGraph) {
  sim::Rng rng(GetParam() * 997);
  const std::size_t n = 5 + rng.uniform_int(20);
  const auto pts = udg::deploy_uniform_square(n, 4.0, rng);
  const auto g = udg::build_udg(pts);
  const SmallGraph g64(g);
  const SmallGraph128 g128(g);
  for (int trial = 0; trial < 40; ++trial) {
    const Mask s = rng.uniform_int(Mask{1} << n);
    const Mask128 s128{s};
    EXPECT_EQ(g64.count_components(s), g128.count_components(s128));
    EXPECT_EQ(g64.is_connected(s), g128.is_connected(s128));
    EXPECT_EQ(g64.is_independent(s), g128.is_independent(s128));
    EXPECT_EQ(g64.dominated_by(s), g128.dominated_by(s128).lo);
    EXPECT_EQ(g128.dominated_by(s128).hi, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Mask128Differential,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace mcds::graph
