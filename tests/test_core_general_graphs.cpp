// The two-phased algorithms never use geometry — phase 1 is first-fit
// over a BFS order and phase 2 is component merging — so they must
// produce valid CDSs on arbitrary connected graphs (only the *ratio*
// proofs need the UDG). These property tests run the full construction
// stack on structured and random non-UDG topologies.

#include <gtest/gtest.h>

#include "baselines/guha_khuller.hpp"
#include "baselines/wu_li.hpp"
#include "core/greedy_connect.hpp"
#include "core/repair.hpp"
#include "core/validate.hpp"
#include "core/waf.hpp"
#include "dist/distributed_cds.hpp"
#include "graph/traversal.hpp"
#include "sim/rng.hpp"
#include "test_util.hpp"

namespace mcds {
namespace {

using graph::Graph;
using graph::NodeId;

// Connected Erdős–Rényi-ish graph: random edges plus a random spanning
// tree to guarantee connectivity.
Graph random_connected_graph(std::size_t n, double p, sim::Rng& rng) {
  Graph g(n);
  std::vector<NodeId> order(n);
  for (NodeId i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(order[i], order[rng.uniform_int(i)]);
  }
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.uniform01() < p) g.add_edge(i, j);
    }
  }
  g.finalize();
  return g;
}

// d-dimensional hypercube.
Graph hypercube(std::size_t dims) {
  const std::size_t n = std::size_t{1} << dims;
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t b = 0; b < dims; ++b) {
      const NodeId w = v ^ (NodeId{1} << b);
      if (v < w) g.add_edge(v, w);
    }
  }
  g.finalize();
  return g;
}

void expect_all_valid(const Graph& g, const std::string& label) {
  const auto waf = core::waf_cds(g, 0);
  EXPECT_TRUE(core::is_cds(g, waf.cds)) << label << " (waf)";
  EXPECT_TRUE(core::is_maximal_independent_set(g, waf.phase1.mis))
      << label << " (waf mis)";
  const auto greedy = core::greedy_cds(g, 0);
  EXPECT_TRUE(core::is_cds(g, greedy.cds)) << label << " (greedy)";
  EXPECT_TRUE(core::is_cds(g, baselines::guha_khuller_cds(g)))
      << label << " (gk)";
  EXPECT_TRUE(core::is_cds(g, baselines::wu_li_cds(g)))
      << label << " (wu-li)";
  const auto dist = dist::distributed_waf_cds(g);
  EXPECT_TRUE(core::is_cds(g, dist.cds)) << label << " (distributed)";
  const auto repair = core::repair_cds(g, waf.cds);
  EXPECT_TRUE(core::is_cds(g, repair.cds)) << label << " (repair)";
}

TEST(GeneralGraphs, StructuredFamilies) {
  expect_all_valid(test::make_path(17), "path-17");
  expect_all_valid(test::make_cycle(16), "cycle-16");
  expect_all_valid(test::make_star(20), "star-20");
  expect_all_valid(test::make_complete(9), "K9");
  expect_all_valid(test::make_grid(5, 7), "grid-5x7");
  expect_all_valid(hypercube(5), "Q5");
}

TEST(GeneralGraphs, HypercubeMisHasNoUdgStructure) {
  // Q5's independence number is 16 — way above the UDG 5-per-disk
  // limit; phase 1 still yields a maximal independent set.
  const Graph g = hypercube(5);
  const auto waf = core::waf_cds(g, 0);
  EXPECT_EQ(waf.phase1.mis.size(), 16u);  // even-parity vertices
}

class GeneralGraphsRandom
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneralGraphsRandom, AllAlgorithmsValid) {
  sim::Rng rng(GetParam() * 101 + 7);
  const std::size_t n = 20 + rng.uniform_int(80);
  const double p = 0.02 + rng.uniform01() * 0.15;
  const Graph g = random_connected_graph(n, p, rng);
  ASSERT_TRUE(graph::is_connected(g));
  expect_all_valid(g, "gnp");
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralGraphsRandom,
                         ::testing::Range<std::uint64_t>(1, 21));

// On general graphs the UDG ratio bound does not apply, but the
// structural inequality |I ∪ C| <= 2|I| still must (each greedy
// connector merges >= 2 components).
class GeneralGraphsStructure
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneralGraphsStructure, GreedyConnectorBudget) {
  sim::Rng rng(GetParam() * 53 + 11);
  const Graph g = random_connected_graph(60, 0.05, rng);
  const auto greedy = core::greedy_cds(g, 0);
  EXPECT_LE(greedy.cds.size(), 2 * greedy.phase1.mis.size());
  for (const auto& s : greedy.steps) EXPECT_GE(s.gain, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralGraphsStructure,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace mcds
