#include "core/waf.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/validate.hpp"
#include "exact/exact_cds.hpp"
#include "graph/small_graph.hpp"
#include "test_util.hpp"
#include "udg/instance.hpp"

namespace mcds::core {
namespace {

TEST(Waf, SingleNode) {
  const graph::Graph g(1);
  const WafResult r = waf_cds(g, 0);
  EXPECT_EQ(r.cds, (std::vector<NodeId>{0}));
  EXPECT_TRUE(r.connectors.empty());
}

TEST(Waf, TwoNodes) {
  const Graph g = test::make_path(2);
  const WafResult r = waf_cds(g, 0);
  EXPECT_TRUE(is_cds(g, r.cds));
  // I = {0}; s = 1; CDS = {0, 1}.
  EXPECT_EQ(r.s, 1u);
  EXPECT_EQ(r.cds, (std::vector<NodeId>{0, 1}));
}

TEST(Waf, PathGraph) {
  const Graph g = test::make_path(7);
  const WafResult r = waf_cds(g, 0);
  EXPECT_TRUE(is_cds(g, r.cds));
  EXPECT_TRUE(is_maximal_independent_set(g, r.phase1.mis));
}

TEST(Waf, StarGraphFromLeaf) {
  const Graph g = test::make_star(8);
  const WafResult r = waf_cds(g, 1);  // leaf root
  EXPECT_TRUE(is_cds(g, r.cds));
}

TEST(Waf, RequiresConnected) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_THROW((void)waf_cds(g, 0), std::invalid_argument);
}

TEST(Waf, Deterministic) {
  udg::InstanceParams params;
  params.nodes = 80;
  params.side = 8.0;
  const auto inst = udg::generate_largest_component_instance(params, 5);
  const WafResult a = waf_cds(inst.graph, 0);
  const WafResult b = waf_cds(inst.graph, 0);
  EXPECT_EQ(a.cds, b.cds);
  EXPECT_EQ(a.s, b.s);
}

TEST(Waf, ConnectorsAreDisjointFromMis) {
  udg::InstanceParams params;
  params.nodes = 100;
  params.side = 9.0;
  const auto inst = udg::generate_largest_component_instance(params, 9);
  const WafResult r = waf_cds(inst.graph, 0);
  for (const NodeId c : r.connectors) {
    EXPECT_FALSE(r.phase1.in_mis[c]);
  }
  EXPECT_EQ(r.cds.size(), r.phase1.mis.size() + r.connectors.size());
}

// Structural bound from the analysis: |C| <= |I| - |I ∩ N[s]| + 1, hence
// |I ∪ C| <= 2|I| + 1 - |I(s)|.
class WafStructure : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WafStructure, CdsValidAndSizeBounded) {
  udg::InstanceParams params;
  params.nodes = 90;
  params.side = 8.0;
  const auto inst =
      udg::generate_largest_component_instance(params, GetParam() * 31);
  const Graph& g = inst.graph;
  const WafResult r = waf_cds(g, 0);
  EXPECT_TRUE(is_cds(g, r.cds));
  std::size_t mis_adjacent_s = 0;
  for (const NodeId u : r.phase1.mis) {
    if (u == r.s || g.has_edge(u, r.s)) ++mis_adjacent_s;
  }
  if (g.num_nodes() >= 2) {
    EXPECT_LE(r.cds.size(), 2 * r.phase1.mis.size() + 1 - mis_adjacent_s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WafStructure,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(WafPruned, SingleNodeAndTwoNodes) {
  const graph::Graph one(1);
  EXPECT_EQ(waf_cds_pruned(one, 0).cds, (std::vector<NodeId>{0}));
  const Graph two = test::make_path(2);
  const WafResult r = waf_cds_pruned(two, 0);
  EXPECT_TRUE(is_cds(two, r.cds));
  EXPECT_EQ(r.s, 1u);
}

TEST(WafPruned, PathNeedsEveryParent) {
  // On a path no parent invitation is redundant, so pruning changes
  // nothing: both variants coincide.
  const Graph g = test::make_path(9);
  const WafResult pruned = waf_cds_pruned(g, 0);
  const WafResult full = waf_cds(g, 0);
  EXPECT_EQ(pruned.cds, full.cds);
  EXPECT_EQ(pruned.s, full.s);
}

// The union-find-pruned variant shares phase 1 and s with waf_cds, stays
// a valid CDS, and never uses more connectors (it only *skips* parent
// invitations whose dominator is already reachable from s).
class WafPrunedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WafPrunedSweep, ValidSubsetOfReferenceAndNoLarger) {
  udg::InstanceParams params;
  params.nodes = 80 + (GetParam() % 4) * 40;
  params.side = 7.0 + static_cast<double>(GetParam() % 3) * 2.0;
  const auto inst =
      udg::generate_largest_component_instance(params, GetParam() * 131);
  const Graph& g = inst.graph;
  const WafResult pruned = waf_cds_pruned(g, 0);
  const WafResult full = waf_cds(g, 0);
  EXPECT_TRUE(is_cds(g, pruned.cds));
  EXPECT_EQ(pruned.s, full.s);
  EXPECT_EQ(pruned.phase1.mis, full.phase1.mis);
  EXPECT_LE(pruned.cds.size(), full.cds.size());
  // Subset property: every pruned connector is a reference connector.
  std::vector<bool> in_full(g.num_nodes(), false);
  for (const NodeId c : full.connectors) in_full[c] = true;
  for (const NodeId c : pruned.connectors) {
    EXPECT_TRUE(in_full[c]) << "connector " << c << " not in reference set";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WafPrunedSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

// Theorem 8 validation: on small instances with exact gamma_c,
// |I ∪ C| <= 7⅓ γ_c.
class WafTheorem8 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WafTheorem8, RatioWithinProvenBound) {
  udg::InstanceParams params;
  params.nodes = 16;
  params.side = 3.5;
  const auto inst =
      udg::generate_connected_instance(params, GetParam() * 101);
  if (!inst) GTEST_SKIP() << "no connected draw";
  const Graph& g = inst->graph;
  const graph::SmallGraph sg(g);
  const std::size_t gamma_c = exact::connected_domination_number(sg);
  const WafResult r = waf_cds(g, 0);
  EXPECT_TRUE(is_cds(g, r.cds));
  EXPECT_LE(static_cast<double>(r.cds.size()),
            bounds::waf_upper_bound(gamma_c) + 1e-9)
      << "n=" << g.num_nodes() << " gamma_c=" << gamma_c;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WafTheorem8,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace mcds::core
