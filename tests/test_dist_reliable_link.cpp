#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/validate.hpp"
#include "dist/leader_election.hpp"
#include "dist/mis_election.hpp"
#include "dist/reliable_link.hpp"
#include "dist/runtime.hpp"
#include "test_util.hpp"
#include "udg/instance.hpp"

namespace {

using mcds::graph::Graph;
using mcds::graph::NodeId;
using namespace mcds::dist;

// Same probe as in test_dist_fault.cpp: flood one token from node 0.
class FloodProbe final : public Protocol {
 public:
  explicit FloodProbe(Transport& net)
      : net_(net), seen_(net.topology().num_nodes(), false) {}

  void start(NodeId self) override {
    if (self == 0) {
      seen_[0] = true;
      net_.broadcast(0, Message{0, 1, 7, 0});
    }
  }
  void step(NodeId self, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      if (!seen_[self]) {
        seen_[self] = true;
        net_.broadcast(self, Message{0, 1, m.a, 0});
      }
    }
  }

  [[nodiscard]] const std::vector<bool>& seen() const { return seen_; }

 private:
  Transport& net_;
  std::vector<bool> seen_;
};

Graph test_udg(std::uint64_t seed) {
  mcds::udg::InstanceParams params;
  params.nodes = 30;
  params.side = 5.0;
  params.radius = 1.6;
  auto inst = mcds::udg::generate_connected_instance(params, seed);
  EXPECT_TRUE(inst.has_value());
  return inst->graph;
}

TEST(ReliableLink, DeliveryBoundSumsTheBackoffSchedule) {
  // rto 2, doubling, cap 8: transmissions wait 2 + 4 + 8 rounds, plus
  // the final delivery round.
  ReliableLinkParams p;
  p.max_retries = 3;
  p.rto = 2;
  p.max_rto = 8;
  EXPECT_EQ(reliable_delivery_bound(p), 1u + 2u + 4u + 8u);

  ReliableLinkParams more = p;
  more.max_retries = 5;
  EXPECT_GT(reliable_delivery_bound(more), reliable_delivery_bound(p));
}

TEST(ReliableLink, InvalidParamsThrow) {
  const Graph g = mcds::test::make_path(2);
  Runtime rt(g);
  {
    ReliableLinkParams p;
    p.rto = 0;
    EXPECT_THROW(ReliableLink(rt, p), std::invalid_argument);
  }
  {
    ReliableLinkParams p;
    p.rto = 8;
    p.max_rto = 4;
    EXPECT_THROW(ReliableLink(rt, p), std::invalid_argument);
  }
}

TEST(ReliableLink, CleanLinkNeverRetransmits) {
  const Graph g = mcds::test::make_grid(3, 3);
  Runtime rt(g, FaultPlan{});
  ReliableLink link(rt, ReliableLinkParams{});
  FloodProbe p(link);
  link.attach(p);
  rt.run(link);
  EXPECT_EQ(link.retransmissions(), 0u);
  EXPECT_EQ(link.expired(), 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_TRUE(p.seen()[v]);
}

TEST(ReliableLink, BroadcastIsPerNeighborReliableUnicast) {
  const Graph g = mcds::test::make_star(4);
  Runtime rt(g, FaultPlan{});
  ReliableLink link(rt, ReliableLinkParams{});
  FloodProbe p(link);
  link.attach(p);
  const RunStats stats = rt.run(link);
  // Opening broadcast: 3 data + 3 acks; each leaf's reply: 3 more pairs.
  EXPECT_EQ(stats.messages, 12u);
  for (NodeId v = 0; v < 4; ++v) EXPECT_TRUE(p.seen()[v]);
}

// The acceptance criterion: with the default retry budget the wrapper
// converges at drop rates up to 0.3 — and because MIS election is
// confluent, the result under loss is not merely valid but *equal* to
// the fault-free outcome once every announcement is delivered.
TEST(ReliableLink, MisConvergesExactlyUnderThirtyPercentLoss) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Graph g = test_udg(seed);
    const std::vector<NodeId> flat(g.num_nodes(), 0);
    const auto ideal = elect_mis(g, flat);

    RunConfig cfg;
    cfg.reliable = true;
    cfg.plan.link.drop = 0.3;
    cfg.plan.seed = seed;
    const auto r = elect_mis(g, flat, cfg);
    EXPECT_TRUE(r.complete) << "seed=" << seed;
    EXPECT_EQ(r.mis, ideal.mis) << "seed=" << seed;
    EXPECT_TRUE(mcds::core::is_maximal_independent_set(g, r.mis));
  }
}

TEST(ReliableLink, LeaderElectionSurvivesMixedDropDupDelay) {
  for (std::uint64_t seed : {6u, 7u, 8u}) {
    const Graph g = test_udg(seed);
    RunConfig cfg;
    cfg.reliable = true;
    cfg.plan.link = {0.25, 0.2, 2};
    cfg.plan.seed = seed;
    const auto r = elect_leader(g, cfg);
    EXPECT_TRUE(r.complete) << "seed=" << seed;
    EXPECT_EQ(r.leader, 0u) << "seed=" << seed;
  }
}

// Duplication corrupts the raw MIS protocol (double-counted decisions);
// through the link's receiver-side dedup it must be harmless.
TEST(ReliableLink, DedupMakesDuplicationInvisible) {
  for (std::uint64_t seed : {9u, 10u}) {
    const Graph g = test_udg(seed);
    const std::vector<NodeId> flat(g.num_nodes(), 0);
    const auto ideal = elect_mis(g, flat);

    RunConfig cfg;
    cfg.reliable = true;
    cfg.plan.link.duplicate = 0.9;
    cfg.plan.seed = seed;
    const auto r = elect_mis(g, flat, cfg);
    EXPECT_TRUE(r.complete) << "seed=" << seed;
    EXPECT_EQ(r.mis, ideal.mis) << "seed=" << seed;
  }
}

TEST(ReliableLink, RetryBudgetExpiresOnDeadLink) {
  const Graph g = mcds::test::make_path(2);
  FaultPlan plan;
  plan.overrides.push_back({0, 1, {1.0, 0.0, 0}});  // 0 -> 1 eats everything
  Runtime rt(g, plan);
  ReliableLinkParams params;
  params.max_retries = 2;
  params.rto = 1;
  params.max_rto = 2;
  ReliableLink link(rt, params);
  FloodProbe p(link);
  link.attach(p);
  rt.run(link, 100);  // bounded: the budget expires instead of livelocking
  EXPECT_EQ(link.expired(), 1u);
  EXPECT_EQ(link.retransmissions(), 2u);
  EXPECT_FALSE(p.seen()[1]);
}

// A peer that crashes and never recovers must not cost an unbounded
// retry loop: the sender spends its finite budget, records a structured
// delivery_failed outcome (with the original payload, for requeueing),
// and the link quiesces.
TEST(ReliableLink, DeadPeerYieldsStructuredDeliveryFailure) {
  const Graph g = mcds::test::make_path(2);
  FaultPlan plan;
  plan.schedule.push_back({0, 1, false});  // node 1 dead from the start
  Runtime rt(g, plan);
  ReliableLinkParams params;
  params.max_retries = 3;
  params.rto = 1;
  params.max_rto = 2;
  ReliableLink link(rt, params);
  FloodProbe p(link);
  link.attach(p);
  const RunStats stats = rt.run(link, 1000);
  // Bounded retransmissions, then quiescence well before the round cap.
  EXPECT_EQ(link.retransmissions(), 3u);
  EXPECT_LT(stats.rounds, 1000u);
  EXPECT_TRUE(link.idle());
  // One structured failure carrying the original payload.
  ASSERT_EQ(link.failed_deliveries().size(), 1u);
  EXPECT_EQ(link.failed_deliveries().size(), link.expired());
  const DeliveryFailure& f = link.failed_deliveries()[0];
  EXPECT_EQ(f.from, 0u);
  EXPECT_EQ(f.to, 1u);
  EXPECT_EQ(f.reason, DeliveryFailureReason::kRetryBudget);
  EXPECT_EQ(f.retransmissions, 3u);
  EXPECT_EQ(f.payload.a, 7);  // the flood token, preserved verbatim
  EXPECT_FALSE(p.seen()[1]);
}

// With a TTL configured the link gives up even earlier: the payload is
// abandoned once it has sat unacked ttl_rounds rounds, before the retry
// budget runs out, and the failure says so.
TEST(ReliableLink, TtlAbandonsBeforeRetryBudget) {
  const Graph g = mcds::test::make_path(2);
  FaultPlan plan;
  plan.schedule.push_back({0, 1, false});
  Runtime rt(g, plan);
  ReliableLinkParams params;
  params.max_retries = 100;  // budget alone would retry for a long time
  params.rto = 2;
  params.max_rto = 2;  // flat schedule: retransmit every 2 rounds
  params.ttl_rounds = 5;
  ReliableLink link(rt, params);
  FloodProbe p(link);
  link.attach(p);
  const RunStats stats = rt.run(link, 1000);
  EXPECT_LE(stats.rounds, params.ttl_rounds + 2);
  ASSERT_EQ(link.failed_deliveries().size(), 1u);
  EXPECT_EQ(link.failed_deliveries()[0].reason,
            DeliveryFailureReason::kTtlExpired);
  // rto 2: one retransmission at age 2, one at age 4, abandoned at 5.
  EXPECT_EQ(link.retransmissions(), 2u);
  EXPECT_EQ(link.expired(), 1u);
}

TEST(ReliableLink, TtlCapsTheDeliveryBound) {
  ReliableLinkParams p;
  p.max_retries = 3;
  p.rto = 2;
  p.max_rto = 8;
  p.ttl_rounds = 4;
  EXPECT_EQ(reliable_delivery_bound(p), 5u);  // ttl + final delivery round
  p.ttl_rounds = 0;
  EXPECT_EQ(reliable_delivery_bound(p), 15u);  // budget-only schedule
}

TEST(ReliableLink, CrashedSenderFreezesItsTimers) {
  const Graph g = mcds::test::make_path(2);
  FaultPlan plan;
  plan.overrides.push_back({0, 1, {1.0, 0.0, 0}});
  plan.schedule.push_back({1, 0, false});  // sender dies after posting
  Runtime rt(g, plan);
  ReliableLink link(rt, ReliableLinkParams{});
  FloodProbe p(link);
  link.attach(p);
  rt.run(link, 100);  // terminates: frozen packets don't hold the run open
  EXPECT_EQ(link.retransmissions(), 0u);
  EXPECT_EQ(link.expired(), 0u);
}

TEST(ReliableLink, LostAcksTriggerRetransmitButSingleDelivery) {
  const Graph g = mcds::test::make_path(2);
  FaultPlan plan;
  plan.overrides.push_back({1, 0, {1.0, 0.0, 0}});  // acks 1 -> 0 all lost
  plan.seed = 3;
  Runtime rt(g, plan);
  ReliableLinkParams params;
  params.max_retries = 3;
  params.rto = 1;
  params.max_rto = 2;
  ReliableLink link(rt, params);
  FloodProbe p(link);
  link.attach(p);
  rt.run(link, 100);
  // Node 0's data got through on the first try and node 1 saw it exactly
  // once despite the retransmits (dedup); both senders exhaust their
  // budgets — 0 waiting for acks that never return, 1 because its
  // rebroadcast data rides the same dead direction.
  EXPECT_TRUE(p.seen()[1]);
  EXPECT_EQ(link.retransmissions(), 6u);
  EXPECT_EQ(link.expired(), 2u);
}

}  // namespace
