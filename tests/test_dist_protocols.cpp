#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/mis.hpp"
#include "core/validate.hpp"
#include "dist/distributed_cds.hpp"
#include "graph/traversal.hpp"
#include "test_util.hpp"
#include "udg/instance.hpp"

namespace mcds::dist {
namespace {

TEST(LeaderElection, FindsMinimumId) {
  const Graph g = test::make_grid(4, 3);
  const LeaderResult r = elect_leader(g);
  EXPECT_EQ(r.leader, 0u);
  EXPECT_GT(r.stats.messages, 0u);
}

TEST(LeaderElection, DisconnectedThrows) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_THROW((void)elect_leader(g), std::invalid_argument);
}

TEST(BfsTree, MatchesCentralizedLevels) {
  const Graph g = test::make_grid(5, 4);
  const BfsTreeResult r = build_bfs_tree(g, 7);
  const auto central = graph::bfs(g, 7);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(r.level[v], central.level[v]) << "node " << v;
  }
  EXPECT_EQ(r.parent[7], graph::kNoNode);
  // Parents are one level lower and adjacent.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == 7) continue;
    EXPECT_TRUE(g.has_edge(v, r.parent[v]));
    EXPECT_EQ(r.level[r.parent[v]] + 1, r.level[v]);
  }
}

TEST(BfsTree, Preconditions) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_THROW((void)build_bfs_tree(g, 0), std::invalid_argument);
  EXPECT_THROW((void)build_bfs_tree(test::make_path(3), 9),
               std::invalid_argument);
}

TEST(MisElection, MatchesCentralizedRankOrderFirstFit) {
  udg::InstanceParams params;
  params.nodes = 70;
  params.side = 7.0;
  const auto inst = udg::generate_largest_component_instance(params, 3);
  const Graph& g = inst.graph;
  const auto tree = build_bfs_tree(g, 0);
  const auto elected = elect_mis(g, tree.level);

  // Centralized reference: first-fit over nodes sorted by (level, id).
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return tree.level[a] < tree.level[b];
  });
  auto expected = core::first_fit_mis(g, order).mis;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(elected.mis, expected);  // elected list is ascending id
  EXPECT_TRUE(core::is_maximal_independent_set(g, elected.mis));
}

TEST(MisElection, LevelSizeMismatchThrows) {
  const Graph g = test::make_path(3);
  std::vector<NodeId> bad_levels{0, 1};
  EXPECT_THROW((void)elect_mis(g, bad_levels), std::invalid_argument);
}

TEST(DistributedCds, SingleAndTwoNodes) {
  const graph::Graph one(1);
  const auto r1 = distributed_waf_cds(one);
  EXPECT_EQ(r1.cds, (std::vector<NodeId>{0}));
  EXPECT_EQ(r1.total.messages, 0u);

  const Graph two = test::make_path(2);
  const auto r2 = distributed_waf_cds(two);
  EXPECT_TRUE(core::is_cds(two, r2.cds));
  EXPECT_EQ(r2.leader, 0u);
}

TEST(DistributedCds, EmptyGraphThrows) {
  EXPECT_THROW((void)distributed_waf_cds(graph::Graph{}),
               std::invalid_argument);
}

// Property sweep: the end-to-end distributed construction must produce a
// valid CDS whose dominators form a maximal independent set, across
// random topologies and densities.
class DistributedCdsRandom : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DistributedCdsRandom, ProducesValidCds) {
  udg::InstanceParams params;
  params.nodes = 50 + (GetParam() % 3) * 30;
  params.side = 5.0 + static_cast<double>(GetParam() % 4) * 1.5;
  const auto inst =
      udg::generate_largest_component_instance(params, GetParam() * 37);
  const Graph& g = inst.graph;
  const auto r = distributed_waf_cds(g);
  EXPECT_TRUE(core::is_cds(g, r.cds)) << "n=" << g.num_nodes();
  EXPECT_TRUE(core::is_maximal_independent_set(g, r.mis.mis));
  EXPECT_EQ(r.leader, 0u);

  // Message complexity sanity: every phase is O(n + m)-ish; leader
  // election by flooding is O(n * m) worst case. Just check an ample
  // polynomial envelope to catch runaway protocols.
  const std::size_t n = g.num_nodes(), m = g.num_edges();
  EXPECT_LE(r.tree.stats.messages, 2 * m + n);
  EXPECT_LE(r.mis.stats.messages, 2 * m + n);
  EXPECT_LE(r.connectors.stats.messages, 4 * m + 4 * n);
  EXPECT_LE(r.leader_stats.messages, 2 * m * (n + 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedCdsRandom,
                         ::testing::Range<std::uint64_t>(1, 21));

// Cross-validation against the centralized core: same MIS when the
// centralized phase 1 uses the same (level, id) rank order.
class DistVsCentral : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistVsCentral, MisAgreesWithCentralizedRankOrder) {
  udg::InstanceParams params;
  params.nodes = 60;
  params.side = 6.5;
  const auto inst =
      udg::generate_largest_component_instance(params, GetParam() * 53);
  const Graph& g = inst.graph;
  const auto r = distributed_waf_cds(g);

  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return r.tree.level[a] < r.tree.level[b];
  });
  auto expected = core::first_fit_mis(g, order).mis;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(r.mis.mis, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistVsCentral,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace mcds::dist
