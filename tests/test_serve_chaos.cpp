// Overload chaos for the solve server: randomized request bursts at a
// sustained multiple of service capacity, with fault injection (throwing
// solves, hung solves) riding along. The invariants are structural and
// timing-robust:
//   * the server never crashes and never deadlocks (the test finishes);
//   * no admitted response reports kOk past its own deadline
//     (latency_seconds <= the request's deadline budget);
//   * a served tier is never *better* than the requested tier (the
//     ladder only degrades);
//   * overload transitions are monotone +-1 level steps;
//   * zero leaked requests: after drain every ticket is terminal and
//     the stats ledger balances exactly.
// A failing scenario is ddmin-shrunk (greedy event deletion to a
// fixpoint) and printed with its seed; CHAOS_FUZZ_SEED and
// CHAOS_FUZZ_OUT drive open-ended campaigns via scripts/chaos_fuzz.sh.
// The harness proves its own teeth the same way the km suite does: a
// deliberately false invariant ("overload never rejects") must be
// caught and shrunk to a near-minimal scenario.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "sim/rng.hpp"
#include "udg/instance.hpp"

namespace {

using namespace mcds::serve;
using namespace std::chrono_literals;

constexpr std::size_t kScenarios = 12;

std::uint64_t base_seed() {
  if (const char* env = std::getenv("CHAOS_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

/// One step of a scenario: a burst of requests, then a pause.
struct BurstEvent {
  std::size_t burst = 4;       ///< requests submitted back to back
  std::size_t pause_us = 500;  ///< settle time after the burst
  std::uint8_t tier = 0;       ///< requested tier for the burst
  std::uint8_t priority = 1;
  std::size_t budget_ms = 60;  ///< per-request deadline budget
  std::uint8_t fault = 0;      ///< 0 none, 1 throwing solve, 2 hung solve
};

struct Scenario {
  std::vector<BurstEvent> events;
  std::uint64_t seed = 0;
};

std::string to_string(const Scenario& s) {
  std::ostringstream os;
  os << "{seed " << s.seed << ", events [";
  for (const BurstEvent& e : s.events) {
    os << "{burst " << e.burst << ", pause_us " << e.pause_us << ", tier "
       << int(e.tier) << ", prio " << int(e.priority) << ", budget_ms "
       << e.budget_ms << ", fault " << int(e.fault) << "} ";
  }
  os << "]}";
  return os.str();
}

/// ~4x overload by construction: each worker "solve" is shaped to
/// kServiceMs, and bursts arrive faster than one service time per
/// request.
constexpr std::size_t kServiceMs = 2;

Scenario random_scenario(std::uint64_t seed) {
  mcds::sim::Rng rng(seed);
  Scenario s;
  s.seed = seed;
  const std::size_t n = 4 + rng.uniform_int(5);
  for (std::size_t i = 0; i < n; ++i) {
    BurstEvent e;
    // Burst of b requests every (pause) with service kServiceMs each on
    // one batcher: offered load = b * kServiceMs / pause ~ 4x capacity.
    e.burst = 6 + rng.uniform_int(8);
    e.pause_us = 1000 * kServiceMs * e.burst / 4;
    e.tier = static_cast<std::uint8_t>(rng.uniform_int(3));
    e.priority = static_cast<std::uint8_t>(rng.uniform_int(3));
    e.budget_ms = 30 + rng.uniform_int(80);
    const auto f = rng.uniform_int(10);
    e.fault = f == 0 ? 1 : (f == 1 ? 2 : 0);
    s.events.push_back(e);
  }
  return s;
}

struct Submitted {
  Ticket ticket;
  Tier requested = Tier::kKm11;
  double budget_s = 0.0;
};

/// Runs one scenario against a fresh server; returns the first
/// invariant violation, or nullopt.
std::optional<std::string> run_scenario(const Scenario& s) {
  ServerParams p;
  p.queue_capacity = 16;
  p.max_batch = 4;
  p.threads = 2;
  p.overload.enter_depth = 0.5;
  p.overload.exit_depth = 0.2;
  p.overload.enter_p95_s = 0.02;
  p.overload.exit_p95_s = 0.01;
  p.overload.dwell_up = 2;
  p.overload.dwell_down = 4;
  p.solve_hook = [](const Request& req, Tier, SharedState& st)
      -> mcds::par::BatchOutcome {
    if (req.instance.seed == 1) throw std::runtime_error("chaos fault");
    if (req.instance.seed == 2) {
      // Hung solve: ends only via cooperative cancel (or eventually).
      for (int i = 0; i < 1000 && !st.cancel_requested(); ++i) {
        std::this_thread::sleep_for(1ms);
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(kServiceMs));
    }
    mcds::par::BatchOutcome o;
    o.cds = {0};
    o.dominators = 1;
    o.nodes = 1;
    return o;
  };
  Server server(std::move(p));

  std::vector<Submitted> all;
  for (const BurstEvent& e : s.events) {
    for (std::size_t i = 0; i < e.burst; ++i) {
      Request r;
      // The hook keys fault injection off instance.seed; give the
      // instance one node so it passes admission validation.
      r.instance.points = {{0.0, 0.0}};
      r.instance.graph = mcds::graph::Graph(1);
      r.instance.seed = e.fault;
      r.tier = static_cast<Tier>(e.tier);
      r.priority = static_cast<Priority>(e.priority);
      r.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(e.budget_ms);
      Submitted sub;
      sub.requested = r.tier;
      sub.budget_s = static_cast<double>(e.budget_ms) / 1000.0;
      sub.ticket = server.submit(std::move(r));
      all.push_back(std::move(sub));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(e.pause_us));
  }
  server.drain();

  // --- invariants ---
  for (std::size_t i = 0; i < all.size(); ++i) {
    Submitted& sub = all[i];
    if (!sub.ticket.done()) {
      return "request " + std::to_string(i) + " leaked (no terminal "
             "response after drain)";
    }
    const Response r = sub.ticket.wait();
    if (r.status == Status::kOk) {
      if (r.latency_seconds > sub.budget_s) {
        return "request " + std::to_string(i) +
               " returned kOk past its deadline (latency " +
               std::to_string(r.latency_seconds) + "s, budget " +
               std::to_string(sub.budget_s) + "s)";
      }
      if (static_cast<int>(r.tier) < static_cast<int>(sub.requested)) {
        return "request " + std::to_string(i) + " served at a better "
               "tier than requested (ladder must only degrade)";
      }
    }
  }
  for (const OverloadTransition& t : server.overload_transitions()) {
    const std::size_t step =
        t.to > t.from ? t.to - t.from : t.from - t.to;
    if (step != 1) {
      return "non-monotone overload transition " + std::to_string(t.from) +
             " -> " + std::to_string(t.to);
    }
  }
  const ServerStats st = server.stats();
  if (st.inflight != 0) {
    return "drain left " + std::to_string(st.inflight) + " inflight";
  }
  if (st.leaked() != 0) {
    return "stats ledger does not balance: " + std::to_string(st.leaked()) +
           " unaccounted requests";
  }
  if (st.submitted != all.size()) {
    return "submitted count mismatch";
  }
  return std::nullopt;
}

using Checker = std::optional<std::string> (*)(const Scenario&);

/// ddmin-style shrink: greedily delete burst events while the checker
/// still reports a violation.
Scenario shrink(Scenario s, const Checker& check) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < s.events.size(); ++i) {
      Scenario candidate = s;
      candidate.events.erase(candidate.events.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (check(candidate).has_value()) {
        s = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return s;
}

void archive_repro(const Scenario& s, const std::string& tag) {
  if (const char* dir = std::getenv("CHAOS_FUZZ_OUT")) {
    std::ofstream os(std::string(dir) + "/" + tag + "_seed" +
                     std::to_string(s.seed) + ".txt");
    os << to_string(s) << "\n";
  }
}

}  // namespace

// The real invariants must hold across randomized 4x-overload bursts
// with fault injection; a failure shrinks before it reports.
TEST(ServeChaos, SustainedOverloadHoldsInvariants) {
  const std::uint64_t base = base_seed();
  std::size_t total_degraded_or_shed = 0;
  for (std::size_t i = 0; i < kScenarios; ++i) {
    const Scenario s = random_scenario(base * 7919 + i);
    SCOPED_TRACE("scenario " + std::to_string(i) + ", seed " +
                 std::to_string(s.seed));
    if (auto fail = run_scenario(s)) {
      const Scenario minimized = shrink(s, &run_scenario);
      archive_repro(minimized, "serve_overload");
      ADD_FAILURE() << *fail << "\nminimized repro ("
                    << minimized.events.size() << " events): "
                    << to_string(minimized);
      return;
    }
    ++total_degraded_or_shed;  // scenario survived
  }
  EXPECT_EQ(total_degraded_or_shed, kScenarios);
}

// Under sustained 4x overload the server must actually *use* its
// pressure valves — reject or shed or degrade — rather than absorb the
// load silently (which would mean unbounded queueing somewhere).
TEST(ServeChaos, OverloadEngagesThePressureValves) {
  const std::uint64_t base = base_seed();
  ServerParams p;
  p.queue_capacity = 8;
  p.max_batch = 2;
  p.overload.enter_depth = 0.5;
  p.overload.exit_depth = 0.2;
  p.overload.enter_p95_s = 0.01;
  p.overload.exit_p95_s = 0.005;
  p.overload.dwell_up = 1;
  p.solve_hook = [](const Request&, Tier, SharedState&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kServiceMs));
    mcds::par::BatchOutcome o;
    o.cds = {0};
    o.nodes = 1;
    return o;
  };
  Server server(std::move(p));
  mcds::sim::Rng rng(base);
  std::vector<Ticket> tickets;
  for (int burst = 0; burst < 40; ++burst) {
    for (int i = 0; i < 8; ++i) {
      Request r;
      r.instance.points = {{0.0, 0.0}};
      r.instance.graph = mcds::graph::Graph(1);
      r.tier = Tier::kKm22;
      r.priority = static_cast<Priority>(rng.uniform_int(3));
      r.deadline = std::chrono::steady_clock::now() + 100ms;
      tickets.push_back(server.submit(std::move(r)));
    }
    // 8 requests per 4ms at 2ms service on one batcher: 4x offered load.
    std::this_thread::sleep_for(4ms);
  }
  server.drain();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.leaked(), 0u);
  EXPECT_EQ(st.submitted, 320u);
  // The valves engaged: back-pressure plus either shedding, timeouts or
  // tier degradation (which mix depends on timing; at 4x *something*
  // other than plain kOk must have absorbed ~3/4 of the offered load).
  EXPECT_GT(st.rejected + st.shed + st.timeout, 0u);
  EXPECT_GE(st.rejected + st.shed + st.timeout + st.degraded, 160u);
  EXPECT_GT(server.overload_transitions().size(), 0u);
}

// Harness self-test: a deliberately false invariant must be caught and
// ddmin-shrunk, proving the shrinker actually bites (the km chaos suite
// does the same with its weakened backbone).
TEST(ServeChaos, FalseInvariantIsCaughtAndShrunk) {
  const auto never_rejects =
      [](const Scenario& s) -> std::optional<std::string> {
    ServerParams p;
    p.queue_capacity = 4;  // tiny: rejections are certain under burst
    p.max_batch = 1;
    p.solve_hook = [](const Request&, Tier, SharedState&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kServiceMs));
      mcds::par::BatchOutcome o;
      o.nodes = 1;
      return o;
    };
    Server server(std::move(p));
    std::vector<Ticket> tickets;
    for (const BurstEvent& e : s.events) {
      for (std::size_t i = 0; i < e.burst; ++i) {
        Request r;
        r.instance.points = {{0.0, 0.0}};
        r.instance.graph = mcds::graph::Graph(1);
        r.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(e.budget_ms);
        tickets.push_back(server.submit(std::move(r)));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(e.pause_us));
    }
    server.drain();
    if (server.stats().rejected > 0) {
      return std::string("claimed: overload never rejects; it did (") +
             std::to_string(server.stats().rejected) + " times)";
    }
    return std::nullopt;
  };

  const std::uint64_t base = base_seed();
  for (std::size_t i = 0; i < kScenarios; ++i) {
    const Scenario s = random_scenario(base * 104729 + i);
    if (!never_rejects(s)) continue;
    const Scenario minimized = shrink(s, never_rejects);
    EXPECT_GE(minimized.events.size(), 1u);
    EXPECT_LE(minimized.events.size(), 2u)
        << "shrink left " << minimized.events.size() << " events";
    // The minimized scenario still reproduces.
    ASSERT_TRUE(never_rejects(minimized).has_value());
    archive_repro(minimized, "serve_false_invariant");
    std::cout << "caught false invariant; minimized repro: "
              << to_string(minimized) << "\n";
    return;
  }
  FAIL() << "burst overload against a 4-slot queue never rejected";
}
