#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/kmcds.hpp"
#include "dist/maintenance.hpp"
#include "dist/survivability.hpp"
#include "udg/builder.hpp"
#include "udg/instance.hpp"
#include "udg/mobility.hpp"

/// \file test_dist_survivability.cpp
/// The crash-survival harness and the survive-by-construction claims:
/// m >= 2 backbones keep domination through any single member crash,
/// k = 2 backbones keep member connectivity, and the harness's
/// reactive-heal shadow pays nothing for a crash the construction
/// already absorbed. The Km* suite name routes these tests into the
/// sanitizer CI legs.

namespace {

using mcds::graph::Graph;
using mcds::graph::NodeId;
using namespace mcds::dist;

Graph corpus_udg(std::uint64_t seed, std::size_t nodes = 40) {
  mcds::udg::InstanceParams params;
  params.nodes = nodes;
  params.side = 7.0;
  params.radius = 1.9;
  auto inst = mcds::udg::generate_connected_instance(params, seed);
  EXPECT_TRUE(inst.has_value()) << "graph seed " << seed;
  return inst->graph;
}

}  // namespace

// The acceptance property, checked exhaustively: every m >= 2 backbone
// on the corpus remains a valid dominating set of the survivor graph
// after *any* single member crash, before any heal runs; every k = 2
// backbone keeps its surviving members connected per survivor
// component. The plain (1,1) CDS must fail the domination version on at
// least one corpus instance — that contrast is the point of the family.
TEST(KmSurvivability, SingleCrashSurvivalByConstruction) {
  std::size_t plain_failures = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = corpus_udg(seed);
    for (const mcds::core::KmParams params :
         {mcds::core::KmParams{1, 2}, mcds::core::KmParams{2, 2}}) {
      const auto r = mcds::core::kmcds(g, params);
      EXPECT_TRUE(dominates_after_any_single_member_crash(g, r.backbone))
          << "seed " << seed << " (" << params.k << "," << params.m << ")";
    }
    for (const mcds::core::KmParams params :
         {mcds::core::KmParams{2, 1}, mcds::core::KmParams{2, 2}}) {
      const auto r = mcds::core::kmcds(g, params);
      EXPECT_TRUE(connected_after_any_single_member_crash(g, r.backbone))
          << "seed " << seed << " (" << params.k << "," << params.m << ")";
    }
    const auto plain = mcds::core::kmcds(g, {1, 1});
    if (!dominates_after_any_single_member_crash(g, plain.backbone)) {
      ++plain_failures;
    }
  }
  EXPECT_GE(plain_failures, 1u)
      << "every plain CDS on the corpus happened to survive single "
         "crashes — the corpus no longer exercises the contrast";
}

// Crash one member of each variant's own backbone: the m = 2 variants
// keep full coverage (no domination loss), and (2,2) — which also
// guarantees connectivity — rides it out entirely, with no heal spend.
// A (1,2) backbone may legitimately disconnect (k = 1 promises
// nothing there), so its connectivity bookkeeping is not pinned.
TEST(KmSurvivability, FaultPlanSingleMemberCrash) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = corpus_udg(seed);
    for (const mcds::core::KmParams params :
         {mcds::core::KmParams{1, 2}, mcds::core::KmParams{2, 2}}) {
      const SurvivabilityVariant variant{"test", params, 0};
      const auto built = mcds::core::kmcds(g, params);
      ASSERT_FALSE(built.backbone.empty());
      FaultPlan plan;
      plan.schedule.push_back({1, built.backbone.front(), false});

      const SurvivabilityReport report =
          survive_fault_plan(g, variant, plan);
      EXPECT_EQ(report.events, 1u);
      EXPECT_EQ(report.backbone_size, built.backbone.size());
      EXPECT_EQ(report.first_domination_loss, 0u) << "seed " << seed;
      EXPECT_EQ(report.min_coverage, 1.0);
      if (params.k == 2) {
        EXPECT_EQ(report.first_disconnection, 0u) << "seed " << seed;
        EXPECT_EQ(report.events_until_invalid(), 1u);
        EXPECT_EQ(report.heal_passes, 0u)
            << "construction absorbed the crash; the healer had to act";
        EXPECT_EQ(report.heal_added, 0u);
      }
    }
  }
}

// A hostile schedule — kill the variant's own members one by one — must
// eventually invalidate even the strong variants, with monotone
// bookkeeping and a meaningful heal-cost trace for plain CDS.
TEST(KmSurvivability, FaultPlanMemberMassacre) {
  const Graph g = corpus_udg(3);
  for (const mcds::core::KmParams params :
       {mcds::core::KmParams{1, 1}, mcds::core::KmParams{1, 2},
        mcds::core::KmParams{2, 1}, mcds::core::KmParams{2, 2}}) {
    const SurvivabilityVariant variant{"massacre", params, 0};
    const auto built = mcds::core::kmcds(g, params);
    FaultPlan plan;
    std::size_t round = 1;
    for (const NodeId member : built.backbone) {
      plan.schedule.push_back({round++, member, false});
    }
    const SurvivabilityReport report = survive_fault_plan(g, variant, plan);
    EXPECT_EQ(report.events, built.backbone.size());
    // Killing the whole backbone leaves live non-members uncovered.
    EXPECT_NE(report.first_domination_loss, 0u)
        << "(" << params.k << "," << params.m << ")";
    EXPECT_LT(report.events_until_invalid(), report.events);
    EXPECT_GE(report.min_coverage, 0.0);
    EXPECT_LT(report.min_coverage, 1.0);
    // The reactive shadow had to recruit replacements along the way.
    EXPECT_GE(report.heal_passes, 1u);
  }
}

// The m = 2 variants must survive strictly longer than their own plain
// counterpart under the *same* hostile schedule (kill the plain CDS
// members in order): crashing one plain dominator is absorbed by m = 2
// coverage, so their first loss comes later or never.
TEST(KmSurvivability, StrongerVariantsSurviveLonger) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = corpus_udg(seed);
    const auto plain = mcds::core::kmcds(g, {1, 1});
    FaultPlan plan;
    std::size_t round = 1;
    for (const NodeId member : plain.backbone) {
      plan.schedule.push_back({round++, member, false});
    }
    const auto survived = [&](mcds::core::KmParams params) {
      const SurvivabilityVariant variant{"rank", params, 0};
      return survive_fault_plan(g, variant, plan).events_until_invalid();
    };
    EXPECT_GE(survived({1, 2}), survived({1, 1})) << "seed " << seed;
    EXPECT_GE(survived({2, 2}), survived({1, 1})) << "seed " << seed;
  }
}

// Churn composition: mobility rewires the topology while nodes crash
// and recover. The harness must stay deterministic and keep its
// bookkeeping coherent over the whole trace.
TEST(KmSurvivability, ChurnScheduleComposition) {
  mcds::udg::WaypointParams wp;
  wp.side = 7.0;
  const double radius = 2.4;
  mcds::udg::ChurnParams churn;
  churn.crash_prob = 0.12;
  churn.recover_prob = 0.4;

  const auto run = [&](mcds::core::KmParams params) {
    mcds::udg::RandomWaypoint motion(30, wp, /*seed=*/11);
    const Graph initial = mcds::udg::build_udg(motion.positions(), radius);
    const auto epochs =
        mcds::udg::churn_schedule(motion, radius, /*epochs=*/8,
                                  /*ticks_per_epoch=*/2, churn, /*seed=*/13);
    const SurvivabilityVariant variant{"churn", params, 0};
    return survive_churn(initial, epochs, variant);
  };

  for (const mcds::core::KmParams params :
       {mcds::core::KmParams{1, 1}, mcds::core::KmParams{1, 2},
        mcds::core::KmParams{2, 2}}) {
    const SurvivabilityReport a = run(params);
    const SurvivabilityReport b = run(params);
    EXPECT_EQ(a.events, 8u);
    EXPECT_GE(a.min_coverage, 0.0);
    EXPECT_LE(a.min_coverage, 1.0);
    EXPECT_LE(a.events_until_invalid(), a.events);
    // Determinism: identical seeds, identical report.
    EXPECT_EQ(a.first_domination_loss, b.first_domination_loss);
    EXPECT_EQ(a.first_disconnection, b.first_disconnection);
    EXPECT_EQ(a.min_coverage, b.min_coverage);
    EXPECT_EQ(a.heal_passes, b.heal_passes);
    EXPECT_EQ(a.heal_added, b.heal_added);
  }
}

// Satellite: the kUnhealable degraded-mode report. Crashing every node
// in scope must expose the last good epoch/backbone, count consecutive
// degraded passes, bump heal.unhealable, and recover cleanly.
TEST(KmSurvivability, DegradedModeReportOnUnhealable) {
  const Graph g = corpus_udg(5, /*nodes=*/20);
  const auto built = mcds::core::kmcds(g, {1, 1});

  mcds::obs::MetricsRegistry metrics;
  mcds::obs::Obs obs{&metrics, nullptr};
  SelfHealingCds healer(g, built.backbone, {}, obs);

  // A first healthy pass establishes a last-good view at some epoch.
  std::vector<bool> up(g.num_nodes(), true);
  const HealReport healthy = healer.on_churn(up);
  EXPECT_EQ(healthy.action, HealAction::kIntact);
  const std::size_t good_epoch = healer.epoch();
  const std::size_t good_members = healer.last_good_view().cds.size();
  EXPECT_GT(good_members, 0u);

  // Total blackout: degraded mode, coasting on the last good view.
  std::fill(up.begin(), up.end(), false);
  const HealReport dark1 = healer.on_churn(up);
  EXPECT_EQ(dark1.action, HealAction::kUnhealable);
  EXPECT_EQ(dark1.degraded.last_good_epoch, good_epoch);
  EXPECT_EQ(dark1.degraded.last_good_members, good_members);
  EXPECT_EQ(dark1.degraded.consecutive, 1u);
  const HealReport dark2 = healer.on_churn(up);
  EXPECT_EQ(dark2.degraded.consecutive, 2u);
  EXPECT_EQ(metrics.counter("heal.unhealable").value(), 2u);

  // A healthy pass clears the streak; the next blackout restarts it.
  std::fill(up.begin(), up.end(), true);
  const HealReport back = healer.on_churn(up);
  EXPECT_NE(back.action, HealAction::kUnhealable);
  EXPECT_EQ(back.degraded.consecutive, 0u);
  std::fill(up.begin(), up.end(), false);
  const HealReport dark3 = healer.on_churn(up);
  EXPECT_EQ(dark3.degraded.consecutive, 1u);
  EXPECT_EQ(metrics.counter("heal.unhealable").value(), 3u);
}
