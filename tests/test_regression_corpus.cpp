// Golden regression corpus: pins the exact output sizes of every
// construction on three fixed instances. Any behavioral change to an
// algorithm, the RNG, the deployment models or the UDG builder shows up
// here first. Update the golden table deliberately when a change is
// intended, never to make a red test pass.

#include <gtest/gtest.h>

#include "baselines/alzoubi.hpp"
#include "baselines/bharghavan_das.hpp"
#include "baselines/guha_khuller.hpp"
#include "baselines/li_thai.hpp"
#include "baselines/stojmenovic.hpp"
#include "baselines/wu_li.hpp"
#include "core/greedy_connect.hpp"
#include "core/waf.hpp"
#include "dist/distributed_cds.hpp"
#include "udg/instance.hpp"

namespace mcds {
namespace {

struct Golden {
  std::size_t nodes;
  double side;
  std::uint64_t seed;
  // Expected values:
  std::size_t graph_nodes, graph_edges;
  std::size_t waf, greedy, gk, bd, sto, li_thai, wu_li, alzoubi, dist_waf;
};

// Produced by the construction stack at corpus creation time.
constexpr Golden kCorpus[] = {
    {80, 7.0, 101, 80, 185, 50, 46, 34, 35, 46, 49, 50, 56, 50},
    {150, 10.0, 202, 91, 240, 48, 46, 35, 41, 47, 49, 50, 57, 46},
    {300, 12.0, 303, 300, 906, 144, 132, 97, 114, 136, 142, 158, 179, 140},
};

class RegressionCorpus : public ::testing::TestWithParam<Golden> {};

TEST_P(RegressionCorpus, AllSizesMatchGolden) {
  const Golden& c = GetParam();
  udg::InstanceParams params;
  params.nodes = c.nodes;
  params.side = c.side;
  const auto inst = udg::generate_largest_component_instance(params, c.seed);
  const graph::Graph& g = inst.graph;
  EXPECT_EQ(g.num_nodes(), c.graph_nodes);
  EXPECT_EQ(g.num_edges(), c.graph_edges);

  EXPECT_EQ(core::waf_cds(g, 0).cds.size(), c.waf);
  EXPECT_EQ(core::greedy_cds(g, 0).cds.size(), c.greedy);
  EXPECT_EQ(baselines::guha_khuller_cds(g).size(), c.gk);
  EXPECT_EQ(baselines::bharghavan_das_cds(g).size(), c.bd);
  EXPECT_EQ(baselines::stojmenovic_cds(g).size(), c.sto);
  EXPECT_EQ(baselines::li_thai_cds(g).size(), c.li_thai);
  EXPECT_EQ(baselines::wu_li_cds(g).size(), c.wu_li);
  EXPECT_EQ(baselines::alzoubi_cds(g).size(), c.alzoubi);
  EXPECT_EQ(dist::distributed_waf_cds(g).cds.size(), c.dist_waf);
}

INSTANTIATE_TEST_SUITE_P(Corpus, RegressionCorpus,
                         ::testing::ValuesIn(kCorpus));

}  // namespace
}  // namespace mcds
