#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/mis.hpp"
#include "core/validate.hpp"
#include "core/waf.hpp"
#include "dist/failure_detector.hpp"
#include "dist/fault.hpp"
#include "dist/fault_json.hpp"
#include "dist/maintenance.hpp"
#include "graph/traversal.hpp"
#include "par/thread_pool.hpp"
#include "sim/rng.hpp"
#include "udg/instance.hpp"

/// \file test_dist_partition_chaos.cpp
/// The partition chaos fuzzer. Each scenario draws a random connected
/// UDG and a random FaultPlan mixing crashes, recoveries and scheduled
/// partition split/heal events, then replays the plan against the
/// partition-aware maintenance stack: islands run epoch-stamped
/// SelfHealingCds replicas on their local views, and every grouping
/// change reconciles them. After every event the harness asserts the
/// partition invariants on the *reachable* topology (live nodes, minus
/// cross-cut edges): every component is dominated by a connected local
/// backbone fragment, and each fragment is bounded against the
/// component's own MIS. A deliberately broken maintenance variant
/// (prune-only, never repairs) must be caught by the same invariants
/// and delta-debugged down to a tiny replayable plan — the shrunk repro
/// prints as JSON + seed and replays via `mcds_cli dist --fault-plan`.
/// Base seed and output directory come from CHAOS_FUZZ_SEED /
/// CHAOS_FUZZ_OUT so scripts/chaos_fuzz.sh can drive open-ended
/// campaigns and archive minimized failures.

namespace {

using mcds::graph::Graph;
using mcds::graph::NodeId;
using namespace mcds::dist;

constexpr std::size_t kScenarios = 240;
constexpr std::size_t kNodes = 22;

std::uint64_t base_seed() {
  if (const char* env = std::getenv("CHAOS_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

// CHAOS_THREADS=N runs the suite's runtime legs (the accrual detector —
// the maintenance scenarios are host-side and never touch the round
// engine) on an N-worker pool; unset/0 keeps the serial runtime.
mcds::par::ThreadPool* chaos_pool() {
  static const long n = [] {
    const char* env = std::getenv("CHAOS_THREADS");
    return env != nullptr ? std::strtol(env, nullptr, 10) : 0;
  }();
  if (n <= 0) return nullptr;
  static mcds::par::ThreadPool pool(static_cast<std::size_t>(n));
  return &pool;
}

Graph chaos_udg(std::uint64_t seed) {
  mcds::udg::InstanceParams params;
  params.nodes = kNodes;
  params.side = 5.0;
  params.radius = 1.6;
  auto inst = mcds::udg::generate_connected_instance(params, seed);
  EXPECT_TRUE(inst.has_value()) << "graph seed " << seed;
  return inst->graph;
}

// Random mixed plan: crashes (sometimes with a later recovery) plus one
// or two partition split/heal pairs, occasionally on lossy links.
FaultPlan random_plan(mcds::sim::Rng& rng, std::size_t n) {
  FaultPlan plan;
  plan.seed = rng();
  const std::size_t crashes = rng.uniform_int(4);
  for (std::size_t i = 0; i < crashes; ++i) {
    const auto node = static_cast<NodeId>(rng.uniform_int(n));
    const auto round = 1 + static_cast<std::size_t>(rng.uniform_int(28));
    plan.schedule.push_back({round, node, false});
    if (rng.uniform_int(3) == 0) {
      plan.schedule.push_back(
          {round + 2 + static_cast<std::size_t>(rng.uniform_int(10)), node,
           true});
    }
  }
  std::size_t cursor = 1 + static_cast<std::size_t>(rng.uniform_int(8));
  const std::size_t pairs = 1 + rng.uniform_int(2);
  for (std::size_t p = 0; p < pairs; ++p) {
    PartitionEvent split;
    split.round = cursor;
    const std::size_t ways = 2 + rng.uniform_int(2);
    split.groups.resize(ways);
    for (NodeId v = 0; v < n; ++v) {
      split.groups[rng.uniform_int(ways)].push_back(v);
    }
    std::erase_if(split.groups,
                  [](const std::vector<NodeId>& g) { return g.empty(); });
    plan.partitions.push_back(std::move(split));
    cursor += 2 + static_cast<std::size_t>(rng.uniform_int(8));
    plan.partitions.push_back({cursor, {}});  // heal
    cursor += 1 + static_cast<std::size_t>(rng.uniform_int(6));
  }
  if (rng.uniform_int(4) == 0) {
    plan.link.drop = 0.05 + 0.1 * rng.uniform01();
  }
  return plan;
}

// ------------------------------------------------------------ invariants

// The topology actually usable at (up, group): live nodes, minus edges
// severed by the cut.
struct EffectiveGraph {
  Graph graph{0, {}};
  std::vector<NodeId> mapping;             ///< eff id -> full id
  std::vector<NodeId> to_eff;              ///< full id -> eff id / kNoNode
};

EffectiveGraph build_effective(const Graph& g, const std::vector<bool>& up,
                               const std::vector<std::uint32_t>& group) {
  EffectiveGraph out;
  out.to_eff.assign(g.num_nodes(), mcds::graph::kNoNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!up[v]) continue;
    out.to_eff[v] = static_cast<NodeId>(out.mapping.size());
    out.mapping.push_back(v);
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const NodeId v : out.mapping) {
    for (const NodeId w : g.neighbors(v)) {
      if (w <= v || !up[w] || group[v] != group[w]) continue;
      edges.push_back({out.to_eff[v], out.to_eff[w]});
    }
  }
  out.graph = Graph(out.mapping.size(), edges);
  return out;
}

// Checks the partition invariants of backbone \p cds (full-graph ids)
// at state (up, group). Returns a description of the first violation.
std::optional<std::string> check_invariants(
    const Graph& g, const std::vector<bool>& up,
    const std::vector<std::uint32_t>& group, const std::vector<NodeId>& cds,
    const std::string& when) {
  const EffectiveGraph eff = build_effective(g, up, group);
  if (eff.mapping.empty()) return std::nullopt;  // nobody left to serve

  std::vector<NodeId> cds_eff;
  for (const NodeId v : cds) {
    if (up[v] && eff.to_eff[v] != mcds::graph::kNoNode) {
      cds_eff.push_back(eff.to_eff[v]);
    }
  }

  // Invariant 1: every reachable component is dominated by a connected
  // local backbone fragment (a CDS forest of the effective topology).
  const auto check = mcds::core::check_cds_components(eff.graph, cds_eff);
  if (!check.ok) {
    auto to_full = [&](NodeId v) {
      return v == mcds::graph::kNoNode ? v : eff.mapping[v];
    };
    mcds::core::CdsCheck full = check;
    full.witness = to_full(check.witness);
    full.witness2 = to_full(check.witness2);
    return when + ": " + full.describe();
  }

  // Invariant 2: each fragment is bounded against its own island MIS
  // (loose two-phased-style bound; catches runaway growth, not slack).
  const auto [comp, num_comps] =
      mcds::graph::connected_components(eff.graph);
  std::vector<std::vector<NodeId>> nodes_of(num_comps);
  for (NodeId v = 0; v < eff.graph.num_nodes(); ++v) {
    nodes_of[comp[v]].push_back(v);
  }
  std::vector<std::size_t> backbone_of(num_comps, 0);
  for (const NodeId v : cds_eff) ++backbone_of[comp[v]];
  for (std::size_t c = 0; c < num_comps; ++c) {
    const auto mis = mcds::core::first_fit_mis(eff.graph, nodes_of[c]);
    const std::size_t bound = 4 * mis.mis.size() + 12;
    if (backbone_of[c] > bound) {
      return when + ": island backbone has " +
             std::to_string(backbone_of[c]) + " nodes, exceeding 4*MIS+12 = " +
             std::to_string(bound);
    }
  }
  return std::nullopt;
}

// ------------------------------------------------------- scenario replay

enum class Variant {
  kHealthy,  ///< the real partition-aware maintenance stack
  kBroken,   ///< prune-only strawman: drops dead members, never repairs
};

struct ScenarioResult {
  std::optional<std::string> failure;
  std::vector<NodeId> final_cds;
};

// Replays \p plan against maintenance: every event round re-derives
// (up, group); grouping changes reconcile the island replicas and
// re-split along the new cut; crash churn inside a stable grouping goes
// to the live replicas. Invariants are asserted after every event and
// once more after a forced final heal.
ScenarioResult run_scenario(const Graph& g, const FaultPlan& plan,
                            Variant variant) {
  const std::size_t n = g.num_nodes();
  ScenarioResult out;

  std::vector<std::size_t> rounds;
  for (const CrashEvent& e : plan.schedule) rounds.push_back(e.round);
  for (const PartitionEvent& e : plan.partitions) rounds.push_back(e.round);
  std::sort(rounds.begin(), rounds.end());
  rounds.erase(std::unique(rounds.begin(), rounds.end()), rounds.end());

  const std::vector<NodeId> initial = mcds::core::waf_cds(g).cds;
  SelfHealingCds master(g, initial);
  std::vector<std::unique_ptr<SelfHealingCds>> replicas;
  std::vector<NodeId> broken_cds = initial;  // kBroken state
  std::vector<std::uint32_t> prev_group(n, 0);

  const auto current_backbone = [&]() -> std::vector<NodeId> {
    if (variant == Variant::kBroken) return broken_cds;
    if (replicas.empty()) return master.cds();
    std::vector<NodeId> u;
    for (const auto& r : replicas) {
      const BackboneView v = r->view();
      u.insert(u.end(), v.cds.begin(), v.cds.end());
    }
    std::sort(u.begin(), u.end());
    u.erase(std::unique(u.begin(), u.end()), u.end());
    return u;
  };

  const auto apply = [&](const std::vector<bool>& up,
                         const std::vector<std::uint32_t>& group) {
    if (variant == Variant::kBroken) {
      std::erase_if(broken_cds, [&](NodeId v) { return !up[v]; });
      return;
    }
    if (group != prev_group) {
      // Grouping changed: fold the old islands' epoch-stamped views
      // back together, then re-split along the new cut.
      std::vector<BackboneView> views;
      views.reserve(replicas.size());
      for (const auto& r : replicas) views.push_back(r->view());
      if (views.empty()) {
        master.on_churn(up);
      } else {
        master.reconcile(views, up);
      }
      replicas.clear();
      std::vector<std::uint32_t> labels(group);
      std::sort(labels.begin(), labels.end());
      labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
      if (labels.size() > 1) {
        for (const std::uint32_t label : labels) {
          std::vector<NodeId> island;
          for (NodeId v = 0; v < n; ++v) {
            if (group[v] == label) island.push_back(v);
          }
          auto r = std::make_unique<SelfHealingCds>(g, master.cds());
          r->set_island(std::move(island));
          r->on_churn(up);
          replicas.push_back(std::move(r));
        }
      }
    } else if (!replicas.empty()) {
      for (const auto& r : replicas) r->on_churn(up);
    } else {
      master.on_churn(up);
    }
  };

  for (const std::size_t r : rounds) {
    const auto up = plan.up_after(n, r);
    const auto group = plan.groups_at(n, r);
    apply(up, group);
    prev_group = group;
    if (auto fail = check_invariants(g, up, group, current_backbone(),
                                     "round " + std::to_string(r))) {
      out.failure = std::move(fail);
      return out;
    }
  }

  // Forced final heal: whatever the plan left cut must reconverge to one
  // CDS forest of the survivor graph.
  const auto up = plan.up_after(n, SIZE_MAX);
  const std::vector<std::uint32_t> healed(n, 0);
  apply(up, healed);
  prev_group = healed;
  out.failure = check_invariants(g, up, healed, current_backbone(),
                                 "after final heal");
  out.final_cds = current_backbone();
  return out;
}

// --------------------------------------------------------------- shrink

// ddmin-style event shrinking: greedily delete crash events, partition
// events, overrides and link noise while the scenario still fails,
// iterating to a fixpoint.
FaultPlan shrink_plan(const Graph& g, FaultPlan plan, Variant variant) {
  const auto still_fails = [&](const FaultPlan& candidate) {
    return run_scenario(g, candidate, variant).failure.has_value();
  };
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < plan.schedule.size(); ++i) {
      FaultPlan candidate = plan;
      candidate.schedule.erase(candidate.schedule.begin() +
                               static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        plan = std::move(candidate);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (std::size_t i = 0; i < plan.partitions.size(); ++i) {
      FaultPlan candidate = plan;
      candidate.partitions.erase(candidate.partitions.begin() +
                                 static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        plan = std::move(candidate);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    if (!plan.overrides.empty()) {
      FaultPlan candidate = plan;
      candidate.overrides.clear();
      if (still_fails(candidate)) {
        plan = std::move(candidate);
        progress = true;
      }
    }
    if (!progress && !plan.link.clean()) {
      FaultPlan candidate = plan;
      candidate.link = LinkFaults{};
      if (still_fails(candidate)) {
        plan = std::move(candidate);
        progress = true;
      }
    }
  }
  return plan;
}

std::size_t event_count(const FaultPlan& plan) {
  return plan.schedule.size() + plan.partitions.size();
}

// Archives a minimized failing plan when scripts/chaos_fuzz.sh asked
// for it (CHAOS_FUZZ_OUT names the artifact directory).
void archive_repro(const FaultPlan& plan, std::uint64_t gseed,
                   const std::string& tag) {
  if (const char* dir = std::getenv("CHAOS_FUZZ_OUT")) {
    save_fault_plan(plan, std::string(dir) + "/" + tag + "_graph" +
                              std::to_string(gseed) + ".json");
  }
}

}  // namespace

// 240 randomized partition schedules against the real maintenance
// stack: none may violate the invariants. A failure shrinks before it
// reports, so the log carries a minimal replayable JSON plan + seed.
TEST(PartitionChaos, RandomizedPartitionSchedules) {
  const std::uint64_t base = base_seed();
  std::size_t detector_legs = 0;
  for (std::size_t i = 0; i < kScenarios; ++i) {
    const std::uint64_t gseed = base + i % 29;
    const Graph g = chaos_udg(gseed);
    mcds::sim::Rng rng(base * 7919 + i);
    const FaultPlan plan = random_plan(rng, g.num_nodes());
    SCOPED_TRACE("scenario " + std::to_string(i) + ", graph seed " +
                 std::to_string(gseed));

    const ScenarioResult result = run_scenario(g, plan, Variant::kHealthy);
    if (result.failure) {
      const FaultPlan minimized = shrink_plan(g, plan, Variant::kHealthy);
      archive_repro(minimized, gseed, "healthy");
      ADD_FAILURE() << *result.failure << "\nminimized repro ("
                    << event_count(minimized) << " events), graph seed "
                    << gseed << ":\n"
                    << to_json(minimized);
      return;
    }

    // Determinism: the scenario is a pure function of (graph, plan).
    const ScenarioResult again = run_scenario(g, plan, Variant::kHealthy);
    ASSERT_EQ(result.final_cds, again.final_cds)
        << "scenario replay diverged";

    // Every 12th clean-link scenario also runs the accrual detector and
    // must converge to the plan's ground-truth suspect sets.
    if (i % 12 == 0 && plan.link.clean()) {
      RunConfig cfg;
      cfg.plan = plan;
      cfg.pool = chaos_pool();
      FailureDetectorParams params;
      params.rounds = 90;
      const auto truth_up = plan.up_after(g.num_nodes(), SIZE_MAX);
      const auto truth_groups = plan.groups_at(g.num_nodes(), SIZE_MAX);
      auto det = detect_failures(g, cfg, params, truth_up, truth_groups);
      if (!det.converged_round.has_value() && cfg.pool != nullptr) {
        // Serial replay before reporting (and before any shrinking
        // downstream): distinguishes a real detector bug — the serial,
        // golden verdict below — from a parallel-engine divergence.
        RunConfig serial = cfg;
        serial.pool = nullptr;
        auto sdet = detect_failures(g, serial, params, truth_up, truth_groups);
        EXPECT_EQ(sdet.converged_round.has_value(),
                  det.converged_round.has_value())
            << "detector outcome depends on CHAOS_THREADS="
            << cfg.pool->size() << " — the parallel engine diverged";
        det = std::move(sdet);
      }
      EXPECT_TRUE(det.converged_round.has_value())
          << "detector did not converge to the ground-truth suspect sets";
      ++detector_legs;
    }
  }
  EXPECT_GE(detector_legs, 5u) << "detector leg barely exercised";
}

// The prune-only strawman must be caught, and the failing plan must
// shrink to a handful of events that replay deterministically from the
// printed JSON.
TEST(PartitionChaos, BrokenHealerIsCaughtAndShrunk) {
  const std::uint64_t base = base_seed();
  for (std::size_t i = 0; i < kScenarios; ++i) {
    const std::uint64_t gseed = base + i % 29;
    const Graph g = chaos_udg(gseed);
    mcds::sim::Rng rng(base * 104729 + i);
    const FaultPlan plan = random_plan(rng, g.num_nodes());
    const ScenarioResult result = run_scenario(g, plan, Variant::kBroken);
    if (!result.failure) continue;

    const FaultPlan minimized = shrink_plan(g, plan, Variant::kBroken);
    EXPECT_LE(event_count(minimized), 5u)
        << "shrink left " << event_count(minimized) << " events";

    // The minimized plan must replay from its own JSON: round-trip the
    // serialization and expect the identical failure.
    const FaultPlan replayed = fault_plan_from_json(to_json(minimized));
    const ScenarioResult replay_a = run_scenario(g, replayed, Variant::kBroken);
    const ScenarioResult replay_b = run_scenario(g, replayed, Variant::kBroken);
    ASSERT_TRUE(replay_a.failure.has_value())
        << "minimized plan no longer fails after JSON round-trip";
    EXPECT_EQ(*replay_a.failure, *replay_b.failure)
        << "minimized repro is not deterministic";
    archive_repro(minimized, gseed, "broken");

    std::cout << "caught broken healer; minimized repro ("
              << event_count(minimized) << " events), graph seed " << gseed
              << ": " << to_json(minimized) << "\n";
    return;  // one caught-and-shrunk repro is the acceptance criterion
  }
  FAIL() << "broken maintenance variant was never caught by the invariants";
}

// Island replicas and reconciliation: a deterministic two-island split
// with island-local churn must merge under highest-epoch-wins and end
// valid after the heal.
TEST(PartitionChaos, EpochReconciliationMergesIslandViews) {
  const Graph g = chaos_udg(3);
  const std::size_t n = g.num_nodes();
  const std::vector<NodeId> initial = mcds::core::waf_cds(g).cds;

  FaultPlan plan;
  PartitionEvent split;
  split.round = 2;
  split.groups.resize(2);
  for (NodeId v = 0; v < n; ++v) {
    split.groups[v % 2 == 0 ? 0 : 1].push_back(v);
  }
  plan.partitions.push_back(split);
  plan.schedule.push_back({4, initial.empty() ? 0 : initial[0], false});
  plan.partitions.push_back({6, {}});

  const ScenarioResult result = run_scenario(g, plan, Variant::kHealthy);
  EXPECT_FALSE(result.failure.has_value()) << *result.failure;

  // Direct check of the merge rule on a contested node: both views
  // speak for x, and the higher epoch decides its membership. Adding a
  // dominated neighbor of the backbone keeps it valid, so heal neither
  // re-adds nor drops x and the merge verdict survives verbatim.
  NodeId x = mcds::graph::kNoNode;
  for (NodeId v = 0; v < n; ++v) {
    if (!std::binary_search(initial.begin(), initial.end(), v)) {
      x = v;
      break;
    }
  }
  ASSERT_NE(x, mcds::graph::kNoNode);
  const std::vector<bool> up(n, true);
  {
    SelfHealingCds merged(g, initial);
    const BackboneView keep{{x}, {x}, 5};
    const BackboneView drop{{x}, {}, 3};
    const HealReport rep = merged.reconcile({keep, drop}, up);
    EXPECT_NE(rep.action, HealAction::kUnhealable);
    EXPECT_TRUE(
        std::binary_search(merged.cds().begin(), merged.cds().end(), x))
        << "epoch-5 keep verdict lost to epoch-3 drop";
    EXPECT_GE(merged.epoch(), 5u);
    const auto check = mcds::core::check_cds(g, merged.cds());
    EXPECT_TRUE(check.ok) << check.describe();
  }
  {
    SelfHealingCds merged(g, initial);
    const BackboneView keep{{x}, {x}, 3};
    const BackboneView drop{{x}, {}, 5};
    merged.reconcile({keep, drop}, up);
    EXPECT_FALSE(
        std::binary_search(merged.cds().begin(), merged.cds().end(), x))
        << "epoch-5 drop verdict lost to epoch-3 keep";
  }
}
