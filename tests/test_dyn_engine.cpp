// DynamicCds engine: the three incremental layers glued together. These
// tests drive small deterministic scenarios event by event and demand a
// valid CDS (check() via core::check_cds_components) plus the paper's
// 4|MIS|+12 envelope after *every* event, exercise the amortized
// policies (envelope rebuild, overlay compaction), the obs wiring, the
// BackboneView handoff into dist::SelfHealingCds::reconcile(), and — for
// the TSan job — concurrent independent engines.

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dist/maintenance.hpp"
#include "dyn/dynamic_cds.hpp"
#include "geom/vec2.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/rng.hpp"
#include "udg/instance.hpp"

namespace {

using mcds::geom::Vec2;
using mcds::graph::NodeId;
using mcds::dyn::DynamicCds;
using mcds::dyn::DynParams;
using mcds::dyn::EventKind;
using mcds::dyn::EventReport;

void expect_valid(const DynamicCds& engine, const char* when) {
  const auto check = engine.check();
  EXPECT_TRUE(check.ok) << when << ": " << check.describe();
  EXPECT_LE(engine.cds_size(), 4 * engine.mis_size() + 12) << when;
}

std::vector<Vec2> cluster(Vec2 origin, std::size_t n, double spread,
                          std::uint64_t seed) {
  mcds::sim::Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({origin.x + rng.uniform(0.0, spread),
                   origin.y + rng.uniform(0.0, spread)});
  }
  return pts;
}

TEST(DynEngine, InitialSolveMatchesTopology) {
  const auto inst = mcds::udg::generate_instance({.nodes = 120}, 3);
  DynamicCds engine(inst.points);
  expect_valid(engine, "after construction");
  EXPECT_EQ(engine.num_nodes(), inst.points.size());
  EXPECT_EQ(engine.alive_count(), inst.points.size());
  EXPECT_EQ(engine.epoch(), 0u);
  // The engine's topology is exactly the instance's UDG.
  const auto topo = engine.topology();
  const auto to = topo.offsets();
  const auto io = inst.graph.offsets();
  EXPECT_TRUE(std::equal(to.begin(), to.end(), io.begin(), io.end()));
  const auto tn = topo.flat_neighbors();
  const auto in = inst.graph.flat_neighbors();
  EXPECT_TRUE(std::equal(tn.begin(), tn.end(), in.begin(), in.end()));
}

TEST(DynEngine, EventReportsAccountForEdges) {
  DynamicCds engine(std::vector<Vec2>{{0.0, 0.0}, {0.8, 0.0}});
  EventReport r;
  const NodeId v = engine.insert({0.4, 0.3}, &r);
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(r.kind, EventKind::kInsert);
  EXPECT_EQ(r.edges_added, 2u);
  EXPECT_EQ(r.edges_removed, 0u);
  expect_valid(engine, "after insert");

  r = engine.move(v, {5.0, 5.0});
  EXPECT_EQ(r.edges_removed, 2u);
  EXPECT_EQ(r.edges_added, 0u);
  expect_valid(engine, "after move away");

  r = engine.erase(0);
  EXPECT_EQ(r.edges_removed, 1u);
  EXPECT_FALSE(engine.alive(0));
  expect_valid(engine, "after erase");

  r = engine.revive(0, {4.5, 5.0});
  EXPECT_EQ(r.edges_added, 1u);
  EXPECT_TRUE(engine.alive(0));
  expect_valid(engine, "after revive");
}

TEST(DynEngine, DeleteToEmptyAndBack) {
  const auto pts = cluster({0.0, 0.0}, 25, 3.0, 17);
  DynamicCds engine(pts);
  for (NodeId v = 0; v < pts.size(); ++v) {
    engine.erase(v);
    expect_valid(engine, "during teardown");
  }
  EXPECT_EQ(engine.alive_count(), 0u);
  EXPECT_EQ(engine.cds_size(), 0u);
  EXPECT_EQ(engine.mis_size(), 0u);
  for (NodeId v = 0; v < pts.size(); ++v) {
    engine.revive(v, pts[v]);
    expect_valid(engine, "during rebuild");
  }
  EXPECT_EQ(engine.alive_count(), pts.size());
}

TEST(DynEngine, IslandMergeBridgesClusters) {
  // Two clusters far outside each other's disks: the maintained set is a
  // CDS forest with one tree per island.
  auto pts = cluster({0.0, 0.0}, 12, 2.0, 5);
  const auto far = cluster({20.0, 0.0}, 12, 2.0, 6);
  pts.insert(pts.end(), far.begin(), far.end());
  DynamicCds engine(pts);
  expect_valid(engine, "two islands");
  // Walk one node across the gap: every intermediate topology must stay
  // covered, and the final one is a single connected component.
  const NodeId walker = 0;
  for (double x = 2.0; x <= 19.0; x += 0.8) {
    engine.move(walker, {x, 1.0});
    expect_valid(engine, "mid-walk");
  }
  const auto views = engine.view();
  EXPECT_EQ(views.island.size(), pts.size());
}

TEST(DynEngine, EnvelopeRebuildRestoresConnectorBound) {
  // A long churn run must eventually trip the envelope policy; after any
  // rebuild the connectors are re-derived so |B| <= 2|MIS| + small.
  const auto inst = mcds::udg::generate_instance({.nodes = 150}, 9);
  DynamicCds engine(inst.points);
  mcds::sim::Rng rng(99);
  std::size_t rebuilds_seen = 0;
  for (int step = 0; step < 600; ++step) {
    const auto v = static_cast<NodeId>(rng.uniform_int(engine.num_nodes()));
    EventReport r;
    if (engine.alive(v) && rng.uniform01() < 0.2) {
      r = engine.erase(v);
    } else if (!engine.alive(v)) {
      r = engine.revive(v, {rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
    } else {
      r = engine.move(v, {rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
    }
    if (r.rebuilt) ++rebuilds_seen;
    expect_valid(engine, "churn step");
  }
  EXPECT_EQ(rebuilds_seen, engine.rebuilds());
}

TEST(DynEngine, CompactionKeepsTopologyExact) {
  const auto pts = cluster({0.0, 0.0}, 60, 6.0, 21);
  DynParams params;
  params.compact_min_edits = 64;  // low threshold: force compactions
  params.compact_fraction = 0.01;
  DynamicCds engine(pts, params);
  mcds::sim::Rng rng(4242);
  bool compacted = false;
  for (int step = 0; step < 200; ++step) {
    const auto v = static_cast<NodeId>(rng.uniform_int(engine.num_nodes()));
    if (!engine.alive(v)) continue;
    const EventReport r =
        engine.move(v, {rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0)});
    compacted = compacted || r.compacted;
    expect_valid(engine, "compaction churn");
  }
  EXPECT_TRUE(compacted);
  EXPECT_GE(engine.compactions(), 1u);
  EXPECT_EQ(engine.delta_graph().overlay_edits(), 0u);
}

TEST(DynEngine, MetricsFlowThroughObs) {
  mcds::obs::MetricsRegistry registry;
  const mcds::obs::Obs obs{&registry, nullptr};
  const auto pts = cluster({0.0, 0.0}, 30, 4.0, 8);
  DynamicCds engine(pts, {}, obs);
  engine.insert({2.0, 2.0});
  engine.move(0, {1.0, 1.0});
  engine.move(0, {3.0, 3.0});
  engine.erase(1);
  engine.revive(1, {0.5, 0.5});
  EXPECT_EQ(registry.counter("dyn.events.insert").value(), 1u);
  EXPECT_EQ(registry.counter("dyn.events.move").value(), 2u);
  EXPECT_EQ(registry.counter("dyn.events.erase").value(), 1u);
  EXPECT_EQ(registry.counter("dyn.events.revive").value(), 1u);
  EXPECT_EQ(registry.histogram("dyn.repair_scope").acc().count(), 5u);
}

TEST(DynEngine, RejectsBadParams) {
  DynParams params;
  params.envelope_factor = 0.5;
  EXPECT_THROW(DynamicCds(std::vector<Vec2>{{0.0, 0.0}}, params),
               std::invalid_argument);
}

TEST(DynEngine, ViewFeedsSelfHealingReconcile) {
  // The engine is one replica among the partition-tolerance machinery:
  // its epoch-stamped view must merge through reconcile() like any
  // SelfHealingCds island view.
  const auto inst = mcds::udg::generate_instance({.nodes = 80}, 13);
  DynamicCds engine(inst.points);
  mcds::sim::Rng rng(31);
  for (int step = 0; step < 40; ++step) {
    const auto v = static_cast<NodeId>(rng.uniform_int(engine.num_nodes()));
    if (engine.alive(v)) {
      engine.move(v, {rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
    }
  }
  const auto topo = engine.topology();
  // A stale driver (epoch 0) adopts the engine's fresher view wholesale.
  mcds::dist::SelfHealingCds driver(topo, engine.cds());
  const std::vector<bool> up(engine.num_nodes(), true);
  const auto report = driver.reconcile({engine.view()}, up);
  EXPECT_NE(report.action, mcds::dist::HealAction::kUnhealable);
  EXPECT_EQ(driver.cds(), engine.cds());
  EXPECT_GE(driver.epoch(), engine.epoch());
}

TEST(DynEngine, IndependentEnginesRunConcurrently) {
  // The engine has no hidden global state: four engines on disjoint data
  // churn in parallel (exercised under TSan by the sanitizer job).
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &failures] {
      const auto seed = static_cast<std::uint64_t>(t + 1);
      const auto pts = cluster({0.0, 0.0}, 40, 5.0, seed);
      DynamicCds engine(pts);
      mcds::sim::Rng rng(seed * 7919);
      for (int step = 0; step < 120; ++step) {
        const auto v =
            static_cast<NodeId>(rng.uniform_int(engine.num_nodes()));
        if (engine.alive(v)) {
          engine.move(v, {rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)});
        } else {
          engine.revive(v, {rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)});
        }
        if (!engine.check().ok) ++failures[t];
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
}

}  // namespace
