// Differential suite for the incremental phase-2 connector engine:
// the union-find + lazy-gain-queue implementation (greedy_connectors)
// must produce the *same* connector sequence and GreedyStep trace —
// node, q_before and gain at every step — as the per-round full-rescan
// reference (greedy_connectors_reference), on the regression corpus
// and on 200 random UDG instances.

#include <gtest/gtest.h>

#include "core/connector_engine.hpp"
#include "core/greedy_connect.hpp"
#include "core/validate.hpp"
#include "test_util.hpp"
#include "udg/instance.hpp"

namespace mcds::core {
namespace {

void expect_identical_traces(const Graph& g, const std::vector<NodeId>& mis) {
  const auto [inc_connectors, inc_steps] = greedy_connectors(g, mis);
  const auto [ref_connectors, ref_steps] =
      greedy_connectors_reference(g, mis);
  ASSERT_EQ(inc_connectors, ref_connectors);
  ASSERT_EQ(inc_steps.size(), ref_steps.size());
  for (std::size_t i = 0; i < inc_steps.size(); ++i) {
    EXPECT_EQ(inc_steps[i].node, ref_steps[i].node) << "step " << i;
    EXPECT_EQ(inc_steps[i].q_before, ref_steps[i].q_before) << "step " << i;
    EXPECT_EQ(inc_steps[i].gain, ref_steps[i].gain) << "step " << i;
  }
}

TEST(GreedyIncrementalDifferential, PathAndStar) {
  for (const std::size_t n : {2u, 3u, 5u, 9u, 17u}) {
    const Graph path = test::make_path(n);
    expect_identical_traces(path, bfs_first_fit_mis(path, 0).mis);
  }
  const Graph star = test::make_star(8);
  expect_identical_traces(star, bfs_first_fit_mis(star, 1).mis);
}

TEST(GreedyIncrementalDifferential, AlreadyConnectedSeedYieldsNoSteps) {
  // A single dominator (star center) leaves q = 1 from the start.
  const Graph star = test::make_star(6);
  const auto [connectors, steps] =
      greedy_connectors(star, bfs_first_fit_mis(star, 0).mis);
  EXPECT_TRUE(connectors.empty());
  EXPECT_TRUE(steps.empty());
}

// The three fixed instances pinned by test_regression_corpus.cpp.
TEST(GreedyIncrementalDifferential, RegressionCorpusInstances) {
  struct CorpusEntry {
    std::size_t nodes;
    double side;
    std::uint64_t seed;
  };
  constexpr CorpusEntry kCorpus[] = {
      {80, 7.0, 101}, {150, 10.0, 202}, {300, 12.0, 303}};
  for (const CorpusEntry& c : kCorpus) {
    udg::InstanceParams params;
    params.nodes = c.nodes;
    params.side = c.side;
    const auto inst = udg::generate_largest_component_instance(params, c.seed);
    expect_identical_traces(inst.graph, bfs_first_fit_mis(inst.graph, 0).mis);
  }
}

// 200 random instances across sizes and densities. Seeds are split into
// parameterized shards to keep per-test runtime and failure locality.
class GreedyIncrementalRandom : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(GreedyIncrementalRandom, TraceMatchesReferenceOnTenInstances) {
  for (std::uint64_t i = 0; i < 10; ++i) {
    const std::uint64_t seed = GetParam() * 10 + i;  // seeds 10..209
    udg::InstanceParams params;
    params.nodes = 40 + (seed % 6) * 25;             // 40..165 nodes
    params.side = 5.0 + static_cast<double>(seed % 4) * 2.0;  // 5..11
    const auto inst =
        udg::generate_largest_component_instance(params, seed * 7919);
    const auto phase1 = bfs_first_fit_mis(inst.graph, 0);
    expect_identical_traces(inst.graph, phase1.mis);
    // Sanity: the engine-backed greedy_cds is still a valid CDS.
    const auto r = greedy_cds(inst.graph, 0);
    EXPECT_TRUE(is_cds(inst.graph, r.cds));
  }
}

INSTANTIATE_TEST_SUITE_P(TwoHundredSeeds, GreedyIncrementalRandom,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(ConnectorEngine, RejectsBadAndDuplicateMembers) {
  const Graph g = test::make_path(4);
  const std::vector<NodeId> out_of_range{0, 7};
  EXPECT_THROW(ConnectorEngine(g, out_of_range), std::invalid_argument);
  const std::vector<NodeId> duplicated{0, 0};
  EXPECT_THROW(ConnectorEngine(g, duplicated), std::invalid_argument);
}

TEST(ConnectorEngine, ThrowsLikeReferenceOnNonMaximalSeed) {
  const Graph g = test::make_path(7);
  const std::vector<NodeId> not_maximal{0, 6};
  EXPECT_THROW((void)greedy_connectors(g, not_maximal), std::logic_error);
  EXPECT_THROW((void)greedy_connectors_reference(g, not_maximal),
               std::logic_error);
}

TEST(ConnectorEngine, ComponentCountTracksSteps) {
  const Graph g = test::make_path(9);
  const auto mis = bfs_first_fit_mis(g, 0).mis;  // {0,2,4,6,8}
  ConnectorEngine engine(g, mis);
  EXPECT_EQ(engine.components(), mis.size());
  std::size_t q = mis.size();
  while (!engine.done()) {
    const GreedyStep step = engine.select_next();
    EXPECT_EQ(step.q_before, q);
    q -= step.gain;
    EXPECT_EQ(engine.components(), q);
  }
  EXPECT_EQ(q, 1u);
}

// A non-independent member seed must match subset_components semantics:
// the engine unites member-member edges at construction.
TEST(ConnectorEngine, NonIndependentSeedCountsComponentsCorrectly) {
  const Graph g = test::make_path(6);
  const std::vector<NodeId> members{0, 1, 3, 4};  // {0,1} and {3,4}
  ConnectorEngine engine(g, members);
  EXPECT_EQ(engine.components(), 2u);
  const GreedyStep step = engine.select_next();
  EXPECT_EQ(step.node, 2u);
  EXPECT_EQ(step.gain, 1u);
  EXPECT_TRUE(engine.done());
}

}  // namespace
}  // namespace mcds::core
