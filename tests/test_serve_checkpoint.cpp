// Checkpoint robustness: the crash-safe save/load/restore path must
// round-trip exactly, refuse every corruption mode loudly (truncation,
// bit flip, version skew, bad magic), and — the acceptance criterion —
// a kill-then-restart engine restored from the checkpoint must be
// byte-identical to the uninterrupted engine at the next checkpoint
// boundary. Plus the concurrency case: periodic checkpoints racing a
// churn workload never produce a torn or divergent file.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "serve/checkpoint.hpp"
#include "serve/server.hpp"
#include "udg/instance.hpp"

namespace {

using namespace mcds::serve;
using namespace std::chrono_literals;

std::string tmp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

mcds::udg::UdgInstance base_instance(std::uint64_t seed) {
  mcds::udg::InstanceParams p;
  p.nodes = 40;
  p.side = 5.0;
  return mcds::udg::generate_largest_component_instance(p, seed);
}

/// A deterministic churn script over the instance's deployment area.
std::vector<ChurnOp> churn_script(const mcds::udg::UdgInstance& inst,
                                  std::size_t n, std::uint64_t seed) {
  mcds::sim::Rng rng(seed);
  std::vector<ChurnOp> ops;
  const std::size_t base = inst.points.size();
  for (std::size_t i = 0; i + 2 < n; ++i) {
    ChurnOp op;
    const auto pick = rng.uniform_int(base);
    const mcds::geom::Vec2 pos{rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)};
    if (rng.uniform_int(3) == 0) {
      op = {ChurnOp::Kind::kInsert, 0, pos};
    } else {
      op = {ChurnOp::Kind::kMove, static_cast<NodeId>(pick), pos};
    }
    ops.push_back(op);
  }
  // One erase/revive pair so every op kind round-trips the format.
  const auto victim = static_cast<NodeId>(base - 1);
  ops.push_back({ChurnOp::Kind::kErase, victim, {}});
  ops.push_back(
      {ChurnOp::Kind::kRevive, victim, inst.points[victim]});
  return ops;
}

CheckpointData sample_data() {
  const auto inst = base_instance(5);
  CheckpointData d;
  d.base_points = inst.points;
  mcds::dyn::DynamicCds engine(d.base_points);
  for (const ChurnOp& op : churn_script(inst, 25, 99)) {
    apply_churn_op(engine, op);
    d.journal.push_back(op);
  }
  d.epoch = engine.epoch();
  d.cds_size = engine.cds_size();
  d.cds_hash = hash_backbone(engine.cds());
  return d;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good());
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ServeCheckpoint, RoundTripsExactly) {
  const std::string path = tmp_path("ckpt_roundtrip.bin");
  const CheckpointData d = sample_data();
  save_checkpoint(path, d);
  const CheckpointData back = load_checkpoint(path);
  ASSERT_EQ(back.base_points.size(), d.base_points.size());
  for (std::size_t i = 0; i < d.base_points.size(); ++i) {
    EXPECT_EQ(back.base_points[i].x, d.base_points[i].x);
    EXPECT_EQ(back.base_points[i].y, d.base_points[i].y);
  }
  EXPECT_EQ(back.journal, d.journal);
  EXPECT_EQ(back.epoch, d.epoch);
  EXPECT_EQ(back.cds_size, d.cds_size);
  EXPECT_EQ(back.cds_hash, d.cds_hash);
  std::remove(path.c_str());
}

TEST(ServeCheckpoint, TruncatedFileFailsLoudly) {
  const std::string path = tmp_path("ckpt_trunc.bin");
  save_checkpoint(path, sample_data());
  const std::string bytes = read_file(path);
  // Cut at several depths: inside the header, and inside the payload.
  for (const std::size_t keep :
       {std::size_t{5}, std::size_t{20}, bytes.size() - 7}) {
    write_file(path, bytes.substr(0, keep));
    EXPECT_THROW(load_checkpoint(path), CheckpointError) << keep;
  }
  std::remove(path.c_str());
}

TEST(ServeCheckpoint, FlippedByteFailsChecksum) {
  const std::string path = tmp_path("ckpt_flip.bin");
  save_checkpoint(path, sample_data());
  const std::string orig = read_file(path);
  // Flip one bit in the middle of the payload (past the 24-byte
  // header): the CRC must catch it.
  std::string bytes = orig;
  bytes[24 + bytes.size() / 2] ^= 0x10;
  write_file(path, bytes);
  EXPECT_THROW(load_checkpoint(path), CheckpointError);
  // And the untouched original still loads: the corruption detection
  // is the file's, not the loader's mood.
  write_file(path, orig);
  EXPECT_NO_THROW(load_checkpoint(path));
  std::remove(path.c_str());
}

TEST(ServeCheckpoint, WrongVersionHeaderIsRefused) {
  const std::string path = tmp_path("ckpt_version.bin");
  save_checkpoint(path, sample_data());
  std::string bytes = read_file(path);
  bytes[8] = static_cast<char>(kCheckpointVersion + 1);  // version u32 LSB
  write_file(path, bytes);
  try {
    load_checkpoint(path);
    FAIL() << "version skew must throw";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(ServeCheckpoint, BadMagicIsRefused) {
  const std::string path = tmp_path("ckpt_magic.bin");
  save_checkpoint(path, sample_data());
  std::string bytes = read_file(path);
  bytes[0] = 'X';
  write_file(path, bytes);
  EXPECT_THROW(load_checkpoint(path), CheckpointError);
  std::remove(path.c_str());
}

TEST(ServeCheckpoint, MissingFileIsRefused) {
  EXPECT_THROW(load_checkpoint(tmp_path("ckpt_nonexistent.bin")),
               CheckpointError);
}

TEST(ServeCheckpoint, RestoreReplaysToIdenticalEngineState) {
  const CheckpointData d = sample_data();
  const auto engine = restore_engine(d);
  EXPECT_EQ(engine->epoch(), d.epoch);
  EXPECT_EQ(engine->cds_size(), d.cds_size);
  EXPECT_EQ(hash_backbone(engine->cds()), d.cds_hash);
  EXPECT_TRUE(engine->check().ok);
}

TEST(ServeCheckpoint, DivergentFingerprintIsRefused) {
  CheckpointData d = sample_data();
  d.cds_hash ^= 1;  // pretend the journal should land elsewhere
  EXPECT_THROW(restore_engine(d), CheckpointError);
}

// The acceptance criterion: kill after a checkpoint, restart from it,
// replay the rest of the workload — the restored engine's backbone is
// byte-identical to the uninterrupted engine's at the next checkpoint
// boundary (and at every point after, since the engine is
// deterministic).
TEST(ServeCheckpoint, KillThenRestartMatchesUninterruptedRun) {
  const std::string path = tmp_path("ckpt_restart.bin");
  const auto inst = base_instance(17);
  const auto ops = churn_script(inst, 60, 4242);
  const std::size_t cut = 33;  // "crash" happens here

  // Uninterrupted engine: all 60 ops straight through.
  mcds::dyn::DynamicCds uninterrupted(inst.points);
  for (const ChurnOp& op : ops) apply_churn_op(uninterrupted, op);

  // Served engine: ops[0..cut), checkpoint, *crash* (engine destroyed).
  {
    mcds::dyn::DynamicCds live(inst.points);
    CheckpointData d;
    d.base_points = inst.points;
    for (std::size_t i = 0; i < cut; ++i) {
      apply_churn_op(live, ops[i]);
      d.journal.push_back(ops[i]);
    }
    d.epoch = live.epoch();
    d.cds_size = live.cds_size();
    d.cds_hash = hash_backbone(live.cds());
    save_checkpoint(path, d);
  }

  // Restart: restore from disk, replay the remaining ops.
  const auto restored = restore_engine(load_checkpoint(path));
  for (std::size_t i = cut; i < ops.size(); ++i) {
    apply_churn_op(*restored, ops[i]);
  }
  EXPECT_EQ(restored->epoch(), uninterrupted.epoch());
  EXPECT_EQ(restored->cds(), uninterrupted.cds());  // byte-identical
  EXPECT_EQ(restored->mis(), uninterrupted.mis());
  EXPECT_EQ(restored->alive_count(), uninterrupted.alive_count());
  std::remove(path.c_str());
}

// Concurrency: periodic checkpoints racing a live churn workload. Every
// file the checkpointer produced must load (atomic rename: no torn
// states), and the final forced checkpoint restores to exactly the
// server engine's state.
TEST(ServeCheckpoint, ConcurrentCheckpointDuringChurnIsConsistent) {
  const std::string path = tmp_path("ckpt_concurrent.bin");
  const auto inst = base_instance(23);
  ServerParams p;
  p.initial_points = inst.points;
  p.checkpoint_path = path;
  p.checkpoint_every = 3ms;
  Server server(std::move(p));

  const auto ops = churn_script(inst, 80, 777);
  for (const ChurnOp& op : ops) {
    Request r;
    r.ops.push_back(op);
    r.deadline = std::chrono::steady_clock::now() + 10s;
    const Response resp = server.submit(std::move(r)).wait();
    ASSERT_EQ(resp.status, Status::kOk) << resp.error;
    // Let the checkpointer interleave with the churn.
    std::this_thread::sleep_for(200us);
    // Whatever is on disk at any instant must parse cleanly.
    if (resp.epoch % 8 == 0) {
      try {
        (void)load_checkpoint(path);
      } catch (const CheckpointError& e) {
        // Only "not written yet" is acceptable here, never corruption.
        EXPECT_NE(std::string(e.what()).find("cannot open"),
                  std::string::npos)
            << e.what();
      }
    }
  }
  server.checkpoint_now();
  const auto restored = restore_engine(load_checkpoint(path));
  server.drain();
  EXPECT_GE(server.stats().checkpoints, 1u);
  EXPECT_EQ(server.stats().leaked(), 0u);
  ASSERT_NE(server.engine(), nullptr);
  EXPECT_EQ(restored->epoch(), server.engine()->epoch());
  EXPECT_EQ(restored->cds(), server.engine()->cds());
  std::remove(path.c_str());
}

}  // namespace
