// DeltaGraph: the mutable overlay over an immutable CSR base. The
// contract under test is differential — after any interleaving of edge
// flips, iteration must present exactly the adjacency a from-scratch
// finalized Graph holds, in the same (ascending) order, and the edit
// accounting must reach zero when flips cancel.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/delta_graph.hpp"
#include "graph/graph.hpp"
#include "sim/rng.hpp"
#include "udg/instance.hpp"

namespace {

using mcds::graph::DeltaGraph;
using mcds::graph::EdgeDelta;
using mcds::graph::Graph;
using mcds::graph::NodeId;

Graph line_graph(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1);
  g.finalize();
  return g;
}

// Neighbor iteration must be identical (order included) to a rebuilt
// finalized Graph with the same edge set.
void expect_matches(const DeltaGraph& dg, const Graph& oracle) {
  ASSERT_EQ(dg.num_nodes(), oracle.num_nodes());
  ASSERT_EQ(dg.num_edges(), oracle.num_edges());
  for (NodeId u = 0; u < dg.num_nodes(); ++u) {
    EXPECT_EQ(dg.degree(u), oracle.degree(u)) << "node " << u;
    std::vector<NodeId> seen;
    dg.for_each_neighbor(u, [&](NodeId v) { seen.push_back(v); });
    const auto row = oracle.neighbors(u);
    EXPECT_EQ(seen, std::vector<NodeId>(row.begin(), row.end()))
        << "node " << u;
    EXPECT_EQ(dg.neighbors_copy(u), seen) << "node " << u;
  }
  const Graph mat = dg.materialize();
  const auto mo = mat.offsets();
  const auto oo = oracle.offsets();
  EXPECT_TRUE(std::equal(mo.begin(), mo.end(), oo.begin(), oo.end()));
  const auto mn = mat.flat_neighbors();
  const auto on = oracle.flat_neighbors();
  EXPECT_TRUE(std::equal(mn.begin(), mn.end(), on.begin(), on.end()));
}

TEST(DynDeltaGraph, UntouchedNodesMirrorBase) {
  const auto inst = mcds::udg::generate_instance({.nodes = 80}, 5);
  DeltaGraph dg(inst.graph);
  expect_matches(dg, inst.graph);
  EXPECT_EQ(dg.overlay_edits(), 0u);
}

TEST(DynDeltaGraph, AddAndRemoveAgainstOracle) {
  DeltaGraph dg(line_graph(6));
  dg.remove_edge(2, 3);
  dg.add_edge(0, 5);
  dg.add_edge(3, 1);

  Graph oracle(6);
  oracle.add_edge(0, 1);
  oracle.add_edge(1, 2);
  oracle.add_edge(3, 4);
  oracle.add_edge(4, 5);
  oracle.add_edge(0, 5);
  oracle.add_edge(1, 3);
  oracle.finalize();
  expect_matches(dg, oracle);
  EXPECT_TRUE(dg.has_edge(5, 0));
  EXPECT_FALSE(dg.has_edge(2, 3));
}

TEST(DynDeltaGraph, ExactDeltaErrors) {
  DeltaGraph dg(line_graph(4));
  EXPECT_THROW(dg.add_edge(0, 1), std::invalid_argument);   // duplicate
  EXPECT_THROW(dg.remove_edge(0, 2), std::invalid_argument);  // absent
  EXPECT_THROW(dg.add_edge(1, 1), std::invalid_argument);   // self-loop
  EXPECT_THROW(dg.add_edge(0, 9), std::invalid_argument);   // range
  dg.add_edge(0, 2);
  EXPECT_THROW(dg.add_edge(2, 0), std::invalid_argument);  // overlay dup
}

TEST(DynDeltaGraph, CancellingFlipsDrainTheOverlay) {
  DeltaGraph dg(line_graph(5));
  // Tombstone a base edge, then restore it: net zero overlay.
  dg.remove_edge(1, 2);
  EXPECT_EQ(dg.overlay_edits(), 2u);
  dg.add_edge(2, 1);
  EXPECT_EQ(dg.overlay_edits(), 0u);
  // Add a novel edge, then drop it again: also net zero.
  dg.add_edge(0, 4);
  EXPECT_EQ(dg.overlay_edits(), 2u);
  dg.remove_edge(0, 4);
  EXPECT_EQ(dg.overlay_edits(), 0u);
  expect_matches(dg, line_graph(5));
}

TEST(DynDeltaGraph, AddNodeExtendsIdSpace) {
  DeltaGraph dg(line_graph(3));
  const NodeId v = dg.add_node();
  EXPECT_EQ(v, 3u);
  EXPECT_EQ(dg.degree(v), 0u);
  dg.add_edge(v, 0);
  Graph oracle(4);
  oracle.add_edge(0, 1);
  oracle.add_edge(1, 2);
  oracle.add_edge(0, 3);
  oracle.finalize();
  expect_matches(dg, oracle);
}

TEST(DynDeltaGraph, ApplyDeltaRemovalsBeforeAdditions) {
  DeltaGraph dg(line_graph(4));
  EdgeDelta d;
  d.removed = {{1, 2}};
  d.added = {{0, 2}, {1, 3}};
  dg.apply(d);
  Graph oracle(4);
  oracle.add_edge(0, 1);
  oracle.add_edge(2, 3);
  oracle.add_edge(0, 2);
  oracle.add_edge(1, 3);
  oracle.finalize();
  expect_matches(dg, oracle);
}

TEST(DynDeltaGraph, NormalizeCancelsMatchedPairs) {
  EdgeDelta d;
  d.added = {{3, 1}, {0, 2}};    // non-canonical on purpose
  d.removed = {{2, 0}, {4, 5}};  // {0,2} appears on both sides
  d.normalize();
  const std::vector<std::pair<NodeId, NodeId>> want_added{{1, 3}};
  const std::vector<std::pair<NodeId, NodeId>> want_removed{{4, 5}};
  EXPECT_EQ(d.added, want_added);
  EXPECT_EQ(d.removed, want_removed);
  d.clear();
  EXPECT_TRUE(d.empty());
}

TEST(DynDeltaGraph, CompactionThresholdAndReset) {
  // Tiny threshold so a handful of edits trigger compaction.
  DeltaGraph dg(line_graph(8), /*compact_fraction=*/0.25,
                /*compact_min_edits=*/4);
  EXPECT_FALSE(dg.compaction_due());
  dg.add_edge(0, 7);
  dg.add_edge(1, 6);
  EXPECT_TRUE(dg.compaction_due());
  const Graph before = dg.materialize();
  dg.compact();
  EXPECT_EQ(dg.compactions(), 1u);
  EXPECT_EQ(dg.overlay_edits(), 0u);
  EXPECT_FALSE(dg.compaction_due());
  expect_matches(dg, before);
  // Edits after compaction diff against the *new* base.
  dg.remove_edge(0, 7);
  EXPECT_EQ(dg.overlay_edits(), 2u);
}

TEST(DynDeltaGraph, RandomizedDifferential) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto inst =
        mcds::udg::generate_instance({.nodes = 60, .side = 8.0}, seed);
    DeltaGraph dg(inst.graph);
    // Track the live edge set alongside and flip random pairs.
    std::vector<std::vector<char>> has(
        inst.graph.num_nodes(), std::vector<char>(inst.graph.num_nodes(), 0));
    for (const auto& [u, v] : inst.graph.edges()) has[u][v] = has[v][u] = 1;
    mcds::sim::Rng rng(seed * 977 + 13);
    for (int step = 0; step < 400; ++step) {
      const auto u = static_cast<NodeId>(rng.uniform_int(dg.num_nodes()));
      const auto v = static_cast<NodeId>(rng.uniform_int(dg.num_nodes()));
      if (u == v) continue;
      if (has[u][v]) {
        dg.remove_edge(u, v);
        has[u][v] = has[v][u] = 0;
      } else {
        dg.add_edge(u, v);
        has[u][v] = has[v][u] = 1;
      }
      if (dg.compaction_due()) dg.compact();
    }
    Graph oracle(dg.num_nodes());
    for (NodeId u = 0; u < dg.num_nodes(); ++u) {
      for (NodeId v = u + 1; v < dg.num_nodes(); ++v) {
        if (has[u][v]) oracle.add_edge(u, v);
      }
    }
    oracle.finalize();
    expect_matches(dg, oracle);
  }
}

}  // namespace
