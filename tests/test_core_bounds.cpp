#include "core/bounds.hpp"

#include <gtest/gtest.h>

namespace mcds::core::bounds {
namespace {

TEST(Phi, PaperValues) {
  // Section II: φ_n = 3n+2 for n <= 2, min(3n+3, 21) for n >= 3.
  EXPECT_EQ(phi(1), 5u);
  EXPECT_EQ(phi(2), 8u);
  EXPECT_EQ(phi(3), 12u);
  EXPECT_EQ(phi(4), 15u);
  EXPECT_EQ(phi(5), 18u);
  EXPECT_EQ(phi(6), 21u);
  EXPECT_EQ(phi(7), 21u);   // capped by Wegner
  EXPECT_EQ(phi(100), 21u);
  EXPECT_THROW((void)phi(0), std::invalid_argument);
}

TEST(Phi, SatisfiesElevenThirdsInequality) {
  // The paper uses φ_n <= 11n/3 + 1 for n >= 2.
  for (std::size_t n = 2; n <= 50; ++n) {
    EXPECT_LE(static_cast<double>(phi(n)),
              11.0 * static_cast<double>(n) / 3.0 + 1.0 + 1e-12)
        << "n=" << n;
  }
}

TEST(AlphaBound, Corollary7Values) {
  EXPECT_DOUBLE_EQ(alpha_upper_bound(3), 12.0);
  EXPECT_DOUBLE_EQ(alpha_upper_bound(0), 1.0);
  EXPECT_NEAR(alpha_upper_bound(6), 23.0, 1e-12);
  EXPECT_DOUBLE_EQ(alpha_upper_bound_intersecting(3), 10.0);
}

TEST(RatioBounds, ExactFractions) {
  EXPECT_NEAR(kWafRatio, 7.0 + 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(kGreedyRatio, 6.0 + 7.0 / 18.0, 1e-15);
  EXPECT_NEAR(kAlphaSlope, 3.0 + 2.0 / 3.0, 1e-15);
  EXPECT_DOUBLE_EQ(waf_upper_bound(3), 22.0);
  EXPECT_NEAR(greedy_upper_bound(18), 115.0, 1e-12);
}

TEST(RatioBounds, ImprovementOverPriorWork) {
  // The paper's improvement chain: 7⅓ < 7.6·γ_c + 1.4 < 8·γ_c − 1 for
  // all γ_c >= 2 at the ratio level.
  for (std::size_t gc = 1; gc <= 30; ++gc) {
    EXPECT_LT(waf_upper_bound(gc), waf_bound_2006(gc));
    if (gc >= 9) {  // 7.6x+1.4 < 8x-1 for x > 8
      EXPECT_LT(waf_bound_2006(gc), waf_bound_2004(gc));
    }
    EXPECT_LT(greedy_upper_bound(gc), waf_upper_bound(gc));
  }
}

TEST(ConjecturedBounds, Section5Values) {
  EXPECT_DOUBLE_EQ(waf_conjectured_bound(4), 24.0);
  EXPECT_DOUBLE_EQ(greedy_conjectured_bound(4), 22.0);
  for (std::size_t gc = 1; gc <= 10; ++gc) {
    EXPECT_LT(waf_conjectured_bound(gc), waf_upper_bound(gc));
    EXPECT_LT(greedy_conjectured_bound(gc), greedy_upper_bound(gc));
  }
}

TEST(GammaCLowerBound, InvertsCorollary7) {
  EXPECT_EQ(gamma_c_lower_bound_from_independent(0), 1u);
  EXPECT_EQ(gamma_c_lower_bound_from_independent(1), 1u);
  EXPECT_EQ(gamma_c_lower_bound_from_independent(2), 1u);
  // |I| = 12 -> ceil(33/11) = 3.
  EXPECT_EQ(gamma_c_lower_bound_from_independent(12), 3u);
  // |I| = 13 -> ceil(36/11) = 4.
  EXPECT_EQ(gamma_c_lower_bound_from_independent(13), 4u);
  // Consistency: the bound never exceeds what Corollary 7 allows.
  for (std::size_t size = 2; size <= 200; ++size) {
    const std::size_t lb = gamma_c_lower_bound_from_independent(size);
    EXPECT_GE(alpha_upper_bound(lb) + 1e-9, static_cast<double>(size));
    if (lb > 1) {
      EXPECT_LT(alpha_upper_bound(lb - 1), static_cast<double>(size));
    }
  }
}

}  // namespace
}  // namespace mcds::core::bounds
