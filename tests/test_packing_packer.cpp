#include "packing/packer.hpp"

#include <gtest/gtest.h>

#include "geom/closest.hpp"
#include "packing/wegner.hpp"

namespace mcds::packing {
namespace {

using geom::DiskUnion;
using geom::Vec2;

PackOptions fast_options(std::uint64_t seed) {
  PackOptions opt;
  opt.grid_step = 0.08;
  opt.restarts = 6;
  opt.ruin_rounds = 10;
  opt.seed = seed;
  return opt;
}

TEST(Packer, OutputIsIndependentAndInside) {
  const DiskUnion region({{0, 0}, {1, 0}, {2, 0}}, 1.0);
  const auto result = pack_independent_points(region, fast_options(1));
  EXPECT_FALSE(result.points.empty());
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_TRUE(geom::is_independent_point_set(result.points, 1.0));
  for (const Vec2 p : result.points) EXPECT_TRUE(region.contains(p, 1e-9));
}

TEST(Packer, SingleDiskRespectsFivePointLimit) {
  // |I(u)| <= 5 (Section II, trivial bound): no more than five points
  // with pairwise distance > 1 fit in a closed unit disk.
  const DiskUnion region({{0, 0}}, 1.0);
  const auto result = pack_independent_points(region, fast_options(2));
  EXPECT_LE(result.points.size(), 5u);
  EXPECT_GE(result.points.size(), 4u);  // the optimizer should get close
}

TEST(Packer, TwoStarRespectsPhi2) {
  const DiskUnion region({{0, 0}, {1, 0}}, 1.0);
  const auto result = pack_independent_points(region, fast_options(3));
  EXPECT_LE(result.points.size(), 8u);  // φ_2 (Theorem 3)
  EXPECT_GE(result.points.size(), 6u);
}

TEST(Packer, DeterministicForSeed) {
  const DiskUnion region({{0, 0}, {0.8, 0.3}}, 1.0);
  const auto a = pack_independent_points(region, fast_options(7));
  const auto b = pack_independent_points(region, fast_options(7));
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].x, b.points[i].x);
    EXPECT_EQ(a.points[i].y, b.points[i].y);
  }
}

TEST(Packer, OptionValidation) {
  const DiskUnion region({{0, 0}}, 1.0);
  PackOptions bad;
  bad.grid_step = 0.0;
  EXPECT_THROW((void)pack_independent_points(region, bad),
               std::invalid_argument);
  PackOptions bad2;
  bad2.ruin_fraction = 1.5;
  EXPECT_THROW((void)pack_independent_points(region, bad2),
               std::invalid_argument);
}

TEST(Wegner, WitnessValidation) {
  const std::vector<Vec2> ok{{0, 0}, {1.2, 0}, {0, 1.2}};
  EXPECT_TRUE(is_wegner_witness({0, 0}, ok));
  const std::vector<Vec2> too_far{{0, 0}, {2.5, 0}};
  EXPECT_FALSE(is_wegner_witness({0, 0}, too_far));
  const std::vector<Vec2> too_close{{0, 0}, {0.5, 0}};
  EXPECT_FALSE(is_wegner_witness({0, 0}, too_close));
  EXPECT_TRUE(is_wegner_witness({0, 0}, std::vector<Vec2>{}));
  EXPECT_EQ(kWegnerLimit, 21u);
}

TEST(Wegner, PackerStaysBelowLimitInRadiusTwoDisk) {
  // Theorem 3 uses Wegner: <= 21 points at pairwise distance >= 1 in a
  // radius-2 disk. Our strict-independence packer must stay below that.
  const DiskUnion region({{0, 0}}, 2.0);
  const auto result = pack_independent_points(region, fast_options(11));
  EXPECT_LE(result.points.size(), kWegnerLimit);
  EXPECT_GE(result.points.size(), 12u);
  EXPECT_TRUE(is_wegner_witness({0, 0}, result.points));
}

TEST(Packer, AllowTouchingPacksAtLeastAsMany) {
  const DiskUnion region({{0, 0}, {1, 0}}, 1.0);
  PackOptions strict = fast_options(5);
  PackOptions touching = strict;
  touching.allow_touching = true;
  const auto s = pack_independent_points(region, strict);
  const auto t = pack_independent_points(region, touching);
  // The >= 1 regime is a relaxation of the > 1 regime.
  EXPECT_GE(t.points.size(), s.points.size());
  // Every returned pair still respects the relaxed separation.
  EXPECT_TRUE(geom::is_independent_point_set(t.points, 1.0 - 1e-6));
}

}  // namespace
}  // namespace mcds::packing
