#include "geom/circle.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mcds::geom {
namespace {

TEST(Circle, ContainmentPredicates) {
  const Circle c{{0.0, 0.0}, 1.0};
  EXPECT_TRUE(c.contains({0.5, 0.5}));
  EXPECT_TRUE(c.contains({1.0, 0.0}));
  EXPECT_FALSE(c.contains({1.1, 0.0}));
  EXPECT_TRUE(c.strictly_contains({0.5, 0.0}));
  EXPECT_FALSE(c.strictly_contains({1.0, 0.0}));
  EXPECT_TRUE(c.on_boundary({std::sqrt(0.5), std::sqrt(0.5)}));
  EXPECT_FALSE(c.on_boundary({0.5, 0.0}));
}

TEST(Circle, PointAtAngle) {
  const Circle c{{1.0, 2.0}, 2.0};
  EXPECT_TRUE(almost_equal(c.point_at(0.0), Vec2(3.0, 2.0)));
  EXPECT_TRUE(
      almost_equal(c.point_at(std::numbers::pi / 2.0), Vec2(1.0, 4.0)));
}

TEST(Circle, Area) {
  EXPECT_NEAR(Circle({0, 0}, 2.0).area(), 4.0 * std::numbers::pi, kEps);
}

TEST(CircleIntersect, TwoUnitCirclesAtDistanceOne) {
  // Classic configuration of the paper: ∂D_o ∩ ∂D_u = {a, a'} at
  // (1/2, ±√3/2) when u = (1, 0).
  const auto pts = intersect(unit_disk({0, 0}), unit_disk({1, 0}));
  ASSERT_EQ(pts.size(), 2u);
  // First point is left of the directed line o -> u, i.e. above.
  EXPECT_NEAR(pts[0].x, 0.5, kEps);
  EXPECT_NEAR(pts[0].y, std::sqrt(3.0) / 2.0, kEps);
  EXPECT_NEAR(pts[1].x, 0.5, kEps);
  EXPECT_NEAR(pts[1].y, -std::sqrt(3.0) / 2.0, kEps);
}

TEST(CircleIntersect, Tangency) {
  const auto pts = intersect({{0, 0}, 1.0}, {{2, 0}, 1.0});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_TRUE(almost_equal(pts[0], Vec2(1.0, 0.0), 1e-6));
}

TEST(CircleIntersect, DisjointAndNested) {
  EXPECT_TRUE(intersect({{0, 0}, 1.0}, {{5, 0}, 1.0}).empty());
  EXPECT_TRUE(intersect({{0, 0}, 3.0}, {{0.5, 0}, 1.0}).empty());
  EXPECT_TRUE(intersect({{0, 0}, 1.0}, {{0, 0}, 1.0}).empty());
}

TEST(CircleIntersect, PointsLieOnBothCircles) {
  const Circle a{{0.3, -0.2}, 1.7}, b{{1.4, 0.9}, 1.1};
  for (const Vec2 p : intersect(a, b)) {
    EXPECT_TRUE(a.on_boundary(p, 1e-7));
    EXPECT_TRUE(b.on_boundary(p, 1e-7));
  }
  EXPECT_EQ(intersect(a, b).size(), 2u);
}

TEST(CircleIntersect, SidedSelection) {
  const Circle a = unit_disk({0, 0}), b = unit_disk({1, 0});
  const auto left = circle_circle_point(a, b, +1);
  const auto right = circle_circle_point(a, b, -1);
  ASSERT_TRUE(left.has_value());
  ASSERT_TRUE(right.has_value());
  EXPECT_GT(left->y, 0.0);
  EXPECT_LT(right->y, 0.0);
  EXPECT_THROW((void)circle_circle_point(a, b, 0), std::invalid_argument);
  EXPECT_FALSE(circle_circle_point(a, {{5, 0}, 1.0}, 1).has_value());
}

TEST(Circle, DisksOverlap) {
  EXPECT_TRUE(disks_overlap(unit_disk({0, 0}), unit_disk({2, 0})));
  EXPECT_TRUE(disks_overlap(unit_disk({0, 0}), unit_disk({1.5, 0})));
  EXPECT_FALSE(disks_overlap(unit_disk({0, 0}), unit_disk({2.5, 0})));
}

TEST(ArcPoints, EndpointsIncludedAndOnCircle) {
  const Circle c = unit_disk({0, 0});
  const auto pts = arc_points(c, 0.0, std::numbers::pi, 5);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_TRUE(almost_equal(pts.front(), Vec2(1, 0)));
  EXPECT_TRUE(almost_equal(pts.back(), Vec2(-1, 0)));
  for (const Vec2 p : pts) EXPECT_TRUE(c.on_boundary(p, 1e-9));
}

TEST(ArcPoints, WrappingArc) {
  // From pi/2 down through 0 to -pi/2 (a1 < a0 wraps).
  const auto pts =
      arc_points(unit_disk({0, 0}), std::numbers::pi / 2.0,
                 -std::numbers::pi / 2.0 + 2.0 * std::numbers::pi, 3);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_TRUE(almost_equal(pts[1], Vec2(-1.0, 0.0)));
}

TEST(ArcPoints, SinglePointIsMidpoint) {
  const auto pts = arc_points(unit_disk({0, 0}), 0.0, std::numbers::pi, 1);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_TRUE(almost_equal(pts[0], Vec2(0.0, 1.0)));
}

TEST(ArcPoints, NegativeCountThrows) {
  EXPECT_THROW((void)arc_points(unit_disk({0, 0}), 0.0, 1.0, -1),
               std::invalid_argument);
}

TEST(LensArea, KnownValues) {
  // Disjoint disks: zero.
  EXPECT_DOUBLE_EQ(lens_area({{0, 0}, 1.0}, {{3, 0}, 1.0}), 0.0);
  // Nested: smaller disk's area.
  EXPECT_NEAR(lens_area({{0, 0}, 2.0}, {{0.1, 0}, 1.0}), std::numbers::pi,
              1e-9);
  // Coincident unit disks: pi.
  EXPECT_NEAR(lens_area({{0, 0}, 1.0}, {{0, 0}, 1.0}), std::numbers::pi,
              1e-9);
  // Unit disks at distance 1: 2*pi/3 - sqrt(3)/2.
  const double expected = 2.0 * std::numbers::pi / 3.0 - std::sqrt(3.0) / 2.0;
  EXPECT_NEAR(lens_area(unit_disk({0, 0}), unit_disk({1, 0})), expected,
              1e-9);
}

}  // namespace
}  // namespace mcds::geom
