#include "geom/hull.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geom/closest.hpp"
#include "sim/rng.hpp"

namespace mcds::geom {
namespace {

TEST(ConvexHull, Square) {
  const std::vector<Vec2> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(polygon_area(hull), 1.0, kEps);
}

TEST(ConvexHull, CollinearPoints) {
  const std::vector<Vec2> pts{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 2u);  // just the extremes
}

TEST(ConvexHull, DegenerateInputs) {
  EXPECT_TRUE(convex_hull(std::vector<Vec2>{}).empty());
  EXPECT_EQ(convex_hull(std::vector<Vec2>{{1, 2}}).size(), 1u);
  const std::vector<Vec2> dup{{1, 2}, {1, 2}, {1, 2}};
  EXPECT_EQ(convex_hull(dup).size(), 1u);
}

TEST(Diameter, KnownShapes) {
  const std::vector<Vec2> sq{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_NEAR(diameter(sq), std::sqrt(2.0), kEps);
  const std::vector<Vec2> two{{0, 0}, {3, 4}};
  EXPECT_NEAR(diameter(two), 5.0, kEps);
  EXPECT_DOUBLE_EQ(diameter(std::vector<Vec2>{{1, 1}}), 0.0);
}

TEST(Diameter, MatchesBruteForceOnRandomSets) {
  sim::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Vec2> pts;
    const std::size_t n = 3 + rng.uniform_int(60);
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(-5, 5), rng.uniform(-5, 5)});
    }
    double brute = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        brute = std::max(brute, dist(pts[i], pts[j]));
      }
    }
    EXPECT_NEAR(diameter(pts), brute, 1e-9) << "trial " << trial;
  }
}

TEST(PolygonArea, TriangleAndOrientation) {
  const std::vector<Vec2> ccw{{0, 0}, {2, 0}, {0, 2}};
  EXPECT_NEAR(polygon_area(ccw), 2.0, kEps);
  const std::vector<Vec2> cw{{0, 0}, {0, 2}, {2, 0}};
  EXPECT_NEAR(polygon_area(cw), -2.0, kEps);
  EXPECT_DOUBLE_EQ(polygon_area(std::vector<Vec2>{{0, 0}, {1, 1}}), 0.0);
}

TEST(Centroid, MeanOfPoints) {
  const std::vector<Vec2> pts{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  EXPECT_TRUE(almost_equal(centroid(pts), Vec2(1, 1)));
  EXPECT_THROW((void)centroid(std::vector<Vec2>{}), std::invalid_argument);
}

TEST(BoundingBox, ComputesExtremes) {
  const std::vector<Vec2> pts{{1, 5}, {-2, 0}, {4, -3}};
  const auto [lo, hi] = bounding_box(pts);
  EXPECT_EQ(lo, Vec2(-2, -3));
  EXPECT_EQ(hi, Vec2(4, 5));
  EXPECT_THROW((void)bounding_box(std::vector<Vec2>{}),
               std::invalid_argument);
}

TEST(MinPairwiseDistance, MatchesClosestPair) {
  const std::vector<Vec2> pts{{0, 0}, {5, 5}, {1, 0.5}, {9, 9}};
  EXPECT_NEAR(min_pairwise_distance(pts), dist({0, 0}, {1, 0.5}), kEps);
}

}  // namespace
}  // namespace mcds::geom
