// Tests for the observability layer (src/obs/): metrics registry,
// trace recorder + sinks, the RAII timer, the null-sink zero-cost
// guarantee (no output, no allocation), trace determinism across
// identical (seed, FaultPlan) executions, and the instrumentation wired
// through the runtime, connector engine and maintenance stack.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <sstream>
#include <vector>

#include "core/connector_engine.hpp"
#include "core/greedy_connect.hpp"
#include "core/mis.hpp"
#include "dist/distributed_cds.hpp"
#include "dist/maintenance.hpp"
#include "dist/runtime.hpp"
#include "obs/obs.hpp"
#include "obs/timer.hpp"
#include "udg/instance.hpp"

// Allocation counter fed by the replaced global operator new in
// test_obs_alloc_hooks.cpp (a separate TU, see the note there).
namespace mcds_test {
extern std::atomic<std::size_t> g_alloc_count;
}  // namespace mcds_test

namespace mcds {
namespace {

using dist::Message;
using dist::Runtime;
using graph::Graph;
using graph::NodeId;

Graph path2() {
  Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  return g;
}

udg::UdgInstance instance(std::size_t n, std::uint64_t seed = 5) {
  udg::InstanceParams params;
  params.nodes = n;
  params.side = std::sqrt(static_cast<double>(n)) * 0.85;
  return udg::generate_largest_component_instance(params, seed);
}

// ---------------------------------------------------------------- metrics

TEST(MetricsRegistry, CreateOrGetReturnsStableAddresses) {
  obs::MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  obs::Counter& a = reg.counter("x");
  a.add(3);
  // Forcing rehash-scale growth must not move the counter.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler" + std::to_string(i));
  }
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistry, WriteJsonIsSortedAndComplete) {
  obs::MetricsRegistry reg;
  reg.counter("b.count").add(2);
  reg.counter("a.count").add(1);
  reg.gauge("g").set(1.5);
  for (double x : {1.0, 2.0, 3.0, 4.0}) reg.histogram("h").record(x);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_LT(json.find("\"a.count\""), json.find("\"b.count\""));
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 4"), std::string::npos);
}

TEST(Obs, NullHandleResolvesNothing) {
  const obs::Obs o;
  EXPECT_FALSE(o.enabled());
  EXPECT_EQ(o.counter("x"), nullptr);
  EXPECT_EQ(o.gauge("x"), nullptr);
  EXPECT_EQ(o.histogram("x"), nullptr);
}

// ------------------------------------------------------------------ trace

TEST(TraceRecorder, LogicalClockIsMonotonePerRecord) {
  obs::TraceRecorder tr(16);
  const auto id = tr.intern("work");
  tr.span_begin(id);
  tr.instant(id, 42);
  tr.span_end(id);
  const auto records = tr.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_LT(records[0].ts, records[1].ts);
  EXPECT_LT(records[1].ts, records[2].ts);
  EXPECT_EQ(records[1].value, 42);
  EXPECT_EQ(tr.name(records[0].name), "work");
}

TEST(TraceRecorder, InternIsIdempotent) {
  obs::TraceRecorder tr(16);
  EXPECT_EQ(tr.intern("a"), tr.intern("a"));
  EXPECT_NE(tr.intern("a"), tr.intern("b"));
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDropped) {
  obs::TraceRecorder tr(4);
  const auto id = tr.intern("e");
  for (std::int64_t i = 0; i < 10; ++i) tr.instant(id, i);
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 6u);
  const auto records = tr.snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().value, 6);  // oldest retained
  EXPECT_EQ(records.back().value, 9);
}

TEST(TraceRecorder, RingBehaviorExactlyAtCapacityBoundary) {
  obs::TraceRecorder tr(4);
  const auto id = tr.intern("e");
  // One below capacity: nothing dropped.
  for (std::int64_t i = 0; i < 3; ++i) tr.instant(id, i);
  EXPECT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.dropped(), 0u);
  // Exactly at capacity: still nothing dropped, all retained in order.
  tr.instant(id, 3);
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 0u);
  auto records = tr.snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().value, 0);
  EXPECT_EQ(records.back().value, 3);
  // One past capacity: exactly the oldest record falls off.
  tr.instant(id, 4);
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 1u);
  records = tr.snapshot();
  EXPECT_EQ(records.front().value, 1);
  EXPECT_EQ(records.back().value, 4);
}

TEST(TraceRecorder, CapacityOneRingKeepsOnlyTheNewest) {
  obs::TraceRecorder tr(1);
  const auto id = tr.intern("e");
  tr.instant(id, 1);
  EXPECT_EQ(tr.dropped(), 0u);
  tr.instant(id, 2);
  EXPECT_EQ(tr.size(), 1u);
  EXPECT_EQ(tr.dropped(), 1u);
  const auto records = tr.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.front().value, 2);
}

TEST(TraceSinks, JsonlAndChromeContainTheEvents) {
  obs::TraceRecorder tr(16);
  const auto id = tr.intern("phase \"x\"");  // exercises JSON escaping
  tr.span_begin(id);
  tr.counter(id, 7);
  tr.span_end(id);
  std::ostringstream jsonl, chrome;
  obs::write_jsonl(tr, jsonl);
  obs::write_chrome_trace(tr, chrome);
  EXPECT_NE(jsonl.str().find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(jsonl.str().find("phase \\\"x\\\""), std::string::npos);
  EXPECT_NE(chrome.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.str().find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(chrome.str().find("\"displayTimeUnit\":\"ns\""), std::string::npos);
}

TEST(TraceSinks, ChromeLeadsWithProcessAndThreadMetadata) {
  obs::TraceRecorder tr(16);
  tr.set_track_name(1, "pool");
  const auto id = tr.intern("work");
  tr.span_begin(id, 1);
  tr.span_end(id, 1);
  std::ostringstream chrome;
  obs::write_chrome_trace(tr, chrome);
  const std::string text = chrome.str();
  const auto process = text.find("\"name\":\"process_name\"");
  const auto thread = text.find("\"name\":\"thread_name\"");
  ASSERT_NE(process, std::string::npos) << text;
  ASSERT_NE(thread, std::string::npos) << text;
  EXPECT_LT(process, thread);  // metadata precedes the event stream
  EXPECT_LT(thread, text.find("\"ph\":\"B\""));
  EXPECT_NE(text.find("\"args\":{\"name\":\"mcds\"}"), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"args\":{\"name\":\"pool\"}"), std::string::npos)
      << text;
}

TEST(TraceTail, FormatsTheLastNRecords) {
  obs::TraceRecorder tr(16);
  const auto id = tr.intern("phase");
  EXPECT_EQ(obs::format_trace_tail(tr, 4), "");  // empty recorder
  tr.span_begin(id);
  tr.instant(id, 7);
  tr.span_end(id);
  EXPECT_EQ(obs::format_trace_tail(tr, 0), "");  // n == 0 disables
  const auto records = tr.snapshot();
  ASSERT_EQ(records.size(), 3u);
  const std::string tail = obs::format_trace_tail(tr, 2);
  // Only the last two records survive the cut.
  EXPECT_EQ(tail.find("ts=" + std::to_string(records[0].ts) + " B"),
            std::string::npos)
      << tail;
  EXPECT_NE(tail.find("last trace events:"), std::string::npos) << tail;
  EXPECT_NE(tail.find("ts=" + std::to_string(records[1].ts) + " i phase=7"),
            std::string::npos)
      << tail;
  EXPECT_NE(tail.find("ts=" + std::to_string(records[2].ts) + " E phase"),
            std::string::npos)
      << tail;
}

TEST(ScopedTimer, EmitsBalancedSpanAndHistogramSample) {
  obs::MetricsRegistry reg;
  obs::TraceRecorder tr(16);
  const obs::Obs o{&reg, &tr};
  {
    obs::ScopedTimer t(o, "unit");
  }
  const auto records = tr.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, obs::RecordKind::kSpanBegin);
  EXPECT_EQ(records[1].kind, obs::RecordKind::kSpanEnd);
  EXPECT_EQ(reg.histograms().at("unit").acc().count(), 1u);
}

TEST(ScopedTimer, HistogramOnlyRecordsWallDuration) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("wall");
  {
    obs::ScopedTimer t(nullptr, "wall", &h);
  }
  EXPECT_EQ(h.acc().count(), 1u);
  EXPECT_GE(h.acc().min(), 0.0);
}

// -------------------------------------------------------------- null sink

TEST(NullSink, ResolversAndTimerAllocateNothing) {
  const obs::Obs o;  // null sinks
  const std::size_t before = mcds_test::g_alloc_count.load();
  for (int i = 0; i < 100; ++i) {
    obs::Counter* c = o.counter("some.metric.name");
    obs::ScopedTimer t(o, "some.span.name");
    if (c) c->add();
  }
  EXPECT_EQ(mcds_test::g_alloc_count.load(), before);
}

TEST(NullSink, ConnectorEngineRunsIdenticallyWithAndWithoutObs) {
  const auto inst = instance(300);
  const auto phase1 = core::bfs_first_fit_mis(inst.graph, 0);

  const auto plain = core::greedy_connectors(inst.graph, phase1.mis);
  obs::MetricsRegistry reg;
  obs::TraceRecorder tr;
  const obs::Obs o{&reg, &tr};
  const auto observed = core::greedy_connectors(inst.graph, phase1.mis, o);

  EXPECT_EQ(plain.first, observed.first);  // bit-identical selection
  // Every successful selection, retirement and stale re-score starts
  // with a pop (pops also count already-member skips, hence >=).
  EXPECT_GE(reg.counters().at("connector_engine.pops").value(),
            reg.counters().at("connector_engine.stale_rescores").value() +
                reg.counters().at("connector_engine.retired").value() +
                plain.first.size());
  EXPECT_GT(reg.counters().at("connector_engine.uf_finds").value(), 0u);
  EXPECT_FALSE(tr.empty());
}

// ----------------------------------------------------------- determinism

TEST(Determinism, IdenticalSeedAndPlanYieldByteIdenticalJsonl) {
  const auto inst = instance(60);
  const auto run = [&](std::string& out) {
    obs::TraceRecorder tr;
    dist::RunConfig cfg;
    cfg.plan.link.drop = 0.15;
    cfg.plan.link.max_delay = 1;
    cfg.plan.seed = 99;
    cfg.obs.trace = &tr;
    (void)dist::distributed_waf_cds(inst.graph, cfg);
    std::ostringstream os;
    obs::write_jsonl(tr, os);
    out = os.str();
  };
  std::string a, b;
  run(a);
  run(b);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsYieldDifferentJsonl) {
  const auto inst = instance(60);
  const auto run = [&](std::uint64_t seed, std::string& out) {
    obs::TraceRecorder tr;
    dist::RunConfig cfg;
    cfg.plan.link.drop = 0.15;
    cfg.plan.seed = seed;
    cfg.obs.trace = &tr;
    (void)dist::distributed_waf_cds(inst.graph, cfg);
    std::ostringstream os;
    obs::write_jsonl(tr, os);
    out = os.str();
  };
  std::string a, b;
  run(1, a);
  run(2, b);
  EXPECT_NE(a, b);
}

// -------------------------------------------------------- runtime wiring

TEST(RuntimeObs, FlushesPerProtocolCountersAndRunStatsBreakdown) {
  const auto inst = instance(80);
  obs::MetricsRegistry reg;
  dist::RunConfig cfg;
  cfg.obs.metrics = &reg;
  const auto r = dist::distributed_waf_cds(inst.graph, cfg);

  const auto& counters = reg.counters();
  EXPECT_EQ(counters.at("leader_election.rounds").value(),
            r.leader_stats.rounds);
  EXPECT_EQ(counters.at("bfs_tree.messages").value(), r.tree.stats.messages);
  EXPECT_TRUE(counters.count("mis_election.rounds") == 1);
  EXPECT_TRUE(counters.count("connector_selection.rounds") == 1);

  // Per-type breakdown sums to the message total, and per_round to both.
  ASSERT_FALSE(r.total.by_type.empty());
  std::size_t sum = 0;
  for (const auto& [t, c] : r.total.by_type) sum += c;
  EXPECT_EQ(sum, r.total.messages);
  std::size_t round_sum = 0;
  for (const std::size_t c : r.total.per_round) round_sum += c;
  EXPECT_EQ(round_sum, r.total.messages);
  EXPECT_EQ(r.total.per_round.size(), r.total.rounds);
}

TEST(RunStats, OfTypeAndMergeByType) {
  dist::RunStats a;
  a.rounds = 2;
  a.messages = 10;
  a.by_type = {{0, 6}, {2, 4}};
  a.per_round = {4, 6};
  dist::RunStats b;
  b.rounds = 1;
  b.messages = 5;
  b.by_type = {{1, 2}, {2, 3}};
  b.per_round = {5};
  a += b;
  EXPECT_EQ(a.rounds, 3u);
  EXPECT_EQ(a.messages, 15u);
  EXPECT_EQ(a.of_type(0), 6u);
  EXPECT_EQ(a.of_type(1), 2u);
  EXPECT_EQ(a.of_type(2), 7u);
  EXPECT_EQ(a.of_type(9), 0u);
  const std::vector<std::size_t> want{4, 6, 5};
  EXPECT_EQ(a.per_round, want);
}

// A protocol that never quiesces: each node echoes everything back with
// a type-specific payload, keeping typed traffic in flight forever.
class Chatter final : public dist::Protocol {
 public:
  explicit Chatter(dist::Transport& net) : net_(net) {}
  void start(NodeId self) override {
    if (self == 0) {
      net_.send(0, 1, Message{0, 7, 0, 0});  // type 7
      net_.send(0, 1, Message{0, 9, 0, 0});  // type 9
    }
  }
  void step(NodeId self, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      net_.send(self, m.from, Message{0, m.type, 0, 0});
    }
  }

 private:
  dist::Transport& net_;
};

TEST(RoundLimit, BreakdownNamesProtocolAndTypes) {
  const Graph g = path2();
  Runtime rt(g);
  rt.observe(obs::Obs{}, "chatter");
  Chatter p(rt);
  try {
    rt.run(p, 5);
    FAIL() << "expected RoundLimitError";
  } catch (const dist::RoundLimitError& e) {
    EXPECT_EQ(e.protocol(), "chatter");
    ASSERT_EQ(e.in_flight_by_type().size(), 2u);
    EXPECT_EQ(e.in_flight_by_type()[0].first, 7);
    EXPECT_EQ(e.in_flight_by_type()[0].second, 1u);
    EXPECT_EQ(e.in_flight_by_type()[1].first, 9);
    const std::string what = e.what();
    EXPECT_NE(what.find("round limit exceeded after 5 rounds"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("[chatter]"), std::string::npos) << what;
    EXPECT_NE(what.find("type 7 x1"), std::string::npos) << what;
    EXPECT_NE(what.find("type 9 x1"), std::string::npos) << what;
  }
}

TEST(RoundLimit, WhatAppendsTraceTailPostMortemWhenRecorderAttached) {
  const Graph g = path2();
  obs::TraceRecorder tr;
  obs::Obs o;
  o.trace = &tr;
  Runtime rt(g);
  rt.observe(o, "chatter");
  Chatter p(rt);
  try {
    rt.run(p, 5);
    FAIL() << "expected RoundLimitError";
  } catch (const dist::RoundLimitError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("last trace events:"), std::string::npos) << what;
    EXPECT_NE(what.find("chatter"), std::string::npos) << what;
  }
  // Without a recorder the post-mortem tail is absent (the existing
  // BreakdownNamesProtocolAndTypes run covers the message body itself).
  Runtime bare(g);
  bare.observe(obs::Obs{}, "chatter");
  Chatter q(bare);
  try {
    bare.run(q, 5);
    FAIL() << "expected RoundLimitError";
  } catch (const dist::RoundLimitError& e) {
    EXPECT_EQ(std::string(e.what()).find("last trace events:"),
              std::string::npos);
  }
}

// ---------------------------------------------------- maintenance wiring

TEST(MaintenanceObs, CountsHealActions) {
  const auto inst = instance(120, 9);
  const auto r = core::greedy_cds(inst.graph);
  obs::MetricsRegistry reg;
  obs::TraceRecorder tr;
  const obs::Obs o{&reg, &tr};
  dist::SelfHealingCds healer(inst.graph, r.cds, {}, o);

  std::vector<bool> up(inst.graph.num_nodes(), true);
  const auto intact = healer.on_churn(up);
  EXPECT_EQ(intact.action, dist::HealAction::kIntact);
  EXPECT_EQ(reg.counters().at("maintenance.intact").value(), 1u);

  // Kill one backbone node: some repair path must run and be counted.
  up[healer.cds().front()] = false;
  const auto healed = healer.on_churn(up);
  const std::uint64_t acted =
      reg.counters().at("maintenance.reconnected").value() +
      reg.counters().at("maintenance.repaired").value() +
      reg.counters().at("maintenance.rebuilt").value() +
      reg.counters().at("maintenance.unhealable").value() +
      reg.counters().at("maintenance.intact").value();
  EXPECT_EQ(acted, 2u);
  EXPECT_EQ(reg.histograms().at("maintenance.added").acc().count(), 2u);
  (void)healed;

  // Heal passes opened and closed spans.
  std::size_t begins = 0, ends = 0;
  for (const auto& rec : tr.snapshot()) {
    if (rec.kind == obs::RecordKind::kSpanBegin) ++begins;
    if (rec.kind == obs::RecordKind::kSpanEnd) ++ends;
  }
  EXPECT_EQ(begins, ends);
  EXPECT_GE(begins, 3u);  // two on_churn spans + at least one validate
}

}  // namespace
}  // namespace mcds
