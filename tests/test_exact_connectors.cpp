#include "exact/exact_connectors.hpp"

#include <gtest/gtest.h>

#include "core/greedy_connect.hpp"
#include "core/mis.hpp"
#include "graph/small_graph.hpp"
#include "test_util.hpp"
#include "udg/builder.hpp"
#include "udg/instance.hpp"

namespace mcds::exact {
namespace {

using graph::Mask;
using graph::SmallGraph;

Mask to_mask(const std::vector<graph::NodeId>& nodes) {
  Mask m = 0;
  for (const auto v : nodes) m |= Mask{1} << v;
  return m;
}

TEST(MinimumConnectors, PathMisNeedsAllGaps) {
  const SmallGraph g(test::make_path(7));
  // MIS {0, 2, 4, 6}: the three odd nodes are the unique connector set.
  const Mask c = minimum_connectors(g, to_mask({0, 2, 4, 6}));
  EXPECT_EQ(c, to_mask({1, 3, 5}));
}

TEST(MinimumConnectors, AlreadyConnectedNeedsNothing) {
  const SmallGraph g(test::make_star(6));
  EXPECT_EQ(minimum_connectors(g, to_mask({0})), 0u);
}

TEST(MinimumConnectors, ChainThroughZeroGainNodes) {
  // I = {0, 3} on a path of 4: both interior nodes have gain... node 1
  // and node 2 each touch one component only, yet both are needed —
  // exercises the chain case that positive-gain-only search would miss.
  const SmallGraph g(test::make_path(4));
  const Mask c = minimum_connectors(g, to_mask({0, 3}));
  EXPECT_EQ(c, to_mask({1, 2}));
}

TEST(MinimumConnectors, Preconditions) {
  const SmallGraph g(test::make_path(4));
  EXPECT_THROW((void)minimum_connectors(g, 0), std::invalid_argument);
  // Not dominating: {0} leaves nodes 2,3 undominated.
  EXPECT_THROW((void)minimum_connectors(g, to_mask({0})),
               std::invalid_argument);
  graph::Graph disc(4);
  disc.add_edge(0, 1);
  disc.add_edge(2, 3);
  disc.finalize();
  EXPECT_THROW(
      (void)minimum_connectors(SmallGraph(disc), to_mask({0, 1, 2, 3})),
      std::invalid_argument);
}

TEST(MinimumConnectors, WitnessConnects) {
  const SmallGraph g(test::make_grid(4, 4));
  const auto real_mis = core::lowest_id_mis(test::make_grid(4, 4));
  const Mask m = to_mask(real_mis.mis);
  const Mask c = minimum_connectors(g, m);
  EXPECT_TRUE(g.is_connected(m | c));
  EXPECT_EQ(m & c, 0u);
}

// Property sweep: the exact optimum never exceeds the greedy phase 2,
// and the witness always connects.
class ExactConnectorsRandom : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ExactConnectorsRandom, OptimumBelowGreedyAndValid) {
  udg::InstanceParams params;
  params.nodes = 13 + GetParam() % 5;
  params.side = 3.0;
  params.max_retries = 50;
  const auto inst =
      udg::generate_connected_instance(params, GetParam() * 331);
  if (!inst) GTEST_SKIP() << "no connected draw";
  const SmallGraph sg(inst->graph);
  const auto greedy = core::greedy_cds(inst->graph, 0);
  const Mask mis_mask = to_mask(greedy.phase1.mis);
  const Mask c = minimum_connectors(sg, mis_mask);
  EXPECT_TRUE(sg.is_connected(mis_mask | c));
  EXPECT_LE(static_cast<std::size_t>(graph::popcount(c)),
            greedy.connectors.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactConnectorsRandom,
                         ::testing::Range<std::uint64_t>(1, 21));

// Differential: the 128-bit solver must agree with the 64-bit one.
class ConnectorsWidthDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConnectorsWidthDifferential, SameOptimalCount) {
  udg::InstanceParams params;
  params.nodes = 12 + GetParam() % 6;
  params.side = 3.0;
  const auto inst =
      udg::generate_connected_instance(params, GetParam() * 887);
  if (!inst) GTEST_SKIP() << "no connected draw";
  const auto mis = core::bfs_first_fit_mis(inst->graph, 0);
  const Mask m64 = to_mask(mis.mis);
  graph::Mask128 m128{m64};
  const SmallGraph g64(inst->graph);
  const graph::SmallGraph128 g128(inst->graph);
  EXPECT_EQ(minimum_connector_count(g64, m64),
            minimum_connector_count(g128, m128));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConnectorsWidthDifferential,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace mcds::exact
