#include "udg/mobility.hpp"

#include <gtest/gtest.h>

namespace mcds::udg {
namespace {

WaypointParams small_field() {
  WaypointParams p;
  p.side = 5.0;
  p.min_speed = 0.1;
  p.max_speed = 0.3;
  p.pause_ticks = 1;
  return p;
}

TEST(RandomWaypoint, Preconditions) {
  EXPECT_THROW(RandomWaypoint(0, small_field(), 1), std::invalid_argument);
  WaypointParams bad_speed = small_field();
  bad_speed.min_speed = 0.0;
  EXPECT_THROW(RandomWaypoint(3, bad_speed, 1), std::invalid_argument);
  WaypointParams inverted = small_field();
  inverted.min_speed = 0.5;
  inverted.max_speed = 0.1;
  EXPECT_THROW(RandomWaypoint(3, inverted, 1), std::invalid_argument);
  WaypointParams bad_side = small_field();
  bad_side.side = 0.0;
  EXPECT_THROW(RandomWaypoint(3, bad_side, 1), std::invalid_argument);
}

TEST(RandomWaypoint, StaysInsideField) {
  RandomWaypoint model(30, small_field(), 7);
  for (int tick = 0; tick < 500; ++tick) {
    model.step();
    for (const auto p : model.positions()) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 5.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 5.0);
    }
  }
  EXPECT_EQ(model.ticks(), 500u);
}

TEST(RandomWaypoint, SpeedIsBounded) {
  RandomWaypoint model(20, small_field(), 9);
  auto prev = model.positions();
  for (int tick = 0; tick < 200; ++tick) {
    model.step();
    const auto& cur = model.positions();
    for (std::size_t i = 0; i < cur.size(); ++i) {
      EXPECT_LE(geom::dist(prev[i], cur[i]), 0.3 + 1e-12) << "node " << i;
    }
    prev = cur;
  }
}

TEST(RandomWaypoint, NodesActuallyMove) {
  RandomWaypoint model(10, small_field(), 11);
  const auto start = model.positions();
  for (int tick = 0; tick < 100; ++tick) model.step();
  double total = 0.0;
  for (std::size_t i = 0; i < start.size(); ++i) {
    total += geom::dist(start[i], model.positions()[i]);
  }
  EXPECT_GT(total, 1.0);  // someone went somewhere
}

TEST(RandomWaypoint, DeterministicPerSeed) {
  RandomWaypoint a(15, small_field(), 42), b(15, small_field(), 42);
  for (int tick = 0; tick < 50; ++tick) {
    a.step();
    b.step();
  }
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_EQ(a.positions()[i].x, b.positions()[i].x);
    EXPECT_EQ(a.positions()[i].y, b.positions()[i].y);
  }
}

TEST(RandomWaypoint, PausesAtWaypoints) {
  // With a huge pause and tiny field, nodes should regularly be exactly
  // stationary for consecutive ticks.
  WaypointParams p = small_field();
  p.pause_ticks = 5;
  p.side = 1.0;
  p.min_speed = 0.4;
  p.max_speed = 0.5;
  RandomWaypoint model(5, p, 3);
  std::size_t stationary = 0;
  auto prev = model.positions();
  for (int tick = 0; tick < 200; ++tick) {
    model.step();
    for (std::size_t i = 0; i < prev.size(); ++i) {
      if (geom::dist(prev[i], model.positions()[i]) == 0.0) ++stationary;
    }
    prev = model.positions();
  }
  EXPECT_GT(stationary, 50u);
}

}  // namespace
}  // namespace mcds::udg
