#include "udg/mobility.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/delta_graph.hpp"
#include "udg/builder.hpp"

namespace mcds::udg {
namespace {

void expect_same_csr(const graph::Graph& got, const graph::Graph& want) {
  const auto go = got.offsets();
  const auto wo = want.offsets();
  ASSERT_TRUE(std::equal(go.begin(), go.end(), wo.begin(), wo.end()));
  const auto gn = got.flat_neighbors();
  const auto wn = want.flat_neighbors();
  ASSERT_TRUE(std::equal(gn.begin(), gn.end(), wn.begin(), wn.end()));
}

WaypointParams small_field() {
  WaypointParams p;
  p.side = 5.0;
  p.min_speed = 0.1;
  p.max_speed = 0.3;
  p.pause_ticks = 1;
  return p;
}

TEST(RandomWaypoint, Preconditions) {
  EXPECT_THROW(RandomWaypoint(0, small_field(), 1), std::invalid_argument);
  WaypointParams bad_speed = small_field();
  bad_speed.min_speed = 0.0;
  EXPECT_THROW(RandomWaypoint(3, bad_speed, 1), std::invalid_argument);
  WaypointParams inverted = small_field();
  inverted.min_speed = 0.5;
  inverted.max_speed = 0.1;
  EXPECT_THROW(RandomWaypoint(3, inverted, 1), std::invalid_argument);
  WaypointParams bad_side = small_field();
  bad_side.side = 0.0;
  EXPECT_THROW(RandomWaypoint(3, bad_side, 1), std::invalid_argument);
}

TEST(RandomWaypoint, StaysInsideField) {
  RandomWaypoint model(30, small_field(), 7);
  for (int tick = 0; tick < 500; ++tick) {
    model.step();
    for (const auto p : model.positions()) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 5.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 5.0);
    }
  }
  EXPECT_EQ(model.ticks(), 500u);
}

TEST(RandomWaypoint, SpeedIsBounded) {
  RandomWaypoint model(20, small_field(), 9);
  auto prev = model.positions();
  for (int tick = 0; tick < 200; ++tick) {
    model.step();
    const auto& cur = model.positions();
    for (std::size_t i = 0; i < cur.size(); ++i) {
      EXPECT_LE(geom::dist(prev[i], cur[i]), 0.3 + 1e-12) << "node " << i;
    }
    prev = cur;
  }
}

TEST(RandomWaypoint, NodesActuallyMove) {
  RandomWaypoint model(10, small_field(), 11);
  const auto start = model.positions();
  for (int tick = 0; tick < 100; ++tick) model.step();
  double total = 0.0;
  for (std::size_t i = 0; i < start.size(); ++i) {
    total += geom::dist(start[i], model.positions()[i]);
  }
  EXPECT_GT(total, 1.0);  // someone went somewhere
}

TEST(RandomWaypoint, DeterministicPerSeed) {
  RandomWaypoint a(15, small_field(), 42), b(15, small_field(), 42);
  for (int tick = 0; tick < 50; ++tick) {
    a.step();
    b.step();
  }
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_EQ(a.positions()[i].x, b.positions()[i].x);
    EXPECT_EQ(a.positions()[i].y, b.positions()[i].y);
  }
}

TEST(DynChurnSchedule, TopologyMatchesBatchBuilderPerEpoch) {
  // The persistent-grid schedule must hand out the same CSR bytes the
  // one-shot batch builder produces at each epoch's positions.
  const WaypointParams wp = small_field();
  RandomWaypoint scheduled(18, wp, 21);
  RandomWaypoint shadow(18, wp, 21);
  const auto trace = churn_schedule(scheduled, 1.5, 8, 3, {0.2, 0.3}, 4);
  ASSERT_EQ(trace.size(), 8u);
  for (const ChurnEpoch& epoch : trace) {
    for (int t = 0; t < 3; ++t) shadow.step();
    expect_same_csr(epoch.topology, build_udg(shadow.positions(), 1.5));
  }
}

TEST(DynChurnSchedule, DeltasReplayBetweenEpochs) {
  // epoch[e].delta applied to epoch[e-1].topology must reproduce
  // epoch[e].topology exactly (and epoch[0].delta bridges from the
  // initial positions).
  const WaypointParams wp = small_field();
  RandomWaypoint motion(25, wp, 33);
  const graph::Graph initial = build_udg(motion.positions(), 1.2);
  const auto trace = churn_schedule(motion, 1.2, 6, 2, {0.1, 0.3}, 8);
  const graph::Graph* prev = &initial;
  for (const ChurnEpoch& epoch : trace) {
    graph::DeltaGraph replay(*prev);
    replay.apply(epoch.delta);
    expect_same_csr(replay.materialize(), epoch.topology);
    prev = &epoch.topology;
  }
}

TEST(RandomWaypoint, PausesAtWaypoints) {
  // With a huge pause and tiny field, nodes should regularly be exactly
  // stationary for consecutive ticks.
  WaypointParams p = small_field();
  p.pause_ticks = 5;
  p.side = 1.0;
  p.min_speed = 0.4;
  p.max_speed = 0.5;
  RandomWaypoint model(5, p, 3);
  std::size_t stationary = 0;
  auto prev = model.positions();
  for (int tick = 0; tick < 200; ++tick) {
    model.step();
    for (std::size_t i = 0; i < prev.size(); ++i) {
      if (geom::dist(prev[i], model.positions()[i]) == 0.0) ++stationary;
    }
    prev = model.positions();
  }
  EXPECT_GT(stationary, 50u);
}

}  // namespace
}  // namespace mcds::udg
