#include "sim/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mcds::sim {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().add("alpha").add(3.14159, 2);
  t.row().add("b").add(std::size_t{42});
  std::ostringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.row().add("x,y").add("say \"hi\"");
  std::ostringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, UsageErrors) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
  Table t({"only"});
  EXPECT_THROW(t.add("no row yet"), std::logic_error);
  t.row().add("ok");
  EXPECT_THROW(t.add("overflow"), std::logic_error);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, IncompleteRowDetectedOnNextRow) {
  Table t({"a", "b"});
  t.row().add("only one");
  EXPECT_THROW(t.row(), std::logic_error);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(Table, IntColumns) {
  Table t({"i"});
  t.row().add(-7);
  std::ostringstream ss;
  t.print(ss);
  EXPECT_NE(ss.str().find("-7"), std::string::npos);
}

}  // namespace
}  // namespace mcds::sim
