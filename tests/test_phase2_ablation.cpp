#include "baselines/phase2_ablation.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/greedy_connect.hpp"
#include "core/validate.hpp"
#include "test_util.hpp"
#include "udg/instance.hpp"

namespace mcds::baselines {
namespace {

constexpr ConnectorPolicy kAllPolicies[] = {
    ConnectorPolicy::kTreeParent,        ConnectorPolicy::kMaxGain,
    ConnectorPolicy::kFirstPositiveGain, ConnectorPolicy::kRandomPositiveGain,
    ConnectorPolicy::kShortestPath,
};

TEST(Phase2Ablation, PolicyNames) {
  for (const auto p : kAllPolicies) {
    EXPECT_NE(std::string(to_string(p)), "unknown");
  }
}

TEST(Phase2Ablation, AllPoliciesShareTheSameMis) {
  udg::InstanceParams params;
  params.nodes = 80;
  params.side = 8.0;
  const auto inst = udg::generate_largest_component_instance(params, 5);
  std::vector<NodeId> reference;
  for (const auto p : kAllPolicies) {
    const auto r = cds_with_policy(inst.graph, p);
    if (reference.empty()) {
      reference = r.phase1.mis;
    } else {
      EXPECT_EQ(r.phase1.mis, reference) << to_string(p);
    }
  }
}

TEST(Phase2Ablation, MaxGainMatchesGreedyEntryPoint) {
  udg::InstanceParams params;
  params.nodes = 90;
  params.side = 9.0;
  const auto inst = udg::generate_largest_component_instance(params, 8);
  const auto policy = cds_with_policy(inst.graph, ConnectorPolicy::kMaxGain);
  const auto direct = core::greedy_cds(inst.graph, 0);
  EXPECT_EQ(policy.cds, direct.cds);
}

TEST(Phase2Ablation, RandomPolicyIsSeedDeterministic) {
  udg::InstanceParams params;
  params.nodes = 70;
  params.side = 7.5;
  const auto inst = udg::generate_largest_component_instance(params, 13);
  const auto a = cds_with_policy(inst.graph,
                                 ConnectorPolicy::kRandomPositiveGain, 0, 42);
  const auto b = cds_with_policy(inst.graph,
                                 ConnectorPolicy::kRandomPositiveGain, 0, 42);
  EXPECT_EQ(a.cds, b.cds);
}

TEST(Phase2Ablation, SingleNodeGraph) {
  const graph::Graph g(1);
  for (const auto p : kAllPolicies) {
    const auto r = cds_with_policy(g, p);
    EXPECT_EQ(r.cds, (std::vector<NodeId>{0})) << to_string(p);
  }
}

// Property sweep: every policy yields a valid CDS; max-gain never loses
// to first-positive by more than it gains elsewhere (weak sanity: both
// stay within |I| - 1 connectors).
class PolicyValidity
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PolicyValidity, ValidCdsAndBoundedConnectors) {
  const auto [pi, seed] = GetParam();
  const auto policy = kAllPolicies[pi];
  udg::InstanceParams params;
  params.nodes = 90;
  params.side = 6.0 + static_cast<double>(seed % 3) * 2.0;
  const auto inst =
      udg::generate_largest_component_instance(params, seed * 19 + 3);
  const auto r = cds_with_policy(inst.graph, policy, 0, seed);
  EXPECT_TRUE(core::is_cds(inst.graph, r.cds)) << to_string(policy);
  // Gain-driven rules merge at least one component pair per connector,
  // so they never use more than |I| - 1 connectors. (Tree parents and
  // shortest-path interiors have no such per-node guarantee.)
  if (!r.phase1.mis.empty() &&
      (policy == ConnectorPolicy::kMaxGain ||
       policy == ConnectorPolicy::kFirstPositiveGain ||
       policy == ConnectorPolicy::kRandomPositiveGain)) {
    EXPECT_LE(r.connectors.size(), r.phase1.mis.size() - 1)
        << to_string(policy);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicySeeds, PolicyValidity,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Range<std::uint64_t>(1, 9)));

}  // namespace
}  // namespace mcds::baselines
