#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "geom/closest.hpp"
#include "packing/fig1.hpp"
#include "packing/fig2.hpp"

namespace mcds::packing {
namespace {

TEST(Fig1, TwoStarAchievesPhi2) {
  const TightInstance inst = fig1_two_star();
  EXPECT_EQ(inst.centers.size(), 2u);
  EXPECT_EQ(inst.independent.size(), core::bounds::phi(2));
  EXPECT_TRUE(verify_tight_instance(inst));
}

TEST(Fig1, ThreeStarAchievesPhi3) {
  const TightInstance inst = fig1_three_star();
  EXPECT_EQ(inst.centers.size(), 3u);
  EXPECT_EQ(inst.independent.size(), core::bounds::phi(3));
  EXPECT_TRUE(verify_tight_instance(inst));
}

class Fig1EpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(Fig1EpsSweep, ValidAcrossEpsilons) {
  const double eps = GetParam();
  EXPECT_TRUE(verify_tight_instance(fig1_two_star(eps))) << eps;
  EXPECT_TRUE(verify_tight_instance(fig1_three_star(eps))) << eps;
  // Strict independence (distance > 1, not >= 1).
  EXPECT_GT(geom::closest_pair_distance(fig1_three_star(eps).independent),
            1.0);
}

INSTANTIATE_TEST_SUITE_P(Eps, Fig1EpsSweep,
                         ::testing::Values(1e-4, 1e-3, 1e-2, 0.03, 0.049));

TEST(Fig1, RejectsBadEps) {
  EXPECT_THROW((void)fig1_two_star(0.0), std::invalid_argument);
  EXPECT_THROW((void)fig1_two_star(-0.01), std::invalid_argument);
  EXPECT_THROW((void)fig1_three_star(0.06), std::invalid_argument);
}

TEST(Fig2, CountIsExactlyThreeNPlusThree) {
  for (std::size_t n = 3; n <= 20; ++n) {
    const TightInstance inst = fig2_linear(n);
    EXPECT_EQ(inst.centers.size(), n);
    EXPECT_EQ(inst.independent.size(), 3 * n + 3) << "n=" << n;
    EXPECT_TRUE(verify_tight_instance(inst)) << "n=" << n;
  }
}

TEST(Fig2, CentersAreUnitSpacedCollinear) {
  const TightInstance inst = fig2_linear(6);
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_DOUBLE_EQ(inst.centers[k].x, static_cast<double>(k));
    EXPECT_DOUBLE_EQ(inst.centers[k].y, 0.0);
  }
}

TEST(Fig2, MatchesFig1AtNEqualsThree) {
  // For n = 3 the linear instance is a 3-star: both constructions
  // achieve the same count φ_3 = 12.
  EXPECT_EQ(fig2_linear(3).independent.size(),
            fig1_three_star().independent.size());
}

class Fig2EpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(Fig2EpsSweep, ValidAcrossEpsilons) {
  for (std::size_t n : {3u, 5u, 10u}) {
    const TightInstance inst = fig2_linear(n, GetParam());
    EXPECT_TRUE(verify_tight_instance(inst))
        << "n=" << n << " eps=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Eps, Fig2EpsSweep,
                         ::testing::Values(1e-4, 1e-3, 1e-2, 0.039));

TEST(Fig2, Preconditions) {
  EXPECT_THROW((void)fig2_linear(2), std::invalid_argument);
  EXPECT_THROW((void)fig2_linear(5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)fig2_linear(5, 0.05), std::invalid_argument);
}

TEST(Fig2, StaysBelowTheorem6UpperBound) {
  // Theorem 6: at most 11n/3 + 1 independent points in the neighborhood
  // of n connected points; the construction gives 3n + 3 < 11n/3 + 1
  // for n > 6 and equals the φ_n star bound pattern otherwise.
  for (std::size_t n = 3; n <= 30; ++n) {
    const double upper = 11.0 * static_cast<double>(n) / 3.0 + 1.0;
    EXPECT_LE(static_cast<double>(fig2_linear(n).independent.size()),
              upper + 1e-9);
  }
}

}  // namespace
}  // namespace mcds::packing
