#include "udg/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "udg/deployment.hpp"

namespace mcds::udg {
namespace {

using geom::Vec2;

TEST(PointsIo, RoundTripPreservesExactValues) {
  sim::Rng rng(1);
  const auto original = deploy_uniform_square(50, 9.0, rng);
  std::stringstream ss;
  save_points(ss, original);
  const auto loaded = load_points(ss);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    // Full double precision: bit-exact round trip.
    EXPECT_EQ(loaded[i].x, original[i].x) << i;
    EXPECT_EQ(loaded[i].y, original[i].y) << i;
  }
}

TEST(PointsIo, EmptySetRoundTrips) {
  std::stringstream ss;
  save_points(ss, {});
  EXPECT_TRUE(load_points(ss).empty());
}

TEST(PointsIo, RejectsBadMagic) {
  std::stringstream ss("not-points 1\n2\n0 0\n1 1\n");
  EXPECT_THROW((void)load_points(ss), std::runtime_error);
}

TEST(PointsIo, RejectsBadVersion) {
  std::stringstream ss("mcds-points 99\n1\n0 0\n");
  EXPECT_THROW((void)load_points(ss), std::runtime_error);
}

TEST(PointsIo, RejectsTruncatedData) {
  std::stringstream ss("mcds-points 1\n3\n0 0\n1 1\n");
  EXPECT_THROW((void)load_points(ss), std::runtime_error);
}

TEST(PointsIo, RejectsNonNumericCoordinates) {
  std::stringstream ss("mcds-points 1\n1\nfoo bar\n");
  EXPECT_THROW((void)load_points(ss), std::runtime_error);
}

TEST(PointsIo, FileRoundTrip) {
  const std::string path = "/tmp/mcds_io_test.pts";
  const std::vector<Vec2> pts{{1.25, -3.5}, {0.0, 0.0}};
  save_points_file(path, pts);
  const auto loaded = load_points_file(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].x, 1.25);
  EXPECT_EQ(loaded[1].y, 0.0);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_points_file(path), std::runtime_error);
  EXPECT_THROW(save_points_file("/nonexistent-dir/x.pts", pts),
               std::runtime_error);
}

}  // namespace
}  // namespace mcds::udg
