#include <gtest/gtest.h>

#include "baselines/guha_khuller.hpp"
#include "baselines/li_thai.hpp"
#include "baselines/prune.hpp"
#include "baselines/stojmenovic.hpp"
#include "core/bounds.hpp"
#include "core/greedy_connect.hpp"
#include "core/validate.hpp"
#include "core/waf.hpp"
#include "dist/distributed_cds.hpp"
#include "exact/exact_cds.hpp"
#include "exact/exact_mis.hpp"
#include "graph/small_graph.hpp"
#include "graph/subgraph.hpp"
#include "packing/fig2.hpp"
#include "udg/builder.hpp"
#include "udg/instance.hpp"

namespace mcds {
namespace {

using graph::Graph;
using graph::NodeId;

// End-to-end pipeline over one instance: every construction yields a
// valid CDS and the proven size orderings hold.
class Pipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Pipeline, AllAlgorithmsProduceValidCds) {
  udg::InstanceParams params;
  params.nodes = 120;
  params.side = 10.0;
  const auto inst =
      udg::generate_largest_component_instance(params, GetParam() * 97);
  const Graph& g = inst.graph;

  const auto waf = core::waf_cds(g, 0);
  const auto greedy = core::greedy_cds(g, 0);
  const auto gk = baselines::guha_khuller_cds(g);
  const auto sto = baselines::stojmenovic_cds(g);
  const auto lt = baselines::li_thai_cds(g);
  const auto dist = dist::distributed_waf_cds(g);

  for (const auto* cds :
       {&waf.cds, &greedy.cds, &gk, &sto, &lt, &dist.cds}) {
    EXPECT_TRUE(core::is_cds(g, *cds));
  }

  // Both two-phased algorithms share phase 1, so their dominator sets
  // are identical and the greedy phase-2 never uses more connectors
  // than components minus one.
  EXPECT_EQ(waf.phase1.mis, greedy.phase1.mis);
  EXPECT_LE(greedy.connectors.size(), waf.phase1.mis.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Pipeline,
                         ::testing::Range<std::uint64_t>(1, 11));

// Corollary 7 validated end-to-end on exhaustively solved instances.
class Corollary7 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Corollary7, AlphaBoundedByGammaC) {
  udg::InstanceParams params;
  params.nodes = 14;
  params.side = 3.0;
  const auto inst =
      udg::generate_connected_instance(params, GetParam() * 139);
  if (!inst) GTEST_SKIP() << "no connected draw";
  const graph::SmallGraph sg(inst->graph);
  const std::size_t alpha = exact::independence_number(sg);
  const std::size_t gamma_c = exact::connected_domination_number(sg);
  EXPECT_LE(static_cast<double>(alpha),
            core::bounds::alpha_upper_bound(gamma_c) + 1e-9)
      << "alpha=" << alpha << " gamma_c=" << gamma_c;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Corollary7,
                         ::testing::Range<std::uint64_t>(1, 31));

// The Figure 2 point set, fed back through the UDG machinery: its
// centers form a path whose gamma_c is n-2, and the witness points are
// an independent set of the UDG over (centers ∪ witness)... the witness
// alone must be independent in UDG terms.
TEST(Fig2Integration, WitnessIsUdgIndependentSet) {
  const auto inst = packing::fig2_linear(8);
  auto all = inst.centers;
  const auto base = static_cast<NodeId>(all.size());
  all.insert(all.end(), inst.independent.begin(), inst.independent.end());
  const Graph g = udg::build_udg(all);
  std::vector<NodeId> witness;
  for (NodeId i = base; i < all.size(); ++i) witness.push_back(i);
  EXPECT_TRUE(core::is_independent_set(g, witness));

  // The centers form a connected path in the UDG.
  std::vector<NodeId> centers;
  for (NodeId i = 0; i < base; ++i) centers.push_back(i);
  EXPECT_TRUE(graph::is_connected_subset(g, centers));
}

// Pruning never increases size and preserves validity for every
// construction.
TEST(PruneIntegration, PruningImprovesOrKeepsAllAlgorithms) {
  udg::InstanceParams params;
  params.nodes = 90;
  params.side = 8.0;
  const auto inst = udg::generate_largest_component_instance(params, 1234);
  const Graph& g = inst.graph;
  const auto waf = core::waf_cds(g, 0).cds;
  const auto greedy = core::greedy_cds(g, 0).cds;
  for (const auto& cds : {waf, greedy}) {
    const auto pruned = baselines::prune_cds(g, cds);
    EXPECT_TRUE(core::is_cds(g, pruned));
    EXPECT_LE(pruned.size(), cds.size());
  }
}

// Ratio ordering on exhaustively solved instances: the measured sizes
// respect OPT <= greedy-bound and OPT <= waf-bound, and OPT is reached
// or approached by pruning.
class SmallInstanceOrdering : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SmallInstanceOrdering, SizesRespectOpt) {
  udg::InstanceParams params;
  params.nodes = 15;
  params.side = 3.2;
  const auto inst =
      udg::generate_connected_instance(params, GetParam() * 211 + 7);
  if (!inst) GTEST_SKIP() << "no connected draw";
  const Graph& g = inst->graph;
  const graph::SmallGraph sg(g);
  const std::size_t opt = exact::connected_domination_number(sg);

  const auto waf = core::waf_cds(g, 0).cds;
  const auto greedy = core::greedy_cds(g, 0).cds;
  EXPECT_GE(waf.size(), opt);
  EXPECT_GE(greedy.size(), opt);
  EXPECT_GE(baselines::prune_cds(g, waf).size(), opt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallInstanceOrdering,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace mcds
