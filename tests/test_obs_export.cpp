// Tests for the telemetry export pipeline (src/obs/export.*) and the
// phase profiler (src/obs/profile.*): Prometheus text exposition
// (naming, sanitization, type lines, summary quantiles), the periodic
// SnapshotSink (every-N ticking, manual snapshots, byte-determinism
// without wall-time stamps), the tick_snapshot() null-sink helper, and
// ProfileTree's inclusive/exclusive math, folded-stack output, track
// grouping and truncated/unmatched span accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace mcds {
namespace {

// ------------------------------------------------------------ prometheus

TEST(Prometheus, CountersGaugesAndSummaries) {
  obs::MetricsRegistry reg;
  reg.counter("dist.messages").add(42);
  reg.gauge("runtime.in_flight").set(1.5);
  for (const double x : {1.0, 2.0, 3.0, 4.0}) {
    reg.histogram("dyn.repair_scope").record(x);
  }
  std::ostringstream os;
  obs::export_prometheus(reg, os);
  const std::string text = os.str();

  EXPECT_NE(text.find("# TYPE mcds_dist_messages_total counter\n"
                      "mcds_dist_messages_total 42\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE mcds_runtime_in_flight gauge\n"
                      "mcds_runtime_in_flight 1.5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE mcds_dyn_repair_scope summary\n"),
            std::string::npos)
      << text;
  // Exact quantiles below five observations: p50 of {1,2,3,4} is 2.5.
  EXPECT_NE(text.find("mcds_dyn_repair_scope{quantile=\"0.5\"} 2.5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mcds_dyn_repair_scope_sum 10\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mcds_dyn_repair_scope_count 4\n"), std::string::npos)
      << text;
}

TEST(Prometheus, SanitizesNamesAndSortsFamilies) {
  obs::MetricsRegistry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(1);
  reg.counter("weird-name %x").add(7);
  std::ostringstream os;
  obs::export_prometheus(reg, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("mcds_weird_name__x_total 7"), std::string::npos)
      << text;
  EXPECT_LT(text.find("mcds_a_first_total"), text.find("mcds_weird_name"));
  EXPECT_LT(text.find("mcds_weird_name"), text.find("mcds_z_last_total"));
}

TEST(Prometheus, EmptyRegistryWritesNothing) {
  obs::MetricsRegistry reg;
  std::ostringstream os;
  obs::export_prometheus(reg, os);
  EXPECT_TRUE(os.str().empty());
}

// ---------------------------------------------------------- snapshot sink

TEST(SnapshotSink, TicksEveryNAndCountsSequence) {
  obs::MetricsRegistry reg;
  reg.counter("events").add(3);
  std::ostringstream os;
  obs::SnapshotSink sink(os, /*every=*/2, /*stamp_wall_time=*/false);
  for (int i = 0; i < 5; ++i) sink.tick(reg);
  EXPECT_EQ(sink.events(), 5u);
  EXPECT_EQ(sink.snapshots(), 2u);  // at events 2 and 4
  sink.snapshot(reg);               // manual flush
  EXPECT_EQ(sink.snapshots(), 3u);

  const std::string text = os.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("{\"seq\":0,\"events\":2,\"counters\":{\"events\":3}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("{\"seq\":1,\"events\":4,"), std::string::npos) << text;
  EXPECT_NE(text.find("{\"seq\":2,\"events\":5,"), std::string::npos) << text;
  // Determinism contract: no wall-clock stamp when disabled.
  EXPECT_EQ(text.find("\"time\""), std::string::npos) << text;
}

TEST(SnapshotSink, EveryZeroMeansManualOnly) {
  obs::MetricsRegistry reg;
  std::ostringstream os;
  obs::SnapshotSink sink(os, /*every=*/0, /*stamp_wall_time=*/false);
  for (int i = 0; i < 10; ++i) sink.tick(reg);
  EXPECT_EQ(sink.events(), 10u);
  EXPECT_EQ(sink.snapshots(), 0u);
  EXPECT_TRUE(os.str().empty());
  sink.snapshot(reg);
  EXPECT_EQ(sink.snapshots(), 1u);
  EXPECT_FALSE(os.str().empty());
}

TEST(SnapshotSink, StampsIso8601WallTimeWhenEnabled) {
  obs::MetricsRegistry reg;
  std::ostringstream os;
  obs::SnapshotSink sink(os, 1, /*stamp_wall_time=*/true);
  sink.tick(reg);
  const std::string text = os.str();
  const auto at = text.find("\"time\":\"");
  ASSERT_NE(at, std::string::npos) << text;
  // "YYYY-MM-DDThh:mm:ssZ" — spot-check shape, not the actual instant.
  const std::string stamp = text.substr(at + 8, 20);
  ASSERT_EQ(stamp.size(), 20u);
  EXPECT_EQ(stamp[4], '-');
  EXPECT_EQ(stamp[10], 'T');
  EXPECT_EQ(stamp[19], 'Z');
}

TEST(SnapshotSink, SnapshotsCaptureFullRegistryState) {
  obs::MetricsRegistry reg;
  reg.counter("c").add(2);
  reg.gauge("g").set(0.5);
  reg.histogram("h").record(3.0);
  std::ostringstream os;
  obs::SnapshotSink sink(os, 1, false);
  sink.tick(reg);
  reg.counter("c").add(5);
  sink.tick(reg);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"counters\":{\"c\":2}"), std::string::npos) << text;
  EXPECT_NE(text.find("\"counters\":{\"c\":7}"), std::string::npos) << text;
  EXPECT_NE(text.find("\"gauges\":{\"g\":0.5}"), std::string::npos) << text;
  EXPECT_NE(text.find("\"h\":{\"count\":1,\"mean\":3"), std::string::npos)
      << text;
}

TEST(TickSnapshot, NoOpUnlessBothSinksAttached) {
  obs::MetricsRegistry reg;
  std::ostringstream os;
  obs::SnapshotSink sink(os, 1, false);

  obs::Obs none;
  obs::tick_snapshot(none);  // null handle: must be safe

  obs::Obs only_sink;
  only_sink.snapshots = &sink;
  obs::tick_snapshot(only_sink);  // no registry to snapshot
  EXPECT_EQ(sink.events(), 0u);

  obs::Obs both;
  both.snapshots = &sink;
  both.metrics = &reg;
  obs::tick_snapshot(both);
  EXPECT_EQ(sink.events(), 1u);
  EXPECT_EQ(sink.snapshots(), 1u);
}

// -------------------------------------------------------- phase profiler

TEST(ProfileTree, InclusiveExclusiveMathOnNestedSpans) {
  obs::TraceRecorder tr(64);  // kLogical: ts = 0,1,2,...
  const auto a = tr.intern("a");
  const auto b = tr.intern("b");
  const auto c = tr.intern("c");
  tr.span_begin(a);  // ts 0
  tr.span_begin(b);  // ts 1
  tr.span_end(b);    // ts 2
  tr.span_begin(c);  // ts 3
  tr.span_end(c);    // ts 4
  tr.span_end(a);    // ts 5

  const auto tree = obs::ProfileTree::build(tr);
  EXPECT_EQ(tree.truncated(), 0u);
  EXPECT_EQ(tree.unmatched(), 0u);
  const auto& na = tree.root().children.at("a");
  EXPECT_EQ(na.inclusive, 5u);
  EXPECT_EQ(na.exclusive, 3u);  // 5 minus the two enclosed children
  EXPECT_EQ(na.count, 1u);
  EXPECT_EQ(na.children.at("b").inclusive, 1u);
  EXPECT_EQ(na.children.at("b").exclusive, 1u);
  EXPECT_EQ(na.children.at("c").count, 1u);

  std::ostringstream folded;
  tree.write_folded(folded);
  EXPECT_EQ(folded.str(), "a 3\na;b 1\na;c 1\n");

  std::ostringstream text;
  tree.write_tree(text);
  EXPECT_NE(text.str().find("phase profile (inclusive/exclusive, 5 total)"),
            std::string::npos)
      << text.str();
  EXPECT_NE(text.str().find("a  incl=5 excl=3 count=1 (100.0%)"),
            std::string::npos)
      << text.str();
  EXPECT_NE(text.str().find("b  incl=1 excl=1 count=1 (20.0%)"),
            std::string::npos)
      << text.str();
}

TEST(ProfileTree, RepeatedVisitsAggregateByPath) {
  obs::TraceRecorder tr(64);
  const auto a = tr.intern("a");
  const auto b = tr.intern("b");
  for (int i = 0; i < 3; ++i) {
    tr.span_begin(a);
    tr.span_begin(b);
    tr.span_end(b);
    tr.span_end(a);
  }
  const auto tree = obs::ProfileTree::build(tr);
  const auto& na = tree.root().children.at("a");
  EXPECT_EQ(na.count, 3u);
  EXPECT_EQ(na.children.at("b").count, 3u);
  EXPECT_EQ(na.inclusive, 9u);  // three visits of inclusive 3 each
  EXPECT_EQ(na.exclusive, 6u);
}

TEST(ProfileTree, NamedTracksPrefixTheirStacks) {
  obs::TraceRecorder tr(64);
  tr.set_track_name(1, "pool");
  const auto w = tr.intern("work");
  tr.span_begin(w, /*tid=*/1);
  tr.span_end(w, /*tid=*/1);
  const auto u = tr.intern("chunk");
  tr.span_begin(u, /*tid=*/2);  // unnamed track falls back to tid<k>
  tr.span_end(u, /*tid=*/2);

  const auto tree = obs::ProfileTree::build(tr);
  std::ostringstream folded;
  tree.write_folded(folded);
  EXPECT_EQ(folded.str(), "pool;work 1\ntid2;chunk 1\n");
}

TEST(ProfileTree, CountsTruncatedAndUnmatchedSpans) {
  obs::TraceRecorder tr(64);
  const auto a = tr.intern("open");
  const auto z = tr.intern("orphan");
  tr.span_end(z);    // end with no begin: unmatched
  tr.span_begin(a);  // never ended: truncated at the snapshot edge
  tr.instant(z, 1);  // advances the last timestamp seen
  const auto tree = obs::ProfileTree::build(tr);
  EXPECT_EQ(tree.unmatched(), 1u);
  EXPECT_EQ(tree.truncated(), 1u);
  const auto& na = tree.root().children.at("open");
  EXPECT_EQ(na.count, 1u);
  EXPECT_GE(na.inclusive, 1u);  // force-closed at the instant's timestamp
  EXPECT_EQ(tree.root().children.count("orphan"), 0u);
}

TEST(ProfileTree, EmptyRecorderYieldsEmptyTree) {
  obs::TraceRecorder tr(8);
  const auto tree = obs::ProfileTree::build(tr);
  EXPECT_TRUE(tree.root().children.empty());
  std::ostringstream folded;
  tree.write_folded(folded);
  EXPECT_TRUE(folded.str().empty());
}

}  // namespace
}  // namespace mcds
