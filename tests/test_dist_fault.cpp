#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "dist/alzoubi_protocol.hpp"
#include "dist/distributed_cds.hpp"
#include "dist/fault.hpp"
#include "dist/greedy_protocol.hpp"
#include "dist/leader_election.hpp"
#include "dist/mis_election.hpp"
#include "dist/reliable_link.hpp"
#include "dist/runtime.hpp"
#include "test_util.hpp"
#include "udg/instance.hpp"

namespace {

using mcds::graph::Graph;
using mcds::graph::NodeId;
using namespace mcds::dist;

// Floods a token from node 0; every node rebroadcasts the first copy it
// hears. Event-driven, so it exercises the runtime without depending on
// any protocol under test.
class FloodProbe final : public Protocol {
 public:
  explicit FloodProbe(Transport& net)
      : net_(net), seen_(net.topology().num_nodes(), false) {}

  void start(NodeId self) override {
    if (self == 0) {
      seen_[0] = true;
      net_.broadcast(0, Message{0, 1, 7, 0});
    }
  }
  void step(NodeId self, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      if (!seen_[self]) {
        seen_[self] = true;
        net_.broadcast(self, Message{0, 1, m.a, 0});
      }
    }
  }

  [[nodiscard]] const std::vector<bool>& seen() const { return seen_; }

 private:
  Transport& net_;
  std::vector<bool> seen_;
};

// Node 0 unicasts to node 1 once per round until `limit` rounds have
// passed; idle() holds the runtime open through the quiet stretch, which
// is how crash/recovery windows get exercised.
class Ticker final : public Protocol {
 public:
  Ticker(Transport& net, std::size_t limit) : net_(net), limit_(limit) {}

  void start(NodeId self) override {
    if (self == 0) net_.send(0, 1, Message{0, 1, 0, 0});
  }
  void on_round_begin() override { ++round_; }
  void step(NodeId self, std::span<const Message> inbox) override {
    if (self == 1) received_ += inbox.size();
    if (self == 0 && round_ < limit_) {
      net_.send(0, 1, Message{0, 1, static_cast<std::int64_t>(round_), 0});
    }
  }
  [[nodiscard]] bool idle() const override { return round_ >= limit_; }

  [[nodiscard]] std::size_t received() const { return received_; }

 private:
  Transport& net_;
  std::size_t limit_;
  std::size_t round_ = 0;
  std::size_t received_ = 0;
};

// Two nodes bouncing one message forever — the livelock the round guard
// exists to catch.
class PingPong final : public Protocol {
 public:
  explicit PingPong(Transport& net) : net_(net) {}
  void start(NodeId self) override {
    if (self == 0) net_.send(0, 1, Message{});
  }
  void step(NodeId self, std::span<const Message> inbox) override {
    for (const Message& m : inbox) net_.send(self, m.from, Message{});
  }

 private:
  Transport& net_;
};

void expect_stats_eq(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
}

Graph chaos_udg(std::uint64_t seed) {
  mcds::udg::InstanceParams params;
  params.nodes = 40;
  params.side = 6.0;
  params.radius = 1.6;
  auto inst = mcds::udg::generate_connected_instance(params, seed);
  EXPECT_TRUE(inst.has_value());
  return inst->graph;
}

TEST(FaultPlan, UpAfterReplaysScheduleInOrder) {
  FaultPlan plan;
  plan.schedule.push_back({3, 1, false});
  plan.schedule.push_back({5, 1, true});
  plan.schedule.push_back({1, 2, false});

  auto up0 = plan.up_after(4, 0);
  EXPECT_TRUE(up0[1]);
  EXPECT_TRUE(up0[2]);

  auto up3 = plan.up_after(4, 3);
  EXPECT_FALSE(up3[1]);
  EXPECT_FALSE(up3[2]);

  auto up_final = plan.up_after(4, SIZE_MAX);
  EXPECT_TRUE(up_final[0]);
  EXPECT_TRUE(up_final[1]);  // recovered at round 5
  EXPECT_FALSE(up_final[2]);
  EXPECT_TRUE(up_final[3]);
}

TEST(FaultPlan, UpAfterSameRoundEventsApplyInScheduleOrder) {
  FaultPlan plan;
  plan.schedule.push_back({2, 0, false});
  plan.schedule.push_back({2, 0, true});  // later entry wins at round 2
  EXPECT_TRUE(plan.up_after(1, 2)[0]);
}

TEST(FaultPlan, InvalidRatesThrow) {
  const Graph g = mcds::test::make_path(3);
  {
    FaultPlan plan;
    plan.link.drop = 1.5;
    EXPECT_THROW(Runtime(g, plan), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.link.duplicate = -0.1;
    EXPECT_THROW(Runtime(g, plan), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.overrides.push_back({0, 1, {2.0, 0.0, 0}});
    EXPECT_THROW(Runtime(g, plan), std::invalid_argument);
  }
}

TEST(FaultPlan, TrivialDetection) {
  FaultPlan plan;
  EXPECT_TRUE(plan.trivial());
  plan.seed = 99;  // seed alone injects nothing
  EXPECT_TRUE(plan.trivial());
  plan.link.max_delay = 1;
  EXPECT_FALSE(plan.trivial());
}

TEST(ChannelModel, SameSeedSameFates) {
  FaultPlan plan;
  plan.link = {0.3, 0.2, 2};
  plan.seed = 42;
  ChannelModel a(plan, 0);
  ChannelModel b(plan, 0);
  std::vector<std::size_t> da;
  std::vector<std::size_t> db;
  for (int i = 0; i < 200; ++i) {
    a.sample(0, 1, da);
    b.sample(0, 1, db);
  }
  EXPECT_EQ(da, db);

  // A different stream decorrelates the sequence.
  ChannelModel c(plan, 17);
  std::vector<std::size_t> dc;
  for (int i = 0; i < 200; ++i) c.sample(0, 1, dc);
  EXPECT_NE(da, dc);
}

// The tentpole invariant: the default plan is not merely "close" to the
// fault-free runtime, it produces the identical delivered-message trace.
TEST(ZeroFaultPath, TraceBitIdenticalToFaultFreeRuntime) {
  for (const Graph& g :
       {mcds::test::make_grid(4, 4), mcds::test::make_star(6), chaos_udg(5)}) {
    std::vector<TraceEvent> ideal;
    std::vector<TraceEvent> with_plan;

    Runtime rt_ideal(g);
    rt_ideal.record_trace(&ideal);
    FloodProbe p1(rt_ideal);
    const RunStats s1 = rt_ideal.run(p1);

    Runtime rt_plan(g, FaultPlan{});
    rt_plan.record_trace(&with_plan);
    FloodProbe p2(rt_plan);
    const RunStats s2 = rt_plan.run(p2);

    EXPECT_EQ(ideal, with_plan);
    expect_stats_eq(s1, s2);
    EXPECT_EQ(rt_plan.faults().dropped, 0u);
    EXPECT_EQ(rt_plan.faults().duplicated, 0u);
    EXPECT_EQ(rt_plan.faults().delayed, 0u);
    EXPECT_EQ(rt_plan.faults().crash_discarded, 0u);
    EXPECT_EQ(rt_plan.faults().suppressed, 0u);
  }
}

// Every fault-aware entry point under the default RunConfig must agree
// with its legacy overload — result and RunStats both.
TEST(ZeroFaultPath, EntryPointsMatchLegacyOverloads) {
  for (std::uint64_t seed : {3u, 11u}) {
    const Graph g = chaos_udg(seed);
    const RunConfig cfg;

    const auto leader0 = elect_leader(g);
    const auto leader1 = elect_leader(g, cfg);
    EXPECT_EQ(leader0.leader, leader1.leader);
    EXPECT_TRUE(leader1.complete);
    expect_stats_eq(leader0.stats, leader1.stats);

    const std::vector<NodeId> flat(g.num_nodes(), 0);
    const auto mis0 = elect_mis(g, flat);
    const auto mis1 = elect_mis(g, flat, cfg);
    EXPECT_EQ(mis0.mis, mis1.mis);
    EXPECT_EQ(mis0.in_mis, mis1.in_mis);
    EXPECT_TRUE(mis1.complete);
    expect_stats_eq(mis0.stats, mis1.stats);

    const auto waf0 = distributed_waf_cds(g);
    const auto waf1 = distributed_waf_cds(g, cfg);
    EXPECT_EQ(waf0.cds, waf1.cds);
    EXPECT_TRUE(waf1.complete);
    expect_stats_eq(waf0.total, waf1.total);

    const auto alz0 = distributed_alzoubi_cds(g);
    const auto alz1 = distributed_alzoubi_cds(g, cfg);
    EXPECT_EQ(alz0.cds, alz1.cds);
    EXPECT_TRUE(alz1.complete);
    expect_stats_eq(alz0.total, alz1.total);

    const auto gr0 = distributed_greedy_cds(g);
    const auto gr1 = distributed_greedy_cds(g, cfg);
    EXPECT_EQ(gr0.cds, gr1.cds);
    EXPECT_EQ(gr0.epochs, gr1.epochs);
    EXPECT_TRUE(gr1.complete);
    expect_stats_eq(gr0.total, gr1.total);
  }
}

TEST(FaultInjection, TotalLossDropsEverySend) {
  const Graph g = mcds::test::make_star(4);
  FaultPlan plan;
  plan.link.drop = 1.0;
  Runtime rt(g, plan);
  FloodProbe p(rt);
  const RunStats stats = rt.run(p);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(rt.faults().dropped, 3u);  // the center's opening broadcast
  EXPECT_TRUE(p.seen()[0]);
  for (NodeId v = 1; v < 4; ++v) EXPECT_FALSE(p.seen()[v]);
}

TEST(FaultInjection, TotalLossLeavesProtocolIncompleteNotThrowing) {
  const Graph g = mcds::test::make_path(5);
  RunConfig cfg;
  cfg.plan.link.drop = 1.0;
  const auto mis = elect_mis(g, std::vector<NodeId>(5, 0), cfg);
  EXPECT_FALSE(mis.complete);
  EXPECT_EQ(mis.mis, std::vector<NodeId>{0});  // only the rank minimum decided
}

TEST(FaultInjection, DuplicationInjectsCountedExtraCopies) {
  const Graph g = mcds::test::make_star(4);
  FaultPlan plan;
  plan.link.duplicate = 1.0;
  Runtime rt(g, plan);
  FloodProbe p(rt);
  const RunStats stats = rt.run(p);
  // 3 outbound + 3 replies, each doubled.
  EXPECT_EQ(stats.messages, 12u);
  EXPECT_EQ(rt.faults().duplicated, 6u);
  for (NodeId v = 0; v < 4; ++v) EXPECT_TRUE(p.seen()[v]);
}

TEST(FaultInjection, DelayReordersButLosesNothing) {
  const Graph g = mcds::test::make_grid(3, 3);
  const RunStats ideal = [&] {
    Runtime rt(g);
    FloodProbe p(rt);
    return rt.run(p);
  }();

  FaultPlan plan;
  plan.link.max_delay = 3;
  plan.seed = 1;
  Runtime rt(g, plan);
  FloodProbe p(rt);
  const RunStats stats = rt.run(p);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_TRUE(p.seen()[v]);
  EXPECT_EQ(rt.faults().dropped, 0u);
  // Delay changes who rebroadcasts when, so the message count can move;
  // the flood itself must still deliver something everywhere.
  EXPECT_GE(stats.messages, g.num_nodes() - 1);
  EXPECT_GT(rt.faults().delayed, 0u);
  EXPECT_GE(stats.rounds, ideal.rounds);
}

TEST(FaultInjection, CrashDiscardsQueuedInbound) {
  const Graph g = mcds::test::make_path(3);
  FaultPlan plan;
  plan.schedule.push_back({1, 1, false});  // crash 1 before first delivery
  Runtime rt(g, plan);
  FloodProbe p(rt);
  const RunStats stats = rt.run(p);
  EXPECT_EQ(rt.faults().crash_discarded, 1u);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_FALSE(rt.is_up(1));
  EXPECT_TRUE(rt.is_up(0));
  EXPECT_FALSE(p.seen()[1]);
  EXPECT_FALSE(p.seen()[2]);
}

TEST(FaultInjection, SendToDownNodeIsSuppressed) {
  const Graph g = mcds::test::make_path(3);
  FaultPlan plan;
  plan.schedule.push_back({0, 1, false});  // down before the protocol starts
  Runtime rt(g, plan);
  FloodProbe p(rt);
  rt.run(p);
  EXPECT_EQ(rt.faults().suppressed, 1u);  // 0 -> 1 at start
  EXPECT_EQ(rt.faults().crash_discarded, 0u);
}

TEST(FaultInjection, RecoveredNodeReceivesAgain) {
  const Graph g = mcds::test::make_path(2);
  FaultPlan plan;
  plan.schedule.push_back({0, 1, false});
  plan.schedule.push_back({3, 1, true});
  Runtime rt(g, plan);
  Ticker t(rt, 8);
  rt.run(t);
  // Sends happen in rounds 0..7; those posted in rounds 0..2 target the
  // dead receiver, the rest land after the round-3 recovery.
  EXPECT_EQ(rt.faults().suppressed, 3u);
  EXPECT_EQ(t.received(), 5u);
  EXPECT_TRUE(rt.is_up(1));
}

TEST(FaultInjection, CrashedLeaderExcludedFromElection) {
  const Graph g = mcds::test::make_path(4);
  RunConfig cfg;
  cfg.plan.schedule.push_back({0, 0, false});
  const auto r = elect_leader(g, cfg);
  EXPECT_TRUE(r.complete);  // live nodes all agree
  EXPECT_EQ(r.leader, 1u);
}

TEST(FaultInjection, MidRunPartitionReportsIncomplete) {
  const Graph g = mcds::test::make_path(5);
  RunConfig cfg;
  cfg.plan.schedule.push_back({1, 2, false});  // sever the middle early
  const auto r = elect_leader(g, cfg);
  EXPECT_FALSE(r.complete);  // the two sides flood different minima
}

// Acceptance-criterion determinism guard: identical (seed, FaultPlan)
// must reproduce identical RunStats *and* identical message traces, even
// across the multi-phase waf pipeline.
TEST(Determinism, IdenticalPlanIdenticalTraceAndStats) {
  const Graph g = chaos_udg(21);
  FaultPlan plan;
  plan.link = {0.15, 0.1, 2};
  plan.seed = 77;
  plan.schedule.push_back({4, 3, false});
  plan.schedule.push_back({9, 7, false});

  for (const bool reliable : {false, true}) {
    std::vector<TraceEvent> trace_a;
    std::vector<TraceEvent> trace_b;
    RunConfig cfg_a;
    cfg_a.plan = plan;
    cfg_a.reliable = reliable;
    cfg_a.trace = &trace_a;
    RunConfig cfg_b = cfg_a;
    cfg_b.trace = &trace_b;

    const auto a = distributed_waf_cds(g, cfg_a);
    const auto b = distributed_waf_cds(g, cfg_b);
    EXPECT_EQ(trace_a, trace_b) << "reliable=" << reliable;
    EXPECT_FALSE(trace_a.empty());
    expect_stats_eq(a.total, b.total);
    EXPECT_EQ(a.cds, b.cds);
    EXPECT_EQ(a.complete, b.complete);
  }
}

TEST(Determinism, DifferentSeedDifferentTrace) {
  const Graph g = chaos_udg(22);
  std::vector<TraceEvent> trace_a;
  std::vector<TraceEvent> trace_b;
  RunConfig cfg;
  cfg.plan.link.drop = 0.3;
  cfg.plan.seed = 1;
  cfg.trace = &trace_a;
  (void)distributed_waf_cds(g, cfg);
  cfg.plan.seed = 2;
  cfg.trace = &trace_b;
  (void)distributed_waf_cds(g, cfg);
  EXPECT_NE(trace_a, trace_b);
}

TEST(RoundLimit, DiagnosticErrorCarriesRuntimeState) {
  const Graph g = mcds::test::make_path(2);
  Runtime rt(g);
  PingPong p(rt);
  try {
    rt.run(p, 5);
    FAIL() << "expected RoundLimitError";
  } catch (const RoundLimitError& e) {
    EXPECT_EQ(e.rounds_run(), 5u);
    EXPECT_EQ(e.in_flight(), 1u);
    ASSERT_EQ(e.pending_nodes().size(), 1u);
    const std::string what = e.what();
    EXPECT_NE(what.find("round limit exceeded after 5 rounds"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("1 message(s) in flight"), std::string::npos) << what;
  }
}

TEST(RoundLimit, IsStillARuntimeError) {
  const Graph g = mcds::test::make_path(2);
  Runtime rt(g);
  PingPong p(rt);
  EXPECT_THROW(rt.run(p, 3), std::runtime_error);
}

// Like Ticker's receiver side, but remembers which payloads arrived at
// node 1 — enough to see exactly which rounds' sends crossed a cut.
class PayloadRecorder final : public Protocol {
 public:
  PayloadRecorder(Transport& net, std::size_t limit)
      : net_(net), limit_(limit) {}

  void start(NodeId self) override {
    if (self == 0) net_.send(0, 1, Message{0, 1, 0, 0});
  }
  void on_round_begin() override { ++round_; }
  void step(NodeId self, std::span<const Message> inbox) override {
    if (self == 1) {
      for (const Message& m : inbox) payloads_.push_back(m.a);
    }
    if (self == 0 && round_ < limit_) {
      net_.send(0, 1, Message{0, 1, static_cast<std::int64_t>(round_), 0});
    }
  }
  [[nodiscard]] bool idle() const override { return round_ >= limit_; }

  [[nodiscard]] const std::vector<std::int64_t>& payloads() const {
    return payloads_;
  }

 private:
  Transport& net_;
  std::size_t limit_;
  std::size_t round_ = 0;
  std::vector<std::int64_t> payloads_;
};

TEST(Partition, CrossCutSendsDroppedAndCounted) {
  const Graph g = mcds::test::make_path(4);
  FaultPlan plan;
  PartitionEvent split;
  split.round = 0;  // applied before start(): the flood never crosses
  split.groups = {{0, 1}, {2, 3}};
  plan.partitions.push_back(split);
  Runtime rt(g, plan);
  FloodProbe p(rt);
  rt.run(p);
  EXPECT_EQ(p.seen(), (std::vector<bool>{true, true, false, false}));
  EXPECT_GT(rt.faults().partition_dropped, 0u);
  EXPECT_EQ(rt.group_of(0), rt.group_of(1));
  EXPECT_NE(rt.group_of(1), rt.group_of(2));
  EXPECT_TRUE(rt.partitioned(1, 2));
  EXPECT_FALSE(rt.partitioned(0, 1));
  EXPECT_FALSE(rt.partitioned(2, 3));
}

TEST(Partition, UnlistedNodesShareTheImplicitExtraGroup) {
  // Isolating {3} from a star must leave every other leaf reachable.
  const Graph g = mcds::test::make_star(6);
  FaultPlan plan;
  plan.partitions.push_back({0, {{3}}});
  Runtime rt(g, plan);
  FloodProbe p(rt);
  rt.run(p);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(p.seen()[v], v != 3) << "node " << v;
  }
  EXPECT_EQ(rt.group_of(1), rt.group_of(2));
  EXPECT_NE(rt.group_of(3), rt.group_of(0));
}

TEST(Partition, HealRestoresDeliveryAndInFlightCutMessagesAreLost) {
  const Graph g = mcds::test::make_path(2);
  FaultPlan plan;
  plan.partitions.push_back({3, {{0}, {1}}});
  plan.partitions.push_back({6, {}});  // heal
  Runtime rt(g, plan);
  Ticker t(rt, 10);
  rt.run(t);
  // Payload r is sent in round r (r = 0..9). The round-2 send is in
  // flight when the split applies at the head of round 3 and is
  // discarded; sends in rounds 3..5 are dropped at the sender. Rounds
  // 0, 1 and 6..9 get through: four cut losses, six deliveries.
  EXPECT_EQ(rt.faults().partition_dropped, 4u);
  EXPECT_EQ(t.received(), 6u);
  EXPECT_FALSE(rt.partitioned(0, 1));  // healed by the end
}

// Edge case from the issue: a node that recovers in the very round the
// partition heals must start receiving again immediately — neither
// event may shadow the other.
TEST(Partition, RecoverySameRoundAsHealRestoresTraffic) {
  const Graph g = mcds::test::make_path(2);
  FaultPlan plan;
  plan.schedule.push_back({2, 1, false});
  plan.schedule.push_back({6, 1, true});
  plan.partitions.push_back({2, {{0}, {1}}});
  plan.partitions.push_back({6, {}});
  Runtime rt(g, plan);
  PayloadRecorder r(rt, 12);
  rt.run(r);
  // Payload 0 lands before the outage. Payload 1 is in flight when the
  // crash+split hit round 2 and is discarded; rounds 2..5 are blocked at
  // the sender. From round 6 — recovery and heal applied in the same
  // round, before deliveries — traffic flows again.
  EXPECT_EQ(r.payloads(),
            (std::vector<std::int64_t>{0, 6, 7, 8, 9, 10, 11}));
  EXPECT_TRUE(rt.is_up(1));
  EXPECT_FALSE(rt.partitioned(0, 1));
}

// Edge case from the issue: a crash scheduled at round 0 is applied in
// the runtime constructor, so the node never even start()s; the flood
// dies at the dead relay without throwing.
TEST(Partition, CrashAtRoundZeroNodeNeverParticipates) {
  const Graph g = mcds::test::make_path(3);
  FaultPlan plan;
  plan.schedule.push_back({0, 1, false});
  plan.schedule.push_back({5, 1, true});
  Runtime rt(g, plan);
  FloodProbe p(rt);
  const RunStats stats = rt.run(p);
  EXPECT_EQ(p.seen(), (std::vector<bool>{true, false, false}));
  EXPECT_EQ(rt.faults().suppressed, 1u);  // 0 -> 1 at start
  EXPECT_EQ(stats.messages, 0u);          // nothing was ever delivered
  // The flood is event-driven, so the run quiesces long before the
  // scheduled recovery — the node stays down.
  EXPECT_FALSE(rt.is_up(1));
}

// Edge case from the issue: duplication plus delay under ReliableLink.
// Duplicated and delayed copies of a data frame share one sequence
// number, so receiver-side dedup hands the protocol each payload exactly
// once, in spite of the channel manufacturing extra copies.
TEST(FaultInjection, DuplicateAndDelayUnderReliableLinkDedup) {
  const Graph g = mcds::test::make_path(2);
  RunConfig cfg;
  cfg.plan.link.duplicate = 0.9;
  cfg.plan.link.max_delay = 2;
  cfg.plan.seed = 13;
  cfg.reliable = true;
  FaultHarness h(g, cfg, 0, "dedup_probe");
  Ticker t(h.net(), 8);
  h.run(t);
  EXPECT_EQ(t.received(), 8u);  // exactly once per payload
  ASSERT_NE(h.link(), nullptr);
  EXPECT_GT(h.link()->dedup_hits(), 0u);
  EXPECT_GT(h.runtime().faults().duplicated, 0u);
}

TEST(FaultPlan, GroupsAtReportsTheLatestEvent) {
  FaultPlan plan;
  plan.partitions.push_back({2, {{0, 1}, {3}}});
  plan.partitions.push_back({7, {}});
  const auto before = plan.groups_at(4, 1);
  EXPECT_EQ(before, (std::vector<std::uint32_t>{0, 0, 0, 0}));
  const auto during = plan.groups_at(4, 5);
  EXPECT_EQ(during[0], during[1]);
  EXPECT_NE(during[0], during[3]);
  EXPECT_EQ(during[2], 2u);  // unlisted node: implicit extra group
  const auto after = plan.groups_at(4, SIZE_MAX);
  EXPECT_EQ(after, (std::vector<std::uint32_t>{0, 0, 0, 0}));
}

TEST(FaultPlan, ValidateRejectsOversizedDelayAndOverlappingGroups) {
  const Graph g = mcds::test::make_path(3);
  {
    FaultPlan plan;
    plan.link.max_delay = kMaxLinkDelay + 1;
    EXPECT_THROW(Runtime(g, plan), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.overrides.push_back({0, 1, {0.0, 0.0, kMaxLinkDelay + 1}});
    EXPECT_THROW(Runtime(g, plan), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.partitions.push_back({1, {{0, 1}, {1, 2}}});  // 1 in two groups
    EXPECT_THROW(Runtime(g, plan), std::invalid_argument);
  }
}

}  // namespace
