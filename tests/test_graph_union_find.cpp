#include "graph/union_find.hpp"

#include <gtest/gtest.h>

namespace mcds::graph {
namespace {

TEST(UnionFind, InitialState) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_EQ(uf.universe_size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.set_size(i), 1u);
  }
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));  // already together
  EXPECT_EQ(uf.num_sets(), 4u);
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_EQ(uf.set_size(3), 4u);
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFind, ChainCollapsesToOne) {
  const std::uint32_t n = 1000;
  UnionFind uf(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) EXPECT_TRUE(uf.unite(i, i + 1));
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.set_size(0), n);
  EXPECT_TRUE(uf.same(0, n - 1));
}

TEST(UnionFind, TransitivityProperty) {
  UnionFind uf(10);
  uf.unite(0, 5);
  uf.unite(5, 9);
  uf.unite(2, 3);
  EXPECT_TRUE(uf.same(0, 9));
  EXPECT_FALSE(uf.same(9, 2));
  // Representative is consistent within a set.
  EXPECT_EQ(uf.find(0), uf.find(9));
}

}  // namespace
}  // namespace mcds::graph
