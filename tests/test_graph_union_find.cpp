#include "graph/union_find.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sim/rng.hpp"

namespace mcds::graph {
namespace {

// Naive oracle: component labels with full relabeling on every merge.
class NaiveDsu {
 public:
  explicit NaiveDsu(std::size_t n) : label_(n) {
    std::iota(label_.begin(), label_.end(), 0u);
  }
  bool unite(std::uint32_t a, std::uint32_t b) {
    const std::uint32_t la = label_[a], lb = label_[b];
    if (la == lb) return false;
    for (auto& l : label_) {
      if (l == lb) l = la;
    }
    return true;
  }
  [[nodiscard]] bool same(std::uint32_t a, std::uint32_t b) const {
    return label_[a] == label_[b];
  }
  [[nodiscard]] std::size_t set_size(std::uint32_t x) const {
    return static_cast<std::size_t>(
        std::count(label_.begin(), label_.end(), label_[x]));
  }
  [[nodiscard]] std::size_t num_sets() const {
    std::vector<std::uint32_t> labels = label_;
    std::sort(labels.begin(), labels.end());
    return static_cast<std::size_t>(
        std::unique(labels.begin(), labels.end()) - labels.begin());
  }

 private:
  std::vector<std::uint32_t> label_;
};

TEST(UnionFind, InitialState) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_EQ(uf.universe_size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.set_size(i), 1u);
  }
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));  // already together
  EXPECT_EQ(uf.num_sets(), 4u);
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_EQ(uf.set_size(3), 4u);
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFind, ChainCollapsesToOne) {
  const std::uint32_t n = 1000;
  UnionFind uf(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) EXPECT_TRUE(uf.unite(i, i + 1));
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.set_size(0), n);
  EXPECT_TRUE(uf.same(0, n - 1));
}

// Stress for the merge-only (rollback-free) usage pattern of the
// incremental connector engine: long random unite/query interleavings
// must agree with the naive relabeling oracle at every step.
TEST(UnionFindStress, RandomOpsMatchNaiveOracle) {
  constexpr std::uint32_t kNodes = 257;
  constexpr std::size_t kOps = 4000;
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    sim::Rng rng(seed);
    UnionFind uf(kNodes);
    NaiveDsu oracle(kNodes);
    for (std::size_t op = 0; op < kOps; ++op) {
      const auto a = static_cast<std::uint32_t>(rng() % kNodes);
      const auto b = static_cast<std::uint32_t>(rng() % kNodes);
      switch (rng() % 4) {
        case 0:
        case 1:  // merge-heavy mix, as in phase 2
          ASSERT_EQ(uf.unite(a, b), oracle.unite(a, b)) << "op " << op;
          break;
        case 2:
          ASSERT_EQ(uf.same(a, b), oracle.same(a, b)) << "op " << op;
          break;
        default:
          ASSERT_EQ(uf.set_size(a), oracle.set_size(a)) << "op " << op;
          break;
      }
      if (op % 512 == 0) {
        ASSERT_EQ(uf.num_sets(), oracle.num_sets()) << "op " << op;
      }
    }
    EXPECT_EQ(uf.num_sets(), oracle.num_sets());
  }
}

// Find is stable under repeated calls (path halving must not change the
// set structure) and representatives stay within the set.
TEST(UnionFindStress, FindIsIdempotentAndClosed) {
  constexpr std::uint32_t kNodes = 500;
  sim::Rng rng(7);
  UnionFind uf(kNodes);
  for (std::size_t i = 0; i < 300; ++i) {
    uf.unite(static_cast<std::uint32_t>(rng() % kNodes),
             static_cast<std::uint32_t>(rng() % kNodes));
  }
  for (std::uint32_t v = 0; v < kNodes; ++v) {
    const std::uint32_t r1 = uf.find(v);
    const std::uint32_t r2 = uf.find(v);
    EXPECT_EQ(r1, r2);
    EXPECT_EQ(uf.find(r1), r1);  // representatives are fixed points
    EXPECT_TRUE(uf.same(v, r1));
  }
}

TEST(UnionFind, TransitivityProperty) {
  UnionFind uf(10);
  uf.unite(0, 5);
  uf.unite(5, 9);
  uf.unite(2, 3);
  EXPECT_TRUE(uf.same(0, 9));
  EXPECT_FALSE(uf.same(9, 2));
  // Representative is consistent within a set.
  EXPECT_EQ(uf.find(0), uf.find(9));
}

}  // namespace
}  // namespace mcds::graph
