#include "udg/qudg.hpp"

#include <gtest/gtest.h>

#include "udg/builder.hpp"
#include "udg/deployment.hpp"

namespace mcds::udg {
namespace {

using geom::Vec2;

TEST(QuasiUdg, DegeneratesToUdgWhenBandIsEmpty) {
  sim::Rng deploy_rng(1);
  const auto pts = deploy_uniform_square(80, 8.0, deploy_rng);
  sim::Rng rng(2);
  const auto qudg = build_quasi_udg(pts, 1.0, 1.0, rng);
  const auto udg = build_udg(pts, 1.0);
  EXPECT_EQ(qudg.edges(), udg.edges());
}

TEST(QuasiUdg, EdgesRespectRadiusBands) {
  sim::Rng deploy_rng(3);
  const auto pts = deploy_uniform_square(100, 9.0, deploy_rng);
  sim::Rng rng(4);
  const double r_min = 0.7, r_max = 1.3;
  const auto g = build_quasi_udg(pts, r_min, r_max, rng);
  // Certain region always connected, far region never.
  for (graph::NodeId i = 0; i < pts.size(); ++i) {
    for (graph::NodeId j = i + 1; j < pts.size(); ++j) {
      const double d = geom::dist(pts[i], pts[j]);
      if (d <= r_min) {
        EXPECT_TRUE(g.has_edge(i, j)) << i << "," << j;
      } else if (d > r_max) {
        EXPECT_FALSE(g.has_edge(i, j)) << i << "," << j;
      }
    }
  }
}

TEST(QuasiUdg, GrayZoneDensityBetweenExtremes) {
  sim::Rng deploy_rng(5);
  const auto pts = deploy_uniform_square(150, 10.0, deploy_rng);
  sim::Rng rng(6);
  const auto g = build_quasi_udg(pts, 0.6, 1.4, rng);
  const auto lower = build_udg(pts, 0.6);
  const auto upper = build_udg(pts, 1.4);
  EXPECT_GE(g.num_edges(), lower.num_edges());
  EXPECT_LE(g.num_edges(), upper.num_edges());
  // Some gray-zone links should exist and some should be missing.
  EXPECT_GT(g.num_edges(), lower.num_edges());
  EXPECT_LT(g.num_edges(), upper.num_edges());
}

TEST(QuasiUdg, DeterministicPerSeed) {
  sim::Rng deploy_rng(7);
  const auto pts = deploy_uniform_square(60, 7.0, deploy_rng);
  sim::Rng a(9), b(9), c(10);
  const auto ga = build_quasi_udg(pts, 0.8, 1.2, a);
  const auto gb = build_quasi_udg(pts, 0.8, 1.2, b);
  const auto gc = build_quasi_udg(pts, 0.8, 1.2, c);
  EXPECT_EQ(ga.edges(), gb.edges());
  EXPECT_NE(ga.edges(), gc.edges());  // different stream, different draw
}

TEST(QuasiUdg, InvalidParametersThrow) {
  const std::vector<Vec2> pts{{0, 0}, {1, 0}};
  sim::Rng rng(1);
  EXPECT_THROW((void)build_quasi_udg(pts, 0.0, 1.0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)build_quasi_udg(pts, 1.2, 1.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcds::udg
