#include "udg/builder.hpp"

#include <gtest/gtest.h>

#include "udg/deployment.hpp"

namespace mcds::udg {
namespace {

using geom::Vec2;

TEST(BuildUdg, TrivialSizes) {
  EXPECT_EQ(build_udg(std::vector<Vec2>{}).num_nodes(), 0u);
  const std::vector<Vec2> one{{1, 1}};
  EXPECT_EQ(build_udg(one).num_nodes(), 1u);
  EXPECT_EQ(build_udg(one).num_edges(), 0u);
}

TEST(BuildUdg, ExactDistanceOneIsAnEdge) {
  // The paper's model: edge iff distance at most one (closed disk).
  const std::vector<Vec2> pts{{0, 0}, {1, 0}, {2.0001, 0}};
  const auto g = build_udg(pts);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(BuildUdg, CustomRadius) {
  const std::vector<Vec2> pts{{0, 0}, {3, 0}};
  EXPECT_EQ(build_udg(pts, 2.9).num_edges(), 0u);
  EXPECT_EQ(build_udg(pts, 3.0).num_edges(), 1u);
  EXPECT_THROW((void)build_udg(pts, 0.0), std::invalid_argument);
  EXPECT_THROW((void)build_udg_naive(pts, -1.0), std::invalid_argument);
}

TEST(BuildUdg, NodesInSameCell) {
  const std::vector<Vec2> pts{{0.1, 0.1}, {0.2, 0.2}, {0.9, 0.9}};
  const auto g = build_udg(pts);
  // (0.1,0.1)-(0.9,0.9) is sqrt(1.28) > 1 apart; the other two pairs are
  // within 1.
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

// Property sweep: grid-hashed construction must be identical to the
// quadratic reference, including boundary-exact distances and negative
// coordinates.
class BuildUdgRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuildUdgRandom, MatchesNaive) {
  sim::Rng rng(GetParam());
  const std::size_t n = 2 + rng.uniform_int(250);
  std::vector<Vec2> pts;
  pts.reserve(n);
  // Mix of scales, including negative coordinates (exercises cell
  // flooring) and duplicated positions (distance 0).
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(-6, 9), rng.uniform(-6, 9)});
  }
  if (n > 10) pts[5] = pts[3];
  const double radius = 0.5 + rng.uniform01() * 1.5;
  const auto fast = build_udg(pts, radius);
  const auto slow = build_udg_naive(pts, radius);
  ASSERT_EQ(fast.num_nodes(), slow.num_nodes());
  EXPECT_EQ(fast.num_edges(), slow.num_edges());
  EXPECT_EQ(fast.edges(), slow.edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuildUdgRandom,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace mcds::udg
