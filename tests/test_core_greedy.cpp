#include "core/greedy_connect.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/validate.hpp"
#include "exact/exact_cds.hpp"
#include "graph/small_graph.hpp"
#include "graph/subgraph.hpp"
#include "test_util.hpp"
#include "udg/instance.hpp"

namespace mcds::core {
namespace {

TEST(GreedyCds, SingleNodeAndEdge) {
  const graph::Graph one(1);
  EXPECT_EQ(greedy_cds(one, 0).cds, (std::vector<NodeId>{0}));
  const Graph two = test::make_path(2);
  const auto r = greedy_cds(two, 0);
  EXPECT_TRUE(is_cds(two, r.cds));
  EXPECT_EQ(r.cds, (std::vector<NodeId>{0}));  // I = {0} dominates, q = 1
}

TEST(GreedyCds, PathGraph) {
  const Graph g = test::make_path(9);
  const auto r = greedy_cds(g, 0);
  EXPECT_TRUE(is_cds(g, r.cds));
  // I = {0,2,4,6,8}; the four odd nodes must all become connectors.
  EXPECT_EQ(r.connectors.size(), 4u);
}

TEST(GreedyCds, StepsAccountingConsistent) {
  udg::InstanceParams params;
  params.nodes = 120;
  params.side = 10.0;
  const auto inst = udg::generate_largest_component_instance(params, 17);
  const auto r = greedy_cds(inst.graph, 0);
  EXPECT_TRUE(is_cds(inst.graph, r.cds));
  ASSERT_EQ(r.steps.size(), r.connectors.size());
  std::size_t q = r.phase1.mis.size();
  for (std::size_t i = 0; i < r.steps.size(); ++i) {
    const GreedyStep& s = r.steps[i];
    EXPECT_EQ(s.node, r.connectors[i]);
    EXPECT_EQ(s.q_before, q);
    EXPECT_GE(s.gain, 1u);  // Lemma 9: positive gain always exists
    q -= s.gain;
  }
  EXPECT_EQ(q, 1u);  // one component at the end
}

TEST(GreedyCds, GainsAreNonIncreasingInQByLemma9Floor) {
  // Each step's gain must satisfy gain >= ceil(q/gamma_c) - 1 for the
  // true gamma_c; we check the weaker monotone consequence that q
  // strictly decreases.
  udg::InstanceParams params;
  params.nodes = 80;
  params.side = 9.0;
  const auto inst = udg::generate_largest_component_instance(params, 23);
  const auto r = greedy_cds(inst.graph, 0);
  for (std::size_t i = 1; i < r.steps.size(); ++i) {
    EXPECT_LT(r.steps[i].q_before, r.steps[i - 1].q_before);
  }
}

TEST(GreedyConnectors, RejectsNonMaximalSeed) {
  // Two far-apart MIS nodes of a path with a gap of 2 in between: with a
  // maximal independent set this cannot happen; feed a non-maximal seed
  // and expect the documented logic_error.
  const Graph g = test::make_path(7);
  const std::vector<NodeId> not_maximal{0, 6};
  EXPECT_THROW((void)greedy_connectors(g, not_maximal), std::logic_error);
}

TEST(GreedyCds, DeterministicTieBreaks) {
  udg::InstanceParams params;
  params.nodes = 70;
  params.side = 7.0;
  const auto inst = udg::generate_largest_component_instance(params, 29);
  const auto a = greedy_cds(inst.graph, 0);
  const auto b = greedy_cds(inst.graph, 0);
  EXPECT_EQ(a.cds, b.cds);
  EXPECT_EQ(a.connectors, b.connectors);
}

// Theorem 10 validation on small instances with exact gamma_c.
class GreedyTheorem10 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyTheorem10, RatioWithinProvenBound) {
  udg::InstanceParams params;
  params.nodes = 16;
  params.side = 3.5;
  const auto inst =
      udg::generate_connected_instance(params, GetParam() * 211);
  if (!inst) GTEST_SKIP() << "no connected draw";
  const Graph& g = inst->graph;
  const graph::SmallGraph sg(g);
  const std::size_t gamma_c = exact::connected_domination_number(sg);
  const auto r = greedy_cds(g, 0);
  EXPECT_TRUE(is_cds(g, r.cds));
  EXPECT_LE(static_cast<double>(r.cds.size()),
            bounds::greedy_upper_bound(gamma_c) + 1e-9)
      << "n=" << g.num_nodes() << " gamma_c=" << gamma_c;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyTheorem10,
                         ::testing::Range<std::uint64_t>(1, 31));

// The paper's motivation for Section IV: greedy connectors never use
// more nodes than there are components to merge.
class GreedyVsWafSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyVsWafSeeds, ConnectorCountBelowComponentCount) {
  udg::InstanceParams params;
  params.nodes = 100;
  params.side = 9.0;
  const auto inst =
      udg::generate_largest_component_instance(params, GetParam() * 7);
  const auto r = greedy_cds(inst.graph, 0);
  EXPECT_LE(r.connectors.size(),
            r.phase1.mis.size() > 0 ? r.phase1.mis.size() - 1 : 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsWafSeeds,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace mcds::core
