#include "packing/star_decomposition.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "udg/builder.hpp"
#include "udg/instance.hpp"

namespace mcds::packing {
namespace {

using geom::Vec2;

TEST(StarDecomposition, TwoPoints) {
  const std::vector<Vec2> pts{{0, 0}, {0.5, 0}};
  const auto stars = star_decomposition(pts);
  ASSERT_EQ(stars.size(), 1u);
  EXPECT_EQ(stars[0].size(), 2u);
  EXPECT_TRUE(is_nontrivial_star_decomposition(pts, stars));
}

TEST(StarDecomposition, CollinearPath) {
  std::vector<Vec2> pts;
  for (int i = 0; i < 9; ++i) pts.push_back({0.9 * i, 0.0});
  const auto stars = star_decomposition(pts);
  EXPECT_TRUE(is_nontrivial_star_decomposition(pts, stars));
  // A path decomposes into at most ceil(n/2) stars.
  EXPECT_LE(stars.size(), 5u);
}

TEST(StarDecomposition, DenseCluster) {
  // All points within one unit disk: a single star suffices, but any
  // valid nontrivial decomposition is accepted.
  std::vector<Vec2> pts{{0, 0}, {0.1, 0.2}, {-0.2, 0.1},
                        {0.3, -0.1}, {-0.1, -0.3}};
  const auto stars = star_decomposition(pts);
  EXPECT_TRUE(is_nontrivial_star_decomposition(pts, stars));
}

TEST(StarDecomposition, Preconditions) {
  EXPECT_THROW((void)star_decomposition(std::vector<Vec2>{}),
               std::invalid_argument);
  EXPECT_THROW((void)star_decomposition(std::vector<Vec2>{{1, 1}}),
               std::invalid_argument);
  const std::vector<Vec2> disconnected{{0, 0}, {5, 5}};
  EXPECT_THROW((void)star_decomposition(disconnected),
               std::invalid_argument);
}

TEST(IsStar, Definition) {
  const std::vector<Vec2> pts{{0, 0}, {0.8, 0}, {-0.8, 0}};
  Star centered_at_0{0, {0, 1, 2}};
  EXPECT_TRUE(is_star(pts, centered_at_0));
  Star centered_at_1{1, {0, 1, 2}};  // 2 is 1.6 away from 1
  EXPECT_FALSE(is_star(pts, centered_at_1));
  Star bad_index{5, {0, 1}};
  EXPECT_FALSE(is_star(pts, bad_index));
}

TEST(IsNontrivialStarDecomposition, RejectsBadPartitions) {
  const std::vector<Vec2> pts{{0, 0}, {0.5, 0}, {1.0, 0}, {1.5, 0}};
  // Singleton star: invalid.
  const std::vector<Star> with_singleton{{0, {0, 1, 2}}, {0, {3}}};
  EXPECT_FALSE(is_nontrivial_star_decomposition(pts, with_singleton));
  // Missing node 3: invalid.
  const std::vector<Star> missing{{0, {0, 1, 2}}};
  EXPECT_FALSE(is_nontrivial_star_decomposition(pts, missing));
  // Overlap: invalid.
  const std::vector<Star> overlap{{0, {0, 1}}, {0, {1, 2, 3}}};
  EXPECT_FALSE(is_nontrivial_star_decomposition(pts, overlap));
  // Proper: {0,1} and {2,3}.
  const std::vector<Star> proper{{0, {0, 1}}, {0, {2, 3}}};
  EXPECT_TRUE(is_nontrivial_star_decomposition(pts, proper));
}

// Lemma 4 property sweep: every random connected planar set of >= 2
// points must admit (and our algorithm must find) a non-trivial
// star-decomposition.
class Lemma4Random : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma4Random, DecompositionAlwaysValid) {
  udg::InstanceParams params;
  params.nodes = 8 + (GetParam() % 50);
  params.side = 2.0 + static_cast<double>(GetParam() % 5);
  const auto inst =
      udg::generate_largest_component_instance(params, GetParam() * 71);
  if (inst.points.size() < 2) GTEST_SKIP() << "degenerate component";
  const auto stars = star_decomposition(inst.points);
  EXPECT_TRUE(is_nontrivial_star_decomposition(inst.points, stars))
      << "n=" << inst.points.size();
  // A nontrivial decomposition has at most floor(n/2) stars.
  EXPECT_LE(stars.size(), inst.points.size() / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma4Random,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace mcds::packing
