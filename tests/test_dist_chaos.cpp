#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/validate.hpp"
#include "par/thread_pool.hpp"
#include "dist/alzoubi_protocol.hpp"
#include "dist/fault.hpp"
#include "dist/greedy_protocol.hpp"
#include "dist/maintenance.hpp"
#include "dist/mis_election.hpp"
#include "dist/runtime.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "sim/rng.hpp"
#include "udg/instance.hpp"

/// \file test_dist_chaos.cpp
/// The randomized chaos harness of the fault-injection layer: every
/// distributed construction is executed across a grid of drop rates,
/// duplication, delay, crash schedules and random connected UDGs. Each
/// run asserts (1) bounded termination, (2) a valid CDS on the survivor
/// graph after self-healing whenever that graph is connected, and
/// (3) round/message overhead within the declared envelope. Failures
/// print the (graph seed, fault case) pair, which reproduces the run
/// exactly — the whole execution is a function of those seeds.

namespace {

using mcds::graph::Graph;
using mcds::graph::NodeId;
using namespace mcds::dist;

constexpr std::size_t kGraphSeeds = 25;
constexpr std::size_t kNodes = 22;
constexpr std::size_t kMaxRounds = 100000;

// Declared overhead envelope, relative to the fault-free execution of
// the same (graph, protocol). Raw legs can only drop/duplicate/delay
// traffic; reliable legs additionally pay acks, retransmissions and the
// stretched phase thresholds of the round-indexed protocols.
constexpr std::size_t kRawRoundFactor = 12;
constexpr std::size_t kRawRoundSlack = 256;
constexpr std::size_t kRawMsgFactor = 12;
constexpr std::size_t kRawMsgSlack = 512;
constexpr std::size_t kRelRoundFactor = 80;
constexpr std::size_t kRelRoundSlack = 512;
constexpr std::size_t kRelMsgFactor = 40;
constexpr std::size_t kRelMsgSlack = 4096;

struct FaultCase {
  const char* name;
  bool reliable = false;
  LinkFaults link;
  std::size_t crashes = 0;
};

const FaultCase kCases[] = {
    {"raw-drop-low", false, {0.05, 0.0, 0}, 0},
    {"raw-drop-high", false, {0.15, 0.0, 0}, 0},
    {"raw-drop-delay", false, {0.10, 0.0, 2}, 0},
    {"crash-only", false, {}, 4},
    {"raw-drop-crash", false, {0.10, 0.0, 0}, 3},
    {"rel-drop-dup", true, {0.15, 0.15, 0}, 0},
    {"rel-heavy", true, {0.30, 0.20, 1}, 0},
    {"rel-drop-crash", true, {0.20, 0.0, 0}, 3},
    {"rel-dup-delay", true, {0.0, 0.5, 2}, 0},
};

enum class Algo { kMis, kAlzoubi, kGreedy };

FaultPlan make_plan(const FaultCase& fc, std::size_t n, std::uint64_t seed) {
  FaultPlan plan;
  plan.link = fc.link;
  plan.seed = seed;
  mcds::sim::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  for (std::size_t i = 0; i < fc.crashes; ++i) {
    plan.schedule.push_back(
        {1 + static_cast<std::size_t>(rng.uniform_int(40)),
         static_cast<NodeId>(rng.uniform_int(n)), false});
  }
  return plan;
}

Graph chaos_udg(std::uint64_t seed) {
  mcds::udg::InstanceParams params;
  params.nodes = kNodes;
  params.side = 5.0;
  params.radius = 1.6;
  auto inst = mcds::udg::generate_connected_instance(params, seed);
  EXPECT_TRUE(inst.has_value()) << "graph seed " << seed;
  return inst->graph;
}

// Base offset for the graph seeds: scripts/chaos_fuzz.sh rotates it
// (CHAOS_FUZZ_SEED) so every fuzz iteration explores a fresh slice of
// the instance space; the default 0 keeps the deterministic CI grid.
std::uint64_t base_seed() {
  if (const char* env = std::getenv("CHAOS_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0;
}

// CHAOS_THREADS=N routes every schedule through the parallel round
// engine on an N-worker pool (unset/0 = the serial runtime). The pool
// is shared across cases — exactly how a long fuzz session would run.
mcds::par::ThreadPool* chaos_pool() {
  static const long n = [] {
    const char* env = std::getenv("CHAOS_THREADS");
    return env != nullptr ? std::strtol(env, nullptr, 10) : 0;
  }();
  if (n <= 0) return nullptr;
  static mcds::par::ThreadPool pool(static_cast<std::size_t>(n));
  return &pool;
}

// Runs one chaos leg; under CHAOS_THREADS, a failing leg is replayed on
// the serial (golden) runtime before anything is reported, so a red
// grid either shows a real thread-count-independent bug (the serial
// verdict) or states explicitly that only the parallel engine diverged
// — the seed to hand to the determinism suite, not to ddmin.
void run_with_replay(const std::string& tag,
                     const std::function<void(const RunConfig&)>& leg,
                     RunConfig cfg) {
  mcds::par::ThreadPool* pool = chaos_pool();
  if (pool == nullptr) {
    leg(cfg);
    return;
  }
  cfg.pool = pool;
  testing::TestPartResultArray par_failures;
  {
    testing::ScopedFakeTestPartResultReporter reporter(
        testing::ScopedFakeTestPartResultReporter::
            INTERCEPT_ONLY_CURRENT_THREAD,
        &par_failures);
    leg(cfg);
  }
  if (par_failures.size() == 0) return;
  cfg.pool = nullptr;
  testing::TestPartResultArray serial_failures;
  {
    testing::ScopedFakeTestPartResultReporter reporter(
        testing::ScopedFakeTestPartResultReporter::
            INTERCEPT_ONLY_CURRENT_THREAD,
        &serial_failures);
    leg(cfg);
  }
  for (int i = 0; i < serial_failures.size(); ++i) {
    const auto& r = serial_failures.GetTestPartResult(i);
    ADD_FAILURE_AT(r.file_name(), r.line_number())
        << r.message() << "\n(serial replay of a parallel failure)";
  }
  if (serial_failures.size() == 0) {
    for (int i = 0; i < par_failures.size(); ++i) {
      const auto& r = par_failures.GetTestPartResult(i);
      ADD_FAILURE_AT(r.file_name(), r.line_number()) << r.message();
    }
    ADD_FAILURE() << tag << ": fails ONLY under CHAOS_THREADS="
                  << pool->size()
                  << " — the parallel engine diverged from the serial "
                     "runtime; reproduce with the ParDist determinism "
                     "suite, not ddmin";
  }
}

struct Baseline {
  RunStats stats;
  std::vector<NodeId> mis;
};

// Fault-free reference execution (cached per graph seed x algorithm).
const Baseline& baseline(std::uint64_t gseed, Algo algo, const Graph& g) {
  static std::map<std::pair<std::uint64_t, int>, Baseline> cache;
  auto& slot = cache[{gseed, static_cast<int>(algo)}];
  if (slot.stats.rounds == 0 && slot.stats.messages == 0) {
    switch (algo) {
      case Algo::kMis: {
        const auto r = elect_mis(g, std::vector<NodeId>(g.num_nodes(), 0));
        slot.stats = r.stats;
        slot.mis = r.mis;
        break;
      }
      case Algo::kAlzoubi:
        slot.stats = distributed_alzoubi_cds(g).total;
        break;
      case Algo::kGreedy:
        slot.stats = distributed_greedy_cds(g).total;
        break;
    }
  }
  return slot;
}

void check_envelope(const std::string& tag, bool reliable,
                    const RunStats& faulty, const RunStats& ideal) {
  const std::size_t rf = reliable ? kRelRoundFactor : kRawRoundFactor;
  const std::size_t rs = reliable ? kRelRoundSlack : kRawRoundSlack;
  const std::size_t mf = reliable ? kRelMsgFactor : kRawMsgFactor;
  const std::size_t ms = reliable ? kRelMsgSlack : kRawMsgSlack;
  EXPECT_LE(faulty.rounds, rf * std::max<std::size_t>(ideal.rounds, 1) + rs)
      << tag << " blew the round envelope (ideal " << ideal.rounds << ")";
  EXPECT_LE(faulty.messages, mf * std::max<std::size_t>(ideal.messages, 1) + ms)
      << tag << " blew the message envelope (ideal " << ideal.messages << ")";
}

// Heals the (possibly damaged) backbone a run produced and checks the
// healed set against the survivor topology — the end-to-end property the
// fault layer plus maintenance driver must deliver together.
void check_healing(const std::string& tag, const Graph& g,
                   const FaultPlan& plan, const std::vector<NodeId>& cds) {
  const auto up = plan.up_after(g.num_nodes(), SIZE_MAX);
  std::vector<NodeId> live;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (up[v]) live.push_back(v);
  }
  if (live.empty()) return;
  const auto sub = mcds::graph::induced_subgraph(g, live);
  if (!mcds::graph::is_connected(sub.graph)) return;  // no CDS exists

  SelfHealingCds healer(g, cds);
  const HealReport report = healer.on_churn(up);
  EXPECT_NE(report.action, HealAction::kUnhealable)
      << tag << ": survivor graph is connected but healing gave up ("
      << report.issue.describe() << ")";

  // Re-validate independently of the driver's own bookkeeping.
  std::vector<NodeId> to_sub(g.num_nodes(), mcds::graph::kNoNode);
  for (NodeId i = 0; i < sub.mapping.size(); ++i) to_sub[sub.mapping[i]] = i;
  std::vector<NodeId> healed_sub;
  for (const NodeId v : healer.cds()) {
    ASSERT_NE(to_sub[v], mcds::graph::kNoNode) << tag << ": dead node kept";
    healed_sub.push_back(to_sub[v]);
  }
  const auto check = mcds::core::check_cds(sub.graph, healed_sub);
  EXPECT_TRUE(check.ok) << tag << ": healed backbone invalid — "
                        << check.describe();
}

TEST(Chaos, RandomizedFaultGrid) {
  std::size_t pairs = 0;
  const std::uint64_t base = base_seed();
  for (std::uint64_t i = 0; i < kGraphSeeds; ++i) {
    const std::uint64_t gseed = base + i;
    const Graph g = chaos_udg(gseed);
    for (std::size_t ci = 0; ci < std::size(kCases); ++ci) {
      const FaultCase& fc = kCases[ci];
      const Algo algo = static_cast<Algo>((gseed + ci) % 3);
      const FaultPlan plan =
          make_plan(fc, g.num_nodes(), gseed * 1000 + ci);

      std::ostringstream tag_os;
      tag_os << "[graph seed " << gseed << ", case " << fc.name
             << ", algo " << static_cast<int>(algo) << "]";
      const std::string tag = tag_os.str();
      SCOPED_TRACE(tag);

      RunConfig cfg;
      cfg.plan = plan;
      cfg.reliable = fc.reliable;
      if (fc.reliable) {
        // A smaller budget than the default keeps the grid fast; the
        // default-parameter convergence claim is covered by the
        // reliable-link suite and the fault_tolerance bench.
        cfg.link = {5, 2, 8};
      }
      cfg.max_rounds = kMaxRounds;

      const Baseline& ideal = baseline(gseed, algo, g);
      ++pairs;
      const auto leg = [&](const RunConfig& run_cfg) {
        try {
          switch (algo) {
            case Algo::kMis: {
              const auto r =
                  elect_mis(g, std::vector<NodeId>(g.num_nodes(), 0), run_cfg);
              check_envelope(tag, fc.reliable, r.stats, ideal.stats);
              // MIS election is confluent: a complete reliable crash-free
              // run must reproduce the fault-free outcome exactly.
              if (fc.reliable && fc.crashes == 0 && r.complete) {
                EXPECT_EQ(r.mis, ideal.mis) << tag;
              }
              break;
            }
            case Algo::kAlzoubi: {
              const auto r = distributed_alzoubi_cds(g, run_cfg);
              check_envelope(tag, fc.reliable, r.total, ideal.stats);
              check_healing(tag, g, plan, r.cds);
              break;
            }
            case Algo::kGreedy: {
              const auto r = distributed_greedy_cds(g, run_cfg);
              check_envelope(tag, fc.reliable, r.total, ideal.stats);
              check_healing(tag, g, plan, r.cds);
              break;
            }
          }
        } catch (const RoundLimitError& e) {
          ADD_FAILURE() << tag << " failed to terminate: " << e.what();
        }
      };
      run_with_replay(tag, leg, cfg);
    }
  }
  EXPECT_GE(pairs, 200u);  // the acceptance floor for the grid size
}

// A reliable, crash-free execution at the grid's heaviest fault mix must
// not merely terminate but finish the construction: completeness is the
// difference between "did not crash" and "did its job".
TEST(Chaos, ReliableLegsComplete) {
  std::size_t complete = 0;
  std::size_t runs = 0;
  for (std::uint64_t gseed = 0; gseed < 10; ++gseed) {
    const Graph g = chaos_udg(100 + gseed);
    RunConfig cfg;
    cfg.reliable = true;
    cfg.plan.link = {0.3, 0.2, 1};
    cfg.plan.seed = gseed;
    cfg.max_rounds = kMaxRounds;
    cfg.pool = chaos_pool();
    ++runs;
    const auto r = elect_mis(g, std::vector<NodeId>(g.num_nodes(), 0), cfg);
    if (r.complete) ++complete;
  }
  // Default link parameters retry enough that every run completes.
  EXPECT_EQ(complete, runs);
}

}  // namespace
