#include "geom/closest.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "sim/rng.hpp"

namespace mcds::geom {
namespace {

TEST(ClosestPair, TrivialSizes) {
  EXPECT_EQ(closest_pair_distance(std::vector<Vec2>{}),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(closest_pair_distance(std::vector<Vec2>{{1, 1}}),
            std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(closest_pair_distance(std::vector<Vec2>{{0, 0}, {3, 4}}),
                   5.0);
  EXPECT_THROW((void)closest_pair(std::vector<Vec2>{{1, 1}}),
               std::invalid_argument);
}

TEST(ClosestPair, KnownConfiguration) {
  const std::vector<Vec2> pts{{0, 0}, {10, 0}, {10.5, 0}, {5, 5}};
  EXPECT_DOUBLE_EQ(closest_pair_distance(pts), 0.5);
  const auto [i, j] = closest_pair(pts);
  EXPECT_EQ(std::min(i, j), 1u);
  EXPECT_EQ(std::max(i, j), 2u);
}

TEST(ClosestPair, DuplicatePointsGiveZero) {
  const std::vector<Vec2> pts{{1, 1}, {2, 2}, {1, 1}};
  EXPECT_DOUBLE_EQ(closest_pair_distance(pts), 0.0);
}

// Property sweep: divide-and-conquer must match the quadratic reference
// on random inputs of varying size.
class ClosestPairRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClosestPairRandom, MatchesBruteForce) {
  sim::Rng rng(GetParam());
  const std::size_t n = 2 + rng.uniform_int(300);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(-10, 10), rng.uniform(-10, 10)});
  }
  double brute = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      brute = std::min(brute, dist(pts[i], pts[j]));
    }
  }
  EXPECT_NEAR(closest_pair_distance(pts), brute, 1e-12);
  const auto [a, b] = closest_pair(pts);
  EXPECT_NEAR(dist(pts[a], pts[b]), brute, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosestPairRandom,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(IsIndependent, ThresholdIsStrict) {
  // Distance exactly 1 is NOT independent (the paper requires > 1).
  const std::vector<Vec2> at_one{{0, 0}, {1, 0}};
  EXPECT_FALSE(is_independent_point_set(at_one, 1.0));
  const std::vector<Vec2> above{{0, 0}, {1.0001, 0}};
  EXPECT_TRUE(is_independent_point_set(above, 1.0));
  EXPECT_TRUE(is_independent_point_set(std::vector<Vec2>{}, 1.0));
  EXPECT_TRUE(is_independent_point_set(std::vector<Vec2>{{5, 5}}, 1.0));
}

}  // namespace
}  // namespace mcds::geom
