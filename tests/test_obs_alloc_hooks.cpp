// Global allocation counter used by the null-sink guard in test_obs.cpp.
// Lives in its own translation unit so the compiler cannot see the
// malloc-backed operator new definition at container call sites (which
// would trip -Wmismatched-new-delete false positives under -Werror).
// Replacing the global operator new is legal exactly once per program;
// this test binary owns it.

#include <atomic>
#include <cstdlib>
#include <new>

namespace mcds_test {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace mcds_test

void* operator new(std::size_t n) {
  mcds_test::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
