#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mcds::graph {
namespace {

TEST(Metrics, EmptyGraph) {
  const GraphMetrics m = compute_metrics(Graph{});
  EXPECT_EQ(m.nodes, 0u);
  EXPECT_EQ(m.edges, 0u);
  EXPECT_EQ(m.components, 0u);
  EXPECT_DOUBLE_EQ(m.avg_degree, 0.0);
}

TEST(Metrics, PathGraph) {
  const GraphMetrics m = compute_metrics(test::make_path(5));
  EXPECT_EQ(m.nodes, 5u);
  EXPECT_EQ(m.edges, 4u);
  EXPECT_EQ(m.min_degree, 1u);
  EXPECT_EQ(m.max_degree, 2u);
  EXPECT_DOUBLE_EQ(m.avg_degree, 8.0 / 5.0);
  EXPECT_EQ(m.components, 1u);
}

TEST(Metrics, StarGraph) {
  const GraphMetrics m = compute_metrics(test::make_star(9));
  EXPECT_EQ(m.min_degree, 1u);
  EXPECT_EQ(m.max_degree, 8u);
  EXPECT_EQ(m.components, 1u);
}

TEST(Metrics, DisconnectedComponentsCounted) {
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.finalize();
  const GraphMetrics m = compute_metrics(g);
  EXPECT_EQ(m.components, 4u);  // {0,1}, {2,3,4}, {5}, {6}
  EXPECT_EQ(m.min_degree, 0u);
}

TEST(Metrics, CompleteGraphRegular) {
  const GraphMetrics m = compute_metrics(test::make_complete(6));
  EXPECT_EQ(m.min_degree, 5u);
  EXPECT_EQ(m.max_degree, 5u);
  EXPECT_DOUBLE_EQ(m.avg_degree, 5.0);
}

}  // namespace
}  // namespace mcds::graph
