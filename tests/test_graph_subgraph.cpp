#include "graph/subgraph.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mcds::graph {
namespace {

TEST(InducedSubgraph, CycleMinusOneNodeIsPath) {
  const Graph g = test::make_cycle(5);
  const std::vector<NodeId> keep{0, 1, 2, 3};
  const auto sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.num_nodes(), 4u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  EXPECT_EQ(sub.mapping, keep);
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
  EXPECT_FALSE(sub.graph.has_edge(0, 3));
}

TEST(InducedSubgraph, MappingRoundTrips) {
  const Graph g = test::make_grid(3, 3);
  const std::vector<NodeId> keep{8, 4, 0};
  const auto sub = induced_subgraph(g, keep);
  // Edges in the subgraph must exist between the mapped originals.
  for (NodeId u = 0; u < sub.graph.num_nodes(); ++u) {
    for (const NodeId v : sub.graph.neighbors(u)) {
      EXPECT_TRUE(g.has_edge(sub.mapping[u], sub.mapping[v]));
    }
  }
}

TEST(InducedSubgraph, RejectsBadInput) {
  const Graph g = test::make_path(4);
  const std::vector<NodeId> dup{1, 1};
  EXPECT_THROW((void)induced_subgraph(g, dup), std::invalid_argument);
  const std::vector<NodeId> oob{1, 9};
  EXPECT_THROW((void)induced_subgraph(g, oob), std::invalid_argument);
}

TEST(SubsetConnectivity, PathSubsets) {
  const Graph g = test::make_path(6);
  EXPECT_TRUE(is_connected_subset(g, std::vector<NodeId>{1, 2, 3}));
  EXPECT_FALSE(is_connected_subset(g, std::vector<NodeId>{0, 2}));
  EXPECT_TRUE(is_connected_subset(g, std::vector<NodeId>{}));
  EXPECT_TRUE(is_connected_subset(g, std::vector<NodeId>{4}));
}

TEST(SubsetComponents, CountsComponents) {
  const Graph g = test::make_path(7);
  EXPECT_EQ(count_components_subset(g, std::vector<NodeId>{0, 1, 3, 5, 6}),
            3u);
  EXPECT_EQ(count_components_subset(g, std::vector<NodeId>{}), 0u);
  const auto [labels, count] =
      subset_components(g, std::vector<NodeId>{0, 1, 3, 5, 6});
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(labels[0], labels[1]);  // {0,1}
  EXPECT_NE(labels[1], labels[2]);  // {3}
  EXPECT_EQ(labels[3], labels[4]);  // {5,6}
}

TEST(SubsetComponents, StarCenterJoinsAll) {
  const Graph g = test::make_star(6);
  EXPECT_EQ(count_components_subset(g, std::vector<NodeId>{1, 2, 3}), 3u);
  EXPECT_EQ(count_components_subset(g, std::vector<NodeId>{0, 1, 2, 3}), 1u);
}

}  // namespace
}  // namespace mcds::graph
