#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/greedy_connect.hpp"
#include "core/kmcds.hpp"
#include "core/mis.hpp"
#include "exact/brute_force.hpp"
#include "graph/small_graph.hpp"
#include "test_util.hpp"
#include "udg/instance.hpp"

/// \file test_core_kmcds.cpp
/// The (k,m)-CDS family: phase-1 m-fold domination, the k=2
/// articulation-elimination phase, the witness validators, and the
/// differential suite against the exact (1,m) brute-force oracle. The
/// Km* suite names route these tests into the sanitizer CI legs.

namespace {

using mcds::graph::Graph;
using mcds::graph::NodeId;
using namespace mcds::core;

Graph corpus_udg(std::uint64_t seed, std::size_t nodes = 48,
                 double side = 8.0, double radius = 1.9) {
  mcds::udg::InstanceParams params;
  params.nodes = nodes;
  params.side = side;
  params.radius = radius;
  auto inst = mcds::udg::generate_connected_instance(params, seed);
  EXPECT_TRUE(inst.has_value()) << "graph seed " << seed;
  return inst->graph;
}

std::size_t coverage_of(const Graph& g, const std::vector<NodeId>& set,
                        NodeId v) {
  std::size_t count = 0;
  for (const NodeId u : g.neighbors(v)) {
    if (std::binary_search(set.begin(), set.end(), u)) ++count;
  }
  return count;
}

const std::vector<KmParams> kVariants = {{1, 1}, {1, 2}, {2, 1}, {2, 2}};

}  // namespace

TEST(KmCds, ParamsValidate) {
  EXPECT_NO_THROW((KmParams{1, 1}.validate()));
  EXPECT_NO_THROW((KmParams{2, 3}.validate()));
  EXPECT_THROW((KmParams{0, 1}.validate()), std::invalid_argument);
  EXPECT_THROW((KmParams{3, 1}.validate()), std::invalid_argument);
  EXPECT_THROW((KmParams{1, 0}.validate()), std::invalid_argument);
}

// m = 1 adds nothing on top of the BFS MIS: the deficit greedy starts
// with zero deficit and must return the seed untouched.
TEST(KmCds, MFoldWithM1IsExactlyTheBfsMis) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = corpus_udg(seed);
    std::vector<NodeId> mis = bfs_first_fit_mis(g).mis;
    std::sort(mis.begin(), mis.end());
    EXPECT_EQ(m_fold_dominators(g, 1), mis) << "seed " << seed;
  }
}

TEST(KmCds, MFoldCoverageHolds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = corpus_udg(seed);
    for (const std::uint32_t m : {2u, 3u}) {
      const std::vector<NodeId> d = m_fold_dominators(g, m);
      ASSERT_TRUE(std::is_sorted(d.begin(), d.end()));
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (std::binary_search(d.begin(), d.end(), v)) continue;
        EXPECT_GE(coverage_of(g, d, v), m)
            << "node " << v << " under-covered, seed " << seed << " m " << m;
      }
    }
  }
}

// Every shipped variant must pass its own witness validator on the
// random-UDG corpus, and the backbone must be the exact union of the
// three construction layers.
TEST(KmCds, AllVariantsPassCheckOnCorpus) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = corpus_udg(seed);
    for (const KmParams params : kVariants) {
      const KmCdsResult r = kmcds(g, params);
      const KmCheck check = check_kmcds(g, r.backbone, params);
      EXPECT_TRUE(check.ok)
          << "seed " << seed << " (" << params.k << "," << params.m
          << "): " << check.describe();

      std::vector<NodeId> expect = r.dominators;
      expect.insert(expect.end(), r.connectors.begin(), r.connectors.end());
      expect.insert(expect.end(), r.augmenters.begin(), r.augmenters.end());
      std::sort(expect.begin(), expect.end());
      EXPECT_EQ(r.backbone, expect);
      EXPECT_EQ(r.weight, static_cast<double>(r.backbone.size()));
      if (params.k == 1) {
        EXPECT_TRUE(r.augmenters.empty());
      }
    }
  }
}

// (1,1) degenerates to the paper's Section IV algorithm over the same
// engine — identical CDS, not merely an equivalent one.
TEST(KmCds, PlainVariantMatchesGreedyCds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = corpus_udg(seed);
    EXPECT_EQ(kmcds(g, {1, 1}).backbone, greedy_cds(g).cds) << "seed " << seed;
  }
}

// Uniform weights rank candidates identically to unit gains (the ratio
// is the gain itself), so the weighted pipeline must reproduce the
// unweighted backbone node for node.
TEST(KmCds, WeightedWithUniformWeightsMatchesUnweighted) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = corpus_udg(seed);
    const std::vector<double> uniform(g.num_nodes(), 1.0);
    const KmCdsResult w = kmcds_weighted(g, 2, uniform);
    const KmCdsResult u = kmcds(g, {1, 2});
    EXPECT_EQ(w.backbone, u.backbone) << "seed " << seed;
    EXPECT_EQ(w.weight, static_cast<double>(w.backbone.size()));
  }
}

TEST(KmCds, WeightedValidatesAndSumsWeights) {
  const Graph g = corpus_udg(2);
  std::vector<double> weight(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    weight[v] = 1.0 + 0.25 * static_cast<double>(v % 7);
  }
  const KmCdsResult r = kmcds_weighted(g, 2, weight);
  const KmCheck check = check_kmcds(g, r.backbone, {1, 2});
  EXPECT_TRUE(check.ok) << check.describe();
  double sum = 0.0;
  for (const NodeId v : r.backbone) sum += weight[v];
  EXPECT_DOUBLE_EQ(r.weight, sum);

  const std::vector<double> short_weight(g.num_nodes() - 1, 1.0);
  EXPECT_THROW((void)kmcds_weighted(g, 2, short_weight),
               std::invalid_argument);
  std::vector<double> zero_weight(g.num_nodes(), 1.0);
  zero_weight[0] = 0.0;
  EXPECT_THROW((void)kmcds_weighted(g, 2, zero_weight),
               std::invalid_argument);
}

TEST(KmCds, DisconnectedGraphThrows) {
  const Graph g = mcds::test::make_graph(4, {{0, 1}, {2, 3}});
  EXPECT_THROW((void)kmcds(g, {1, 2}), std::invalid_argument);
  EXPECT_THROW((void)m_fold_dominators(g, 2), std::invalid_argument);
}

TEST(KmCds, SingleNodeGraph) {
  const Graph g = mcds::test::make_graph(1, {});
  for (const KmParams params : kVariants) {
    const KmCdsResult r = kmcds(g, params);
    EXPECT_EQ(r.backbone, std::vector<NodeId>{0});
    EXPECT_TRUE(check_kmcds(g, r.backbone, params).ok);
  }
}

// ----------------------------------------------------------- validators

TEST(KmCheck, EmptySetIsRejectedWithDescription) {
  const Graph g = mcds::test::make_graph(3, {{0, 1}, {1, 2}});
  const KmCheck check = check_kmcds(g, {}, {1, 1});
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.defect, KmDefect::kEmpty);
  EXPECT_FALSE(check.describe().empty());
}

TEST(KmCheck, UnderCoveredNamesNodeAndShortfall) {
  const Graph g = mcds::test::make_graph(3, {{0, 1}, {1, 2}});  // path 0-1-2
  const std::vector<NodeId> set = {0};
  const KmCheck check = check_kmcds(g, set, {1, 2});
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.defect, KmDefect::kUnderCovered);
  EXPECT_EQ(check.witness, 1u);
  EXPECT_EQ(check.observed, 1u);
  EXPECT_EQ(check.required, 2u);
}

TEST(KmCheck, DisconnectedNamesBothFragments) {
  const Graph g = mcds::test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});  // C4
  const std::vector<NodeId> set = {0, 2};
  const KmCheck check = check_kmcds(g, set, {1, 1});
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.defect, KmDefect::kDisconnected);
  EXPECT_EQ(check.witness, 0u);
  EXPECT_EQ(check.witness2, 2u);
}

// On a path the middle member is a cut vertex, but G - 1 itself
// separates the ends: the topology, not the construction, is at fault,
// so the cut is excused.
TEST(KmCheck, TopologyForcedCutVertexIsExcused) {
  const Graph g = mcds::test::make_graph(3, {{0, 1}, {1, 2}});
  const std::vector<NodeId> set = {0, 1, 2};
  EXPECT_TRUE(check_kmcds(g, set, {2, 1}).ok);
}

// On C4 the backbone 0-1-2 has an avoidable cut at 1: node 3 offers a
// way around that the construction failed to take.
TEST(KmCheck, AvoidableCutVertexIsNamed) {
  const Graph g = mcds::test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const std::vector<NodeId> set = {0, 1, 2};
  const KmCheck check = check_kmcds(g, set, {2, 1});
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.defect, KmDefect::kCutVertex);
  EXPECT_EQ(check.witness, 1u);
  EXPECT_EQ(check.witness2, 2u);
  // The same set is fine as a (1,1) backbone, and kmcds' own (2,1)
  // construction on C4 must avoid the defect the validator names.
  EXPECT_TRUE(check_kmcds(g, set, {1, 1}).ok);
  const KmCdsResult r = kmcds(g, {2, 1});
  EXPECT_TRUE(check_kmcds(g, r.backbone, {2, 1}).ok);
}

TEST(KmCheck, OutOfRangeAndBadParamsThrow) {
  const Graph g = mcds::test::make_graph(2, {{0, 1}});
  const std::vector<NodeId> bad = {5};
  EXPECT_THROW((void)check_kmcds(g, bad, {1, 1}), std::invalid_argument);
  const std::vector<NodeId> ok = {0};
  EXPECT_THROW((void)check_kmcds(g, ok, {3, 1}), std::invalid_argument);
}

TEST(KmCheck, ComponentsMemberlessIslandIsUnderCovered) {
  // Two triangles, members only in the first.
  const Graph g = mcds::test::make_graph(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  const std::vector<NodeId> set = {0};
  const KmCheck check = check_kmcds_components(g, set, {1, 1});
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.defect, KmDefect::kUnderCovered);
  EXPECT_EQ(check.witness, 3u);
  EXPECT_EQ(check.observed, 0u);
}

TEST(KmCheck, ComponentsForestAcceptsPerIslandBackbones) {
  const Graph g = mcds::test::make_graph(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  const std::vector<NodeId> set = {0, 3};
  EXPECT_TRUE(check_kmcds_components(g, set, {1, 1}).ok);
  EXPECT_TRUE(check_kmcds_components(g, set, {2, 1}).ok);  // < 3 members/island
}

TEST(KmCheck, ComponentsAppliesCutVertexCheckPerIsland) {
  // C4 plus a far-away edge; the C4 members have an avoidable cut.
  const Graph g = mcds::test::make_graph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}});
  const std::vector<NodeId> set = {0, 1, 2, 4};
  const KmCheck check = check_kmcds_components(g, set, {2, 1});
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.defect, KmDefect::kCutVertex);
  EXPECT_EQ(check.witness, 1u);
  EXPECT_TRUE(check_kmcds_components(g, set, {1, 1}).ok);
}

// ---------------------------------------------------- differential suite

// Exhaustive agreement between the (1,m) predicate of check_kmcds and
// the bitmask brute-force predicate, over every subset of small random
// connected UDGs.
TEST(KmDifferential, PredicateAgreesWithBruteForceOnAllSubsets) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = corpus_udg(seed, /*nodes=*/9, /*side=*/3.0,
                               /*radius=*/1.4);
    const mcds::graph::SmallGraph sg(g);
    const mcds::graph::Mask end = sg.all();
    for (const std::uint32_t m : {1u, 2u, 3u}) {
      for (mcds::graph::Mask s = 0;; ++s) {
        std::vector<NodeId> set;
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          if ((s >> v) & 1u) set.push_back(v);
        }
        const bool oracle = mcds::exact::is_m_fold_cds(sg, s, m);
        const bool checked = check_kmcds(g, set, {1, m}).ok;
        ASSERT_EQ(oracle, checked)
            << "seed " << seed << " m " << m << " mask " << s;
        if (s == end) break;
      }
    }
  }
}

// The greedy (1,m) construction is valid and never beats the exact
// optimum the oracle enumerates (n <= 16 per the satellite spec).
TEST(KmDifferential, GreedyIsValidAndBoundedByExactOptimum) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = corpus_udg(seed, /*nodes=*/12, /*side=*/3.5,
                               /*radius=*/1.5);
    const mcds::graph::SmallGraph sg(g);
    for (const std::uint32_t m : {1u, 2u}) {
      const std::size_t opt = mcds::exact::m_fold_cds_number_brute_force(sg, m);
      const KmCdsResult r = kmcds(g, {1, m});
      EXPECT_TRUE(check_kmcds(g, r.backbone, {1, m}).ok);
      EXPECT_GE(r.backbone.size(), opt) << "seed " << seed << " m " << m;
      EXPECT_LE(r.backbone.size(), g.num_nodes());
      // The m = 1 oracle is the plain connected-domination number.
      if (m == 1) {
        EXPECT_EQ(opt,
                  mcds::exact::connected_domination_number_brute_force(sg));
      }
    }
  }
}
