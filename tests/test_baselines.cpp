#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "baselines/alzoubi.hpp"
#include "baselines/bharghavan_das.hpp"
#include "baselines/connect_util.hpp"
#include "baselines/guha_khuller.hpp"
#include "baselines/li_thai.hpp"
#include "baselines/prune.hpp"
#include "baselines/stojmenovic.hpp"
#include "baselines/wu_li.hpp"
#include "core/validate.hpp"
#include "test_util.hpp"
#include "udg/instance.hpp"

namespace mcds::baselines {
namespace {

using core::is_cds;

TEST(ConnectUtil, JoinsPathEndpoints) {
  const Graph g = test::make_path(5);
  const auto connectors =
      connect_via_shortest_paths(g, std::vector<NodeId>{0, 4});
  EXPECT_EQ(connectors.size(), 3u);  // 1, 2, 3 in some order
  const auto closure = connected_closure(g, std::vector<NodeId>{0, 4});
  EXPECT_EQ(closure, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(ConnectUtil, AlreadyConnectedSeedsNoop) {
  const Graph g = test::make_cycle(6);
  EXPECT_TRUE(
      connect_via_shortest_paths(g, std::vector<NodeId>{1, 2}).empty());
}

TEST(ConnectUtil, Preconditions) {
  const Graph g = test::make_path(3);
  EXPECT_THROW((void)connect_via_shortest_paths(g, {}),
               std::invalid_argument);
  graph::Graph disc(4);
  disc.add_edge(0, 1);
  disc.finalize();
  EXPECT_THROW((void)connect_via_shortest_paths(disc, {0, 2}),
               std::invalid_argument);
}

TEST(GuhaKhuller, KnownGraphs) {
  EXPECT_EQ(guha_khuller_cds(test::make_star(7)),
            (std::vector<NodeId>{0}));
  EXPECT_EQ(guha_khuller_cds(test::make_complete(5)).size(), 1u);
  const auto path_cds = guha_khuller_cds(test::make_path(6));
  EXPECT_TRUE(is_cds(test::make_path(6), path_cds));
}

TEST(GuhaKhuller, SingleNodeAndPreconditions) {
  EXPECT_EQ(guha_khuller_cds(graph::Graph(1)), (std::vector<NodeId>{0}));
  EXPECT_THROW((void)guha_khuller_cds(graph::Graph{}),
               std::invalid_argument);
  graph::Graph disc(3);
  disc.add_edge(0, 1);
  disc.finalize();
  EXPECT_THROW((void)guha_khuller_cds(disc), std::invalid_argument);
}

TEST(BharghavanDas, GreedyDsCoversEverything) {
  const Graph g = test::make_grid(5, 5);
  const auto ds = greedy_dominating_set(g);
  EXPECT_TRUE(core::is_dominating_set(g, ds));
  // Chvátal greedy on a star picks the hub alone.
  EXPECT_EQ(greedy_dominating_set(test::make_star(9)),
            (std::vector<NodeId>{0}));
}

TEST(WuLi, MarkingOnPath) {
  // Path 0-1-2-3: interior nodes have non-adjacent neighbors -> marked.
  const auto cds = wu_li_cds(test::make_path(4));
  EXPECT_EQ(cds, (std::vector<NodeId>{1, 2}));
}

TEST(WuLi, CompleteGraphFallsBackToSingleNode) {
  const auto cds = wu_li_cds(test::make_complete(6));
  EXPECT_EQ(cds.size(), 1u);
  EXPECT_TRUE(is_cds(test::make_complete(6), cds));
}

TEST(WuLi, Rule1PrunesCoveredNode) {
  // Two hubs joined: a node whose closed neighborhood is inside a
  // higher-id marked neighbor's should be unmarked.
  graph::Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(1, 3);  // chord
  g.finalize();
  const auto cds = wu_li_cds(g);
  EXPECT_TRUE(is_cds(g, cds));
  EXPECT_LE(cds.size(), 3u);
}

TEST(Prune, RemovesRedundantNodes) {
  const Graph g = test::make_star(8);
  // The whole vertex set is a valid but wasteful CDS.
  std::vector<NodeId> all;
  for (NodeId v = 0; v < 8; ++v) all.push_back(v);
  const auto pruned = prune_cds(g, all);
  EXPECT_EQ(pruned, (std::vector<NodeId>{0}));
}

TEST(Prune, RejectsNonCds) {
  const Graph g = test::make_path(5);
  EXPECT_THROW((void)prune_cds(g, std::vector<NodeId>{0, 1}),
               std::invalid_argument);
}

TEST(Prune, OutputIsMinimal) {
  udg::InstanceParams params;
  params.nodes = 60;
  params.side = 6.0;
  const auto inst = udg::generate_largest_component_instance(params, 3);
  const auto cds = stojmenovic_cds(inst.graph);
  const auto pruned = prune_cds(inst.graph, cds);
  EXPECT_TRUE(is_cds(inst.graph, pruned));
  EXPECT_LE(pruned.size(), cds.size());
  // Minimality: removing any single node breaks the CDS property.
  for (std::size_t i = 0; i < pruned.size() && pruned.size() > 1; ++i) {
    std::vector<NodeId> trial;
    for (std::size_t j = 0; j < pruned.size(); ++j) {
      if (j != i) trial.push_back(pruned[j]);
    }
    EXPECT_FALSE(is_cds(inst.graph, trial)) << "node " << pruned[i];
  }
}

// Property sweep: every baseline must produce a valid CDS on random
// connected UDGs across densities.
struct BaselineCase {
  std::string name;
  std::function<std::vector<NodeId>(const Graph&)> run;
};

class BaselineValidity
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BaselineValidity, ProducesValidCds) {
  const auto [algo, seed] = GetParam();
  const BaselineCase cases[] = {
      {"guha_khuller", [](const Graph& g) { return guha_khuller_cds(g); }},
      {"bharghavan_das",
       [](const Graph& g) { return bharghavan_das_cds(g); }},
      {"stojmenovic", [](const Graph& g) { return stojmenovic_cds(g); }},
      {"li_thai", [](const Graph& g) { return li_thai_cds(g); }},
      {"wu_li", [](const Graph& g) { return wu_li_cds(g); }},
      {"alzoubi", [](const Graph& g) { return alzoubi_cds(g); }},
  };
  const BaselineCase& c = cases[algo];

  udg::InstanceParams params;
  params.nodes = 70;
  params.side = 4.0 + static_cast<double>(seed % 4) * 2.0;
  const auto inst =
      udg::generate_largest_component_instance(params, seed * 13 + 1);
  const auto cds = c.run(inst.graph);
  EXPECT_TRUE(is_cds(inst.graph, cds))
      << c.name << " seed=" << seed << " n=" << inst.graph.num_nodes();
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSeeds, BaselineValidity,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Range<std::uint64_t>(1, 9)));

}  // namespace
}  // namespace mcds::baselines
