#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "dist/fault_json.hpp"

/// \file test_dist_fault_json.cpp
/// FaultPlan JSON serialization: exact save/load round-trips (the
/// contract a fuzzer-minimized repro depends on), strict rejection of
/// malformed input and unknown keys, and validation of the parsed plan.

namespace {

using namespace mcds::dist;
using mcds::graph::NodeId;

FaultPlan sample_plan() {
  FaultPlan plan;
  plan.seed = 0xDEADBEEFCAFEBABEull;
  plan.link = {0.125, 0.0625, 3};
  plan.overrides.push_back({2, 5, {0.5, 0.0, 1}});
  plan.overrides.push_back({5, 2, {0.0, 1.0, 0}});
  plan.schedule.push_back({0, 7, false});
  plan.schedule.push_back({12, 7, true});
  PartitionEvent split;
  split.round = 4;
  split.groups = {{0, 1, 2}, {3, 4}};
  plan.partitions.push_back(split);
  plan.partitions.push_back({9, {}});
  return plan;
}

bool plans_equal(const FaultPlan& a, const FaultPlan& b) {
  // The JSON form is canonical, so textual equality is plan equality.
  return to_json(a) == to_json(b);
}

}  // namespace

TEST(FaultJson, RoundTripsEveryField) {
  const FaultPlan plan = sample_plan();
  const FaultPlan parsed = fault_plan_from_json(to_json(plan));
  EXPECT_TRUE(plans_equal(plan, parsed)) << to_json(parsed);
  EXPECT_EQ(parsed.seed, plan.seed);
  ASSERT_EQ(parsed.overrides.size(), 2u);
  EXPECT_EQ(parsed.overrides[0].from, 2u);
  EXPECT_EQ(parsed.overrides[0].faults.drop, 0.5);
  ASSERT_EQ(parsed.schedule.size(), 2u);
  EXPECT_FALSE(parsed.schedule[0].up);
  EXPECT_TRUE(parsed.schedule[1].up);
  ASSERT_EQ(parsed.partitions.size(), 2u);
  ASSERT_EQ(parsed.partitions[0].groups.size(), 2u);
  EXPECT_EQ(parsed.partitions[0].groups[1], (std::vector<NodeId>{3, 4}));
  EXPECT_TRUE(parsed.partitions[1].heals());
}

TEST(FaultJson, TrivialPlanRoundTrips) {
  const FaultPlan parsed = fault_plan_from_json(to_json(FaultPlan{}));
  EXPECT_TRUE(parsed.trivial());
  EXPECT_EQ(parsed.seed, 0u);
}

TEST(FaultJson, IrrationalRatesSurviveExactly) {
  FaultPlan plan;
  plan.link.drop = 1.0 / 3.0;
  plan.link.duplicate = 0.1;  // not exactly representable
  const FaultPlan parsed = fault_plan_from_json(to_json(plan));
  EXPECT_EQ(parsed.link.drop, plan.link.drop);
  EXPECT_EQ(parsed.link.duplicate, plan.link.duplicate);
}

TEST(FaultJson, SaveLoadRoundTripsThroughDisk) {
  const std::string path = ::testing::TempDir() + "fault_json_roundtrip.json";
  const FaultPlan plan = sample_plan();
  save_fault_plan(plan, path);
  const FaultPlan loaded = load_fault_plan(path);
  EXPECT_TRUE(plans_equal(plan, loaded));
  std::remove(path.c_str());
}

TEST(FaultJson, RejectsMalformedInput) {
  EXPECT_THROW((void)fault_plan_from_json(""), std::invalid_argument);
  EXPECT_THROW((void)fault_plan_from_json("[]"), std::invalid_argument);
  EXPECT_THROW((void)fault_plan_from_json("{\"seed\": }"),
               std::invalid_argument);
  EXPECT_THROW((void)fault_plan_from_json("{\"seed\": 1} trailing"),
               std::invalid_argument);
  EXPECT_THROW((void)fault_plan_from_json("{\"sede\": 1}"),
               std::invalid_argument);  // unknown key, loud not silent
  EXPECT_THROW((void)fault_plan_from_json("{\"link\": {\"dorp\": 0.1}}"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)fault_plan_from_json("{\"seed\": 99999999999999999999999999}"),
      std::invalid_argument);  // u64 overflow
}

TEST(FaultJson, ParsedPlansAreValidated) {
  // Structurally valid JSON, semantically invalid plan: out-of-range
  // rate and one node in two partition groups.
  EXPECT_THROW((void)fault_plan_from_json("{\"link\": {\"drop\": 1.5}}"),
               std::invalid_argument);
  EXPECT_THROW((void)fault_plan_from_json(
                   "{\"partitions\": [{\"round\": 1, "
                   "\"groups\": [[0, 1], [1, 2]]}]}"),
               std::invalid_argument);
}

TEST(FaultJson, LoadOfMissingFileThrows) {
  EXPECT_THROW((void)load_fault_plan("/nonexistent/dir/plan.json"),
               std::runtime_error);
}
