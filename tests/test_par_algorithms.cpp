// Differential tests for the parallel overloads of the UDG builder and
// the validation sweeps: at every worker count they must produce exactly
// what the serial implementations produce — same edge set, same
// verdicts, same witnesses.

#include <gtest/gtest.h>

#include <vector>

#include "core/validate.hpp"
#include "geom/vec2.hpp"
#include "par/thread_pool.hpp"
#include "sim/rng.hpp"
#include "udg/builder.hpp"
#include "udg/instance.hpp"

namespace {

using mcds::geom::Vec2;
using mcds::graph::NodeId;
using mcds::par::ThreadPool;

std::vector<Vec2> random_points(std::size_t n, double side,
                                std::uint64_t seed) {
  mcds::sim::Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  return pts;
}

TEST(ParUdgBuild, MatchesSerialBuilderAcrossThreadCounts) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto pts = random_points(500, 12.0, seed);
      const auto serial = mcds::udg::build_udg(pts, 1.0);
      const auto pooled = mcds::udg::build_udg(pts, 1.0, pool);
      ASSERT_EQ(pooled.num_nodes(), serial.num_nodes());
      ASSERT_EQ(pooled.num_edges(), serial.num_edges())
          << "threads " << threads << " seed " << seed;
      EXPECT_EQ(pooled.edges(), serial.edges())
          << "threads " << threads << " seed " << seed;
    }
  }
}

TEST(ParUdgBuild, HandlesSmallInputs) {
  ThreadPool pool(4);
  EXPECT_EQ(mcds::udg::build_udg({}, 1.0, pool).num_nodes(), 0u);
  const std::vector<Vec2> one{{0.5, 0.5}};
  EXPECT_EQ(mcds::udg::build_udg(one, 1.0, pool).num_edges(), 0u);
  const std::vector<Vec2> pair{{0.0, 0.0}, {1.0, 0.0}};
  // Closed-disk model: distance exactly radius is an edge.
  EXPECT_EQ(mcds::udg::build_udg(pair, 1.0, pool).num_edges(), 1u);
}

TEST(ParUdgBuild, RejectsNonPositiveRadius) {
  ThreadPool pool(2);
  const auto pts = random_points(10, 3.0, 1);
  EXPECT_THROW(mcds::udg::build_udg(pts, 0.0, pool), std::invalid_argument);
  EXPECT_THROW(mcds::udg::build_udg(pts, -1.0, pool), std::invalid_argument);
}

TEST(ParValidate, DominationMatchesSerialOnValidAndBrokenSets) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto inst = mcds::udg::generate_instance(
          {.nodes = 400, .side = 11.0}, seed);
      const auto& g = inst.graph;
      // A trivially valid dominating set: every node.
      std::vector<NodeId> all(g.num_nodes());
      for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
      EXPECT_EQ(mcds::core::is_dominating_set(g, all),
                mcds::core::is_dominating_set(g, all, pool));
      // Progressively smaller prefixes flip the verdict at some point;
      // parallel and serial must flip at exactly the same prefixes.
      for (const std::size_t keep :
           {g.num_nodes() / 2, g.num_nodes() / 8, std::size_t{1}}) {
        const std::span<const NodeId> prefix(all.data(), keep);
        EXPECT_EQ(mcds::core::is_dominating_set(g, prefix),
                  mcds::core::is_dominating_set(g, prefix, pool))
            << "threads " << threads << " seed " << seed << " keep " << keep;
      }
    }
  }
}

TEST(ParValidate, CheckCdsWitnessesAreThreadCountInvariant) {
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto inst = mcds::udg::generate_instance(
        {.nodes = 300, .side = 10.0}, seed);
    const auto& g = inst.graph;
    // An undersized set leaves undominated nodes; the reported witness
    // must be identical serial vs pooled (lowest-index merge rule).
    const std::vector<NodeId> tiny{0};
    const auto serial = mcds::core::check_cds(g, tiny);
    const auto p2 = mcds::core::check_cds(g, tiny, pool2);
    const auto p8 = mcds::core::check_cds(g, tiny, pool8);
    EXPECT_EQ(serial.ok, p2.ok);
    EXPECT_EQ(serial.defect, p2.defect);
    EXPECT_EQ(serial.witness, p2.witness);
    EXPECT_EQ(serial.witness2, p2.witness2);
    EXPECT_EQ(serial.ok, p8.ok);
    EXPECT_EQ(serial.defect, p8.defect);
    EXPECT_EQ(serial.witness, p8.witness);
    EXPECT_EQ(serial.witness2, p8.witness2);
  }
}

TEST(ParValidate, IsCdsAgreesWithSerialOnSolverOutput) {
  ThreadPool pool(4);
  const auto inst = mcds::udg::generate_instance(
      {.nodes = 250, .side = 9.0}, 5);
  const auto& g = inst.graph;
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  EXPECT_EQ(mcds::core::is_cds(g, all), mcds::core::is_cds(g, all, pool));
  EXPECT_EQ(mcds::core::is_cds(g, {}), mcds::core::is_cds(g, {}, pool));
}

}  // namespace
