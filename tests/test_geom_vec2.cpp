#include "geom/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <sstream>

namespace mcds::geom {
namespace {

TEST(Vec2, ArithmeticOperators) {
  const Vec2 a{1.0, 2.0}, b{3.0, -4.0};
  EXPECT_EQ(a + b, Vec2(4.0, -2.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Vec2(1.5, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 2.0}, b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 11.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -2.0);
  EXPECT_DOUBLE_EQ(Vec2(1, 0).cross(Vec2(0, 1)), 1.0);
}

TEST(Vec2, NormAndDistance) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(dist(Vec2(0, 0), a), 5.0);
  EXPECT_DOUBLE_EQ(dist2(Vec2(1, 1), Vec2(4, 5)), 25.0);
}

TEST(Vec2, Normalized) {
  const Vec2 n = Vec2{3.0, 4.0}.normalized();
  EXPECT_NEAR(n.norm(), 1.0, kEps);
  EXPECT_NEAR(n.x, 0.6, kEps);
  EXPECT_NEAR(n.y, 0.8, kEps);
}

TEST(Vec2, RotationQuarterTurn) {
  const Vec2 r = Vec2{1.0, 0.0}.rotated(std::numbers::pi / 2.0);
  EXPECT_TRUE(almost_equal(r, Vec2(0.0, 1.0)));
  EXPECT_EQ(Vec2(1.0, 0.0).perp(), Vec2(0.0, 1.0));
}

TEST(Vec2, RotationPreservesNorm) {
  const Vec2 v{2.5, -1.5};
  for (double a = 0.0; a < 6.3; a += 0.37) {
    EXPECT_NEAR(v.rotated(a).norm(), v.norm(), kEps);
  }
}

TEST(Vec2, Angle) {
  EXPECT_NEAR(Vec2(1.0, 0.0).angle(), 0.0, kEps);
  EXPECT_NEAR(Vec2(0.0, 1.0).angle(), std::numbers::pi / 2.0, kEps);
  EXPECT_NEAR(Vec2(-1.0, 0.0).angle(), std::numbers::pi, kEps);
}

TEST(Vec2, LerpAndMidpoint) {
  const Vec2 a{0.0, 0.0}, b{2.0, 4.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.25), Vec2(0.5, 1.0));
  EXPECT_EQ(midpoint(a, b), Vec2(1.0, 2.0));
}

TEST(Vec2, FromPolar) {
  const Vec2 p = from_polar({1.0, 1.0}, 2.0, std::numbers::pi / 2.0);
  EXPECT_TRUE(almost_equal(p, Vec2(1.0, 3.0)));
}

TEST(Vec2, AlmostEqualTolerance) {
  EXPECT_TRUE(almost_equal(Vec2(1.0, 1.0), Vec2(1.0 + 1e-12, 1.0)));
  EXPECT_FALSE(almost_equal(Vec2(1.0, 1.0), Vec2(1.1, 1.0)));
  EXPECT_TRUE(almost_equal(1.0, 1.05, 0.1));
  EXPECT_FALSE(almost_equal(1.0, 1.05, 0.01));
}

TEST(Vec2, StreamOutput) {
  std::ostringstream ss;
  ss << Vec2{1.5, -2.0};
  EXPECT_EQ(ss.str(), "(1.5, -2)");
}

}  // namespace
}  // namespace mcds::geom
