#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mcds::sim {
namespace {

TEST(Accumulator, KnownValues) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(Accumulator, EmptyAndSingle) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.stdev(), 0.0);
  EXPECT_DOUBLE_EQ(acc.ci95_halfwidth(), 0.0);
}

TEST(Accumulator, CiShrinksWithSamples) {
  Accumulator small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Summarize, FullSummary) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stdev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, EmptyIsZero) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0 / 3.0), 20.0);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> xs{30.0, 10.0, 40.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
}

TEST(P2Quantile, ExactBelowFiveObservations) {
  P2Quantile q(0.5);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);  // empty
  q.add(7.0);
  EXPECT_DOUBLE_EQ(q.value(), 7.0);
  EXPECT_EQ(q.count(), 1u);
  q.add(3.0);
  q.add(5.0);
  // Exact median of {3, 5, 7}.
  EXPECT_DOUBLE_EQ(q.value(), 5.0);
}

TEST(P2Quantile, ClampsOutOfRangeQuantile) {
  // Out-of-range q is clamped at construction: the estimator must track
  // exactly what an explicit q=0 / q=1 estimator computes.
  P2Quantile lo(-0.5), lo_ref(0.0);
  P2Quantile hi(1.5), hi_ref(1.0);
  for (double x = 1.0; x <= 100.0; x += 1.0) {
    lo.add(x);
    lo_ref.add(x);
    hi.add(x);
    hi_ref.add(x);
  }
  EXPECT_DOUBLE_EQ(lo.value(), lo_ref.value());
  EXPECT_DOUBLE_EQ(hi.value(), hi_ref.value());
}

TEST(P2Quantile, TracksUniformRampWithinTolerance) {
  // A deterministic pseudo-shuffled ramp over [0, 1000): the estimates
  // must land within a few percent of the true quantiles.
  P2Quantile p50(0.50), p95(0.95), p99(0.99);
  const std::size_t n = 1000;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>((i * 617) % n);
    p50.add(x);
    p95.add(x);
    p99.add(x);
  }
  EXPECT_EQ(p50.count(), n);
  EXPECT_NEAR(p50.value(), 500.0, 30.0);
  EXPECT_NEAR(p95.value(), 950.0, 30.0);
  EXPECT_NEAR(p99.value(), 990.0, 15.0);
}

TEST(P2Quantile, ZeroAndOneSampleEdgeCases) {
  for (const double q : {0.0, 0.5, 0.99}) {
    P2Quantile est(q);
    EXPECT_EQ(est.count(), 0u);
    EXPECT_DOUBLE_EQ(est.value(), 0.0);  // empty estimator reads 0
    est.add(-3.25);
    EXPECT_EQ(est.count(), 1u);
    // A single observation is every quantile of its own distribution.
    EXPECT_DOUBLE_EQ(est.value(), -3.25);
  }
}

TEST(P2Quantile, AllEqualStreamStaysExact) {
  // Degenerate distributions are where the parabolic marker update can
  // divide by a zero height gap: the estimate must stay pinned.
  P2Quantile p50(0.50), p99(0.99);
  for (int i = 0; i < 1000; ++i) {
    p50.add(42.0);
    p99.add(42.0);
  }
  EXPECT_DOUBLE_EQ(p50.value(), 42.0);
  EXPECT_DOUBLE_EQ(p99.value(), 42.0);
}

TEST(P2Quantile, AdversarialInsertionOrders) {
  // The P² invariants must hold for sorted, reversed and oscillating
  // input orders, not just shuffled streams: estimates stay inside the
  // observed range and near the true quantile.
  const std::size_t n = 1000;
  P2Quantile descending(0.50);
  for (std::size_t i = n; i > 0; --i) {
    descending.add(static_cast<double>(i));
  }
  EXPECT_GE(descending.value(), 1.0);
  EXPECT_LE(descending.value(), static_cast<double>(n));
  EXPECT_NEAR(descending.value(), 500.0, 50.0);

  P2Quantile ascending(0.95);
  for (std::size_t i = 1; i <= n; ++i) {
    ascending.add(static_cast<double>(i));
  }
  EXPECT_NEAR(ascending.value(), 950.0, 50.0);

  // Alternating extremes: half the mass at 0, half at 100. Any p50
  // estimate inside the range is admissible; p95 must sit near the top.
  P2Quantile alt50(0.50), alt95(0.95);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = (i % 2 == 0) ? 0.0 : 100.0;
    alt50.add(x);
    alt95.add(x);
  }
  EXPECT_GE(alt50.value(), 0.0);
  EXPECT_LE(alt50.value(), 100.0);
  EXPECT_GE(alt95.value(), 50.0);
  EXPECT_LE(alt95.value(), 100.0);
}

TEST(Accumulator, QuantilesMatchP2OnStream) {
  Accumulator acc;
  for (int i = 1; i <= 500; ++i) {
    acc.add(static_cast<double>((i * 211) % 500));
  }
  EXPECT_NEAR(acc.p50(), 250.0, 25.0);
  EXPECT_NEAR(acc.p95(), 475.0, 20.0);
  EXPECT_NEAR(acc.p99(), 495.0, 10.0);
}

TEST(Summarize, QuantileFieldsAreExact) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.p50, percentile(xs, 0.50));
  EXPECT_DOUBLE_EQ(s.p95, percentile(xs, 0.95));
  EXPECT_DOUBLE_EQ(s.p99, percentile(xs, 0.99));
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(Percentile, Preconditions) {
  EXPECT_THROW((void)percentile(std::vector<double>{}, 0.5),
               std::invalid_argument);
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)percentile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 1.1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.99), 1.0);
}

}  // namespace
}  // namespace mcds::sim
