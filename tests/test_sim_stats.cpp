#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mcds::sim {
namespace {

TEST(Accumulator, KnownValues) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(Accumulator, EmptyAndSingle) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.stdev(), 0.0);
  EXPECT_DOUBLE_EQ(acc.ci95_halfwidth(), 0.0);
}

TEST(Accumulator, CiShrinksWithSamples) {
  Accumulator small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Summarize, FullSummary) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stdev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, EmptyIsZero) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0 / 3.0), 20.0);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> xs{30.0, 10.0, 40.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
}

TEST(Percentile, Preconditions) {
  EXPECT_THROW((void)percentile(std::vector<double>{}, 0.5),
               std::invalid_argument);
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)percentile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 1.1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.99), 1.0);
}

}  // namespace
}  // namespace mcds::sim
