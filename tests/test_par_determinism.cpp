// Batch determinism regression: the BatchSolver's output — every
// per-instance CDS and every aggregate Summary field — must be
// bit-identical at 1, 2 and 8 worker threads. This is the enforceable
// form of the pool's determinism contract (index-aligned outcome slots,
// index-ordered aggregation); a scheduling-dependent reduction or a
// data race in a solver shows up here as a corpus diff.

#include <gtest/gtest.h>

#include <vector>

#include "par/batch_solver.hpp"
#include "par/thread_pool.hpp"
#include "sim/stats.hpp"
#include "udg/instance.hpp"

namespace {

using mcds::par::BatchOutcome;
using mcds::par::BatchResult;
using mcds::par::BatchSolver;
using mcds::par::ThreadPool;

// Bitwise equality for the aggregate: summarize() runs over the same
// index-ordered doubles on every path, so even the floating-point
// fields must match exactly — EXPECT_EQ on doubles is intentional.
void expect_summaries_identical(const mcds::sim::Summary& a,
                                const mcds::sim::Summary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stdev, b.stdev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.ci95, b.ci95);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.p99, b.p99);
}

void expect_results_identical(const BatchResult& a, const BatchResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].cds, b.outcomes[i].cds) << "instance " << i;
    EXPECT_EQ(a.outcomes[i].dominators, b.outcomes[i].dominators)
        << "instance " << i;
    EXPECT_EQ(a.outcomes[i].nodes, b.outcomes[i].nodes) << "instance " << i;
  }
  expect_summaries_identical(a.cds_size, b.cds_size);
  expect_summaries_identical(a.dominators, b.dominators);
  expect_summaries_identical(a.backbone_fraction, b.backbone_fraction);
}

BatchResult run(const std::vector<mcds::udg::UdgInstance>& corpus,
                std::size_t threads, const mcds::par::BatchSolveFn& solver) {
  ThreadPool pool(threads);
  const BatchSolver batch(pool);
  return batch.solve(corpus, solver);
}

TEST(ParDeterminism, GreedyCorpusIsIdenticalAt1_2_8Threads) {
  // 200 instances, the corpus size pinned by ISSUE: big enough that
  // every worker interleaving actually occurs at 8 threads.
  const auto corpus = mcds::par::make_corpus(
      {.nodes = 60, .side = 7.0}, 200, /*seed0=*/1000);
  ASSERT_EQ(corpus.size(), 200u);
  const auto r1 = run(corpus, 1, mcds::par::solve_greedy);
  const auto r2 = run(corpus, 2, mcds::par::solve_greedy);
  const auto r8 = run(corpus, 8, mcds::par::solve_greedy);
  expect_results_identical(r1, r2);
  expect_results_identical(r1, r8);
  // Sanity: the corpus actually produced nontrivial backbones.
  EXPECT_EQ(r1.cds_size.count, 200u);
  EXPECT_GT(r1.cds_size.mean, 1.0);
}

TEST(ParDeterminism, WafCorpusIsIdenticalAcrossThreadCounts) {
  const auto corpus = mcds::par::make_corpus(
      {.nodes = 50, .side = 6.0}, 40, /*seed0=*/7000);
  const auto r1 = run(corpus, 1, mcds::par::solve_waf);
  const auto r8 = run(corpus, 8, mcds::par::solve_waf);
  expect_results_identical(r1, r8);
}

TEST(ParDeterminism, RepeatedRunsOnOnePoolAreIdentical) {
  // Reusing a warm pool (non-empty steal counters, arbitrary cursor
  // position) must not leak into results.
  const auto corpus = mcds::par::make_corpus(
      {.nodes = 40, .side = 5.0}, 30, /*seed0=*/4000);
  ThreadPool pool(4);
  const BatchSolver batch(pool);
  const auto a = batch.solve(corpus, mcds::par::solve_greedy);
  const auto b = batch.solve(corpus, mcds::par::solve_greedy);
  expect_results_identical(a, b);
}

// Error containment: a throwing solve marks only its own slot failed
// (structured error, no rethrow) and leaves every other slot — and the
// corpus summaries, which skip failed slots — bit-identical to a clean
// run, at any thread count.
TEST(ParDeterminism, ThrownJobPoisonsOnlyItsSlotAt1_2_8Threads) {
  const auto corpus = mcds::par::make_corpus(
      {.nodes = 30, .side = 4.0}, 16, /*seed0=*/2000);
  const auto failing = [](const mcds::udg::UdgInstance& inst) -> BatchOutcome {
    if (inst.seed == 2003 || inst.seed == 2010) {
      throw std::runtime_error("seed " + std::to_string(inst.seed));
    }
    return mcds::par::solve_greedy(inst);
  };

  // The clean reference: same corpus, same solver, no failures — but
  // with the two poisoned instances removed from the summary inputs so
  // the aggregate comparison below is apples-to-apples.
  std::vector<mcds::udg::UdgInstance> clean_corpus;
  for (const auto& inst : corpus) {
    if (inst.seed != 2003 && inst.seed != 2010) clean_corpus.push_back(inst);
  }
  const auto clean = run(clean_corpus, 1, mcds::par::solve_greedy);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto r = run(corpus, threads, failing);
    ASSERT_EQ(r.outcomes.size(), corpus.size()) << threads << " threads";
    EXPECT_EQ(r.failed, 2u) << threads << " threads";
    std::size_t clean_i = 0;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const auto& o = r.outcomes[i];
      if (corpus[i].seed == 2003 || corpus[i].seed == 2010) {
        EXPECT_TRUE(o.failed) << "instance " << i;
        EXPECT_EQ(o.error, "seed " + std::to_string(corpus[i].seed));
        EXPECT_TRUE(o.cds.empty()) << "failed slot must not carry a result";
        EXPECT_EQ(o.nodes, corpus[i].graph.num_nodes());
      } else {
        EXPECT_FALSE(o.failed) << "instance " << i;
        EXPECT_TRUE(o.error.empty()) << "instance " << i;
        EXPECT_EQ(o.cds, clean.outcomes[clean_i].cds)
            << "instance " << i << " at " << threads << " threads";
        EXPECT_EQ(o.dominators, clean.outcomes[clean_i].dominators);
        ++clean_i;
      }
    }
    // Summaries skip failed slots, so they match the clean reference
    // exactly (bitwise — same index-ordered doubles on both paths).
    expect_summaries_identical(r.cds_size, clean.cds_size);
    expect_summaries_identical(r.dominators, clean.dominators);
    expect_summaries_identical(r.backbone_fraction, clean.backbone_fraction);
  }
}

}  // namespace
