#include "dist/runtime.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mcds::dist {
namespace {

// Toy protocol: node 0 sends a token that each node forwards to its
// highest-id unvisited neighbor; used to validate delivery and counting.
class TokenPass final : public Protocol {
 public:
  explicit TokenPass(Runtime& rt)
      : rt_(rt), visited_(rt.topology().num_nodes(), false) {}

  void start(NodeId self) override {
    if (self == 0) {
      visited_[0] = true;
      forward(self);
    }
  }

  void step(NodeId self, std::span<const Message> inbox) override {
    if (inbox.empty()) return;
    visited_[self] = true;
    forward(self);
  }

  [[nodiscard]] std::size_t visited_count() const {
    std::size_t c = 0;
    for (const bool v : visited_) c += v ? 1 : 0;
    return c;
  }

 private:
  void forward(NodeId self) {
    for (const NodeId v : rt_.topology().neighbors(self)) {
      if (!visited_[v]) {
        rt_.send(self, v, Message{});
        return;
      }
    }
  }

  Runtime& rt_;
  std::vector<bool> visited_;
};

TEST(Runtime, TokenTraversesPath) {
  const Graph g = test::make_path(6);
  Runtime rt(g);
  TokenPass p(rt);
  const RunStats stats = rt.run(p);
  EXPECT_EQ(p.visited_count(), 6u);
  EXPECT_EQ(stats.messages, 5u);  // one hop per edge of the path
  EXPECT_EQ(stats.rounds, 5u);
}

TEST(Runtime, SendRequiresAdjacency) {
  const Graph g = test::make_path(4);
  Runtime rt(g);
  EXPECT_THROW(rt.send(0, 2, Message{}), std::invalid_argument);
  EXPECT_NO_THROW(rt.send(0, 1, Message{}));
}

TEST(Runtime, BroadcastReachesAllNeighbors) {
  const Graph g = test::make_star(5);
  Runtime rt(g);

  class CountInbox final : public Protocol {
   public:
    explicit CountInbox(Runtime& rt) : rt_(rt), got_(5, 0) {}
    void start(NodeId self) override {
      if (self == 0) rt_.broadcast(0, Message{});
    }
    void step(NodeId self, std::span<const Message> inbox) override {
      got_[self] += inbox.size();
    }
    Runtime& rt_;
    std::vector<std::size_t> got_;
  };

  CountInbox p(rt);
  const RunStats stats = rt.run(p);
  EXPECT_EQ(stats.messages, 4u);
  EXPECT_EQ(stats.rounds, 1u);
  for (NodeId leaf = 1; leaf < 5; ++leaf) EXPECT_EQ(p.got_[leaf], 1u);
  EXPECT_EQ(p.got_[0], 0u);
}

TEST(Runtime, FromFieldStamped) {
  const Graph g = test::make_path(2);
  Runtime rt(g);

  class CheckFrom final : public Protocol {
   public:
    explicit CheckFrom(Runtime& rt) : rt_(rt) {}
    void start(NodeId self) override {
      if (self == 1) rt_.send(1, 0, Message{.from = 99, .type = 5});
    }
    void step(NodeId self, std::span<const Message> inbox) override {
      if (self == 0 && !inbox.empty()) {
        from = inbox[0].from;
        type = inbox[0].type;
      }
    }
    Runtime& rt_;
    NodeId from = 42;
    std::int32_t type = 0;
  };

  CheckFrom p(rt);
  (void)rt.run(p);
  EXPECT_EQ(p.from, 1u);  // runtime overwrites the forged from
  EXPECT_EQ(p.type, 5);
}

TEST(Runtime, RoundLimitGuard) {
  const Graph g = test::make_path(2);
  Runtime rt(g);

  // Ping-pong forever.
  class PingPong final : public Protocol {
   public:
    explicit PingPong(Runtime& rt) : rt_(rt) {}
    void start(NodeId self) override {
      if (self == 0) rt_.send(0, 1, Message{});
    }
    void step(NodeId self, std::span<const Message> inbox) override {
      if (!inbox.empty()) rt_.send(self, self == 0 ? 1 : 0, Message{});
    }
    Runtime& rt_;
  };

  PingPong p(rt);
  EXPECT_THROW((void)rt.run(p, 50), std::runtime_error);
}

TEST(Runtime, QuiescenceWithNoInitialMessages) {
  const Graph g = test::make_path(3);
  Runtime rt(g);

  class Silent final : public Protocol {
   public:
    void start(NodeId) override {}
    void step(NodeId, std::span<const Message>) override {}
  };

  Silent p;
  const RunStats stats = rt.run(p);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.messages, 0u);
}

}  // namespace
}  // namespace mcds::dist
