#include "core/mis.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/validate.hpp"
#include "test_util.hpp"
#include "udg/instance.hpp"

namespace mcds::core {
namespace {

TEST(FirstFitMis, PathFromEnd) {
  const Graph g = test::make_path(5);
  std::vector<NodeId> order{0, 1, 2, 3, 4};
  const MisResult r = first_fit_mis(g, order);
  EXPECT_EQ(r.mis, (std::vector<NodeId>{0, 2, 4}));
  EXPECT_TRUE(r.in_mis[0]);
  EXPECT_FALSE(r.in_mis[1]);
}

TEST(FirstFitMis, OrderMatters) {
  const Graph g = test::make_path(4);
  const std::vector<NodeId> inner_first{1, 2, 0, 3};
  const MisResult r = first_fit_mis(g, inner_first);
  EXPECT_EQ(r.mis, (std::vector<NodeId>{1, 3}));
}

TEST(FirstFitMis, RejectsBadOrder) {
  const Graph g = test::make_path(3);
  const std::vector<NodeId> dup{0, 0};
  EXPECT_THROW((void)first_fit_mis(g, dup), std::invalid_argument);
  const std::vector<NodeId> oob{7};
  EXPECT_THROW((void)first_fit_mis(g, oob), std::invalid_argument);
}

TEST(BfsFirstFitMis, RootAlwaysJoins) {
  const Graph g = test::make_grid(4, 4);
  for (NodeId root : {0u, 5u, 15u}) {
    const MisResult r = bfs_first_fit_mis(g, root);
    EXPECT_TRUE(r.in_mis[root]);
    EXPECT_EQ(r.bfs.root, root);
  }
}

TEST(BfsFirstFitMis, RequiresConnected) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_THROW((void)bfs_first_fit_mis(g, 0), std::invalid_argument);
  EXPECT_THROW((void)bfs_first_fit_mis(graph::Graph{}, 0),
               std::invalid_argument);
}

TEST(BfsFirstFitMis, SingleNode) {
  const graph::Graph g(1);
  const MisResult r = bfs_first_fit_mis(g, 0);
  EXPECT_EQ(r.mis, (std::vector<NodeId>{0}));
}

TEST(LowestIdMis, WorksOnDisconnected) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  const MisResult r = lowest_id_mis(g);
  EXPECT_EQ(r.mis, (std::vector<NodeId>{0, 2}));
}

TEST(MaxDegreeMis, PrefersHubs) {
  const Graph g = test::make_star(7);
  const MisResult r = max_degree_mis(g);
  EXPECT_EQ(r.mis, (std::vector<NodeId>{0}));  // center first, blocks leaves
}

// Property sweep over random connected UDGs: every MIS variant must be
// independent and maximal; the BFS first-fit MIS must additionally have
// the 2-hop separation property (Lemma 9's prerequisite).
class MisProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MisProperties, AllVariantsValid) {
  udg::InstanceParams params;
  params.nodes = 60;
  params.side = 7.0;
  const auto inst = udg::generate_largest_component_instance(params,
                                                             GetParam());
  const Graph& g = inst.graph;

  for (const MisResult& r :
       {bfs_first_fit_mis(g, 0), lowest_id_mis(g), max_degree_mis(g)}) {
    EXPECT_TRUE(is_independent_set(g, r.mis));
    EXPECT_TRUE(is_maximal_independent_set(g, r.mis));
    // in_mis flags agree with the list.
    std::size_t flagged = 0;
    for (const bool b : r.in_mis) flagged += b ? 1 : 0;
    EXPECT_EQ(flagged, r.mis.size());
  }

  const MisResult bfs_mis = bfs_first_fit_mis(g, 0);
  std::vector<std::size_t> rank(g.num_nodes(), 0);
  for (std::size_t i = 0; i < bfs_mis.bfs.order.size(); ++i) {
    rank[bfs_mis.bfs.order[i]] = i;
  }
  EXPECT_TRUE(has_two_hop_separation(g, bfs_mis.mis, rank, 0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisProperties,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace mcds::core
