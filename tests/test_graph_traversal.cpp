#include "graph/traversal.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mcds::graph {
namespace {

TEST(Bfs, PathLevelsAndParents) {
  const Graph g = test::make_path(5);
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.order, (std::vector<NodeId>{0, 1, 2, 3, 4}));
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(r.level[v], v);
  EXPECT_EQ(r.parent[0], kNoNode);
  for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(r.parent[v], v - 1);
}

TEST(Bfs, StarFromCenterAndLeaf) {
  const Graph g = test::make_star(6);
  const BfsResult from_center = bfs(g, 0);
  EXPECT_EQ(from_center.level[0], 0u);
  for (NodeId v = 1; v < 6; ++v) EXPECT_EQ(from_center.level[v], 1u);
  const BfsResult from_leaf = bfs(g, 3);
  EXPECT_EQ(from_leaf.level[3], 0u);
  EXPECT_EQ(from_leaf.level[0], 1u);
  EXPECT_EQ(from_leaf.level[1], 2u);
}

TEST(Bfs, DeterministicNeighborOrder) {
  Graph g(4);
  g.add_edge(0, 3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.finalize();
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.order, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Bfs, UnreachableNodesMarked) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.reached(), 2u);
  EXPECT_EQ(r.level[2], kNoNode);
  EXPECT_EQ(r.parent[3], kNoNode);
}

TEST(Bfs, RootOutOfRangeThrows) {
  const Graph g(2);
  EXPECT_THROW((void)bfs(g, 5), std::invalid_argument);
}

TEST(Components, CountsAndLabels) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(4, 5);
  g.finalize();
  const auto [label, count] = connected_components(g);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[1], label[2]);
  EXPECT_EQ(label[4], label[5]);
  EXPECT_NE(label[0], label[3]);
  EXPECT_NE(label[3], label[4]);
}

TEST(Components, LabelOrderIsBySmallestNode) {
  Graph g(4);
  g.add_edge(2, 3);
  g.finalize();
  const auto [label, count] = connected_components(g);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(label[0], 0u);
  EXPECT_EQ(label[1], 1u);
  EXPECT_EQ(label[2], 2u);
  EXPECT_EQ(label[3], 2u);
}

TEST(IsConnected, Basics) {
  EXPECT_TRUE(is_connected(Graph{}));
  EXPECT_TRUE(is_connected(Graph{1}));
  EXPECT_TRUE(is_connected(test::make_cycle(4)));
  Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_FALSE(is_connected(g));
}

TEST(Diameter, KnownGraphs) {
  EXPECT_EQ(diameter_hops(test::make_path(6)), 5u);
  EXPECT_EQ(diameter_hops(test::make_cycle(6)), 3u);
  EXPECT_EQ(diameter_hops(test::make_star(9)), 2u);
  EXPECT_EQ(diameter_hops(test::make_complete(5)), 1u);
  EXPECT_EQ(diameter_hops(Graph{1}), 0u);
  EXPECT_EQ(diameter_hops(test::make_grid(3, 4)), 5u);
}

TEST(Diameter, DisconnectedThrows) {
  Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_THROW((void)diameter_hops(g), std::invalid_argument);
}

TEST(ShortestPath, GridPath) {
  const Graph g = test::make_grid(4, 4);
  const auto path = shortest_path(g, 0, 15);
  ASSERT_EQ(path.size(), 7u);  // 6 hops
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 15u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

TEST(ShortestPath, UnreachableReturnsEmpty) {
  Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_TRUE(shortest_path(g, 0, 2).empty());
  EXPECT_EQ(shortest_path(g, 1, 1), (std::vector<NodeId>{1}));
}

TEST(HopDistances, MatchBfsLevels) {
  const Graph g = test::make_grid(3, 3);
  const auto d = hop_distances(g, 4);  // center
  EXPECT_EQ(d[4], 0u);
  EXPECT_EQ(d[0], 2u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[8], 2u);
}

}  // namespace
}  // namespace mcds::graph
