#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mcds::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(6);
    EXPECT_LT(x, 6u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 6u);  // all faces of the die appear
  EXPECT_THROW((void)rng.uniform_int(0), std::invalid_argument);
  EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(w, v);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(w, v);
}

TEST(Rng, ChildStreamsIndependent) {
  Rng a = Rng::child(42, 0);
  Rng b = Rng::child(42, 1);
  Rng a2 = Rng::child(42, 0);
  int same_ab = 0;
  for (int i = 0; i < 100; ++i) {
    const auto va = a(), vb = b();
    EXPECT_EQ(va, a2());  // same child index reproduces
    if (va == vb) ++same_ab;
  }
  EXPECT_LT(same_ab, 3);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
  EXPECT_EQ(splitmix64(s2), b);
}

}  // namespace
}  // namespace mcds::sim
