#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/greedy_connect.hpp"
#include "core/repair.hpp"
#include "core/validate.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "test_util.hpp"
#include "udg/mobility.hpp"

/// \file test_core_repair_churn.cpp
/// repair_cds / reconnect_cds under adversarial churn: random-waypoint
/// motion with fail-stop crashes and recoveries (udg::churn_schedule),
/// carrying one backbone across the whole trace. Each connected epoch is
/// checked differentially against a from-scratch construction — the
/// repaired set must be valid and not grotesquely larger than starting
/// over.

namespace {

using mcds::graph::Graph;
using mcds::graph::NodeId;

TEST(RepairChurn, ReconnectRegluesASplitBackbone) {
  const Graph g = mcds::test::make_path(5);
  // {1, 3} dominates the path but G[{1,3}] has two components.
  const std::vector<NodeId> split = {1, 3};
  const auto before = mcds::core::check_cds(g, split);
  ASSERT_FALSE(before.ok);
  ASSERT_EQ(before.defect, mcds::core::CdsDefect::kDisconnected);

  const auto r = mcds::core::reconnect_cds(g, split);
  EXPECT_TRUE(mcds::core::check_cds(g, r.cds).ok);
  EXPECT_EQ(r.kept, 2u);
  EXPECT_EQ(r.added, 1u);
  EXPECT_EQ(r.cds, (std::vector<NodeId>{1, 2, 3}));
}

TEST(RepairChurn, ReconnectLeavesAConnectedBackboneAlone) {
  const Graph g = mcds::test::make_path(5);
  const std::vector<NodeId> whole = {1, 2, 3};
  const auto r = mcds::core::reconnect_cds(g, whole);
  EXPECT_EQ(r.cds, whole);
  EXPECT_EQ(r.added, 0u);
  EXPECT_EQ(r.dropped, 0u);
}

TEST(RepairChurn, ChurnScheduleIsDeterministic) {
  const mcds::udg::WaypointParams wp{7.0, 0.05, 0.5, 2};
  mcds::udg::RandomWaypoint m1(20, wp, 5);
  mcds::udg::RandomWaypoint m2(20, wp, 5);
  const auto a = mcds::udg::churn_schedule(m1, 2.0, 10, 2, {0.2, 0.4}, 9);
  const auto b = mcds::udg::churn_schedule(m2, 2.0, 10, 2, {0.2, 0.4}, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    EXPECT_EQ(a[e].up, b[e].up);
    EXPECT_EQ(a[e].topology.num_edges(), b[e].topology.num_edges());
  }
}

TEST(RepairChurn, ChurnScheduleValidatesInputs) {
  const mcds::udg::WaypointParams wp;
  mcds::udg::RandomWaypoint motion(5, wp, 1);
  EXPECT_THROW(mcds::udg::churn_schedule(motion, 0.0, 1, 1, {}, 1),
               std::invalid_argument);
  EXPECT_THROW(mcds::udg::churn_schedule(motion, 1.0, 1, 1, {1.5, 0.0}, 1),
               std::invalid_argument);
  EXPECT_THROW(mcds::udg::churn_schedule(motion, 1.0, 1, 1, {0.0, -0.1}, 1),
               std::invalid_argument);
}

// The satellite's differential: carry a backbone through waypoint motion
// plus crash/recovery churn; on every epoch whose survivor graph is
// connected, repair must produce a valid CDS whose size is within a
// declared factor of rebuilding from scratch.
TEST(RepairChurn, DifferentialRepairUnderWaypointChurn) {
  constexpr double kSizeFactor = 3.0;
  constexpr std::size_t kSizeSlack = 2;

  std::size_t repaired_epochs = 0;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    mcds::udg::WaypointParams wp;
    wp.side = 7.0;
    mcds::udg::RandomWaypoint motion(36, wp, seed);
    const auto trace = mcds::udg::churn_schedule(motion, 2.0, 25, 2,
                                                 {0.15, 0.35}, seed + 100);

    std::vector<NodeId> backbone;  // full-graph ids, possibly stale
    for (std::size_t e = 0; e < trace.size(); ++e) {
      SCOPED_TRACE(::testing::Message()
                   << "seed " << seed << ", epoch " << e);
      const Graph& g = trace[e].topology;
      std::vector<NodeId> live;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (trace[e].up[v]) live.push_back(v);
      }
      if (live.empty()) {
        backbone.clear();
        continue;
      }
      const auto sub = mcds::graph::induced_subgraph(g, live);
      if (!mcds::graph::is_connected(sub.graph)) continue;  // carry stale set

      std::vector<NodeId> to_sub(g.num_nodes(), mcds::graph::kNoNode);
      for (NodeId i = 0; i < sub.mapping.size(); ++i) {
        to_sub[sub.mapping[i]] = i;
      }
      std::vector<NodeId> old_sub;
      for (const NodeId v : backbone) {
        if (to_sub[v] != mcds::graph::kNoNode) old_sub.push_back(to_sub[v]);
      }

      const auto repaired = mcds::core::repair_cds(sub.graph, old_sub);
      const auto check = mcds::core::check_cds(sub.graph, repaired.cds);
      EXPECT_TRUE(check.ok) << "repair produced: " << check.describe();
      EXPECT_EQ(repaired.kept + repaired.added, repaired.cds.size());

      const auto scratch = mcds::core::greedy_cds(sub.graph);
      EXPECT_LE(repaired.cds.size(),
                static_cast<std::size_t>(
                    kSizeFactor * static_cast<double>(scratch.cds.size())) +
                    kSizeSlack)
          << "repair kept too much: " << repaired.cds.size() << " vs scratch "
          << scratch.cds.size();

      backbone.clear();
      for (const NodeId i : repaired.cds) backbone.push_back(sub.mapping[i]);
      ++repaired_epochs;
    }
  }
  // The trace parameters must actually exercise repair, not skip it.
  EXPECT_GE(repaired_epochs, 20u);
}

}  // namespace
