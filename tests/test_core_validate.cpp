#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "graph/subgraph.hpp"
#include "test_util.hpp"

namespace mcds::core {
namespace {

TEST(IsIndependentSet, Basics) {
  const Graph g = test::make_path(5);
  EXPECT_TRUE(is_independent_set(g, std::vector<NodeId>{0, 2, 4}));
  EXPECT_FALSE(is_independent_set(g, std::vector<NodeId>{0, 1}));
  EXPECT_TRUE(is_independent_set(g, std::vector<NodeId>{}));
  EXPECT_TRUE(is_independent_set(g, std::vector<NodeId>{3}));
}

TEST(IsDominatingSet, Basics) {
  const Graph g = test::make_path(5);
  EXPECT_TRUE(is_dominating_set(g, std::vector<NodeId>{1, 3}));
  EXPECT_FALSE(is_dominating_set(g, std::vector<NodeId>{0, 1}));
  EXPECT_TRUE(is_dominating_set(g, std::vector<NodeId>{0, 2, 4}));
  EXPECT_FALSE(is_dominating_set(g, std::vector<NodeId>{}));
  const Graph star = test::make_star(6);
  EXPECT_TRUE(is_dominating_set(star, std::vector<NodeId>{0}));
}

TEST(IsMaximalIndependentSet, IndependentButNotMaximal) {
  const Graph g = test::make_path(7);
  EXPECT_FALSE(is_maximal_independent_set(g, std::vector<NodeId>{0, 6}));
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<NodeId>{0, 2, 4, 6}));
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<NodeId>{1, 3, 5}));
  EXPECT_FALSE(is_maximal_independent_set(g, std::vector<NodeId>{1, 2}));
}

TEST(IsCds, Basics) {
  const Graph g = test::make_cycle(6);
  EXPECT_TRUE(is_cds(g, std::vector<NodeId>{0, 1, 2, 3}));
  // Dominating but disconnected:
  EXPECT_FALSE(is_cds(g, std::vector<NodeId>{0, 3}));
  // Connected but not dominating:
  EXPECT_FALSE(is_cds(g, std::vector<NodeId>{0, 1}));
  EXPECT_FALSE(is_cds(g, std::vector<NodeId>{}));
}

TEST(IsCds, EmptyGraphEdgeCase) {
  const graph::Graph g;
  EXPECT_TRUE(is_cds(g, std::vector<NodeId>{}));
}

TEST(IsCds, SingleNodeGraph) {
  const graph::Graph g(1);
  EXPECT_TRUE(is_cds(g, std::vector<NodeId>{0}));
  EXPECT_FALSE(is_cds(g, std::vector<NodeId>{}));
}

TEST(Validate, OutOfRangeNodeThrows) {
  const Graph g = test::make_path(3);
  EXPECT_THROW((void)is_independent_set(g, std::vector<NodeId>{9}),
               std::invalid_argument);
}

TEST(TwoHopSeparation, PathMisFromEnd) {
  const Graph g = test::make_path(5);
  const std::vector<NodeId> mis{0, 2, 4};
  std::vector<std::size_t> rank{0, 1, 2, 3, 4};
  EXPECT_TRUE(has_two_hop_separation(g, mis, rank, 0));
}

TEST(TwoHopSeparation, FailsWhenEarlierWitnessMissing) {
  // MIS {1, 4} on a path of 6: node 4 has no MIS node at distance 2
  // with smaller rank (node 1 is 3 hops away).
  const Graph g = test::make_path(6);
  const std::vector<NodeId> mis{1, 4};
  std::vector<std::size_t> rank{0, 1, 2, 3, 4, 5};
  EXPECT_FALSE(has_two_hop_separation(g, mis, rank, 1));
}

TEST(TwoHopSeparation, RankSizeMismatchThrows) {
  const Graph g = test::make_path(3);
  const std::vector<NodeId> mis{0, 2};
  std::vector<std::size_t> rank{0, 1};
  EXPECT_THROW((void)has_two_hop_separation(g, mis, rank, 0),
               std::invalid_argument);
}

TEST(CheckCds, ValidSetReportsNoDefect) {
  const Graph g = test::make_path(5);
  const auto c = check_cds(g, std::vector<NodeId>{1, 2, 3});
  EXPECT_TRUE(c.ok);
  EXPECT_EQ(c.defect, CdsDefect::kNone);
  EXPECT_EQ(c.witness, graph::kNoNode);
  EXPECT_EQ(c.describe(), "valid CDS");
}

TEST(CheckCds, EmptySetOnNonEmptyGraph) {
  const Graph g = test::make_path(3);
  const auto c = check_cds(g, std::vector<NodeId>{});
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.defect, CdsDefect::kEmpty);
}

TEST(CheckCds, UndominatedWitnessIsAConcreteNode) {
  // {0, 1} leaves nodes 3 and 4 of the path uncovered; the witness is
  // the first such node.
  const Graph g = test::make_path(5);
  const auto c = check_cds(g, std::vector<NodeId>{0, 1});
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.defect, CdsDefect::kUndominated);
  EXPECT_EQ(c.witness, 3u);
  EXPECT_NE(c.describe().find("node 3"), std::string::npos);
}

TEST(CheckCds, DisconnectedWitnessesComeFromDistinctComponents) {
  const Graph g = test::make_path(5);
  const auto c = check_cds(g, std::vector<NodeId>{1, 3});
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.defect, CdsDefect::kDisconnected);
  EXPECT_NE(c.witness, c.witness2);
  EXPECT_NE(c.witness, graph::kNoNode);
  EXPECT_NE(c.witness2, graph::kNoNode);
  // The two witnesses really are in different components of G[set].
  EXPECT_FALSE(graph::is_connected_subset(
      g, std::vector<NodeId>{c.witness, c.witness2}));
  EXPECT_NE(c.describe().find("different components"), std::string::npos);
}

TEST(CheckCds, DominationCheckedBeforeConnectivity) {
  // {0, 4} on a path of 7 is both undominating and disconnected; the
  // report must pin the undominated node (the more fundamental defect).
  const Graph g = test::make_path(7);
  const auto c = check_cds(g, std::vector<NodeId>{0, 4});
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.defect, CdsDefect::kUndominated);
  EXPECT_EQ(c.witness, 2u);
}

TEST(CheckCds, OutOfRangeMemberThrows) {
  const Graph g = test::make_path(3);
  EXPECT_THROW((void)check_cds(g, std::vector<NodeId>{0, 9}),
               std::invalid_argument);
}

TEST(CheckCds, AgreesWithIsCds) {
  const Graph g = test::make_cycle(8);
  const std::vector<std::vector<NodeId>> candidates = {
      {0, 1, 2, 3, 4, 5}, {0, 2, 4, 6}, {}, {1, 2, 3}, {0, 1, 4, 5}};
  for (const auto& set : candidates) {
    EXPECT_EQ(is_cds(g, set), check_cds(g, set).ok);
  }
}

// An empty member set on a non-empty graph: the forest predicate has no
// kEmpty short-circuit — every node of every component is undominated,
// and the smallest one is the witness.
TEST(CheckCdsComponents, EmptyMemberSet) {
  const Graph g = test::make_path(4);
  const auto c = check_cds_components(g, std::vector<NodeId>{});
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.defect, CdsDefect::kUndominated);
  EXPECT_EQ(c.witness, 0u);
}

// One island lost all of its members (they crashed): the other island's
// intact backbone does not excuse it — the memberless island's smallest
// node is the witness.
TEST(CheckCdsComponents, AllMembersCrashedInOneIsland) {
  // Two triangles: {0,1,2} and {3,4,5}. Members only in the first.
  const Graph g = mcds::test::make_graph(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  const auto c = check_cds_components(g, std::vector<NodeId>{0});
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.defect, CdsDefect::kUndominated);
  EXPECT_EQ(c.witness, 3u);
  // With one member per island the forest is whole again.
  EXPECT_TRUE(check_cds_components(g, std::vector<NodeId>{0, 3}).ok);
}

// A single-node island dominates itself iff it is its own member; no
// connectivity obligation attaches to it either way.
TEST(CheckCdsComponents, SingleNodeIsland) {
  const Graph g = mcds::test::make_graph(4, {{0, 1}, {1, 2}});  // path 0-1-2 plus isolated node 3
  EXPECT_TRUE(check_cds_components(g, std::vector<NodeId>{1, 3}).ok);
  const auto c = check_cds_components(g, std::vector<NodeId>{1});
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.defect, CdsDefect::kUndominated);
  EXPECT_EQ(c.witness, 3u);
}

}  // namespace
}  // namespace mcds::core
