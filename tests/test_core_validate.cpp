#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mcds::core {
namespace {

TEST(IsIndependentSet, Basics) {
  const Graph g = test::make_path(5);
  EXPECT_TRUE(is_independent_set(g, std::vector<NodeId>{0, 2, 4}));
  EXPECT_FALSE(is_independent_set(g, std::vector<NodeId>{0, 1}));
  EXPECT_TRUE(is_independent_set(g, std::vector<NodeId>{}));
  EXPECT_TRUE(is_independent_set(g, std::vector<NodeId>{3}));
}

TEST(IsDominatingSet, Basics) {
  const Graph g = test::make_path(5);
  EXPECT_TRUE(is_dominating_set(g, std::vector<NodeId>{1, 3}));
  EXPECT_FALSE(is_dominating_set(g, std::vector<NodeId>{0, 1}));
  EXPECT_TRUE(is_dominating_set(g, std::vector<NodeId>{0, 2, 4}));
  EXPECT_FALSE(is_dominating_set(g, std::vector<NodeId>{}));
  const Graph star = test::make_star(6);
  EXPECT_TRUE(is_dominating_set(star, std::vector<NodeId>{0}));
}

TEST(IsMaximalIndependentSet, IndependentButNotMaximal) {
  const Graph g = test::make_path(7);
  EXPECT_FALSE(is_maximal_independent_set(g, std::vector<NodeId>{0, 6}));
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<NodeId>{0, 2, 4, 6}));
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<NodeId>{1, 3, 5}));
  EXPECT_FALSE(is_maximal_independent_set(g, std::vector<NodeId>{1, 2}));
}

TEST(IsCds, Basics) {
  const Graph g = test::make_cycle(6);
  EXPECT_TRUE(is_cds(g, std::vector<NodeId>{0, 1, 2, 3}));
  // Dominating but disconnected:
  EXPECT_FALSE(is_cds(g, std::vector<NodeId>{0, 3}));
  // Connected but not dominating:
  EXPECT_FALSE(is_cds(g, std::vector<NodeId>{0, 1}));
  EXPECT_FALSE(is_cds(g, std::vector<NodeId>{}));
}

TEST(IsCds, EmptyGraphEdgeCase) {
  const graph::Graph g;
  EXPECT_TRUE(is_cds(g, std::vector<NodeId>{}));
}

TEST(IsCds, SingleNodeGraph) {
  const graph::Graph g(1);
  EXPECT_TRUE(is_cds(g, std::vector<NodeId>{0}));
  EXPECT_FALSE(is_cds(g, std::vector<NodeId>{}));
}

TEST(Validate, OutOfRangeNodeThrows) {
  const Graph g = test::make_path(3);
  EXPECT_THROW((void)is_independent_set(g, std::vector<NodeId>{9}),
               std::invalid_argument);
}

TEST(TwoHopSeparation, PathMisFromEnd) {
  const Graph g = test::make_path(5);
  const std::vector<NodeId> mis{0, 2, 4};
  std::vector<std::size_t> rank{0, 1, 2, 3, 4};
  EXPECT_TRUE(has_two_hop_separation(g, mis, rank, 0));
}

TEST(TwoHopSeparation, FailsWhenEarlierWitnessMissing) {
  // MIS {1, 4} on a path of 6: node 4 has no MIS node at distance 2
  // with smaller rank (node 1 is 3 hops away).
  const Graph g = test::make_path(6);
  const std::vector<NodeId> mis{1, 4};
  std::vector<std::size_t> rank{0, 1, 2, 3, 4, 5};
  EXPECT_FALSE(has_two_hop_separation(g, mis, rank, 1));
}

TEST(TwoHopSeparation, RankSizeMismatchThrows) {
  const Graph g = test::make_path(3);
  const std::vector<NodeId> mis{0, 2};
  std::vector<std::size_t> rank{0, 1};
  EXPECT_THROW((void)has_two_hop_separation(g, mis, rank, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcds::core
