// Differential tests for the CSR graph storage: the flat
// offsets_/neighbors_ layout must present exactly the adjacency the
// historical vector-of-vectors representation (NestedGraph) holds, on
// random unit-disk graphs and on the degenerate shapes where an
// off-by-one in the row boundaries would hide (isolated nodes, complete
// graphs, a single node, the empty graph).

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "graph/traversal.hpp"
#include "udg/instance.hpp"

namespace {

using mcds::graph::FrozenGraph;
using mcds::graph::Graph;
using mcds::graph::NestedGraph;
using mcds::graph::NestedView;
using mcds::graph::NodeId;

std::vector<NodeId> sorted(std::span<const NodeId> xs) {
  std::vector<NodeId> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}

// The CSR view and the nested oracle must agree node-by-node on degree
// and neighbor set, and the CSR must keep each row sorted ascending.
void expect_layouts_agree(const Graph& g) {
  ASSERT_TRUE(g.finalized());
  const FrozenGraph fg(g);
  const NestedGraph nested(g);
  ASSERT_EQ(fg.num_nodes(), g.num_nodes());
  ASSERT_EQ(nested.num_nodes(), g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(fg.degree(u), nested.degree(u)) << "node " << u;
    const auto row = fg.neighbors(u);
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end())) << "node " << u;
    EXPECT_EQ(sorted(row), sorted(nested.neighbors(u))) << "node " << u;
  }
}

TEST(GraphCsr, OffsetsInvariants) {
  const auto inst = mcds::udg::generate_instance({.nodes = 300}, 7);
  const Graph& g = inst.graph;
  const auto offsets = g.offsets();
  ASSERT_EQ(offsets.size(), g.num_nodes() + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_TRUE(std::is_sorted(offsets.begin(), offsets.end()));
  EXPECT_EQ(offsets.back(), 2 * g.num_edges());
  EXPECT_EQ(g.flat_neighbors().size(), 2 * g.num_edges());
}

TEST(GraphCsr, DifferentialRandomUdg) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto inst = mcds::udg::generate_instance(
        {.nodes = 200, .side = 12.0}, seed);
    expect_layouts_agree(inst.graph);
  }
}

TEST(GraphCsr, DifferentialBfsOrders) {
  // BFS order exercises row boundaries in visit order; nested-replay
  // graphs and CSR graphs must induce the same traversal.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto inst = mcds::udg::generate_instance(
        {.nodes = 150, .side = 9.0}, seed);
    const auto& g = inst.graph;
    const NestedGraph nested(g);
    // Rebuild a Graph from the nested layout's edges and compare BFS.
    Graph rebuilt(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (const NodeId v : nested.neighbors(u)) {
        if (u < v) rebuilt.add_edge(u, v);
      }
    }
    rebuilt.finalize();
    const auto a = mcds::graph::bfs(g, 0);
    const auto b = mcds::graph::bfs(rebuilt, 0);
    EXPECT_EQ(a.order, b.order) << "seed " << seed;
    EXPECT_EQ(a.parent, b.parent) << "seed " << seed;
    EXPECT_EQ(a.level, b.level) << "seed " << seed;
  }
}

TEST(GraphCsr, IsolatedNodesHaveEmptyRows) {
  Graph g(5);
  g.add_edge(1, 3);
  g.finalize();
  expect_layouts_agree(g);
  const FrozenGraph fg(g);
  for (const NodeId u : {0u, 2u, 4u}) {
    EXPECT_EQ(fg.degree(u), 0u);
    EXPECT_TRUE(fg.neighbors(u).empty());
  }
  EXPECT_EQ(fg.degree(1), 1u);
  EXPECT_EQ(fg.neighbors(3).front(), 1u);
}

TEST(GraphCsr, CompleteGraph) {
  constexpr std::size_t n = 17;
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  g.finalize();
  EXPECT_EQ(g.num_edges(), n * (n - 1) / 2);
  expect_layouts_agree(g);
  const FrozenGraph fg(g);
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(fg.degree(u), n - 1);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(fg.has_edge(u, v), u != v);
    }
  }
}

TEST(GraphCsr, SingleNodeAndEmptyGraph) {
  Graph one(1);
  one.finalize();
  expect_layouts_agree(one);
  EXPECT_EQ(FrozenGraph(one).degree(0), 0u);

  Graph empty;
  empty.finalize();
  const FrozenGraph fg(empty);
  EXPECT_EQ(fg.num_nodes(), 0u);
  expect_layouts_agree(empty);
}

TEST(GraphCsr, ThawRefreezeRoundTrip) {
  // add_edge on a finalized graph must re-stage the CSR and finalize()
  // must rebuild it with the new edge merged in sorted position.
  Graph g(4);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.finalize();
  ASSERT_TRUE(g.finalized());
  g.add_edge(0, 1);
  EXPECT_FALSE(g.finalized());
  g.finalize();
  EXPECT_EQ(g.num_edges(), 3u);
  const std::vector<NodeId> expected{1, 2};
  EXPECT_EQ(sorted(g.neighbors(0)), expected);
  expect_layouts_agree(g);
}

TEST(GraphCsr, FailedAddEdgeLeavesFinalizedStateIntact) {
  // Argument validation happens before the thaw: a rejected add_edge on
  // a finalized graph must not drop the CSR or flip the thaw state.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  EXPECT_THROW(g.add_edge(0, 7), std::invalid_argument);
  EXPECT_THROW(g.add_edge(2, 2), std::invalid_argument);
  EXPECT_TRUE(g.finalized());
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(GraphCsr, ThawedAdjacencyStaysSymmetric) {
  // Every committed edge must appear in both endpoint lists — add_edge
  // pre-grows both before inserting, so there is no state in which an
  // edge exists in one direction only. Verify by replaying a random
  // graph through repeated thaw/refreeze cycles and diffing against a
  // one-shot build.
  const auto inst = mcds::udg::generate_instance({.nodes = 120}, 11);
  const auto all = inst.graph.edges();
  Graph cycled(inst.graph.num_nodes());
  std::size_t next = 0;
  // Feed edges in four chunks, finalizing between chunks so chunks 2-4
  // go through the thaw path.
  for (int chunk = 0; chunk < 4; ++chunk) {
    const std::size_t stop =
        chunk == 3 ? all.size() : (all.size() * (chunk + 1)) / 4;
    for (; next < stop; ++next) cycled.add_edge(all[next].first, all[next].second);
    cycled.finalize();
    ASSERT_TRUE(cycled.finalized());
    for (NodeId u = 0; u < cycled.num_nodes(); ++u) {
      for (const NodeId v : cycled.neighbors(u)) {
        EXPECT_TRUE(cycled.has_edge(v, u)) << u << "-" << v;
      }
    }
  }
  const auto co = cycled.offsets();
  const auto io = inst.graph.offsets();
  EXPECT_TRUE(std::equal(co.begin(), co.end(), io.begin(), io.end()));
  const auto cn = cycled.flat_neighbors();
  const auto in = inst.graph.flat_neighbors();
  EXPECT_TRUE(std::equal(cn.begin(), cn.end(), in.begin(), in.end()));
}

TEST(GraphCsr, DuplicateEdgesCollapse) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphCsr, FrozenViewRequiresFinalized) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.finalized());
  EXPECT_THROW(FrozenGraph{g}, std::logic_error);
  g.finalize();
  EXPECT_NO_THROW(FrozenGraph{g});
}

TEST(GraphCsr, NestedViewMirrorsNestedGraph) {
  const auto inst = mcds::udg::generate_instance({.nodes = 80}, 3);
  const NestedGraph nested(inst.graph);
  const NestedView view(nested);
  ASSERT_EQ(view.num_nodes(), nested.num_nodes());
  for (NodeId u = 0; u < view.num_nodes(); ++u) {
    EXPECT_EQ(view.degree(u), nested.degree(u));
    EXPECT_EQ(sorted(view.neighbors(u)), sorted(nested.neighbors(u)));
  }
}

TEST(GraphCsr, EdgeListConstructorMatchesIncremental) {
  const std::vector<std::pair<NodeId, NodeId>> edges{
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  const Graph from_list(4, edges);
  Graph incremental(4);
  for (const auto& [u, v] : edges) incremental.add_edge(u, v);
  incremental.finalize();
  EXPECT_EQ(from_list.edges(), incremental.edges());
  expect_layouts_agree(from_list);
}

}  // namespace
