// GridIndex: the persistent half of build_udg. Two contracts under
// test. First, build_graph() must be byte-identical (offsets and flat
// neighbor array) to the batch builder at the same alive positions.
// Second, every event's emitted EdgeDelta must be *exact*: replaying the
// deltas into a DeltaGraph seeded from the initial topology must track a
// brute-force O(n^2) unit-disk oracle through arbitrary event streams.

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "geom/vec2.hpp"
#include "graph/delta_graph.hpp"
#include "graph/graph.hpp"
#include "sim/rng.hpp"
#include "udg/builder.hpp"
#include "udg/grid_index.hpp"

namespace {

using mcds::geom::Vec2;
using mcds::graph::DeltaGraph;
using mcds::graph::EdgeDelta;
using mcds::graph::Graph;
using mcds::graph::NodeId;
using mcds::udg::GridIndex;

// Unit-disk graph over the alive slots of (pos, alive), brute force.
Graph oracle_udg(const std::vector<Vec2>& pos,
                 const std::vector<bool>& alive, double radius) {
  Graph g(pos.size());
  const double r2 = radius * radius;
  for (NodeId u = 0; u < pos.size(); ++u) {
    if (!alive[u]) continue;
    for (NodeId v = u + 1; v < pos.size(); ++v) {
      if (!alive[v]) continue;
      if (mcds::geom::dist2(pos[u], pos[v]) <= r2) g.add_edge(u, v);
    }
  }
  g.finalize();
  return g;
}

void expect_same_csr(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  const auto ao = a.offsets();
  const auto bo = b.offsets();
  EXPECT_TRUE(std::equal(ao.begin(), ao.end(), bo.begin(), bo.end()));
  const auto an = a.flat_neighbors();
  const auto bn = b.flat_neighbors();
  EXPECT_TRUE(std::equal(an.begin(), an.end(), bn.begin(), bn.end()));
}

std::vector<Vec2> random_points(std::size_t n, double side,
                                std::uint64_t seed) {
  mcds::sim::Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  return pts;
}

TEST(DynGridIndex, BulkLoadMatchesBatchBuilder) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto pts = random_points(250, 9.0, seed);
    const GridIndex gi(pts, 1.0);
    expect_same_csr(gi.build_graph(), mcds::udg::build_udg(pts, 1.0));
    EXPECT_EQ(gi.alive_count(), pts.size());
  }
}

TEST(DynGridIndex, DeltasAreCanonicalAndSorted) {
  GridIndex gi(1.0);
  EdgeDelta d;
  gi.insert({0.0, 0.0});
  gi.insert({0.5, 0.0});
  gi.insert({0.5, 0.5});
  const NodeId v = gi.insert({0.25, 0.25}, d);
  EXPECT_EQ(v, 3u);
  EXPECT_TRUE(d.removed.empty());
  const std::vector<std::pair<NodeId, NodeId>> want{{0, 3}, {1, 3}, {2, 3}};
  EXPECT_EQ(d.added, want);
  d.clear();
  gi.erase(v, d);
  EXPECT_TRUE(d.added.empty());
  EXPECT_EQ(d.removed, want);
}

TEST(DynGridIndex, MoveEmitsOnlyTheNetChange) {
  GridIndex gi(1.0);
  gi.insert({0.0, 0.0});
  gi.insert({0.9, 0.0});  // neighbor of 0
  gi.insert({5.0, 0.0});  // far away
  EdgeDelta d;
  gi.move(0, {4.2, 0.0}, d);  // leaves 1's disk, enters 2's
  const std::vector<std::pair<NodeId, NodeId>> added{{0, 2}};
  const std::vector<std::pair<NodeId, NodeId>> removed{{0, 1}};
  EXPECT_EQ(d.added, added);
  EXPECT_EQ(d.removed, removed);
  d.clear();
  gi.move(0, {4.2, 0.0}, d);  // no-op move
  EXPECT_TRUE(d.empty());
}

TEST(DynGridIndex, LivenessErrors) {
  GridIndex gi(1.0);
  const NodeId v = gi.insert({1.0, 1.0});
  EXPECT_THROW(gi.revive(v, {0.0, 0.0}), std::invalid_argument);
  gi.erase(v);
  EXPECT_THROW(gi.erase(v), std::invalid_argument);
  EXPECT_THROW(gi.move(v, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(gi.move(9, {0.0, 0.0}), std::invalid_argument);
  gi.revive(v, {2.0, 2.0});
  EXPECT_TRUE(gi.alive(v));
  EXPECT_EQ(gi.position(v).x, 2.0);
}

TEST(DynGridIndex, EmptyCellsAreReclaimed) {
  GridIndex gi(1.0);
  gi.insert({0.5, 0.5});
  gi.insert({7.5, 7.5});
  EXPECT_EQ(gi.occupied_cells(), 2u);
  gi.erase(1);
  EXPECT_EQ(gi.occupied_cells(), 1u);
  gi.erase(0);
  EXPECT_EQ(gi.occupied_cells(), 0u);
  EXPECT_EQ(gi.size(), 2u);  // ids survive death
  EXPECT_EQ(gi.alive_count(), 0u);
}

TEST(DynGridIndex, NeighborQueries) {
  GridIndex gi(1.0);
  gi.insert({0.0, 0.0});
  gi.insert({0.8, 0.0});
  gi.insert({0.0, 0.9});
  gi.insert({3.0, 3.0});
  std::vector<NodeId> out;
  gi.alive_neighbors(0, out);
  EXPECT_EQ(out, (std::vector<NodeId>{1, 2}));
  gi.alive_in_range({0.1, 0.1}, /*exclude=*/gi.size(), out);
  EXPECT_EQ(out, (std::vector<NodeId>{0, 1, 2}));
  gi.erase(1);
  gi.alive_neighbors(0, out);
  EXPECT_EQ(out, (std::vector<NodeId>{2}));
}

// The heart of the tentpole contract: stream random events, replay each
// emitted delta into a DeltaGraph, and demand both the DeltaGraph and a
// fresh build_graph() agree with the brute-force oracle at every step.
TEST(DynGridIndex, RandomizedEventStreamDifferential) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    mcds::sim::Rng rng(seed * 1299709 + 7);
    const double side = 6.0;
    auto pts = random_points(40, side, seed);
    std::vector<bool> alive(pts.size(), true);
    GridIndex gi(pts, 1.0);
    DeltaGraph dg(gi.build_graph());
    EdgeDelta d;
    for (int step = 0; step < 300; ++step) {
      const double roll = rng.uniform01();
      d.clear();
      if (roll < 0.55) {  // jitter an alive node
        std::vector<NodeId> candidates;
        for (NodeId v = 0; v < pts.size(); ++v) {
          if (alive[v]) candidates.push_back(v);
        }
        if (candidates.empty()) continue;
        const NodeId v = candidates[rng.uniform_int(candidates.size())];
        pts[v] = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
        gi.move(v, pts[v], d);
      } else if (roll < 0.70) {  // crash
        std::vector<NodeId> candidates;
        for (NodeId v = 0; v < pts.size(); ++v) {
          if (alive[v]) candidates.push_back(v);
        }
        if (candidates.empty()) continue;
        const NodeId v = candidates[rng.uniform_int(candidates.size())];
        alive[v] = false;
        gi.erase(v, d);
      } else if (roll < 0.85) {  // recover
        std::vector<NodeId> candidates;
        for (NodeId v = 0; v < pts.size(); ++v) {
          if (!alive[v]) candidates.push_back(v);
        }
        if (candidates.empty()) continue;
        const NodeId v = candidates[rng.uniform_int(candidates.size())];
        pts[v] = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
        alive[v] = true;
        gi.revive(v, pts[v], d);
      } else {  // newcomer
        pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
        alive.push_back(true);
        const NodeId v = gi.insert(pts.back(), d);
        ASSERT_EQ(v, pts.size() - 1);
        dg.add_node();
      }
      dg.apply(d);
      const Graph want = oracle_udg(pts, alive, 1.0);
      expect_same_csr(dg.materialize(), want);
      if (step % 50 == 0) expect_same_csr(gi.build_graph(), want);
    }
    expect_same_csr(gi.build_graph(), oracle_udg(pts, alive, 1.0));
  }
}

}  // namespace
