#include "geom/disk_union.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <vector>

#include "geom/circle.hpp"
#include "sim/rng.hpp"

namespace mcds::geom {
namespace {

TEST(DiskUnion, ConstructionPreconditions) {
  EXPECT_THROW(DiskUnion({}, 1.0), std::invalid_argument);
  EXPECT_THROW(DiskUnion({{0, 0}}, 0.0), std::invalid_argument);
  EXPECT_THROW(DiskUnion({{0, 0}}, -1.0), std::invalid_argument);
}

TEST(DiskUnion, SingleDiskMembership) {
  const DiskUnion u({{0.0, 0.0}}, 1.0);
  EXPECT_TRUE(u.contains({0.5, 0.5}));
  EXPECT_TRUE(u.contains({1.0, 0.0}));
  EXPECT_FALSE(u.contains({1.01, 0.0}));
  EXPECT_FALSE(u.contains({5.0, 5.0}));
}

TEST(DiskUnion, TwoDiskStadium) {
  const DiskUnion u({{0.0, 0.0}, {1.0, 0.0}}, 1.0);
  EXPECT_TRUE(u.contains({0.5, 0.86}));  // sqrt(0.25 + 0.86^2) < 1
  EXPECT_TRUE(u.contains({-1.0, 0.0}));
  EXPECT_TRUE(u.contains({2.0, 0.0}));
  EXPECT_FALSE(u.contains({0.5, 0.87}));  // just above the waist
  EXPECT_FALSE(u.contains({-1.0, 1.0}));
}

TEST(DiskUnion, NearestCenterMatchesBruteForce) {
  sim::Rng rng(7);
  std::vector<Vec2> centers;
  for (int i = 0; i < 40; ++i) {
    centers.push_back({rng.uniform(0, 8), rng.uniform(0, 8)});
  }
  const DiskUnion u(centers, 1.0);
  for (int t = 0; t < 200; ++t) {
    const Vec2 p{rng.uniform(-3, 11), rng.uniform(-3, 11)};
    double best = 1e300;
    for (const Vec2 c : centers) best = std::min(best, dist(p, c));
    EXPECT_NEAR(u.nearest_center_distance(p), best, 1e-12) << "t=" << t;
  }
}

TEST(DiskUnion, NearestCenterFarOutsideGrid) {
  const DiskUnion u({{0.0, 0.0}, {3.0, 0.0}}, 1.0);
  EXPECT_NEAR(u.nearest_center_distance({100.0, 100.0}),
              dist(Vec2{3, 0}, Vec2{100, 100}), 1e-9);
  EXPECT_EQ(u.nearest_center({100.0, 100.0}), 1u);
  EXPECT_EQ(u.nearest_center({-50.0, 0.0}), 0u);
}

TEST(DiskUnion, BoundingBoxCoversUnion) {
  const DiskUnion u({{0.0, 0.0}, {4.0, 2.0}}, 1.5);
  const auto [lo, hi] = u.bounding_box();
  EXPECT_DOUBLE_EQ(lo.x, -1.5);
  EXPECT_DOUBLE_EQ(lo.y, -1.5);
  EXPECT_DOUBLE_EQ(hi.x, 5.5);
  EXPECT_DOUBLE_EQ(hi.y, 3.5);
}

TEST(DiskUnion, GridPointsAllInside) {
  const DiskUnion u({{0.0, 0.0}, {1.0, 0.0}}, 1.0);
  const auto pts = u.grid_points_inside(0.2);
  EXPECT_GT(pts.size(), 50u);
  for (const Vec2 p : pts) EXPECT_TRUE(u.contains(p, 1e-12));
  EXPECT_THROW((void)u.grid_points_inside(0.0), std::invalid_argument);
}

TEST(DiskUnion, AreaEstimateSingleDisk) {
  const DiskUnion u({{0.0, 0.0}}, 1.0);
  EXPECT_NEAR(u.estimate_area(200000, 3), std::numbers::pi, 0.05);
  EXPECT_THROW((void)u.estimate_area(0, 1), std::invalid_argument);
}

TEST(DiskUnion, AreaEstimateTwoDisksMatchesInclusionExclusion) {
  const DiskUnion u({{0.0, 0.0}, {1.0, 0.0}}, 1.0);
  const double expected =
      2.0 * std::numbers::pi - lens_area(unit_disk({0, 0}), unit_disk({1, 0}));
  EXPECT_NEAR(u.estimate_area(200000, 5), expected, 0.08);
}

}  // namespace
}  // namespace mcds::geom
