#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/kmcds.hpp"
#include "dist/fault.hpp"
#include "dist/fault_json.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "sim/rng.hpp"
#include "udg/instance.hpp"

/// \file test_km_chaos.cpp
/// Chaos fuzzing for the (k,m)-CDS survive-by-construction guarantees.
/// Each scenario draws a random connected UDG, builds a (k,m) backbone
/// once, and replays a random crash/recovery schedule against it with
/// *no healing*. After every event, with c = currently-down members:
///  * m-domination degradation: every live non-member keeps >= m - c
///    live member neighbors (coverage decays at most one per down
///    member — the invariant behind "m >= 2 survives one crash");
///  * fragment connectivity (k = 2, c <= 1): the surviving members
///    inside each component of the survivor graph stay connected (the
///    k = 2 augmentation removed every avoidable cut vertex, and an
///    unavoidable one takes its whole topology side with it).
/// A deliberately weakened variant — a (1,2) backbone asserted against
/// the k = 2 invariant, i.e. the biconnect phase "forgotten" — must be
/// caught and ddmin-shrunk to a tiny replayable schedule, printed as
/// JSON + seed exactly like the partition chaos suite. CHAOS_FUZZ_SEED
/// and CHAOS_FUZZ_OUT drive open-ended campaigns via
/// scripts/chaos_fuzz.sh.

namespace {

using mcds::core::KmParams;
using mcds::graph::Graph;
using mcds::graph::NodeId;
using namespace mcds::dist;

constexpr std::size_t kScenarios = 160;
constexpr std::size_t kNodes = 22;

std::uint64_t base_seed() {
  if (const char* env = std::getenv("CHAOS_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

Graph chaos_udg(std::uint64_t seed) {
  mcds::udg::InstanceParams params;
  params.nodes = kNodes;
  params.side = 5.0;
  params.radius = 1.6;
  auto inst = mcds::udg::generate_connected_instance(params, seed);
  EXPECT_TRUE(inst.has_value()) << "graph seed " << seed;
  return inst->graph;
}

// Crash-heavy plan: up to 8 crashes, some with later recoveries (so the
// down-member count c rises and falls across the replay).
FaultPlan random_crash_plan(mcds::sim::Rng& rng, std::size_t n) {
  FaultPlan plan;
  plan.seed = rng();
  const std::size_t crashes = 1 + rng.uniform_int(8);
  for (std::size_t i = 0; i < crashes; ++i) {
    const auto node = static_cast<NodeId>(rng.uniform_int(n));
    const auto round = 1 + static_cast<std::size_t>(rng.uniform_int(24));
    plan.schedule.push_back({round, node, false});
    if (rng.uniform_int(2) == 0) {
      plan.schedule.push_back(
          {round + 1 + static_cast<std::size_t>(rng.uniform_int(8)), node,
           true});
    }
  }
  return plan;
}

// The invariants of one (backbone, liveness) state. \p params is what
// the backbone *claims* to be — the broken leg claims more than it
// built.
std::optional<std::string> check_km_invariants(
    const Graph& g, const std::vector<bool>& up,
    const std::vector<NodeId>& backbone, KmParams params,
    const std::string& when) {
  std::vector<std::uint8_t> in_backbone(g.num_nodes(), 0);
  for (const NodeId v : backbone) in_backbone[v] = 1;
  std::size_t down_members = 0;
  for (const NodeId v : backbone) {
    if (!up[v]) ++down_members;
  }

  // m-domination degradation: coverage >= m - c for live non-members.
  if (params.m > down_members) {
    const std::size_t need = params.m - down_members;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!up[v] || in_backbone[v]) continue;
      std::size_t cover = 0;
      for (const NodeId u : g.neighbors(v)) {
        if (up[u] && in_backbone[u] && ++cover >= need) break;
      }
      if (cover < need) {
        return when + ": node " + std::to_string(v) + " has " +
               std::to_string(cover) + " live dominators, needs " +
               std::to_string(need) + " (m = " + std::to_string(params.m) +
               ", down members = " + std::to_string(down_members) + ")";
      }
    }
  }

  // Fragment connectivity: with at most one member down, a k = 2
  // backbone's survivors stay connected inside every survivor component.
  if (params.k == 2 && down_members <= 1) {
    std::vector<NodeId> live;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (up[v]) live.push_back(v);
    }
    if (!live.empty()) {
      const auto sub = mcds::graph::induced_subgraph(g, live);
      const auto [comp, num_comps] =
          mcds::graph::connected_components(sub.graph);
      std::vector<std::vector<NodeId>> members_of(num_comps);
      for (NodeId i = 0; i < sub.mapping.size(); ++i) {
        if (in_backbone[sub.mapping[i]]) members_of[comp[i]].push_back(i);
      }
      for (const auto& members : members_of) {
        if (members.size() < 2) continue;
        if (mcds::graph::count_components_subset(sub.graph, members) > 1) {
          return when + ": surviving members split inside one survivor "
                        "component (down members = " +
                 std::to_string(down_members) + ")";
        }
      }
    }
  }
  return std::nullopt;
}

// Replays \p plan against a fixed backbone (no healing), asserting the
// claimed invariants after every event.
std::optional<std::string> run_scenario(const Graph& g, const FaultPlan& plan,
                                        const std::vector<NodeId>& backbone,
                                        KmParams claimed) {
  std::vector<bool> up(g.num_nodes(), true);
  std::size_t event = 0;
  for (const CrashEvent& e : plan.schedule) {
    if (e.node < g.num_nodes()) up[e.node] = e.up;
    ++event;
    if (auto fail = check_km_invariants(g, up, backbone, claimed,
                                        "event " + std::to_string(event))) {
      return fail;
    }
  }
  return std::nullopt;
}

// ddmin-style shrinking: greedily delete schedule events while the
// scenario still fails, to a fixpoint.
FaultPlan shrink_plan(const Graph& g, FaultPlan plan,
                      const std::vector<NodeId>& backbone, KmParams claimed) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < plan.schedule.size(); ++i) {
      FaultPlan candidate = plan;
      candidate.schedule.erase(candidate.schedule.begin() +
                               static_cast<std::ptrdiff_t>(i));
      if (run_scenario(g, candidate, backbone, claimed).has_value()) {
        plan = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return plan;
}

void archive_repro(const FaultPlan& plan, std::uint64_t gseed,
                   const std::string& tag) {
  if (const char* dir = std::getenv("CHAOS_FUZZ_OUT")) {
    save_fault_plan(plan, std::string(dir) + "/" + tag + "_graph" +
                              std::to_string(gseed) + ".json");
  }
}

}  // namespace

// The real constructions must hold their invariants across every random
// crash schedule; a failure shrinks before it reports.
TEST(KmChaos, RandomizedCrashSchedulesHoldInvariants) {
  const std::uint64_t base = base_seed();
  for (std::size_t i = 0; i < kScenarios; ++i) {
    const std::uint64_t gseed = base + i % 23;
    const Graph g = chaos_udg(gseed);
    mcds::sim::Rng rng(base * 6151 + i);
    const FaultPlan plan = random_crash_plan(rng, g.num_nodes());
    SCOPED_TRACE("scenario " + std::to_string(i) + ", graph seed " +
                 std::to_string(gseed));

    for (const KmParams params :
         {KmParams{1, 2}, KmParams{2, 1}, KmParams{2, 2}}) {
      const auto built = mcds::core::kmcds(g, params);
      if (auto fail = run_scenario(g, plan, built.backbone, params)) {
        const FaultPlan minimized =
            shrink_plan(g, plan, built.backbone, params);
        archive_repro(minimized, gseed, "km_healthy");
        ADD_FAILURE() << "(" << params.k << "," << params.m << ") " << *fail
                      << "\nminimized repro (" << minimized.schedule.size()
                      << " events), graph seed " << gseed << ":\n"
                      << to_json(minimized);
        return;
      }
    }
  }
}

// A (1,2) backbone asserted as (2,2) — the biconnect phase "forgotten" —
// must be caught by the fragment-connectivity invariant and shrink to a
// tiny schedule that replays deterministically from its JSON.
TEST(KmChaos, MissingBiconnectPhaseIsCaughtAndShrunk) {
  const std::uint64_t base = base_seed();
  const KmParams claimed{2, 2};
  for (std::size_t i = 0; i < kScenarios; ++i) {
    const std::uint64_t gseed = base + i % 23;
    const Graph g = chaos_udg(gseed);
    mcds::sim::Rng rng(base * 9973 + i);
    const FaultPlan plan = random_crash_plan(rng, g.num_nodes());
    const auto weakened = mcds::core::kmcds(g, {1, 2});
    if (!run_scenario(g, plan, weakened.backbone, claimed)) continue;

    const FaultPlan minimized =
        shrink_plan(g, plan, weakened.backbone, claimed);
    EXPECT_LE(minimized.schedule.size(), 3u)
        << "shrink left " << minimized.schedule.size() << " events";
    EXPECT_GE(minimized.schedule.size(), 1u)
        << "weakened backbone failed with no fault at all";

    const FaultPlan replayed = fault_plan_from_json(to_json(minimized));
    const auto replay_a = run_scenario(g, replayed, weakened.backbone, claimed);
    const auto replay_b = run_scenario(g, replayed, weakened.backbone, claimed);
    ASSERT_TRUE(replay_a.has_value())
        << "minimized plan no longer fails after JSON round-trip";
    EXPECT_EQ(*replay_a, *replay_b) << "minimized repro is not deterministic";
    archive_repro(minimized, gseed, "km_broken");

    std::cout << "caught missing biconnect phase; minimized repro ("
              << minimized.schedule.size() << " events), graph seed " << gseed
              << ": " << to_json(minimized) << "\n";
    return;  // one caught-and-shrunk repro is the acceptance criterion
  }
  FAIL() << "weakened (1,2)-as-(2,2) variant was never caught";
}
