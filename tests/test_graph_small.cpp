#include "graph/small_graph.hpp"

#include <gtest/gtest.h>

#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "sim/rng.hpp"
#include "test_util.hpp"
#include "udg/builder.hpp"
#include "udg/deployment.hpp"

namespace mcds::graph {
namespace {

TEST(SmallGraph, SizeLimit) {
  EXPECT_NO_THROW(SmallGraph{64});
  EXPECT_THROW(SmallGraph{65}, std::invalid_argument);
  const Graph big(65);
  EXPECT_THROW(SmallGraph{big}, std::invalid_argument);
}

TEST(SmallGraph, NeighborMasks) {
  SmallGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_EQ(g.neighbors(0), 0b0110u);
  EXPECT_EQ(g.closed_neighbors(0), 0b0111u);
  EXPECT_EQ(g.neighbors(3), 0u);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 4), std::invalid_argument);
}

TEST(SmallGraph, AllMask) {
  EXPECT_EQ(SmallGraph(3).all(), 0b111u);
  EXPECT_EQ(SmallGraph(64).all(), ~Mask{0});
}

TEST(SmallGraph, DominationOnStar) {
  const SmallGraph g(test::make_star(6));
  EXPECT_TRUE(g.is_dominating(Mask{1} << 0));  // center dominates all
  EXPECT_FALSE(g.is_dominating(Mask{1} << 1));
  EXPECT_EQ(g.dominated_by(Mask{1} << 1), 0b000011u);
}

TEST(SmallGraph, ConnectivityOnPath) {
  const SmallGraph g(test::make_path(5));
  EXPECT_TRUE(g.is_connected(0b00111));
  EXPECT_FALSE(g.is_connected(0b00101));
  EXPECT_TRUE(g.is_connected(0));        // empty: trivially connected
  EXPECT_TRUE(g.is_connected(0b00100));  // singleton
  EXPECT_EQ(g.count_components(0b10101), 3u);
  EXPECT_EQ(g.count_components(0b11111), 1u);
  EXPECT_EQ(g.component_of(0b11011, 0), 0b00011u);
}

TEST(SmallGraph, IndependenceOnCycle) {
  const SmallGraph g(test::make_cycle(5));
  EXPECT_TRUE(g.is_independent(0b00101));
  EXPECT_FALSE(g.is_independent(0b00011));
  EXPECT_TRUE(g.is_independent(0));
}

// Property sweep: SmallGraph connectivity/domination must agree with the
// general Graph routines on random UDGs.
class SmallGraphRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmallGraphRandom, AgreesWithGeneralGraph) {
  sim::Rng rng(GetParam());
  const std::size_t n = 4 + rng.uniform_int(14);
  const auto pts = udg::deploy_uniform_square(n, 3.0, rng);
  const Graph g = udg::build_udg(pts);
  const SmallGraph sg(g);

  for (int trial = 0; trial < 30; ++trial) {
    const Mask m = rng.uniform_int(Mask{1} << n);
    std::vector<NodeId> subset;
    for (NodeId v = 0; v < n; ++v) {
      if (m & (Mask{1} << v)) subset.push_back(v);
    }
    EXPECT_EQ(sg.count_components(m), count_components_subset(g, subset));
    EXPECT_EQ(sg.is_connected(m), is_connected_subset(g, subset));

    // Domination cross-check.
    std::vector<bool> dom(n, false);
    for (const NodeId v : subset) {
      dom[v] = true;
      for (const NodeId w : g.neighbors(v)) dom[w] = true;
    }
    Mask dom_mask = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (dom[v]) dom_mask |= Mask{1} << v;
    }
    EXPECT_EQ(sg.dominated_by(m), dom_mask);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallGraphRandom,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace mcds::graph
