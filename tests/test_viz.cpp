#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/greedy_connect.hpp"
#include "packing/fig1.hpp"
#include "udg/instance.hpp"
#include "viz/render.hpp"
#include "viz/svg.hpp"

namespace mcds::viz {
namespace {

TEST(SvgCanvas, ValidDocumentStructure) {
  SvgCanvas canvas({0, 0}, {10, 5}, 500.0);
  canvas.dot({1, 1}, 0.2, "red");
  canvas.circle({5, 2}, 1.0, Style{});
  canvas.segment({0, 0}, {10, 5}, Style{});
  canvas.text({2, 2}, "label & <tag>", 0.5);
  std::ostringstream ss;
  canvas.write(ss);
  const std::string out = ss.str();
  EXPECT_EQ(out.find("<svg xmlns"), 0u);
  EXPECT_NE(out.find("</svg>"), std::string::npos);
  EXPECT_NE(out.find("<circle"), std::string::npos);
  EXPECT_NE(out.find("<line"), std::string::npos);
  // XML escaping applied.
  EXPECT_NE(out.find("label &amp; &lt;tag&gt;"), std::string::npos);
  EXPECT_EQ(out.find("<tag>"), std::string::npos);
}

TEST(SvgCanvas, CoordinateMapping) {
  // Viewport (0,0)-(10,5) at width 500 => scale 50 px/unit; y flipped.
  SvgCanvas canvas({0, 0}, {10, 5}, 500.0);
  canvas.dot({0, 0}, 0.1, "black");  // bottom-left => (0, 250)
  std::ostringstream ss;
  canvas.write(ss);
  EXPECT_NE(ss.str().find("cx=\"0\" cy=\"250\""), std::string::npos);
}

TEST(SvgCanvas, RejectsDegenerateViewport) {
  EXPECT_THROW(SvgCanvas({0, 0}, {0, 5}, 500.0), std::invalid_argument);
  EXPECT_THROW(SvgCanvas({0, 0}, {5, 0}, 500.0), std::invalid_argument);
  EXPECT_THROW(SvgCanvas({0, 0}, {5, 5}, 0.0), std::invalid_argument);
}

TEST(RenderNetwork, ContainsBackboneAndNodes) {
  udg::InstanceParams params;
  params.nodes = 40;
  params.side = 5.0;
  const auto inst = udg::generate_largest_component_instance(params, 2);
  const auto greedy = core::greedy_cds(inst.graph, 0);
  const auto canvas = render_network(inst.points, inst.graph, greedy.cds,
                                     greedy.phase1.mis);
  std::ostringstream ss;
  canvas.write(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("#d62728"), std::string::npos);  // backbone red
  EXPECT_NE(out.find("#1f77b4"), std::string::npos);  // dominator ring
  // One dot per node at least.
  std::size_t circles = 0;
  for (std::size_t pos = out.find("<circle"); pos != std::string::npos;
       pos = out.find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_GE(circles, inst.points.size());
}

TEST(RenderNetwork, Preconditions) {
  const graph::Graph g(3);
  const std::vector<geom::Vec2> two{{0, 0}, {1, 1}};
  EXPECT_THROW((void)render_network(two, g, {}, {}), std::invalid_argument);
  const std::vector<geom::Vec2> none;
  EXPECT_THROW((void)render_network(none, graph::Graph{}, {}, {}),
               std::invalid_argument);
}

TEST(RenderPacking, DrawsDisksAndWitness) {
  const auto fig1 = packing::fig1_three_star();
  const auto canvas = render_packing(fig1.centers, fig1.independent);
  std::ostringstream ss;
  canvas.write(ss);
  std::size_t circles = 0;
  for (std::size_t pos = ss.str().find("<circle");
       pos != std::string::npos; pos = ss.str().find("<circle", pos + 1)) {
    ++circles;
  }
  // 3 disks + 3 center dots + 12 witness dots.
  EXPECT_EQ(circles, 18u);
  EXPECT_THROW((void)render_packing({}, fig1.independent),
               std::invalid_argument);
}

TEST(SvgCanvas, SaveWritesFileAndReportsErrors) {
  SvgCanvas canvas({0, 0}, {1, 1}, 100.0);
  canvas.dot({0.5, 0.5}, 0.1, "black");
  const std::string path = "/tmp/mcds_viz_test.svg";
  canvas.save(path);
  std::ifstream file(path);
  std::string first;
  std::getline(file, first);
  EXPECT_EQ(first.rfind("<svg", 0), 0u);
  std::remove(path.c_str());
  EXPECT_THROW(canvas.save("/nonexistent-dir/x.svg"), std::runtime_error);
}

}  // namespace
}  // namespace mcds::viz
