#include "dist/alzoubi_protocol.hpp"

#include <gtest/gtest.h>

#include "core/mis.hpp"
#include "core/validate.hpp"
#include "test_util.hpp"
#include "udg/instance.hpp"

namespace mcds::dist {
namespace {

TEST(DistAlzoubi, SingleNodeAndEdge) {
  const auto r1 = distributed_alzoubi_cds(graph::Graph(1));
  EXPECT_EQ(r1.cds, (std::vector<NodeId>{0}));
  EXPECT_EQ(r1.total.messages, 0u);

  const Graph two = test::make_path(2);
  const auto r2 = distributed_alzoubi_cds(two);
  EXPECT_TRUE(core::is_cds(two, r2.cds));
  EXPECT_EQ(r2.cds, (std::vector<NodeId>{0}));  // node 0 dominates both
}

TEST(DistAlzoubi, PathRecruitsInteriorRelays) {
  // Path of 7: id-rank MIS = {0, 2, 4, 6}; dominators are 2 hops apart,
  // so every odd node is recruited as a relay.
  const Graph g = test::make_path(7);
  const auto r = distributed_alzoubi_cds(g);
  EXPECT_TRUE(core::is_cds(g, r.cds));
  EXPECT_EQ(r.mis.mis, (std::vector<NodeId>{0, 2, 4, 6}));
  EXPECT_EQ(r.connectors, (std::vector<NodeId>{1, 3, 5}));
}

TEST(DistAlzoubi, MisMatchesCentralizedIdRank) {
  udg::InstanceParams params;
  params.nodes = 60;
  params.side = 6.0;
  const auto inst = udg::generate_largest_component_instance(params, 21);
  const auto r = distributed_alzoubi_cds(inst.graph);
  auto expected = core::lowest_id_mis(inst.graph).mis;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(r.mis.mis, expected);
}

TEST(DistAlzoubi, Preconditions) {
  EXPECT_THROW((void)distributed_alzoubi_cds(graph::Graph{}),
               std::invalid_argument);
  graph::Graph disc(4);
  disc.add_edge(0, 1);
  disc.finalize();
  EXPECT_THROW((void)distributed_alzoubi_cds(disc), std::invalid_argument);
}

// Property sweep: valid CDS across random topologies; the id-rank MIS is
// always contained; messages stay within the 3-hop flooding envelope.
class DistAlzoubiRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistAlzoubiRandom, ProducesValidCds) {
  udg::InstanceParams params;
  params.nodes = 40 + (GetParam() % 4) * 25;
  params.side = 5.0 + static_cast<double>(GetParam() % 3) * 2.0;
  const auto inst =
      udg::generate_largest_component_instance(params, GetParam() * 41);
  const Graph& g = inst.graph;
  const auto r = distributed_alzoubi_cds(g);
  EXPECT_TRUE(core::is_cds(g, r.cds)) << "n=" << g.num_nodes();
  EXPECT_TRUE(core::is_maximal_independent_set(g, r.mis.mis));
  for (const NodeId u : r.mis.mis) {
    EXPECT_TRUE(std::binary_search(r.cds.begin(), r.cds.end(), u));
  }
  // Probe flood envelope: each node forwards each dominator's probe at
  // most once per ttl value (crude cubic bound).
  const std::size_t n = g.num_nodes(), m = g.num_edges();
  EXPECT_LE(r.connect_stats.messages, 2 * m * (r.mis.mis.size() + 2) * 3);
  EXPECT_LE(r.mis_stats.messages, 2 * m + n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistAlzoubiRandom,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace mcds::dist
