#include "geom/segment.hpp"

#include <gtest/gtest.h>

namespace mcds::geom {
namespace {

TEST(Segment, LengthAndPointAt) {
  const Segment s{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
  EXPECT_EQ(s.point_at(0.0), Vec2(0, 0));
  EXPECT_EQ(s.point_at(1.0), Vec2(3, 4));
  EXPECT_EQ(s.point_at(0.5), Vec2(1.5, 2.0));
}

TEST(Segment, ClosestPointInterior) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_TRUE(almost_equal(closest_point(s, {5, 3}), Vec2(5, 0)));
  EXPECT_DOUBLE_EQ(distance(s, {5, 3}), 3.0);
}

TEST(Segment, ClosestPointClampsToEndpoints) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_TRUE(almost_equal(closest_point(s, {-4, 3}), Vec2(0, 0)));
  EXPECT_DOUBLE_EQ(distance(s, {-4, 3}), 5.0);
  EXPECT_TRUE(almost_equal(closest_point(s, {14, -3}), Vec2(10, 0)));
  EXPECT_DOUBLE_EQ(distance(s, {14, -3}), 5.0);
}

TEST(Segment, DegenerateSegment) {
  const Segment s{{1, 1}, {1, 1}};
  EXPECT_EQ(closest_point(s, {4, 5}), Vec2(1, 1));
  EXPECT_DOUBLE_EQ(distance(s, {4, 5}), 5.0);
}

TEST(Orientation, Basics) {
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {0, 1}), 1);   // CCW
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {0, -1}), -1); // CW
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {2, 0}), 0);   // collinear
}

TEST(SideOfLine, MatchesOrientation) {
  EXPECT_EQ(side_of_line({0, 0}, {0, 1}, {-1, 0.5}), 1);
  EXPECT_EQ(side_of_line({0, 0}, {0, 1}, {1, 0.5}), -1);
  EXPECT_EQ(side_of_line({0, 0}, {0, 1}, {0, 9}), 0);
}

TEST(SegmentsIntersect, ProperCrossing) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}}));
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 1}}, {{2, 2}, {3, 3.5}}));
}

TEST(SegmentsIntersect, TouchingAtEndpoint) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {1, 0}}, {{1, 0}, {2, 5}}));
}

TEST(SegmentsIntersect, CollinearOverlap) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 0}}, {{1, 0}, {3, 0}}));
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 0}}, {{2, 0}, {3, 0}}));
}

TEST(SegmentsIntersect, ParallelNonIntersecting) {
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}));
}

}  // namespace
}  // namespace mcds::geom
