#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file test_util.hpp
/// Shared graph constructors for the test suites.

namespace mcds::test {

using graph::Graph;
using graph::NodeId;

/// Graph on n nodes from an inline edge list.
inline Graph make_graph(std::size_t n,
                        std::initializer_list<std::pair<NodeId, NodeId>> edges) {
  Graph g(n);
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  g.finalize();
  return g;
}

/// Path graph 0-1-2-...-(n-1).
inline Graph make_path(std::size_t n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.finalize();
  return g;
}

/// Cycle graph on n >= 3 nodes.
inline Graph make_cycle(std::size_t n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.add_edge(static_cast<NodeId>(n - 1), 0);
  g.finalize();
  return g;
}

/// Star graph: node 0 adjacent to 1..n-1.
inline Graph make_star(std::size_t n) {
  Graph g(n);
  for (NodeId i = 1; i < n; ++i) g.add_edge(0, i);
  g.finalize();
  return g;
}

/// Complete graph K_n.
inline Graph make_complete(std::size_t n) {
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  g.finalize();
  return g;
}

/// w x h grid graph (4-neighborhood).
inline Graph make_grid(std::size_t w, std::size_t h) {
  Graph g(w * h);
  const auto id = [w](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * w + x);
  };
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      if (x + 1 < w) g.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < h) g.add_edge(id(x, y), id(x, y + 1));
    }
  }
  g.finalize();
  return g;
}

}  // namespace mcds::test
