// Admission-control unit tests: the bounded EDF queue and the
// hysteresis overload controller, both driven with a fake clock /
// synthetic signals so every deadline comparison and level transition
// is deterministic.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "serve/admission_queue.hpp"
#include "serve/overload.hpp"

namespace {

using namespace mcds::serve;
using std::chrono::seconds;

TimePoint t0() { return TimePoint{} + seconds(1000); }

QueueItem make_item(std::uint64_t seq, TimePoint deadline,
                    Priority prio = Priority::kNormal) {
  QueueItem it;
  it.req.id = seq;
  it.req.deadline = deadline;
  it.req.priority = prio;
  it.state = std::make_shared<SharedState>();
  it.seqno = seq;
  return it;
}

TEST(AdmissionQueue, RejectsWhenFull) {
  AdmissionQueue q(2);
  EXPECT_TRUE(q.try_push(make_item(1, t0() + seconds(10))));
  EXPECT_TRUE(q.try_push(make_item(2, t0() + seconds(10))));
  EXPECT_FALSE(q.try_push(make_item(3, t0() + seconds(10))));
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.pushed(), 2u);
}

TEST(AdmissionQueue, PopIsEdfOrderedWithFifoTiebreak) {
  AdmissionQueue q(8);
  // Admission order 1..4; deadlines out of order, 3 and 4 tied.
  ASSERT_TRUE(q.try_push(make_item(1, t0() + seconds(30))));
  ASSERT_TRUE(q.try_push(make_item(2, t0() + seconds(10))));
  ASSERT_TRUE(q.try_push(make_item(3, t0() + seconds(20))));
  ASSERT_TRUE(q.try_push(make_item(4, t0() + seconds(20))));
  const auto batch = q.pop_batch(3, t0());
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].seqno, 2u);  // earliest deadline
  EXPECT_EQ(batch[1].seqno, 3u);  // tie broken by admission order
  EXPECT_EQ(batch[2].seqno, 4u);
  const auto rest = q.pop_batch(3, t0());
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].seqno, 1u);
}

TEST(AdmissionQueue, ExpiredWorkIsTimedOutBeforeReachingAWorker) {
  AdmissionQueue q(8);
  auto late = make_item(1, t0() - seconds(1));
  auto live = make_item(2, t0() + seconds(5));
  const auto late_state = late.state;
  ASSERT_TRUE(q.try_push(std::move(late)));
  ASSERT_TRUE(q.try_push(std::move(live)));
  const auto batch = q.pop_batch(8, t0());
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].seqno, 2u);
  EXPECT_EQ(q.purged(), 1u);
  ASSERT_TRUE(late_state->done());
  EXPECT_EQ(late_state->status(), Status::kTimeout);
}

TEST(AdmissionQueue, PurgeExpiredLeavesLiveWorkQueued) {
  AdmissionQueue q(8);
  ASSERT_TRUE(q.try_push(make_item(1, t0() + seconds(1))));
  ASSERT_TRUE(q.try_push(make_item(2, t0() + seconds(60))));
  EXPECT_EQ(q.purge_expired(t0() + seconds(30)), 1u);
  EXPECT_EQ(q.depth(), 1u);
}

TEST(AdmissionQueue, ShedTakesLowestPriorityLatestDeadlineFirst) {
  AdmissionQueue q(8);
  auto low_far = make_item(1, t0() + seconds(60), Priority::kLow);
  auto low_near = make_item(2, t0() + seconds(5), Priority::kLow);
  auto norm = make_item(3, t0() + seconds(60), Priority::kNormal);
  auto high = make_item(4, t0() + seconds(60), Priority::kHigh);
  const auto far_state = low_far.state;
  const auto near_state = low_near.state;
  ASSERT_TRUE(q.try_push(std::move(low_far)));
  ASSERT_TRUE(q.try_push(std::move(low_near)));
  ASSERT_TRUE(q.try_push(std::move(norm)));
  ASSERT_TRUE(q.try_push(std::move(high)));
  EXPECT_EQ(q.shed(Priority::kLow, 1), 1u);
  EXPECT_TRUE(far_state->done());  // furthest-out low went first
  EXPECT_EQ(far_state->status(), Status::kShed);
  EXPECT_FALSE(near_state->done());
  EXPECT_EQ(q.depth(), 3u);
  // Cutoff kNormal sheds the remaining low and the normal, never high.
  EXPECT_EQ(q.shed(Priority::kNormal, 8), 2u);
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.shed_total(), 3u);
}

TEST(AdmissionQueue, CloseCancelsQueuedWorkAndRefusesNewWork) {
  AdmissionQueue q(4);
  auto item = make_item(1, t0() + seconds(60));
  const auto state = item.state;
  ASSERT_TRUE(q.try_push(std::move(item)));
  EXPECT_EQ(q.close(), 1u);
  ASSERT_TRUE(state->done());
  EXPECT_EQ(state->status(), Status::kCancelled);
  EXPECT_FALSE(q.try_push(make_item(2, t0() + seconds(60))));
}

TEST(AdmissionQueue, ZeroCapacityThrows) {
  EXPECT_THROW(AdmissionQueue(0), std::invalid_argument);
}

// ---------------------------------------------------------------- overload

OverloadParams tight() {
  OverloadParams p;
  p.enter_depth = 0.7;
  p.exit_depth = 0.3;
  p.enter_p95_s = 1.0;
  p.exit_p95_s = 0.5;
  p.dwell_up = 2;
  p.dwell_down = 3;
  return p;
}

TEST(OverloadController, EscalatesOnlyAfterDwellUpConsecutiveSamples) {
  OverloadController c(tight());
  EXPECT_EQ(c.observe(0.9, 0.0), 0u);  // one over-threshold sample: hold
  EXPECT_EQ(c.observe(0.1, 0.0), 0u);  // streak broken
  EXPECT_EQ(c.observe(0.9, 0.0), 0u);
  EXPECT_EQ(c.observe(0.9, 0.0), 1u);  // second consecutive: step up
}

TEST(OverloadController, LatencySignalAloneEscalates) {
  OverloadController c(tight());
  c.observe(0.0, 2.0);
  EXPECT_EQ(c.observe(0.0, 2.0), 1u);  // p95 over enter_p95_s
}

TEST(OverloadController, HysteresisBandHoldsTheLevel) {
  OverloadController c(tight());
  c.observe(0.9, 0.0);
  c.observe(0.9, 0.0);
  ASSERT_EQ(c.level(), 1u);
  // Samples inside the band (0.3 < depth < 0.7): no de-escalation ever.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c.observe(0.5, 0.0), 1u);
  // Below the exit threshold: needs dwell_down consecutive samples.
  c.observe(0.1, 0.0);
  c.observe(0.1, 0.0);
  EXPECT_EQ(c.level(), 1u);
  EXPECT_EQ(c.observe(0.1, 0.0), 0u);
}

TEST(OverloadController, TransitionsAreMonotoneSingleSteps) {
  OverloadController c(tight());
  for (int i = 0; i < 30; ++i) c.observe(1.0, 5.0);
  EXPECT_EQ(c.level(), 3u);  // saturates at max_level
  for (int i = 0; i < 30; ++i) c.observe(0.0, 0.0);
  EXPECT_EQ(c.level(), 0u);
  for (const OverloadTransition& t : c.transitions()) {
    EXPECT_EQ(std::max(t.from, t.to) - std::min(t.from, t.to), 1u)
        << "transition " << t.from << " -> " << t.to;
  }
  EXPECT_EQ(c.transitions().size(), 6u);  // 3 up, 3 down
}

TEST(OverloadController, LadderMapsLevelsToDegradation) {
  OverloadController c(tight());
  EXPECT_EQ(c.cap_tier(Tier::kKm22), Tier::kKm22);
  EXPECT_FALSE(c.strip_trace());
  EXPECT_FALSE(c.shed_low_priority());
  c.observe(1.0, 0.0);
  c.observe(1.0, 0.0);  // level 1
  EXPECT_EQ(c.cap_tier(Tier::kKm22), Tier::kKm11);
  EXPECT_EQ(c.cap_tier(Tier::kGreedy), Tier::kGreedy);  // never upgrades
  EXPECT_FALSE(c.strip_trace());
  c.observe(1.0, 0.0);
  c.observe(1.0, 0.0);  // level 2
  EXPECT_EQ(c.cap_tier(Tier::kKm22), Tier::kGreedy);
  EXPECT_TRUE(c.strip_trace());
  EXPECT_FALSE(c.shed_low_priority());
  c.observe(1.0, 0.0);
  c.observe(1.0, 0.0);  // level 3
  EXPECT_TRUE(c.shed_low_priority());
}

TEST(OverloadController, InvertedThresholdsThrow) {
  OverloadParams p;
  p.enter_depth = 0.3;
  p.exit_depth = 0.7;  // exit above entry: no hysteresis band
  EXPECT_THROW(OverloadController{p}, std::invalid_argument);
}

}  // namespace
