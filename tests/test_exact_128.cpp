// Exact solvers over SmallGraph128: differential equality with the
// 64-bit solvers on shared instances, plus genuinely wide (> 64 node)
// cases with known answers.

#include <gtest/gtest.h>

#include "exact/exact_cds.hpp"
#include "exact/exact_connectors.hpp"
#include "exact/exact_ds.hpp"
#include "exact/exact_mis.hpp"
#include "graph/small_graph.hpp"
#include "sim/rng.hpp"
#include "test_util.hpp"
#include "udg/builder.hpp"
#include "udg/instance.hpp"

namespace mcds::exact {
namespace {

using graph::Mask128;
using graph::SmallGraph;
using graph::SmallGraph128;

TEST(Exact128, WidePathKnownValues) {
  // Path of 80 nodes: alpha = ceil(80/2) = 40, gamma = ceil(80/3) = 27,
  // gamma_c = 78 (all interior nodes).
  const auto path = test::make_path(80);
  const SmallGraph128 g(path);
  EXPECT_EQ(independence_number(g), 40u);
  EXPECT_EQ(domination_number(g), 27u);
  EXPECT_EQ(connected_domination_number(g), 78u);
}

TEST(Exact128, WideStarAndCycle) {
  const SmallGraph128 star(test::make_star(100));
  EXPECT_EQ(connected_domination_number(star), 1u);
  EXPECT_EQ(independence_number(star), 99u);
  const SmallGraph128 cycle(test::make_cycle(90));
  EXPECT_EQ(independence_number(cycle), 45u);
  EXPECT_EQ(domination_number(cycle), 30u);
}

TEST(Exact128, ConnectorsOnWidePath) {
  const auto path = test::make_path(70);
  const SmallGraph128 g(path);
  Mask128 mis{0};
  for (graph::NodeId v = 0; v < 70; v += 2) {
    mis |= SmallGraph128::bit(v);  // {0,2,...,68}: maximal independent
  }
  const auto c = minimum_connectors(g, mis);
  EXPECT_EQ(graph::popcount(c), 34);  // one odd node per gap
}

// Differential: both widths give identical numbers on <= 20-node UDGs.
class Exact128Differential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(Exact128Differential, MatchesSixtyFourBitSolvers) {
  udg::InstanceParams params;
  params.nodes = 10 + GetParam() % 8;
  params.side = 2.6;
  const auto inst =
      udg::generate_connected_instance(params, GetParam() * 449);
  if (!inst) GTEST_SKIP() << "no connected draw";
  const SmallGraph g64(inst->graph);
  const SmallGraph128 g128(inst->graph);
  EXPECT_EQ(independence_number(g64), independence_number(g128));
  EXPECT_EQ(domination_number(g64), domination_number(g128));
  EXPECT_EQ(connected_domination_number(g64),
            connected_domination_number(g128));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Exact128Differential,
                         ::testing::Range<std::uint64_t>(1, 16));

// A mid-size (n ~ 26) exactly solved UDG: the witness must actually be
// a connected dominating set of minimum-consistent size.
TEST(Exact128, MidSizeUdgWitnessValid) {
  udg::InstanceParams params;
  params.nodes = 26;
  params.side = 4.0;
  const auto inst = udg::generate_connected_instance(params, 31415);
  ASSERT_TRUE(inst.has_value());
  const SmallGraph128 g(inst->graph);
  const Mask128 cds = minimum_connected_dominating_set(g);
  EXPECT_TRUE(g.is_dominating(cds));
  EXPECT_TRUE(g.is_connected(cds));
  EXPECT_GE(static_cast<std::size_t>(graph::popcount(cds)),
            domination_number(g));
}

}  // namespace
}  // namespace mcds::exact
