#include "graph/steiner.hpp"

#include <gtest/gtest.h>

#include "graph/subgraph.hpp"
#include "test_util.hpp"

namespace mcds::graph {
namespace {

TEST(ShortestPathAugment, BridgesPathEndpoints) {
  const Graph g = test::make_path(6);
  const auto added = shortest_path_augment(g, {0, 5});
  EXPECT_EQ(added.size(), 4u);
  std::vector<NodeId> all{0, 5};
  all.insert(all.end(), added.begin(), added.end());
  EXPECT_TRUE(is_connected_subset(g, all));
}

TEST(ShortestPathAugment, NoopWhenAlreadyConnected) {
  const Graph g = test::make_cycle(8);
  EXPECT_TRUE(shortest_path_augment(g, {2, 3, 4}).empty());
  EXPECT_TRUE(shortest_path_augment(g, {5}).empty());
}

TEST(ShortestPathAugment, PicksShortRoutes) {
  // Grid: connecting opposite corners of a 3x3 grid needs exactly 3
  // interior nodes (a 4-hop path).
  const Graph g = test::make_grid(3, 3);
  const auto added = shortest_path_augment(g, {0, 8});
  EXPECT_EQ(added.size(), 3u);
}

TEST(ShortestPathAugment, MultipleComponentsAllMerged) {
  const Graph g = test::make_path(9);
  const auto added = shortest_path_augment(g, {0, 4, 8});
  std::vector<NodeId> all{0, 4, 8};
  all.insert(all.end(), added.begin(), added.end());
  EXPECT_TRUE(is_connected_subset(g, all));
  EXPECT_EQ(added.size(), 6u);  // every interior node
}

TEST(ShortestPathAugment, Preconditions) {
  const Graph g = test::make_path(4);
  EXPECT_THROW((void)shortest_path_augment(g, {}), std::invalid_argument);
  EXPECT_THROW((void)shortest_path_augment(g, {9}), std::invalid_argument);
  Graph disc(4);
  disc.add_edge(0, 1);
  disc.finalize();
  EXPECT_THROW((void)shortest_path_augment(disc, {0, 2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcds::graph
