#include "udg/deployment.hpp"

#include <gtest/gtest.h>

namespace mcds::udg {
namespace {

TEST(Deployment, UniformSquareBoundsAndCount) {
  sim::Rng rng(1);
  const auto pts = deploy_uniform_square(200, 7.5, rng);
  EXPECT_EQ(pts.size(), 200u);
  for (const auto p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 7.5);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 7.5);
  }
}

TEST(Deployment, UniformDiskInsideDisk) {
  sim::Rng rng(2);
  const auto pts = deploy_uniform_disk(300, 4.0, rng);
  EXPECT_EQ(pts.size(), 300u);
  for (const auto p : pts) {
    EXPECT_LE(geom::dist(p, {4.0, 4.0}), 4.0 + 1e-9);
  }
}

TEST(Deployment, PerturbedGridCountAndBounds) {
  sim::Rng rng(3);
  const auto pts = deploy_perturbed_grid(90, 10.0, 0.4, rng);
  EXPECT_EQ(pts.size(), 90u);
  for (const auto p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 10.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 10.0);
  }
  EXPECT_TRUE(deploy_perturbed_grid(0, 10.0, 0.4, rng).empty());
}

TEST(Deployment, PerturbedGridZeroJitterIsRegular) {
  sim::Rng rng(4);
  const auto pts = deploy_perturbed_grid(9, 3.0, 0.0, rng);
  ASSERT_EQ(pts.size(), 9u);
  EXPECT_NEAR(pts[0].x, 0.5, 1e-12);
  EXPECT_NEAR(pts[0].y, 0.5, 1e-12);
  EXPECT_NEAR(pts[4].x, 1.5, 1e-12);
}

TEST(Deployment, GaussianClustersClamped) {
  sim::Rng rng(5);
  const auto pts = deploy_gaussian_clusters(250, 6.0, 4, 0.8, rng);
  EXPECT_EQ(pts.size(), 250u);
  for (const auto p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 6.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 6.0);
  }
}

TEST(Deployment, CorridorShape) {
  sim::Rng rng(6);
  const auto pts = deploy_corridor(100, 20.0, 2.0, rng);
  for (const auto p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 20.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 2.0);
  }
}

TEST(Deployment, InvalidParametersThrow) {
  sim::Rng rng(7);
  EXPECT_THROW((void)deploy_uniform_square(5, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)deploy_uniform_disk(5, -1.0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)deploy_perturbed_grid(5, 5.0, -0.1, rng),
               std::invalid_argument);
  EXPECT_THROW((void)deploy_gaussian_clusters(5, 5.0, 0, 1.0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)deploy_gaussian_clusters(5, 5.0, 2, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)deploy_corridor(5, 5.0, 0.0, rng),
               std::invalid_argument);
}

TEST(Deployment, DispatchCoversAllModels) {
  for (const auto m :
       {DeploymentModel::kUniformSquare, DeploymentModel::kUniformDisk,
        DeploymentModel::kPerturbedGrid, DeploymentModel::kGaussianCluster,
        DeploymentModel::kCorridor}) {
    sim::Rng rng(8);
    const auto pts = deploy(m, 50, 8.0, rng);
    EXPECT_EQ(pts.size(), 50u) << to_string(m);
    EXPECT_NE(std::string(to_string(m)), "unknown");
  }
}

TEST(Deployment, DeterministicPerSeed) {
  sim::Rng a(99), b(99);
  const auto pa = deploy_uniform_square(20, 5.0, a);
  const auto pb = deploy_uniform_square(20, 5.0, b);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(pa[i].x, pb[i].x);
    EXPECT_EQ(pa[i].y, pb[i].y);
  }
}

}  // namespace
}  // namespace mcds::udg
