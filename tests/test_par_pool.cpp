// ThreadPool and parallel_for contract tests: every submitted task runs
// exactly once, stats account for all of them, exceptions surface
// deterministically (lowest chunk index), and the auto-sizing chain
// (MCDS_THREADS > hardware_concurrency > 1) never yields zero workers.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "par/thread_pool.hpp"

namespace {

using mcds::par::parallel_for;
using mcds::par::ThreadPool;

TEST(ParPool, RunsEveryTaskOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.executed, 200u);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_GE(stats.peak_pending, 1u);
  EXPECT_EQ(stats.busy_ns.size(), 4u);
}

TEST(ParPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing submitted: must not block
  EXPECT_EQ(pool.stats().executed, 0u);
}

TEST(ParPool, WaitIdleRethrowsTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an error.
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(&pool, n, 7,
               [&hits](std::size_t begin, std::size_t end, std::size_t) {
                 for (std::size_t i = begin; i < end; ++i) {
                   hits[i].fetch_add(1, std::memory_order_relaxed);
                 }
               });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParPool, ParallelForChunkIndicesAreDeterministic) {
  // Chunk boundaries must be a pure function of (n, grain), independent
  // of the pool: record them through a pool and inline, compare.
  const auto boundaries = [](ThreadPool* pool) {
    std::vector<std::array<std::size_t, 3>> out(8);
    parallel_for(pool, 100, 13,
                 [&out](std::size_t begin, std::size_t end,
                        std::size_t chunk) {
                   out[chunk] = {begin, end, chunk};
                 });
    return out;
  };
  ThreadPool pool(4);
  EXPECT_EQ(boundaries(&pool), boundaries(nullptr));
}

TEST(ParPool, ParallelForRethrowsLowestChunkError) {
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      parallel_for(&pool, 64, 8,
                   [](std::size_t, std::size_t, std::size_t chunk) {
                     if (chunk == 2 || chunk == 5) {
                       throw std::runtime_error("chunk " +
                                                std::to_string(chunk));
                     }
                   });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 2");
    }
  }
}

TEST(ParPool, ParallelForHandlesEmptyAndZeroGrain) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(&pool, 0, 4,
               [&calls](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // grain 0 is clamped to 1.
  std::vector<int> hits(5, 0);
  parallel_for(nullptr, hits.size(), 0,
               [&hits](std::size_t begin, std::size_t end, std::size_t) {
                 for (std::size_t i = begin; i < end; ++i) ++hits[i];
               });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 5);
}

TEST(ParPool, DefaultThreadsIsPositiveAndHonorsEnv) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ::setenv("MCDS_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  ThreadPool pool;  // auto-sized: must pick up the override
  EXPECT_EQ(pool.size(), 3u);
  ::setenv("MCDS_THREADS", "0", 1);  // invalid: falls through to hardware
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ::setenv("MCDS_THREADS", "junk", 1);
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ::unsetenv("MCDS_THREADS");
}

TEST(ParPool, PublishExportsGauges) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  mcds::obs::MetricsRegistry registry;
  pool.publish(registry);
  EXPECT_EQ(registry.gauge("par.pool.workers").value(), 2.0);
  EXPECT_EQ(registry.gauge("par.pool.executed").value(), 32.0);
  EXPECT_EQ(registry.gauge("par.pool.queue_depth").value(), 0.0);
  EXPECT_GE(registry.gauge("par.pool.peak_queue_depth").value(), 1.0);
}

TEST(ParPool, SingleWorkerPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
  EXPECT_EQ(pool.stats().stolen, 0u);
}

}  // namespace
