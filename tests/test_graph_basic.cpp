#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace mcds::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.finalized());
}

TEST(Graph, EdgelessGraph) {
  const Graph g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(Graph, AddEdgeAndQuery) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(Graph, NeighborsSortedAfterFinalize) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.finalize();
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 3u);
  EXPECT_EQ(nb[2], 4u);
}

TEST(Graph, DuplicateEdgesCollapse) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, InvalidEdgesThrow) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(g.add_edge(3, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, HasEdgeRequiresFinalize) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.finalized());
  EXPECT_THROW((void)g.has_edge(0, 1), std::logic_error);
  g.finalize();
  EXPECT_TRUE(g.finalized());
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Graph, EdgeListConstructor) {
  const std::vector<std::pair<NodeId, NodeId>> edges{{0, 1}, {1, 2}, {2, 0}};
  const Graph g(3, edges);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.finalized());
}

TEST(Graph, EdgesEnumeration) {
  Graph g = test::make_path(4);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(edges[1], (std::pair<NodeId, NodeId>{1, 2}));
  EXPECT_EQ(edges[2], (std::pair<NodeId, NodeId>{2, 3}));
}

TEST(Graph, CompleteGraphEdgeCount) {
  const Graph g = test::make_complete(7);
  EXPECT_EQ(g.num_edges(), 21u);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6u);
}

TEST(Graph, FinalizeIdempotent) {
  Graph g = test::make_cycle(5);
  g.finalize();
  g.finalize();
  EXPECT_EQ(g.num_edges(), 5u);
}

}  // namespace
}  // namespace mcds::graph
