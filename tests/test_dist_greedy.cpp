#include "dist/greedy_protocol.hpp"

#include <gtest/gtest.h>

#include "core/greedy_connect.hpp"
#include "core/validate.hpp"
#include "test_util.hpp"
#include "udg/instance.hpp"

namespace mcds::dist {
namespace {

TEST(DistGreedy, SingleNodeAndEdge) {
  const auto r1 = distributed_greedy_cds(graph::Graph(1));
  EXPECT_EQ(r1.cds, (std::vector<NodeId>{0}));
  EXPECT_EQ(r1.epochs, 0u);

  const Graph two = test::make_path(2);
  const auto r2 = distributed_greedy_cds(two);
  EXPECT_TRUE(core::is_cds(two, r2.cds));
  EXPECT_EQ(r2.cds, (std::vector<NodeId>{0}));
}

TEST(DistGreedy, PathMatchesCentralizedConnectorCount) {
  // Path of 9: dominators {0,2,4,6,8}; each odd node has gain exactly 1
  // and competes with its 2-hop odd neighbors... all bids tie on gain so
  // the smallest-id bidder of each neighborhood wins per epoch; the end
  // state must use exactly the 4 odd connectors.
  const Graph g = test::make_path(9);
  const auto r = distributed_greedy_cds(g);
  EXPECT_TRUE(core::is_cds(g, r.cds));
  EXPECT_EQ(r.connectors, (std::vector<NodeId>{1, 3, 5, 7}));
}

TEST(DistGreedy, Preconditions) {
  EXPECT_THROW((void)distributed_greedy_cds(graph::Graph{}),
               std::invalid_argument);
  graph::Graph disc(4);
  disc.add_edge(0, 1);
  disc.finalize();
  EXPECT_THROW((void)distributed_greedy_cds(disc), std::invalid_argument);
}

// Property sweep: valid CDS; locality costs at most a modest premium
// over the centralized Section IV greedy (never smaller than OPT-side
// structure: dominators are shared by construction rank order).
class DistGreedyRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistGreedyRandom, ValidAndComparableToCentralized) {
  udg::InstanceParams params;
  params.nodes = 50 + (GetParam() % 3) * 30;
  params.side = 5.5 + static_cast<double>(GetParam() % 3) * 1.5;
  const auto inst =
      udg::generate_largest_component_instance(params, GetParam() * 67);
  const Graph& g = inst.graph;
  const auto r = distributed_greedy_cds(g);
  EXPECT_TRUE(core::is_cds(g, r.cds)) << "n=" << g.num_nodes();
  EXPECT_TRUE(core::is_maximal_independent_set(g, r.mis.mis));

  // Epochs never exceed the dominator count (q strictly decreases).
  EXPECT_LE(r.epochs, r.mis.mis.size());
  // Connector budget: one winner merges >= 2 components, so the total
  // number of connectors is below the component count at phase-1 end.
  EXPECT_LE(r.connectors.size(), r.mis.mis.size());

  // Locality premium vs the centralized greedy (same ratio class).
  const auto central = core::greedy_cds(g, 0);
  EXPECT_LE(r.cds.size(), central.cds.size() * 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistGreedyRandom,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace mcds::dist
