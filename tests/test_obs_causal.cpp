// Tests for the causal tracing layer (src/obs/causal.*) and its wiring
// through the distributed runtime: span lifecycle and happened-before
// parenting, critical-path extraction, crash/drop semantics (no span
// for a dropped send, an undelivered span for a crash-discarded one),
// ReliableLink context preservation across retransmissions, phase
// summing in RunStats, and the differential determinism contract (the
// critical-path report and causal JSONL are byte-identical across
// repeated runs and across thread-pool sizes on a seeded corpus).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dist/distributed_cds.hpp"
#include "dist/reliable_link.hpp"
#include "dist/runtime.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "par/thread_pool.hpp"
#include "udg/builder.hpp"
#include "udg/instance.hpp"

namespace mcds {
namespace {

using dist::Message;
using dist::Runtime;
using graph::Graph;
using graph::NodeId;

Graph path(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  g.finalize();
  return g;
}

udg::UdgInstance instance(std::size_t n, std::uint64_t seed = 5) {
  udg::InstanceParams params;
  params.nodes = n;
  params.side = std::sqrt(static_cast<double>(n)) * 0.85;
  return udg::generate_largest_component_instance(params, seed);
}

// A token relay on a path: node 0 emits one token, every node forwards
// it to the next higher neighbor. The causal chain is exactly the k
// hops of the path, which makes every depth assertable by hand.
class Relay final : public dist::Protocol {
 public:
  explicit Relay(dist::Transport& net) : net_(net) {}
  void start(NodeId self) override {
    if (self == 0) net_.send(0, 1, Message{0, 1, 0, 0});
  }
  void step(NodeId self, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      if (m.type != 1) continue;
      ++received_[self];
      if (self + 1 < net_.topology().num_nodes()) {
        net_.send(self, self + 1, Message{0, 1, 0, 0});
      }
    }
  }
  /// Tokens delivered to \p v (exactly-once check under ReliableLink).
  [[nodiscard]] std::size_t received(NodeId v) const {
    const auto it = received_.find(v);
    return it == received_.end() ? 0 : it->second;
  }

 private:
  dist::Transport& net_;
  std::map<NodeId, std::size_t> received_;
};

// ---------------------------------------------------------- tracer unit

TEST(CausalTracer, SpanLifecycleAndDepthChains) {
  obs::CausalTracer tr;
  const auto t = tr.begin_trace("unit");
  // Root send: no parent, depth 1.
  const auto root = tr.on_send(t, {}, 0, 1, 7, 0);
  EXPECT_EQ(root, 1u);
  EXPECT_EQ(tr.span(root).parent, obs::kNoSpan);
  EXPECT_EQ(tr.span(root).depth, 1u);
  EXPECT_FALSE(tr.span(root).delivered());
  EXPECT_EQ(tr.max_depth(t), 0u);  // nothing delivered yet

  tr.on_deliver(root, 1);
  EXPECT_TRUE(tr.span(root).delivered());
  EXPECT_EQ(tr.span(root).delivered_round, 1u);
  EXPECT_EQ(tr.max_depth(t), 1u);

  // A child sent under the delivered span's context extends the chain.
  const auto ctx = tr.context_of(root);
  EXPECT_EQ(ctx.span, root);
  EXPECT_EQ(ctx.depth, 1u);
  const auto child = tr.on_send(t, ctx, 1, 2, 7, 1);
  EXPECT_EQ(tr.span(child).parent, root);
  EXPECT_EQ(tr.span(child).depth, 2u);
  tr.on_deliver(child, 2);
  EXPECT_EQ(tr.max_depth(t), 2u);

  ASSERT_EQ(tr.traces().size(), 1u);
  EXPECT_EQ(tr.traces()[0].spans, 2u);
  EXPECT_EQ(tr.traces()[0].delivered, 2u);
  EXPECT_EQ(tr.traces()[0].deepest, child);
}

TEST(CausalTracer, NoSpanAndOutOfRangeContextsAreRoots) {
  obs::CausalTracer tr;
  const auto none = tr.context_of(obs::kNoSpan);
  EXPECT_EQ(none.span, obs::kNoSpan);
  EXPECT_EQ(none.depth, 0u);
  const auto bogus = tr.context_of(999);
  EXPECT_EQ(bogus.span, obs::kNoSpan);
  // Delivering nonsense must be a safe no-op.
  tr.on_deliver(obs::kNoSpan, 3);
  tr.on_deliver(999, 3);
  EXPECT_EQ(tr.num_spans(), 0u);
}

TEST(CausalTracer, DuplicateDeliveryOfOneSpanCountsOnce) {
  obs::CausalTracer tr;
  const auto t = tr.begin_trace("dup");
  const auto s = tr.on_send(t, {}, 0, 1, 0, 0);
  tr.on_deliver(s, 1);
  tr.on_deliver(s, 5);  // a second delivery must not rewrite the first
  EXPECT_EQ(tr.span(s).delivered_round, 1u);
  EXPECT_EQ(tr.traces()[0].delivered, 1u);
}

TEST(CausalTracer, DeepestTieBreaksTowardSmallestSpanId) {
  obs::CausalTracer tr;
  const auto t = tr.begin_trace("tie");
  const auto a = tr.on_send(t, {}, 0, 1, 0, 0);
  const auto b = tr.on_send(t, {}, 0, 2, 0, 0);
  tr.on_deliver(a, 1);
  tr.on_deliver(b, 1);  // equal depth, later id: must not displace a
  EXPECT_EQ(tr.traces()[0].deepest, a);
  // A strictly deeper chain does displace it.
  const auto c = tr.on_send(t, tr.context_of(b), 2, 3, 0, 1);
  tr.on_deliver(c, 2);
  EXPECT_EQ(tr.traces()[0].deepest, c);
  EXPECT_EQ(tr.max_depth(t), 2u);
}

TEST(CausalTracer, TracesAreIndependent) {
  obs::CausalTracer tr;
  const auto t0 = tr.begin_trace("first");
  const auto t1 = tr.begin_trace("second");
  const auto a = tr.on_send(t0, {}, 0, 1, 0, 0);
  const auto b = tr.on_send(t1, {}, 0, 1, 0, 0);
  tr.on_deliver(a, 1);
  tr.on_deliver(b, 1);
  const auto c = tr.on_send(t1, tr.context_of(b), 1, 0, 0, 1);
  tr.on_deliver(c, 2);
  EXPECT_EQ(tr.max_depth(t0), 1u);
  EXPECT_EQ(tr.max_depth(t1), 2u);
  EXPECT_EQ(tr.traces()[0].label, "first");
  EXPECT_EQ(tr.traces()[1].label, "second");
}

// ------------------------------------------------- critical-path report

TEST(CriticalPath, ExtractsHopsInCausalOrder) {
  obs::CausalTracer tr;
  const auto t = tr.begin_trace("chain");
  obs::CausalContext ctx;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto s = tr.on_send(t, ctx, i, i + 1, 4, i);
    tr.on_deliver(s, i + 1);
    ctx = tr.context_of(s);
  }
  const auto report = obs::critical_path(tr);
  ASSERT_EQ(report.traces.size(), 1u);
  const obs::CriticalPath& p = report.traces[0];
  EXPECT_EQ(p.length, 3u);
  EXPECT_EQ(report.total_length(), 3u);
  ASSERT_EQ(p.hops.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(p.hops[i].from, i);
    EXPECT_EQ(p.hops[i].to, i + 1);
    EXPECT_EQ(p.hops[i].type, 4);
    EXPECT_EQ(p.hops[i].sent_round, i);
    EXPECT_EQ(p.hops[i].delivered_round, i + 1);
  }
  EXPECT_EQ(p.first_sent_round, 0u);
  EXPECT_EQ(p.last_delivered_round, 3u);
  EXPECT_EQ(p.rounds_span(), 4u);  // rounds 0..3 inclusive

  std::ostringstream os;
  report.write(os, /*hops=*/true);
  const std::string text = os.str();
  EXPECT_NE(text.find("[chain] spans=3 delivered=3 critical_path=3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("    1 -> 2 type=4 sent@1 delivered@2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("total critical path: 3 message(s) over 1 trace(s)"),
            std::string::npos)
      << text;
}

TEST(CriticalPath, EmptyTraceReportsZero) {
  obs::CausalTracer tr;
  tr.begin_trace("silent");
  const auto report = obs::critical_path(tr);
  ASSERT_EQ(report.traces.size(), 1u);
  EXPECT_EQ(report.traces[0].length, 0u);
  EXPECT_TRUE(report.traces[0].hops.empty());
  EXPECT_EQ(report.traces[0].rounds_span(), 0u);
  EXPECT_EQ(report.total_length(), 0u);
}

TEST(CausalJsonl, OneObjectPerSpanWithDeliveryStatus) {
  obs::CausalTracer tr;
  const auto t = tr.begin_trace("jsonl");
  const auto a = tr.on_send(t, {}, 0, 1, 2, 0);
  tr.on_deliver(a, 1);
  (void)tr.on_send(t, tr.context_of(a), 1, 0, 3, 1);  // never delivered
  std::ostringstream os;
  obs::write_causal_jsonl(tr, os);
  const std::string text = os.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("{\"span\":1,\"parent\":0,\"trace\":0,\"from\":0,"
                      "\"to\":1,\"type\":2,\"depth\":1,\"sent\":0,"
                      "\"delivered\":1}"),
            std::string::npos)
      << text;
  // The undelivered span carries no "delivered" key.
  EXPECT_NE(text.find("{\"span\":2,\"parent\":1,\"trace\":0,\"from\":1,"
                      "\"to\":0,\"type\":3,\"depth\":2,\"sent\":1}"),
            std::string::npos)
      << text;
}

// -------------------------------------------------------- runtime wiring

TEST(RuntimeCausal, RelayChainDepthEqualsHopCount) {
  constexpr std::size_t kNodes = 7;  // 6 hops
  const Graph g = path(kNodes);
  obs::CausalTracer tracer;
  obs::Obs o;
  o.causal = &tracer;
  Runtime rt(g);
  rt.observe(o, "relay");
  Relay p(rt);
  const auto stats = rt.run(p);
  EXPECT_EQ(stats.critical_path, kNodes - 1);
  EXPECT_EQ(tracer.num_spans(), kNodes - 1);
  ASSERT_EQ(tracer.traces().size(), 1u);
  EXPECT_EQ(tracer.traces()[0].label, "relay");
  EXPECT_EQ(tracer.traces()[0].delivered, kNodes - 1);

  // The extracted chain is the path itself, hop by hop.
  const auto report = obs::critical_path(tracer);
  ASSERT_EQ(report.traces.size(), 1u);
  ASSERT_EQ(report.traces[0].hops.size(), kNodes - 1);
  for (std::uint32_t i = 0; i + 1 < kNodes; ++i) {
    EXPECT_EQ(report.traces[0].hops[i].from, i);
    EXPECT_EQ(report.traces[0].hops[i].to, i + 1);
  }
  EXPECT_LE(stats.critical_path, stats.rounds);
}

TEST(RuntimeCausal, UntracedRunStampsNoSpans) {
  const Graph g = path(4);
  Runtime rt(g);  // no observe(): causal stays off
  Relay p(rt);
  const auto stats = rt.run(p);
  EXPECT_EQ(stats.critical_path, 0u);
}

TEST(RuntimeCausal, CrashDiscardedMessageLeavesUndeliveredSpan) {
  const Graph g = path(2);
  dist::FaultPlan plan;
  plan.schedule.push_back({1, 1, false});  // node 1 dies at round 1
  obs::CausalTracer tracer;
  obs::Obs o;
  o.causal = &tracer;
  Runtime rt(g, plan);
  rt.observe(o, "doomed");
  Relay p(rt);
  const auto stats = rt.run(p);
  // The send happened (span recorded) but the crash swallowed it.
  ASSERT_EQ(tracer.num_spans(), 1u);
  EXPECT_FALSE(tracer.span(1).delivered());
  EXPECT_EQ(tracer.traces()[0].delivered, 0u);
  EXPECT_EQ(stats.critical_path, 0u);
  EXPECT_EQ(rt.faults().crash_discarded, 1u);
}

TEST(RuntimeCausal, ChannelDroppedSendRecordsNoSpan) {
  const Graph g = path(2);
  dist::FaultPlan plan;
  plan.link.drop = 1.0;  // every transmission is lost at the channel
  obs::CausalTracer tracer;
  obs::Obs o;
  o.causal = &tracer;
  Runtime rt(g, plan);
  rt.observe(o, "void");
  Relay p(rt);
  (void)rt.run(p);
  // Stamping happens after channel sampling: a dropped message never
  // existed as a span, so delivered == spans stays an invariant even on
  // lossy channels.
  EXPECT_EQ(tracer.num_spans(), 0u);
  EXPECT_GT(rt.faults().dropped, 0u);
}

TEST(RuntimeCausal, ReliableRetransmissionsExtendTheOriginalChain) {
  constexpr std::size_t kNodes = 7;
  const Graph g = path(kNodes);

  // Clean reliable baseline.
  const auto run_reliable = [&](const dist::FaultPlan& plan,
                                obs::CausalTracer& tracer,
                                std::size_t& retransmissions) {
    obs::Obs o;
    o.causal = &tracer;
    Runtime rt(g, plan);
    rt.observe(o, "relay");
    dist::ReliableLink link(rt, {});
    Relay p(link);
    link.attach(p);
    const auto stats = rt.run(link);
    retransmissions = link.retransmissions();
    EXPECT_EQ(link.expired(), 0u);
    // Exactly-once delivery to the protocol at the far end.
    EXPECT_EQ(p.received(kNodes - 1), 1u);
    return stats;
  };

  obs::CausalTracer clean;
  std::size_t clean_retx = 0;
  const auto clean_stats = run_reliable({}, clean, clean_retx);
  EXPECT_EQ(clean_retx, 0u);

  dist::FaultPlan lossy;
  lossy.link.drop = 0.3;
  lossy.seed = 11;
  obs::CausalTracer faulty;
  std::size_t faulty_retx = 0;
  const auto faulty_stats = run_reliable(lossy, faulty, faulty_retx);
  EXPECT_GT(faulty_retx, 0u);

  // A retransmitted copy is sent under the context captured at first
  // post, so the k-hop relay chain survives arbitrary losses: the lossy
  // critical path can only meet or exceed the clean one (acks riding on
  // retried frames can deepen it further). If retries rooted fresh
  // chains instead, the data chain would fragment into depth <= rto
  // pieces and this lower bound would break.
  EXPECT_GE(clean_stats.critical_path, kNodes - 1);
  EXPECT_GE(faulty_stats.critical_path, clean_stats.critical_path);
  EXPECT_LE(faulty_stats.critical_path, faulty_stats.rounds);
}

TEST(RuntimeCausal, CriticalPathSumsAcrossPhasesAndFlushesCounters) {
  const auto inst = instance(80);
  obs::CausalTracer tracer;
  obs::MetricsRegistry reg;
  dist::RunConfig cfg;
  cfg.obs.causal = &tracer;
  cfg.obs.metrics = &reg;
  const auto r = dist::distributed_waf_cds(inst.graph, cfg);

  // One trace per phase, and the summed RunStats carries the summed
  // critical path (phases are barrier-synchronized).
  ASSERT_EQ(tracer.traces().size(), 4u);
  std::size_t phase_sum = 0;
  for (std::uint32_t t = 0; t < tracer.traces().size(); ++t) {
    phase_sum += tracer.max_depth(t);
  }
  EXPECT_EQ(r.total.critical_path, phase_sum);
  EXPECT_EQ(obs::critical_path(tracer).total_length(), phase_sum);
  EXPECT_GT(r.total.critical_path, 0u);
  EXPECT_LE(r.total.critical_path, r.total.rounds);
  EXPECT_EQ(r.leader_stats.critical_path, tracer.max_depth(0));

  // The registry flush mirrors the per-phase values.
  EXPECT_EQ(reg.counters().at("leader_election.critical_path").value(),
            r.leader_stats.critical_path);
  EXPECT_EQ(reg.counters().at("bfs_tree.critical_path").value(),
            r.tree.stats.critical_path);
}

// --------------------------------------------------------- differential

// The acceptance contract of the tracing layer: on a seeded corpus the
// critical-path report (with hops) and the causal JSONL dump are
// byte-identical across repeated executions and across thread-pool
// sizes (the pool parallelizes graph construction; the runtime is
// serial, so nothing downstream may observe the difference).
TEST(CausalDifferential, ReportByteIdenticalAcrossRepeatsAndThreadCounts) {
  for (const std::uint64_t seed : {5u, 11u}) {
    const auto inst = instance(90, seed);
    const auto run_traced = [&](const Graph& g) {
      obs::CausalTracer tracer;
      dist::RunConfig cfg;
      cfg.plan.link.drop = 0.1;
      cfg.plan.link.max_delay = 1;
      cfg.plan.seed = 7;
      cfg.reliable = true;
      cfg.obs.causal = &tracer;
      (void)dist::distributed_waf_cds(g, cfg);
      std::ostringstream report, jsonl;
      obs::critical_path(tracer).write(report, /*hops=*/true);
      obs::write_causal_jsonl(tracer, jsonl);
      return std::pair{report.str(), jsonl.str()};
    };

    const auto base = run_traced(inst.graph);
    EXPECT_FALSE(base.first.empty());
    EXPECT_FALSE(base.second.empty());
    EXPECT_EQ(base, run_traced(inst.graph)) << "repeat diverged, seed "
                                            << seed;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      par::ThreadPool pool(threads);
      const Graph g = udg::build_udg(inst.points, inst.radius, pool);
      EXPECT_EQ(base, run_traced(g))
          << "diverged at " << threads << " threads, seed " << seed;
    }
  }
}

}  // namespace
}  // namespace mcds
