# Empty dependencies file for test_packing_figs.
# This may be replaced when dependencies are built.
