file(REMOVE_RECURSE
  "CMakeFiles/test_packing_figs.dir/test_packing_figs.cpp.o"
  "CMakeFiles/test_packing_figs.dir/test_packing_figs.cpp.o.d"
  "test_packing_figs"
  "test_packing_figs.pdb"
  "test_packing_figs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packing_figs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
