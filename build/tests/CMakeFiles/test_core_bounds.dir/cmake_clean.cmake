file(REMOVE_RECURSE
  "CMakeFiles/test_core_bounds.dir/test_core_bounds.cpp.o"
  "CMakeFiles/test_core_bounds.dir/test_core_bounds.cpp.o.d"
  "test_core_bounds"
  "test_core_bounds.pdb"
  "test_core_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
