# Empty compiler generated dependencies file for test_core_bounds.
# This may be replaced when dependencies are built.
