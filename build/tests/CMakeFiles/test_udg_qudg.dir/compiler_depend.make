# Empty compiler generated dependencies file for test_udg_qudg.
# This may be replaced when dependencies are built.
