file(REMOVE_RECURSE
  "CMakeFiles/test_udg_qudg.dir/test_udg_qudg.cpp.o"
  "CMakeFiles/test_udg_qudg.dir/test_udg_qudg.cpp.o.d"
  "test_udg_qudg"
  "test_udg_qudg.pdb"
  "test_udg_qudg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_udg_qudg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
