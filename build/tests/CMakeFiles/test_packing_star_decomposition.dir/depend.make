# Empty dependencies file for test_packing_star_decomposition.
# This may be replaced when dependencies are built.
