file(REMOVE_RECURSE
  "CMakeFiles/test_packing_star_decomposition.dir/test_packing_star_decomposition.cpp.o"
  "CMakeFiles/test_packing_star_decomposition.dir/test_packing_star_decomposition.cpp.o.d"
  "test_packing_star_decomposition"
  "test_packing_star_decomposition.pdb"
  "test_packing_star_decomposition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packing_star_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
