file(REMOVE_RECURSE
  "CMakeFiles/test_geom_segment.dir/test_geom_segment.cpp.o"
  "CMakeFiles/test_geom_segment.dir/test_geom_segment.cpp.o.d"
  "test_geom_segment"
  "test_geom_segment.pdb"
  "test_geom_segment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_segment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
