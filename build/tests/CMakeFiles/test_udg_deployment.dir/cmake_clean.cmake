file(REMOVE_RECURSE
  "CMakeFiles/test_udg_deployment.dir/test_udg_deployment.cpp.o"
  "CMakeFiles/test_udg_deployment.dir/test_udg_deployment.cpp.o.d"
  "test_udg_deployment"
  "test_udg_deployment.pdb"
  "test_udg_deployment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_udg_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
