# Empty dependencies file for test_udg_deployment.
# This may be replaced when dependencies are built.
