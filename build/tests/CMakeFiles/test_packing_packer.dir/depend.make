# Empty dependencies file for test_packing_packer.
# This may be replaced when dependencies are built.
