file(REMOVE_RECURSE
  "CMakeFiles/test_packing_packer.dir/test_packing_packer.cpp.o"
  "CMakeFiles/test_packing_packer.dir/test_packing_packer.cpp.o.d"
  "test_packing_packer"
  "test_packing_packer.pdb"
  "test_packing_packer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packing_packer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
