file(REMOVE_RECURSE
  "CMakeFiles/test_exact_128.dir/test_exact_128.cpp.o"
  "CMakeFiles/test_exact_128.dir/test_exact_128.cpp.o.d"
  "test_exact_128"
  "test_exact_128.pdb"
  "test_exact_128[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
