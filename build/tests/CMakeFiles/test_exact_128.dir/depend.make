# Empty dependencies file for test_exact_128.
# This may be replaced when dependencies are built.
