file(REMOVE_RECURSE
  "CMakeFiles/test_dist_runtime.dir/test_dist_runtime.cpp.o"
  "CMakeFiles/test_dist_runtime.dir/test_dist_runtime.cpp.o.d"
  "test_dist_runtime"
  "test_dist_runtime.pdb"
  "test_dist_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
