# Empty dependencies file for test_dist_runtime.
# This may be replaced when dependencies are built.
