file(REMOVE_RECURSE
  "CMakeFiles/test_core_waf.dir/test_core_waf.cpp.o"
  "CMakeFiles/test_core_waf.dir/test_core_waf.cpp.o.d"
  "test_core_waf"
  "test_core_waf.pdb"
  "test_core_waf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_waf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
