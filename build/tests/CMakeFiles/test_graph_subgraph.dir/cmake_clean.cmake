file(REMOVE_RECURSE
  "CMakeFiles/test_graph_subgraph.dir/test_graph_subgraph.cpp.o"
  "CMakeFiles/test_graph_subgraph.dir/test_graph_subgraph.cpp.o.d"
  "test_graph_subgraph"
  "test_graph_subgraph.pdb"
  "test_graph_subgraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_subgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
