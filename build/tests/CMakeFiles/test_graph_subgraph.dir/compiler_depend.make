# Empty compiler generated dependencies file for test_graph_subgraph.
# This may be replaced when dependencies are built.
