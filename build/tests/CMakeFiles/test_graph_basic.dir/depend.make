# Empty dependencies file for test_graph_basic.
# This may be replaced when dependencies are built.
