file(REMOVE_RECURSE
  "CMakeFiles/test_graph_basic.dir/test_graph_basic.cpp.o"
  "CMakeFiles/test_graph_basic.dir/test_graph_basic.cpp.o.d"
  "test_graph_basic"
  "test_graph_basic.pdb"
  "test_graph_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
