
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core_repair.cpp" "tests/CMakeFiles/test_core_repair.dir/test_core_repair.cpp.o" "gcc" "tests/CMakeFiles/test_core_repair.dir/test_core_repair.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/udg/CMakeFiles/mcds_udg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mcds_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcds_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
