# Empty dependencies file for test_core_validate.
# This may be replaced when dependencies are built.
