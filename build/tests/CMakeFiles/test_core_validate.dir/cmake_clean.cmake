file(REMOVE_RECURSE
  "CMakeFiles/test_core_validate.dir/test_core_validate.cpp.o"
  "CMakeFiles/test_core_validate.dir/test_core_validate.cpp.o.d"
  "test_core_validate"
  "test_core_validate.pdb"
  "test_core_validate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
