# Empty dependencies file for test_regression_corpus.
# This may be replaced when dependencies are built.
