file(REMOVE_RECURSE
  "CMakeFiles/test_regression_corpus.dir/test_regression_corpus.cpp.o"
  "CMakeFiles/test_regression_corpus.dir/test_regression_corpus.cpp.o.d"
  "test_regression_corpus"
  "test_regression_corpus.pdb"
  "test_regression_corpus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regression_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
