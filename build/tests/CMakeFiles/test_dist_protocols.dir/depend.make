# Empty dependencies file for test_dist_protocols.
# This may be replaced when dependencies are built.
