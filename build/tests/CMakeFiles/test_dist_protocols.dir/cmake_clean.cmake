file(REMOVE_RECURSE
  "CMakeFiles/test_dist_protocols.dir/test_dist_protocols.cpp.o"
  "CMakeFiles/test_dist_protocols.dir/test_dist_protocols.cpp.o.d"
  "test_dist_protocols"
  "test_dist_protocols.pdb"
  "test_dist_protocols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
