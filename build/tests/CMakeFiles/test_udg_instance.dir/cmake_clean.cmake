file(REMOVE_RECURSE
  "CMakeFiles/test_udg_instance.dir/test_udg_instance.cpp.o"
  "CMakeFiles/test_udg_instance.dir/test_udg_instance.cpp.o.d"
  "test_udg_instance"
  "test_udg_instance.pdb"
  "test_udg_instance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_udg_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
