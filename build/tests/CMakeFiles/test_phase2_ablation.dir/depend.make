# Empty dependencies file for test_phase2_ablation.
# This may be replaced when dependencies are built.
