file(REMOVE_RECURSE
  "CMakeFiles/test_phase2_ablation.dir/test_phase2_ablation.cpp.o"
  "CMakeFiles/test_phase2_ablation.dir/test_phase2_ablation.cpp.o.d"
  "test_phase2_ablation"
  "test_phase2_ablation.pdb"
  "test_phase2_ablation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase2_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
