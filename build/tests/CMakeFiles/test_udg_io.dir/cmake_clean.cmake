file(REMOVE_RECURSE
  "CMakeFiles/test_udg_io.dir/test_udg_io.cpp.o"
  "CMakeFiles/test_udg_io.dir/test_udg_io.cpp.o.d"
  "test_udg_io"
  "test_udg_io.pdb"
  "test_udg_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_udg_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
