# Empty dependencies file for test_udg_io.
# This may be replaced when dependencies are built.
