# Empty dependencies file for test_udg_builder.
# This may be replaced when dependencies are built.
