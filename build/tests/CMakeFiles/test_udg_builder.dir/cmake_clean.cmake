file(REMOVE_RECURSE
  "CMakeFiles/test_udg_builder.dir/test_udg_builder.cpp.o"
  "CMakeFiles/test_udg_builder.dir/test_udg_builder.cpp.o.d"
  "test_udg_builder"
  "test_udg_builder.pdb"
  "test_udg_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_udg_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
