# Empty dependencies file for test_dist_greedy.
# This may be replaced when dependencies are built.
