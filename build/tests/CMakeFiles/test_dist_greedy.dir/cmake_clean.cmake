file(REMOVE_RECURSE
  "CMakeFiles/test_dist_greedy.dir/test_dist_greedy.cpp.o"
  "CMakeFiles/test_dist_greedy.dir/test_dist_greedy.cpp.o.d"
  "test_dist_greedy"
  "test_dist_greedy.pdb"
  "test_dist_greedy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
