# Empty dependencies file for test_graph_mask128.
# This may be replaced when dependencies are built.
