file(REMOVE_RECURSE
  "CMakeFiles/test_graph_mask128.dir/test_graph_mask128.cpp.o"
  "CMakeFiles/test_graph_mask128.dir/test_graph_mask128.cpp.o.d"
  "test_graph_mask128"
  "test_graph_mask128.pdb"
  "test_graph_mask128[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_mask128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
