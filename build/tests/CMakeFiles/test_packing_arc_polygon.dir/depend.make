# Empty dependencies file for test_packing_arc_polygon.
# This may be replaced when dependencies are built.
