file(REMOVE_RECURSE
  "CMakeFiles/test_packing_arc_polygon.dir/test_packing_arc_polygon.cpp.o"
  "CMakeFiles/test_packing_arc_polygon.dir/test_packing_arc_polygon.cpp.o.d"
  "test_packing_arc_polygon"
  "test_packing_arc_polygon.pdb"
  "test_packing_arc_polygon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packing_arc_polygon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
