# Empty compiler generated dependencies file for test_geom_closest.
# This may be replaced when dependencies are built.
