file(REMOVE_RECURSE
  "CMakeFiles/test_geom_closest.dir/test_geom_closest.cpp.o"
  "CMakeFiles/test_geom_closest.dir/test_geom_closest.cpp.o.d"
  "test_geom_closest"
  "test_geom_closest.pdb"
  "test_geom_closest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_closest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
