# Empty compiler generated dependencies file for test_exact_connectors.
# This may be replaced when dependencies are built.
