file(REMOVE_RECURSE
  "CMakeFiles/test_exact_connectors.dir/test_exact_connectors.cpp.o"
  "CMakeFiles/test_exact_connectors.dir/test_exact_connectors.cpp.o.d"
  "test_exact_connectors"
  "test_exact_connectors.pdb"
  "test_exact_connectors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_connectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
