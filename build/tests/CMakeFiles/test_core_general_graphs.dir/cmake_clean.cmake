file(REMOVE_RECURSE
  "CMakeFiles/test_core_general_graphs.dir/test_core_general_graphs.cpp.o"
  "CMakeFiles/test_core_general_graphs.dir/test_core_general_graphs.cpp.o.d"
  "test_core_general_graphs"
  "test_core_general_graphs.pdb"
  "test_core_general_graphs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_general_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
