# Empty dependencies file for test_core_general_graphs.
# This may be replaced when dependencies are built.
