# Empty dependencies file for test_graph_small.
# This may be replaced when dependencies are built.
