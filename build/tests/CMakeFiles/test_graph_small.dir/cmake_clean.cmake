file(REMOVE_RECURSE
  "CMakeFiles/test_graph_small.dir/test_graph_small.cpp.o"
  "CMakeFiles/test_graph_small.dir/test_graph_small.cpp.o.d"
  "test_graph_small"
  "test_graph_small.pdb"
  "test_graph_small[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
