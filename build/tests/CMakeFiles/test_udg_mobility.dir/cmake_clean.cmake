file(REMOVE_RECURSE
  "CMakeFiles/test_udg_mobility.dir/test_udg_mobility.cpp.o"
  "CMakeFiles/test_udg_mobility.dir/test_udg_mobility.cpp.o.d"
  "test_udg_mobility"
  "test_udg_mobility.pdb"
  "test_udg_mobility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_udg_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
