# Empty dependencies file for test_udg_mobility.
# This may be replaced when dependencies are built.
