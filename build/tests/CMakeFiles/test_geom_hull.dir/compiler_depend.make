# Empty compiler generated dependencies file for test_geom_hull.
# This may be replaced when dependencies are built.
