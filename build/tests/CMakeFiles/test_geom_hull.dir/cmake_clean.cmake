file(REMOVE_RECURSE
  "CMakeFiles/test_geom_hull.dir/test_geom_hull.cpp.o"
  "CMakeFiles/test_geom_hull.dir/test_geom_hull.cpp.o.d"
  "test_geom_hull"
  "test_geom_hull.pdb"
  "test_geom_hull[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_hull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
