# Empty dependencies file for test_dist_alzoubi.
# This may be replaced when dependencies are built.
