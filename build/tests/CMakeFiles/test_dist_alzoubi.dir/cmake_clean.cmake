file(REMOVE_RECURSE
  "CMakeFiles/test_dist_alzoubi.dir/test_dist_alzoubi.cpp.o"
  "CMakeFiles/test_dist_alzoubi.dir/test_dist_alzoubi.cpp.o.d"
  "test_dist_alzoubi"
  "test_dist_alzoubi.pdb"
  "test_dist_alzoubi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_alzoubi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
