file(REMOVE_RECURSE
  "CMakeFiles/test_graph_traversal.dir/test_graph_traversal.cpp.o"
  "CMakeFiles/test_graph_traversal.dir/test_graph_traversal.cpp.o.d"
  "test_graph_traversal"
  "test_graph_traversal.pdb"
  "test_graph_traversal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
