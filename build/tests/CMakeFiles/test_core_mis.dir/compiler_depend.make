# Empty compiler generated dependencies file for test_core_mis.
# This may be replaced when dependencies are built.
