file(REMOVE_RECURSE
  "CMakeFiles/test_core_mis.dir/test_core_mis.cpp.o"
  "CMakeFiles/test_core_mis.dir/test_core_mis.cpp.o.d"
  "test_core_mis"
  "test_core_mis.pdb"
  "test_core_mis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
