file(REMOVE_RECURSE
  "CMakeFiles/test_geom_circle.dir/test_geom_circle.cpp.o"
  "CMakeFiles/test_geom_circle.dir/test_geom_circle.cpp.o.d"
  "test_geom_circle"
  "test_geom_circle.pdb"
  "test_geom_circle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_circle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
