file(REMOVE_RECURSE
  "CMakeFiles/test_packing_appendix.dir/test_packing_appendix.cpp.o"
  "CMakeFiles/test_packing_appendix.dir/test_packing_appendix.cpp.o.d"
  "test_packing_appendix"
  "test_packing_appendix.pdb"
  "test_packing_appendix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packing_appendix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
