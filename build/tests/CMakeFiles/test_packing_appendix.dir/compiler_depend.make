# Empty compiler generated dependencies file for test_packing_appendix.
# This may be replaced when dependencies are built.
