file(REMOVE_RECURSE
  "CMakeFiles/test_geom_disk_union.dir/test_geom_disk_union.cpp.o"
  "CMakeFiles/test_geom_disk_union.dir/test_geom_disk_union.cpp.o.d"
  "test_geom_disk_union"
  "test_geom_disk_union.pdb"
  "test_geom_disk_union[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_disk_union.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
