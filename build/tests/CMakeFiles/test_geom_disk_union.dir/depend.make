# Empty dependencies file for test_geom_disk_union.
# This may be replaced when dependencies are built.
