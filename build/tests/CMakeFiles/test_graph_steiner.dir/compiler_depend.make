# Empty compiler generated dependencies file for test_graph_steiner.
# This may be replaced when dependencies are built.
