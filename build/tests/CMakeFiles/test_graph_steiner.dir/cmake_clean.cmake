file(REMOVE_RECURSE
  "CMakeFiles/test_graph_steiner.dir/test_graph_steiner.cpp.o"
  "CMakeFiles/test_graph_steiner.dir/test_graph_steiner.cpp.o.d"
  "test_graph_steiner"
  "test_graph_steiner.pdb"
  "test_graph_steiner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_steiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
