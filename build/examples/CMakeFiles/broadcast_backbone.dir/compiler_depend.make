# Empty compiler generated dependencies file for broadcast_backbone.
# This may be replaced when dependencies are built.
