file(REMOVE_RECURSE
  "CMakeFiles/broadcast_backbone.dir/broadcast_backbone.cpp.o"
  "CMakeFiles/broadcast_backbone.dir/broadcast_backbone.cpp.o.d"
  "broadcast_backbone"
  "broadcast_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
