# Empty dependencies file for routing_spine.
# This may be replaced when dependencies are built.
