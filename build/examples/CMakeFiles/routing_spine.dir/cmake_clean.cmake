file(REMOVE_RECURSE
  "CMakeFiles/routing_spine.dir/routing_spine.cpp.o"
  "CMakeFiles/routing_spine.dir/routing_spine.cpp.o.d"
  "routing_spine"
  "routing_spine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_spine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
