# Empty dependencies file for mcds_cli.
# This may be replaced when dependencies are built.
