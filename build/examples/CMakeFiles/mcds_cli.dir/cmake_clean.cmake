file(REMOVE_RECURSE
  "CMakeFiles/mcds_cli.dir/mcds_cli.cpp.o"
  "CMakeFiles/mcds_cli.dir/mcds_cli.cpp.o.d"
  "mcds_cli"
  "mcds_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcds_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
