file(REMOVE_RECURSE
  "CMakeFiles/topology_maintenance.dir/topology_maintenance.cpp.o"
  "CMakeFiles/topology_maintenance.dir/topology_maintenance.cpp.o.d"
  "topology_maintenance"
  "topology_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
