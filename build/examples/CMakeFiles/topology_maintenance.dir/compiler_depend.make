# Empty compiler generated dependencies file for topology_maintenance.
# This may be replaced when dependencies are built.
