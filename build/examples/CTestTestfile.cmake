# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[cli_generate]=] "/root/repo/build/examples/mcds_cli" "generate" "--nodes" "60" "--side" "7" "--seed" "3" "--out" "/root/repo/build/examples/cli_test.pts")
set_tests_properties([=[cli_generate]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[cli_stats]=] "/root/repo/build/examples/mcds_cli" "stats" "--in" "/root/repo/build/examples/cli_test.pts")
set_tests_properties([=[cli_stats]=] PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[cli_solve_greedy]=] "/root/repo/build/examples/mcds_cli" "solve" "--in" "/root/repo/build/examples/cli_test.pts" "--algo" "greedy" "--prune" "--quiet")
set_tests_properties([=[cli_solve_greedy]=] PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[cli_solve_waf_svg]=] "/root/repo/build/examples/mcds_cli" "solve" "--in" "/root/repo/build/examples/cli_test.pts" "--algo" "waf" "--quiet" "--svg" "/root/repo/build/examples/cli_test.svg")
set_tests_properties([=[cli_solve_waf_svg]=] PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[cli_rejects_unknown_algo]=] "/root/repo/build/examples/mcds_cli" "solve" "--in" "/root/repo/build/examples/cli_test.pts" "--algo" "bogus")
set_tests_properties([=[cli_rejects_unknown_algo]=] PROPERTIES  DEPENDS "cli_generate" WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
