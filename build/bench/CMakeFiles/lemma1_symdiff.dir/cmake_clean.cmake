file(REMOVE_RECURSE
  "CMakeFiles/lemma1_symdiff.dir/lemma1_symdiff.cpp.o"
  "CMakeFiles/lemma1_symdiff.dir/lemma1_symdiff.cpp.o.d"
  "lemma1_symdiff"
  "lemma1_symdiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma1_symdiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
