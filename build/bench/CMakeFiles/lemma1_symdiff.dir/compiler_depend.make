# Empty compiler generated dependencies file for lemma1_symdiff.
# This may be replaced when dependencies are built.
