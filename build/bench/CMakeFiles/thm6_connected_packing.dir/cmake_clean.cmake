file(REMOVE_RECURSE
  "CMakeFiles/thm6_connected_packing.dir/thm6_connected_packing.cpp.o"
  "CMakeFiles/thm6_connected_packing.dir/thm6_connected_packing.cpp.o.d"
  "thm6_connected_packing"
  "thm6_connected_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm6_connected_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
