# Empty compiler generated dependencies file for thm6_connected_packing.
# This may be replaced when dependencies are built.
