# Empty dependencies file for distributed_cost.
# This may be replaced when dependencies are built.
