file(REMOVE_RECURSE
  "CMakeFiles/distributed_cost.dir/distributed_cost.cpp.o"
  "CMakeFiles/distributed_cost.dir/distributed_cost.cpp.o.d"
  "distributed_cost"
  "distributed_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
