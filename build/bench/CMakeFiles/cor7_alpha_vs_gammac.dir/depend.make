# Empty dependencies file for cor7_alpha_vs_gammac.
# This may be replaced when dependencies are built.
