file(REMOVE_RECURSE
  "CMakeFiles/cor7_alpha_vs_gammac.dir/cor7_alpha_vs_gammac.cpp.o"
  "CMakeFiles/cor7_alpha_vs_gammac.dir/cor7_alpha_vs_gammac.cpp.o.d"
  "cor7_alpha_vs_gammac"
  "cor7_alpha_vs_gammac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cor7_alpha_vs_gammac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
