file(REMOVE_RECURSE
  "CMakeFiles/conjecture_ratios.dir/conjecture_ratios.cpp.o"
  "CMakeFiles/conjecture_ratios.dir/conjecture_ratios.cpp.o.d"
  "conjecture_ratios"
  "conjecture_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conjecture_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
