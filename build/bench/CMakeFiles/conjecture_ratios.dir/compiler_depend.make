# Empty compiler generated dependencies file for conjecture_ratios.
# This may be replaced when dependencies are built.
