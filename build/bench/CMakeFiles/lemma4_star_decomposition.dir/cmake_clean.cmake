file(REMOVE_RECURSE
  "CMakeFiles/lemma4_star_decomposition.dir/lemma4_star_decomposition.cpp.o"
  "CMakeFiles/lemma4_star_decomposition.dir/lemma4_star_decomposition.cpp.o.d"
  "lemma4_star_decomposition"
  "lemma4_star_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma4_star_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
