# Empty compiler generated dependencies file for lemma4_star_decomposition.
# This may be replaced when dependencies are built.
