# Empty compiler generated dependencies file for lemma2_three_disks.
# This may be replaced when dependencies are built.
