file(REMOVE_RECURSE
  "CMakeFiles/lemma2_three_disks.dir/lemma2_three_disks.cpp.o"
  "CMakeFiles/lemma2_three_disks.dir/lemma2_three_disks.cpp.o.d"
  "lemma2_three_disks"
  "lemma2_three_disks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma2_three_disks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
