# Empty dependencies file for thm10_greedy_ratio.
# This may be replaced when dependencies are built.
