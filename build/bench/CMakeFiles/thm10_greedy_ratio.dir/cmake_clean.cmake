file(REMOVE_RECURSE
  "CMakeFiles/thm10_greedy_ratio.dir/thm10_greedy_ratio.cpp.o"
  "CMakeFiles/thm10_greedy_ratio.dir/thm10_greedy_ratio.cpp.o.d"
  "thm10_greedy_ratio"
  "thm10_greedy_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm10_greedy_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
