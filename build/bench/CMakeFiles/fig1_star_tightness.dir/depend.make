# Empty dependencies file for fig1_star_tightness.
# This may be replaced when dependencies are built.
