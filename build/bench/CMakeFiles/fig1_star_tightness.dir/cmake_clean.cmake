file(REMOVE_RECURSE
  "CMakeFiles/fig1_star_tightness.dir/fig1_star_tightness.cpp.o"
  "CMakeFiles/fig1_star_tightness.dir/fig1_star_tightness.cpp.o.d"
  "fig1_star_tightness"
  "fig1_star_tightness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_star_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
