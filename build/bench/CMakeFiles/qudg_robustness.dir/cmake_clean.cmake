file(REMOVE_RECURSE
  "CMakeFiles/qudg_robustness.dir/qudg_robustness.cpp.o"
  "CMakeFiles/qudg_robustness.dir/qudg_robustness.cpp.o.d"
  "qudg_robustness"
  "qudg_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qudg_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
