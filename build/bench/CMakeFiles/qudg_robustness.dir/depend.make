# Empty dependencies file for qudg_robustness.
# This may be replaced when dependencies are built.
