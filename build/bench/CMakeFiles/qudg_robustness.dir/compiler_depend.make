# Empty compiler generated dependencies file for qudg_robustness.
# This may be replaced when dependencies are built.
