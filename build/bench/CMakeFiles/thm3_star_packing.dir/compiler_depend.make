# Empty compiler generated dependencies file for thm3_star_packing.
# This may be replaced when dependencies are built.
