file(REMOVE_RECURSE
  "CMakeFiles/thm3_star_packing.dir/thm3_star_packing.cpp.o"
  "CMakeFiles/thm3_star_packing.dir/thm3_star_packing.cpp.o.d"
  "thm3_star_packing"
  "thm3_star_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm3_star_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
