# Empty dependencies file for thm10_decomposition.
# This may be replaced when dependencies are built.
