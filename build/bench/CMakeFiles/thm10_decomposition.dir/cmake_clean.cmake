file(REMOVE_RECURSE
  "CMakeFiles/thm10_decomposition.dir/thm10_decomposition.cpp.o"
  "CMakeFiles/thm10_decomposition.dir/thm10_decomposition.cpp.o.d"
  "thm10_decomposition"
  "thm10_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm10_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
