file(REMOVE_RECURSE
  "CMakeFiles/phase2_ablation.dir/phase2_ablation.cpp.o"
  "CMakeFiles/phase2_ablation.dir/phase2_ablation.cpp.o.d"
  "phase2_ablation"
  "phase2_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase2_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
