# Empty compiler generated dependencies file for phase2_ablation.
# This may be replaced when dependencies are built.
