# Empty dependencies file for appendix_lemmas.
# This may be replaced when dependencies are built.
