file(REMOVE_RECURSE
  "CMakeFiles/appendix_lemmas.dir/appendix_lemmas.cpp.o"
  "CMakeFiles/appendix_lemmas.dir/appendix_lemmas.cpp.o.d"
  "appendix_lemmas"
  "appendix_lemmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_lemmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
