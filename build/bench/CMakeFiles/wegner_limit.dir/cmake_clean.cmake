file(REMOVE_RECURSE
  "CMakeFiles/wegner_limit.dir/wegner_limit.cpp.o"
  "CMakeFiles/wegner_limit.dir/wegner_limit.cpp.o.d"
  "wegner_limit"
  "wegner_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wegner_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
