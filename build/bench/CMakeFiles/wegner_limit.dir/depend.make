# Empty dependencies file for wegner_limit.
# This may be replaced when dependencies are built.
