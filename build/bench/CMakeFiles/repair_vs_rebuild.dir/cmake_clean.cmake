file(REMOVE_RECURSE
  "CMakeFiles/repair_vs_rebuild.dir/repair_vs_rebuild.cpp.o"
  "CMakeFiles/repair_vs_rebuild.dir/repair_vs_rebuild.cpp.o.d"
  "repair_vs_rebuild"
  "repair_vs_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_vs_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
