# Empty compiler generated dependencies file for repair_vs_rebuild.
# This may be replaced when dependencies are built.
