# Empty compiler generated dependencies file for fig2_linear_packing.
# This may be replaced when dependencies are built.
