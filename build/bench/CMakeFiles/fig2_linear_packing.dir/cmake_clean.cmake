file(REMOVE_RECURSE
  "CMakeFiles/fig2_linear_packing.dir/fig2_linear_packing.cpp.o"
  "CMakeFiles/fig2_linear_packing.dir/fig2_linear_packing.cpp.o.d"
  "fig2_linear_packing"
  "fig2_linear_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_linear_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
