file(REMOVE_RECURSE
  "CMakeFiles/thm8_waf_ratio.dir/thm8_waf_ratio.cpp.o"
  "CMakeFiles/thm8_waf_ratio.dir/thm8_waf_ratio.cpp.o.d"
  "thm8_waf_ratio"
  "thm8_waf_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm8_waf_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
