# Empty dependencies file for thm8_waf_ratio.
# This may be replaced when dependencies are built.
