# Empty dependencies file for phase1_ablation.
# This may be replaced when dependencies are built.
