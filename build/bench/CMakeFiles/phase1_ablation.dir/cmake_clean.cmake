file(REMOVE_RECURSE
  "CMakeFiles/phase1_ablation.dir/phase1_ablation.cpp.o"
  "CMakeFiles/phase1_ablation.dir/phase1_ablation.cpp.o.d"
  "phase1_ablation"
  "phase1_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase1_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
