
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exact/brute_force.cpp" "src/exact/CMakeFiles/mcds_exact.dir/brute_force.cpp.o" "gcc" "src/exact/CMakeFiles/mcds_exact.dir/brute_force.cpp.o.d"
  "/root/repo/src/exact/exact_cds.cpp" "src/exact/CMakeFiles/mcds_exact.dir/exact_cds.cpp.o" "gcc" "src/exact/CMakeFiles/mcds_exact.dir/exact_cds.cpp.o.d"
  "/root/repo/src/exact/exact_connectors.cpp" "src/exact/CMakeFiles/mcds_exact.dir/exact_connectors.cpp.o" "gcc" "src/exact/CMakeFiles/mcds_exact.dir/exact_connectors.cpp.o.d"
  "/root/repo/src/exact/exact_ds.cpp" "src/exact/CMakeFiles/mcds_exact.dir/exact_ds.cpp.o" "gcc" "src/exact/CMakeFiles/mcds_exact.dir/exact_ds.cpp.o.d"
  "/root/repo/src/exact/exact_mis.cpp" "src/exact/CMakeFiles/mcds_exact.dir/exact_mis.cpp.o" "gcc" "src/exact/CMakeFiles/mcds_exact.dir/exact_mis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mcds_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
