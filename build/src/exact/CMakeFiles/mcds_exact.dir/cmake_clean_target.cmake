file(REMOVE_RECURSE
  "libmcds_exact.a"
)
