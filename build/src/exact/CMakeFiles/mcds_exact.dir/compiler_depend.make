# Empty compiler generated dependencies file for mcds_exact.
# This may be replaced when dependencies are built.
