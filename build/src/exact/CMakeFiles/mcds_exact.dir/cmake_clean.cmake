file(REMOVE_RECURSE
  "CMakeFiles/mcds_exact.dir/brute_force.cpp.o"
  "CMakeFiles/mcds_exact.dir/brute_force.cpp.o.d"
  "CMakeFiles/mcds_exact.dir/exact_cds.cpp.o"
  "CMakeFiles/mcds_exact.dir/exact_cds.cpp.o.d"
  "CMakeFiles/mcds_exact.dir/exact_connectors.cpp.o"
  "CMakeFiles/mcds_exact.dir/exact_connectors.cpp.o.d"
  "CMakeFiles/mcds_exact.dir/exact_ds.cpp.o"
  "CMakeFiles/mcds_exact.dir/exact_ds.cpp.o.d"
  "CMakeFiles/mcds_exact.dir/exact_mis.cpp.o"
  "CMakeFiles/mcds_exact.dir/exact_mis.cpp.o.d"
  "libmcds_exact.a"
  "libmcds_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcds_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
