file(REMOVE_RECURSE
  "CMakeFiles/mcds_graph.dir/graph.cpp.o"
  "CMakeFiles/mcds_graph.dir/graph.cpp.o.d"
  "CMakeFiles/mcds_graph.dir/metrics.cpp.o"
  "CMakeFiles/mcds_graph.dir/metrics.cpp.o.d"
  "CMakeFiles/mcds_graph.dir/small_graph.cpp.o"
  "CMakeFiles/mcds_graph.dir/small_graph.cpp.o.d"
  "CMakeFiles/mcds_graph.dir/steiner.cpp.o"
  "CMakeFiles/mcds_graph.dir/steiner.cpp.o.d"
  "CMakeFiles/mcds_graph.dir/subgraph.cpp.o"
  "CMakeFiles/mcds_graph.dir/subgraph.cpp.o.d"
  "CMakeFiles/mcds_graph.dir/traversal.cpp.o"
  "CMakeFiles/mcds_graph.dir/traversal.cpp.o.d"
  "libmcds_graph.a"
  "libmcds_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcds_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
