file(REMOVE_RECURSE
  "libmcds_graph.a"
)
