
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/mcds_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/mcds_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/graph/CMakeFiles/mcds_graph.dir/metrics.cpp.o" "gcc" "src/graph/CMakeFiles/mcds_graph.dir/metrics.cpp.o.d"
  "/root/repo/src/graph/small_graph.cpp" "src/graph/CMakeFiles/mcds_graph.dir/small_graph.cpp.o" "gcc" "src/graph/CMakeFiles/mcds_graph.dir/small_graph.cpp.o.d"
  "/root/repo/src/graph/steiner.cpp" "src/graph/CMakeFiles/mcds_graph.dir/steiner.cpp.o" "gcc" "src/graph/CMakeFiles/mcds_graph.dir/steiner.cpp.o.d"
  "/root/repo/src/graph/subgraph.cpp" "src/graph/CMakeFiles/mcds_graph.dir/subgraph.cpp.o" "gcc" "src/graph/CMakeFiles/mcds_graph.dir/subgraph.cpp.o.d"
  "/root/repo/src/graph/traversal.cpp" "src/graph/CMakeFiles/mcds_graph.dir/traversal.cpp.o" "gcc" "src/graph/CMakeFiles/mcds_graph.dir/traversal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
