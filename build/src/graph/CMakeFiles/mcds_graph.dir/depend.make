# Empty dependencies file for mcds_graph.
# This may be replaced when dependencies are built.
