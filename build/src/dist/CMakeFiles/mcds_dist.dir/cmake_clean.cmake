file(REMOVE_RECURSE
  "CMakeFiles/mcds_dist.dir/alzoubi_protocol.cpp.o"
  "CMakeFiles/mcds_dist.dir/alzoubi_protocol.cpp.o.d"
  "CMakeFiles/mcds_dist.dir/bfs_tree.cpp.o"
  "CMakeFiles/mcds_dist.dir/bfs_tree.cpp.o.d"
  "CMakeFiles/mcds_dist.dir/connector_selection.cpp.o"
  "CMakeFiles/mcds_dist.dir/connector_selection.cpp.o.d"
  "CMakeFiles/mcds_dist.dir/distributed_cds.cpp.o"
  "CMakeFiles/mcds_dist.dir/distributed_cds.cpp.o.d"
  "CMakeFiles/mcds_dist.dir/greedy_protocol.cpp.o"
  "CMakeFiles/mcds_dist.dir/greedy_protocol.cpp.o.d"
  "CMakeFiles/mcds_dist.dir/leader_election.cpp.o"
  "CMakeFiles/mcds_dist.dir/leader_election.cpp.o.d"
  "CMakeFiles/mcds_dist.dir/mis_election.cpp.o"
  "CMakeFiles/mcds_dist.dir/mis_election.cpp.o.d"
  "CMakeFiles/mcds_dist.dir/runtime.cpp.o"
  "CMakeFiles/mcds_dist.dir/runtime.cpp.o.d"
  "libmcds_dist.a"
  "libmcds_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcds_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
