file(REMOVE_RECURSE
  "libmcds_dist.a"
)
