
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/alzoubi_protocol.cpp" "src/dist/CMakeFiles/mcds_dist.dir/alzoubi_protocol.cpp.o" "gcc" "src/dist/CMakeFiles/mcds_dist.dir/alzoubi_protocol.cpp.o.d"
  "/root/repo/src/dist/bfs_tree.cpp" "src/dist/CMakeFiles/mcds_dist.dir/bfs_tree.cpp.o" "gcc" "src/dist/CMakeFiles/mcds_dist.dir/bfs_tree.cpp.o.d"
  "/root/repo/src/dist/connector_selection.cpp" "src/dist/CMakeFiles/mcds_dist.dir/connector_selection.cpp.o" "gcc" "src/dist/CMakeFiles/mcds_dist.dir/connector_selection.cpp.o.d"
  "/root/repo/src/dist/distributed_cds.cpp" "src/dist/CMakeFiles/mcds_dist.dir/distributed_cds.cpp.o" "gcc" "src/dist/CMakeFiles/mcds_dist.dir/distributed_cds.cpp.o.d"
  "/root/repo/src/dist/greedy_protocol.cpp" "src/dist/CMakeFiles/mcds_dist.dir/greedy_protocol.cpp.o" "gcc" "src/dist/CMakeFiles/mcds_dist.dir/greedy_protocol.cpp.o.d"
  "/root/repo/src/dist/leader_election.cpp" "src/dist/CMakeFiles/mcds_dist.dir/leader_election.cpp.o" "gcc" "src/dist/CMakeFiles/mcds_dist.dir/leader_election.cpp.o.d"
  "/root/repo/src/dist/mis_election.cpp" "src/dist/CMakeFiles/mcds_dist.dir/mis_election.cpp.o" "gcc" "src/dist/CMakeFiles/mcds_dist.dir/mis_election.cpp.o.d"
  "/root/repo/src/dist/runtime.cpp" "src/dist/CMakeFiles/mcds_dist.dir/runtime.cpp.o" "gcc" "src/dist/CMakeFiles/mcds_dist.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mcds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mcds_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
