# Empty compiler generated dependencies file for mcds_dist.
# This may be replaced when dependencies are built.
