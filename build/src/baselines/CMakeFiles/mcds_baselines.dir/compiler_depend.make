# Empty compiler generated dependencies file for mcds_baselines.
# This may be replaced when dependencies are built.
