file(REMOVE_RECURSE
  "CMakeFiles/mcds_baselines.dir/alzoubi.cpp.o"
  "CMakeFiles/mcds_baselines.dir/alzoubi.cpp.o.d"
  "CMakeFiles/mcds_baselines.dir/bharghavan_das.cpp.o"
  "CMakeFiles/mcds_baselines.dir/bharghavan_das.cpp.o.d"
  "CMakeFiles/mcds_baselines.dir/connect_util.cpp.o"
  "CMakeFiles/mcds_baselines.dir/connect_util.cpp.o.d"
  "CMakeFiles/mcds_baselines.dir/guha_khuller.cpp.o"
  "CMakeFiles/mcds_baselines.dir/guha_khuller.cpp.o.d"
  "CMakeFiles/mcds_baselines.dir/li_thai.cpp.o"
  "CMakeFiles/mcds_baselines.dir/li_thai.cpp.o.d"
  "CMakeFiles/mcds_baselines.dir/phase2_ablation.cpp.o"
  "CMakeFiles/mcds_baselines.dir/phase2_ablation.cpp.o.d"
  "CMakeFiles/mcds_baselines.dir/prune.cpp.o"
  "CMakeFiles/mcds_baselines.dir/prune.cpp.o.d"
  "CMakeFiles/mcds_baselines.dir/stojmenovic.cpp.o"
  "CMakeFiles/mcds_baselines.dir/stojmenovic.cpp.o.d"
  "CMakeFiles/mcds_baselines.dir/wu_li.cpp.o"
  "CMakeFiles/mcds_baselines.dir/wu_li.cpp.o.d"
  "libmcds_baselines.a"
  "libmcds_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcds_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
