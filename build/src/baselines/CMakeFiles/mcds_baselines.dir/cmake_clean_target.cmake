file(REMOVE_RECURSE
  "libmcds_baselines.a"
)
