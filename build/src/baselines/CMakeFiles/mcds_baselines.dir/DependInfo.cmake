
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/alzoubi.cpp" "src/baselines/CMakeFiles/mcds_baselines.dir/alzoubi.cpp.o" "gcc" "src/baselines/CMakeFiles/mcds_baselines.dir/alzoubi.cpp.o.d"
  "/root/repo/src/baselines/bharghavan_das.cpp" "src/baselines/CMakeFiles/mcds_baselines.dir/bharghavan_das.cpp.o" "gcc" "src/baselines/CMakeFiles/mcds_baselines.dir/bharghavan_das.cpp.o.d"
  "/root/repo/src/baselines/connect_util.cpp" "src/baselines/CMakeFiles/mcds_baselines.dir/connect_util.cpp.o" "gcc" "src/baselines/CMakeFiles/mcds_baselines.dir/connect_util.cpp.o.d"
  "/root/repo/src/baselines/guha_khuller.cpp" "src/baselines/CMakeFiles/mcds_baselines.dir/guha_khuller.cpp.o" "gcc" "src/baselines/CMakeFiles/mcds_baselines.dir/guha_khuller.cpp.o.d"
  "/root/repo/src/baselines/li_thai.cpp" "src/baselines/CMakeFiles/mcds_baselines.dir/li_thai.cpp.o" "gcc" "src/baselines/CMakeFiles/mcds_baselines.dir/li_thai.cpp.o.d"
  "/root/repo/src/baselines/phase2_ablation.cpp" "src/baselines/CMakeFiles/mcds_baselines.dir/phase2_ablation.cpp.o" "gcc" "src/baselines/CMakeFiles/mcds_baselines.dir/phase2_ablation.cpp.o.d"
  "/root/repo/src/baselines/prune.cpp" "src/baselines/CMakeFiles/mcds_baselines.dir/prune.cpp.o" "gcc" "src/baselines/CMakeFiles/mcds_baselines.dir/prune.cpp.o.d"
  "/root/repo/src/baselines/stojmenovic.cpp" "src/baselines/CMakeFiles/mcds_baselines.dir/stojmenovic.cpp.o" "gcc" "src/baselines/CMakeFiles/mcds_baselines.dir/stojmenovic.cpp.o.d"
  "/root/repo/src/baselines/wu_li.cpp" "src/baselines/CMakeFiles/mcds_baselines.dir/wu_li.cpp.o" "gcc" "src/baselines/CMakeFiles/mcds_baselines.dir/wu_li.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcds_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
