# Empty compiler generated dependencies file for mcds_sim.
# This may be replaced when dependencies are built.
