file(REMOVE_RECURSE
  "libmcds_sim.a"
)
