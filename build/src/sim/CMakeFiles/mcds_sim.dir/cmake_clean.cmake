file(REMOVE_RECURSE
  "CMakeFiles/mcds_sim.dir/stats.cpp.o"
  "CMakeFiles/mcds_sim.dir/stats.cpp.o.d"
  "CMakeFiles/mcds_sim.dir/table.cpp.o"
  "CMakeFiles/mcds_sim.dir/table.cpp.o.d"
  "libmcds_sim.a"
  "libmcds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
