# Empty dependencies file for mcds_geom.
# This may be replaced when dependencies are built.
