file(REMOVE_RECURSE
  "libmcds_geom.a"
)
