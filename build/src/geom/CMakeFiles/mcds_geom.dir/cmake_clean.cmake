file(REMOVE_RECURSE
  "CMakeFiles/mcds_geom.dir/circle.cpp.o"
  "CMakeFiles/mcds_geom.dir/circle.cpp.o.d"
  "CMakeFiles/mcds_geom.dir/closest.cpp.o"
  "CMakeFiles/mcds_geom.dir/closest.cpp.o.d"
  "CMakeFiles/mcds_geom.dir/disk_union.cpp.o"
  "CMakeFiles/mcds_geom.dir/disk_union.cpp.o.d"
  "CMakeFiles/mcds_geom.dir/hull.cpp.o"
  "CMakeFiles/mcds_geom.dir/hull.cpp.o.d"
  "CMakeFiles/mcds_geom.dir/segment.cpp.o"
  "CMakeFiles/mcds_geom.dir/segment.cpp.o.d"
  "libmcds_geom.a"
  "libmcds_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcds_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
