
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/circle.cpp" "src/geom/CMakeFiles/mcds_geom.dir/circle.cpp.o" "gcc" "src/geom/CMakeFiles/mcds_geom.dir/circle.cpp.o.d"
  "/root/repo/src/geom/closest.cpp" "src/geom/CMakeFiles/mcds_geom.dir/closest.cpp.o" "gcc" "src/geom/CMakeFiles/mcds_geom.dir/closest.cpp.o.d"
  "/root/repo/src/geom/disk_union.cpp" "src/geom/CMakeFiles/mcds_geom.dir/disk_union.cpp.o" "gcc" "src/geom/CMakeFiles/mcds_geom.dir/disk_union.cpp.o.d"
  "/root/repo/src/geom/hull.cpp" "src/geom/CMakeFiles/mcds_geom.dir/hull.cpp.o" "gcc" "src/geom/CMakeFiles/mcds_geom.dir/hull.cpp.o.d"
  "/root/repo/src/geom/segment.cpp" "src/geom/CMakeFiles/mcds_geom.dir/segment.cpp.o" "gcc" "src/geom/CMakeFiles/mcds_geom.dir/segment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
