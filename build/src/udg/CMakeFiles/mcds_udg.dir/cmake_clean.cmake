file(REMOVE_RECURSE
  "CMakeFiles/mcds_udg.dir/builder.cpp.o"
  "CMakeFiles/mcds_udg.dir/builder.cpp.o.d"
  "CMakeFiles/mcds_udg.dir/deployment.cpp.o"
  "CMakeFiles/mcds_udg.dir/deployment.cpp.o.d"
  "CMakeFiles/mcds_udg.dir/instance.cpp.o"
  "CMakeFiles/mcds_udg.dir/instance.cpp.o.d"
  "CMakeFiles/mcds_udg.dir/io.cpp.o"
  "CMakeFiles/mcds_udg.dir/io.cpp.o.d"
  "CMakeFiles/mcds_udg.dir/mobility.cpp.o"
  "CMakeFiles/mcds_udg.dir/mobility.cpp.o.d"
  "CMakeFiles/mcds_udg.dir/qudg.cpp.o"
  "CMakeFiles/mcds_udg.dir/qudg.cpp.o.d"
  "libmcds_udg.a"
  "libmcds_udg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcds_udg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
