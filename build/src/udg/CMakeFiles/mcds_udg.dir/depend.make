# Empty dependencies file for mcds_udg.
# This may be replaced when dependencies are built.
