
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/udg/builder.cpp" "src/udg/CMakeFiles/mcds_udg.dir/builder.cpp.o" "gcc" "src/udg/CMakeFiles/mcds_udg.dir/builder.cpp.o.d"
  "/root/repo/src/udg/deployment.cpp" "src/udg/CMakeFiles/mcds_udg.dir/deployment.cpp.o" "gcc" "src/udg/CMakeFiles/mcds_udg.dir/deployment.cpp.o.d"
  "/root/repo/src/udg/instance.cpp" "src/udg/CMakeFiles/mcds_udg.dir/instance.cpp.o" "gcc" "src/udg/CMakeFiles/mcds_udg.dir/instance.cpp.o.d"
  "/root/repo/src/udg/io.cpp" "src/udg/CMakeFiles/mcds_udg.dir/io.cpp.o" "gcc" "src/udg/CMakeFiles/mcds_udg.dir/io.cpp.o.d"
  "/root/repo/src/udg/mobility.cpp" "src/udg/CMakeFiles/mcds_udg.dir/mobility.cpp.o" "gcc" "src/udg/CMakeFiles/mcds_udg.dir/mobility.cpp.o.d"
  "/root/repo/src/udg/qudg.cpp" "src/udg/CMakeFiles/mcds_udg.dir/qudg.cpp.o" "gcc" "src/udg/CMakeFiles/mcds_udg.dir/qudg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/mcds_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcds_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
