file(REMOVE_RECURSE
  "libmcds_udg.a"
)
