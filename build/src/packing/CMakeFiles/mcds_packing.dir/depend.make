# Empty dependencies file for mcds_packing.
# This may be replaced when dependencies are built.
