
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packing/appendix.cpp" "src/packing/CMakeFiles/mcds_packing.dir/appendix.cpp.o" "gcc" "src/packing/CMakeFiles/mcds_packing.dir/appendix.cpp.o.d"
  "/root/repo/src/packing/arc_polygon.cpp" "src/packing/CMakeFiles/mcds_packing.dir/arc_polygon.cpp.o" "gcc" "src/packing/CMakeFiles/mcds_packing.dir/arc_polygon.cpp.o.d"
  "/root/repo/src/packing/fig1.cpp" "src/packing/CMakeFiles/mcds_packing.dir/fig1.cpp.o" "gcc" "src/packing/CMakeFiles/mcds_packing.dir/fig1.cpp.o.d"
  "/root/repo/src/packing/fig2.cpp" "src/packing/CMakeFiles/mcds_packing.dir/fig2.cpp.o" "gcc" "src/packing/CMakeFiles/mcds_packing.dir/fig2.cpp.o.d"
  "/root/repo/src/packing/packer.cpp" "src/packing/CMakeFiles/mcds_packing.dir/packer.cpp.o" "gcc" "src/packing/CMakeFiles/mcds_packing.dir/packer.cpp.o.d"
  "/root/repo/src/packing/star_decomposition.cpp" "src/packing/CMakeFiles/mcds_packing.dir/star_decomposition.cpp.o" "gcc" "src/packing/CMakeFiles/mcds_packing.dir/star_decomposition.cpp.o.d"
  "/root/repo/src/packing/wegner.cpp" "src/packing/CMakeFiles/mcds_packing.dir/wegner.cpp.o" "gcc" "src/packing/CMakeFiles/mcds_packing.dir/wegner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/mcds_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/udg/CMakeFiles/mcds_udg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
