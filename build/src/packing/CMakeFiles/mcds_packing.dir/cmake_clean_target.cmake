file(REMOVE_RECURSE
  "libmcds_packing.a"
)
