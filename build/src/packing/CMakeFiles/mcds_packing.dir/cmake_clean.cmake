file(REMOVE_RECURSE
  "CMakeFiles/mcds_packing.dir/appendix.cpp.o"
  "CMakeFiles/mcds_packing.dir/appendix.cpp.o.d"
  "CMakeFiles/mcds_packing.dir/arc_polygon.cpp.o"
  "CMakeFiles/mcds_packing.dir/arc_polygon.cpp.o.d"
  "CMakeFiles/mcds_packing.dir/fig1.cpp.o"
  "CMakeFiles/mcds_packing.dir/fig1.cpp.o.d"
  "CMakeFiles/mcds_packing.dir/fig2.cpp.o"
  "CMakeFiles/mcds_packing.dir/fig2.cpp.o.d"
  "CMakeFiles/mcds_packing.dir/packer.cpp.o"
  "CMakeFiles/mcds_packing.dir/packer.cpp.o.d"
  "CMakeFiles/mcds_packing.dir/star_decomposition.cpp.o"
  "CMakeFiles/mcds_packing.dir/star_decomposition.cpp.o.d"
  "CMakeFiles/mcds_packing.dir/wegner.cpp.o"
  "CMakeFiles/mcds_packing.dir/wegner.cpp.o.d"
  "libmcds_packing.a"
  "libmcds_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcds_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
