
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/mcds_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/mcds_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/greedy_connect.cpp" "src/core/CMakeFiles/mcds_core.dir/greedy_connect.cpp.o" "gcc" "src/core/CMakeFiles/mcds_core.dir/greedy_connect.cpp.o.d"
  "/root/repo/src/core/mis.cpp" "src/core/CMakeFiles/mcds_core.dir/mis.cpp.o" "gcc" "src/core/CMakeFiles/mcds_core.dir/mis.cpp.o.d"
  "/root/repo/src/core/repair.cpp" "src/core/CMakeFiles/mcds_core.dir/repair.cpp.o" "gcc" "src/core/CMakeFiles/mcds_core.dir/repair.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/mcds_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/mcds_core.dir/validate.cpp.o.d"
  "/root/repo/src/core/waf.cpp" "src/core/CMakeFiles/mcds_core.dir/waf.cpp.o" "gcc" "src/core/CMakeFiles/mcds_core.dir/waf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mcds_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
