file(REMOVE_RECURSE
  "CMakeFiles/mcds_core.dir/bounds.cpp.o"
  "CMakeFiles/mcds_core.dir/bounds.cpp.o.d"
  "CMakeFiles/mcds_core.dir/greedy_connect.cpp.o"
  "CMakeFiles/mcds_core.dir/greedy_connect.cpp.o.d"
  "CMakeFiles/mcds_core.dir/mis.cpp.o"
  "CMakeFiles/mcds_core.dir/mis.cpp.o.d"
  "CMakeFiles/mcds_core.dir/repair.cpp.o"
  "CMakeFiles/mcds_core.dir/repair.cpp.o.d"
  "CMakeFiles/mcds_core.dir/validate.cpp.o"
  "CMakeFiles/mcds_core.dir/validate.cpp.o.d"
  "CMakeFiles/mcds_core.dir/waf.cpp.o"
  "CMakeFiles/mcds_core.dir/waf.cpp.o.d"
  "libmcds_core.a"
  "libmcds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
