file(REMOVE_RECURSE
  "libmcds_core.a"
)
