# Empty compiler generated dependencies file for mcds_core.
# This may be replaced when dependencies are built.
