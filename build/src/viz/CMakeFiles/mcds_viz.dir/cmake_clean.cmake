file(REMOVE_RECURSE
  "CMakeFiles/mcds_viz.dir/render.cpp.o"
  "CMakeFiles/mcds_viz.dir/render.cpp.o.d"
  "CMakeFiles/mcds_viz.dir/svg.cpp.o"
  "CMakeFiles/mcds_viz.dir/svg.cpp.o.d"
  "libmcds_viz.a"
  "libmcds_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcds_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
