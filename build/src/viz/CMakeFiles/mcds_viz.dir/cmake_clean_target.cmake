file(REMOVE_RECURSE
  "libmcds_viz.a"
)
