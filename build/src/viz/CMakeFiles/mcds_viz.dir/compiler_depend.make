# Empty compiler generated dependencies file for mcds_viz.
# This may be replaced when dependencies are built.
