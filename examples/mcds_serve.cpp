// mcds_serve: a long-lived in-process solve server under synthetic load.
//
// Drives serve::Server with a built-in open-loop load generator (solve
// and churn requests, mixed tiers and priorities, per-request deadlines)
// until a --duration-ms budget elapses or SIGINT/SIGTERM arrives, then
// drains: no new admissions, queued and in-flight work runs (or times
// out) to a terminal status, and the process exits with the accounting
// ledger printed. A non-zero leak count is a bug and exits 2.
//
//   mcds_serve [--nodes N] [--side S] [--seed K] [--duration-ms D]
//              [--rate R] [--queue C] [--batch B] [--churn P]
//              [--checkpoint F --checkpoint-every-ms M] [--prom F]
//
// Exit status: 0 clean drain with zero leaks, 1 usage error, 2 failure.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "sim/rng.hpp"
#include "udg/instance.hpp"

namespace {

using namespace mcds;
using namespace std::chrono_literals;

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

struct Options {
  std::size_t nodes = 40;
  double side = 5.0;
  std::uint64_t seed = 1;
  std::size_t duration_ms = 2000;  // 0 = run until signalled
  std::size_t rate = 200;          // offered load, requests/second
  std::size_t queue = 64;
  std::size_t batch = 8;
  double churn = 0.3;  // fraction of requests that are churn ops
  std::string checkpoint;
  std::size_t checkpoint_every_ms = 250;
  std::string prom;
};

int usage() {
  std::cerr << "usage: mcds_serve [--nodes N] [--side S] [--seed K]\n"
            << "                  [--duration-ms D] [--rate R] [--queue C]\n"
            << "                  [--batch B] [--churn P]\n"
            << "                  [--checkpoint F [--checkpoint-every-ms M]]\n"
            << "                  [--prom F]\n"
            << "Runs until --duration-ms elapses (0 = forever) or\n"
            << "SIGINT/SIGTERM, then drains and reports. Exits 2 if any\n"
            << "request leaks.\n";
  return 1;
}

bool parse(int argc, char** argv, Options& opt) {
  std::map<std::string, std::string> kv;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0 || i + 1 >= argc) return false;
    kv[key.substr(2)] = argv[++i];
  }
  try {
    if (kv.count("nodes")) opt.nodes = std::stoul(kv["nodes"]);
    if (kv.count("side")) opt.side = std::stod(kv["side"]);
    if (kv.count("seed")) opt.seed = std::stoull(kv["seed"]);
    if (kv.count("duration-ms")) opt.duration_ms = std::stoul(kv["duration-ms"]);
    if (kv.count("rate")) opt.rate = std::stoul(kv["rate"]);
    if (kv.count("queue")) opt.queue = std::stoul(kv["queue"]);
    if (kv.count("batch")) opt.batch = std::stoul(kv["batch"]);
    if (kv.count("churn")) opt.churn = std::stod(kv["churn"]);
    if (kv.count("checkpoint")) opt.checkpoint = kv["checkpoint"];
    if (kv.count("checkpoint-every-ms")) {
      opt.checkpoint_every_ms = std::stoul(kv["checkpoint-every-ms"]);
    }
    if (kv.count("prom")) opt.prom = kv["prom"];
  } catch (const std::exception&) {
    return false;
  }
  return opt.rate > 0 && opt.nodes > 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return usage();

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // A pool of solve instances plus one live deployment for churn.
  udg::InstanceParams ip;
  ip.nodes = opt.nodes;
  ip.side = opt.side;
  std::vector<udg::UdgInstance> pool;
  for (std::uint64_t s = 0; s < 8; ++s) {
    pool.push_back(
        udg::generate_largest_component_instance(ip, opt.seed * 100 + s));
  }

  obs::MetricsRegistry metrics;
  obs::Obs obs;
  obs.metrics = &metrics;

  serve::ServerParams params;
  params.queue_capacity = opt.queue;
  params.max_batch = opt.batch;
  params.initial_points = pool[0].points;
  params.dyn.radius = pool[0].radius;
  if (!opt.checkpoint.empty()) {
    params.checkpoint_path = opt.checkpoint;
    params.checkpoint_every =
        std::chrono::milliseconds(opt.checkpoint_every_ms);
  }
  serve::Server server(std::move(params), obs);

  sim::Rng rng(opt.seed);
  const auto started = std::chrono::steady_clock::now();
  const auto gap = std::chrono::nanoseconds(1'000'000'000ull / opt.rate);
  const std::size_t base_nodes = pool[0].points.size();

  std::vector<serve::Ticket> tickets;
  std::size_t sent = 0;
  while (g_stop == 0) {
    if (opt.duration_ms > 0 &&
        std::chrono::steady_clock::now() - started >
            std::chrono::milliseconds(opt.duration_ms)) {
      break;
    }
    serve::Request req;
    req.deadline = std::chrono::steady_clock::now() + 250ms;
    if (rng.uniform01() < opt.churn) {
      // Valid-by-construction churn: moves of base nodes and inserts.
      serve::ChurnOp op;
      const geom::Vec2 pos{rng.uniform(0.0, opt.side),
                           rng.uniform(0.0, opt.side)};
      if (rng.uniform_int(4) == 0) {
        op = {serve::ChurnOp::Kind::kInsert, 0, pos};
      } else {
        op = {serve::ChurnOp::Kind::kMove,
              static_cast<serve::NodeId>(rng.uniform_int(base_nodes)), pos};
      }
      req.ops.push_back(op);
    } else {
      req.instance = pool[rng.uniform_int(pool.size())];
      req.tier = static_cast<serve::Tier>(rng.uniform_int(3));
      req.priority = static_cast<serve::Priority>(rng.uniform_int(3));
    }
    tickets.push_back(server.submit(std::move(req)));
    ++sent;
    // Reap settled tickets so memory stays flat on long runs.
    if (tickets.size() > 4096) {
      std::erase_if(tickets,
                    [](serve::Ticket& t) { return t.done(); });
    }
    std::this_thread::sleep_for(gap);
  }

  const char* why = g_stop != 0 ? "signal" : "duration";
  std::cout << "stopping (" << why << "): draining " << server.queue_depth()
            << " queued request(s)...\n";
  server.drain();

  const serve::ServerStats st = server.stats();
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - started)
                           .count();
  std::cout << "ran " << elapsed << "s at ~" << opt.rate << " req/s\n"
            << "submitted: " << st.submitted << "\n"
            << "  ok:        " << st.ok << " (" << st.degraded
            << " degraded)\n"
            << "  rejected:  " << st.rejected << "\n"
            << "  shed:      " << st.shed << "\n"
            << "  timeout:   " << st.timeout << "\n"
            << "  cancelled: " << st.cancelled << "\n"
            << "  invalid:   " << st.invalid << "\n"
            << "  errors:    " << st.errors << "\n"
            << "overload transitions: " << server.overload_transitions().size()
            << " (final level " << server.overload_level() << ")\n"
            << "checkpoints written: " << st.checkpoints << "\n"
            << "leaked requests: " << st.leaked() << "\n";

  if (!opt.prom.empty()) {
    std::ofstream os(opt.prom);
    if (!os) {
      std::cerr << "mcds_serve: cannot write " << opt.prom << "\n";
      return 2;
    }
    obs::export_prometheus(metrics, os);
    std::cout << "wrote " << opt.prom << "\n";
  }
  if (st.leaked() != 0 || st.inflight != 0) {
    std::cerr << "mcds_serve: request accounting leak!\n";
    return 2;
  }
  return 0;
}
