// mcds_cli: command-line front end for the library.
//
//   mcds_cli generate --nodes N --side S [--model M] [--seed K] --out F
//       deploys a connected instance and writes it as mcds-points text
//   mcds_cli solve --in F [--algo waf|greedy|gk|stojmenovic|li-thai|
//                          wu-li|alzoubi] [--km k,m] [--prune]
//                  [--svg out.svg]
//       builds the UDG, runs the chosen CDS algorithm, prints the
//       backbone and stats, optionally renders an SVG; --km k,m builds
//       a fault-tolerant (k,m)-CDS (k in {1,2}) instead of --algo
//   mcds_cli stats --in F
//       prints topology metrics of the instance
//   mcds_cli dist --in F [--algo waf|greedy|alzoubi] [--reliable]
//                 [--fault-plan plan.json] [--drop P] [--dup P]
//                 [--delay D] [--seed K] [--threads N]
//       runs the distributed construction, optionally under faults;
//       --fault-plan replays a serialized FaultPlan (e.g. a minimized
//       chaos-fuzzer repro) and the scalar flags refine it; --threads
//       executes each round's node steps on a worker pool (results and
//       traces are byte-identical at any thread count)
//   mcds_cli dynamic --in F [--events N] [--crash P] [--speed S]
//                    [--seed K] [--check-every M]
//       streams synthetic churn (jittered moves, fail-stop crashes,
//       recoveries) through the incremental dyn::DynamicCds engine and
//       reports per-event latency percentiles and throughput
//
// solve, dist and dynamic accept observability sinks:
//   --trace F        Chrome trace-event JSON (chrome://tracing, Perfetto)
//   --trace-jsonl F  one JSON record per line (diff-friendly; the
//                    logical clock makes identical runs byte-identical)
//   --metrics F      counter/gauge/histogram registry as one JSON object
//   --prom F         registry in Prometheus text exposition format
//   --profile-folded F
//                    flamegraph-compatible folded stacks aggregated from
//                    the run's trace spans (pipe into flamegraph.pl)
//   --snapshot-jsonl F [--snapshot-every N]
//                    append a timestamped JSONL registry snapshot every
//                    N instrumented events during long runs (default 1)
// dist additionally accepts causal tracing:
//   --critical-path  stamp causal span ids through every message, print
//                    the longest send->deliver->send chain per phase
//   --causal-jsonl F dump the full causal DAG, one span per line
//
// Exit status: 0 on success, 1 on usage error, 2 on runtime failure.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "baselines/alzoubi.hpp"
#include "baselines/bharghavan_das.hpp"
#include "baselines/guha_khuller.hpp"
#include "baselines/li_thai.hpp"
#include "baselines/prune.hpp"
#include "baselines/stojmenovic.hpp"
#include "baselines/wu_li.hpp"
#include "core/bounds.hpp"
#include "core/greedy_connect.hpp"
#include "core/kmcds.hpp"
#include "core/validate.hpp"
#include "core/waf.hpp"
#include "dist/alzoubi_protocol.hpp"
#include "dist/distributed_cds.hpp"
#include "dist/fault_json.hpp"
#include "dist/greedy_protocol.hpp"
#include "dyn/dynamic_cds.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "graph/metrics.hpp"
#include "obs/causal.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "par/thread_pool.hpp"
#include "serve/server.hpp"
#include "udg/builder.hpp"
#include "udg/instance.hpp"
#include "udg/io.hpp"
#include "viz/render.hpp"

namespace {

using namespace mcds;

struct Args {
  std::map<std::string, std::string> options;
  bool has_flag(const std::string& name) const {
    return options.count(name) > 0;
  }
  std::optional<std::string> get(const std::string& name) const {
    const auto it = options.find(name);
    if (it == options.end()) return std::nullopt;
    return it->second;
  }
};

Args parse(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --option, got " + key);
    }
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "";  // boolean flag
    }
  }
  return args;
}

int usage() {
  std::cerr << "usage:\n"
            << "  mcds_cli generate --nodes N --side S [--model "
               "uniform|disk|grid|cluster|corridor] [--seed K] --out F\n"
            << "  mcds_cli solve --in F [--algo waf|greedy|gk|stojmenovic|"
               "li-thai|wu-li|alzoubi] [--km k,m] [--prune] [--svg F.svg] "
               "[--quiet]\n"
            << "  mcds_cli stats --in F\n"
            << "  mcds_cli dist --in F [--algo waf|greedy|alzoubi] "
               "[--reliable] [--fault-plan plan.json] [--drop P] [--dup P] "
               "[--delay D] [--seed K] [--threads N]\n"
            << "  mcds_cli dynamic --in F [--events N] [--crash P] "
               "[--speed S] [--seed K] [--check-every M]\n"
            << "  mcds_cli serve --in F [--requests N] [--budget-ms B] "
               "[--churn P] [--queue C] [--seed K]\n"
            << "solve/dist/dynamic observability: [--trace F.json] "
               "[--trace-jsonl F.jsonl] [--metrics F.json] [--prom F.prom] "
               "[--profile-folded F.folded] [--snapshot-jsonl F.jsonl "
               "[--snapshot-every N]]\n"
            << "dist causal tracing: [--critical-path] "
               "[--causal-jsonl F.jsonl]\n"
            << "solve/dist parallelism: [--threads N] (default: "
               "MCDS_THREADS env, else hardware concurrency)\n";
  return 1;
}

/// Observability sinks requested on the command line. The sinks live for
/// the whole command and are flushed to disk by write().
struct ObsSinks {
  std::optional<std::string> chrome_path;
  std::optional<std::string> jsonl_path;
  std::optional<std::string> metrics_path;
  std::optional<std::string> prom_path;
  std::optional<std::string> folded_path;
  std::optional<std::string> causal_path;
  std::optional<std::string> snapshot_path;
  bool want_causal = false;
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  obs::CausalTracer causal;
  std::ofstream snapshot_os;
  std::optional<obs::SnapshotSink> snapshots;

  explicit ObsSinks(const Args& args)
      : chrome_path(args.get("trace")),
        jsonl_path(args.get("trace-jsonl")),
        metrics_path(args.get("metrics")),
        prom_path(args.get("prom")),
        folded_path(args.get("profile-folded")),
        causal_path(args.get("causal-jsonl")),
        snapshot_path(args.get("snapshot-jsonl")),
        want_causal(args.has_flag("critical-path") ||
                    args.get("causal-jsonl").has_value()) {
    if (snapshot_path) {
      snapshot_os.open(*snapshot_path);
      if (!snapshot_os) {
        throw std::runtime_error("cannot write " + *snapshot_path);
      }
      const auto every =
          std::stoul(args.get("snapshot-every").value_or("1"));
      snapshots.emplace(snapshot_os, every == 0 ? 1 : every);
    }
  }

  [[nodiscard]] obs::Obs handle() {
    obs::Obs o;
    if (metrics_path || prom_path || snapshots) o.metrics = &metrics;
    if (chrome_path || jsonl_path || folded_path) o.trace = &trace;
    if (want_causal) o.causal = &causal;
    if (snapshots) o.snapshots = &*snapshots;
    return o;
  }

  /// Writes every requested sink; returns 2 on an unwritable path.
  int write() {
    const auto dump = [](const std::string& path, const auto& emit) {
      std::ofstream os(path);
      if (!os) {
        std::cerr << "mcds_cli: cannot write " << path << "\n";
        return 2;
      }
      emit(os);
      std::cout << "wrote " << path << "\n";
      return 0;
    };
    if (chrome_path) {
      if (const int rc = dump(
              *chrome_path,
              [&](std::ostream& os) { obs::write_chrome_trace(trace, os); });
          rc != 0) {
        return rc;
      }
    }
    if (jsonl_path) {
      if (const int rc =
              dump(*jsonl_path,
                   [&](std::ostream& os) { obs::write_jsonl(trace, os); });
          rc != 0) {
        return rc;
      }
    }
    if (metrics_path) {
      if (const int rc =
              dump(*metrics_path,
                   [&](std::ostream& os) { metrics.write_json(os); });
          rc != 0) {
        return rc;
      }
    }
    if (prom_path) {
      if (const int rc = dump(*prom_path,
                              [&](std::ostream& os) {
                                obs::export_prometheus(metrics, os);
                              });
          rc != 0) {
        return rc;
      }
    }
    if (folded_path) {
      const auto profile = obs::ProfileTree::build(trace);
      if (const int rc =
              dump(*folded_path,
                   [&](std::ostream& os) { profile.write_folded(os); });
          rc != 0) {
        return rc;
      }
    }
    if (causal_path) {
      if (const int rc = dump(*causal_path,
                              [&](std::ostream& os) {
                                obs::write_causal_jsonl(causal, os);
                              });
          rc != 0) {
        return rc;
      }
    }
    if (snapshots) {
      // Final snapshot so the file always ends with the run's end state.
      snapshots->snapshot(metrics);
      snapshot_os.flush();
      std::cout << "wrote " << *snapshot_path << " ("
                << snapshots->snapshots() << " snapshot(s))\n";
    }
    return 0;
  }
};


/// Worker count for --threads: the flag wins, then the MCDS_THREADS
/// environment variable, then hardware concurrency (ThreadPool's own
/// default chain).
std::size_t parse_threads(const Args& args) {
  if (const auto v = args.get("threads")) {
    const unsigned long t = std::stoul(*v);
    if (t == 0) throw std::invalid_argument("--threads must be >= 1");
    return t;
  }
  return par::ThreadPool::default_threads();
}

udg::DeploymentModel parse_model(const std::string& name) {
  if (name == "uniform") return udg::DeploymentModel::kUniformSquare;
  if (name == "disk") return udg::DeploymentModel::kUniformDisk;
  if (name == "grid") return udg::DeploymentModel::kPerturbedGrid;
  if (name == "cluster") return udg::DeploymentModel::kGaussianCluster;
  if (name == "corridor") return udg::DeploymentModel::kCorridor;
  throw std::invalid_argument("unknown model: " + name);
}

int cmd_generate(const Args& args) {
  udg::InstanceParams params;
  params.nodes = std::stoul(args.get("nodes").value_or("200"));
  params.side = std::stod(args.get("side").value_or("10"));
  params.model = parse_model(args.get("model").value_or("uniform"));
  const auto seed = std::stoull(args.get("seed").value_or("1"));
  const auto out = args.get("out");
  if (!out) {
    std::cerr << "generate: --out is required\n";
    return 1;
  }
  const auto inst = udg::generate_largest_component_instance(params, seed);
  udg::save_points_file(*out, inst.points);
  std::cout << "wrote " << *out << ": " << inst.points.size()
            << " nodes (connected component), " << inst.graph.num_edges()
            << " links, seed " << seed << "\n";
  return 0;
}

int cmd_solve(const Args& args) {
  const auto in = args.get("in");
  if (!in) {
    std::cerr << "solve: --in is required\n";
    return 1;
  }
  const auto points = udg::load_points_file(*in);
  par::ThreadPool pool(parse_threads(args));
  const graph::Graph g = udg::build_udg(points, 1.0, pool);
  if (!graph::is_connected(g)) {
    std::cerr << "solve: instance topology is disconnected\n";
    return 2;
  }

  ObsSinks sinks(args);

  // --km k,m: the fault-tolerant (k,m)-CDS family instead of a plain
  // CDS algorithm; validated with the witness-producing check_kmcds.
  if (const auto km = args.get("km")) {
    core::KmParams params;
    try {
      const auto comma = km->find(',');
      if (comma == std::string::npos) throw std::invalid_argument("km");
      params.k =
          static_cast<std::uint32_t>(std::stoul(km->substr(0, comma)));
      params.m =
          static_cast<std::uint32_t>(std::stoul(km->substr(comma + 1)));
      params.validate();
    } catch (const std::exception&) {
      std::cerr << "solve: --km expects k,m with k in {1,2}, m >= 1 "
                   "(e.g. --km 2,2)\n";
      return 1;
    }
    const auto r = core::kmcds(g, params, 0, sinks.handle());
    const auto check = core::check_kmcds(g, r.backbone, params);
    if (!check.ok) {
      std::cerr << "solve: INTERNAL ERROR - produced set is not a ("
                << params.k << "," << params.m
                << ")-CDS: " << check.describe() << "\n";
      return 2;
    }
    std::cout << "algorithm: kmcds (" << params.k << "," << params.m << ")\n"
              << "nodes: " << g.num_nodes() << ", links: " << g.num_edges()
              << "\n"
              << "backbone size: " << r.backbone.size() << " ("
              << 100.0 * static_cast<double>(r.backbone.size()) /
                     static_cast<double>(g.num_nodes())
              << "% of nodes)\n"
              << "dominators: " << r.dominators.size()
              << ", connectors: " << r.connectors.size()
              << ", augmenters: " << r.augmenters.size() << "\n";
    if (!args.has_flag("quiet")) {
      std::cout << "backbone nodes:";
      for (const auto v : r.backbone) std::cout << ' ' << v;
      std::cout << "\n";
    }
    if (const auto svg = args.get("svg")) {
      viz::render_network(points, g, r.backbone, r.dominators).save(*svg);
      std::cout << "wrote " << *svg << "\n";
    }
    return sinks.write();
  }

  const std::string algo = args.get("algo").value_or("greedy");
  std::vector<graph::NodeId> cds, dominators;
  if (algo == "waf") {
    auto r = core::waf_cds(g, 0, sinks.handle());
    cds = r.cds;
    dominators = r.phase1.mis;
  } else if (algo == "greedy") {
    auto r = core::greedy_cds(g, 0, sinks.handle());
    cds = r.cds;
    dominators = r.phase1.mis;
  } else if (algo == "gk") {
    cds = baselines::guha_khuller_cds(g);
  } else if (algo == "stojmenovic") {
    cds = baselines::stojmenovic_cds(g);
  } else if (algo == "li-thai") {
    cds = baselines::li_thai_cds(g);
  } else if (algo == "wu-li") {
    cds = baselines::wu_li_cds(g);
  } else if (algo == "alzoubi") {
    cds = baselines::alzoubi_cds(g);
  } else {
    std::cerr << "solve: unknown --algo " << algo << "\n";
    return 1;
  }
  if (args.has_flag("prune")) cds = baselines::prune_cds(g, cds);

  if (!core::is_cds(g, cds, pool)) {
    std::cerr << "solve: INTERNAL ERROR - produced set is not a CDS\n";
    return 2;
  }
  std::cout << "algorithm: " << algo
            << (args.has_flag("prune") ? " + prune" : "") << "\n"
            << "nodes: " << g.num_nodes() << ", links: " << g.num_edges()
            << "\n"
            << "backbone size: " << cds.size() << " ("
            << 100.0 * static_cast<double>(cds.size()) /
                   static_cast<double>(g.num_nodes())
            << "% of nodes)\n";
  if (!dominators.empty()) {
    std::cout << "dominators: " << dominators.size()
              << ", certified gamma_c lower bound: "
              << core::bounds::gamma_c_lower_bound_from_independent(
                     dominators.size())
              << "\n";
  }
  if (!args.has_flag("quiet")) {
    std::cout << "backbone nodes:";
    for (const auto v : cds) std::cout << ' ' << v;
    std::cout << "\n";
  }
  if (const auto svg = args.get("svg")) {
    viz::render_network(points, g, cds, dominators).save(*svg);
    std::cout << "wrote " << *svg << "\n";
  }
  return sinks.write();
}

int cmd_dist(const Args& args) {
  const auto in = args.get("in");
  if (!in) {
    std::cerr << "dist: --in is required\n";
    return 1;
  }
  const auto points = udg::load_points_file(*in);
  par::ThreadPool pool(parse_threads(args));
  const graph::Graph g = udg::build_udg(points, 1.0, pool);
  if (!graph::is_connected(g)) {
    std::cerr << "dist: instance topology is disconnected\n";
    return 2;
  }

  ObsSinks sinks(args);
  dist::RunConfig cfg;
  if (const auto plan_path = args.get("fault-plan")) {
    // A full serialized plan (typically a fuzzer-minimized repro);
    // the scalar fault flags then refine it.
    try {
      cfg.plan = dist::load_fault_plan(*plan_path);
    } catch (const std::exception& e) {
      std::cerr << "dist: --fault-plan: " << e.what() << "\n";
      return 1;
    }
  }
  if (const auto v = args.get("drop")) cfg.plan.link.drop = std::stod(*v);
  if (const auto v = args.get("dup")) cfg.plan.link.duplicate = std::stod(*v);
  if (const auto v = args.get("delay")) {
    cfg.plan.link.max_delay = std::stoul(*v);
  }
  if (const auto v = args.get("seed")) {
    cfg.plan.seed = std::stoull(*v);
  } else if (!args.get("fault-plan")) {
    cfg.plan.seed = 1;
  }
  cfg.reliable = args.has_flag("reliable");
  cfg.obs = sinks.handle();
  // The same pool that built the UDG drives parallel round execution —
  // byte-identical results at any --threads value.
  cfg.pool = &pool;
  try {
    cfg.plan.validate();
  } catch (const std::exception& e) {
    std::cerr << "dist: " << e.what() << "\n";
    return 1;
  }

  const std::string algo = args.get("algo").value_or("waf");
  std::vector<graph::NodeId> cds;
  dist::RunStats total;
  bool complete = true;
  if (algo == "waf") {
    const auto r = dist::distributed_waf_cds(g, cfg);
    cds = r.cds;
    total = r.total;
    complete = r.complete;
  } else if (algo == "greedy") {
    const auto r = dist::distributed_greedy_cds(g, cfg);
    cds = r.cds;
    total = r.total;
    complete = r.complete;
  } else if (algo == "alzoubi") {
    const auto r = dist::distributed_alzoubi_cds(g, cfg);
    cds = r.cds;
    total = r.total;
    complete = r.complete;
  } else {
    std::cerr << "dist: unknown --algo " << algo << "\n";
    return 1;
  }

  std::cout << "algorithm: distributed " << algo
            << (cfg.reliable ? " (reliable links)" : "") << "\n"
            << "nodes: " << g.num_nodes() << ", links: " << g.num_edges()
            << "\n"
            << "backbone size: " << cds.size() << "\n"
            << "rounds: " << total.rounds << ", messages: " << total.messages
            << "\n";
  if (!total.by_type.empty()) {
    std::cout << "messages by type:";
    for (const auto& [t, c] : total.by_type) {
      std::cout << " type" << t << "=" << c;
    }
    std::cout << "\n";
  }
  if (args.has_flag("critical-path")) {
    std::cout << "critical path (messages, summed over phases): "
              << total.critical_path << "\n";
    obs::critical_path(sinks.causal).write(std::cout);
  }
  if (!complete) {
    std::cout << "note: construction incomplete under faults (validate "
                 "against the survivor graph)\n";
  }
  const bool valid = core::is_cds(g, cds, pool);
  std::cout << "valid CDS on full topology: " << (valid ? "yes" : "no")
            << "\n";
  return sinks.write();
}

int cmd_dynamic(const Args& args) {
  const auto in = args.get("in");
  if (!in) {
    std::cerr << "dynamic: --in is required\n";
    return 1;
  }
  const auto points = udg::load_points_file(*in);
  const auto events = std::stoul(args.get("events").value_or("10000"));
  const double crash = std::stod(args.get("crash").value_or("0.1"));
  const double speed = std::stod(args.get("speed").value_or("0.5"));
  const auto seed = std::stoull(args.get("seed").value_or("1"));
  const auto check_every =
      std::stoul(args.get("check-every").value_or("0"));
  if (crash < 0.0 || crash >= 1.0) {
    std::cerr << "dynamic: --crash must be in [0, 1)\n";
    return 1;
  }

  // The churn field is the input's bounding box: revivals respawn
  // uniformly inside it, moves jitter by at most --speed and clamp.
  double side = 1.0;
  for (const auto& p : points) side = std::max({side, p.x, p.y});

  ObsSinks sinks(args);
  dyn::DynamicCds engine(points, {}, sinks.handle());
  sim::Rng rng(seed);
  sim::Accumulator latency_us;
  const auto clamp = [side](double x) {
    return x < 0.0 ? 0.0 : (x > side ? side : x);
  };
  auto* h_latency = sinks.handle().histogram("cli.dyn.event_us");
  for (std::size_t e = 0; e < events; ++e) {
    const auto v =
        static_cast<graph::NodeId>(rng.uniform_int(engine.num_nodes()));
    const bool was_alive = engine.alive(v);
    const bool crashes = was_alive && rng.uniform01() < crash;
    const geom::Vec2 target =
        was_alive ? geom::Vec2{clamp(engine.position(v).x +
                                     rng.uniform(-speed, speed)),
                               clamp(engine.position(v).y +
                                     rng.uniform(-speed, speed))}
                  : geom::Vec2{rng.uniform(0.0, side),
                               rng.uniform(0.0, side)};
    const auto t0 = std::chrono::steady_clock::now();
    if (!was_alive) {
      engine.revive(v, target);
    } else if (crashes) {
      engine.erase(v);
    } else {
      engine.move(v, target);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    latency_us.add(us);
    if (h_latency) h_latency->record(us);
    if (check_every != 0 && (e + 1) % check_every == 0) {
      const auto check = engine.check();
      if (!check.ok) {
        std::cerr << "dynamic: INTERNAL ERROR after event " << (e + 1)
                  << ": " << check.describe() << "\n";
        return 2;
      }
    }
  }
  const auto final_check = engine.check();
  if (!final_check.ok) {
    std::cerr << "dynamic: INTERNAL ERROR - final backbone invalid: "
              << final_check.describe() << "\n";
    return 2;
  }

  const double total_s = latency_us.count()
                             ? latency_us.mean() * 1e-6 *
                                   static_cast<double>(latency_us.count())
                             : 0.0;
  std::cout << "nodes: " << engine.num_nodes()
            << " (alive: " << engine.alive_count() << ")\n"
            << "events: " << latency_us.count() << ", throughput: "
            << (total_s > 0.0
                    ? static_cast<double>(latency_us.count()) / total_s
                    : 0.0)
            << " events/s\n"
            << "latency (us): p50 " << latency_us.p50() << ", p95 "
            << latency_us.p95() << ", p99 " << latency_us.p99() << ", max "
            << latency_us.max() << "\n"
            << "backbone: " << engine.cds_size() << " (MIS "
            << engine.mis_size() << ", envelope "
            << 4 * engine.mis_size() + 12 << ")\n"
            << "rebuilds: " << engine.rebuilds()
            << ", compactions: " << engine.compactions()
            << ", epoch: " << engine.epoch() << "\n"
            << "final backbone valid: yes\n";
  return sinks.write();
}

/// Smoke-mode for the solve server: drive a bounded request mix through
/// serve::Server against the loaded deployment, drain, and report the
/// accounting ledger. A leak is an error (exit 2), which makes this a
/// usable health check in CI.
int cmd_serve(const Args& args) {
  const auto in = args.get("in");
  if (!in) {
    std::cerr << "serve: --in is required\n";
    return 1;
  }
  const auto points = udg::load_points_file(*in);
  const graph::Graph g = udg::build_udg(points);
  if (graph::compute_metrics(g).components != 1) {
    std::cerr << "serve: input must be connected\n";
    return 2;
  }
  const std::size_t requests =
      std::stoul(args.get("requests").value_or("50"));
  const std::size_t budget_ms =
      std::stoul(args.get("budget-ms").value_or("500"));
  const double churn = std::stod(args.get("churn").value_or("0.25"));
  const auto seed = std::stoull(args.get("seed").value_or("1"));

  ObsSinks sinks(args);
  serve::ServerParams params;
  params.queue_capacity = std::stoul(args.get("queue").value_or("64"));
  params.initial_points = points;
  serve::Server server(std::move(params), sinks.handle());

  udg::UdgInstance inst;
  inst.points = points;
  inst.graph = g;
  inst.seed = seed;

  sim::Rng rng(seed);
  std::vector<serve::Ticket> tickets;
  for (std::size_t i = 0; i < requests; ++i) {
    serve::Request req;
    req.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(budget_ms);
    if (rng.uniform01() < churn) {
      req.ops.push_back(
          {serve::ChurnOp::Kind::kMove,
           static_cast<serve::NodeId>(rng.uniform_int(points.size())),
           {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}});
    } else {
      req.instance = inst;
      req.tier = static_cast<serve::Tier>(rng.uniform_int(3));
      req.priority = static_cast<serve::Priority>(rng.uniform_int(3));
    }
    tickets.push_back(server.submit(std::move(req)));
  }
  server.drain();

  std::size_t ok_with_valid_cds = 0;
  for (serve::Ticket& t : tickets) {
    const serve::Response r = t.wait();
    if (r.status != serve::Status::kOk || r.cds.empty()) continue;
    if (r.epoch == 0 && core::check_cds(g, r.cds).ok) ++ok_with_valid_cds;
  }
  const serve::ServerStats st = server.stats();
  std::cout << "submitted " << st.submitted << ": ok " << st.ok << " ("
            << st.degraded << " degraded, " << ok_with_valid_cds
            << " solve responses validated), rejected " << st.rejected
            << ", shed " << st.shed << ", timeout " << st.timeout
            << ", errors " << st.errors << "\n"
            << "overload transitions: "
            << server.overload_transitions().size() << "\n"
            << "leaked requests: " << st.leaked() << "\n";
  if (const int rc = sinks.write(); rc != 0) return rc;
  return st.leaked() == 0 ? 0 : 2;
}

int cmd_stats(const Args& args) {
  const auto in = args.get("in");
  if (!in) {
    std::cerr << "stats: --in is required\n";
    return 1;
  }
  const auto points = udg::load_points_file(*in);
  const graph::Graph g = udg::build_udg(points);
  const auto m = graph::compute_metrics(g);
  std::cout << "nodes: " << m.nodes << "\nlinks: " << m.edges
            << "\ndegree: min " << m.min_degree << ", avg " << m.avg_degree
            << ", max " << m.max_degree
            << "\ncomponents: " << m.components << "\n";
  if (m.components == 1 && m.nodes > 1) {
    std::cout << "diameter (hops): " << graph::diameter_hops(g) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args = parse(argc, argv, 2);
    if (command == "generate") return cmd_generate(args);
    if (command == "solve") return cmd_solve(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "dist") return cmd_dist(args);
    if (command == "dynamic") return cmd_dynamic(args);
    if (command == "serve") return cmd_serve(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "mcds_cli: " << e.what() << "\n";
    return 2;
  }
}
