// Quickstart: deploy a random wireless ad hoc network, build a CDS with
// both two-phased algorithms of the paper, and verify the results.
//
//   ./quickstart [nodes] [side] [seed]

#include <cstdlib>
#include <iostream>

#include "core/bounds.hpp"
#include "core/greedy_connect.hpp"
#include "core/validate.hpp"
#include "core/waf.hpp"
#include "udg/instance.hpp"

int main(int argc, char** argv) {
  using namespace mcds;

  // 1. Deploy a network: `nodes` radios in a `side` x `side` field with
  //    unit communication radius.
  udg::InstanceParams params;
  params.nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;
  params.side = argc > 2 ? std::strtod(argv[2], nullptr) : 9.0;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2008;
  const udg::UdgInstance inst =
      udg::generate_largest_component_instance(params, seed);
  const graph::Graph& g = inst.graph;
  std::cout << "Network: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " links (seed " << seed << ")\n\n";

  // 2. The algorithm of [10] (Section III): BFS first-fit MIS dominators
  //    plus tree-parent connectors. Guarantee: |CDS| <= 7 1/3 gamma_c.
  const core::WafResult waf = core::waf_cds(g, /*root=*/0);
  std::cout << "WAF two-phased CDS    : " << waf.cds.size() << " nodes ("
            << waf.phase1.mis.size() << " dominators + "
            << waf.connectors.size() << " connectors), valid="
            << std::boolalpha << core::is_cds(g, waf.cds) << "\n";

  // 3. The paper's new algorithm (Section IV): same dominators, but
  //    connectors picked greedily by maximum component-merging gain.
  //    Guarantee: |CDS| <= 6 7/18 gamma_c.
  const core::GreedyConnectResult greedy = core::greedy_cds(g, /*root=*/0);
  std::cout << "Greedy-connector CDS  : " << greedy.cds.size() << " nodes ("
            << greedy.phase1.mis.size() << " dominators + "
            << greedy.connectors.size() << " connectors), valid="
            << core::is_cds(g, greedy.cds) << "\n\n";

  // 4. What the theory promises: a certified lower bound on the optimum
  //    from Corollary 7, and the proven approximation guarantees.
  const std::size_t lb = core::bounds::gamma_c_lower_bound_from_independent(
      greedy.phase1.mis.size());
  std::cout << "Certified gamma_c lower bound (Corollary 7): " << lb << "\n";
  // Dividing by the *lower bound* over-estimates the true ratio, so the
  // printed factor can exceed the proven worst case against gamma_c.
  std::cout << "=> WAF CDS is within at most "
            << waf.cds.size() / double(lb)
            << "x of optimal (ratio vs the true optimum is provably <= "
            << core::bounds::kWafRatio << ")\n";
  std::cout << "=> greedy CDS is within at most "
            << greedy.cds.size() / double(lb)
            << "x of optimal (ratio vs the true optimum is provably <= "
            << core::bounds::kGreedyRatio << ")\n";
  return 0;
}
