// Topology maintenance: wireless nodes move, and the backbone must
// follow. This example runs a mobility loop and maintains the backbone
// two ways — full rebuild each epoch vs local repair of the previous
// backbone (core/repair.hpp) — and reports size and churn (backbone
// membership changes, the quantity that invalidates routes and state).
//
//   ./topology_maintenance [nodes] [side] [epochs] [seed]

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/greedy_connect.hpp"
#include "core/repair.hpp"
#include "core/validate.hpp"
#include "graph/traversal.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "udg/builder.hpp"
#include "udg/deployment.hpp"

namespace {

std::size_t churn(const std::vector<mcds::graph::NodeId>& before,
                  const std::vector<mcds::graph::NodeId>& after) {
  std::vector<mcds::graph::NodeId> entered;
  std::set_difference(after.begin(), after.end(), before.begin(),
                      before.end(), std::back_inserter(entered));
  return entered.size();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcds;
  using geom::Vec2;
  using graph::NodeId;

  const std::size_t nodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  const double side = argc > 2 ? std::strtod(argv[2], nullptr) : 9.0;
  const std::size_t epochs =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 20;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 4;

  sim::Rng rng(seed);
  std::vector<Vec2> pos = udg::deploy_uniform_square(nodes, side, rng);
  const double step = 0.25;  // max movement per epoch (radius fraction)

  sim::Table table({"epoch", "links", "rebuild size", "repair size",
                    "rebuild churn", "repair churn"});
  std::vector<NodeId> rebuild_prev, repair_prev;
  sim::Accumulator rebuild_churn, repair_churn;

  std::size_t produced = 0;
  for (std::size_t epoch = 0; produced < epochs && epoch < 4 * epochs;
       ++epoch) {
    for (auto& p : pos) {
      p.x = std::clamp(p.x + rng.uniform(-step, step), 0.0, side);
      p.y = std::clamp(p.y + rng.uniform(-step, step), 0.0, side);
    }
    const graph::Graph g = udg::build_udg(pos);
    if (!graph::is_connected(g)) continue;  // transient fragmentation
    ++produced;

    const auto rebuilt = core::greedy_cds(g, 0).cds;
    const auto repaired = repair_prev.empty()
                              ? core::RepairResult{rebuilt, 0, 0, 0}
                              : core::repair_cds(g, repair_prev);
    if (!core::is_cds(g, rebuilt) || !core::is_cds(g, repaired.cds)) {
      std::cerr << "ERROR: invalid backbone at epoch " << epoch << "\n";
      return 1;
    }

    const std::size_t rb_churn =
        rebuild_prev.empty() ? 0 : churn(rebuild_prev, rebuilt);
    const std::size_t rp_churn =
        repair_prev.empty() ? 0 : churn(repair_prev, repaired.cds);
    if (!rebuild_prev.empty()) {
      rebuild_churn.add(static_cast<double>(rb_churn));
      repair_churn.add(static_cast<double>(rp_churn));
    }
    rebuild_prev = rebuilt;
    repair_prev = repaired.cds;

    table.row()
        .add(produced - 1)
        .add(g.num_edges())
        .add(rebuilt.size())
        .add(repaired.cds.size())
        .add(rb_churn)
        .add(rp_churn);
  }
  table.print(std::cout);

  std::cout << "\nMean churn/epoch: rebuild "
            << sim::format_double(rebuild_churn.mean(), 1) << " vs repair "
            << sim::format_double(repair_churn.mean(), 1)
            << " nodes. Repair trades a larger backbone for stability; "
               "run bench/repair_vs_rebuild for the full sweep.\n";
  return 0;
}
