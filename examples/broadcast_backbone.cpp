// Broadcast backbone: the motivating CDS application. Network-wide
// broadcast by blind flooding costs one transmission per node; with a
// CDS backbone only backbone nodes retransmit. This example simulates
// both over random networks and reports the transmission savings —
// directly proportional to the CDS size the paper's algorithms minimize.
//
//   ./broadcast_backbone [nodes] [side] [seed]

#include <cstdlib>
#include <iostream>
#include <queue>
#include <vector>

#include "core/greedy_connect.hpp"
#include "core/waf.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

namespace {

using mcds::graph::Graph;
using mcds::graph::NodeId;

/// Simulates a broadcast from `source`: every node receiving the message
/// for the first time retransmits iff `relays[node]`. Returns
/// {transmissions, nodes reached}.
std::pair<std::size_t, std::size_t> simulate_broadcast(
    const Graph& g, NodeId source, const std::vector<bool>& relays) {
  std::vector<bool> received(g.num_nodes(), false);
  std::queue<NodeId> transmit_queue;
  received[source] = true;
  transmit_queue.push(source);  // the source always transmits
  std::size_t transmissions = 0, reached = 1;
  while (!transmit_queue.empty()) {
    const NodeId u = transmit_queue.front();
    transmit_queue.pop();
    ++transmissions;
    for (const NodeId v : g.neighbors(u)) {
      if (received[v]) continue;
      received[v] = true;
      ++reached;
      if (relays[v]) transmit_queue.push(v);
    }
  }
  return {transmissions, reached};
}

std::vector<bool> relay_flags(const Graph& g,
                              const std::vector<NodeId>& backbone) {
  std::vector<bool> flags(g.num_nodes(), false);
  for (const NodeId v : backbone) flags[v] = true;
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcds;

  udg::InstanceParams params;
  params.nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;
  params.side = argc > 2 ? std::strtod(argv[2], nullptr) : 11.0;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;
  const auto inst = udg::generate_largest_component_instance(params, seed);
  const Graph& g = inst.graph;
  std::cout << "Network: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " links\n\n";

  const auto waf = core::waf_cds(g, 0);
  const auto greedy = core::greedy_cds(g, 0);

  // Blind flooding: everyone relays.
  const std::vector<bool> all_relay(g.num_nodes(), true);

  sim::Table table({"scheme", "backbone size", "transmissions",
                    "coverage", "savings vs flooding"});
  const auto flood = simulate_broadcast(g, 0, all_relay);
  const auto report = [&](const char* name, std::size_t backbone,
                          std::pair<std::size_t, std::size_t> result) {
    const double savings =
        100.0 * (1.0 - static_cast<double>(result.first) /
                           static_cast<double>(flood.first));
    table.row()
        .add(name)
        .add(backbone)
        .add(result.first)
        .add(std::to_string(result.second) + "/" +
             std::to_string(g.num_nodes()))
        .add(sim::format_double(savings, 1) + "%");
    if (result.second != g.num_nodes()) {
      std::cerr << "ERROR: " << name << " failed to reach every node\n";
      std::exit(1);
    }
  };

  report("blind flooding", g.num_nodes(), flood);
  report("WAF backbone [10]", waf.cds.size(),
         simulate_broadcast(g, 0, relay_flags(g, waf.cds)));
  report("greedy backbone (Sec IV)", greedy.cds.size(),
         simulate_broadcast(g, 0, relay_flags(g, greedy.cds)));
  table.print(std::cout);

  std::cout << "\nEvery scheme reached all nodes; a smaller CDS backbone "
               "means fewer redundant transmissions (and less energy/"
               "interference).\n";
  return 0;
}
