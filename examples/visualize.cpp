// Visualize: writes SVG renderings of (a) a random network with its
// greedy CDS backbone, (b) the Figure 1 tight 3-star packing, and
// (c) the Figure 2 linear packing — handy for papers, slides and
// debugging.
//
//   ./visualize [out_dir] [nodes] [side] [seed]

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/greedy_connect.hpp"
#include "packing/fig1.hpp"
#include "packing/fig2.hpp"
#include "udg/instance.hpp"
#include "viz/render.hpp"

int main(int argc, char** argv) {
  using namespace mcds;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  udg::InstanceParams params;
  params.nodes = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 180;
  params.side = argc > 3 ? std::strtod(argv[3], nullptr) : 9.0;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 11;

  // (a) Network + backbone.
  const auto inst = udg::generate_largest_component_instance(params, seed);
  const auto greedy = core::greedy_cds(inst.graph, 0);
  viz::NetworkRenderOptions options;
  const auto network = viz::render_network(
      inst.points, inst.graph, greedy.cds, greedy.phase1.mis, options);
  const std::string network_path = out_dir + "/network_backbone.svg";
  network.save(network_path);
  std::cout << "wrote " << network_path << "  (" << inst.points.size()
            << " nodes, backbone " << greedy.cds.size()
            << ", dominators ringed blue, backbone red)\n";

  // (b) Figure 1: 3-star with 12 independent points.
  const auto fig1 = packing::fig1_three_star(0.03);
  const auto fig1_svg = viz::render_packing(fig1.centers, fig1.independent);
  const std::string fig1_path = out_dir + "/fig1_three_star.svg";
  fig1_svg.save(fig1_path);
  std::cout << "wrote " << fig1_path << "  (" << fig1.independent.size()
            << " independent points in a 3-star neighborhood)\n";

  // (c) Figure 2: linear instance with 3(n+1) points.
  const auto fig2 = packing::fig2_linear(8, 0.03);
  const auto fig2_svg = viz::render_packing(fig2.centers, fig2.independent);
  const std::string fig2_path = out_dir + "/fig2_linear.svg";
  fig2_svg.save(fig2_path);
  std::cout << "wrote " << fig2_path << "  (" << fig2.independent.size()
            << " independent points around 8 collinear nodes)\n";
  return 0;
}
