// Self-healing backbone: build a CDS with the distributed protocol over
// a lossy network, then hit the deployment with waves of fail-stop
// crashes and recoveries and let the maintenance driver keep the
// backbone valid. Each wave prints what broke (the check_cds witness),
// which healing action the driver chose, and the node accounting.
//
//   ./self_healing_backbone [nodes] [side] [waves] [seed]

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/validate.hpp"
#include "dist/distributed_cds.hpp"
#include "dist/fault.hpp"
#include "dist/maintenance.hpp"
#include "sim/rng.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

namespace {

const char* action_name(mcds::dist::HealAction a) {
  switch (a) {
    case mcds::dist::HealAction::kIntact:
      return "intact";
    case mcds::dist::HealAction::kReconnected:
      return "reconnected";
    case mcds::dist::HealAction::kRepaired:
      return "repaired";
    case mcds::dist::HealAction::kRebuilt:
      return "rebuilt";
    case mcds::dist::HealAction::kUnhealable:
      return "unhealable";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcds;
  using graph::NodeId;

  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 80;
  const double side = argc > 2 ? std::strtod(argv[2], nullptr) : 8.0;
  const std::size_t waves = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 12;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 7;

  udg::InstanceParams params;
  params.nodes = nodes;
  params.side = side;
  params.radius = 1.5;
  const auto inst = udg::generate_largest_component_instance(params, seed);
  const auto& g = inst.graph;
  std::cout << "deployment: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " links\n";

  // Construct the initial backbone distributedly, over a channel that
  // drops 10% of messages — ReliableLink makes that loss invisible.
  dist::RunConfig cfg;
  cfg.reliable = true;
  cfg.plan.link.drop = 0.1;
  cfg.plan.seed = seed;
  const auto built = dist::distributed_waf_cds(g, cfg);
  std::cout << "distributed construction: |CDS| = " << built.cds.size()
            << ", " << built.total.rounds << " rounds, "
            << built.total.messages << " messages (10% loss, reliable)\n\n";

  dist::SelfHealingCds healer(g, built.cds);
  std::vector<bool> up(g.num_nodes(), true);
  sim::Rng rng(seed ^ 0x5eed);

  sim::Table table({"wave", "live", "event", "defect", "action", "kept",
                    "added", "|CDS|"});
  for (std::size_t w = 1; w <= waves; ++w) {
    // A wave crashes a handful of live nodes and revives a few dead
    // ones — the fail-stop churn the maintenance loop is built for.
    std::size_t crashed = 0;
    std::size_t revived = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (up[v] && rng.uniform01() < 0.08) {
        up[v] = false;
        ++crashed;
      } else if (!up[v] && rng.uniform01() < 0.3) {
        up[v] = true;
        ++revived;
      }
    }

    const auto report = healer.on_churn(up);
    std::string event = "-";
    event += std::to_string(crashed);
    event += "/+";
    event += std::to_string(revived);
    table.row()
        .add(w)
        .add(report.survivors)
        .add(std::move(event))
        .add(report.issue.ok ? "none" : report.issue.describe())
        .add(action_name(report.action))
        .add(report.kept)
        .add(report.added)
        .add(healer.cds().size());
  }
  table.print(std::cout);
  std::cout << "\n(defect column: the check_cds witness that triggered "
               "healing; 'unhealable' waves left the survivor graph "
               "disconnected, so no CDS of it exists)\n";
  return 0;
}
