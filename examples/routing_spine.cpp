// Routing spine: a CDS doubles as a virtual backbone for routing — only
// spine nodes keep routing state; a packet travels source -> spine ->
// destination. This example measures the hop-count stretch of
// spine-constrained routes against true shortest paths, for the paper's
// greedy CDS and a pruned variant.
//
//   ./routing_spine [nodes] [side] [seed]

#include <cstdlib>
#include <iostream>
#include <limits>
#include <queue>
#include <vector>

#include "baselines/prune.hpp"
#include "core/greedy_connect.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "udg/instance.hpp"

namespace {

using mcds::graph::Graph;
using mcds::graph::NodeId;

/// BFS distance from s to t where every *intermediate* node must satisfy
/// `allowed` (endpoints are always usable). Returns kNoNode-like max if
/// unreachable.
std::size_t constrained_distance(const Graph& g, NodeId s, NodeId t,
                                 const std::vector<bool>& allowed) {
  if (s == t) return 0;
  std::vector<std::size_t> dist(g.num_nodes(),
                                std::numeric_limits<std::size_t>::max());
  std::queue<NodeId> q;
  dist[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] != std::numeric_limits<std::size_t>::max()) continue;
      if (v == t) return dist[u] + 1;
      if (!allowed[v]) continue;  // intermediates must be on the spine
      dist[v] = dist[u] + 1;
      q.push(v);
    }
  }
  return std::numeric_limits<std::size_t>::max();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcds;

  udg::InstanceParams params;
  params.nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 250;
  params.side = argc > 2 ? std::strtod(argv[2], nullptr) : 10.0;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 99;
  const auto inst = udg::generate_largest_component_instance(params, seed);
  const Graph& g = inst.graph;
  std::cout << "Network: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " links\n\n";

  const auto greedy = core::greedy_cds(g, 0);
  const auto pruned = baselines::prune_cds(g, greedy.cds);

  std::vector<bool> spine(g.num_nodes(), false);
  for (const NodeId v : greedy.cds) spine[v] = true;
  std::vector<bool> pruned_spine(g.num_nodes(), false);
  for (const NodeId v : pruned) pruned_spine[v] = true;

  sim::Rng rng(seed ^ 0xABCDEF);
  sim::Accumulator stretch_greedy, stretch_pruned, base_hops;
  std::size_t pairs = 0;
  while (pairs < 300) {
    const auto s = static_cast<NodeId>(rng.uniform_int(g.num_nodes()));
    const auto t = static_cast<NodeId>(rng.uniform_int(g.num_nodes()));
    if (s == t) continue;
    const std::vector<bool> all(g.num_nodes(), true);
    const std::size_t direct = constrained_distance(g, s, t, all);
    const std::size_t via_spine = constrained_distance(g, s, t, spine);
    const std::size_t via_pruned =
        constrained_distance(g, s, t, pruned_spine);
    if (direct == std::numeric_limits<std::size_t>::max()) continue;
    // A CDS spine always admits a route (dominating + connected).
    if (via_spine == std::numeric_limits<std::size_t>::max() ||
        via_pruned == std::numeric_limits<std::size_t>::max()) {
      std::cerr << "ERROR: spine route missing for " << s << "->" << t
                << "\n";
      return 1;
    }
    ++pairs;
    base_hops.add(static_cast<double>(direct));
    stretch_greedy.add(static_cast<double>(via_spine) /
                       static_cast<double>(direct));
    stretch_pruned.add(static_cast<double>(via_pruned) /
                       static_cast<double>(direct));
  }

  sim::Table table({"spine", "spine size", "state kept (%)",
                    "mean stretch", "max stretch"});
  table.row()
      .add("greedy CDS (Sec IV)")
      .add(greedy.cds.size())
      .add(100.0 * static_cast<double>(greedy.cds.size()) /
               static_cast<double>(g.num_nodes()),
           1)
      .add(stretch_greedy.mean(), 3)
      .add(stretch_greedy.max(), 3);
  table.row()
      .add("greedy CDS + pruning")
      .add(pruned.size())
      .add(100.0 * static_cast<double>(pruned.size()) /
               static_cast<double>(g.num_nodes()),
           1)
      .add(stretch_pruned.mean(), 3)
      .add(stretch_pruned.max(), 3);
  table.print(std::cout);

  std::cout << "\nMean shortest-path length over " << pairs
            << " random pairs: " << sim::format_double(base_hops.mean(), 2)
            << " hops. Spine routing trades a small stretch for routing "
               "state on only the spine nodes.\n";
  return 0;
}
