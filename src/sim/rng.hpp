#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

/// \file rng.hpp
/// Deterministic, seed-reproducible random number generation
/// (xoshiro256** seeded via SplitMix64). Every experiment in this
/// repository derives all randomness from an explicit seed so that any
/// table can be regenerated bit-for-bit.

namespace mcds::sim {

/// SplitMix64 step — used for seeding and as a cheap stateless stream.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from \p seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97f4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n). Precondition: n > 0. Uses rejection to
  /// avoid modulo bias.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument("uniform_int: n must be > 0");
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t x;
    do {
      x = (*this)();
    } while (x >= limit);
    return x % n;
  }

  /// Standard normal variate (Marsaglia polar method).
  [[nodiscard]] double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_int(i)]);
    }
  }

  /// Derives an independent child stream for task \p index — avoids
  /// correlated streams when fanning out over seeds.
  [[nodiscard]] static Rng child(std::uint64_t seed,
                                 std::uint64_t index) noexcept {
    std::uint64_t sm = seed;
    const std::uint64_t a = splitmix64(sm);
    sm ^= index * 0xD1B54A32D192ED03ULL;
    const std::uint64_t b = splitmix64(sm);
    return Rng(a ^ (b + index));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace mcds::sim
