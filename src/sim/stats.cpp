#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mcds::sim {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stdev() const noexcept { return std::sqrt(variance()); }

double Accumulator::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stdev() / std::sqrt(static_cast<double>(n_));
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  Accumulator acc;
  for (const double x : xs) acc.add(x);
  s.mean = acc.mean();
  s.stdev = acc.stdev();
  s.min = acc.min();
  s.max = acc.max();
  s.ci95 = acc.ci95_halfwidth();
  s.median = percentile(xs, 0.5);
  return s;
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("percentile: q must be in [0, 1]");
  }
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace mcds::sim
