#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mcds::sim {

P2Quantile::P2Quantile(double q) noexcept
    : q_(std::min(1.0, std::max(0.0, q))) {
  // Desired positions after n observations: 1, 1+2q(n-1)/4... — the
  // canonical P² marker spacing for {min, q/2, q, (1+q)/2, max}.
  inc_[0] = 0.0;
  inc_[1] = q_ / 2.0;
  inc_[2] = q_;
  inc_[3] = (1.0 + q_) / 2.0;
  inc_[4] = 1.0;
}

void P2Quantile::add(double x) noexcept {
  if (n_ < 5) {
    height_[n_++] = x;
    if (n_ == 5) {
      std::sort(height_, height_ + 5);
      for (std::size_t i = 0; i < 5; ++i) {
        want_[i] = 1.0 + 4.0 * inc_[i];
      }
    }
    return;
  }

  // Locate the cell containing x and update the extremes.
  std::size_t k;
  if (x < height_[0]) {
    height_[0] = x;
    k = 0;
  } else if (x >= height_[4]) {
    height_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= height_[k + 1]) ++k;
  }
  for (std::size_t i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) want_[i] += inc_[i];
  ++n_;

  // Nudge the three interior markers toward their desired positions with
  // the piecewise-parabolic (P²) height update, falling back to linear
  // interpolation when the parabola would break marker monotonicity.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = want_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double hp = height_[i + 1] - height_[i];
      const double hm = height_[i] - height_[i - 1];
      const double dp = pos_[i + 1] - pos_[i];
      const double dm = pos_[i] - pos_[i - 1];
      const double parabolic =
          height_[i] + s / (dp + dm) *
                           ((dm + s) * hp / dp + (dp - s) * hm / dm);
      if (height_[i - 1] < parabolic && parabolic < height_[i + 1]) {
        height_[i] = parabolic;
      } else {
        height_[i] += s * (s > 0 ? hp / dp : hm / dm);
      }
      pos_[i] += s;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact small-sample quantile by linear interpolation.
    double sorted[5];
    std::copy(height_, height_ + n_, sorted);
    std::sort(sorted, sorted + n_);
    const double p = q_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(p);
    const std::size_t hi = std::min(lo + 1, n_ - 1);
    return sorted[lo] + (sorted[hi] - sorted[lo]) *
                            (p - static_cast<double>(lo));
  }
  return height_[2];
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  p50_.add(x);
  p95_.add(x);
  p99_.add(x);
}

double Accumulator::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stdev() const noexcept { return std::sqrt(variance()); }

double Accumulator::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stdev() / std::sqrt(static_cast<double>(n_));
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  Accumulator acc;
  for (const double x : xs) acc.add(x);
  s.mean = acc.mean();
  s.stdev = acc.stdev();
  s.min = acc.min();
  s.max = acc.max();
  s.ci95 = acc.ci95_halfwidth();
  s.median = percentile(xs, 0.5);
  s.p50 = s.median;
  s.p95 = percentile(xs, 0.95);
  s.p99 = percentile(xs, 0.99);
  return s;
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("percentile: q must be in [0, 1]");
  }
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace mcds::sim
