#pragma once

#include <span>
#include <vector>

/// \file stats.hpp
/// Summary statistics for experiment outputs (CDS sizes, ratios, message
/// counts). Keeps the bench binaries free of ad-hoc accumulation code.

namespace mcds::sim {

/// Streaming quantile estimator (Jain–Chlamtac P² algorithm): tracks one
/// quantile of an unbounded stream in O(1) space by adjusting five
/// markers with piecewise-parabolic interpolation. Exact for the first
/// five observations; a few-percent estimate afterwards — good enough
/// for the latency tails (p95/p99) the observability layer reports.
class P2Quantile {
 public:
  /// \p q in [0, 1]; out-of-range values are clamped.
  explicit P2Quantile(double q) noexcept;

  void add(double x) noexcept;

  /// Current estimate of the q-quantile (0 while empty; exact for
  /// fewer than 5 observations).
  [[nodiscard]] double value() const noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }

 private:
  double q_;
  double height_[5] = {0, 0, 0, 0, 0};   ///< marker heights
  double pos_[5] = {1, 2, 3, 4, 5};      ///< actual marker positions
  double want_[5] = {1, 1, 1, 1, 1};     ///< desired marker positions
  double inc_[5] = {0, 0, 0, 0, 0};      ///< desired-position increments
  std::size_t n_ = 0;
};

/// Streaming accumulator for min/max/mean/stdev (Welford) plus P² tail
/// quantiles (p50/p95/p99).
class Accumulator {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than 2 observations.
  [[nodiscard]] double variance() const noexcept;

  /// Sample standard deviation.
  [[nodiscard]] double stdev() const noexcept;

  /// Half-width of a ~95% normal confidence interval for the mean.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  /// Streaming quantile estimates (P²; exact below 5 observations).
  [[nodiscard]] double p50() const noexcept { return p50_.value(); }
  [[nodiscard]] double p95() const noexcept { return p95_.value(); }
  [[nodiscard]] double p99() const noexcept { return p99_.value(); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  P2Quantile p50_{0.50};
  P2Quantile p95_{0.95};
  P2Quantile p99_{0.99};
};

/// One-shot summary of a finished sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stdev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double ci95 = 0.0;  ///< half-width of the ~95% CI for the mean
  double p50 = 0.0;   ///< exact quantiles (the sample is fully in hand,
  double p95 = 0.0;   ///< so summarize() sorts instead of estimating)
  double p99 = 0.0;
};

/// Computes a Summary over \p xs (copies for the median sort).
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// q-th percentile (0 <= q <= 1) by linear interpolation.
/// Precondition: non-empty input.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

}  // namespace mcds::sim
