#pragma once

#include <span>
#include <vector>

/// \file stats.hpp
/// Summary statistics for experiment outputs (CDS sizes, ratios, message
/// counts). Keeps the bench binaries free of ad-hoc accumulation code.

namespace mcds::sim {

/// Streaming accumulator for min/max/mean/stdev (Welford).
class Accumulator {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than 2 observations.
  [[nodiscard]] double variance() const noexcept;

  /// Sample standard deviation.
  [[nodiscard]] double stdev() const noexcept;

  /// Half-width of a ~95% normal confidence interval for the mean.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-shot summary of a finished sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stdev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double ci95 = 0.0;  ///< half-width of the ~95% CI for the mean
};

/// Computes a Summary over \p xs (copies for the median sort).
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// q-th percentile (0 <= q <= 1) by linear interpolation.
/// Precondition: non-empty input.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

}  // namespace mcds::sim
