#include "sim/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mcds::sim {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

Table& Table::row() {
  if (!rows_.empty() && rows_.back().size() != headers_.size()) {
    throw std::logic_error("Table: previous row incomplete");
  }
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  if (rows_.empty()) throw std::logic_error("Table: call row() first");
  if (rows_.back().size() >= headers_.size()) {
    throw std::logic_error("Table: row already full");
  }
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::add(std::size_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(width[c])) << cell;
    }
    os << " |\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      if (cells[c].find(',') != std::string::npos ||
          cells[c].find('"') != std::string::npos) {
        os << '"';
        for (const char ch : cells[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cells[c];
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

}  // namespace mcds::sim
