#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// Fixed-width ASCII table and CSV emitters. Every reproduction bench
/// prints its result through this type so all tables share one format.

namespace mcds::sim {

/// A simple column-aligned table. Cells are strings; helpers format
/// numbers consistently.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();

  /// Appends a cell to the current row.
  Table& add(std::string cell);
  Table& add(const char* cell);
  Table& add(double value, int precision = 3);
  Table& add(std::size_t value);
  Table& add(int value);

  /// Number of data rows so far.
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Renders the table with aligned columns and a header separator.
  void print(std::ostream& os) const;

  /// Renders as CSV (RFC-4180-ish; cells containing commas are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
[[nodiscard]] std::string format_double(double value, int precision = 3);

}  // namespace mcds::sim
