#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "geom/vec2.hpp"

/// \file svg.hpp
/// Minimal SVG canvas for rendering deployments, disk neighborhoods and
/// backbones. World coordinates are the plane coordinates of the
/// instance; the canvas flips the y axis (SVG grows downward) and scales
/// to a fixed pixel width.

namespace mcds::viz {

using geom::Vec2;

/// Style for a drawn element. Colors are any SVG color string.
struct Style {
  std::string stroke = "black";
  double stroke_width = 0.02;  ///< in world units
  std::string fill = "none";
  double opacity = 1.0;
};

/// An append-only SVG scene over world coordinates.
class SvgCanvas {
 public:
  /// World-coordinate viewport (lo, hi) rendered at \p pixel_width.
  SvgCanvas(Vec2 lo, Vec2 hi, double pixel_width = 800.0);

  /// Adds a circle of world radius \p r around \p center.
  void circle(Vec2 center, double r, const Style& style);

  /// Adds a dot (filled circle of radius \p r) at \p p.
  void dot(Vec2 p, double r, const std::string& color);

  /// Adds a line segment.
  void segment(Vec2 a, Vec2 b, const Style& style);

  /// Adds a text label anchored at \p p (world units; font size in
  /// world units too).
  void text(Vec2 p, const std::string& label, double size,
            const std::string& color = "black");

  /// Serializes the scene as a complete SVG document.
  void write(std::ostream& os) const;

  /// Writes the scene to \p path. Throws std::runtime_error on I/O
  /// failure.
  void save(const std::string& path) const;

 private:
  [[nodiscard]] Vec2 to_px(Vec2 world) const noexcept;
  [[nodiscard]] double scale_px(double world) const noexcept;

  Vec2 lo_, hi_;
  double pixel_width_;
  double scale_;
  std::vector<std::string> elements_;
};

}  // namespace mcds::viz
