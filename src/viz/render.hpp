#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "viz/svg.hpp"

/// \file render.hpp
/// High-level renderers: a deployed network with its links and backbone,
/// and a packing witness with its disk neighborhood.

namespace mcds::viz {

using graph::Graph;
using graph::NodeId;

/// Rendering options for render_network.
struct NetworkRenderOptions {
  double pixel_width = 900.0;
  bool draw_links = true;
  bool draw_radii = false;       ///< unit disks around backbone nodes
  double margin = 1.2;           ///< world-units margin around the bbox
};

/// Renders \p points with graph links; nodes in \p backbone are drawn
/// large/red, nodes in \p dominators additionally ringed. Any of the
/// two sets may be empty.
[[nodiscard]] SvgCanvas render_network(std::span<const Vec2> points,
                                       const Graph& g,
                                       std::span<const NodeId> backbone,
                                       std::span<const NodeId> dominators,
                                       const NetworkRenderOptions& options = {});

/// Renders a packing instance: unit disks around \p centers plus the
/// independent \p witness points.
[[nodiscard]] SvgCanvas render_packing(std::span<const Vec2> centers,
                                       std::span<const Vec2> witness,
                                       double pixel_width = 900.0);

}  // namespace mcds::viz
