#include "viz/render.hpp"

#include <stdexcept>
#include <vector>

#include "geom/hull.hpp"

namespace mcds::viz {

SvgCanvas render_network(std::span<const Vec2> points, const Graph& g,
                         std::span<const NodeId> backbone,
                         std::span<const NodeId> dominators,
                         const NetworkRenderOptions& options) {
  if (points.size() != g.num_nodes()) {
    throw std::invalid_argument("render_network: point/graph size mismatch");
  }
  if (points.empty()) {
    throw std::invalid_argument("render_network: nothing to render");
  }
  const auto [lo, hi] = geom::bounding_box(points);
  const Vec2 pad{options.margin, options.margin};
  SvgCanvas canvas(lo - pad, hi + pad, options.pixel_width);

  std::vector<bool> in_backbone(points.size(), false);
  for (const NodeId v : backbone) in_backbone.at(v) = true;
  std::vector<bool> in_dominators(points.size(), false);
  for (const NodeId v : dominators) in_dominators.at(v) = true;

  if (options.draw_links) {
    Style link;
    link.stroke = "#c8c8c8";
    link.stroke_width = 0.015;
    for (const auto& [u, v] : g.edges()) canvas.segment(points[u], points[v], link);
  }
  // Backbone-internal links on top, heavier.
  Style spine_link;
  spine_link.stroke = "#d62728";
  spine_link.stroke_width = 0.05;
  for (const auto& [u, v] : g.edges()) {
    if (in_backbone[u] && in_backbone[v]) {
      canvas.segment(points[u], points[v], spine_link);
    }
  }
  if (options.draw_radii) {
    Style radius;
    radius.stroke = "#f0b0b0";
    radius.stroke_width = 0.01;
    for (NodeId v = 0; v < points.size(); ++v) {
      if (in_backbone[v]) canvas.circle(points[v], 1.0, radius);
    }
  }
  for (NodeId v = 0; v < points.size(); ++v) {
    if (in_dominators[v]) {
      Style ring;
      ring.stroke = "#1f77b4";
      ring.stroke_width = 0.04;
      canvas.circle(points[v], 0.16, ring);
    }
    if (in_backbone[v]) {
      canvas.dot(points[v], 0.1, "#d62728");
    } else {
      canvas.dot(points[v], 0.06, "#444444");
    }
  }
  return canvas;
}

SvgCanvas render_packing(std::span<const Vec2> centers,
                         std::span<const Vec2> witness, double pixel_width) {
  if (centers.empty()) {
    throw std::invalid_argument("render_packing: no centers");
  }
  std::vector<Vec2> all(centers.begin(), centers.end());
  all.insert(all.end(), witness.begin(), witness.end());
  const auto [lo, hi] = geom::bounding_box(all);
  const Vec2 pad{1.3, 1.3};
  SvgCanvas canvas(lo - pad, hi + pad, pixel_width);

  Style disk;
  disk.stroke = "#9ecae1";
  disk.stroke_width = 0.02;
  for (const Vec2 c : centers) {
    canvas.circle(c, 1.0, disk);
    canvas.dot(c, 0.05, "#1f77b4");
  }
  for (const Vec2 p : witness) canvas.dot(p, 0.05, "#d62728");
  return canvas;
}

}  // namespace mcds::viz
