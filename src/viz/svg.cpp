#include "viz/svg.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mcds::viz {

namespace {
std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}
}  // namespace

SvgCanvas::SvgCanvas(Vec2 lo, Vec2 hi, double pixel_width)
    : lo_(lo), hi_(hi), pixel_width_(pixel_width) {
  if (!(hi.x > lo.x) || !(hi.y > lo.y)) {
    throw std::invalid_argument("SvgCanvas: degenerate viewport");
  }
  if (!(pixel_width > 0)) {
    throw std::invalid_argument("SvgCanvas: pixel width must be positive");
  }
  scale_ = pixel_width_ / (hi_.x - lo_.x);
}

Vec2 SvgCanvas::to_px(Vec2 world) const noexcept {
  return {(world.x - lo_.x) * scale_, (hi_.y - world.y) * scale_};
}

double SvgCanvas::scale_px(double world) const noexcept {
  return world * scale_;
}

void SvgCanvas::circle(Vec2 center, double r, const Style& style) {
  const Vec2 c = to_px(center);
  std::ostringstream ss;
  ss << "<circle cx=\"" << c.x << "\" cy=\"" << c.y << "\" r=\""
     << scale_px(r) << "\" stroke=\"" << xml_escape(style.stroke)
     << "\" stroke-width=\"" << scale_px(style.stroke_width)
     << "\" fill=\"" << xml_escape(style.fill) << "\" opacity=\""
     << style.opacity << "\"/>";
  elements_.push_back(ss.str());
}

void SvgCanvas::dot(Vec2 p, double r, const std::string& color) {
  Style s;
  s.stroke = "none";
  s.stroke_width = 0.0;
  s.fill = color;
  circle(p, r, s);
}

void SvgCanvas::segment(Vec2 a, Vec2 b, const Style& style) {
  const Vec2 pa = to_px(a), pb = to_px(b);
  std::ostringstream ss;
  ss << "<line x1=\"" << pa.x << "\" y1=\"" << pa.y << "\" x2=\"" << pb.x
     << "\" y2=\"" << pb.y << "\" stroke=\"" << xml_escape(style.stroke)
     << "\" stroke-width=\"" << scale_px(style.stroke_width)
     << "\" opacity=\"" << style.opacity << "\"/>";
  elements_.push_back(ss.str());
}

void SvgCanvas::text(Vec2 p, const std::string& label, double size,
                     const std::string& color) {
  const Vec2 px = to_px(p);
  std::ostringstream ss;
  ss << "<text x=\"" << px.x << "\" y=\"" << px.y << "\" font-size=\""
     << scale_px(size) << "\" fill=\"" << xml_escape(color) << "\">"
     << xml_escape(label) << "</text>";
  elements_.push_back(ss.str());
}

void SvgCanvas::write(std::ostream& os) const {
  const double height = (hi_.y - lo_.y) * scale_;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
     << pixel_width_ << "\" height=\"" << height << "\" viewBox=\"0 0 "
     << pixel_width_ << ' ' << height << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const auto& e : elements_) os << e << '\n';
  os << "</svg>\n";
}

void SvgCanvas::save(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("SvgCanvas::save: cannot open " + path);
  }
  write(file);
  if (!file) {
    throw std::runtime_error("SvgCanvas::save: write failed for " + path);
  }
}

}  // namespace mcds::viz
