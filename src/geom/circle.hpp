#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "geom/vec2.hpp"

/// \file circle.hpp
/// Circles, circle-circle intersection, and arc sampling. These are the
/// primitives behind the paper's geometric constructions (unit disks
/// D_u, boundary circles ∂D_u, and arc points such as the p/q points of
/// Figures 1 and 5).

namespace mcds::geom {

/// A circle given by center and radius. Radius must be >= 0.
struct Circle {
  Vec2 center;
  double radius = 1.0;

  constexpr Circle() = default;
  constexpr Circle(Vec2 c, double r) noexcept : center(c), radius(r) {}

  /// True if \p p lies inside or on the circle (within tolerance).
  [[nodiscard]] bool contains(Vec2 p, double tol = kEps) const noexcept {
    return dist(center, p) <= radius + tol;
  }

  /// True if \p p lies strictly inside the circle (within tolerance).
  [[nodiscard]] bool strictly_contains(Vec2 p,
                                       double tol = kEps) const noexcept {
    return dist(center, p) < radius - tol;
  }

  /// True if \p p lies on the boundary circle (within tolerance).
  [[nodiscard]] bool on_boundary(Vec2 p, double tol = kEps) const noexcept {
    return almost_equal(dist(center, p), radius, tol);
  }

  /// Point on the boundary at the given angle (radians, CCW from +x).
  [[nodiscard]] Vec2 point_at(double radians) const noexcept {
    return from_polar(center, radius, radians);
  }

  /// Area of the disk.
  [[nodiscard]] double area() const noexcept;
};

/// Unit circle/disk centered at \p c — the D_u of the paper.
[[nodiscard]] constexpr Circle unit_disk(Vec2 c) noexcept { return {c, 1.0}; }

/// Intersection points of two circle boundaries.
///
/// Returns 0, 1 (tangency) or 2 points. Coincident circles return empty
/// (the intersection is not a finite point set). For two distinct points
/// the first returned point is the one on the left of the directed line
/// a.center -> b.center.
[[nodiscard]] std::vector<Vec2> intersect(const Circle& a, const Circle& b,
                                          double tol = kEps);

/// The intersection point of ∂D_a and ∂D_b lying on the given \p side of
/// the directed line a.center -> b.center (+1 = left, -1 = right).
/// Empty if the boundaries do not meet in two points.
[[nodiscard]] std::optional<Vec2> circle_circle_point(const Circle& a,
                                                      const Circle& b,
                                                      int side,
                                                      double tol = kEps);

/// True if the two disks overlap (closed disks share a point).
[[nodiscard]] bool disks_overlap(const Circle& a, const Circle& b,
                                 double tol = kEps) noexcept;

/// \p count points evenly spaced (by angle) on the CCW arc of \p c from
/// angle \p a0 to angle \p a1 (a1 may exceed a0 by more than 2*pi is not
/// allowed; if a1 < a0 the arc wraps through a0 + delta with
/// delta = a1 - a0 + 2*pi). Endpoints are included when \p count >= 2.
[[nodiscard]] std::vector<Vec2> arc_points(const Circle& c, double a0,
                                           double a1, int count);

/// Area of the intersection (lens) of two disks.
[[nodiscard]] double lens_area(const Circle& a, const Circle& b) noexcept;

}  // namespace mcds::geom
