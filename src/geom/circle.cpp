#include "geom/circle.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mcds::geom {

double Circle::area() const noexcept {
  return std::numbers::pi * radius * radius;
}

std::vector<Vec2> intersect(const Circle& a, const Circle& b, double tol) {
  const Vec2 d = b.center - a.center;
  const double dd = d.norm();
  if (dd <= tol) return {};  // concentric (coincident or nested): no points
  const double rsum = a.radius + b.radius;
  const double rdiff = std::abs(a.radius - b.radius);
  if (dd > rsum + tol || dd < rdiff - tol) return {};

  // Distance from a.center to the radical line along d.
  const double t = (dd * dd + a.radius * a.radius - b.radius * b.radius) /
                   (2.0 * dd);
  const double h2 = a.radius * a.radius - t * t;
  const Vec2 base = a.center + d * (t / dd);
  if (h2 <= tol * tol) return {base};  // tangency

  const double h = std::sqrt(std::max(0.0, h2));
  const Vec2 off = d.perp() * (h / dd);
  return {base + off, base - off};  // left of a->b first
}

std::optional<Vec2> circle_circle_point(const Circle& a, const Circle& b,
                                        int side, double tol) {
  if (side != 1 && side != -1) {
    throw std::invalid_argument("circle_circle_point: side must be +1 or -1");
  }
  const auto pts = intersect(a, b, tol);
  if (pts.size() != 2) return std::nullopt;
  return side == 1 ? pts[0] : pts[1];
}

bool disks_overlap(const Circle& a, const Circle& b, double tol) noexcept {
  return dist(a.center, b.center) <= a.radius + b.radius + tol;
}

std::vector<Vec2> arc_points(const Circle& c, double a0, double a1,
                             int count) {
  if (count < 0) throw std::invalid_argument("arc_points: negative count");
  double span = a1 - a0;
  if (span < 0) span += 2.0 * std::numbers::pi;
  std::vector<Vec2> out;
  out.reserve(static_cast<std::size_t>(count));
  if (count == 1) {
    out.push_back(c.point_at(a0 + span / 2.0));
    return out;
  }
  for (int i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / (count - 1);
    out.push_back(c.point_at(a0 + span * t));
  }
  return out;
}

double lens_area(const Circle& a, const Circle& b) noexcept {
  const double d = dist(a.center, b.center);
  const double r1 = a.radius, r2 = b.radius;
  if (d >= r1 + r2) return 0.0;
  if (d <= std::abs(r1 - r2)) {
    const double r = std::min(r1, r2);
    return std::numbers::pi * r * r;  // smaller disk fully inside
  }
  const double alpha =
      2.0 * std::acos(std::clamp((d * d + r1 * r1 - r2 * r2) / (2 * d * r1),
                                 -1.0, 1.0));
  const double beta =
      2.0 * std::acos(std::clamp((d * d + r2 * r2 - r1 * r1) / (2 * d * r2),
                                 -1.0, 1.0));
  return 0.5 * r1 * r1 * (alpha - std::sin(alpha)) +
         0.5 * r2 * r2 * (beta - std::sin(beta));
}

}  // namespace mcds::geom
