#pragma once

#include <span>
#include <vector>

#include "geom/vec2.hpp"

/// \file disk_union.hpp
/// The *neighborhood* of a planar point set S is the union of unit disks
/// centered at the points of S (paper, Section I). This type answers
/// membership and sampling queries against such a region, for arbitrary
/// (not just unit) radius.

namespace mcds::geom {

/// Union of equal-radius disks around a fixed set of centers.
/// Membership queries are accelerated with a uniform grid over centers.
class DiskUnion {
 public:
  /// Builds the union of disks of radius \p radius around \p centers.
  /// Preconditions: non-empty centers, radius > 0.
  DiskUnion(std::vector<Vec2> centers, double radius = 1.0);

  /// The disk centers.
  [[nodiscard]] std::span<const Vec2> centers() const noexcept {
    return centers_;
  }

  /// The common disk radius.
  [[nodiscard]] double radius() const noexcept { return radius_; }

  /// True if \p p lies in the closed union (within tolerance).
  [[nodiscard]] bool contains(Vec2 p, double tol = 0.0) const noexcept;

  /// Distance from \p p to the nearest center.
  [[nodiscard]] double nearest_center_distance(Vec2 p) const noexcept;

  /// Index of the nearest center to \p p.
  [[nodiscard]] std::size_t nearest_center(Vec2 p) const noexcept;

  /// Axis-aligned bounding box of the union, as (lo, hi).
  [[nodiscard]] std::pair<Vec2, Vec2> bounding_box() const noexcept;

  /// All grid points with the given \p step that lie inside the union.
  /// Used as the candidate set of the packing optimizer.
  [[nodiscard]] std::vector<Vec2> grid_points_inside(double step) const;

  /// Monte-Carlo estimate of the union's area using \p samples samples
  /// from the deterministic stream seeded by \p seed.
  [[nodiscard]] double estimate_area(std::size_t samples,
                                     std::uint64_t seed) const;

 private:
  [[nodiscard]] std::pair<long, long> cell_of(Vec2 p) const noexcept;

  std::vector<Vec2> centers_;
  double radius_;
  // Uniform grid over centers, cell size = radius, for O(1)-ish lookup.
  double cell_ = 1.0;
  long gx0_ = 0, gy0_ = 0;     // grid origin cell
  long gw_ = 1, gh_ = 1;       // grid extent in cells
  std::vector<std::vector<std::uint32_t>> cells_;
};

}  // namespace mcds::geom
