#pragma once

#include <cmath>
#include <iosfwd>
#include <ostream>

#include "geom/tolerance.hpp"

/// \file vec2.hpp
/// Plain 2-D point/vector type used throughout the library.

namespace mcds::geom {

/// A 2-D point (equivalently, vector). Value-semantic aggregate.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double px, double py) noexcept : x(px), y(py) {}

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator-() const noexcept { return {-x, -y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) noexcept { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) noexcept { x -= o.x; y -= o.y; return *this; }
  constexpr Vec2& operator*=(double s) noexcept { x *= s; y *= s; return *this; }

  constexpr bool operator==(const Vec2&) const = default;

  /// Dot product.
  [[nodiscard]] constexpr double dot(Vec2 o) const noexcept {
    return x * o.x + y * o.y;
  }

  /// 2-D cross product (z-component of the 3-D cross product).
  [[nodiscard]] constexpr double cross(Vec2 o) const noexcept {
    return x * o.y - y * o.x;
  }

  /// Squared Euclidean norm.
  [[nodiscard]] constexpr double norm2() const noexcept { return dot(*this); }

  /// Euclidean norm.
  [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }

  /// Unit vector in the same direction. Precondition: norm() > 0.
  [[nodiscard]] Vec2 normalized() const noexcept {
    const double n = norm();
    return {x / n, y / n};
  }

  /// Counter-clockwise rotation by \p radians.
  [[nodiscard]] Vec2 rotated(double radians) const noexcept {
    const double c = std::cos(radians), s = std::sin(radians);
    return {c * x - s * y, s * x + c * y};
  }

  /// Perpendicular vector (counter-clockwise quarter turn).
  [[nodiscard]] constexpr Vec2 perp() const noexcept { return {-y, x}; }

  /// Angle of this vector in (-pi, pi].
  [[nodiscard]] double angle() const noexcept { return std::atan2(y, x); }
};

inline constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }

/// Squared distance between two points.
[[nodiscard]] constexpr double dist2(Vec2 a, Vec2 b) noexcept {
  return (a - b).norm2();
}

/// Euclidean distance between two points.
[[nodiscard]] inline double dist(Vec2 a, Vec2 b) noexcept {
  return (a - b).norm();
}

/// Linear interpolation: a at t=0, b at t=1.
[[nodiscard]] constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) noexcept {
  return a + (b - a) * t;
}

/// Midpoint of the segment [a, b].
[[nodiscard]] constexpr Vec2 midpoint(Vec2 a, Vec2 b) noexcept {
  return lerp(a, b, 0.5);
}

/// Componentwise approximate equality.
[[nodiscard]] inline bool almost_equal(Vec2 a, Vec2 b,
                                       double tol = kEps) noexcept {
  return almost_equal(a.x, b.x, tol) && almost_equal(a.y, b.y, tol);
}

/// Point built from polar coordinates around a center.
[[nodiscard]] inline Vec2 from_polar(Vec2 center, double radius,
                                     double radians) noexcept {
  return {center.x + radius * std::cos(radians),
          center.y + radius * std::sin(radians)};
}

inline std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace mcds::geom
