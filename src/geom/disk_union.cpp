#include "geom/disk_union.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "geom/hull.hpp"

namespace mcds::geom {

DiskUnion::DiskUnion(std::vector<Vec2> centers, double radius)
    : centers_(std::move(centers)), radius_(radius) {
  if (centers_.empty()) {
    throw std::invalid_argument("DiskUnion: empty center set");
  }
  if (!(radius_ > 0.0)) {
    throw std::invalid_argument("DiskUnion: radius must be positive");
  }
  cell_ = radius_;
  const auto [lo, hi] = geom::bounding_box(centers_);
  gx0_ = static_cast<long>(std::floor(lo.x / cell_));
  gy0_ = static_cast<long>(std::floor(lo.y / cell_));
  gw_ = static_cast<long>(std::floor(hi.x / cell_)) - gx0_ + 1;
  gh_ = static_cast<long>(std::floor(hi.y / cell_)) - gy0_ + 1;
  cells_.assign(static_cast<std::size_t>(gw_ * gh_), {});
  for (std::size_t i = 0; i < centers_.size(); ++i) {
    const auto [cx, cy] = cell_of(centers_[i]);
    cells_[static_cast<std::size_t>((cy - gy0_) * gw_ + (cx - gx0_))]
        .push_back(static_cast<std::uint32_t>(i));
  }
}

std::pair<long, long> DiskUnion::cell_of(Vec2 p) const noexcept {
  return {static_cast<long>(std::floor(p.x / cell_)),
          static_cast<long>(std::floor(p.y / cell_))};
}

bool DiskUnion::contains(Vec2 p, double tol) const noexcept {
  return nearest_center_distance(p) <= radius_ + tol;
}

double DiskUnion::nearest_center_distance(Vec2 p) const noexcept {
  return dist(p, centers_[nearest_center(p)]);
}

std::size_t DiskUnion::nearest_center(Vec2 p) const noexcept {
  // Search grid rings outward from p's cell; a full fallback scan keeps
  // this correct for points far outside the grid.
  const auto [pcx, pcy] = cell_of(p);
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_i = 0;
  for (long ring = 0; ring <= std::max(gw_, gh_) + 1; ++ring) {
    // Once the closest possible point of the next ring is farther than the
    // best found distance, stop.
    if (best < std::numeric_limits<double>::infinity() &&
        (static_cast<double>(ring) - 1.0) * cell_ > best) {
      break;
    }
    bool any_cell = false;
    for (long dy = -ring; dy <= ring; ++dy) {
      for (long dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        const long cx = pcx + dx, cy = pcy + dy;
        if (cx < gx0_ || cx >= gx0_ + gw_ || cy < gy0_ || cy >= gy0_ + gh_) {
          continue;
        }
        any_cell = true;
        for (const std::uint32_t i :
             cells_[static_cast<std::size_t>((cy - gy0_) * gw_ +
                                             (cx - gx0_))]) {
          const double d = dist(p, centers_[i]);
          if (d < best) {
            best = d;
            best_i = i;
          }
        }
      }
    }
    // If the ring fell fully outside the grid and we already have a
    // candidate, growing further cannot help beyond the stop rule above.
    if (!any_cell && ring > std::max(gw_, gh_)) break;
  }
  if (best == std::numeric_limits<double>::infinity()) {
    // Point far outside the grid: linear scan fallback.
    for (std::size_t i = 0; i < centers_.size(); ++i) {
      const double d = dist(p, centers_[i]);
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
  }
  return best_i;
}

std::pair<Vec2, Vec2> DiskUnion::bounding_box() const noexcept {
  const auto [lo, hi] = geom::bounding_box(centers_);
  return {lo - Vec2{radius_, radius_}, hi + Vec2{radius_, radius_}};
}

std::vector<Vec2> DiskUnion::grid_points_inside(double step) const {
  if (!(step > 0.0)) {
    throw std::invalid_argument("grid_points_inside: step must be positive");
  }
  const auto [lo, hi] = bounding_box();
  std::vector<Vec2> out;
  for (double y = lo.y; y <= hi.y + step / 2; y += step) {
    for (double x = lo.x; x <= hi.x + step / 2; x += step) {
      const Vec2 p{x, y};
      if (contains(p)) out.push_back(p);
    }
  }
  return out;
}

double DiskUnion::estimate_area(std::size_t samples, std::uint64_t seed) const {
  if (samples == 0) {
    throw std::invalid_argument("estimate_area: need at least one sample");
  }
  const auto [lo, hi] = bounding_box();
  const double w = hi.x - lo.x, h = hi.y - lo.y;
  // SplitMix64 stream; self-contained to avoid a dependency on mcds_sim.
  std::uint64_t state = seed;
  const auto next01 = [&state]() {
    state += 0x9E3779B97f4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  };
  std::size_t hits = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const Vec2 p{lo.x + w * next01(), lo.y + h * next01()};
    if (contains(p)) ++hits;
  }
  return w * h * static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace mcds::geom
