#pragma once

/// \file tolerance.hpp
/// Numeric tolerances shared by the geometric predicates.
///
/// All geometry in this library operates on coordinates of magnitude
/// O(100) (deployment regions) built from unit-radius disks, so a single
/// absolute epsilon is adequate; we do not need adaptive-precision
/// predicates for the constructions and checks performed here.

namespace mcds::geom {

/// Default absolute tolerance for geometric comparisons.
inline constexpr double kEps = 1e-9;

/// Looser tolerance used when verifying constructions that are themselves
/// parameterized by a small epsilon (e.g. the Figure 1 / Figure 2 tight
/// packing instances of the paper).
inline constexpr double kLooseEps = 1e-6;

/// True if |a - b| <= tol.
[[nodiscard]] constexpr bool almost_equal(double a, double b,
                                          double tol = kEps) noexcept {
  const double d = a - b;
  return (d < 0 ? -d : d) <= tol;
}

}  // namespace mcds::geom
