#pragma once

#include <span>
#include <vector>

#include "geom/vec2.hpp"

/// \file closest.hpp
/// Closest-pair and independence predicates. A point set is *independent*
/// in the paper's sense when all pairwise distances are strictly greater
/// than one (the unit-disk radius).

namespace mcds::geom {

/// Smallest pairwise distance (+infinity for < 2 points). O(n log n)
/// divide and conquer.
[[nodiscard]] double closest_pair_distance(std::span<const Vec2> pts);

/// The pair of indices realizing the closest distance. Precondition:
/// at least two points.
[[nodiscard]] std::pair<std::size_t, std::size_t> closest_pair(
    std::span<const Vec2> pts);

/// True if all pairwise distances are > \p threshold (strictly).
/// This is the paper's independence predicate for threshold = 1.
[[nodiscard]] bool is_independent_point_set(std::span<const Vec2> pts,
                                            double threshold = 1.0);

}  // namespace mcds::geom
