#pragma once

#include <span>
#include <vector>

#include "geom/vec2.hpp"

/// \file hull.hpp
/// Convex hulls, diameters and related global shape queries on point sets.
/// The paper's arc-polygon arguments reduce diameter claims to vertex-set
/// diameters; we provide exact (O(n^2) or hull-based) diameter routines
/// for verifying such claims numerically.

namespace mcds::geom {

/// Convex hull (monotone chain), CCW order, no duplicate endpoint, no
/// collinear interior points. Handles degenerate inputs (empty, single,
/// collinear) by returning the extreme points.
[[nodiscard]] std::vector<Vec2> convex_hull(std::span<const Vec2> pts);

/// Signed area of a simple polygon in CCW order (positive if CCW).
[[nodiscard]] double polygon_area(std::span<const Vec2> poly) noexcept;

/// Largest pairwise distance of a point set (0 for fewer than 2 points).
/// Uses rotating calipers on the convex hull: O(n log n).
[[nodiscard]] double diameter(std::span<const Vec2> pts);

/// Smallest pairwise distance of a point set (+infinity for fewer than
/// 2 points). O(n log n) via a sweep.
[[nodiscard]] double min_pairwise_distance(std::span<const Vec2> pts);

/// Centroid of a point set. Precondition: non-empty.
[[nodiscard]] Vec2 centroid(std::span<const Vec2> pts);

/// Axis-aligned bounding box as (lo, hi). Precondition: non-empty.
[[nodiscard]] std::pair<Vec2, Vec2> bounding_box(std::span<const Vec2> pts);

}  // namespace mcds::geom
