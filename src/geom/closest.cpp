#include "geom/closest.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mcds::geom {

namespace {

struct Indexed {
  Vec2 p;
  std::size_t idx;
};

struct PairResult {
  double d2 = std::numeric_limits<double>::infinity();
  std::size_t i = 0, j = 0;

  void consider(const Indexed& a, const Indexed& b) noexcept {
    const double d = dist2(a.p, b.p);
    if (d < d2) {
      d2 = d;
      i = a.idx;
      j = b.idx;
    }
  }
};

// Classic divide-and-conquer closest pair on points sorted by x;
// `strip` is scratch space for the merge step.
void solve(std::vector<Indexed>& pts, std::size_t lo, std::size_t hi,
           std::vector<Indexed>& strip, PairResult& best) {
  const std::size_t n = hi - lo;
  if (n <= 3) {
    for (std::size_t a = lo; a < hi; ++a) {
      for (std::size_t b = a + 1; b < hi; ++b) {
        best.consider(pts[a], pts[b]);
      }
    }
    std::sort(pts.begin() + static_cast<std::ptrdiff_t>(lo),
              pts.begin() + static_cast<std::ptrdiff_t>(hi),
              [](const Indexed& a, const Indexed& b) { return a.p.y < b.p.y; });
    return;
  }
  const std::size_t mid = lo + n / 2;
  const double mid_x = pts[mid].p.x;
  solve(pts, lo, mid, strip, best);
  solve(pts, mid, hi, strip, best);
  std::inplace_merge(
      pts.begin() + static_cast<std::ptrdiff_t>(lo),
      pts.begin() + static_cast<std::ptrdiff_t>(mid),
      pts.begin() + static_cast<std::ptrdiff_t>(hi),
      [](const Indexed& a, const Indexed& b) { return a.p.y < b.p.y; });

  strip.clear();
  for (std::size_t a = lo; a < hi; ++a) {
    const double dx = pts[a].p.x - mid_x;
    if (dx * dx < best.d2) strip.push_back(pts[a]);
  }
  for (std::size_t a = 0; a < strip.size(); ++a) {
    for (std::size_t b = a + 1; b < strip.size(); ++b) {
      const double dy = strip[b].p.y - strip[a].p.y;
      if (dy * dy >= best.d2) break;
      best.consider(strip[a], strip[b]);
    }
  }
}

PairResult run(std::span<const Vec2> pts) {
  std::vector<Indexed> v;
  v.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) v.push_back({pts[i], i});
  std::sort(v.begin(), v.end(),
            [](const Indexed& a, const Indexed& b) { return a.p.x < b.p.x; });
  std::vector<Indexed> strip;
  strip.reserve(v.size());
  PairResult best;
  solve(v, 0, v.size(), strip, best);
  return best;
}

}  // namespace

double closest_pair_distance(std::span<const Vec2> pts) {
  if (pts.size() < 2) return std::numeric_limits<double>::infinity();
  return std::sqrt(run(pts).d2);
}

std::pair<std::size_t, std::size_t> closest_pair(std::span<const Vec2> pts) {
  if (pts.size() < 2) {
    throw std::invalid_argument("closest_pair: need at least two points");
  }
  const PairResult r = run(pts);
  return {r.i, r.j};
}

bool is_independent_point_set(std::span<const Vec2> pts, double threshold) {
  if (pts.size() < 2) return true;
  return closest_pair_distance(pts) > threshold;
}

}  // namespace mcds::geom
