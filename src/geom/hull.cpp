#include "geom/hull.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "geom/closest.hpp"

namespace mcds::geom {

std::vector<Vec2> convex_hull(std::span<const Vec2> pts) {
  std::vector<Vec2> p(pts.begin(), pts.end());
  std::sort(p.begin(), p.end(), [](Vec2 a, Vec2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  p.erase(std::unique(p.begin(), p.end()), p.end());
  const std::size_t n = p.size();
  if (n <= 2) return p;

  std::vector<Vec2> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower hull
    while (k >= 2 &&
           (hull[k - 1] - hull[k - 2]).cross(p[i] - hull[k - 2]) <= 0.0) {
      --k;
    }
    hull[k++] = p[i];
  }
  for (std::size_t i = n - 1, t = k + 1; i-- > 0;) {  // upper hull
    while (k >= t &&
           (hull[k - 1] - hull[k - 2]).cross(p[i] - hull[k - 2]) <= 0.0) {
      --k;
    }
    hull[k++] = p[i];
  }
  hull.resize(k - 1);
  return hull;
}

double polygon_area(std::span<const Vec2> poly) noexcept {
  const std::size_t n = poly.size();
  if (n < 3) return 0.0;
  double twice = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    twice += poly[i].cross(poly[(i + 1) % n]);
  }
  return 0.5 * twice;
}

double diameter(std::span<const Vec2> pts) {
  if (pts.size() < 2) return 0.0;
  const auto hull = convex_hull(pts);
  const std::size_t m = hull.size();
  if (m == 1) return 0.0;
  if (m == 2) return dist(hull[0], hull[1]);

  // Rotating calipers over antipodal pairs.
  double best = 0.0;
  std::size_t j = 1;
  for (std::size_t i = 0; i < m; ++i) {
    const Vec2 edge = hull[(i + 1) % m] - hull[i];
    while (true) {
      const std::size_t jn = (j + 1) % m;
      if (edge.cross(hull[jn] - hull[j]) > 0.0) {
        j = jn;
      } else {
        break;
      }
    }
    best = std::max(best, dist(hull[i], hull[j]));
    best = std::max(best, dist(hull[(i + 1) % m], hull[j]));
  }
  return best;
}

double min_pairwise_distance(std::span<const Vec2> pts) {
  return closest_pair_distance(pts);
}

Vec2 centroid(std::span<const Vec2> pts) {
  if (pts.empty()) throw std::invalid_argument("centroid: empty point set");
  Vec2 sum;
  for (const Vec2 p : pts) sum += p;
  return sum / static_cast<double>(pts.size());
}

std::pair<Vec2, Vec2> bounding_box(std::span<const Vec2> pts) {
  if (pts.empty()) {
    throw std::invalid_argument("bounding_box: empty point set");
  }
  Vec2 lo{std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
  Vec2 hi = -lo;
  for (const Vec2 p : pts) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  return {lo, hi};
}

}  // namespace mcds::geom
