#include "geom/segment.hpp"

#include <algorithm>

namespace mcds::geom {

Vec2 closest_point(const Segment& s, Vec2 p) noexcept {
  const Vec2 d = s.b - s.a;
  const double len2 = d.norm2();
  if (len2 == 0.0) return s.a;  // degenerate segment
  const double t = std::clamp((p - s.a).dot(d) / len2, 0.0, 1.0);
  return s.a + d * t;
}

double distance(const Segment& s, Vec2 p) noexcept {
  return dist(p, closest_point(s, p));
}

int orientation(Vec2 a, Vec2 b, Vec2 c, double tol) noexcept {
  const double cr = (b - a).cross(c - a);
  if (cr > tol) return 1;
  if (cr < -tol) return -1;
  return 0;
}

namespace {
bool on_segment_collinear(const Segment& s, Vec2 p, double tol) noexcept {
  return p.x >= std::min(s.a.x, s.b.x) - tol &&
         p.x <= std::max(s.a.x, s.b.x) + tol &&
         p.y >= std::min(s.a.y, s.b.y) - tol &&
         p.y <= std::max(s.a.y, s.b.y) + tol;
}
}  // namespace

bool segments_intersect(const Segment& s, const Segment& t,
                        double tol) noexcept {
  const int o1 = orientation(s.a, s.b, t.a, tol);
  const int o2 = orientation(s.a, s.b, t.b, tol);
  const int o3 = orientation(t.a, t.b, s.a, tol);
  const int o4 = orientation(t.a, t.b, s.b, tol);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment_collinear(s, t.a, tol)) return true;
  if (o2 == 0 && on_segment_collinear(s, t.b, tol)) return true;
  if (o3 == 0 && on_segment_collinear(t, s.a, tol)) return true;
  if (o4 == 0 && on_segment_collinear(t, s.b, tol)) return true;
  return false;
}

int side_of_line(Vec2 a, Vec2 b, Vec2 p, double tol) noexcept {
  return orientation(a, b, p, tol);
}

}  // namespace mcds::geom
