#pragma once

#include "geom/vec2.hpp"

/// \file segment.hpp
/// Line segments and point/segment distance queries.

namespace mcds::geom {

/// A closed line segment [a, b].
struct Segment {
  Vec2 a;
  Vec2 b;

  constexpr Segment() = default;
  constexpr Segment(Vec2 pa, Vec2 pb) noexcept : a(pa), b(pb) {}

  /// Segment length.
  [[nodiscard]] double length() const noexcept { return dist(a, b); }

  /// Point at parameter t in [0, 1].
  [[nodiscard]] constexpr Vec2 point_at(double t) const noexcept {
    return lerp(a, b, t);
  }
};

/// Closest point on the segment to \p p.
[[nodiscard]] Vec2 closest_point(const Segment& s, Vec2 p) noexcept;

/// Euclidean distance from \p p to the segment.
[[nodiscard]] double distance(const Segment& s, Vec2 p) noexcept;

/// Orientation of the triple (a, b, c): >0 CCW, <0 CW, 0 collinear
/// (within tolerance).
[[nodiscard]] int orientation(Vec2 a, Vec2 b, Vec2 c,
                              double tol = kEps) noexcept;

/// True if the two closed segments share at least one point.
[[nodiscard]] bool segments_intersect(const Segment& s, const Segment& t,
                                      double tol = kEps) noexcept;

/// Signed side of point \p p relative to the directed line a -> b:
/// +1 left, -1 right, 0 on the line (within tolerance).
[[nodiscard]] int side_of_line(Vec2 a, Vec2 b, Vec2 p,
                               double tol = kEps) noexcept;

}  // namespace mcds::geom
