#pragma once

#include <functional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "obs/obs.hpp"
#include "par/thread_pool.hpp"
#include "sim/stats.hpp"
#include "udg/instance.hpp"

/// \file batch_solver.hpp
/// Batch-throughput engine: fans a corpus of UDG instances across the
/// thread pool, one task per instance, and aggregates the outcomes into
/// sim::Summary statistics. Every sweep-style experiment in the repo
/// (ratio tables, ablations, scaling curves) has this shape — solve
/// many independent instances, summarize — so the engine is shared
/// rather than re-grown per bench.
///
/// Determinism contract: outcomes are written to index-aligned slots
/// and summarized in index order, and each per-instance solve is itself
/// deterministic, so the full BatchResult (outcomes and every Summary
/// field) is bit-identical at any worker count. Only wall_seconds and
/// the pool gauges vary run to run; the determinism regression test
/// pins everything else across 1/2/8 threads.

namespace mcds::par {

/// Per-instance output of a batch solve. A solve that threw is recorded
/// in place (failed/error) instead of poisoning the batch: every other
/// slot is bit-identical to a clean run.
struct BatchOutcome {
  std::vector<graph::NodeId> cds;  ///< the backbone, ascending node id
  std::size_t dominators = 0;      ///< phase-1 MIS size (0 if not phased)
  std::size_t nodes = 0;           ///< instance size, for ratios
  bool failed = false;             ///< the solver threw on this instance
  std::string error;               ///< what() of the escaped exception
};

/// The per-instance solver. Must be deterministic and thread-safe for
/// concurrent calls on distinct instances.
using BatchSolveFn =
    std::function<BatchOutcome(const udg::UdgInstance&)>;

/// Aggregated result of one batch run. Summaries cover the successful
/// outcomes only (in corpus order), so they stay thread-count invariant
/// whether or not some instances failed.
struct BatchResult {
  std::vector<BatchOutcome> outcomes;  ///< index-aligned with the corpus
  std::size_t failed = 0;              ///< outcomes with failed == true
  sim::Summary cds_size;               ///< over |cds|
  sim::Summary dominators;             ///< over phase-1 MIS sizes
  sim::Summary backbone_fraction;      ///< over |cds| / nodes
  double wall_seconds = 0.0;  ///< measured, NOT part of the determinism
                              ///< contract
};

/// Fans instance solves across a ThreadPool and aggregates summaries.
class BatchSolver {
 public:
  /// The pool is borrowed and may be reused across batches. \p obs
  /// (null sinks by default) receives the pool gauges ("par.pool.*")
  /// plus "par.batch.instances" after each solve().
  explicit BatchSolver(ThreadPool& pool, const obs::Obs& obs = {})
      : pool_(&pool), obs_(obs) {}

  /// Solves every instance of \p corpus with \p solver. Instances are
  /// independent tasks and failures are contained per slot: an
  /// exception escaping one solve marks only that outcome failed (with
  /// the exception's what() as its structured error) and every other
  /// slot is bit-identical to a clean run — the error-containment
  /// differential test proves this at 1/2/8 threads.
  [[nodiscard]] BatchResult solve(std::span<const udg::UdgInstance> corpus,
                                  const BatchSolveFn& solver) const;

 private:
  ThreadPool* pool_;
  obs::Obs obs_;
};

/// Built-in solver: the paper's Section IV greedy (BFS first-fit MIS +
/// max-gain connectors), rooted at node 0.
[[nodiscard]] BatchOutcome solve_greedy(const udg::UdgInstance& inst);

/// Built-in solver: the WAF two-phased algorithm, rooted at node 0.
[[nodiscard]] BatchOutcome solve_waf(const udg::UdgInstance& inst);

/// Generates \p count connected random-UDG instances with seeds
/// seed0, seed0+1, ... (largest-component fallback), the corpus shape
/// used by the determinism regression and the batch benchmarks.
[[nodiscard]] std::vector<udg::UdgInstance> make_corpus(
    const udg::InstanceParams& params, std::size_t count,
    std::uint64_t seed0);

}  // namespace mcds::par
