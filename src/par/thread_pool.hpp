#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

/// \file thread_pool.hpp
/// A fixed-size work-stealing thread pool. Tasks are assigned to worker
/// queues round-robin in submission order (deterministic placement); an
/// idle worker first drains its own queue FIFO, then steals from the
/// back of a sibling's queue. Determinism of *results* is the caller's
/// contract: parallel_for and BatchSolver write every task's output to
/// a slot indexed by the task's position, so aggregation order never
/// depends on execution interleaving — the same inputs produce
/// bit-identical outputs at any worker count.
///
/// Instrumentation is exported on demand via publish(): pool queue
/// depth, total executed/stolen task counts, and per-worker busy time
/// land in an obs::MetricsRegistry as "par.pool.*" gauges. The pool
/// only touches the registry inside publish() (callers invoke it from
/// one thread at a quiesce point); the hot-path counters are atomics.

namespace mcds::par {

class ThreadPool {
 public:
  /// Spawns \p threads workers. 0 means "auto": the MCDS_THREADS
  /// environment override if set, otherwise hardware_concurrency(),
  /// which is itself guarded — a platform reporting 0 cores yields one
  /// worker, never zero.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues \p task on the next worker queue (round-robin). Tasks
  /// should not let exceptions escape; if one does, the first escaped
  /// exception is rethrown by wait_idle() as a safety net (use
  /// parallel_for for deterministic per-index exception reporting).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first escaped task exception, if any.
  void wait_idle();

  /// Point-in-time pool statistics (read when quiescent for exactness).
  struct Stats {
    std::uint64_t executed = 0;           ///< tasks run to completion
    std::uint64_t stolen = 0;             ///< tasks taken from a sibling
    std::size_t pending = 0;              ///< submitted, not yet finished
    std::size_t peak_pending = 0;         ///< high-water queue depth
    std::vector<std::uint64_t> busy_ns;   ///< per-worker task time
  };
  [[nodiscard]] Stats stats() const;

  /// Writes the stats as "par.pool.*" gauges: queue_depth,
  /// peak_queue_depth, steals, executed, workers, and per-worker
  /// worker<i>.busy_ns. Call from one thread, ideally when idle.
  void publish(obs::MetricsRegistry& registry) const;

  /// The worker count an auto-configured pool would use: MCDS_THREADS
  /// (when set to a positive integer) > hardware_concurrency() > 1.
  [[nodiscard]] static std::size_t default_threads();

 private:
  struct Worker {
    std::deque<std::function<void()>> queue;
    std::atomic<std::uint64_t> busy_ns{0};
  };

  void worker_loop(std::size_t self);
  /// Pops the next task: own queue front, else steal from a sibling's
  /// back (scanning from self+1 so victims differ per worker).
  bool try_pop(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  mutable std::mutex mu_;            ///< guards queues + stop flag
  std::condition_variable cv_work_;  ///< task available or stopping
  std::condition_variable cv_idle_;  ///< pending_ hit zero
  std::size_t next_queue_ = 0;       ///< round-robin submission cursor
  std::size_t pending_ = 0;
  std::size_t peak_pending_ = 0;
  bool stop_ = false;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::exception_ptr first_error_;  ///< guarded by mu_
};

/// Splits [0, n) into ordered chunks of at most \p grain indices and
/// runs `fn(begin, end, chunk_index)` for each on the pool. Blocks until
/// every chunk finishes. Chunk boundaries depend only on (n, grain), so
/// per-chunk outputs indexed by chunk_index merge deterministically at
/// any worker count. If chunks throw, the exception from the *lowest*
/// chunk index is rethrown (again independent of scheduling). A nullptr
/// pool or a single-worker shortcut runs inline on the caller.
template <class Fn>
void parallel_for(ThreadPool* pool, std::size_t n, std::size_t grain,
                  Fn&& fn) {
  if (grain == 0) grain = 1;
  const std::size_t chunks = n == 0 ? 0 : (n - 1) / grain + 1;
  if (chunks == 0) return;
  if (pool == nullptr || pool->size() <= 1 || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * grain;
      fn(begin, std::min(n, begin + grain), c);
    }
    return;
  }
  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
    std::vector<std::exception_ptr> errors;
  } join{.mu = {}, .cv = {}, .remaining = chunks, .errors = {}};
  join.errors.resize(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    pool->submit([&join, &fn, c, grain, n] {
      try {
        const std::size_t begin = c * grain;
        fn(begin, std::min(n, begin + grain), c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(join.mu);
        join.errors[c] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(join.mu);
      if (--join.remaining == 0) join.cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(join.mu);
  join.cv.wait(lock, [&join] { return join.remaining == 0; });
  for (const auto& err : join.errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace mcds::par
