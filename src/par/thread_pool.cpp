#include "par/thread_pool.hpp"

#include <chrono>
#include <cstdlib>
#include <string>

namespace mcds::par {

std::size_t ThreadPool::default_threads() {
  if (const char* env = std::getenv("MCDS_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;  // hardware_concurrency() may report 0
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers_[next_queue_]->queue.push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % workers_.size();
    ++pending_;
    if (pending_ > peak_pending_) peak_pending_ = pending_;
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    const std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  // Caller holds mu_. Own queue first (FIFO keeps early-submitted work
  // early), then scan siblings from self+1 and steal from their backs.
  auto& own = workers_[self]->queue;
  if (!own.empty()) {
    out = std::move(own.front());
    own.pop_front();
    return true;
  }
  const std::size_t k = workers_.size();
  for (std::size_t d = 1; d < k; ++d) {
    auto& victim = workers_[(self + d) % k]->queue;
    if (!victim.empty()) {
      out = std::move(victim.back());
      victim.pop_back();
      stolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      lock.unlock();
      const auto start = std::chrono::steady_clock::now();
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> guard(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      workers_[self]->busy_ns.fetch_add(static_cast<std::uint64_t>(ns),
                                        std::memory_order_relaxed);
      executed_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
      if (--pending_ == 0) cv_idle_.notify_all();
      continue;
    }
    if (stop_) return;
    cv_work_.wait(lock);
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.executed = executed_.load(std::memory_order_relaxed);
  s.stolen = stolen_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.pending = pending_;
    s.peak_pending = peak_pending_;
  }
  s.busy_ns.reserve(workers_.size());
  for (const auto& w : workers_) {
    s.busy_ns.push_back(w->busy_ns.load(std::memory_order_relaxed));
  }
  return s;
}

void ThreadPool::publish(obs::MetricsRegistry& registry) const {
  const Stats s = stats();
  registry.gauge("par.pool.workers").set(static_cast<double>(size()));
  registry.gauge("par.pool.queue_depth").set(static_cast<double>(s.pending));
  registry.gauge("par.pool.peak_queue_depth")
      .set(static_cast<double>(s.peak_pending));
  registry.gauge("par.pool.steals").set(static_cast<double>(s.stolen));
  registry.gauge("par.pool.executed").set(static_cast<double>(s.executed));
  for (std::size_t i = 0; i < s.busy_ns.size(); ++i) {
    registry.gauge("par.pool.worker" + std::to_string(i) + ".busy_ns")
        .set(static_cast<double>(s.busy_ns[i]));
  }
}

}  // namespace mcds::par
