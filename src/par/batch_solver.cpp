#include "par/batch_solver.hpp"

#include <chrono>

#include "core/greedy_connect.hpp"
#include "core/waf.hpp"

namespace mcds::par {

BatchResult BatchSolver::solve(std::span<const udg::UdgInstance> corpus,
                               const BatchSolveFn& solver) const {
  const auto start = std::chrono::steady_clock::now();
  BatchResult r;
  r.outcomes.resize(corpus.size());
  // One task per instance: instance solves dominate task overhead by
  // orders of magnitude, and per-instance granularity gives the stealer
  // the most slack on skewed corpora.
  parallel_for(pool_, corpus.size(), 1,
               [&corpus, &r, &solver](std::size_t begin, std::size_t end,
                                      std::size_t /*chunk*/) {
                 for (std::size_t i = begin; i < end; ++i) {
                   // Containment boundary: a throwing solve poisons its
                   // own slot only. The catch writes a fresh outcome, so
                   // partial writes by the solver cannot leak through.
                   try {
                     r.outcomes[i] = solver(corpus[i]);
                   } catch (const std::exception& e) {
                     r.outcomes[i] = BatchOutcome{};
                     r.outcomes[i].failed = true;
                     r.outcomes[i].error = e.what();
                     r.outcomes[i].nodes = corpus[i].graph.num_nodes();
                   } catch (...) {
                     r.outcomes[i] = BatchOutcome{};
                     r.outcomes[i].failed = true;
                     r.outcomes[i].error = "unknown exception";
                     r.outcomes[i].nodes = corpus[i].graph.num_nodes();
                   }
                 }
               });

  // Aggregate strictly in corpus order: summarize() over index-ordered
  // observations is what makes the Summary fields thread-count
  // invariant. Failed slots are skipped, not zero-filled — a failure
  // must not drag the corpus statistics.
  std::vector<double> sizes, doms, fracs;
  sizes.reserve(r.outcomes.size());
  doms.reserve(r.outcomes.size());
  fracs.reserve(r.outcomes.size());
  for (const BatchOutcome& o : r.outcomes) {
    if (o.failed) {
      ++r.failed;
      continue;
    }
    sizes.push_back(static_cast<double>(o.cds.size()));
    doms.push_back(static_cast<double>(o.dominators));
    fracs.push_back(o.nodes == 0 ? 0.0
                                 : static_cast<double>(o.cds.size()) /
                                       static_cast<double>(o.nodes));
  }
  r.cds_size = sim::summarize(sizes);
  r.dominators = sim::summarize(doms);
  r.backbone_fraction = sim::summarize(fracs);
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  if (obs_.metrics) {
    obs_.metrics->gauge("par.batch.instances")
        .set(static_cast<double>(corpus.size()));
    if (r.failed > 0) obs_.metrics->counter("par.batch.failed").add(r.failed);
    obs_.metrics->gauge("par.batch.wall_seconds").set(r.wall_seconds);
    pool_->publish(*obs_.metrics);
  }
  return r;
}

BatchOutcome solve_greedy(const udg::UdgInstance& inst) {
  auto result = core::greedy_cds(inst.graph, 0);
  BatchOutcome o;
  o.cds = std::move(result.cds);
  o.dominators = result.phase1.mis.size();
  o.nodes = inst.graph.num_nodes();
  return o;
}

BatchOutcome solve_waf(const udg::UdgInstance& inst) {
  auto result = core::waf_cds(inst.graph, 0);
  BatchOutcome o;
  o.cds = std::move(result.cds);
  o.dominators = result.phase1.mis.size();
  o.nodes = inst.graph.num_nodes();
  return o;
}

std::vector<udg::UdgInstance> make_corpus(const udg::InstanceParams& params,
                                          std::size_t count,
                                          std::uint64_t seed0) {
  std::vector<udg::UdgInstance> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    corpus.push_back(
        udg::generate_largest_component_instance(params, seed0 + i));
  }
  return corpus;
}

}  // namespace mcds::par
