#pragma once

#include <string>
#include <string_view>

#include "dist/fault.hpp"

/// \file fault_json.hpp
/// JSON serialization for FaultPlan, so a fuzzer-minimized failing plan
/// is a file: the chaos harness prints it next to the seed, `mcds_cli
/// dist --fault-plan plan.json` replays it, and save/load round-trips
/// exactly (integers verbatim; rates at max_digits10). The format is a
/// single object with optional fields
///
///   {"seed": 42,
///    "link": {"drop": 0.1, "duplicate": 0, "max_delay": 2},
///    "overrides": [{"from": 0, "to": 1, "drop": 0.5, ...}],
///    "schedule": [{"round": 3, "node": 7, "up": false}],
///    "partitions": [{"round": 5, "groups": [[0, 1], [2, 3]]}]}
///
/// parsed by a strict hand-rolled reader (no third-party dependency);
/// unknown keys are rejected so a typo'd field fails loudly instead of
/// silently running the trivial plan.

namespace mcds::dist {

/// Serializes \p plan to a self-contained JSON object (no trailing
/// newline). Fields whose value equals the default are still written —
/// repro files should be explicit.
[[nodiscard]] std::string to_json(const FaultPlan& plan);

/// Parses a plan serialized by to_json (or written by hand). Throws
/// std::invalid_argument naming the offending construct on malformed
/// JSON, unknown keys, wrong types, or a plan failing
/// FaultPlan::validate().
[[nodiscard]] FaultPlan fault_plan_from_json(std::string_view json);

/// Writes to_json(plan) (plus a trailing newline) to \p path. Throws
/// std::runtime_error when the file cannot be written.
void save_fault_plan(const FaultPlan& plan, const std::string& path);

/// Reads and parses \p path. Throws std::runtime_error when the file
/// cannot be read, std::invalid_argument when it does not parse.
[[nodiscard]] FaultPlan load_fault_plan(const std::string& path);

}  // namespace mcds::dist
