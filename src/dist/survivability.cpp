#include "dist/survivability.hpp"

#include <algorithm>
#include <stdexcept>

#include "dist/maintenance.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "obs/export.hpp"

namespace mcds::dist {

namespace {

/// Verdict on the un-healed backbone against one (topology, liveness)
/// snapshot. Crashed members are simply absent; nothing is repaired.
struct EventEval {
  bool dominated = true;
  bool connected = true;
  double coverage = 1.0;
};

EventEval evaluate_unhealed(const Graph& g, const std::vector<bool>& up,
                            const std::vector<std::uint8_t>& in_backbone) {
  EventEval eval;
  std::vector<NodeId> live;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (up[v]) live.push_back(v);
  }
  if (live.empty()) return eval;

  // Coverage sweep: live non-members with a live member neighbor.
  std::size_t outside = 0;
  std::size_t covered = 0;
  for (const NodeId v : live) {
    if (in_backbone[v]) continue;
    ++outside;
    for (const NodeId u : g.neighbors(v)) {
      if (up[u] && in_backbone[u]) {
        ++covered;
        break;
      }
    }
  }
  if (outside > 0) {
    eval.coverage =
        static_cast<double>(covered) / static_cast<double>(outside);
  }
  eval.dominated = covered == outside;

  // Member connectivity per survivor component: the live members inside
  // each component of G[live] must induce one connected piece. A
  // memberless component holding any non-member already failed the
  // coverage sweep above (its nodes have no live member neighbor).
  const auto sub = graph::induced_subgraph(g, live);
  const auto [comp, num_comps] = graph::connected_components(sub.graph);
  std::vector<std::vector<NodeId>> members_of(num_comps);
  for (NodeId i = 0; i < sub.mapping.size(); ++i) {
    if (in_backbone[sub.mapping[i]]) members_of[comp[i]].push_back(i);
  }
  for (const auto& members : members_of) {
    if (members.size() < 2) continue;
    if (graph::count_components_subset(sub.graph, members) > 1) {
      eval.connected = false;
      break;
    }
  }
  return eval;
}

void record_event(SurvivabilityReport& report, std::size_t event_idx,
                  const EventEval& eval) {
  report.min_coverage = std::min(report.min_coverage, eval.coverage);
  if (!eval.dominated && report.first_domination_loss == 0) {
    report.first_domination_loss = event_idx;
  }
  if (!eval.connected && report.first_disconnection == 0) {
    report.first_disconnection = event_idx;
  }
}

void record_heal(SurvivabilityReport& report, const HealReport& heal) {
  if (heal.action != HealAction::kIntact) {
    ++report.heal_passes;
    report.heal_added += heal.added;
  }
}

}  // namespace

SurvivabilityReport survive_fault_plan(const Graph& g,
                                       const SurvivabilityVariant& variant,
                                       const FaultPlan& plan,
                                       const obs::Obs& obs) {
  plan.validate();
  SurvivabilityReport report;
  report.name = variant.name;
  report.params = variant.params;
  const core::KmCdsResult built =
      core::kmcds(g, variant.params, variant.root, obs);
  report.backbone_size = built.backbone.size();
  std::vector<std::uint8_t> in_backbone(g.num_nodes(), 0);
  for (const NodeId v : built.backbone) in_backbone[v] = 1;

  std::vector<bool> up(g.num_nodes(), true);
  SelfHealingCds healer(g, built.backbone, {}, obs);
  for (const CrashEvent& event : plan.schedule) {
    if (event.node >= g.num_nodes()) {
      throw std::invalid_argument("survive_fault_plan: event node range");
    }
    up[event.node] = event.up;
    ++report.events;
    record_event(report, report.events, evaluate_unhealed(g, up, in_backbone));
    record_heal(report, healer.on_churn(up));
    obs::tick_snapshot(obs);
  }
  return report;
}

SurvivabilityReport survive_churn(const Graph& initial,
                                  std::span<const udg::ChurnEpoch> epochs,
                                  const SurvivabilityVariant& variant,
                                  const obs::Obs& obs) {
  SurvivabilityReport report;
  report.name = variant.name;
  report.params = variant.params;
  const core::KmCdsResult built =
      core::kmcds(initial, variant.params, variant.root, obs);
  report.backbone_size = built.backbone.size();
  std::vector<std::uint8_t> in_backbone(initial.num_nodes(), 0);
  for (const NodeId v : built.backbone) in_backbone[v] = 1;

  // The healer's state across epochs is the healed backbone itself; the
  // driver is re-seeded per epoch because the topology moved under it.
  std::vector<NodeId> healed = built.backbone;
  for (const udg::ChurnEpoch& epoch : epochs) {
    if (epoch.topology.num_nodes() != initial.num_nodes()) {
      throw std::invalid_argument("survive_churn: epoch node count mismatch");
    }
    ++report.events;
    record_event(report, report.events,
                 evaluate_unhealed(epoch.topology, epoch.up, in_backbone));
    SelfHealingCds healer(epoch.topology, std::move(healed), {}, obs);
    record_heal(report, healer.on_churn(epoch.up));
    healed = healer.cds();
    obs::tick_snapshot(obs);
  }
  return report;
}

namespace {

bool survives_every_single_crash(const Graph& g,
                                 std::span<const NodeId> backbone,
                                 bool check_domination) {
  std::vector<std::uint8_t> in_backbone(g.num_nodes(), 0);
  for (const NodeId v : backbone) {
    if (v >= g.num_nodes()) {
      throw std::invalid_argument("survivability: backbone node range");
    }
    in_backbone[v] = 1;
  }
  std::vector<bool> up(g.num_nodes(), true);
  for (const NodeId v : backbone) {
    up[v] = false;
    const EventEval eval = evaluate_unhealed(g, up, in_backbone);
    up[v] = true;
    if (check_domination ? !eval.dominated : !eval.connected) return false;
  }
  return true;
}

}  // namespace

bool dominates_after_any_single_member_crash(const Graph& g,
                                             std::span<const NodeId> backbone) {
  return survives_every_single_crash(g, backbone, /*check_domination=*/true);
}

bool connected_after_any_single_member_crash(const Graph& g,
                                             std::span<const NodeId> backbone) {
  return survives_every_single_crash(g, backbone, /*check_domination=*/false);
}

}  // namespace mcds::dist
