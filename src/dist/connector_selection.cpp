#include "dist/connector_selection.hpp"

#include <stdexcept>

#include "dist/reliable_link.hpp"
#include "graph/traversal.hpp"

namespace mcds::dist {

namespace {

// Message types.
constexpr std::int32_t kReport = 1;  ///< a = #dominator neighbors
constexpr std::int32_t kElect = 2;   ///< leader -> s
constexpr std::int32_t kIAmS = 3;    ///< s -> neighbors
constexpr std::int32_t kInvite = 4;  ///< dominator -> parent
constexpr std::int32_t kAccept = 5;  ///< connector -> neighbors

class ConnectorProtocol final : public Protocol {
 public:
  // The protocol is round-indexed: reports are in after one delivery
  // window, s's announcement after three. phase_len is that window — 1
  // in the synchronous model, reliable_delivery_bound() under a
  // reliable link. strict preserves the fault-free contract (a leader
  // hearing no reports is a logic error); non-strict runs fizzle
  // instead, leaving s unelected.
  ConnectorProtocol(Transport& rt, NodeId leader,
                    const std::vector<NodeId>& parent,
                    const std::vector<bool>& in_mis,
                    std::size_t phase_len = 1, bool strict = true)
      : rt_(rt),
        leader_(leader),
        parent_(parent),
        in_mis_(in_mis),
        covered_by_s_(rt.topology().num_nodes(), 0),
        connector_(rt.topology().num_nodes(), 0),
        phase_len_(phase_len),
        strict_(strict) {}

  void start(NodeId self) override {
    // Leader's neighbors report their dominator coverage.
    if (rt_.topology().has_edge(self, leader_)) {
      std::int64_t count = 0;
      for (const NodeId w : rt_.topology().neighbors(self)) {
        if (in_mis_[w]) ++count;
      }
      rt_.send(self, leader_, Message{0, kReport, count, 0});
    }
  }

  void on_round_begin() override { ++round_; }

  void step(NodeId self, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      switch (m.type) {
        case kReport:
          // Leader picks the best reporter (max count, then min id).
          // Only the leader receives reports, so this cross-node field
          // has a single writer even under parallel rounds.
          if (best_ == graph::kNoNode || m.a > best_count_ ||
              (m.a == best_count_ && m.from < best_)) {
            best_ = m.from;
            best_count_ = m.a;
          }
          break;
        case kElect:
          s_ = self;
          connector_[self] = 1;
          rt_.broadcast(self, Message{0, kIAmS, 0, 0});
          break;
        case kIAmS:
          covered_by_s_[self] = 1;
          break;
        case kInvite:
          if (!connector_[self]) {
            connector_[self] = 1;
            rt_.broadcast(self, Message{0, kAccept, 0, 0});
          }
          break;
        case kAccept:
          break;  // informational
        default:
          throw std::logic_error("connector protocol: unknown message");
      }
    }

    // Round phase_len: all reports are in; the leader elects s.
    if (self == leader_ && round_ == phase_len_) {
      if (best_ == graph::kNoNode) {
        if (strict_) {
          throw std::logic_error(
              "connector protocol: leader heard no reports");
        }
      } else {
        rt_.send(self, best_, Message{0, kElect, 0, 0});
      }
    }
    // Round 3 * phase_len: IAmS announcements have been processed above;
    // dominators not covered by s (and not the leader itself) invite
    // their parents.
    if (round_ == 3 * phase_len_ && in_mis_[self] && self != leader_ &&
        !covered_by_s_[self]) {
      if (strict_ || (parent_[self] != graph::kNoNode &&
                      rt_.topology().has_edge(self, parent_[self]))) {
        rt_.send(self, parent_[self], Message{0, kInvite, 0, 0});
      }
    }
  }

  /// Keeps the runtime ticking through the stretched phase gaps; with
  /// phase_len == 1 the synchronous traffic pattern already spans every
  /// round, so the original quiescence rule is preserved exactly.
  [[nodiscard]] bool idle() const override {
    return phase_len_ == 1 || round_ >= 3 * phase_len_;
  }

  [[nodiscard]] NodeId s() const { return s_; }
  [[nodiscard]] const std::vector<std::uint8_t>& connectors() const {
    return connector_;
  }

 private:
  Transport& rt_;
  NodeId leader_;
  const std::vector<NodeId>& parent_;
  const std::vector<bool>& in_mis_;
  // Byte flags (not vector<bool>) so concurrent steps write disjoint
  // bytes.
  std::vector<std::uint8_t> covered_by_s_;
  std::vector<std::uint8_t> connector_;
  NodeId best_ = graph::kNoNode;
  std::int64_t best_count_ = -1;
  NodeId s_ = graph::kNoNode;
  std::size_t round_ = 0;
  std::size_t phase_len_ = 1;
  bool strict_ = true;
};

void assemble(const Graph& g, const ConnectorProtocol& protocol,
              const std::vector<bool>& in_mis, ConnectorResult& out) {
  out.s = protocol.s();
  const auto& conn = protocol.connectors();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (conn[v] != 0 && !in_mis[v]) out.connectors.push_back(v);
    if (conn[v] != 0 || in_mis[v]) out.cds.push_back(v);
  }
}

}  // namespace

ConnectorResult select_connectors(const Graph& g, NodeId leader,
                                  const std::vector<NodeId>& parent,
                                  const std::vector<bool>& in_mis) {
  if (g.num_nodes() < 2) {
    throw std::invalid_argument("select_connectors: need >= 2 nodes");
  }
  if (parent.size() != g.num_nodes() || in_mis.size() != g.num_nodes()) {
    throw std::invalid_argument("select_connectors: input size mismatch");
  }
  Runtime rt(g);
  ConnectorProtocol protocol(rt, leader, parent, in_mis);
  ConnectorResult out;
  out.stats = rt.run(protocol);
  assemble(g, protocol, in_mis, out);
  return out;
}

ConnectorResult select_connectors(const Graph& g, NodeId leader,
                                  const std::vector<NodeId>& parent,
                                  const std::vector<bool>& in_mis,
                                  const RunConfig& cfg,
                                  std::size_t round_offset) {
  if (g.num_nodes() < 2) {
    throw std::invalid_argument("select_connectors: need >= 2 nodes");
  }
  if (parent.size() != g.num_nodes() || in_mis.size() != g.num_nodes()) {
    throw std::invalid_argument("select_connectors: input size mismatch");
  }
  FaultHarness h(g, cfg, round_offset, "connector_selection");
  const std::size_t phase_len =
      cfg.reliable ? reliable_delivery_bound(cfg.link) : 1;
  ConnectorProtocol protocol(h.net(), leader, parent, in_mis, phase_len,
                             /*strict=*/false);
  ConnectorResult out;
  out.stats = h.run(protocol);
  assemble(g, protocol, in_mis, out);
  out.complete = protocol.s() != graph::kNoNode;
  return out;
}

}  // namespace mcds::dist
