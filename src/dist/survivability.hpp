#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/kmcds.hpp"
#include "dist/fault.hpp"
#include "udg/mobility.hpp"

/// \file survivability.hpp
/// Crash-survival harness for the (k,m)-CDS family: drive one backbone
/// variant through a seeded fault timeline — a dist::FaultPlan crash
/// schedule on a static topology, or a udg::churn_schedule trace where
/// mobility rewires the graph while nodes crash and recover — and
/// measure how long the *un-healed* backbone stays valid, how much
/// coverage it retains at its worst, and what a reactive
/// SelfHealingCds driven over the same timeline pays in recruits. The
/// E27 experiment tabulates these numbers for plain CDS vs (1,2),
/// (2,1) and (2,2): m >= 2 keeps domination through the first crash by
/// construction, k = 2 keeps connectivity, and the plain (1,1)
/// backbone shows why repair-after-break needs the healer at all.

namespace mcds::dist {

/// One backbone under test: a display name plus the (k,m) it is built
/// with ((1,1) = the paper's plain CDS over the same engine).
struct SurvivabilityVariant {
  std::string name;
  core::KmParams params;
  NodeId root = 0;  ///< phase-1 BFS root
};

/// Outcome of one (variant, timeline) run. "Invalid" is judged on the
/// original backbone with crashed members removed and *no healing*:
/// domination = every live non-member keeps a live member neighbor
/// (memberless survivor islands count as losses), connectivity = the
/// live members inside each survivor component stay connected.
struct SurvivabilityReport {
  std::string name;
  core::KmParams params;
  std::size_t backbone_size = 0;  ///< members built on the initial topology
  std::size_t events = 0;         ///< fault events driven
  /// 1-based index of the first event after which domination
  /// (resp. member connectivity) no longer held; 0 = survived them all.
  std::size_t first_domination_loss = 0;
  std::size_t first_disconnection = 0;
  /// Worst fraction, over all events, of live non-members that still
  /// had a live member neighbor.
  double min_coverage = 1.0;
  /// Reactive-healing cost of the same timeline: passes where the
  /// shadowing SelfHealingCds had to change the backbone, and the
  /// total nodes it recruited.
  std::size_t heal_passes = 0;
  std::size_t heal_added = 0;

  /// Events survived before the first invalidity (== events when the
  /// backbone never went invalid) — the headline E27 number.
  [[nodiscard]] std::size_t events_until_invalid() const noexcept {
    std::size_t first = first_domination_loss;
    if (first_disconnection != 0 &&
        (first == 0 || first_disconnection < first)) {
      first = first_disconnection;
    }
    return first == 0 ? events : first - 1;
  }
};

/// Builds the variant's backbone on \p g and replays \p plan's crash
/// schedule event by event (links and partitions do not move nodes, so
/// only the fail-stop schedule matters here). Requires a connected
/// topology; throws std::invalid_argument on an invalid plan or an
/// out-of-range scheduled node.
[[nodiscard]] SurvivabilityReport survive_fault_plan(
    const Graph& g, const SurvivabilityVariant& variant,
    const FaultPlan& plan, const obs::Obs& obs = {});

/// Builds the variant's backbone on \p initial and replays a mobility
/// churn trace: each epoch contributes its rewired topology and its
/// crash/recovery outcome as one event. The reactive healer is re-seeded
/// per epoch with the epoch's topology (its carried state is the healed
/// backbone itself). All epochs must keep \p initial's node count.
[[nodiscard]] SurvivabilityReport survive_churn(
    const Graph& initial, std::span<const udg::ChurnEpoch> epochs,
    const SurvivabilityVariant& variant, const obs::Obs& obs = {});

/// Exhaustive single-fault check behind the survive-by-construction
/// claims: true iff, for *every* single member crash, every live
/// non-member of the survivor graph keeps a live member neighbor. Holds
/// by construction for m >= 2 backbones (coverage degrades m -> m-1);
/// plain CDS and (2,1) can fail it through a node with a unique
/// dominator.
[[nodiscard]] bool dominates_after_any_single_member_crash(
    const Graph& g, std::span<const NodeId> backbone);

/// Companion connectivity check: true iff, for every single member
/// crash, the surviving members inside each component of G - v stay
/// connected through surviving members. Holds for k = 2 backbones
/// (every inexcusable cut vertex was patched away).
[[nodiscard]] bool connected_after_any_single_member_crash(
    const Graph& g, std::span<const NodeId> backbone);

}  // namespace mcds::dist
