#pragma once

#include "dist/runtime.hpp"
#include "graph/traversal.hpp"

/// \file bfs_tree.hpp
/// Distributed BFS spanning-tree construction from a root: the root
/// announces level 0; a node adopting level L+1 picks the smallest-id
/// offering neighbor as its parent and announces its own level once.

namespace mcds::dist {

/// Result of distributed BFS-tree construction.
struct BfsTreeResult {
  NodeId root = 0;
  std::vector<NodeId> parent;  ///< graph::kNoNode for the root
  std::vector<NodeId> level;   ///< hop distance from the root
  RunStats stats;
};

/// Builds the BFS tree of \p g rooted at \p root. Precondition:
/// g connected, root valid.
[[nodiscard]] BfsTreeResult build_bfs_tree(const Graph& g, NodeId root);

}  // namespace mcds::dist
