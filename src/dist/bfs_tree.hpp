#pragma once

#include "dist/runtime.hpp"
#include "graph/traversal.hpp"

/// \file bfs_tree.hpp
/// Distributed BFS spanning-tree construction from a root: the root
/// announces level 0; a node adopting level L+1 picks the smallest-id
/// offering neighbor as its parent and announces its own level once.

namespace mcds::dist {

/// Result of distributed BFS-tree construction.
struct BfsTreeResult {
  NodeId root = 0;
  std::vector<NodeId> parent;  ///< graph::kNoNode for the root
  std::vector<NodeId> level;   ///< hop distance from the root
  RunStats stats;
  bool complete = true;  ///< every live node adopted a level
};

/// Builds the BFS tree of \p g rooted at \p root. Precondition:
/// g connected, root valid.
[[nodiscard]] BfsTreeResult build_bfs_tree(const Graph& g, NodeId root);

/// Fault-aware overload: unreached live nodes (lost offers, crashed
/// subtrees) keep level == graph::kNoNode and clear complete instead of
/// throwing. Under drops the adopted levels form a spanning tree of the
/// reached region but need not be shortest-path.
[[nodiscard]] BfsTreeResult build_bfs_tree(const Graph& g, NodeId root,
                                           const RunConfig& cfg,
                                           std::size_t round_offset = 0);

}  // namespace mcds::dist
