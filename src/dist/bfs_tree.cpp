#include "dist/bfs_tree.hpp"

#include <algorithm>
#include <stdexcept>

#include "dist/reliable_link.hpp"

namespace mcds::dist {

namespace {

class BfsProtocol final : public Protocol {
 public:
  BfsProtocol(Transport& rt, NodeId root)
      : rt_(rt),
        root_(root),
        parent_(rt.topology().num_nodes(), graph::kNoNode),
        level_(rt.topology().num_nodes(), graph::kNoNode) {}

  void start(NodeId self) override {
    if (self == root_) {
      level_[self] = 0;
      rt_.broadcast(self, Message{0, 0, 0, 0});  // a = my level
    }
  }

  void step(NodeId self, std::span<const Message> inbox) override {
    if (level_[self] != graph::kNoNode || inbox.empty()) return;
    // All offers in one round carry the same level (synchronous BFS);
    // adopt the smallest-id offeror as parent.
    NodeId best_parent = graph::kNoNode;
    std::int64_t offer_level = 0;
    for (const Message& m : inbox) {
      if (best_parent == graph::kNoNode || m.from < best_parent) {
        best_parent = m.from;
        offer_level = m.a;
      }
    }
    parent_[self] = best_parent;
    level_[self] = static_cast<NodeId>(offer_level + 1);
    rt_.broadcast(self,
                  Message{0, 0, static_cast<std::int64_t>(level_[self]), 0});
  }

  [[nodiscard]] std::vector<NodeId> parents() const { return parent_; }
  [[nodiscard]] std::vector<NodeId> levels() const { return level_; }

 private:
  Transport& rt_;
  NodeId root_;
  std::vector<NodeId> parent_;
  std::vector<NodeId> level_;
};

}  // namespace

BfsTreeResult build_bfs_tree(const Graph& g, NodeId root) {
  if (root >= g.num_nodes()) {
    throw std::invalid_argument("build_bfs_tree: root out of range");
  }
  Runtime rt(g);
  BfsProtocol protocol(rt, root);
  BfsTreeResult out;
  out.root = root;
  out.stats = rt.run(protocol);
  out.parent = protocol.parents();
  out.level = protocol.levels();
  if (std::count(out.level.begin(), out.level.end(), graph::kNoNode) > 0) {
    throw std::invalid_argument("build_bfs_tree: topology is disconnected");
  }
  return out;
}

BfsTreeResult build_bfs_tree(const Graph& g, NodeId root, const RunConfig& cfg,
                             std::size_t round_offset) {
  if (root >= g.num_nodes()) {
    throw std::invalid_argument("build_bfs_tree: root out of range");
  }
  FaultHarness h(g, cfg, round_offset, "bfs_tree");
  BfsProtocol protocol(h.net(), root);
  BfsTreeResult out;
  out.root = root;
  out.stats = h.run(protocol);
  out.parent = protocol.parents();
  out.level = protocol.levels();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (out.level[v] == graph::kNoNode && h.runtime().is_up(v)) {
      out.complete = false;
    }
  }
  return out;
}

}  // namespace mcds::dist
