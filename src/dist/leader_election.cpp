#include "dist/leader_election.hpp"

#include <stdexcept>

#include "dist/reliable_link.hpp"
#include "graph/traversal.hpp"

namespace mcds::dist {

namespace {

class MinIdFlood final : public Protocol {
 public:
  explicit MinIdFlood(Transport& rt)
      : rt_(rt), known_(rt.topology().num_nodes()) {
    for (NodeId v = 0; v < known_.size(); ++v) known_[v] = v;
  }

  void start(NodeId self) override {
    rt_.broadcast(self, Message{0, 0, static_cast<std::int64_t>(self), 0});
  }

  void step(NodeId self, std::span<const Message> inbox) override {
    bool improved = false;
    for (const Message& m : inbox) {
      const auto id = static_cast<NodeId>(m.a);
      if (id < known_[self]) {
        known_[self] = id;
        improved = true;
      }
    }
    if (improved) {
      rt_.broadcast(self,
                    Message{0, 0, static_cast<std::int64_t>(known_[self]), 0});
    }
  }

  [[nodiscard]] NodeId known(NodeId v) const { return known_[v]; }

 private:
  Transport& rt_;
  std::vector<NodeId> known_;
};

}  // namespace

LeaderResult elect_leader(const Graph& g) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("elect_leader: empty graph");
  }
  Runtime rt(g);
  MinIdFlood protocol(rt);
  LeaderResult out;
  out.stats = rt.run(protocol);
  out.leader = protocol.known(0);
  // All nodes must agree — guaranteed on a connected topology.
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    if (protocol.known(v) != out.leader) {
      throw std::invalid_argument("elect_leader: topology is disconnected");
    }
  }
  return out;
}

LeaderResult elect_leader(const Graph& g, const RunConfig& cfg,
                          std::size_t round_offset) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("elect_leader: empty graph");
  }
  FaultHarness h(g, cfg, round_offset, "leader_election");
  MinIdFlood protocol(h.net());
  LeaderResult out;
  out.stats = h.run(protocol);
  bool first = true;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!h.runtime().is_up(v)) continue;
    if (first) {
      out.leader = protocol.known(v);
      first = false;
    } else if (protocol.known(v) != out.leader) {
      out.complete = false;
    }
  }
  if (first) out.complete = false;  // nobody survived
  return out;
}

}  // namespace mcds::dist
