#pragma once

#include <vector>

#include "core/validate.hpp"
#include "dist/runtime.hpp"

/// \file maintenance.hpp
/// Self-healing backbone maintenance. A SelfHealingCds owns the current
/// CDS of a (full) topology and, on every churn event (crashes,
/// recoveries, mobility), re-validates it on the survivor graph via
/// core::check_cds_components. The witness decides the cheapest
/// adequate response: a backbone that merely split is reglued
/// (core::reconnect_cds_components); one that lost coverage is fully
/// repaired (core::repair_cds_components); and when churn decimated the
/// backbone below a configurable survival fraction, the distributed WAF
/// construction is re-run from scratch on the survivor topology. Only
/// the affected phase runs — an intact backbone costs one validity
/// check. A fragmented survivor graph (crashes, or a network partition)
/// is healed per connected component into a CDS forest.
///
/// Under a partition the driver is replicated: each island runs its own
/// SelfHealingCds restricted via set_island() to the nodes it can reach
/// (its failure-detector view), and every heal pass that changes the
/// backbone bumps the replica's epoch. When the partition heals,
/// reconcile() merges the islands' epoch-stamped views — where two
/// views disagree about a node, the higher epoch wins — and reglues the
/// union instead of rebuilding from scratch.

namespace mcds::dist {

/// What a heal pass did.
enum class HealAction {
  kIntact,       ///< survivor CDS still valid — nothing done
  kReconnected,  ///< backbone split; connectivity-only repair ran
  kRepaired,     ///< coverage lost; full (domination + connectivity)
                 ///< repair ran
  kRebuilt,      ///< too little survived; distributed WAF re-ran
  kUnhealable,   ///< no survivor in scope — nothing to maintain
};

struct MaintenanceParams {
  /// Full rebuild when fewer than this fraction of the previous backbone
  /// survives the churn event (repairing a near-empty skeleton costs
  /// more nodes than rebuilding).
  double rebuild_fraction = 0.34;
};

/// Degraded-mode detail attached to a kUnhealable pass: the pass found
/// nothing live to maintain, so the driver is coasting on its last good
/// state. Distinguishes "this island is empty" (an operator can ignore
/// it) from "the healer gave up on a populated scope" (it cannot).
struct DegradedReport {
  /// Epoch of the last pass that left a non-empty in-scope backbone —
  /// the newest BackboneView worth replaying when the scope repopulates.
  std::size_t last_good_epoch = 0;
  /// In-scope backbone size at that epoch.
  std::size_t last_good_members = 0;
  /// Consecutive kUnhealable passes ending with this one.
  std::size_t consecutive = 0;
};

/// Report of one on_churn() / reconcile() pass.
struct HealReport {
  HealAction action = HealAction::kIntact;
  core::CdsCheck issue;       ///< the witness that triggered healing
  std::size_t survivors = 0;  ///< live nodes in scope after the event
  std::size_t kept = 0;       ///< backbone nodes retained
  std::size_t added = 0;      ///< nodes newly recruited
  std::size_t dropped = 0;    ///< backbone nodes lost or discarded
  std::size_t islands = 0;    ///< connected components healed over
  std::size_t epoch = 0;      ///< replica epoch after this pass
  RunStats stats;             ///< distributed cost (kRebuilt only)
  DegradedReport degraded;    ///< kUnhealable only (zeroed otherwise)
};

/// One replica's epoch-stamped claim about the backbone: which nodes it
/// speaks for (its island) and which of them it currently keeps in the
/// CDS. The merge rule of reconcile() is per node: among all views whose
/// island contains the node, the one with the highest epoch decides its
/// membership (ties resolved towards the later view in the argument
/// order, matching "last writer wins" of equal clocks).
struct BackboneView {
  std::vector<NodeId> island;  ///< nodes this view speaks for, ascending
  std::vector<NodeId> cds;     ///< backbone members among them, ascending
  std::size_t epoch = 0;
};

/// Maintains one backbone across a sequence of churn events.
class SelfHealingCds {
 public:
  /// \p g is the full topology (it must outlive the driver); \p cds its
  /// current CDS, in full-graph node ids. \p obs (null sinks by default)
  /// traces each heal pass and counts actions under "maintenance.*".
  SelfHealingCds(const Graph& g, std::vector<NodeId> cds,
                 MaintenanceParams params = {}, const obs::Obs& obs = {});

  /// Applies a new liveness vector (size = full graph) and heals the
  /// backbone on the graph induced by the live nodes — per connected
  /// component when the survivor graph is fragmented. With an island
  /// set, only island nodes are touched (the rest of the backbone is
  /// frozen until reconcile()). Idempotent: a second call with the same
  /// vector reports kIntact. Bumps the epoch iff the backbone changed.
  HealReport on_churn(const std::vector<bool>& up);

  /// Restricts this replica to one partition island: subsequent
  /// on_churn() passes treat \p island (the nodes this replica can
  /// reach, per its failure-detector view) as the whole world and leave
  /// the backbone outside it untouched. An empty vector lifts the
  /// restriction. Throws std::invalid_argument on out-of-range ids.
  void set_island(std::vector<NodeId> island);

  /// This replica's epoch-stamped view of its island (of the whole
  /// graph when no island is set).
  [[nodiscard]] BackboneView view() const;

  /// Cross-island reconciliation after a partition heal: merges the
  /// replicas' views under the highest-epoch-wins rule (nodes no view
  /// speaks for keep their current membership), lifts the island
  /// restriction, adopts the merged backbone and heals it on \p up —
  /// regluing the union, never rebuilding, since every island
  /// contributes its full maintained fragment. The replica's epoch
  /// advances past every merged view's.
  HealReport reconcile(const std::vector<BackboneView>& views,
                       const std::vector<bool>& up);

  /// Heal passes that changed this replica's backbone.
  [[nodiscard]] std::size_t epoch() const noexcept { return epoch_; }

  /// The newest epoch-stamped view whose in-scope backbone was
  /// non-empty — what a degraded (kUnhealable) replica is coasting on,
  /// and the state worth replaying once its scope repopulates. Empty
  /// island/cds at epoch 0 if no pass ever had a backbone.
  [[nodiscard]] const BackboneView& last_good_view() const noexcept {
    return last_good_;
  }

  /// The current backbone, full-graph ids, ascending. After a heal every
  /// in-scope member is live; a valid CDS forest of the survivor graph
  /// unless the last report said kUnhealable.
  [[nodiscard]] const std::vector<NodeId>& cds() const noexcept {
    return cds_;
  }

 private:
  [[nodiscard]] HealReport heal(const std::vector<bool>& up);

  const Graph& g_;
  std::vector<NodeId> cds_;
  MaintenanceParams params_;
  /// Island restriction (ascending; empty = whole graph in scope).
  std::vector<NodeId> island_;
  std::size_t epoch_ = 0;
  /// Degraded-mode bookkeeping (see last_good_view()).
  BackboneView last_good_;
  std::size_t consecutive_unhealable_ = 0;
  obs::Obs obs_;
  /// Pre-resolved per-action counters, indexed by HealAction; nullptr
  /// when metrics are off.
  obs::Counter* c_action_[5] = {nullptr, nullptr, nullptr, nullptr, nullptr};
  obs::Counter* c_unhealable_ = nullptr;  ///< "heal.unhealable"
};

}  // namespace mcds::dist
