#pragma once

#include <vector>

#include "core/validate.hpp"
#include "dist/runtime.hpp"

/// \file maintenance.hpp
/// Self-healing backbone maintenance. A SelfHealingCds owns the current
/// CDS of a (full) topology and, on every churn event (crashes,
/// recoveries, mobility), re-validates it on the survivor graph via
/// core::check_cds. The witness decides the cheapest adequate response:
/// a backbone that merely split is reglued (core::reconnect_cds); one
/// that lost coverage is fully repaired (core::repair_cds); and when
/// churn decimated the backbone below a configurable survival fraction,
/// the distributed WAF construction is re-run from scratch on the
/// survivor topology. Only the affected phase runs — an intact backbone
/// costs one validity check.

namespace mcds::dist {

/// What a heal pass did.
enum class HealAction {
  kIntact,       ///< survivor CDS still valid — nothing done
  kReconnected,  ///< backbone split; connectivity-only repair ran
  kRepaired,     ///< coverage lost; full (domination + connectivity)
                 ///< repair ran
  kRebuilt,      ///< too little survived; distributed WAF re-ran
  kUnhealable,   ///< survivor graph empty or disconnected — no CDS exists
};

struct MaintenanceParams {
  /// Full rebuild when fewer than this fraction of the previous backbone
  /// survives the churn event (repairing a near-empty skeleton costs
  /// more nodes than rebuilding).
  double rebuild_fraction = 0.34;
};

/// Report of one on_churn() pass.
struct HealReport {
  HealAction action = HealAction::kIntact;
  core::CdsCheck issue;       ///< the witness that triggered healing
  std::size_t survivors = 0;  ///< live nodes after the event
  std::size_t kept = 0;       ///< backbone nodes retained
  std::size_t added = 0;      ///< nodes newly recruited
  std::size_t dropped = 0;    ///< backbone nodes lost or discarded
  RunStats stats;             ///< distributed cost (kRebuilt only)
};

/// Maintains one backbone across a sequence of churn events.
class SelfHealingCds {
 public:
  /// \p g is the full topology (it must outlive the driver); \p cds its
  /// current CDS, in full-graph node ids. \p obs (null sinks by default)
  /// traces each heal pass and counts actions under "maintenance.*".
  SelfHealingCds(const Graph& g, std::vector<NodeId> cds,
                 MaintenanceParams params = {}, const obs::Obs& obs = {});

  /// Applies a new liveness vector (size = full graph) and heals the
  /// backbone on the graph induced by the live nodes. Idempotent: a
  /// second call with the same vector reports kIntact.
  HealReport on_churn(const std::vector<bool>& up);

  /// The current backbone, full-graph ids, ascending. After a heal every
  /// member is live; valid on the survivor graph unless the last report
  /// said kUnhealable.
  [[nodiscard]] const std::vector<NodeId>& cds() const noexcept {
    return cds_;
  }

 private:
  [[nodiscard]] HealReport heal(const std::vector<bool>& up);

  const Graph& g_;
  std::vector<NodeId> cds_;
  MaintenanceParams params_;
  obs::Obs obs_;
  /// Pre-resolved per-action counters, indexed by HealAction; nullptr
  /// when metrics are off.
  obs::Counter* c_action_[5] = {nullptr, nullptr, nullptr, nullptr, nullptr};
};

}  // namespace mcds::dist
