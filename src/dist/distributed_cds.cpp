#include "dist/distributed_cds.hpp"

#include <stdexcept>

namespace mcds::dist {

DistributedCdsResult distributed_waf_cds(const Graph& g) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("distributed_waf_cds: empty graph");
  }
  DistributedCdsResult out;
  if (g.num_nodes() == 1) {
    out.cds = {0};
    out.mis.in_mis = {true};
    out.mis.mis = {0};
    return out;
  }

  const LeaderResult leader = elect_leader(g);
  out.leader = leader.leader;
  out.leader_stats = leader.stats;

  out.tree = build_bfs_tree(g, out.leader);
  out.mis = elect_mis(g, out.tree.level);
  out.connectors =
      select_connectors(g, out.leader, out.tree.parent, out.mis.in_mis);
  out.cds = out.connectors.cds;

  out.total = leader.stats;
  out.total += out.tree.stats;
  out.total += out.mis.stats;
  out.total += out.connectors.stats;
  return out;
}

DistributedCdsResult distributed_waf_cds(const Graph& g, const RunConfig& cfg,
                                         std::size_t round_offset) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("distributed_waf_cds: empty graph");
  }
  DistributedCdsResult out;
  if (g.num_nodes() == 1) {
    out.cds = {0};
    out.mis.in_mis = {true};
    out.mis.mis = {0};
    return out;
  }

  // One fault timeline threads through the four phases.
  std::size_t offset = round_offset;
  const LeaderResult leader = elect_leader(g, cfg, offset);
  out.leader = leader.leader;
  out.leader_stats = leader.stats;
  offset += leader.stats.rounds;

  out.tree = build_bfs_tree(g, out.leader, cfg, offset);
  offset += out.tree.stats.rounds;
  out.mis = elect_mis(g, out.tree.level, cfg, offset);
  offset += out.mis.stats.rounds;
  out.connectors = select_connectors(g, out.leader, out.tree.parent,
                                     out.mis.in_mis, cfg, offset);
  out.cds = out.connectors.cds;
  out.complete = leader.complete && out.tree.complete && out.mis.complete &&
                 out.connectors.complete;

  out.total = leader.stats;
  out.total += out.tree.stats;
  out.total += out.mis.stats;
  out.total += out.connectors.stats;
  return out;
}

}  // namespace mcds::dist
