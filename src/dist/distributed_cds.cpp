#include "dist/distributed_cds.hpp"

#include <stdexcept>

namespace mcds::dist {

DistributedCdsResult distributed_waf_cds(const Graph& g) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("distributed_waf_cds: empty graph");
  }
  DistributedCdsResult out;
  if (g.num_nodes() == 1) {
    out.cds = {0};
    out.mis.in_mis = {true};
    out.mis.mis = {0};
    return out;
  }

  const LeaderResult leader = elect_leader(g);
  out.leader = leader.leader;
  out.leader_stats = leader.stats;

  out.tree = build_bfs_tree(g, out.leader);
  out.mis = elect_mis(g, out.tree.level);
  out.connectors =
      select_connectors(g, out.leader, out.tree.parent, out.mis.in_mis);
  out.cds = out.connectors.cds;

  out.total = leader.stats;
  out.total += out.tree.stats;
  out.total += out.mis.stats;
  out.total += out.connectors.stats;
  return out;
}

}  // namespace mcds::dist
