#include "dist/mis_election.hpp"

#include <stdexcept>

#include "dist/reliable_link.hpp"

namespace mcds::dist {

namespace {

// Message type: a == 1 if the sender joined the MIS, 0 otherwise.
class MisProtocol final : public Protocol {
 public:
  MisProtocol(Transport& rt, const std::vector<NodeId>& level)
      : rt_(rt), level_(level) {
    const Graph& g = rt.topology();
    const std::size_t n = g.num_nodes();
    undecided_lower_.assign(n, 0);
    decided_.assign(n, 0);
    in_mis_.assign(n, 0);
    blocked_.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      for (const NodeId u : g.neighbors(v)) {
        if (rank_less(u, v)) ++undecided_lower_[v];
      }
    }
  }

  void start(NodeId self) override { try_decide(self); }

  void step(NodeId self, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      if (rank_less(m.from, self)) {
        --undecided_lower_[self];
        if (m.a == 1) blocked_[self] = 1;
      }
    }
    try_decide(self);
  }

  [[nodiscard]] std::vector<bool> in_mis() const {
    return {in_mis_.begin(), in_mis_.end()};
  }
  [[nodiscard]] bool all_decided() const {
    for (const std::uint8_t d : decided_) {
      if (!d) return false;
    }
    return true;
  }
  [[nodiscard]] bool decided(NodeId v) const { return decided_[v] != 0; }

 private:
  [[nodiscard]] bool rank_less(NodeId a, NodeId b) const {
    return level_[a] < level_[b] || (level_[a] == level_[b] && a < b);
  }

  void try_decide(NodeId self) {
    if (decided_[self]) return;
    // Early out: a lower-ranked dominator neighbor settles it.
    // Completion: all lower-ranked neighbors decided (all dominatees).
    if (blocked_[self]) {
      decided_[self] = 1;
      in_mis_[self] = 0;
    } else if (undecided_lower_[self] == 0) {
      decided_[self] = 1;
      in_mis_[self] = 1;
    } else {
      return;
    }
    rt_.broadcast(self, Message{0, 0, in_mis_[self] != 0 ? 1 : 0, 0});
  }

  Transport& rt_;
  const std::vector<NodeId>& level_;
  std::vector<std::size_t> undecided_lower_;
  // std::uint8_t, not vector<bool>: per-node flags must occupy distinct
  // bytes so concurrent steps never write adjacent bits of one word.
  std::vector<std::uint8_t> decided_;
  std::vector<std::uint8_t> in_mis_;
  std::vector<std::uint8_t> blocked_;
};

}  // namespace

MisElectionResult elect_mis(const Graph& g, const std::vector<NodeId>& level) {
  if (level.size() != g.num_nodes()) {
    throw std::invalid_argument("elect_mis: level size mismatch");
  }
  Runtime rt(g);
  MisProtocol protocol(rt, level);
  MisElectionResult out;
  out.stats = rt.run(protocol);
  if (!protocol.all_decided()) {
    throw std::logic_error("elect_mis: protocol quiesced undecided");
  }
  out.in_mis = protocol.in_mis();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (out.in_mis[v]) out.mis.push_back(v);
  }
  return out;
}

MisElectionResult elect_mis(const Graph& g, const std::vector<NodeId>& level,
                            const RunConfig& cfg, std::size_t round_offset) {
  if (level.size() != g.num_nodes()) {
    throw std::invalid_argument("elect_mis: level size mismatch");
  }
  FaultHarness h(g, cfg, round_offset, "mis_election");
  MisProtocol protocol(h.net(), level);
  MisElectionResult out;
  out.stats = h.run(protocol);
  out.in_mis = protocol.in_mis();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (out.in_mis[v]) out.mis.push_back(v);
    if (!protocol.decided(v) && h.runtime().is_up(v)) out.complete = false;
  }
  return out;
}

}  // namespace mcds::dist
