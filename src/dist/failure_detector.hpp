#pragma once

#include <optional>

#include "dist/reliable_link.hpp"
#include "dist/runtime.hpp"

/// \file failure_detector.hpp
/// Heartbeat-based accrual failure detection over the runtime. Every
/// node broadcasts a heartbeat each heartbeat_every rounds; every node
/// tracks, per neighbor, a sliding window of heartbeat inter-arrival
/// gaps and derives a suspicion level phi = rounds-since-last-heard /
/// windowed-mean-gap (the linear form of Hayashibara's phi-accrual
/// detector: instead of a boolean timeout, suspicion accrues
/// continuously and is compared against a tunable threshold). Because
/// the mean adapts to observed arrival jitter, traffic stretched by
/// ReliableLink retransmission backoff raises the window mean instead
/// of tripping the detector — a lossy-but-alive neighbor does not
/// false-positive. Crashed neighbors, and neighbors severed by a
/// network partition, accrue suspicion until the threshold declares
/// them suspect; any later frame (recovery, partition heal) clears the
/// suspicion immediately. The per-node suspect sets are exactly the
/// local liveness views SelfHealingCds heals islands on.

namespace mcds::dist {

/// Tuning of the detector. Defaults detect a silent neighbor after
/// ~threshold * heartbeat_every quiet rounds on a clean link.
struct FailureDetectorParams {
  std::size_t heartbeat_every = 1;  ///< rounds between heartbeats
  std::size_t window = 8;   ///< inter-arrival gaps kept per neighbor
  double threshold = 3.0;   ///< suspicion level that declares a suspect
  std::size_t rounds = 48;  ///< observation horizon (protocol rounds)
};

/// The detector as an eighth protocol over the runtime. Construct
/// against a Transport (raw Runtime or ReliableLink), run it, then read
/// the per-node suspect views.
class FailureDetector final : public Protocol {
 public:
  /// Message::type of heartbeat frames.
  static constexpr std::int32_t kHeartbeatType = 1;

  /// Throws std::invalid_argument unless heartbeat_every >= 1,
  /// window >= 1 and threshold > 0.
  FailureDetector(Transport& net, const FailureDetectorParams& params,
                  const obs::Obs& obs = {});

  void start(NodeId self) override;
  void on_round_begin() override;
  void step(NodeId self, std::span<const Message> inbox) override;
  /// Keeps the runtime ticking through quiet rounds (a detector watching
  /// a crashed neighborhood sees no traffic at all) until the
  /// observation horizon is reached.
  [[nodiscard]] bool idle() const override {
    return round_ >= params_.rounds;
  }

  /// Neighbors \p observer currently suspects, ascending id.
  [[nodiscard]] std::vector<NodeId> suspects_of(NodeId observer) const;

  /// Current suspicion level of \p observer towards its neighbor \p w
  /// (0 for non-neighbors).
  [[nodiscard]] double phi(NodeId observer, NodeId w) const;

  /// Asks the detector to record the first round at which every live
  /// observer's suspect set exactly matches its unreachable neighbors
  /// (dead, or across the partition cut) — the detection-convergence
  /// metric of experiment E24. Call before the run.
  void track_convergence(std::vector<bool> up_truth,
                         std::vector<std::uint32_t> group_truth);

  /// First round with ground-truth-exact suspect sets everywhere, if
  /// tracking was enabled and convergence happened within the horizon.
  [[nodiscard]] std::optional<std::size_t> converged_round() const {
    return converged_round_;
  }

  /// Heartbeat frames discarded as stale retransmitted copies.
  [[nodiscard]] std::size_t dedup_hits() const noexcept;

 private:
  /// Detection state of one directed observer->neighbor pair.
  struct Edge {
    std::size_t last_seen = 0;   ///< round of the last frame (any frame)
    std::size_t last_fresh = 0;  ///< round of the last fresh payload
    std::int64_t last_payload = -1;  ///< newest heartbeat sequence seen
    std::size_t gap_sum = 0;
    std::size_t gap_count = 0;
    std::size_t ring_idx = 0;
    std::vector<std::size_t> gaps;  ///< ring of the last `window` gaps
    bool suspected = false;
  };

  [[nodiscard]] double phi_of(const Edge& e) const;
  void sweep_suspicions();

  Transport& net_;
  FailureDetectorParams params_;
  std::size_t round_ = 0;
  /// st_[v][i] tracks v's view of its i-th neighbor (topology order).
  std::vector<std::vector<Edge>> st_;
  std::vector<bool> up_truth_;
  std::vector<std::uint32_t> group_truth_;
  bool track_ = false;
  std::optional<std::size_t> converged_round_;
  /// Per-observer dedup tallies (dedup_hits() sums): each concurrent
  /// step writes only its own slot.
  std::vector<std::size_t> dedup_by_node_;
  obs::Counter* c_heartbeats_ = nullptr;
  obs::Counter* c_dedup_ = nullptr;
  obs::Counter* c_suspicions_ = nullptr;
  obs::Counter* c_recoveries_ = nullptr;
};

/// Result of one detection run.
struct FailureDetectorResult {
  /// suspects[v] = neighbors v suspects at the horizon, ascending.
  std::vector<std::vector<NodeId>> suspects;
  RunStats stats;
  /// See FailureDetector::track_convergence (set only by the
  /// truth-tracking overload below).
  std::optional<std::size_t> converged_round;
};

/// Runs the detector over \p g under \p cfg for params.rounds rounds and
/// returns every node's final suspect view. \p round_offset places the
/// run on the plan's global timeline (like every other protocol entry
/// point).
[[nodiscard]] FailureDetectorResult detect_failures(
    const Graph& g, const RunConfig& cfg = {},
    const FailureDetectorParams& params = {}, std::size_t round_offset = 0);

/// Truth-tracking overload: additionally reports the first round at
/// which every live node's suspect set matched \p up_truth /
/// \p group_truth exactly (the state the plan converges to).
[[nodiscard]] FailureDetectorResult detect_failures(
    const Graph& g, const RunConfig& cfg, const FailureDetectorParams& params,
    std::vector<bool> up_truth, std::vector<std::uint32_t> group_truth,
    std::size_t round_offset = 0);

}  // namespace mcds::dist
