#include "dist/alzoubi_protocol.hpp"

#include <stdexcept>
#include <unordered_set>

#include "dist/reliable_link.hpp"
#include "graph/traversal.hpp"

namespace mcds::dist {

namespace {

// Message types. PROBE carries its remaining ttl in `type` so relays
// can decrement it without extra fields; JOIN walks the relay path
// backwards.
constexpr std::int32_t kProbeBase = 10;  ///< type = kProbeBase + ttl
constexpr std::int32_t kJoin = 2;

constexpr std::uint32_t kNoRelay = 0xFFFFFFFFu;

std::int64_t pack_relays(std::uint32_t r1, std::uint32_t r2) {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(r1) << 32) | r2);
}

std::pair<std::uint32_t, std::uint32_t> unpack_relays(std::int64_t b) {
  const auto ub = static_cast<std::uint64_t>(b);
  return {static_cast<std::uint32_t>(ub >> 32),
          static_cast<std::uint32_t>(ub & 0xFFFFFFFFu)};
}

class ConnectProtocol final : public Protocol {
 public:
  ConnectProtocol(Transport& rt, const std::vector<bool>& in_mis)
      : rt_(rt),
        in_mis_(in_mis),
        connector_(rt.topology().num_nodes(), 0),
        handled_(rt.topology().num_nodes()),
        forwarded_(rt.topology().num_nodes()) {}

  void start(NodeId self) override {
    if (!in_mis_[self]) return;
    // PROBE(origin = self, ttl = 2 after the first hop consumes one).
    rt_.broadcast(self, Message{0, kProbeBase + 2,
                                static_cast<std::int64_t>(self),
                                pack_relays(kNoRelay, kNoRelay)});
  }

  void step(NodeId self, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      if (m.type >= kProbeBase) {
        on_probe(self, m);
      } else if (m.type == kJoin) {
        on_join(self, m);
      } else {
        throw std::logic_error("alzoubi protocol: unknown message");
      }
    }
  }

  [[nodiscard]] const std::vector<std::uint8_t>& connectors() const {
    return connector_;
  }

 private:
  void on_probe(NodeId self, const Message& m) {
    const auto origin = static_cast<NodeId>(m.a);
    if (origin == self) return;
    const int ttl = m.type - kProbeBase;
    if (in_mis_[self]) {
      // Dominator heard a dominator: act once per smaller-id origin.
      if (origin < self && handled_[self].insert(origin).second) {
        const auto [r1, r2] = unpack_relays(m.b);
        (void)r1;
        if (r2 != kNoRelay) {
          // Path origin -> (r1?) -> r2 -> self: recruit backwards.
          rt_.send(self, static_cast<NodeId>(r2), m2_join(m.b));
        }
        // Direct adjacency (no relays) needs no connectors.
      }
      return;  // dominators do not forward probes
    }
    if (ttl <= 0) return;
    // Scoped-flooding dedup: forward each origin's probe once (the
    // first copy travels a shortest path, so coverage within the ttl
    // radius is preserved and messages stay O(m) per origin).
    if (!forwarded_[self].insert(origin).second) return;
    // Forward with self appended to the relay path.
    const auto [r1, r2] = unpack_relays(m.b);
    (void)r1;
    std::int64_t relays;
    if (r2 == kNoRelay) {
      relays = pack_relays(kNoRelay, self);  // first relay
    } else {
      relays = pack_relays(r2, self);  // shift: keep last two relays
    }
    rt_.broadcast(self, Message{0, kProbeBase + (ttl - 1), m.a, relays});
  }

  static Message m2_join(std::int64_t relays) {
    return Message{0, kJoin, 0, relays};
  }

  void on_join(NodeId self, const Message& m) {
    connector_[self] = 1;
    const auto [r1, r2] = unpack_relays(m.b);
    // self == r2; pass the join on to r1 if the path had two relays.
    if (r2 == self && r1 != kNoRelay && r1 != self) {
      rt_.send(self, static_cast<NodeId>(r1),
               Message{0, kJoin, 0, pack_relays(kNoRelay, r1)});
    }
  }

  Transport& rt_;
  const std::vector<bool>& in_mis_;
  // Byte flags: concurrent steps write disjoint bytes, unlike
  // vector<bool> bits.
  std::vector<std::uint8_t> connector_;
  std::vector<std::unordered_set<NodeId>> handled_;
  std::vector<std::unordered_set<NodeId>> forwarded_;
};

void assemble(const Graph& g, const std::vector<std::uint8_t>& conn,
              AlzoubiResult& out) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (conn[v] != 0 && !out.mis.in_mis[v]) out.connectors.push_back(v);
    if (conn[v] != 0 || out.mis.in_mis[v]) out.cds.push_back(v);
  }
  out.total = out.mis_stats;
  out.total += out.connect_stats;
}

}  // namespace

AlzoubiResult distributed_alzoubi_cds(const Graph& g) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("distributed_alzoubi_cds: empty graph");
  }
  AlzoubiResult out;
  if (g.num_nodes() == 1) {
    out.mis.in_mis = {true};
    out.mis.mis = {0};
    out.cds = {0};
    return out;
  }
  if (!graph::is_connected(g)) {
    throw std::invalid_argument(
        "distributed_alzoubi_cds: graph must be connected");
  }

  // Phase 1: id-rank MIS (all levels equal -> rank is the node id).
  const std::vector<NodeId> flat_levels(g.num_nodes(), 0);
  out.mis = elect_mis(g, flat_levels);
  out.mis_stats = out.mis.stats;

  // Phase 2: 3-hop probes + join paths.
  Runtime rt(g);
  ConnectProtocol protocol(rt, out.mis.in_mis);
  out.connect_stats = rt.run(protocol);

  assemble(g, protocol.connectors(), out);
  return out;
}

AlzoubiResult distributed_alzoubi_cds(const Graph& g, const RunConfig& cfg,
                                      std::size_t round_offset) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("distributed_alzoubi_cds: empty graph");
  }
  AlzoubiResult out;
  if (g.num_nodes() == 1) {
    out.mis.in_mis = {true};
    out.mis.mis = {0};
    out.cds = {0};
    return out;
  }
  if (!graph::is_connected(g)) {
    throw std::invalid_argument(
        "distributed_alzoubi_cds: graph must be connected");
  }

  // Phase 1: id-rank MIS on the shared fault timeline.
  const std::vector<NodeId> flat_levels(g.num_nodes(), 0);
  out.mis = elect_mis(g, flat_levels, cfg, round_offset);
  out.mis_stats = out.mis.stats;
  out.complete = out.mis.complete;

  // Phase 2 picks the timeline up where phase 1 stopped.
  FaultHarness h(g, cfg, round_offset + out.mis_stats.rounds, "alzoubi_connect");
  ConnectProtocol protocol(h.net(), out.mis.in_mis);
  out.connect_stats = h.run(protocol);

  assemble(g, protocol.connectors(), out);
  return out;
}

}  // namespace mcds::dist
