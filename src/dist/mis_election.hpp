#pragma once

#include "dist/runtime.hpp"

/// \file mis_election.hpp
/// Distributed rank-based MIS election ([10]): ranks are (BFS level,
/// id) lexicographically; a node joins the MIS once every lower-ranked
/// neighbor has announced a decision and none of them joined. This
/// realizes first-fit over a level-monotone order, so the elected MIS
/// has the 2-hop separation property the paper's Lemma 9 relies on.

namespace mcds::dist {

/// Result of MIS election.
struct MisElectionResult {
  std::vector<bool> in_mis;       ///< per-node dominator flag
  std::vector<NodeId> mis;        ///< dominators, ascending id
  RunStats stats;
  bool complete = true;  ///< every live node decided (always true for
                         ///< the fault-free overload)
};

/// Runs the election on \p g given the BFS \p level of every node
/// (from build_bfs_tree). Precondition: levels consistent with a
/// connected topology.
[[nodiscard]] MisElectionResult elect_mis(const Graph& g,
                                          const std::vector<NodeId>& level);

/// Fault-aware overload: runs the election under \p cfg, with
/// \p round_offset placing it on the plan's global timeline. Nodes that
/// quiesce undecided (expected under message loss or crashes) no longer
/// throw; instead complete is false and in_mis holds only the nodes
/// that decided to join. The election is confluent, so with reliable
/// links and no crashes the result equals the fault-free one.
[[nodiscard]] MisElectionResult elect_mis(const Graph& g,
                                          const std::vector<NodeId>& level,
                                          const RunConfig& cfg,
                                          std::size_t round_offset = 0);

}  // namespace mcds::dist
