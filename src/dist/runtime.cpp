#include "dist/runtime.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace mcds::dist {

namespace {
std::string format_round_limit(std::size_t rounds_run, std::size_t in_flight,
                               const std::vector<NodeId>& pending) {
  std::ostringstream os;
  os << "Runtime::run: round limit exceeded after " << rounds_run
     << " rounds; " << in_flight << " message(s) in flight; non-quiescent "
     << "nodes: [";
  constexpr std::size_t kShow = 16;
  for (std::size_t i = 0; i < pending.size() && i < kShow; ++i) {
    if (i > 0) os << ", ";
    os << pending[i];
  }
  if (pending.size() > kShow) {
    os << ", ... (+" << pending.size() - kShow << " more)";
  }
  os << "]";
  return os.str();
}
}  // namespace

RoundLimitError::RoundLimitError(std::size_t rounds_run, std::size_t in_flight,
                                 std::vector<NodeId> pending_nodes)
    : std::runtime_error(
          format_round_limit(rounds_run, in_flight, pending_nodes)),
      rounds_(rounds_run),
      in_flight_(in_flight),
      pending_(std::move(pending_nodes)) {}

Runtime::Runtime(const Graph& g) : g_(g) {
  queue_.emplace_back(g.num_nodes());
}

Runtime::Runtime(const Graph& g, const FaultPlan& plan,
                 std::size_t round_offset)
    : g_(g), plan_(plan), round_offset_(round_offset) {
  queue_.emplace_back(g.num_nodes());
  faulty_ = !plan_.trivial();
  if (!faulty_) return;
  std::stable_sort(
      plan_.schedule.begin(), plan_.schedule.end(),
      [](const CrashEvent& a, const CrashEvent& b) { return a.round < b.round; });
  if (!plan_.link.clean() || !plan_.overrides.empty()) {
    model_.emplace(plan_, round_offset_);
  }
  up_.assign(g.num_nodes(), true);
  apply_events_through(round_offset_);
}

void Runtime::send(NodeId from, NodeId to, Message m) {
  if (!g_.has_edge(from, to)) {
    throw std::invalid_argument(
        "Runtime::send: nodes are not one-hop neighbors");
  }
  m.from = from;
  route(from, to, m);
}

void Runtime::broadcast(NodeId from, Message m) {
  m.from = from;
  for (const NodeId to : g_.neighbors(from)) {
    route(from, to, m);
  }
}

void Runtime::route(NodeId from, NodeId to, const Message& m) {
  if (faulty_) {
    if (!up_[from] || !up_[to]) {
      ++fstats_.suppressed;
      return;
    }
    if (model_) {
      delays_scratch_.clear();
      model_->sample(from, to, delays_scratch_);
      if (delays_scratch_.empty()) {
        ++fstats_.dropped;
        return;
      }
      if (delays_scratch_.size() > 1) {
        fstats_.duplicated += delays_scratch_.size() - 1;
      }
      for (const std::size_t d : delays_scratch_) {
        if (d > 0) ++fstats_.delayed;
        enqueue(to, m, d);
      }
      return;
    }
  }
  enqueue(to, m, 0);
}

void Runtime::enqueue(NodeId to, const Message& m, std::size_t delay) {
  while (queue_.size() <= delay) queue_.emplace_back(g_.num_nodes());
  queue_[delay][to].push_back(m);
  ++in_flight_;
}

void Runtime::apply_events_through(std::size_t global_round) {
  while (next_event_ < plan_.schedule.size() &&
         plan_.schedule[next_event_].round <= global_round) {
    const CrashEvent& e = plan_.schedule[next_event_++];
    if (e.node >= g_.num_nodes()) continue;
    up_[e.node] = e.up;
    if (e.up) continue;
    // Fail-stop: everything queued for the crashed node is lost.
    for (auto& bucket : queue_) {
      const std::size_t k = bucket[e.node].size();
      if (k == 0) continue;
      bucket[e.node].clear();
      in_flight_ -= k;
      fstats_.crash_discarded += k;
    }
  }
}

std::vector<NodeId> Runtime::nodes_with_pending() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g_.num_nodes(); ++v) {
    for (const auto& bucket : queue_) {
      if (!bucket[v].empty()) {
        out.push_back(v);
        break;
      }
    }
  }
  return out;
}

RunStats Runtime::run(Protocol& p, std::size_t max_rounds) {
  RunStats stats;
  for (NodeId v = 0; v < g_.num_nodes(); ++v) {
    if (is_up(v)) p.start(v);
  }

  while (in_flight_ > 0 || !p.idle()) {
    if (stats.rounds >= max_rounds) {
      throw RoundLimitError(stats.rounds, in_flight_, nodes_with_pending());
    }
    ++stats.rounds;
    ++rounds_run_;
    if (faulty_) apply_events_through(round_offset_ + rounds_run_);
    // Swap in this round's inboxes (the head delay bucket); sends during
    // step() land next round or later.
    std::vector<std::vector<Message>> inboxes(g_.num_nodes());
    if (!queue_.empty()) {
      inboxes.swap(queue_.front());
      queue_.pop_front();
    }
    if (queue_.empty()) queue_.emplace_back(g_.num_nodes());
    std::size_t delivered = 0;
    for (const auto& inbox : inboxes) delivered += inbox.size();
    in_flight_ -= delivered;
    stats.messages += delivered;
    p.on_round_begin();
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      if (faulty_ && !up_[v]) continue;
      if (trace_) {
        for (const Message& m : inboxes[v]) {
          trace_->push_back(TraceEvent{round_offset_ + rounds_run_, m.from, v,
                                       m.type, m.a, m.b, m.link, m.seq});
        }
      }
      p.step(v, inboxes[v]);
    }
  }
  return stats;
}

}  // namespace mcds::dist
