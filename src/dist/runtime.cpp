#include "dist/runtime.hpp"

#include "dist/reliable_link.hpp"
#include "graph/traversal.hpp"
#include "par/thread_pool.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

namespace mcds::dist {

namespace {

/// Sentinel type used to aggregate link-layer ack frames in the
/// in-flight breakdown (their Message::type is meaningless).
constexpr std::int32_t kAckType = -1;

/// Trace events appended to a RoundLimitError as the post-mortem tail.
constexpr std::size_t kTailEvents = 16;

/// Auto-sharding for parallel rounds: enough shards per worker that the
/// work-stealing pool balances uneven protocol work, but shards big
/// enough that per-chunk submission cost stays invisible.
constexpr std::size_t kShardsPerWorker = 4;
constexpr std::size_t kMinShard = 256;

std::string format_round_limit(
    const std::string& protocol, std::size_t rounds_run, std::size_t in_flight,
    const std::vector<NodeId>& pending,
    const std::vector<std::pair<std::int32_t, std::size_t>>& by_type,
    const std::string& trace_tail) {
  std::ostringstream os;
  os << "Runtime::run";
  if (!protocol.empty()) os << " [" << protocol << "]";
  os << ": round limit exceeded after " << rounds_run << " rounds; "
     << in_flight << " message(s) in flight";
  if (!by_type.empty()) {
    os << " (";
    for (std::size_t i = 0; i < by_type.size(); ++i) {
      if (i > 0) os << ", ";
      if (by_type[i].first == kAckType) {
        os << "link-ack";
      } else {
        os << "type " << by_type[i].first;
      }
      os << " x" << by_type[i].second;
    }
    os << ")";
  }
  os << "; non-quiescent nodes: [";
  constexpr std::size_t kShow = 16;
  for (std::size_t i = 0; i < pending.size() && i < kShow; ++i) {
    if (i > 0) os << ", ";
    os << pending[i];
  }
  if (pending.size() > kShow) {
    os << ", ... (+" << pending.size() - kShow << " more)";
  }
  os << "]";
  if (!trace_tail.empty()) os << "\n" << trace_tail;
  return os.str();
}

}  // namespace

thread_local Runtime::StepCtx Runtime::tl_step_;

std::size_t RunStats::of_type(std::int32_t type) const noexcept {
  for (const auto& [t, c] : by_type) {
    if (t == type) return c;
  }
  return 0;
}

RunStats& RunStats::operator+=(const RunStats& o) {
  rounds += o.rounds;
  messages += o.messages;
  critical_path += o.critical_path;
  if (!o.by_type.empty()) {
    for (const auto& [t, c] : o.by_type) {
      const auto it = std::lower_bound(
          by_type.begin(), by_type.end(), t,
          [](const auto& p, std::int32_t key) { return p.first < key; });
      if (it != by_type.end() && it->first == t) {
        it->second += c;
      } else {
        by_type.insert(it, {t, c});
      }
    }
  }
  per_round.insert(per_round.end(), o.per_round.begin(), o.per_round.end());
  return *this;
}

RoundLimitError::RoundLimitError(
    std::string protocol, std::size_t rounds_run, std::size_t in_flight,
    std::vector<NodeId> pending_nodes,
    std::vector<std::pair<std::int32_t, std::size_t>> in_flight_by_type,
    std::string trace_tail)
    : std::runtime_error(format_round_limit(protocol, rounds_run, in_flight,
                                            pending_nodes, in_flight_by_type,
                                            trace_tail)),
      protocol_(std::move(protocol)),
      rounds_(rounds_run),
      in_flight_(in_flight),
      pending_(std::move(pending_nodes)),
      by_type_(std::move(in_flight_by_type)) {}

void Runtime::InboxArena::reset(std::size_t n) {
  begin_.assign(n, 0);
  len_.assign(n, 0);
  cursor_.assign(n, 0);
  epoch_of_.assign(n, 0);
  epoch_ = 0;
  buf_.clear();
  touched_.clear();
}

void Runtime::InboxArena::stage(const Bucket& due) {
  ++epoch_;
  touched_.clear();
  const std::size_t total = due.msgs.size();
  buf_.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    const NodeId to = due.tos[i];
    if (epoch_of_[to] != epoch_) {
      epoch_of_[to] = epoch_;
      len_[to] = 0;
      touched_.push_back(to);
    }
    ++len_[to];
  }
  std::uint32_t off = 0;
  for (const NodeId v : touched_) {
    begin_[v] = off;
    cursor_[v] = off;
    off += len_[v];
  }
  // Stable scatter: per-destination order stays enqueue order, exactly
  // the inbox order of the former per-destination vectors.
  for (std::size_t i = 0; i < total; ++i) {
    buf_[cursor_[due.tos[i]]++] = due.msgs[i];
  }
}

Runtime::Runtime(const Graph& g) : g_(g) {
  if (g.finalized()) frozen_.emplace(g);
  arena_.reset(g.num_nodes());
  queue_.emplace_back();
}

Runtime::Runtime(const Graph& g, const FaultPlan& plan,
                 std::size_t round_offset)
    : g_(g), plan_(plan), round_offset_(round_offset) {
  if (g.finalized()) frozen_.emplace(g);
  arena_.reset(g.num_nodes());
  queue_.emplace_back();
  faulty_ = !plan_.trivial();
  if (!faulty_) return;
  plan_.validate();
  std::stable_sort(
      plan_.schedule.begin(), plan_.schedule.end(),
      [](const CrashEvent& a, const CrashEvent& b) { return a.round < b.round; });
  std::stable_sort(plan_.partitions.begin(), plan_.partitions.end(),
                   [](const PartitionEvent& a, const PartitionEvent& b) {
                     return a.round < b.round;
                   });
  if (!plan_.link.clean() || !plan_.overrides.empty()) {
    model_.emplace(plan_, round_offset_);
  }
  up_.assign(g.num_nodes(), true);
  apply_events_through(round_offset_);
}

void Runtime::observe(const obs::Obs& obs, std::string label) {
  obs_ = obs;
  label_ = std::move(label);
}

obs::CausalContext Runtime::context() const noexcept {
  return tl_step_.buf != nullptr ? tl_step_.ctx : ctx_;
}

void Runtime::send(NodeId from, NodeId to, Message m) {
  // O(log deg) binary search on the frozen CSR; out-of-range ids (and a
  // never-finalized topology) take the checked Graph path, preserving
  // its exception behavior.
  const bool edge =
      (frozen_ && from < g_.num_nodes() && to < g_.num_nodes())
          ? frozen_->has_edge(from, to)
          : g_.has_edge(from, to);
  if (!edge) {
    throw std::invalid_argument(
        "Runtime::send: nodes are not one-hop neighbors");
  }
  m.from = from;
  if (ShardBuf* cap = tl_step_.buf) {
    cap->sends.push_back(CapturedSend{to, m});
    return;
  }
  route(from, to, m);
}

void Runtime::broadcast(NodeId from, Message m) {
  m.from = from;
  if (ShardBuf* cap = tl_step_.buf) {
    for (const NodeId to : g_.neighbors(from)) {
      cap->sends.push_back(CapturedSend{to, m});
    }
    return;
  }
  for (const NodeId to : g_.neighbors(from)) {
    route(from, to, m);
  }
}

void Runtime::route(NodeId from, NodeId to, const Message& m) {
  if (faulty_) {
    if (!up_[from] || !up_[to]) {
      ++fstats_.suppressed;
      return;
    }
    // Partition check precedes channel sampling and consumes no RNG
    // draws, so adding a partition to a plan leaves the fate sequence of
    // same-group traffic unchanged.
    if (!group_.empty() && group_[from] != group_[to]) {
      ++fstats_.partition_dropped;
      return;
    }
    if (model_) {
      delays_scratch_.clear();
      model_->sample(from, to, delays_scratch_);
      if (delays_scratch_.empty()) {
        ++fstats_.dropped;
        return;
      }
      if (delays_scratch_.size() > 1) {
        fstats_.duplicated += delays_scratch_.size() - 1;
      }
      for (const std::size_t d : delays_scratch_) {
        if (d > 0) ++fstats_.delayed;
        enqueue(to, m, d);
      }
      return;
    }
  }
  enqueue(to, m, 0);
}

Runtime::Bucket Runtime::take_spare() {
  if (spare_.empty()) return {};
  Bucket b = std::move(spare_.back());
  spare_.pop_back();
  return b;
}

void Runtime::recycle(Bucket&& b) {
  b.clear();  // capacity retained — the arena's recycling discipline
  spare_.push_back(std::move(b));
}

void Runtime::enqueue(NodeId to, const Message& m, std::size_t delay) {
  while (queue_.size() <= delay) queue_.push_back(take_spare());
  Bucket& bucket = queue_[delay];
  bucket.msgs.push_back(m);
  bucket.tos.push_back(to);
  if (causal_active_) {
    // Stamp per enqueued copy: a dropped message gets no span, each
    // duplicated copy gets its own, so a span is delivered at most once.
    bucket.msgs.back().span =
        obs_.causal->on_send(causal_trace_, ctx_, m.from, to, m.type,
                             round_offset_ + rounds_run_);
  }
  ++in_flight_;
}

void Runtime::discard_queued(const PartitionEvent* cut, NodeId crashed) {
  // Stable compaction over the flat buckets; `cut` non-null drops
  // cross-group traffic (group_ already updated), otherwise everything
  // addressed to the crashed node is lost.
  for (Bucket& bucket : queue_) {
    const std::size_t size = bucket.msgs.size();
    std::size_t w = 0;
    std::size_t removed = 0;
    for (std::size_t i = 0; i < size; ++i) {
      const bool drop = cut != nullptr
                            ? group_[bucket.msgs[i].from] != group_[bucket.tos[i]]
                            : bucket.tos[i] == crashed;
      if (drop) {
        ++removed;
        continue;
      }
      if (w != i) {
        bucket.msgs[w] = bucket.msgs[i];
        bucket.tos[w] = bucket.tos[i];
      }
      ++w;
    }
    if (removed == 0) continue;
    bucket.msgs.resize(w);
    bucket.tos.resize(w);
    in_flight_ -= removed;
    if (cut != nullptr) {
      fstats_.partition_dropped += removed;
    } else {
      fstats_.crash_discarded += removed;
    }
  }
}

void Runtime::apply_events_through(std::size_t global_round) {
  while (next_event_ < plan_.schedule.size() &&
         plan_.schedule[next_event_].round <= global_round) {
    const CrashEvent& e = plan_.schedule[next_event_++];
    if (e.node >= g_.num_nodes()) continue;
    up_[e.node] = e.up;
    if (e.up) continue;
    // Fail-stop: everything queued for the crashed node is lost.
    discard_queued(nullptr, e.node);
  }
  while (next_partition_ < plan_.partitions.size() &&
         plan_.partitions[next_partition_].round <= global_round) {
    apply_partition(plan_.partitions[next_partition_++]);
  }
}

void Runtime::apply_partition(const PartitionEvent& e) {
  // Partition transitions are rare, so interning per event is fine.
  if (auto* c = obs_.counter(e.heals() ? "fault.partition_heals"
                                       : "fault.partition_splits")) {
    c->add();
  }
  if (obs_.trace) {
    const std::string prefix = label_.empty() ? "runtime" : label_;
    obs_.trace->instant(
        obs_.trace->intern(prefix + (e.heals() ? ".partition_heal"
                                               : ".partition_split")),
        static_cast<std::int64_t>(e.groups.size()));
  }
  if (e.heals()) {
    group_.clear();
    return;
  }
  group_.assign(g_.num_nodes(),
                static_cast<std::uint32_t>(e.groups.size()));
  for (std::size_t gi = 0; gi < e.groups.size(); ++gi) {
    for (const NodeId v : e.groups[gi]) {
      if (v < g_.num_nodes()) group_[v] = static_cast<std::uint32_t>(gi);
    }
  }
  // Messages already in the air across the new cut go down with the
  // link, exactly as crash discard loses a dead node's queue.
  discard_queued(&e, graph::kNoNode);
}

std::vector<NodeId> Runtime::nodes_with_pending() const {
  std::vector<NodeId> out;
  for (const Bucket& bucket : queue_) {
    out.insert(out.end(), bucket.tos.begin(), bucket.tos.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::pair<std::int32_t, std::size_t>> Runtime::in_flight_by_type()
    const {
  std::map<std::int32_t, std::size_t> counts;
  for (const Bucket& bucket : queue_) {
    for (const Message& m : bucket.msgs) {
      ++counts[m.link == kLinkAck ? kAckType : m.type];
    }
  }
  return {counts.begin(), counts.end()};
}

obs::CausalContext Runtime::deepest_context(
    std::span<const Message> inbox) const noexcept {
  // Inbox span ids ascend (enqueue order), so "strictly deeper wins"
  // keeps the smallest id among ties: deterministic at any thread count.
  obs::CausalContext best;
  for (const Message& m : inbox) {
    if (m.span == obs::kNoSpan) continue;
    const obs::CausalContext c = obs_.causal->context_of(m.span);
    if (c.depth > best.depth) best = c;
  }
  return best;
}

RunStats Runtime::run(Protocol& p, std::size_t max_rounds) {
  RunStats stats;
  const std::size_t n = g_.num_nodes();
  // Observability setup (all of it skipped on the null-sink path).
  obs::TraceRecorder* rec = obs_.trace;
  const bool metrics_on = obs_.metrics != nullptr;
  std::uint32_t span_name = 0;
  std::uint32_t inflight_name = 0;
  std::uint32_t delivered_name = 0;
  std::map<std::int32_t, std::size_t> by_type;       // delivered, cumulative
  std::map<std::int32_t, std::uint32_t> type_names;  // interned counter names
  obs::Histogram* h_inflight = nullptr;
  FaultStats fstats_before;
  const std::string prefix = label_.empty() ? "runtime" : label_;
  if (rec) {
    span_name = rec->intern(prefix);
    inflight_name = rec->intern(prefix + ".in_flight");
    delivered_name = rec->intern(prefix + ".delivered");
    rec->span_begin(span_name);
  }
  if (metrics_on) {
    h_inflight = &obs_.metrics->histogram(prefix + ".in_flight_per_round");
    fstats_before = fstats_;
  }
  obs::CausalTracer* causal = obs_.causal;
  if (causal) {
    causal_trace_ = causal->begin_trace(prefix);
    causal_active_ = true;
    ctx_ = {};
  }

  // Shard layout for parallel rounds, mirroring par::parallel_for's
  // chunking: chunk c covers [c*grain, min(n, (c+1)*grain)).
  const bool parallel = pool_ != nullptr && n > 0;
  std::size_t grain = 0;
  std::size_t chunks = 0;
  if (parallel) {
    grain = grain_;
    if (grain == 0) {
      const std::size_t workers = std::max<std::size_t>(1, pool_->size());
      grain = std::max(kMinShard, n / (workers * kShardsPerWorker));
    }
    chunks = (n - 1) / grain + 1;
    if (shards_.size() < chunks) shards_.resize(chunks);
  }

  // The per-node delivery prelude shared by the serial loop and the
  // parallel barrier replay: record trace events, close delivered spans
  // and set the causal context the node's sends are attributed to.
  const auto deliver_prelude = [&](NodeId v, std::span<const Message> inbox) {
    if (trace_) {
      for (const Message& m : inbox) {
        trace_->push_back(TraceEvent{round_offset_ + rounds_run_, m.from, v,
                                     m.type, m.a, m.b, m.link, m.seq});
      }
    }
    if (causal) {
      // Close every delivered span and step under the deepest one —
      // the whole inbox happened-before anything this step sends.
      const std::uint64_t round = round_offset_ + rounds_run_;
      for (const Message& m : inbox) {
        if (m.span != obs::kNoSpan) causal->on_deliver(m.span, round);
      }
      ctx_ = deepest_context(inbox);
    }
  };

  for (NodeId v = 0; v < n; ++v) {
    if (is_up(v)) p.start(v);
  }

  while (in_flight_ > 0 || !p.idle()) {
    if (stats.rounds >= max_rounds) {
      auto breakdown = in_flight_by_type();
      if (rec) rec->span_end(span_name);
      causal_active_ = false;
      // Post-mortem: what the runtime was doing when the guard tripped.
      throw RoundLimitError(label_, stats.rounds, in_flight_,
                            nodes_with_pending(), std::move(breakdown),
                            rec ? obs::format_trace_tail(*rec, kTailEvents)
                                : std::string{});
    }
    ++stats.rounds;
    ++rounds_run_;
    if (faulty_) apply_events_through(round_offset_ + rounds_run_);
    // Stage this round's inboxes (the head delay bucket) into the
    // recycled arena; sends during step() land next round or later.
    {
      Bucket due = std::move(queue_.front());
      queue_.pop_front();
      if (queue_.empty()) queue_.push_back(take_spare());
      arena_.stage(due);
      recycle(std::move(due));
    }
    const std::size_t delivered = arena_.all().size();
    in_flight_ -= delivered;
    stats.messages += delivered;
    if (metrics_on || rec) {
      // Per-type delivered counts; under the ring-buffer trace each
      // active type becomes a Perfetto counter track.
      for (const Message& m : arena_.all()) ++by_type[m.type];
      if (metrics_on) {
        stats.per_round.push_back(delivered);
        h_inflight->record(static_cast<double>(in_flight_));
      }
      if (rec) {
        rec->counter(delivered_name,
                     static_cast<std::int64_t>(delivered));
        rec->counter(inflight_name, static_cast<std::int64_t>(in_flight_));
        for (const auto& [t, c] : by_type) {
          auto it = type_names.find(t);
          if (it == type_names.end()) {
            it = type_names
                     .emplace(t, rec->intern(prefix + ".msg.type" +
                                             std::to_string(t)))
                     .first;
          }
          rec->counter(it->second, static_cast<std::int64_t>(c));
        }
      }
    }
    p.on_round_begin();
    if (parallel) {
      // Phase A (workers): step contiguous shards concurrently. Sends
      // are captured raw — no queue, channel-RNG or tracer access — and
      // each worker computes its node's causal context from the
      // immutable span table.
      par::parallel_for(
          pool_, n, grain,
          [&](std::size_t begin, std::size_t end, std::size_t c) {
            ShardBuf& buf = shards_[c];
            buf.clear();
            tl_step_.buf = &buf;
            struct Reset {
              ~Reset() { tl_step_.buf = nullptr; }
            } reset;
            for (std::size_t v = begin; v < end; ++v) {
              const auto node = static_cast<NodeId>(v);
              if (!(faulty_ && !up_[node])) {
                tl_step_.ctx = causal ? deepest_context(arena_.inbox(node))
                                      : obs::CausalContext{};
                p.step(node, arena_.inbox(node));
              }
              buf.node_end.push_back(
                  static_cast<std::uint32_t>(buf.sends.size()));
            }
          });
      // Phase B (barrier, host thread): replay outboxes in (node id,
      // send order) — the serial interleaving of deliveries and sends —
      // so span allocation, RNG draws and fault accounting are
      // byte-identical to the serial loop.
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * grain;
        const std::size_t end = std::min(n, begin + grain);
        const ShardBuf& buf = shards_[c];
        std::size_t cursor = 0;
        for (std::size_t v = begin; v < end; ++v) {
          const auto node = static_cast<NodeId>(v);
          const std::size_t node_end = buf.node_end[v - begin];
          if (faulty_ && !up_[node]) {
            cursor = node_end;
            continue;
          }
          deliver_prelude(node, arena_.inbox(node));
          for (; cursor < node_end; ++cursor) {
            const CapturedSend& s = buf.sends[cursor];
            route(s.m.from, s.to, s.m);
          }
        }
      }
    } else {
      for (NodeId v = 0; v < n; ++v) {
        if (faulty_ && !up_[v]) continue;
        deliver_prelude(v, arena_.inbox(v));
        p.step(v, arena_.inbox(v));
      }
    }
    // Sends between steps (the next round's on_round_begin) root fresh
    // chains unless a link layer restores a captured context.
    ctx_ = {};
    p.on_round_end();
  }

  if (causal) {
    stats.critical_path = causal->max_depth(causal_trace_);
    causal_active_ = false;
  }
  if (metrics_on) {
    auto& reg = *obs_.metrics;
    reg.counter(prefix + ".rounds").add(stats.rounds);
    reg.counter(prefix + ".messages").add(stats.messages);
    if (causal) {
      reg.counter(prefix + ".critical_path").add(stats.critical_path);
    }
    stats.by_type.reserve(by_type.size());
    for (const auto& [t, c] : by_type) {
      reg.counter(prefix + ".msg.type" + std::to_string(t)).add(c);
      stats.by_type.emplace_back(t, c);
    }
    reg.counter("fault.dropped").add(fstats_.dropped - fstats_before.dropped);
    reg.counter("fault.duplicated")
        .add(fstats_.duplicated - fstats_before.duplicated);
    reg.counter("fault.delayed").add(fstats_.delayed - fstats_before.delayed);
    reg.counter("fault.crash_discarded")
        .add(fstats_.crash_discarded - fstats_before.crash_discarded);
    reg.counter("fault.suppressed")
        .add(fstats_.suppressed - fstats_before.suppressed);
    reg.counter("fault.partition_dropped")
        .add(fstats_.partition_dropped - fstats_before.partition_dropped);
  }
  if (rec) rec->span_end(span_name);
  return stats;
}

}  // namespace mcds::dist
