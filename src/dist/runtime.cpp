#include "dist/runtime.hpp"

#include <stdexcept>
#include <utility>

namespace mcds::dist {

Runtime::Runtime(const Graph& g) : g_(g), pending_(g.num_nodes()) {}

void Runtime::send(NodeId from, NodeId to, Message m) {
  if (!g_.has_edge(from, to)) {
    throw std::invalid_argument(
        "Runtime::send: nodes are not one-hop neighbors");
  }
  m.from = from;
  pending_[to].push_back(m);
  ++in_flight_;
}

void Runtime::broadcast(NodeId from, Message m) {
  for (const NodeId to : g_.neighbors(from)) {
    m.from = from;
    pending_[to].push_back(m);
    ++in_flight_;
  }
}

RunStats Runtime::run(Protocol& p, std::size_t max_rounds) {
  RunStats stats;
  for (NodeId v = 0; v < g_.num_nodes(); ++v) p.start(v);

  while (in_flight_ > 0) {
    if (stats.rounds >= max_rounds) {
      throw std::runtime_error("Runtime::run: round limit exceeded");
    }
    // Swap in this round's inboxes; sends during step() land next round.
    std::vector<std::vector<Message>> inboxes(g_.num_nodes());
    inboxes.swap(pending_);
    stats.messages += in_flight_;
    in_flight_ = 0;
    ++stats.rounds;
    p.on_round_begin();
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      p.step(v, inboxes[v]);
    }
  }
  return stats;
}

}  // namespace mcds::dist
