#include "dist/runtime.hpp"

#include "dist/reliable_link.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

namespace mcds::dist {

namespace {

/// Sentinel type used to aggregate link-layer ack frames in the
/// in-flight breakdown (their Message::type is meaningless).
constexpr std::int32_t kAckType = -1;

/// Trace events appended to a RoundLimitError as the post-mortem tail.
constexpr std::size_t kTailEvents = 16;

std::string format_round_limit(
    const std::string& protocol, std::size_t rounds_run, std::size_t in_flight,
    const std::vector<NodeId>& pending,
    const std::vector<std::pair<std::int32_t, std::size_t>>& by_type,
    const std::string& trace_tail) {
  std::ostringstream os;
  os << "Runtime::run";
  if (!protocol.empty()) os << " [" << protocol << "]";
  os << ": round limit exceeded after " << rounds_run << " rounds; "
     << in_flight << " message(s) in flight";
  if (!by_type.empty()) {
    os << " (";
    for (std::size_t i = 0; i < by_type.size(); ++i) {
      if (i > 0) os << ", ";
      if (by_type[i].first == kAckType) {
        os << "link-ack";
      } else {
        os << "type " << by_type[i].first;
      }
      os << " x" << by_type[i].second;
    }
    os << ")";
  }
  os << "; non-quiescent nodes: [";
  constexpr std::size_t kShow = 16;
  for (std::size_t i = 0; i < pending.size() && i < kShow; ++i) {
    if (i > 0) os << ", ";
    os << pending[i];
  }
  if (pending.size() > kShow) {
    os << ", ... (+" << pending.size() - kShow << " more)";
  }
  os << "]";
  if (!trace_tail.empty()) os << "\n" << trace_tail;
  return os.str();
}

}  // namespace

std::size_t RunStats::of_type(std::int32_t type) const noexcept {
  for (const auto& [t, c] : by_type) {
    if (t == type) return c;
  }
  return 0;
}

RunStats& RunStats::operator+=(const RunStats& o) {
  rounds += o.rounds;
  messages += o.messages;
  critical_path += o.critical_path;
  if (!o.by_type.empty()) {
    for (const auto& [t, c] : o.by_type) {
      const auto it = std::lower_bound(
          by_type.begin(), by_type.end(), t,
          [](const auto& p, std::int32_t key) { return p.first < key; });
      if (it != by_type.end() && it->first == t) {
        it->second += c;
      } else {
        by_type.insert(it, {t, c});
      }
    }
  }
  per_round.insert(per_round.end(), o.per_round.begin(), o.per_round.end());
  return *this;
}

RoundLimitError::RoundLimitError(
    std::string protocol, std::size_t rounds_run, std::size_t in_flight,
    std::vector<NodeId> pending_nodes,
    std::vector<std::pair<std::int32_t, std::size_t>> in_flight_by_type,
    std::string trace_tail)
    : std::runtime_error(format_round_limit(protocol, rounds_run, in_flight,
                                            pending_nodes, in_flight_by_type,
                                            trace_tail)),
      protocol_(std::move(protocol)),
      rounds_(rounds_run),
      in_flight_(in_flight),
      pending_(std::move(pending_nodes)),
      by_type_(std::move(in_flight_by_type)) {}

Runtime::Runtime(const Graph& g) : g_(g) {
  queue_.emplace_back(g.num_nodes());
}

Runtime::Runtime(const Graph& g, const FaultPlan& plan,
                 std::size_t round_offset)
    : g_(g), plan_(plan), round_offset_(round_offset) {
  queue_.emplace_back(g.num_nodes());
  faulty_ = !plan_.trivial();
  if (!faulty_) return;
  plan_.validate();
  std::stable_sort(
      plan_.schedule.begin(), plan_.schedule.end(),
      [](const CrashEvent& a, const CrashEvent& b) { return a.round < b.round; });
  std::stable_sort(plan_.partitions.begin(), plan_.partitions.end(),
                   [](const PartitionEvent& a, const PartitionEvent& b) {
                     return a.round < b.round;
                   });
  if (!plan_.link.clean() || !plan_.overrides.empty()) {
    model_.emplace(plan_, round_offset_);
  }
  up_.assign(g.num_nodes(), true);
  apply_events_through(round_offset_);
}

void Runtime::observe(const obs::Obs& obs, std::string label) {
  obs_ = obs;
  label_ = std::move(label);
}

void Runtime::send(NodeId from, NodeId to, Message m) {
  if (!g_.has_edge(from, to)) {
    throw std::invalid_argument(
        "Runtime::send: nodes are not one-hop neighbors");
  }
  m.from = from;
  route(from, to, m);
}

void Runtime::broadcast(NodeId from, Message m) {
  m.from = from;
  for (const NodeId to : g_.neighbors(from)) {
    route(from, to, m);
  }
}

void Runtime::route(NodeId from, NodeId to, const Message& m) {
  if (faulty_) {
    if (!up_[from] || !up_[to]) {
      ++fstats_.suppressed;
      return;
    }
    // Partition check precedes channel sampling and consumes no RNG
    // draws, so adding a partition to a plan leaves the fate sequence of
    // same-group traffic unchanged.
    if (!group_.empty() && group_[from] != group_[to]) {
      ++fstats_.partition_dropped;
      return;
    }
    if (model_) {
      delays_scratch_.clear();
      model_->sample(from, to, delays_scratch_);
      if (delays_scratch_.empty()) {
        ++fstats_.dropped;
        return;
      }
      if (delays_scratch_.size() > 1) {
        fstats_.duplicated += delays_scratch_.size() - 1;
      }
      for (const std::size_t d : delays_scratch_) {
        if (d > 0) ++fstats_.delayed;
        enqueue(to, m, d);
      }
      return;
    }
  }
  enqueue(to, m, 0);
}

void Runtime::enqueue(NodeId to, const Message& m, std::size_t delay) {
  while (queue_.size() <= delay) queue_.emplace_back(g_.num_nodes());
  queue_[delay][to].push_back(m);
  if (causal_active_) {
    // Stamp per enqueued copy: a dropped message gets no span, each
    // duplicated copy gets its own, so a span is delivered at most once.
    queue_[delay][to].back().span =
        obs_.causal->on_send(causal_trace_, ctx_, m.from, to, m.type,
                             round_offset_ + rounds_run_);
  }
  ++in_flight_;
}

void Runtime::apply_events_through(std::size_t global_round) {
  while (next_event_ < plan_.schedule.size() &&
         plan_.schedule[next_event_].round <= global_round) {
    const CrashEvent& e = plan_.schedule[next_event_++];
    if (e.node >= g_.num_nodes()) continue;
    up_[e.node] = e.up;
    if (e.up) continue;
    // Fail-stop: everything queued for the crashed node is lost.
    for (auto& bucket : queue_) {
      const std::size_t k = bucket[e.node].size();
      if (k == 0) continue;
      bucket[e.node].clear();
      in_flight_ -= k;
      fstats_.crash_discarded += k;
    }
  }
  while (next_partition_ < plan_.partitions.size() &&
         plan_.partitions[next_partition_].round <= global_round) {
    apply_partition(plan_.partitions[next_partition_++]);
  }
}

void Runtime::apply_partition(const PartitionEvent& e) {
  // Partition transitions are rare, so interning per event is fine.
  if (auto* c = obs_.counter(e.heals() ? "fault.partition_heals"
                                       : "fault.partition_splits")) {
    c->add();
  }
  if (obs_.trace) {
    const std::string prefix = label_.empty() ? "runtime" : label_;
    obs_.trace->instant(
        obs_.trace->intern(prefix + (e.heals() ? ".partition_heal"
                                               : ".partition_split")),
        static_cast<std::int64_t>(e.groups.size()));
  }
  if (e.heals()) {
    group_.clear();
    return;
  }
  group_.assign(g_.num_nodes(),
                static_cast<std::uint32_t>(e.groups.size()));
  for (std::size_t gi = 0; gi < e.groups.size(); ++gi) {
    for (const NodeId v : e.groups[gi]) {
      if (v < g_.num_nodes()) group_[v] = static_cast<std::uint32_t>(gi);
    }
  }
  // Messages already in the air across the new cut go down with the
  // link, exactly as crash discard loses a dead node's queue.
  for (auto& bucket : queue_) {
    for (NodeId to = 0; to < g_.num_nodes(); ++to) {
      auto& inbox = bucket[to];
      const auto cut = [&](const Message& m) {
        return group_[m.from] != group_[to];
      };
      const std::size_t k = static_cast<std::size_t>(
          std::count_if(inbox.begin(), inbox.end(), cut));
      if (k == 0) continue;
      inbox.erase(std::remove_if(inbox.begin(), inbox.end(), cut),
                  inbox.end());
      in_flight_ -= k;
      fstats_.partition_dropped += k;
    }
  }
}

std::vector<NodeId> Runtime::nodes_with_pending() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g_.num_nodes(); ++v) {
    for (const auto& bucket : queue_) {
      if (!bucket[v].empty()) {
        out.push_back(v);
        break;
      }
    }
  }
  return out;
}

std::vector<std::pair<std::int32_t, std::size_t>> Runtime::in_flight_by_type()
    const {
  std::map<std::int32_t, std::size_t> counts;
  for (const auto& bucket : queue_) {
    for (const auto& inbox : bucket) {
      for (const Message& m : inbox) {
        ++counts[m.link == kLinkAck ? kAckType : m.type];
      }
    }
  }
  return {counts.begin(), counts.end()};
}

RunStats Runtime::run(Protocol& p, std::size_t max_rounds) {
  RunStats stats;
  // Observability setup (all of it skipped on the null-sink path).
  obs::TraceRecorder* rec = obs_.trace;
  const bool metrics_on = obs_.metrics != nullptr;
  std::uint32_t span_name = 0;
  std::uint32_t inflight_name = 0;
  std::uint32_t delivered_name = 0;
  std::map<std::int32_t, std::size_t> by_type;       // delivered, cumulative
  std::map<std::int32_t, std::uint32_t> type_names;  // interned counter names
  obs::Histogram* h_inflight = nullptr;
  FaultStats fstats_before;
  const std::string prefix = label_.empty() ? "runtime" : label_;
  if (rec) {
    span_name = rec->intern(prefix);
    inflight_name = rec->intern(prefix + ".in_flight");
    delivered_name = rec->intern(prefix + ".delivered");
    rec->span_begin(span_name);
  }
  if (metrics_on) {
    h_inflight = &obs_.metrics->histogram(prefix + ".in_flight_per_round");
    fstats_before = fstats_;
  }
  obs::CausalTracer* causal = obs_.causal;
  if (causal) {
    causal_trace_ = causal->begin_trace(prefix);
    causal_active_ = true;
    ctx_ = {};
  }

  for (NodeId v = 0; v < g_.num_nodes(); ++v) {
    if (is_up(v)) p.start(v);
  }

  while (in_flight_ > 0 || !p.idle()) {
    if (stats.rounds >= max_rounds) {
      auto breakdown = in_flight_by_type();
      if (rec) rec->span_end(span_name);
      causal_active_ = false;
      // Post-mortem: what the runtime was doing when the guard tripped.
      throw RoundLimitError(label_, stats.rounds, in_flight_,
                            nodes_with_pending(), std::move(breakdown),
                            rec ? obs::format_trace_tail(*rec, kTailEvents)
                                : std::string{});
    }
    ++stats.rounds;
    ++rounds_run_;
    if (faulty_) apply_events_through(round_offset_ + rounds_run_);
    // Swap in this round's inboxes (the head delay bucket); sends during
    // step() land next round or later.
    std::vector<std::vector<Message>> inboxes(g_.num_nodes());
    if (!queue_.empty()) {
      inboxes.swap(queue_.front());
      queue_.pop_front();
    }
    if (queue_.empty()) queue_.emplace_back(g_.num_nodes());
    std::size_t delivered = 0;
    for (const auto& inbox : inboxes) delivered += inbox.size();
    in_flight_ -= delivered;
    stats.messages += delivered;
    if (metrics_on || rec) {
      // Per-type delivered counts; under the ring-buffer trace each
      // active type becomes a Perfetto counter track.
      for (const auto& inbox : inboxes) {
        for (const Message& m : inbox) ++by_type[m.type];
      }
      if (metrics_on) {
        stats.per_round.push_back(delivered);
        h_inflight->record(static_cast<double>(in_flight_));
      }
      if (rec) {
        rec->counter(delivered_name,
                     static_cast<std::int64_t>(delivered));
        rec->counter(inflight_name, static_cast<std::int64_t>(in_flight_));
        for (const auto& [t, c] : by_type) {
          auto it = type_names.find(t);
          if (it == type_names.end()) {
            it = type_names
                     .emplace(t, rec->intern(prefix + ".msg.type" +
                                             std::to_string(t)))
                     .first;
          }
          rec->counter(it->second, static_cast<std::int64_t>(c));
        }
      }
    }
    p.on_round_begin();
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      if (faulty_ && !up_[v]) continue;
      if (trace_) {
        for (const Message& m : inboxes[v]) {
          trace_->push_back(TraceEvent{round_offset_ + rounds_run_, m.from, v,
                                       m.type, m.a, m.b, m.link, m.seq});
        }
      }
      if (causal) {
        // Close every delivered span and step under the deepest one —
        // the whole inbox happened-before anything this step sends.
        // Inbox span ids ascend (enqueue order), so "strictly deeper
        // wins" keeps the smallest id among ties: deterministic.
        obs::CausalContext best;
        const std::uint64_t round = round_offset_ + rounds_run_;
        for (const Message& m : inboxes[v]) {
          if (m.span == obs::kNoSpan) continue;
          causal->on_deliver(m.span, round);
          const obs::CausalContext c = causal->context_of(m.span);
          if (c.depth > best.depth) best = c;
        }
        ctx_ = best;
      }
      p.step(v, inboxes[v]);
    }
    // Sends between steps (the next round's on_round_begin) root fresh
    // chains unless a link layer restores a captured context.
    ctx_ = {};
  }

  if (causal) {
    stats.critical_path = causal->max_depth(causal_trace_);
    causal_active_ = false;
  }
  if (metrics_on) {
    auto& reg = *obs_.metrics;
    reg.counter(prefix + ".rounds").add(stats.rounds);
    reg.counter(prefix + ".messages").add(stats.messages);
    if (causal) {
      reg.counter(prefix + ".critical_path").add(stats.critical_path);
    }
    stats.by_type.reserve(by_type.size());
    for (const auto& [t, c] : by_type) {
      reg.counter(prefix + ".msg.type" + std::to_string(t)).add(c);
      stats.by_type.emplace_back(t, c);
    }
    reg.counter("fault.dropped").add(fstats_.dropped - fstats_before.dropped);
    reg.counter("fault.duplicated")
        .add(fstats_.duplicated - fstats_before.duplicated);
    reg.counter("fault.delayed").add(fstats_.delayed - fstats_before.delayed);
    reg.counter("fault.crash_discarded")
        .add(fstats_.crash_discarded - fstats_before.crash_discarded);
    reg.counter("fault.suppressed")
        .add(fstats_.suppressed - fstats_before.suppressed);
    reg.counter("fault.partition_dropped")
        .add(fstats_.partition_dropped - fstats_before.partition_dropped);
  }
  if (rec) rec->span_end(span_name);
  return stats;
}

}  // namespace mcds::dist
