#pragma once

#include "dist/mis_election.hpp"
#include "dist/runtime.hpp"

/// \file greedy_protocol.hpp
/// A distributed realization of the paper's Section IV algorithm. The
/// centralized rule — "add the node of globally maximum gain" — is
/// localized: per epoch,
///   1. members of G[I ∪ C] agree on component labels by min-id
///      flooding inside their component (label propagation);
///   2. members announce their final label to neighbors;
///   3. every candidate computes its gain (#distinct adjacent component
///      labels − 1) and broadcasts a bid (gain, id) two hops;
///   4. a candidate joins C iff its bid beats every competing bid it
///      heard from candidates that share one of its components
///      (lexicographic: higher gain, then smaller id).
/// Every epoch at least the globally best bidder survives its own
/// comparison, so the component count strictly decreases (Lemma 9), and
/// simultaneous winners never hurt correctness — they only add
/// connectors, which is the price of locality that the bench measures.

namespace mcds::dist {

/// Result of the distributed greedy construction.
struct DistGreedyResult {
  MisElectionResult mis;           ///< rank-elected dominators
  std::vector<NodeId> connectors;  ///< all epoch winners
  std::vector<NodeId> cds;         ///< dominators ∪ connectors, ascending
  std::size_t epochs = 0;          ///< greedy epochs executed
  RunStats total;                  ///< all phases, all epochs
  bool complete = true;  ///< every phase completed on all live nodes
};

/// Runs the protocol on \p g: leaderless rank MIS (by BFS level from the
/// min-id node, to mirror the centralized phase 1) followed by the
/// localized greedy epochs. Precondition: g connected with >= 1 node.
[[nodiscard]] DistGreedyResult distributed_greedy_cds(const Graph& g);

/// Fault-aware overload: all phases (leader, BFS, MIS, every epoch's
/// label + bid protocols) share one fault timeline. An epoch that
/// produces no winner — possible once messages are lost — ends the
/// construction with complete = false instead of throwing; termination
/// is always bounded by the epoch cap.
[[nodiscard]] DistGreedyResult distributed_greedy_cds(const Graph& g,
                                                      const RunConfig& cfg,
                                                      std::size_t round_offset =
                                                          0);

}  // namespace mcds::dist
