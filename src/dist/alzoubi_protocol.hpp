#pragma once

#include "dist/mis_election.hpp"
#include "dist/runtime.hpp"

/// \file alzoubi_protocol.hpp
/// Distributed CDS in the style of Alzoubi–Wan–Frieder [1]: no leader,
/// no BFS tree. Phase 1 elects the id-rank MIS locally; phase 2 has
/// every dominator probe its 3-hop neighborhood, and on hearing a
/// smaller-id dominator it sends a JOIN back along the recorded relay
/// path, turning the (at most two) relays into connectors. The paper
/// cites [1] as trading CDS size (a large constant ratio) for linear
/// time and messages.

namespace mcds::dist {

/// Result of the [1]-style distributed construction.
struct AlzoubiResult {
  MisElectionResult mis;           ///< id-rank dominators
  std::vector<NodeId> connectors;  ///< relays recruited by JOINs
  std::vector<NodeId> cds;         ///< dominators ∪ connectors, ascending
  RunStats mis_stats;
  RunStats connect_stats;
  RunStats total;
  bool complete = true;  ///< the MIS phase completed on all live nodes
};

/// Runs the protocol on \p g. Precondition: g connected with >= 1 node.
[[nodiscard]] AlzoubiResult distributed_alzoubi_cds(const Graph& g);

/// Fault-aware overload: both phases run under \p cfg on one fault
/// timeline. complete mirrors the MIS phase; validity of the assembled
/// cds under faults is the caller's check (core::check_cds on the
/// survivor graph).
[[nodiscard]] AlzoubiResult distributed_alzoubi_cds(const Graph& g,
                                                    const RunConfig& cfg,
                                                    std::size_t round_offset =
                                                        0);

}  // namespace mcds::dist
