#include "dist/fault.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcds::dist {

namespace {
std::uint64_t link_key(NodeId from, NodeId to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

void check_rate(double p, const std::string& what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("FaultPlan: " + what +
                                " must be a probability in [0, 1]");
  }
}
}  // namespace

void LinkFaults::validate(const char* what) const {
  const std::string where(what);
  check_rate(drop, where + ".drop");
  check_rate(duplicate, where + ".duplicate");
  if (max_delay > kMaxLinkDelay) {
    throw std::invalid_argument(
        "FaultPlan: " + where + ".max_delay = " + std::to_string(max_delay) +
        " exceeds kMaxLinkDelay (" + std::to_string(kMaxLinkDelay) +
        ") — each round of delay costs one delivery bucket per node");
  }
}

void FaultPlan::validate() const {
  link.validate("link");
  for (std::size_t i = 0; i < overrides.size(); ++i) {
    overrides[i].faults.validate(
        ("override " + std::to_string(i)).c_str());
  }
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    std::vector<NodeId> seen;
    for (const auto& group : partitions[i].groups) {
      seen.insert(seen.end(), group.begin(), group.end());
    }
    std::sort(seen.begin(), seen.end());
    if (std::adjacent_find(seen.begin(), seen.end()) != seen.end()) {
      throw std::invalid_argument(
          "FaultPlan: partition " + std::to_string(i) +
          " lists a node in two groups");
    }
  }
}

std::vector<bool> FaultPlan::up_after(std::size_t n,
                                      std::size_t through_round) const {
  std::vector<bool> up(n, true);
  // Events sharing a round apply in schedule order, so replay a
  // round-sorted copy with the original order as tiebreak.
  std::vector<std::size_t> idx(schedule.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return schedule[a].round < schedule[b].round;
  });
  for (const std::size_t i : idx) {
    const CrashEvent& e = schedule[i];
    if (e.round > through_round) break;
    if (e.node < n) up[e.node] = e.up;
  }
  return up;
}

std::vector<std::uint32_t> FaultPlan::groups_at(
    std::size_t n, std::size_t through_round) const {
  // The latest applicable event wins; same-round events apply in plan
  // order (mirroring up_after), so replay a round-sorted copy.
  const PartitionEvent* active = nullptr;
  std::vector<std::size_t> idx(partitions.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return partitions[a].round < partitions[b].round;
  });
  for (const std::size_t i : idx) {
    if (partitions[i].round > through_round) break;
    active = &partitions[i];
  }
  std::vector<std::uint32_t> group(n, 0);
  if (active == nullptr || active->heals()) return group;
  std::fill(group.begin(), group.end(),
            static_cast<std::uint32_t>(active->groups.size()));
  for (std::size_t gi = 0; gi < active->groups.size(); ++gi) {
    for (const NodeId v : active->groups[gi]) {
      if (v < n) group[v] = static_cast<std::uint32_t>(gi);
    }
  }
  return group;
}

ChannelModel::ChannelModel(const FaultPlan& plan, std::uint64_t stream)
    : default_(plan.link), rng_(sim::Rng::child(plan.seed, stream)) {
  default_.validate("link");
  overrides_.reserve(plan.overrides.size());
  for (std::size_t i = 0; i < plan.overrides.size(); ++i) {
    const LinkOverride& o = plan.overrides[i];
    o.faults.validate(("override " + std::to_string(i)).c_str());
    overrides_[link_key(o.from, o.to)] = o.faults;
  }
}

const LinkFaults& ChannelModel::resolve(NodeId from, NodeId to) const {
  if (!overrides_.empty()) {
    const auto it = overrides_.find(link_key(from, to));
    if (it != overrides_.end()) return it->second;
  }
  return default_;
}

void ChannelModel::sample(NodeId from, NodeId to,
                          std::vector<std::size_t>& delays) {
  const LinkFaults& f = resolve(from, to);
  // Fixed draw order (drop, duplicate, per-copy delay); rates of exactly
  // zero consume no randomness, so e.g. a crash-only plan with clean
  // links never touches the RNG.
  if (f.drop > 0.0 && rng_.uniform01() < f.drop) return;
  std::size_t copies = 1;
  if (f.duplicate > 0.0 && rng_.uniform01() < f.duplicate) ++copies;
  for (std::size_t c = 0; c < copies; ++c) {
    std::size_t d = 0;
    if (f.max_delay > 0) {
      d = static_cast<std::size_t>(rng_.uniform_int(f.max_delay + 1));
    }
    delays.push_back(d);
  }
}

}  // namespace mcds::dist
