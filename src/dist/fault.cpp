#include "dist/fault.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcds::dist {

namespace {
std::uint64_t link_key(NodeId from, NodeId to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

void check_rate(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                " must be a probability in [0, 1]");
  }
}

void check_faults(const LinkFaults& f) {
  check_rate(f.drop, "drop");
  check_rate(f.duplicate, "duplicate");
}
}  // namespace

std::vector<bool> FaultPlan::up_after(std::size_t n,
                                      std::size_t through_round) const {
  std::vector<bool> up(n, true);
  // Events sharing a round apply in schedule order, so replay a
  // round-sorted copy with the original order as tiebreak.
  std::vector<std::size_t> idx(schedule.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return schedule[a].round < schedule[b].round;
  });
  for (const std::size_t i : idx) {
    const CrashEvent& e = schedule[i];
    if (e.round > through_round) break;
    if (e.node < n) up[e.node] = e.up;
  }
  return up;
}

ChannelModel::ChannelModel(const FaultPlan& plan, std::uint64_t stream)
    : default_(plan.link), rng_(sim::Rng::child(plan.seed, stream)) {
  check_faults(default_);
  overrides_.reserve(plan.overrides.size());
  for (const LinkOverride& o : plan.overrides) {
    check_faults(o.faults);
    overrides_[link_key(o.from, o.to)] = o.faults;
  }
}

const LinkFaults& ChannelModel::resolve(NodeId from, NodeId to) const {
  if (!overrides_.empty()) {
    const auto it = overrides_.find(link_key(from, to));
    if (it != overrides_.end()) return it->second;
  }
  return default_;
}

void ChannelModel::sample(NodeId from, NodeId to,
                          std::vector<std::size_t>& delays) {
  const LinkFaults& f = resolve(from, to);
  // Fixed draw order (drop, duplicate, per-copy delay); rates of exactly
  // zero consume no randomness, so e.g. a crash-only plan with clean
  // links never touches the RNG.
  if (f.drop > 0.0 && rng_.uniform01() < f.drop) return;
  std::size_t copies = 1;
  if (f.duplicate > 0.0 && rng_.uniform01() < f.duplicate) ++copies;
  for (std::size_t c = 0; c < copies; ++c) {
    std::size_t d = 0;
    if (f.max_delay > 0) {
      d = static_cast<std::size_t>(rng_.uniform_int(f.max_delay + 1));
    }
    delays.push_back(d);
  }
}

}  // namespace mcds::dist
