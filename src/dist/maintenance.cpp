#include "dist/maintenance.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/repair.hpp"
#include "dist/distributed_cds.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "obs/timer.hpp"

namespace mcds::dist {

namespace {
constexpr const char* kActionName[5] = {
    "maintenance.intact", "maintenance.reconnected", "maintenance.repaired",
    "maintenance.rebuilt", "maintenance.unhealable"};
}  // namespace

SelfHealingCds::SelfHealingCds(const Graph& g, std::vector<NodeId> cds,
                               MaintenanceParams params, const obs::Obs& obs)
    : g_(g), cds_(std::move(cds)), params_(params), obs_(obs) {
  for (std::size_t i = 0; i < 5; ++i) {
    c_action_[i] = obs_.counter(kActionName[i]);
  }
  for (const NodeId v : cds_) {
    if (v >= g_.num_nodes()) {
      throw std::invalid_argument("SelfHealingCds: cds node out of range");
    }
  }
  if (!(params_.rebuild_fraction >= 0.0 && params_.rebuild_fraction <= 1.0)) {
    throw std::invalid_argument(
        "SelfHealingCds: rebuild_fraction must be in [0, 1]");
  }
  std::sort(cds_.begin(), cds_.end());
}

HealReport SelfHealingCds::on_churn(const std::vector<bool>& up) {
  if (up.size() != g_.num_nodes()) {
    throw std::invalid_argument("SelfHealingCds: liveness size mismatch");
  }
  obs::ScopedTimer timer(obs_, "heal.on_churn");
  HealReport report = heal(up);
  if (auto* c = c_action_[static_cast<std::size_t>(report.action)]) c->add();
  if (obs_.metrics) {
    obs_.metrics->histogram("maintenance.added").record(
        static_cast<double>(report.added));
    obs_.metrics->histogram("maintenance.dropped")
        .record(static_cast<double>(report.dropped));
  }
  return report;
}

HealReport SelfHealingCds::heal(const std::vector<bool>& up) {
  HealReport report;

  std::vector<NodeId> live;
  for (NodeId v = 0; v < g_.num_nodes(); ++v) {
    if (up[v]) live.push_back(v);
  }
  report.survivors = live.size();

  const std::size_t old_size = cds_.size();
  std::vector<NodeId> survivors_of_backbone;
  for (const NodeId v : cds_) {
    if (up[v]) survivors_of_backbone.push_back(v);
  }
  report.kept = survivors_of_backbone.size();
  report.dropped = old_size - survivors_of_backbone.size();

  if (live.empty()) {
    cds_.clear();
    report.action = HealAction::kUnhealable;
    report.kept = 0;
    return report;
  }

  // Everything below happens on the survivor-induced subgraph; sub ids
  // map back through sub.mapping.
  const auto sub = graph::induced_subgraph(g_, live);
  std::vector<NodeId> to_sub(g_.num_nodes(), graph::kNoNode);
  for (NodeId i = 0; i < sub.mapping.size(); ++i) {
    to_sub[sub.mapping[i]] = i;
  }
  std::vector<NodeId> backbone_sub;
  for (const NodeId v : survivors_of_backbone) {
    backbone_sub.push_back(to_sub[v]);
  }

  {
    obs::ScopedTimer t(obs_, "heal.validate");
    report.issue = core::check_cds(sub.graph, backbone_sub);
  }
  if (report.issue.ok) {
    cds_ = std::move(survivors_of_backbone);
    report.action = HealAction::kIntact;
    return report;
  }
  // Translate the witness back to full-graph ids for the caller.
  if (report.issue.witness != graph::kNoNode) {
    report.issue.witness = sub.mapping[report.issue.witness];
  }
  if (report.issue.witness2 != graph::kNoNode) {
    report.issue.witness2 = sub.mapping[report.issue.witness2];
  }

  if (!graph::is_connected(sub.graph)) {
    // No CDS of the survivor graph exists; keep the live remnant so a
    // later recovery has something to extend.
    cds_ = std::move(survivors_of_backbone);
    report.action = HealAction::kUnhealable;
    return report;
  }

  std::vector<NodeId> healed_sub;
  if (old_size > 0 && static_cast<double>(report.kept) <
                          params_.rebuild_fraction *
                              static_cast<double>(old_size)) {
    // Too little survived: re-run the distributed construction on the
    // survivor topology (phase re-run, not repair). The rebuild's own
    // phases inherit the observability sinks.
    obs::ScopedTimer t(obs_, "heal.rebuild");
    RunConfig rebuild_cfg;
    rebuild_cfg.obs = obs_;
    const DistributedCdsResult rebuilt =
        distributed_waf_cds(sub.graph, rebuild_cfg);
    healed_sub = rebuilt.cds;
    report.stats = rebuilt.total;
    report.action = HealAction::kRebuilt;
  } else if (report.issue.defect == core::CdsDefect::kDisconnected) {
    // Coverage held, only the backbone split: reglue it.
    obs::ScopedTimer t(obs_, "heal.reconnect");
    const core::RepairResult r = core::reconnect_cds(sub.graph, backbone_sub);
    healed_sub = r.cds;
    report.action = HealAction::kReconnected;
  } else {
    // Coverage lost (or the backbone died entirely): full repair.
    obs::ScopedTimer t(obs_, "heal.repair");
    const core::RepairResult r = core::repair_cds(sub.graph, backbone_sub);
    healed_sub = r.cds;
    report.action = HealAction::kRepaired;
  }

  std::vector<NodeId> healed;
  healed.reserve(healed_sub.size());
  for (const NodeId i : healed_sub) healed.push_back(sub.mapping[i]);
  std::sort(healed.begin(), healed.end());

  std::size_t still_kept = 0;
  for (const NodeId v : healed) {
    if (std::binary_search(survivors_of_backbone.begin(),
                           survivors_of_backbone.end(), v)) {
      ++still_kept;
    }
  }
  report.added = healed.size() - still_kept;
  report.dropped = old_size - still_kept;
  report.kept = still_kept;

  cds_ = std::move(healed);
  return report;
}

}  // namespace mcds::dist
