#include "dist/maintenance.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/repair.hpp"
#include "dist/distributed_cds.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "obs/timer.hpp"

namespace mcds::dist {

namespace {
constexpr const char* kActionName[5] = {
    "maintenance.intact", "maintenance.reconnected", "maintenance.repaired",
    "maintenance.rebuilt", "maintenance.unhealable"};
}  // namespace

SelfHealingCds::SelfHealingCds(const Graph& g, std::vector<NodeId> cds,
                               MaintenanceParams params, const obs::Obs& obs)
    : g_(g), cds_(std::move(cds)), params_(params), obs_(obs) {
  for (std::size_t i = 0; i < 5; ++i) {
    c_action_[i] = obs_.counter(kActionName[i]);
  }
  c_unhealable_ = obs_.counter("heal.unhealable");
  for (const NodeId v : cds_) {
    if (v >= g_.num_nodes()) {
      throw std::invalid_argument("SelfHealingCds: cds node out of range");
    }
  }
  if (!(params_.rebuild_fraction >= 0.0 && params_.rebuild_fraction <= 1.0)) {
    throw std::invalid_argument(
        "SelfHealingCds: rebuild_fraction must be in [0, 1]");
  }
  std::sort(cds_.begin(), cds_.end());
  if (!cds_.empty()) last_good_ = view();
}

void SelfHealingCds::set_island(std::vector<NodeId> island) {
  for (const NodeId v : island) {
    if (v >= g_.num_nodes()) {
      throw std::invalid_argument("SelfHealingCds: island node out of range");
    }
  }
  std::sort(island.begin(), island.end());
  island.erase(std::unique(island.begin(), island.end()), island.end());
  island_ = std::move(island);
}

BackboneView SelfHealingCds::view() const {
  BackboneView out;
  out.epoch = epoch_;
  if (island_.empty()) {
    out.island.resize(g_.num_nodes());
    for (NodeId v = 0; v < g_.num_nodes(); ++v) out.island[v] = v;
    out.cds = cds_;
    return out;
  }
  out.island = island_;
  for (const NodeId v : cds_) {
    if (std::binary_search(island_.begin(), island_.end(), v)) {
      out.cds.push_back(v);
    }
  }
  return out;
}

HealReport SelfHealingCds::on_churn(const std::vector<bool>& up) {
  if (up.size() != g_.num_nodes()) {
    throw std::invalid_argument("SelfHealingCds: liveness size mismatch");
  }
  obs::ScopedTimer timer(obs_, "heal.on_churn");
  const std::vector<NodeId> before = cds_;
  HealReport report = heal(up);
  if (cds_ != before) ++epoch_;
  report.epoch = epoch_;
  if (report.action == HealAction::kUnhealable) {
    // Degraded mode: nothing live in scope. Report what we are coasting
    // on — the newest view that still had an in-scope backbone — so an
    // operator can tell an empty island from a healer that gave up.
    report.degraded.last_good_epoch = last_good_.epoch;
    report.degraded.last_good_members = last_good_.cds.size();
    report.degraded.consecutive = ++consecutive_unhealable_;
    if (c_unhealable_) c_unhealable_->add();
  } else {
    consecutive_unhealable_ = 0;
    const BackboneView now = view();
    if (!now.cds.empty()) last_good_ = now;
  }
  if (auto* c = c_action_[static_cast<std::size_t>(report.action)]) c->add();
  if (obs_.metrics) {
    obs_.metrics->histogram("maintenance.added").record(
        static_cast<double>(report.added));
    obs_.metrics->histogram("maintenance.dropped")
        .record(static_cast<double>(report.dropped));
  }
  return report;
}

HealReport SelfHealingCds::reconcile(const std::vector<BackboneView>& views,
                                     const std::vector<bool>& up) {
  if (up.size() != g_.num_nodes()) {
    throw std::invalid_argument("SelfHealingCds: liveness size mismatch");
  }
  obs::ScopedTimer timer(obs_, "heal.reconcile");

  // Per-node merge, highest epoch wins: apply the views in ascending
  // epoch order (stable, so equal epochs resolve towards the later view
  // in argument order) on top of the current membership.
  std::vector<bool> member(g_.num_nodes(), false);
  for (const NodeId v : cds_) member[v] = true;
  std::vector<std::size_t> order(views.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return views[a].epoch < views[b].epoch;
                   });
  std::size_t max_epoch = epoch_;
  for (const std::size_t i : order) {
    const BackboneView& v = views[i];
    max_epoch = std::max(max_epoch, v.epoch);
    for (const NodeId u : v.island) {
      if (u >= g_.num_nodes()) {
        throw std::invalid_argument(
            "SelfHealingCds: view island node out of range");
      }
      member[u] = std::binary_search(v.cds.begin(), v.cds.end(), u);
    }
  }

  island_.clear();
  cds_.clear();
  for (NodeId v = 0; v < g_.num_nodes(); ++v) {
    if (member[v]) cds_.push_back(v);
  }
  // The merged union keeps every island's maintained fragment, so the
  // kept fraction stays near 1 and heal() reglues instead of rebuilding.
  epoch_ = max_epoch;
  if (auto* c = obs_.counter("maintenance.reconciled")) c->add();
  return on_churn(up);
}

HealReport SelfHealingCds::heal(const std::vector<bool>& up) {
  HealReport report;

  // The pass's scope: the island when one is set, the whole graph
  // otherwise. Backbone members outside the scope are frozen — carried
  // through untouched and invisible to the counters.
  const bool scoped = !island_.empty();
  std::vector<NodeId> live;
  if (scoped) {
    for (const NodeId v : island_) {
      if (up[v]) live.push_back(v);
    }
  } else {
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      if (up[v]) live.push_back(v);
    }
  }
  report.survivors = live.size();

  std::vector<NodeId> frozen;  // members outside the scope
  std::vector<NodeId> scope_members;
  for (const NodeId v : cds_) {
    if (scoped && !std::binary_search(island_.begin(), island_.end(), v)) {
      frozen.push_back(v);
    } else {
      scope_members.push_back(v);
    }
  }
  const std::size_t old_size = scope_members.size();

  std::vector<NodeId> survivors_of_backbone;
  for (const NodeId v : scope_members) {
    if (up[v]) survivors_of_backbone.push_back(v);
  }
  report.kept = survivors_of_backbone.size();
  report.dropped = old_size - survivors_of_backbone.size();

  const auto reassemble = [&](std::vector<NodeId> healed) {
    healed.insert(healed.end(), frozen.begin(), frozen.end());
    std::sort(healed.begin(), healed.end());
    cds_ = std::move(healed);
  };

  if (live.empty()) {
    reassemble({});
    report.action = HealAction::kUnhealable;
    report.kept = 0;
    return report;
  }

  // Everything below happens on the scope's survivor-induced subgraph
  // (possibly fragmented — crashes, or the far side of a partition cut);
  // sub ids map back through sub.mapping.
  const auto sub = graph::induced_subgraph(g_, live);
  std::vector<NodeId> to_sub(g_.num_nodes(), graph::kNoNode);
  for (NodeId i = 0; i < sub.mapping.size(); ++i) {
    to_sub[sub.mapping[i]] = i;
  }
  std::vector<NodeId> backbone_sub;
  for (const NodeId v : survivors_of_backbone) {
    backbone_sub.push_back(to_sub[v]);
  }
  const auto [comp, num_comps] = graph::connected_components(sub.graph);
  report.islands = num_comps;

  {
    obs::ScopedTimer t(obs_, "heal.validate");
    report.issue = core::check_cds_components(sub.graph, backbone_sub);
  }
  if (report.issue.ok) {
    reassemble(std::move(survivors_of_backbone));
    report.action = HealAction::kIntact;
    return report;
  }
  // Translate the witness back to full-graph ids for the caller.
  if (report.issue.witness != graph::kNoNode) {
    report.issue.witness = sub.mapping[report.issue.witness];
  }
  if (report.issue.witness2 != graph::kNoNode) {
    report.issue.witness2 = sub.mapping[report.issue.witness2];
  }

  std::vector<NodeId> healed_sub;
  if (old_size > 0 && static_cast<double>(report.kept) <
                          params_.rebuild_fraction *
                              static_cast<double>(old_size)) {
    // Too little survived: re-run the distributed construction on the
    // survivor topology, component by component (phase re-run, not
    // repair). The rebuild's own phases inherit the observability sinks.
    obs::ScopedTimer t(obs_, "heal.rebuild");
    RunConfig rebuild_cfg;
    rebuild_cfg.obs = obs_;
    if (num_comps <= 1) {
      const DistributedCdsResult rebuilt =
          distributed_waf_cds(sub.graph, rebuild_cfg);
      healed_sub = rebuilt.cds;
      report.stats = rebuilt.total;
    } else {
      std::vector<std::vector<NodeId>> nodes_of(num_comps);
      for (NodeId i = 0; i < sub.graph.num_nodes(); ++i) {
        nodes_of[comp[i]].push_back(i);
      }
      for (const auto& nodes : nodes_of) {
        const auto island = graph::induced_subgraph(sub.graph, nodes);
        const DistributedCdsResult rebuilt =
            distributed_waf_cds(island.graph, rebuild_cfg);
        for (const NodeId i : rebuilt.cds) {
          healed_sub.push_back(island.mapping[i]);
        }
        report.stats += rebuilt.total;
      }
    }
    report.action = HealAction::kRebuilt;
  } else if (report.issue.defect == core::CdsDefect::kDisconnected) {
    // Coverage held, only the backbone split within its components:
    // reglue each fragment (the cut itself cannot be bridged).
    obs::ScopedTimer t(obs_, "heal.reconnect");
    const core::RepairResult r =
        core::reconnect_cds_components(sub.graph, backbone_sub);
    healed_sub = r.cds;
    report.action = HealAction::kReconnected;
  } else {
    // Coverage lost (or the backbone died entirely): full repair.
    obs::ScopedTimer t(obs_, "heal.repair");
    const core::RepairResult r =
        core::repair_cds_components(sub.graph, backbone_sub);
    healed_sub = r.cds;
    report.action = HealAction::kRepaired;
  }

  std::vector<NodeId> healed;
  healed.reserve(healed_sub.size());
  for (const NodeId i : healed_sub) healed.push_back(sub.mapping[i]);
  std::sort(healed.begin(), healed.end());

  std::size_t still_kept = 0;
  for (const NodeId v : healed) {
    if (std::binary_search(survivors_of_backbone.begin(),
                           survivors_of_backbone.end(), v)) {
      ++still_kept;
    }
  }
  report.added = healed.size() - still_kept;
  report.dropped = old_size - still_kept;
  report.kept = still_kept;

  reassemble(std::move(healed));
  return report;
}

}  // namespace mcds::dist
