#pragma once

#include "dist/runtime.hpp"

/// \file connector_selection.hpp
/// Distributed phase 2 of the WAF construction (Section III): the
/// leader's neighbors report how many dominators they cover; the leader
/// elects the best one as s; s announces itself; every dominator not
/// covered by s invites its BFS-tree parent, which joins as a connector.

namespace mcds::dist {

/// Result of connector selection.
struct ConnectorResult {
  NodeId s = 0;                    ///< the elected neighbor of the leader
  std::vector<NodeId> connectors;  ///< s plus the invited parents
  std::vector<NodeId> cds;         ///< dominators ∪ connectors, ascending
  RunStats stats;
  bool complete = true;  ///< the election of s went through
};

/// Runs connector selection on \p g. Inputs come from the earlier
/// phases: \p leader, per-node BFS \p parent, and the \p in_mis flags.
/// Precondition: g connected with >= 2 nodes; in_mis is the rank-elected
/// MIS containing the leader.
[[nodiscard]] ConnectorResult select_connectors(
    const Graph& g, NodeId leader, const std::vector<NodeId>& parent,
    const std::vector<bool>& in_mis);

/// Fault-aware overload. The protocol is round-indexed, so under a
/// reliable link its phase thresholds stretch by the link's worst-case
/// delivery bound; a leader that hears no reports (all lost, or the
/// leader crashed) fizzles with complete = false instead of throwing.
[[nodiscard]] ConnectorResult select_connectors(
    const Graph& g, NodeId leader, const std::vector<NodeId>& parent,
    const std::vector<bool>& in_mis, const RunConfig& cfg,
    std::size_t round_offset = 0);

}  // namespace mcds::dist
