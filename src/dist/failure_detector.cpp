#include "dist/failure_detector.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcds::dist {

namespace {

/// Index of \p w in \p v's (sorted) adjacency, or SIZE_MAX.
std::size_t neighbor_index(const Graph& g, NodeId v, NodeId w) {
  const auto nbrs = g.neighbors(v);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), w);
  if (it == nbrs.end() || *it != w) return SIZE_MAX;
  return static_cast<std::size_t>(it - nbrs.begin());
}

}  // namespace

FailureDetector::FailureDetector(Transport& net,
                                 const FailureDetectorParams& params,
                                 const obs::Obs& obs)
    : net_(net), params_(params) {
  if (params_.heartbeat_every == 0) {
    throw std::invalid_argument(
        "FailureDetector: heartbeat_every must be >= 1");
  }
  if (params_.window == 0) {
    throw std::invalid_argument("FailureDetector: window must be >= 1");
  }
  if (!(params_.threshold > 0.0)) {
    throw std::invalid_argument("FailureDetector: threshold must be > 0");
  }
  const Graph& g = net_.topology();
  st_.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    st_[v].resize(g.degree(v));
  }
  dedup_by_node_.assign(g.num_nodes(), 0);
  c_heartbeats_ = obs.counter("failure_detector.heartbeats");
  c_dedup_ = obs.counter("failure_detector.dedup");
  c_suspicions_ = obs.counter("failure_detector.suspicions");
  c_recoveries_ = obs.counter("failure_detector.recoveries");
}

void FailureDetector::start(NodeId self) {
  net_.broadcast(self, Message{0, kHeartbeatType, 0, 0});
  if (c_heartbeats_) c_heartbeats_->add(net_.topology().degree(self));
}

void FailureDetector::on_round_begin() {
  ++round_;
  // Suspicion accrues only inside the observation horizon: heartbeats
  // stop at params_.rounds, so the drain rounds a link layer needs to
  // flush its last acks must not read as everyone going silent.
  if (round_ <= params_.rounds) sweep_suspicions();
}

void FailureDetector::step(NodeId self, std::span<const Message> inbox) {
  for (const Message& m : inbox) {
    if (m.type != kHeartbeatType) continue;
    const std::size_t i = neighbor_index(net_.topology(), self, m.from);
    if (i == SIZE_MAX) continue;
    Edge& e = st_[self][i];
    // Any frame proves liveness, even a stale retransmitted copy that
    // ReliableLink's backoff held for several rounds.
    e.last_seen = round_;
    if (e.suspected) {
      e.suspected = false;
      if (c_recoveries_) c_recoveries_->add(1);
    }
    if (m.a <= e.last_payload) {
      ++dedup_by_node_[self];
      if (c_dedup_) c_dedup_->add(1);
      continue;
    }
    // Fresh heartbeat: fold the arrival gap into the sliding window the
    // suspicion level is normalized by.
    const std::size_t gap = round_ - e.last_fresh;
    if (e.gaps.size() < params_.window) {
      e.gaps.push_back(gap);
      e.gap_sum += gap;
      ++e.gap_count;
    } else {
      e.gap_sum -= e.gaps[e.ring_idx];
      e.gaps[e.ring_idx] = gap;
      e.gap_sum += gap;
      e.ring_idx = (e.ring_idx + 1) % params_.window;
    }
    e.last_fresh = round_;
    e.last_payload = m.a;
  }
  if (round_ < params_.rounds && round_ % params_.heartbeat_every == 0) {
    net_.broadcast(self, Message{0, kHeartbeatType,
                                 static_cast<std::int64_t>(round_), 0});
    if (c_heartbeats_) c_heartbeats_->add(net_.topology().degree(self));
  }
}

std::size_t FailureDetector::dedup_hits() const noexcept {
  std::size_t total = 0;
  for (const std::size_t h : dedup_by_node_) total += h;
  return total;
}

double FailureDetector::phi_of(const Edge& e) const {
  const double mean =
      e.gap_count > 0
          ? static_cast<double>(e.gap_sum) / static_cast<double>(e.gap_count)
          : static_cast<double>(params_.heartbeat_every);
  const auto elapsed = static_cast<double>(round_ - e.last_seen);
  return elapsed / std::max(mean, 1.0);
}

void FailureDetector::sweep_suspicions() {
  for (auto& edges : st_) {
    for (Edge& e : edges) {
      if (!e.suspected && phi_of(e) >= params_.threshold) {
        e.suspected = true;
        if (c_suspicions_) c_suspicions_->add(1);
      }
    }
  }
  if (!track_) return;
  // Convergence is "matches the truth from here on", not "matched
  // once": a transient all-clear before the fault even fires must not
  // latch, so a later mismatch resets the mark.
  bool matches = true;
  const Graph& g = net_.topology();
  for (NodeId v = 0; matches && v < g.num_nodes(); ++v) {
    if (!up_truth_[v]) continue;
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId w = nbrs[i];
      const bool unreachable =
          !up_truth_[w] || group_truth_[v] != group_truth_[w];
      if (st_[v][i].suspected != unreachable) {
        matches = false;
        break;
      }
    }
  }
  if (!matches) {
    converged_round_.reset();
  } else if (!converged_round_.has_value()) {
    converged_round_ = round_;
  }
}

std::vector<NodeId> FailureDetector::suspects_of(NodeId observer) const {
  std::vector<NodeId> out;
  const auto nbrs = net_.topology().neighbors(observer);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (st_[observer][i].suspected) out.push_back(nbrs[i]);
  }
  return out;  // adjacency is sorted, so this is ascending already
}

double FailureDetector::phi(NodeId observer, NodeId w) const {
  const std::size_t i = neighbor_index(net_.topology(), observer, w);
  if (i == SIZE_MAX) return 0.0;
  return phi_of(st_[observer][i]);
}

void FailureDetector::track_convergence(std::vector<bool> up_truth,
                                        std::vector<std::uint32_t> group_truth) {
  const std::size_t n = net_.topology().num_nodes();
  if (up_truth.size() != n || group_truth.size() != n) {
    throw std::invalid_argument(
        "FailureDetector::track_convergence: truth vectors must have one "
        "entry per node");
  }
  up_truth_ = std::move(up_truth);
  group_truth_ = std::move(group_truth);
  track_ = true;
}

FailureDetectorResult detect_failures(const Graph& g, const RunConfig& cfg,
                                      const FailureDetectorParams& params,
                                      std::size_t round_offset) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("detect_failures: empty graph");
  }
  FaultHarness h(g, cfg, round_offset, "failure_detector");
  FailureDetector d(h.net(), params, cfg.obs);
  FailureDetectorResult out;
  out.stats = h.run(d);
  out.suspects.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out.suspects[v] = d.suspects_of(v);
  }
  return out;
}

FailureDetectorResult detect_failures(const Graph& g, const RunConfig& cfg,
                                      const FailureDetectorParams& params,
                                      std::vector<bool> up_truth,
                                      std::vector<std::uint32_t> group_truth,
                                      std::size_t round_offset) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("detect_failures: empty graph");
  }
  FaultHarness h(g, cfg, round_offset, "failure_detector");
  FailureDetector d(h.net(), params, cfg.obs);
  d.track_convergence(std::move(up_truth), std::move(group_truth));
  FailureDetectorResult out;
  out.stats = h.run(d);
  out.suspects.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out.suspects[v] = d.suspects_of(v);
  }
  out.converged_round = d.converged_round();
  return out;
}

}  // namespace mcds::dist
