#pragma once

#include <atomic>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "dist/runtime.hpp"

/// \file reliable_link.hpp
/// Stop-and-wait reliability over the lossy runtime. ReliableLink sits
/// between a protocol and the Runtime, implementing both interfaces: to
/// the protocol it is the Transport (sends get a per-directed-link
/// sequence number and are retransmitted with exponential backoff until
/// acked or the retry budget runs out); to the Runtime it is the
/// Protocol (acks incoming data, suppresses duplicate deliveries, and
/// hands deduplicated payloads to the wrapped protocol). Event-driven
/// protocols — MIS election, min-id flooding, the probe/join connector
/// phase — become loss-tolerant this way without any code change.
/// Round-indexed protocols additionally stretch their phase thresholds
/// by reliable_delivery_bound().

namespace mcds::dist {

/// Message::link tags used by the wrapper. Raw protocol traffic keeps
/// link == 0 and passes through untouched.
inline constexpr std::int32_t kLinkData = 1;
inline constexpr std::int32_t kLinkAck = 2;

/// Worst-case rounds from handing a message to ReliableLink until the
/// wrapped protocol processes it, assuming the retry budget is not
/// exhausted: the full backoff schedule plus the final delivery round,
/// capped by the TTL when one is configured (a payload older than
/// ttl_rounds is abandoned, so no delivery can land later than that).
[[nodiscard]] std::size_t reliable_delivery_bound(
    const ReliableLinkParams& params) noexcept;

/// Why the link abandoned a payload.
enum class DeliveryFailureReason : std::uint8_t {
  kRetryBudget,  ///< max_retries retransmissions went unacked
  kTtlExpired,   ///< the payload aged past ttl_rounds unacked
};

/// One payload the link gave up on — the structured delivery_failed
/// outcome a protocol (or its driver) consumes instead of inferring
/// loss from silence. The original payload is retained so the caller
/// can requeue, reroute or report it.
struct DeliveryFailure {
  NodeId from = 0;
  NodeId to = 0;
  std::uint32_t seq = 0;          ///< link-layer sequence number
  Message payload;                ///< original message (link/seq clear)
  std::size_t retransmissions = 0;  ///< retransmissions spent on it
  DeliveryFailureReason reason = DeliveryFailureReason::kRetryBudget;
};

/// The ack/retransmission wrapper. Construct against a Runtime, build
/// the protocol against *this* as its Transport, then attach() it and
/// run the link (not the protocol) on the runtime.
class ReliableLink final : public Transport, public Protocol {
 public:
  /// Throws std::invalid_argument unless rto >= 1 and max_rto >= rto.
  /// \p obs (null sinks by default) counts retransmissions, expiries and
  /// receiver-side dedup hits under "reliable_link.*".
  ReliableLink(Runtime& rt, const ReliableLinkParams& params,
               const obs::Obs& obs = {});

  /// Sets the protocol whose traffic this link carries.
  void attach(Protocol& inner) noexcept { inner_ = &inner; }

  // Transport surface (called by the wrapped protocol).
  void send(NodeId from, NodeId to, Message m) override;
  void broadcast(NodeId from, Message m) override;
  [[nodiscard]] const Graph& topology() const noexcept override {
    return rt_.topology();
  }

  // Protocol surface (driven by the runtime).
  void start(NodeId self) override;
  void on_round_begin() override;
  void step(NodeId self, std::span<const Message> inbox) override;
  /// Round barrier: integrates the per-node ack/post staging produced by
  /// (possibly concurrent) steps into the global pending list, in node
  /// order — the order the serial loop appended in.
  void on_round_end() override;
  /// Not idle while any live sender still waits for an ack — keeps the
  /// runtime ticking through empty rounds so backoff timers can fire.
  /// Packets owned by crashed senders are frozen (stable storage) and do
  /// not hold the execution open.
  [[nodiscard]] bool idle() const override;

  /// Retransmitted data packets (excluding first transmissions).
  [[nodiscard]] std::size_t retransmissions() const noexcept {
    return retransmissions_;
  }
  /// Payloads abandoned (retry budget exhausted or TTL exceeded).
  [[nodiscard]] std::size_t expired() const noexcept { return expired_; }
  /// Duplicate data frames suppressed by receiver-side dedup.
  [[nodiscard]] std::size_t dedup_hits() const noexcept;
  /// Structured record of every abandoned payload, in abandonment
  /// order. failed_deliveries().size() == expired().
  [[nodiscard]] const std::vector<DeliveryFailure>& failed_deliveries()
      const noexcept {
    return failures_;
  }

 private:
  struct Pending {
    NodeId from = 0;
    NodeId to = 0;
    Message payload;  ///< original message, link/seq fields clear
    std::uint32_t seq = 0;
    std::size_t timer = 0;  ///< rounds until the next retransmission
    std::size_t rto = 0;    ///< current backoff interval
    std::size_t retries_left = 0;
    std::size_t age = 0;  ///< rounds spent unacked (sender up), for TTL
    /// Causal context captured at first post; retransmissions restore
    /// it so a retried message extends the chain that caused it instead
    /// of rooting a fresh one (the retry is the same logical send).
    obs::CausalContext ctx;
  };

  void post(NodeId from, NodeId to, const Message& payload);
  void merge_staged();

  Runtime& rt_;
  ReliableLinkParams params_;
  Protocol* inner_ = nullptr;
  /// The global retransmission queue, in post order. Only the host
  /// thread touches it (on_round_begin timers, on_round_end merges);
  /// steps stage into the per-node arrays below instead, and the merge
  /// reproduces the serial append order exactly (all of one round's
  /// acks target pre-round entries, so erase-then-append-in-node-order
  /// equals the serial interleaving).
  std::vector<Pending> pending_;
  /// Posts a node's step produced this round (sender-owned slot).
  std::vector<std::vector<Pending>> staged_;
  /// Acks a node's step received this round: (peer, seq) of our
  /// self -> peer transmission (receiver-owned slot).
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> acked_;
  /// True when any staged_/acked_ slot is non-empty. Relaxed atomic:
  /// concurrent steps may set it; the host reads it between rounds.
  std::atomic<bool> has_staged_ = false;
  /// Next sequence number per directed link, sharded by sender.
  std::vector<std::unordered_map<NodeId, std::uint32_t>> next_seq_;
  /// Receiver-side dedup: seqs already delivered, sharded by receiver.
  std::vector<std::unordered_map<NodeId, std::unordered_set<std::uint32_t>>>
      delivered_;
  std::size_t retransmissions_ = 0;
  std::size_t expired_ = 0;
  /// Receiver-owned dedup tallies (dedup_hits() sums).
  std::vector<std::size_t> dedup_by_node_;
  std::vector<DeliveryFailure> failures_;
  /// Pre-resolved metric sinks (nullptr when observability is off, so
  /// the hot paths pay one pointer test each).
  obs::Counter* c_retx_ = nullptr;
  obs::Counter* c_expired_ = nullptr;
  obs::Counter* c_dedup_ = nullptr;
  obs::Counter* c_failed_ = nullptr;
};

/// Plumbing shared by the fault-aware protocol entry points: one
/// Runtime placed at \p round_offset on the plan's timeline, plus the
/// optional ReliableLink in front of it, built from one RunConfig.
class FaultHarness {
 public:
  /// \p label names the protocol in spans, metric prefixes and
  /// round-limit diagnostics (empty = unlabeled).
  FaultHarness(const Graph& g, const RunConfig& cfg, std::size_t round_offset,
               std::string label = {})
      : rt_(g, cfg.plan, round_offset), max_rounds_(cfg.max_rounds) {
    rt_.record_trace(cfg.trace);
    rt_.observe(cfg.obs, std::move(label));
    rt_.parallelize(cfg.pool, cfg.shard_grain);
    if (cfg.reliable) link_.emplace(rt_, cfg.link, cfg.obs);
  }

  /// The transport to build the protocol against.
  [[nodiscard]] Transport& net() noexcept {
    return link_ ? static_cast<Transport&>(*link_) : rt_;
  }

  /// Runs \p p to quiescence (through the link when configured).
  RunStats run(Protocol& p) {
    if (!link_) return rt_.run(p, max_rounds_);
    link_->attach(p);
    return rt_.run(*link_, max_rounds_);
  }

  [[nodiscard]] Runtime& runtime() noexcept { return rt_; }
  [[nodiscard]] const ReliableLink* link() const noexcept {
    return link_ ? &*link_ : nullptr;
  }

 private:
  Runtime rt_;
  std::optional<ReliableLink> link_;
  std::size_t max_rounds_;
};

}  // namespace mcds::dist
