#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "obs/obs.hpp"
#include "sim/rng.hpp"

/// \file fault.hpp
/// Fault model for the distributed runtime. A FaultPlan describes, ahead
/// of an execution, everything that will go wrong: per-link message
/// drop/duplication/delay rates, a fail-stop crash/recovery schedule,
/// and scheduled network partitions (the node set splits into groups;
/// cross-group messages are dropped until a later event heals the cut).
/// The plan is purely declarative and seeded — identical (plan, protocol)
/// pairs replay identical executions, so any chaos-test failure is
/// reproducible from the seed printed with it. The Runtime consults a
/// ChannelModel built from the plan at send time; with the default
/// (trivial) plan the runtime behaves exactly as the ideal synchronous
/// model the paper assumes. Plans serialize to JSON (fault_json.hpp) so
/// fuzzer-minimized repros replay from the command line.

namespace mcds::par {
class ThreadPool;
}  // namespace mcds::par

namespace mcds::dist {

using graph::Graph;
using graph::NodeId;

/// Upper bound on LinkFaults::max_delay. Each extra round of delay costs
/// one queue bucket per node in the runtime, so an absurd delay (a typo,
/// an overflowing subtraction in a generator) would silently allocate
/// gigabytes at delivery time; plans reject it at construction instead.
inline constexpr std::size_t kMaxLinkDelay = 1u << 20;

/// Fault rates of one directed link (or of every link, when used as the
/// plan default). All zero = a perfect link.
struct LinkFaults {
  double drop = 0.0;       ///< per-message loss probability in [0, 1]
  double duplicate = 0.0;  ///< probability of delivering one extra copy
  std::size_t max_delay = 0;  ///< extra delivery delay, uniform in
                              ///< [0, max_delay] rounds (reorders traffic)

  /// True if this link never misbehaves.
  [[nodiscard]] bool clean() const noexcept {
    return drop == 0.0 && duplicate == 0.0 && max_delay == 0;
  }

  /// Throws std::invalid_argument unless drop and duplicate are
  /// probabilities in [0, 1] and max_delay <= kMaxLinkDelay. \p what
  /// names the link in the error ("link", "override 3", ...).
  void validate(const char* what = "link") const;
};

/// Per-link exception to the plan's default fault rates.
struct LinkOverride {
  NodeId from = 0;
  NodeId to = 0;
  LinkFaults faults;
};

/// One fail-stop transition. Events with round r are applied at the
/// beginning of round r, before that round's deliveries; round 0 means
/// "before the protocol starts". A down node neither receives (queued
/// messages are discarded) nor steps nor sends; a recovered node resumes
/// with its protocol state intact (crash-recover with stable storage).
struct CrashEvent {
  std::size_t round = 0;
  NodeId node = 0;
  bool up = false;  ///< false = crash, true = recovery
};

/// One scheduled partition transition, applied at the beginning of round
/// `round` alongside that round's crash events. The node set splits into
/// the listed groups; nodes absent from every group share one implicit
/// extra group (so `{{a, b}}` isolates a and b from everyone else).
/// While a partition is active, messages whose endpoints are in
/// different groups are dropped at send time (before any channel
/// randomness is consumed, so partitions compose deterministically with
/// drop/dup/delay). An event with an empty group list heals the network:
/// later traffic flows everywhere again, but messages already lost to
/// the cut stay lost. The latest event with round <= r defines the
/// grouping of round r.
struct PartitionEvent {
  std::size_t round = 0;
  std::vector<std::vector<NodeId>> groups;

  /// True if this event restores full connectivity.
  [[nodiscard]] bool heals() const noexcept { return groups.empty(); }
};

/// A complete, deterministic fault schedule for one execution (possibly
/// spanning several protocol phases — each phase's Runtime picks up the
/// timeline at its round offset). The default-constructed plan is
/// trivial: no faults, and the runtime's behavior is bit-identical to
/// the fault-free implementation.
struct FaultPlan {
  LinkFaults link;                      ///< default for every directed link
  std::vector<LinkOverride> overrides;  ///< per-link exceptions
  std::vector<CrashEvent> schedule;     ///< crash/recovery events
  std::vector<PartitionEvent> partitions;  ///< scheduled splits/heals
  std::uint64_t seed = 0;               ///< drives all drop/dup/delay draws

  /// True if the plan injects no fault at all.
  [[nodiscard]] bool trivial() const noexcept {
    return link.clean() && overrides.empty() && schedule.empty() &&
           partitions.empty();
  }

  /// Full structural validation: every fault rate must be a probability,
  /// every delay below kMaxLinkDelay, and no partition event may list
  /// one node in two groups. Throws std::invalid_argument with a message
  /// naming the offending field. The Runtime and ChannelModel validate
  /// at construction so a malformed plan fails before the first
  /// delivery, not during it.
  void validate() const;

  /// Node liveness after every event with round <= \p through_round has
  /// been applied (pass SIZE_MAX for the final state — the chaos
  /// harness's survivor set).
  [[nodiscard]] std::vector<bool> up_after(std::size_t n,
                                           std::size_t through_round) const;

  /// Partition-group label of every node after the last partition event
  /// with round <= \p through_round (all zero = no cut active). Nodes
  /// absent from that event's groups share label groups.size().
  [[nodiscard]] std::vector<std::uint32_t> groups_at(
      std::size_t n, std::size_t through_round) const;
};

/// The seeded per-link fate sampler the Runtime consults on every send.
/// Decisions are drawn in a fixed order (drop, duplicate, per-copy
/// delay), so the fate sequence is fully determined by (plan seed,
/// stream, send order).
class ChannelModel {
 public:
  /// \p stream decorrelates the draw sequences of multi-phase runs that
  /// share one plan (each phase passes its round offset).
  ChannelModel(const FaultPlan& plan, std::uint64_t stream);

  /// Appends the delivery delays (in extra rounds; 0 = the normal
  /// next-round delivery) of one message on \p from -> \p to to
  /// \p delays. No appended entry = the message is dropped; more than
  /// one = duplication.
  void sample(NodeId from, NodeId to, std::vector<std::size_t>& delays);

 private:
  [[nodiscard]] const LinkFaults& resolve(NodeId from, NodeId to) const;

  LinkFaults default_;
  std::unordered_map<std::uint64_t, LinkFaults> overrides_;
  sim::Rng rng_;
};

/// Fault-side accounting of one Runtime execution (the RunStats
/// delivered-message/round counters are unchanged by this subsystem).
struct FaultStats {
  std::size_t dropped = 0;          ///< messages lost by the channel
  std::size_t duplicated = 0;       ///< extra copies injected
  std::size_t delayed = 0;          ///< copies delivered >= 1 round late
  std::size_t crash_discarded = 0;  ///< queued messages lost to a crash
  std::size_t suppressed = 0;       ///< sends while an endpoint was down
  std::size_t partition_dropped = 0;  ///< messages lost across a cut
                                      ///< (sends plus in-flight at split)
};

/// One delivered message, as recorded by Runtime::record_trace. Two
/// executions are behaviorally identical iff their traces are equal —
/// the determinism guard and the zero-fault differential test compare
/// these.
struct TraceEvent {
  std::size_t round = 0;  ///< global round (offset + local round)
  NodeId from = 0;
  NodeId to = 0;
  std::int32_t type = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int32_t link = 0;
  std::uint32_t seq = 0;

  bool operator==(const TraceEvent&) const = default;
};

/// Parameters of the ReliableLink ack/retransmission wrapper.
struct ReliableLinkParams {
  std::size_t max_retries = 12;  ///< retransmissions before giving up
  std::size_t rto = 3;  ///< rounds between (re)transmissions. An ack takes
                        ///< two rounds to return, so rto >= 3 keeps a clean
                        ///< link free of spurious retransmits.
  std::size_t max_rto = 16;  ///< exponential-backoff cap
  /// Time-to-live: total rounds a payload may sit unacked (while its
  /// sender is up) before the link gives up on it regardless of the
  /// retry budget. 0 = no TTL (budget-only). Either way, an abandoned
  /// payload surfaces as a structured DeliveryFailure — a permanently
  /// dead peer produces a bounded number of retransmissions and a
  /// delivery_failed outcome, never an unbounded retry loop.
  std::size_t ttl_rounds = 0;
};

/// How to execute a protocol under faults: the plan, whether to route
/// its traffic through ReliableLink, and the livelock guard. The
/// default config reproduces the ideal fault-free execution exactly.
struct RunConfig {
  FaultPlan plan;
  bool reliable = false;  ///< wrap protocol traffic in ReliableLink
  ReliableLinkParams link;
  std::size_t max_rounds = 1u << 20;
  /// When non-null, every delivered message of every phase is appended
  /// here (global round numbers). Must outlive the run.
  std::vector<TraceEvent>* trace = nullptr;
  /// Observability sinks (metrics registry and/or structured trace
  /// recorder) threaded through every phase's runtime and link layer.
  /// Default: null sinks — zero-overhead disabled instrumentation.
  obs::Obs obs;
  /// When non-null, every phase's runtime executes its rounds in
  /// parallel on this pool (see Runtime::parallelize) — byte-identical
  /// to the serial execution at any thread count. The pool must outlive
  /// the run.
  par::ThreadPool* pool = nullptr;
  /// Nodes per shard for parallel rounds (0 = auto).
  std::size_t shard_grain = 0;
};

}  // namespace mcds::dist
