#include "dist/fault_json.hpp"

#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace mcds::dist {

namespace {

// ---------------------------------------------------------------- writer

void write_rate(std::ostringstream& out, double v) {
  // max_digits10 round-trips every double; trim the noise for the
  // common exact cases so hand-reading a repro stays pleasant.
  if (v == static_cast<double>(static_cast<long long>(v))) {
    out << static_cast<long long>(v);
    return;
  }
  std::ostringstream tmp;
  tmp.precision(std::numeric_limits<double>::max_digits10);
  tmp << v;
  out << tmp.str();
}

void write_link(std::ostringstream& out, const LinkFaults& f) {
  out << "\"drop\": ";
  write_rate(out, f.drop);
  out << ", \"duplicate\": ";
  write_rate(out, f.duplicate);
  out << ", \"max_delay\": " << f.max_delay;
}

// ---------------------------------------------------------------- parser
//
// A strict recursive-descent reader for exactly the subset to_json
// emits: objects, arrays, unsigned integers, non-negative decimals and
// booleans. Strings only appear as keys. Errors carry the byte offset.

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  FaultPlan parse() {
    FaultPlan plan;
    expect('{');
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_key();
      if (key == "seed") {
        plan.seed = parse_u64("seed");
      } else if (key == "link") {
        plan.link = parse_link();
      } else if (key == "overrides") {
        parse_array("overrides", [&] {
          plan.overrides.push_back(parse_override());
        });
      } else if (key == "schedule") {
        parse_array("schedule", [&] {
          plan.schedule.push_back(parse_crash());
        });
      } else if (key == "partitions") {
        parse_array("partitions", [&] {
          plan.partitions.push_back(parse_partition());
        });
      } else {
        fail("unknown key \"" + key + "\"");
      }
    }
    expect('}');
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after plan object");
    return plan;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("FaultPlan JSON, byte " +
                                std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  std::string parse_key() {
    expect('"');
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') fail("escapes are not supported in keys");
      ++pos_;
    }
    if (pos_ >= text_.size()) fail("unterminated key");
    std::string key(text_.substr(begin, pos_ - begin));
    ++pos_;
    expect(':');
    return key;
  }

  std::uint64_t parse_u64(const char* what) {
    skip_ws();
    const std::size_t begin = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ == begin) fail(std::string(what) + " must be an unsigned integer");
    std::uint64_t v = 0;
    for (std::size_t i = begin; i < pos_; ++i) {
      const auto digit = static_cast<std::uint64_t>(text_[i] - '0');
      if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
        fail(std::string(what) + " overflows 64 bits");
      }
      v = v * 10 + digit;
    }
    return v;
  }

  double parse_rate(const char* what) {
    skip_ws();
    const std::size_t begin = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
          c != 'e' && c != 'E' && c != '+' && c != '-') {
        break;
      }
      ++pos_;
    }
    if (pos_ == begin) fail(std::string(what) + " must be a number");
    const std::string token(text_.substr(begin, pos_ - begin));
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(token, &used);
    } catch (const std::exception&) {
      fail(std::string(what) + " is not a valid number");
    }
    if (used != token.size()) fail(std::string(what) + " is not a valid number");
    return v;
  }

  bool parse_bool(const char* what) {
    skip_ws();
    if (text_.substr(pos_).starts_with("true")) {
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_).starts_with("false")) {
      pos_ += 5;
      return false;
    }
    fail(std::string(what) + " must be true or false");
  }

  template <typename Fn>
  void parse_array(const char* what, Fn element) {
    expect('[');
    bool first = true;
    while (!peek_is(']')) {
      if (!first) expect(',');
      first = false;
      element();
    }
    expect(']');
    (void)what;
  }

  /// Parses an object whose keys are dispatched through \p field;
  /// field() must consume the value and return false on unknown keys.
  template <typename Fn>
  void parse_object(const char* what, Fn field) {
    expect('{');
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_key();
      if (!field(key)) {
        fail("unknown key \"" + key + "\" in " + what);
      }
    }
    expect('}');
  }

  bool link_field(LinkFaults& f, const std::string& key) {
    if (key == "drop") {
      f.drop = parse_rate("drop");
    } else if (key == "duplicate") {
      f.duplicate = parse_rate("duplicate");
    } else if (key == "max_delay") {
      f.max_delay = static_cast<std::size_t>(parse_u64("max_delay"));
    } else {
      return false;
    }
    return true;
  }

  LinkFaults parse_link() {
    LinkFaults f;
    parse_object("link", [&](const std::string& key) {
      return link_field(f, key);
    });
    return f;
  }

  LinkOverride parse_override() {
    LinkOverride o;
    parse_object("override", [&](const std::string& key) {
      if (key == "from") {
        o.from = static_cast<NodeId>(parse_u64("from"));
      } else if (key == "to") {
        o.to = static_cast<NodeId>(parse_u64("to"));
      } else {
        return link_field(o.faults, key);
      }
      return true;
    });
    return o;
  }

  CrashEvent parse_crash() {
    CrashEvent e;
    parse_object("schedule event", [&](const std::string& key) {
      if (key == "round") {
        e.round = static_cast<std::size_t>(parse_u64("round"));
      } else if (key == "node") {
        e.node = static_cast<NodeId>(parse_u64("node"));
      } else if (key == "up") {
        e.up = parse_bool("up");
      } else {
        return false;
      }
      return true;
    });
    return e;
  }

  PartitionEvent parse_partition() {
    PartitionEvent e;
    parse_object("partition event", [&](const std::string& key) {
      if (key == "round") {
        e.round = static_cast<std::size_t>(parse_u64("round"));
      } else if (key == "groups") {
        parse_array("groups", [&] {
          std::vector<NodeId> group;
          parse_array("group", [&] {
            group.push_back(static_cast<NodeId>(parse_u64("node")));
          });
          e.groups.push_back(std::move(group));
        });
      } else {
        return false;
      }
      return true;
    });
    return e;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_json(const FaultPlan& plan) {
  std::ostringstream out;
  out << "{\"seed\": " << plan.seed << ", \"link\": {";
  write_link(out, plan.link);
  out << "}, \"overrides\": [";
  for (std::size_t i = 0; i < plan.overrides.size(); ++i) {
    const LinkOverride& o = plan.overrides[i];
    if (i > 0) out << ", ";
    out << "{\"from\": " << o.from << ", \"to\": " << o.to << ", ";
    write_link(out, o.faults);
    out << "}";
  }
  out << "], \"schedule\": [";
  for (std::size_t i = 0; i < plan.schedule.size(); ++i) {
    const CrashEvent& e = plan.schedule[i];
    if (i > 0) out << ", ";
    out << "{\"round\": " << e.round << ", \"node\": " << e.node
        << ", \"up\": " << (e.up ? "true" : "false") << "}";
  }
  out << "], \"partitions\": [";
  for (std::size_t i = 0; i < plan.partitions.size(); ++i) {
    const PartitionEvent& e = plan.partitions[i];
    if (i > 0) out << ", ";
    out << "{\"round\": " << e.round << ", \"groups\": [";
    for (std::size_t gi = 0; gi < e.groups.size(); ++gi) {
      if (gi > 0) out << ", ";
      out << "[";
      for (std::size_t vi = 0; vi < e.groups[gi].size(); ++vi) {
        if (vi > 0) out << ", ";
        out << e.groups[gi][vi];
      }
      out << "]";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

FaultPlan fault_plan_from_json(std::string_view json) {
  FaultPlan plan = Parser(json).parse();
  plan.validate();
  return plan;
}

void save_fault_plan(const FaultPlan& plan, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_fault_plan: cannot open " + path);
  }
  out << to_json(plan) << "\n";
  if (!out.flush()) {
    throw std::runtime_error("save_fault_plan: write to " + path + " failed");
  }
}

FaultPlan load_fault_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_fault_plan: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return fault_plan_from_json(buf.str());
}

}  // namespace mcds::dist
