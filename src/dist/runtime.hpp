#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/fault.hpp"
#include "graph/graph.hpp"
#include "obs/causal.hpp"
#include "obs/obs.hpp"

/// \file runtime.hpp
/// A synchronous round-based message-passing runtime over a fixed
/// communication topology — the execution model in which the paper's
/// distributed algorithms are stated (nodes exchange messages with
/// one-hop neighbors; a round delivers everything sent in the previous
/// round). The runtime counts rounds and messages so the cost benches
/// (experiment E11) can report protocol overheads.
///
/// Beyond the ideal model, the runtime can execute under a declarative
/// FaultPlan (fault.hpp): per-link message drop/duplication/delay, a
/// fail-stop crash schedule and scheduled network partitions, all
/// consulted at delivery time. With the default (trivial) plan the
/// execution is bit-identical to the ideal fault-free model.
///
/// Parallel round execution: the round boundary is a global barrier and
/// step() implementations are node-local, so a round's steps can run
/// concurrently on a par::ThreadPool (parallelize()). Workers capture
/// raw sends into per-shard outboxes; at the barrier the outboxes are
/// replayed through route() in (node id, send order) — exactly the
/// order the serial loop would have produced — so channel RNG draws,
/// fault application, causal span ids, trace events and RunStats are
/// byte-identical to the serial runtime at any thread count.

namespace mcds::par {
class ThreadPool;
}  // namespace mcds::par

namespace mcds::dist {

using graph::Graph;
using graph::NodeId;

/// A protocol message. Protocols define their own meaning for `type`,
/// `a` and `b`; `from` is stamped by the runtime. `link` and `seq` are
/// reserved for link-layer wrappers (ReliableLink) and stay zero on raw
/// traffic. `span` is the causal trace context the runtime stamps at
/// send time when a CausalTracer is attached (0 = untraced); the span
/// id resolves to the full (trace, parent span) coordinates in the
/// tracer's table, so the envelope carries one word, not two.
struct Message {
  NodeId from = 0;
  std::int32_t type = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int32_t link = 0;   ///< link-layer tag (0 = raw payload)
  std::uint32_t seq = 0;   ///< link-layer sequence number
  obs::SpanId span = obs::kNoSpan;  ///< causal span id (0 = untraced)
};

/// Cost accounting for one protocol execution. Beyond the paper's
/// two-field round/message model, a run executed with metrics enabled
/// (RunConfig::obs) also aggregates a per-Message::type and a per-round
/// breakdown from the registry; both stay empty — at zero cost — on the
/// uninstrumented path.
struct RunStats {
  std::size_t rounds = 0;    ///< synchronous rounds executed
  std::size_t messages = 0;  ///< point-to-point messages delivered
  /// Longest send→deliver→send chain (messages) of this execution — the
  /// causal lower bound on convergence, independent of round batching.
  /// Populated only when the runtime ran with a CausalTracer attached;
  /// += sums (consecutive phases are barrier-synchronized, so the
  /// construction-wide bound is the sum of the per-phase bounds).
  std::size_t critical_path = 0;
  /// Delivered messages by Message::type, ascending type. Populated only
  /// when the runtime ran with metrics enabled; += merges by type.
  std::vector<std::pair<std::int32_t, std::size_t>> by_type;
  /// Messages delivered in each executed round. Populated only with
  /// metrics enabled; += concatenates (phases execute consecutively on
  /// one timeline).
  std::vector<std::size_t> per_round;

  /// Delivered count of \p type (0 when absent or not recorded).
  [[nodiscard]] std::size_t of_type(std::int32_t type) const noexcept;

  RunStats& operator+=(const RunStats& o);
};

/// Thrown by Runtime::run when the round guard trips. Carries the
/// diagnostic state — rounds executed, messages still in flight, and
/// the non-quiescent nodes (those with queued traffic) — all of which
/// is also formatted into what().
class RoundLimitError : public std::runtime_error {
 public:
  /// \p trace_tail (optional) is a formatted post-mortem of the last
  /// trace events before the limit tripped (obs::format_trace_tail);
  /// when non-empty it is appended to what().
  RoundLimitError(std::string protocol, std::size_t rounds_run,
                  std::size_t in_flight, std::vector<NodeId> pending_nodes,
                  std::vector<std::pair<std::int32_t, std::size_t>>
                      in_flight_by_type,
                  std::string trace_tail = {});

  [[nodiscard]] std::size_t rounds_run() const noexcept { return rounds_; }
  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }
  /// Nodes with undelivered queued messages, ascending.
  [[nodiscard]] const std::vector<NodeId>& pending_nodes() const noexcept {
    return pending_;
  }
  /// The protocol label the runtime ran under ("" when unlabeled).
  [[nodiscard]] const std::string& protocol() const noexcept {
    return protocol_;
  }
  /// Undelivered messages by Message::type, ascending type — names the
  /// traffic that kept the execution alive (link-layer data/ack frames
  /// are tagged as such in what()).
  [[nodiscard]] const std::vector<std::pair<std::int32_t, std::size_t>>&
  in_flight_by_type() const noexcept {
    return by_type_;
  }

 private:
  std::string protocol_;
  std::size_t rounds_ = 0;
  std::size_t in_flight_ = 0;
  std::vector<NodeId> pending_;
  std::vector<std::pair<std::int32_t, std::size_t>> by_type_;
};

/// The message-passing surface protocols send through. Runtime is the
/// raw (best-effort) transport; ReliableLink wraps one with
/// ack/retransmission. Protocols written against Transport can opt into
/// reliability without code changes.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends \p m from \p from to the one-hop neighbor \p to (delivered
  /// next round). Throws std::invalid_argument if {from,to} is not an
  /// edge of the topology.
  virtual void send(NodeId from, NodeId to, Message m) = 0;

  /// Sends \p m from \p from to all of its neighbors.
  virtual void broadcast(NodeId from, Message m) = 0;

  /// The topology.
  [[nodiscard]] virtual const Graph& topology() const noexcept = 0;
};

/// A node-local protocol. The runtime calls start() once for every node,
/// then step() each round with the node's inbox, until a round passes
/// with no messages in flight (quiescence) or the protocol declares
/// completion via Runtime::all_idle_means_done.
///
/// Threading contract: step(self, ...) may run concurrently with other
/// nodes' steps when the runtime executes parallel rounds, so it must
/// only write state owned by `self` (and must not write adjacent bits
/// of a shared std::vector<bool>). start(), on_round_begin() and
/// on_round_end() are always invoked from the host thread.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called once per node before round 0; may send initial messages.
  virtual void start(NodeId self) = 0;

  /// Called once at the beginning of each round, before any step().
  /// Lets phase-structured protocols advance a local round counter.
  virtual void on_round_begin() {}

  /// Called once per node per round with the messages delivered this
  /// round (possibly empty once the protocol is winding down). The span
  /// points into the runtime's recycled inbox arena and is only valid
  /// for the duration of the call.
  virtual void step(NodeId self, std::span<const Message> inbox) = 0;

  /// Called once at the end of each round, after every step() and after
  /// captured sends have been routed — the round barrier. Protocols
  /// that defer cross-node bookkeeping from step() (ReliableLink's
  /// pending-list merges) integrate it here, on the host thread.
  virtual void on_round_end() {}

  /// Quiescence hook: the runtime keeps executing rounds while messages
  /// are in flight *or* this returns false. Link layers with pending
  /// retransmission timers override it; plain protocols never need to.
  [[nodiscard]] virtual bool idle() const { return true; }
};

/// The synchronous runtime: owns the delivery queues and runs a Protocol
/// to quiescence over a topology, optionally injecting faults from a
/// FaultPlan.
class Runtime final : public Transport {
 public:
  /// Ideal fault-free runtime. \p g must outlive the runtime.
  explicit Runtime(const Graph& g);

  /// Fault-injecting runtime. \p round_offset places this execution on
  /// the plan's global timeline: events with round <= round_offset are
  /// applied before start() (supporting multi-phase constructions that
  /// thread one plan through consecutive runtimes), and the channel
  /// draw stream is decorrelated per offset.
  Runtime(const Graph& g, const FaultPlan& plan, std::size_t round_offset = 0);

  void send(NodeId from, NodeId to, Message m) override;
  void broadcast(NodeId from, Message m) override;

  /// Switches run() to parallel round execution on \p pool (nullptr
  /// restores the serial loop). Live nodes are partitioned into
  /// contiguous shards of \p grain nodes (0 = auto) stepped
  /// concurrently; outboxes are merged at the barrier in (node id, send
  /// order), so the execution is byte-identical to the serial loop at
  /// any thread count. The pool must outlive every run().
  void parallelize(par::ThreadPool* pool, std::size_t grain = 0) noexcept {
    pool_ = pool;
    grain_ = grain;
  }

  /// Runs \p p until no messages are in flight and p.idle(). \p
  /// max_rounds guards against livelock; exceeding it throws
  /// RoundLimitError (a std::runtime_error).
  RunStats run(Protocol& p, std::size_t max_rounds = 1u << 20);

  /// The topology.
  [[nodiscard]] const Graph& topology() const noexcept override { return g_; }

  /// Liveness of \p v on the plan's schedule (always true fault-free).
  [[nodiscard]] bool is_up(NodeId v) const {
    return up_.empty() || up_[v];
  }

  /// Partition-group label of \p v under the currently active cut
  /// (0 for every node when no partition is active).
  [[nodiscard]] std::uint32_t group_of(NodeId v) const {
    return group_.empty() ? 0 : group_[v];
  }

  /// True if a cut currently separates \p from and \p to.
  [[nodiscard]] bool partitioned(NodeId from, NodeId to) const {
    return !group_.empty() && group_[from] != group_[to];
  }

  /// Fault-side accounting (all zero for the fault-free runtime).
  [[nodiscard]] const FaultStats& faults() const noexcept { return fstats_; }

  /// Streams every delivered message into \p sink (nullptr disables).
  /// The sink must outlive the run.
  void record_trace(std::vector<TraceEvent>* sink) noexcept { trace_ = sink; }

  /// Attaches observability sinks (null sinks by default) and the
  /// protocol label used for span names, metric prefixes and round-limit
  /// diagnostics. All sinks must outlive the runtime. With obs.causal
  /// set, run() opens one causal trace labeled with the protocol name,
  /// stamps a span id into every transmitted envelope and closes spans
  /// at delivery — RunStats::critical_path reports the longest chain.
  void observe(const obs::Obs& obs, std::string label = {});

  /// The causal context sends are currently attributed to: the deepest
  /// span delivered to the stepping node this round, or the root
  /// context between steps. Link layers that resend a message later
  /// (ReliableLink retransmission timers) capture the context at first
  /// post and restore it around the retransmit so retries extend the
  /// original chain instead of starting a new one. Thread-safe during
  /// parallel steps (each worker sees its stepping node's context).
  [[nodiscard]] obs::CausalContext context() const noexcept;
  void set_context(const obs::CausalContext& ctx) noexcept { ctx_ = ctx; }

 private:
  /// One future delivery slot: messages that cross the same number of
  /// round boundaries, in send order. Flat parallel arrays instead of
  /// per-destination vectors so a round's enqueues are appends into one
  /// recycled buffer.
  struct Bucket {
    std::vector<Message> msgs;
    std::vector<NodeId> tos;  ///< destination of msgs[i]

    [[nodiscard]] bool empty() const noexcept { return msgs.empty(); }
    void clear() noexcept {
      msgs.clear();
      tos.clear();
    }
  };

  /// The recycled inbox arena: each round the due Bucket is grouped by
  /// destination into one flat Message buffer (stable counting sort, so
  /// per-destination order is enqueue order) and protocols step over
  /// spans into it. All buffers are reused across rounds — after
  /// warmup the per-round cost is O(delivered), with no allocation.
  class InboxArena {
   public:
    void reset(std::size_t n);
    void stage(const Bucket& due);
    [[nodiscard]] std::span<const Message> inbox(NodeId v) const noexcept {
      if (epoch_of_[v] != epoch_) return {};
      return {buf_.data() + begin_[v], len_[v]};
    }
    /// Every message delivered this round (grouped by destination).
    [[nodiscard]] std::span<const Message> all() const noexcept {
      return buf_;
    }

   private:
    std::vector<Message> buf_;
    std::vector<std::uint32_t> begin_;
    std::vector<std::uint32_t> len_;
    std::vector<std::uint32_t> cursor_;
    std::vector<std::uint64_t> epoch_of_;
    std::uint64_t epoch_ = 0;
    std::vector<NodeId> touched_;  ///< destinations, first-seen order
  };

  /// A send captured during a parallel step, replayed at the barrier.
  struct CapturedSend {
    NodeId to = 0;
    Message m;  ///< from already stamped
  };

  /// Per-shard outbox: sends in step order, plus the cumulative send
  /// count after each node of the shard (robust node boundaries even if
  /// a protocol sends with from != self).
  struct ShardBuf {
    std::vector<CapturedSend> sends;
    std::vector<std::uint32_t> node_end;

    void clear() noexcept {
      sends.clear();
      node_end.clear();
    }
  };

  /// Worker-side capture target + causal context of the node being
  /// stepped. Null buf = direct routing (serial loop / host thread).
  struct StepCtx {
    ShardBuf* buf = nullptr;
    obs::CausalContext ctx;
  };
  static thread_local StepCtx tl_step_;

  void route(NodeId from, NodeId to, const Message& m);
  void enqueue(NodeId to, const Message& m, std::size_t delay);
  void apply_events_through(std::size_t global_round);
  void apply_partition(const PartitionEvent& e);
  void discard_queued(const PartitionEvent* cut, NodeId crashed);
  [[nodiscard]] Bucket take_spare();
  void recycle(Bucket&& b);
  [[nodiscard]] std::vector<NodeId> nodes_with_pending() const;
  [[nodiscard]] std::vector<std::pair<std::int32_t, std::size_t>>
  in_flight_by_type() const;
  [[nodiscard]] obs::CausalContext deepest_context(
      std::span<const Message> inbox) const noexcept;

  const Graph& g_;
  /// Bounds-check-free CSR view for route()'s O(log deg) edge check
  /// (unset only for a not-yet-finalized topology).
  std::optional<graph::FrozenGraph> frozen_;
  FaultPlan plan_;  ///< empty for the fault-free constructor
  bool faulty_ = false;
  std::optional<ChannelModel> model_;
  std::vector<bool> up_;  ///< empty on the fault-free fast path
  /// Active partition grouping (empty = no partition scheduled or the
  /// network healed back into one group).
  std::vector<std::uint32_t> group_;
  /// queue_[d]: messages crossing d+1 more round boundaries (queue_[0]
  /// is the next round's traffic), recycled through spare_.
  std::deque<Bucket> queue_;
  std::vector<Bucket> spare_;
  InboxArena arena_;
  std::size_t in_flight_ = 0;
  std::size_t round_offset_ = 0;
  std::size_t rounds_run_ = 0;
  std::size_t next_event_ = 0;  ///< cursor into the sorted schedule
  std::size_t next_partition_ = 0;  ///< cursor into sorted partitions
  FaultStats fstats_;
  std::vector<TraceEvent>* trace_ = nullptr;
  std::vector<std::size_t> delays_scratch_;
  par::ThreadPool* pool_ = nullptr;  ///< non-null = parallel rounds
  std::size_t grain_ = 0;            ///< shard size (0 = auto)
  std::vector<ShardBuf> shards_;     ///< recycled per-chunk outboxes
  obs::Obs obs_;        ///< null sinks unless observe() was called
  std::string label_;   ///< protocol label for spans/metrics/diagnostics
  obs::CausalContext ctx_;  ///< causal context of the current step
  std::uint32_t causal_trace_ = 0;  ///< trace id of the active run
  bool causal_active_ = false;      ///< stamping spans right now?
};

}  // namespace mcds::dist
