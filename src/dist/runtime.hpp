#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

/// \file runtime.hpp
/// A synchronous round-based message-passing runtime over a fixed
/// communication topology — the execution model in which the paper's
/// distributed algorithms are stated (nodes exchange messages with
/// one-hop neighbors; a round delivers everything sent in the previous
/// round). The runtime counts rounds and messages so the cost benches
/// (experiment E11) can report protocol overheads.

namespace mcds::dist {

using graph::Graph;
using graph::NodeId;

/// A protocol message. Protocols define their own meaning for `type`,
/// `a` and `b`; `from` is stamped by the runtime.
struct Message {
  NodeId from = 0;
  std::int32_t type = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

/// Cost accounting for one protocol execution.
struct RunStats {
  std::size_t rounds = 0;    ///< synchronous rounds executed
  std::size_t messages = 0;  ///< point-to-point messages delivered

  RunStats& operator+=(const RunStats& o) noexcept {
    rounds += o.rounds;
    messages += o.messages;
    return *this;
  }
};

/// A node-local protocol. The runtime calls start() once for every node,
/// then step() each round with the node's inbox, until a round passes
/// with no messages in flight (quiescence) or the protocol declares
/// completion via Runtime::all_idle_means_done.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called once per node before round 0; may send initial messages.
  virtual void start(NodeId self) = 0;

  /// Called once at the beginning of each round, before any step().
  /// Lets phase-structured protocols advance a local round counter.
  virtual void on_round_begin() {}

  /// Called once per node per round with the messages delivered this
  /// round (possibly empty once the protocol is winding down).
  virtual void step(NodeId self, const std::vector<Message>& inbox) = 0;
};

/// The synchronous runtime: owns the outboxes and runs a Protocol to
/// quiescence over a topology.
class Runtime {
 public:
  /// \p g must outlive the runtime.
  explicit Runtime(const Graph& g);

  /// Sends \p m from \p from to the one-hop neighbor \p to (delivered
  /// next round). Throws std::invalid_argument if {from,to} is not an
  /// edge of the topology.
  void send(NodeId from, NodeId to, Message m);

  /// Sends \p m from \p from to all of its neighbors.
  void broadcast(NodeId from, Message m);

  /// Runs \p p until no messages are in flight. \p max_rounds guards
  /// against livelock; exceeding it throws std::runtime_error.
  RunStats run(Protocol& p, std::size_t max_rounds = 1u << 20);

  /// The topology.
  [[nodiscard]] const Graph& topology() const noexcept { return g_; }

 private:
  const Graph& g_;
  std::vector<std::vector<Message>> pending_;  ///< next-round inboxes
  std::size_t in_flight_ = 0;
};

}  // namespace mcds::dist
