#include "dist/reliable_link.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcds::dist {

std::size_t reliable_delivery_bound(const ReliableLinkParams& params) noexcept {
  std::size_t total = 1;  // the successful copy's delivery round
  std::size_t rto = params.rto;
  for (std::size_t i = 0; i < params.max_retries; ++i) {
    total += rto;
    rto = std::min(rto * 2, params.max_rto);
  }
  // A TTL abandons the payload after ttl_rounds unacked rounds, so the
  // last transmission that can still land is the one the round before;
  // its copy delivers one round later.
  if (params.ttl_rounds > 0) total = std::min(total, params.ttl_rounds + 1);
  return total;
}

ReliableLink::ReliableLink(Runtime& rt, const ReliableLinkParams& params,
                           const obs::Obs& obs)
    : rt_(rt), params_(params) {
  if (params_.rto == 0 || params_.max_rto < params_.rto) {
    throw std::invalid_argument(
        "ReliableLink: need 1 <= rto <= max_rto");
  }
  const std::size_t n = rt.topology().num_nodes();
  staged_.resize(n);
  acked_.resize(n);
  next_seq_.resize(n);
  delivered_.resize(n);
  dedup_by_node_.assign(n, 0);
  c_retx_ = obs.counter("reliable_link.retransmissions");
  c_expired_ = obs.counter("reliable_link.expired");
  c_dedup_ = obs.counter("reliable_link.dedup_hits");
  c_failed_ = obs.counter("reliable_link.delivery_failed");
}

std::size_t ReliableLink::dedup_hits() const noexcept {
  std::size_t total = 0;
  for (const std::size_t h : dedup_by_node_) total += h;
  return total;
}

void ReliableLink::post(NodeId from, NodeId to, const Message& payload) {
  // Sequence numbers are sharded by sender, so concurrent steps (which
  // only send from self) assign exactly the numbers the serial loop
  // would. The Pending is staged in the sender's slot and merged into
  // the global queue at the round barrier.
  const std::uint32_t seq = ++next_seq_[from][to];
  Message wire = payload;
  wire.link = kLinkData;
  wire.seq = seq;
  rt_.send(from, to, wire);
  staged_[from].push_back(Pending{from, to, payload, seq, params_.rto,
                                  params_.rto, params_.max_retries, /*age=*/0,
                                  rt_.context()});
  has_staged_.store(true, std::memory_order_relaxed);
}

void ReliableLink::send(NodeId from, NodeId to, Message m) {
  if (!rt_.topology().has_edge(from, to)) {
    throw std::invalid_argument(
        "ReliableLink::send: nodes are not one-hop neighbors");
  }
  m.from = from;
  post(from, to, m);
}

void ReliableLink::broadcast(NodeId from, Message m) {
  // Reliable broadcast = per-neighbor reliable unicast (each copy is
  // acked independently, exactly like the lossless runtime's fan-out).
  m.from = from;
  for (const NodeId to : rt_.topology().neighbors(from)) {
    post(from, to, m);
  }
}

void ReliableLink::merge_staged() {
  if (!has_staged_.load(std::memory_order_relaxed)) return;
  has_staged_.store(false, std::memory_order_relaxed);
  // Acks first, appends second: a round's acks can only target entries
  // that were already pending when the round started (a seq posted this
  // round cannot be acked before next round), so erasing before
  // appending reproduces the serial interleaving of erase_if and
  // push_back exactly. Different nodes' acks match disjoint entries
  // (the predicate pins p.from), so node order does not matter for the
  // erasure — one stable pass handles them all.
  bool any_acked = false;
  for (const auto& acks : acked_) {
    if (!acks.empty()) {
      any_acked = true;
      break;
    }
  }
  if (any_acked) {
    std::erase_if(pending_, [&](const Pending& p) {
      const auto& acks = acked_[p.from];
      return std::find(acks.begin(), acks.end(),
                       std::make_pair(p.to, p.seq)) != acks.end();
    });
    for (auto& acks : acked_) acks.clear();
  }
  // Appends in node order == the order the serial loop pushed them
  // (node v's whole step ran before node v+1's).
  for (auto& posts : staged_) {
    if (posts.empty()) continue;
    pending_.insert(pending_.end(), std::make_move_iterator(posts.begin()),
                    std::make_move_iterator(posts.end()));
    posts.clear();
  }
}

void ReliableLink::start(NodeId self) {
  if (inner_) inner_->start(self);
}

void ReliableLink::on_round_begin() {
  // Start-phase posts (and any host-side posts) must be pending before
  // the timers tick over them, exactly as the serial append was.
  merge_staged();
  if (inner_) inner_->on_round_begin();
  merge_staged();
  // Tick retransmission timers. Sends from here land in next round's
  // inboxes, exactly like sends from step(). Crashed senders keep their
  // queue but the clock stops (fail-stop with stable storage).
  std::size_t expired_now = 0;
  const auto abandon = [&](Pending& p, DeliveryFailureReason reason) {
    failures_.push_back(DeliveryFailure{
        p.from, p.to, p.seq, p.payload,
        params_.max_retries - p.retries_left, reason});
    p.seq = 0;  // tombstone, collected below (seq 0 is never assigned)
    ++expired_now;
  };
  for (Pending& p : pending_) {
    if (!rt_.is_up(p.from)) continue;
    ++p.age;
    // TTL first: a payload past its lifetime is abandoned even if
    // retries remain, so a dead peer costs at most ttl_rounds of
    // traffic per payload.
    if (params_.ttl_rounds > 0 && p.age >= params_.ttl_rounds) {
      abandon(p, DeliveryFailureReason::kTtlExpired);
      continue;
    }
    if (--p.timer > 0) continue;
    if (p.retries_left == 0) {
      abandon(p, DeliveryFailureReason::kRetryBudget);
      continue;
    }
    Message wire = p.payload;
    wire.link = kLinkData;
    wire.seq = p.seq;
    // Retransmit under the context captured at post() — without this,
    // every retry under faults would become a depth-1 root and the
    // critical path of lossy runs would be systematically understated.
    rt_.set_context(p.ctx);
    rt_.send(p.from, p.to, wire);
    ++retransmissions_;
    if (c_retx_) c_retx_->add();
    --p.retries_left;
    p.rto = std::min(p.rto * 2, params_.max_rto);
    p.timer = p.rto;
  }
  rt_.set_context({});  // back to the root context between steps
  if (expired_now > 0) {
    expired_ += expired_now;
    if (c_expired_) c_expired_->add(expired_now);
    if (c_failed_) c_failed_->add(expired_now);
    std::erase_if(pending_, [](const Pending& p) { return p.seq == 0; });
  }
}

void ReliableLink::step(NodeId self, std::span<const Message> inbox) {
  std::vector<Message> payloads;
  for (const Message& m : inbox) {
    if (m.link == kLinkAck) {
      // Ack for our link self -> m.from: staged in the receiver's slot
      // and applied to the global queue at the barrier; duplicates
      // erase nothing there.
      acked_[self].emplace_back(m.from, m.seq);
      has_staged_.store(true, std::memory_order_relaxed);
    } else if (m.link == kLinkData) {
      // Always re-ack (the previous ack may have been lost); deliver
      // each sequence number once.
      rt_.send(self, m.from, Message{0, 0, 0, 0, kLinkAck, m.seq});
      if (delivered_[self][m.from].insert(m.seq).second) {
        Message p = m;
        p.link = 0;
        p.seq = 0;
        payloads.push_back(p);
      } else {
        ++dedup_by_node_[self];
        if (c_dedup_) c_dedup_->add();
      }
    } else {
      payloads.push_back(m);  // raw traffic passes through
    }
  }
  if (inner_) inner_->step(self, payloads);
}

void ReliableLink::on_round_end() {
  merge_staged();
  if (inner_) inner_->on_round_end();
}

bool ReliableLink::idle() const {
  if (inner_ && !inner_->idle()) return false;
  // Posts staged but not yet merged (possible when the protocol sends
  // outside a round, e.g. from start()) still hold the execution open.
  if (has_staged_.load(std::memory_order_relaxed)) return false;
  for (const Pending& p : pending_) {
    if (rt_.is_up(p.from)) return false;
  }
  return true;
}

}  // namespace mcds::dist
